#!/bin/sh
# bench.sh — record the repo's performance trajectory.
#
# Runs the evaluation and crawl benchmarks (the F-Box hot paths that the
# parallel sharded pipeline of PR 1 optimizes, plus the two dataset
# generators) and the query-serving benchmarks of PR 2 (batch engine
# throughput vs a sequential query loop, snapshot freeze cost, cache-hit
# latency), and writes the results to a JSON file so successive PRs can
# be compared number-to-number.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_PR2.json)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR2.json}"
pattern='BenchmarkEvaluate$|BenchmarkEvaluateParallel$|BenchmarkSearchEvaluate$|BenchmarkCrawlTaskRabbit$|BenchmarkCrawlGoogle$|BenchmarkFig1$|BenchmarkGoogleQuant$|BenchmarkServeConcurrent|BenchmarkServeSnapshotBuild$|BenchmarkServeCacheHit$'
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (this takes a few minutes)"
go test -run '^$' -bench "$pattern" -benchmem -benchtime=2s . ./internal/serve | tee "$raw"

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op} records.
awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3; bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "bench.sh: wrote $out"
