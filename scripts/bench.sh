#!/bin/sh
# bench.sh — record the repo's performance trajectory.
#
# Runs the evaluation and crawl benchmarks (the F-Box hot paths that the
# parallel sharded pipeline of PR 1 optimizes, plus the two dataset
# generators), the query-serving benchmarks of PR 2 (batch engine
# throughput vs a sequential query loop, snapshot freeze cost, cache-hit
# latency), the telemetry-overhead benchmark of PR 3 (batch serving
# with the full obs surface — shared registry + trace ring — vs the
# default engine), the resilience-overhead benchmark of PR 4 (batch
# serving with deadlines and the admission gate enabled vs the default
# engine), and the logging-overhead benchmark of PR 5 (batch serving
# with the wide-event logger at 1/128 success sampling, the tail-sampled
# tracer and the SLO monitor vs the instrumented-but-unlogged engine),
# and the fairness-mitigation benchmark of PR 7 (BenchmarkMitigate: a
# full measure → re-rank → re-measure Problem 3 request through the
# serve engine, one sub-benchmark per mitigator), the continuous-profiler
# overhead benchmark of PR 8 (BenchmarkServeProfiled: batch serving while
# the profiler captures rounds at the production ~10% CPU-sampling duty
# cycle vs no profiler), the scatter-gather overhead benchmark of PR 9
# (BenchmarkScatterGather: the same request battery through a
# single-partition cluster coordinator — gen pinning, transport hop, leg
# budgets, hedge timers, reply merge — vs the plain engine), the
# span-tracing overhead benchmark of PR 10 (BenchmarkSpanTracing: the
# same battery through the one-partition coordinator with the tracer
# wired — pooled trace checkout, per-leg child spans, scan-stream
# summaries, the engine join, ring retention — vs the same coordinator
# untraced), the PR 8 open-loop load sweep (the fairjob loadtest mode at several offered
# rates, recording CO-corrected p50/p99/p999 and achieved throughput per
# rate), and the PR 9 partition sweep (loadtest at a fixed rate served
# through the coordinator at 1, 4 and 8 partitions), and writes the
# results to a JSON file so successive PRs can be compared
# number-to-number.
#
# Derived records appended:
#   telemetry_overhead    on-vs-off delta of BenchmarkServeInstrumented,
#                         with the PR 3 acceptance budget (< 5%)
#   resilience_overhead   on-vs-off delta of BenchmarkServeResilient,
#                         with the PR 4 acceptance budget (< 5%)
#   logging_overhead      on-vs-off delta of BenchmarkServeLogging,
#                         with the PR 5 acceptance budget (< 5%)
#   profiling_overhead    on-vs-off delta of BenchmarkServeProfiled,
#                         with the PR 8 acceptance budget (< 5%)
#   scatter_gather_overhead
#                         on-vs-off delta of BenchmarkScatterGather,
#                         with the PR 9 acceptance budget (< 5% at
#                         partitions=1)
#   span_tracing_overhead on-vs-off delta of BenchmarkSpanTracing,
#                         with the PR 10 acceptance budget (< 5%)
#   loadtest_rate_<R>     CO-corrected latency under R offered rps from
#                         one fairjob loadtest run per rate
#   loadtest_partitions_<P>
#                         CO-corrected latency at a fixed offered rate
#                         served through the scatter-gather coordinator
#                         over P partitions
#   engine_w4_vs_PR3      this run's engine-w4 ns/op against the stored
#                         BENCH_PR3.json baseline, when present
#   engine_w4_vs_PR4      same, against the BENCH_PR4.json baseline
#   engine_w4_vs_PR5      same, against the BENCH_PR5.json baseline
#   engine_w4_vs_PR7      same, against the BENCH_PR7.json baseline
#   engine_w4_vs_PR8      same, against the BENCH_PR8.json baseline
#   engine_w4_vs_PR9      same, against the BENCH_PR9.json baseline
#
# The overhead deltas are the MEDIAN of per-round ABBA deltas over 3
# rounds: each round runs four single-variant invocations in the order
# off, on, on, off and compares sum(on) against sum(off). The estimator
# is chosen against measured host behaviour, where run-to-run drift
# reaches ±15% — three times the budget being measured:
#   - a single -count=N invocation runs off×N then on×N, so drift
#     between the two blocks reads as overhead;
#   - per-variant aggregates (median or minimum across runs) are skewed
#     by one lucky run of one variant;
#   - back-to-back off/on pairs still bias against the variant that
#     always runs second (the host slows within every invocation pair).
# ABBA places both variants at the same mean timeline position, so any
# drift that is linear over a round cancels exactly; the median then
# discards the occasional wild round. check.sh runs the same protocol
# with the same estimator as a hard gate (with one independent
# re-measure before declaring a breach).
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_PR10.json)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
pattern='BenchmarkEvaluate$|BenchmarkEvaluateParallel$|BenchmarkSearchEvaluate$|BenchmarkCrawlTaskRabbit$|BenchmarkCrawlGoogle$|BenchmarkFig1$|BenchmarkGoogleQuant$|BenchmarkServeConcurrent|BenchmarkServeSnapshotBuild$|BenchmarkServeCacheHit$|BenchmarkMitigate'
raw="$(mktemp)"
raw2="$(mktemp)"
raw3="$(mktemp)"
raw4="$(mktemp)"
raw5="$(mktemp)"
raw6="$(mktemp)"
raw7="$(mktemp)"
ltout="$(mktemp)"
ltbin="$(mktemp)"
trap 'rm -f "$raw" "$raw2" "$raw3" "$raw4" "$raw5" "$raw6" "$raw7" "$ltout" "$ltbin"' EXIT

echo "== go test -bench (this takes a few minutes)"
go test -run '^$' -bench "$pattern" -benchmem -benchtime=2s . ./internal/serve | tee "$raw"

# The on-vs-off delta is a few percent, well inside single-run scheduler
# noise, so each overhead pair runs as 5 ABBA rounds of single-variant
# invocations (off, on, on, off — see the estimator note in the header);
# the derived records below take the median of the per-round deltas.
abba_run() {
    for round in 1 2 3 4 5; do
        for v in off on on off; do
            go test -run '^$' -bench "$1/$v\$" -benchmem -benchtime=2s -count=1 ./internal/serve
        done
    done
}

echo "== go test -bench BenchmarkServeInstrumented ABBA ×5 (overhead pair)"
abba_run BenchmarkServeInstrumented | tee "$raw2"

echo "== go test -bench BenchmarkServeResilient ABBA ×5 (resilience overhead pair)"
abba_run BenchmarkServeResilient | tee "$raw3"

echo "== go test -bench BenchmarkServeLogging ABBA ×5 (logging overhead pair)"
abba_run BenchmarkServeLogging | tee "$raw4"

echo "== go test -bench BenchmarkServeProfiled ABBA ×5 (profiling overhead pair)"
abba_run BenchmarkServeProfiled | tee "$raw5"

echo "== go test -bench BenchmarkScatterGather ABBA ×5 (scatter-gather overhead pair)"
abba_run BenchmarkScatterGather | tee "$raw6"

echo "== go test -bench BenchmarkSpanTracing ABBA ×5 (span-tracing overhead pair)"
abba_run BenchmarkSpanTracing | tee "$raw7"

# The PR 8 open-loop load sweep: one fairjob loadtest run per offered
# rate, short enough to keep the script's runtime sane but long enough
# for the CO-corrected tail to mean something. The loadtest JSON's
# first latency block is the total (per-label blocks follow it), so the
# first occurrence of each key is the one recorded.
echo "== fairjob loadtest p99-vs-offered-rate sweep"
go build -o "$ltbin" ./cmd/fairjob
lt_records=""
for lrate in 100 250 500; do
    if "$ltbin" loadtest -rate "$lrate" -warmup 1s -duration 5s -seed 1 -out "$ltout" 2>/dev/null; then
        rec="$(awk -v rate="$lrate" '
            function grab(key,   s) {
                s = $0; sub(/^[^:]*: */, "", s); sub(/,? *$/, "", s); return s
            }
            /"achieved_rps":/ && !a { a = grab(); got_a = 1 }
            /"p50_ns":/  && !p50  { p50  = grab() }
            /"p99_ns":/  && !p99  { p99  = grab() }
            /"p999_ns":/ && !p999 { p999 = grab() }
            /"max_ns":/  && !mx   { mx   = grab() }
            /"completed":/ && !c  { c = grab() }
            END {
                if (!p99) exit 1
                printf "  {\"name\": \"loadtest_rate_%s\", \"offered_rps\": %s, \"achieved_rps\": %s, \"completed\": %s, \"p50_ns\": %s, \"p99_ns\": %s, \"p999_ns\": %s, \"max_ns\": %s}", rate, rate, a, c, p50, p99, p999, mx
            }' "$ltout")" || rec=""
        if [ -n "$rec" ]; then
            lt_records="$lt_records,
$rec"
            echo "bench.sh: loadtest @${lrate}rps: $(awk -F': ' '/"p99_ns":/ && !seen++ { v = $2; sub(/,.*/, "", v); printf "p99 %.2fms", v / 1e6 }' "$ltout")"
        fi
    else
        echo "bench.sh: loadtest @${lrate}rps failed; skipping its record" >&2
    fi
done

# The PR 9 partition sweep: the same loadtest at a fixed offered rate,
# served through the scatter-gather coordinator at increasing partition
# counts. partitions=1 prices the cluster machinery itself (same answers
# as the engine, byte for byte); higher counts show how the distributed
# TA merge and the per-leg budgets behave as the table fragments shrink.
echo "== fairjob loadtest partition sweep (coordinator at 1/4/8 partitions)"
for pcount in 1 4 8; do
    if "$ltbin" loadtest -rate 250 -partitions "$pcount" -warmup 1s -duration 5s -seed 1 -out "$ltout" 2>/dev/null; then
        rec="$(awk -v pc="$pcount" '
            function grab(key,   s) {
                s = $0; sub(/^[^:]*: */, "", s); sub(/,? *$/, "", s); return s
            }
            /"achieved_rps":/ && !a { a = grab(); got_a = 1 }
            /"p50_ns":/  && !p50  { p50  = grab() }
            /"p99_ns":/  && !p99  { p99  = grab() }
            /"p999_ns":/ && !p999 { p999 = grab() }
            /"max_ns":/  && !mx   { mx   = grab() }
            /"completed":/ && !c  { c = grab() }
            END {
                if (!p99) exit 1
                printf "  {\"name\": \"loadtest_partitions_%s\", \"partitions\": %s, \"offered_rps\": 250, \"achieved_rps\": %s, \"completed\": %s, \"p50_ns\": %s, \"p99_ns\": %s, \"p999_ns\": %s, \"max_ns\": %s}", pc, pc, a, c, p50, p99, p999, mx
            }' "$ltout")" || rec=""
        if [ -n "$rec" ]; then
            lt_records="$lt_records,
$rec"
            echo "bench.sh: loadtest partitions=${pcount}: $(awk -F': ' '/"p99_ns":/ && !seen++ { v = $2; sub(/,.*/, "", v); printf "p99 %.2fms", v / 1e6 }' "$ltout")"
        fi
    else
        echo "bench.sh: loadtest partitions=${pcount} failed; skipping its record" >&2
    fi
done

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op} records
# (closing bracket appended after the derived records below).
awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3; bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "" }
' "$raw" > "$out"

# The load-sweep records join the array right after the raw benchmarks.
if [ -n "$lt_records" ]; then
    printf '%s' "$lt_records" >> "$out"
fi

# Derived record 1: telemetry overhead, instrumented vs default engine —
# median of the per-round ABBA deltas. The per-variant minimum raw lines
# also join the benchmark array so the BENCH JSON stays self-contained.
minof() {
    awk -v bench="$1" -v want="$2" '$1 ~ "^" bench "/" want {print $3}' "$3" \
        | sort -n | head -1
}
abbadelta() {
    awk -v b="$1" '
        $1 ~ "^" b "/off" { off[++no] = $3 }
        $1 ~ "^" b "/on"  { on[++nn] = $3 }
        END {
            rounds = int((no < nn ? no : nn) / 2)
            if (rounds == 0) exit 1
            for (r = 1; r <= rounds; r++) {
                o = off[2*r-1] + off[2*r]; n = on[2*r-1] + on[2*r]
                d[r] = (n - o) / o * 100
            }
            for (i = 2; i <= rounds; i++)
                for (j = i; j > 1 && d[j] < d[j-1]; j--) { t = d[j]; d[j] = d[j-1]; d[j-1] = t }
            printf "%.2f", d[int((rounds + 1) / 2)]
        }' "$2"
}
off="$(minof BenchmarkServeInstrumented off "$raw2")"
on="$(minof BenchmarkServeInstrumented on "$raw2")"
tpct="$(abbadelta BenchmarkServeInstrumented "$raw2" || true)"
if [ -n "$off" ] && [ -n "$on" ]; then
    awk -v off="$off" -v on="$on" '
    /^BenchmarkServeInstrumented/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 10, \"min_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw2" >> "$out"
    awk -v off="$off" -v on="$on" -v pct="$tpct" 'BEGIN {
        printf ",\n  {\"name\": \"telemetry_overhead\", \"rounds\": 5, \"off_min_ns_per_op\": %s, \"on_min_ns_per_op\": %s, \"median_abba_delta_pct\": %s, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct + 0 < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: telemetry overhead on-vs-off (median of ABBA round deltas): $tpct%"
fi

# Derived record: resilience overhead, deadline + admission gate vs the
# default engine — median of the per-round ABBA deltas, same protocol as
# the telemetry pair. The PR 4 acceptance budget is < 5%.
roff="$(minof BenchmarkServeResilient off "$raw3")"
ron="$(minof BenchmarkServeResilient on "$raw3")"
rpct="$(abbadelta BenchmarkServeResilient "$raw3" || true)"
if [ -n "$roff" ] && [ -n "$ron" ]; then
    awk -v off="$roff" -v on="$ron" '
    /^BenchmarkServeResilient/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 10, \"min_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw3" >> "$out"
    awk -v off="$roff" -v on="$ron" -v pct="$rpct" 'BEGIN {
        printf ",\n  {\"name\": \"resilience_overhead\", \"rounds\": 5, \"off_min_ns_per_op\": %s, \"on_min_ns_per_op\": %s, \"median_abba_delta_pct\": %s, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct + 0 < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: resilience overhead on-vs-off (median of ABBA round deltas): $rpct%"
fi

# Derived record: logging overhead — wide-event logger at 1/128 success
# sampling + tail-sampled tracer + SLO monitor vs the instrumented
# engine without them — median of the per-round ABBA deltas, same
# protocol as the other pairs. The PR 5 acceptance budget is < 5%.
loff="$(minof BenchmarkServeLogging off "$raw4")"
lon="$(minof BenchmarkServeLogging on "$raw4")"
lpct="$(abbadelta BenchmarkServeLogging "$raw4" || true)"
if [ -n "$loff" ] && [ -n "$lon" ]; then
    awk -v off="$loff" -v on="$lon" '
    /^BenchmarkServeLogging/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 10, \"min_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw4" >> "$out"
    awk -v off="$loff" -v on="$lon" -v pct="$lpct" 'BEGIN {
        printf ",\n  {\"name\": \"logging_overhead\", \"rounds\": 5, \"off_min_ns_per_op\": %s, \"on_min_ns_per_op\": %s, \"median_abba_delta_pct\": %s, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct + 0 < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: logging overhead on-vs-off (median of ABBA round deltas): $lpct%"
fi

# Derived record: profiling overhead — the continuous profiler capturing
# rounds at the production ~10% CPU-sampling duty cycle vs no profiler,
# over the instrumented engine — median of the per-round ABBA deltas,
# same protocol as the other pairs. The PR 8 acceptance budget is < 5%.
poff="$(minof BenchmarkServeProfiled off "$raw5")"
pon="$(minof BenchmarkServeProfiled on "$raw5")"
ppct="$(abbadelta BenchmarkServeProfiled "$raw5" || true)"
if [ -n "$poff" ] && [ -n "$pon" ]; then
    awk -v off="$poff" -v on="$pon" '
    /^BenchmarkServeProfiled/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 10, \"min_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw5" >> "$out"
    awk -v off="$poff" -v on="$pon" -v pct="$ppct" 'BEGIN {
        printf ",\n  {\"name\": \"profiling_overhead\", \"rounds\": 5, \"off_min_ns_per_op\": %s, \"on_min_ns_per_op\": %s, \"median_abba_delta_pct\": %s, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct + 0 < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: profiling overhead on-vs-off (median of ABBA round deltas): $ppct%"
fi

# Derived record: scatter-gather overhead — the request battery through a
# single-partition cluster coordinator (gen pinning, the simulated-RPC
# transport hop, leg deadline budgets, hedge timer arming, reply merge)
# vs the plain engine — median of the per-round ABBA deltas, same
# protocol as the other pairs. The PR 9 acceptance budget is < 5% at
# partitions=1.
soff="$(minof BenchmarkScatterGather off "$raw6")"
son="$(minof BenchmarkScatterGather on "$raw6")"
spct="$(abbadelta BenchmarkScatterGather "$raw6" || true)"
if [ -n "$soff" ] && [ -n "$son" ]; then
    awk -v off="$soff" -v on="$son" '
    /^BenchmarkScatterGather/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 10, \"min_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw6" >> "$out"
    awk -v off="$soff" -v on="$son" -v pct="$spct" 'BEGIN {
        printf ",\n  {\"name\": \"scatter_gather_overhead\", \"rounds\": 5, \"off_min_ns_per_op\": %s, \"on_min_ns_per_op\": %s, \"median_abba_delta_pct\": %s, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct + 0 < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: scatter-gather overhead on-vs-off (median of ABBA round deltas): $spct%"
fi

# Derived record: span-tracing overhead — the one-partition coordinator
# with a wired tracer (pooled trace checkout, per-leg child-span tree,
# scan-stream summaries, engine join, ring retention copy) vs the same
# coordinator untraced — median of the per-round ABBA deltas, same
# protocol as the other pairs. The PR 10 acceptance budget is < 5%.
toff="$(minof BenchmarkSpanTracing off "$raw7")"
ton="$(minof BenchmarkSpanTracing on "$raw7")"
trpct="$(abbadelta BenchmarkSpanTracing "$raw7" || true)"
if [ -n "$toff" ] && [ -n "$ton" ]; then
    awk -v off="$toff" -v on="$ton" '
    /^BenchmarkSpanTracing/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 10, \"min_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw7" >> "$out"
    awk -v off="$toff" -v on="$ton" -v pct="$trpct" 'BEGIN {
        printf ",\n  {\"name\": \"span_tracing_overhead\", \"rounds\": 5, \"off_min_ns_per_op\": %s, \"on_min_ns_per_op\": %s, \"median_abba_delta_pct\": %s, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct + 0 < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: span-tracing overhead on-vs-off (median of ABBA round deltas): $trpct%"
fi

# Derived record: this run's engine-w4 against the PR 3 baseline.
cur="$(awk '$1 ~ /^BenchmarkServeConcurrent\/engine-w4/ {print $3; exit}' "$raw")"
base="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR3.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base" ]; then
    awk -v base="$base" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR3\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR3 baseline: $(awk -v base="$base" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

# Derived record: this run's engine-w4 against the PR 4 baseline.
base4="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR4.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base4" ]; then
    awk -v base="$base4" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR4\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR4 baseline: $(awk -v base="$base4" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

# Derived record: this run's engine-w4 against the PR 5 baseline.
base5="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR5.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base5" ]; then
    awk -v base="$base5" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR5\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR5 baseline: $(awk -v base="$base5" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

# Derived record: this run's engine-w4 against the PR 7 baseline.
base7="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR7.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base7" ]; then
    awk -v base="$base7" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR7\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR7 baseline: $(awk -v base="$base7" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

# Derived record: this run's engine-w4 against the PR 8 baseline.
base8="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR8.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base8" ]; then
    awk -v base="$base8" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR8\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR8 baseline: $(awk -v base="$base8" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

# Derived record: this run's engine-w4 against the PR 9 baseline.
base9="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR9.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base9" ]; then
    awk -v base="$base9" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR9\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR9 baseline: $(awk -v base="$base9" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

printf '\n]\n' >> "$out"
echo "bench.sh: wrote $out"
