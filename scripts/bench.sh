#!/bin/sh
# bench.sh — record the repo's performance trajectory.
#
# Runs the evaluation and crawl benchmarks (the F-Box hot paths that the
# parallel sharded pipeline of PR 1 optimizes, plus the two dataset
# generators), the query-serving benchmarks of PR 2 (batch engine
# throughput vs a sequential query loop, snapshot freeze cost, cache-hit
# latency), the telemetry-overhead benchmark of PR 3 (batch serving
# with the full obs surface — shared registry + trace ring — vs the
# default engine), the resilience-overhead benchmark of PR 4 (batch
# serving with deadlines and the admission gate enabled vs the default
# engine), and the logging-overhead benchmark of PR 5 (batch serving
# with the wide-event logger at 1/128 success sampling, the tail-sampled
# tracer and the SLO monitor vs the instrumented-but-unlogged engine),
# and writes the results to a JSON file so successive PRs can be
# compared number-to-number.
#
# Derived records appended:
#   telemetry_overhead    on-vs-off delta of BenchmarkServeInstrumented,
#                         with the PR 3 acceptance budget (< 5%)
#   resilience_overhead   on-vs-off delta of BenchmarkServeResilient,
#                         with the PR 4 acceptance budget (< 5%)
#   logging_overhead      on-vs-off delta of BenchmarkServeLogging,
#                         with the PR 5 acceptance budget (< 5%)
#   engine_w4_vs_PR3      this run's engine-w4 ns/op against the stored
#                         BENCH_PR3.json baseline, when present
#   engine_w4_vs_PR4      same, against the BENCH_PR4.json baseline
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_PR5.json)
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
pattern='BenchmarkEvaluate$|BenchmarkEvaluateParallel$|BenchmarkSearchEvaluate$|BenchmarkCrawlTaskRabbit$|BenchmarkCrawlGoogle$|BenchmarkFig1$|BenchmarkGoogleQuant$|BenchmarkServeConcurrent|BenchmarkServeSnapshotBuild$|BenchmarkServeCacheHit$'
raw="$(mktemp)"
raw2="$(mktemp)"
raw3="$(mktemp)"
raw4="$(mktemp)"
trap 'rm -f "$raw" "$raw2" "$raw3" "$raw4"' EXIT

echo "== go test -bench (this takes a few minutes)"
go test -run '^$' -bench "$pattern" -benchmem -benchtime=2s . ./internal/serve | tee "$raw"

# The on-vs-off delta is a few percent, well inside single-run scheduler
# noise, so the overhead pair runs 5 times and the derived record below
# compares medians.
echo "== go test -bench BenchmarkServeInstrumented -count=5 (overhead pair)"
go test -run '^$' -bench 'BenchmarkServeInstrumented' -benchmem -benchtime=2s -count=5 ./internal/serve | tee "$raw2"

echo "== go test -bench BenchmarkServeResilient -count=5 (resilience overhead pair)"
go test -run '^$' -bench 'BenchmarkServeResilient' -benchmem -benchtime=2s -count=5 ./internal/serve | tee "$raw3"

echo "== go test -bench BenchmarkServeLogging -count=5 (logging overhead pair)"
go test -run '^$' -bench 'BenchmarkServeLogging' -benchmem -benchtime=2s -count=5 ./internal/serve | tee "$raw4"

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op} records
# (closing bracket appended after the derived records below).
awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3; bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bytes  = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "" }
' "$raw" > "$out"

# Derived record 1: telemetry overhead, instrumented vs default engine —
# median ns/op of the 5 runs per variant. The median raw lines also join
# the benchmark array so the BENCH JSON stays self-contained.
median() {
    awk -v bench="$1" -v want="$2" '$1 ~ "^" bench "/" want {print $3}' "$3" \
        | sort -n | awk '{v[NR] = $1} END { if (NR) print v[int((NR + 1) / 2)] }'
}
off="$(median BenchmarkServeInstrumented off "$raw2")"
on="$(median BenchmarkServeInstrumented on "$raw2")"
if [ -n "$off" ] && [ -n "$on" ]; then
    awk -v off="$off" -v on="$on" '
    /^BenchmarkServeInstrumented/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 5, \"median_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw2" >> "$out"
    awk -v off="$off" -v on="$on" 'BEGIN {
        pct = (on - off) / off * 100
        printf ",\n  {\"name\": \"telemetry_overhead\", \"runs\": 5, \"off_median_ns_per_op\": %s, \"on_median_ns_per_op\": %s, \"delta_pct\": %.2f, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: telemetry overhead on-vs-off (median of 5): $(awk -v off="$off" -v on="$on" 'BEGIN { printf "%.2f%%", (on-off)/off*100 }')"
fi

# Derived record: resilience overhead, deadline + admission gate vs the
# default engine — median ns/op of the 5 runs per variant, same protocol
# as the telemetry pair. The PR 4 acceptance budget is < 5%.
roff="$(median BenchmarkServeResilient off "$raw3")"
ron="$(median BenchmarkServeResilient on "$raw3")"
if [ -n "$roff" ] && [ -n "$ron" ]; then
    awk -v off="$roff" -v on="$ron" '
    /^BenchmarkServeResilient/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 5, \"median_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw3" >> "$out"
    awk -v off="$roff" -v on="$ron" 'BEGIN {
        pct = (on - off) / off * 100
        printf ",\n  {\"name\": \"resilience_overhead\", \"runs\": 5, \"off_median_ns_per_op\": %s, \"on_median_ns_per_op\": %s, \"delta_pct\": %.2f, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: resilience overhead on-vs-off (median of 5): $(awk -v off="$roff" -v on="$ron" 'BEGIN { printf "%.2f%%", (on-off)/off*100 }')"
fi

# Derived record: logging overhead — wide-event logger at 1/128 success
# sampling + tail-sampled tracer + SLO monitor vs the instrumented
# engine without them — median ns/op of the 5 runs per variant, same
# protocol as the other pairs. The PR 5 acceptance budget is < 5%.
loff="$(median BenchmarkServeLogging off "$raw4")"
lon="$(median BenchmarkServeLogging on "$raw4")"
if [ -n "$loff" ] && [ -n "$lon" ]; then
    awk -v off="$loff" -v on="$lon" '
    /^BenchmarkServeLogging/ {
        key = index($1, "/off") ? "off" : "on"
        if (seen[key]++) next
        ns = (key == "off" ? off : on)
        bytes = ""; allocs = ""
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bytes  = $(i-1)
            if ($(i) == "allocs/op") allocs = $(i-1)
        }
        printf ",\n  {\"name\": \"%s\", \"runs\": 5, \"median_ns_per_op\": %s", $1, ns
        if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }' "$raw4" >> "$out"
    awk -v off="$loff" -v on="$lon" 'BEGIN {
        pct = (on - off) / off * 100
        printf ",\n  {\"name\": \"logging_overhead\", \"runs\": 5, \"off_median_ns_per_op\": %s, \"on_median_ns_per_op\": %s, \"delta_pct\": %.2f, \"budget_pct\": 5, \"within_budget\": %s}", off, on, pct, (pct < 5 ? "true" : "false")
    }' >> "$out"
    echo "bench.sh: logging overhead on-vs-off (median of 5): $(awk -v off="$loff" -v on="$lon" 'BEGIN { printf "%.2f%%", (on-off)/off*100 }')"
fi

# Derived record: this run's engine-w4 against the PR 3 baseline.
cur="$(awk '$1 ~ /^BenchmarkServeConcurrent\/engine-w4/ {print $3; exit}' "$raw")"
base="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR3.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base" ]; then
    awk -v base="$base" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR3\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR3 baseline: $(awk -v base="$base" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

# Derived record: this run's engine-w4 against the PR 4 baseline.
base4="$(awk 'match($0, /"name": "BenchmarkServeConcurrent\/engine-w4[^"]*", "iterations": [0-9]+, "ns_per_op": [0-9]+/) {
    s = substr($0, RSTART, RLENGTH); sub(/.*"ns_per_op": /, "", s); print s; exit
}' BENCH_PR4.json 2>/dev/null || true)"
if [ -n "$cur" ] && [ -n "$base4" ]; then
    awk -v base="$base4" -v cur="$cur" 'BEGIN {
        printf ",\n  {\"name\": \"engine_w4_vs_PR4\", \"baseline_ns_per_op\": %s, \"current_ns_per_op\": %s, \"delta_pct\": %.2f}", base, cur, (cur - base) / base * 100
    }' >> "$out"
    echo "bench.sh: engine-w4 vs BENCH_PR4 baseline: $(awk -v base="$base4" -v cur="$cur" 'BEGIN { printf "%.2f%%", (cur-base)/base*100 }')"
fi

printf '\n]\n' >> "$out"
echo "bench.sh: wrote $out"
