#!/bin/sh
# check.sh — the repo's verification gate, make-free by design.
#
# Runs, in order:
#   1. go vet ./...          static checks
#   2. go build ./...        everything compiles
#   3. go test -race ./internal/obs ./internal/serve
#                            the telemetry gate: the lock-free metric
#                            and trace paths plus the instrumented
#                            engine, raced first and uncached so a
#                            telemetry regression fails fast
#   4. observability gate    go test -race over the PR 5 stress suite
#                            (histogram exemplars, tail-sampled trace
#                            ring and event ring under concurrent
#                            scrapes) plus the jq-free schema gate: a Go
#                            test that drives a mixed workload through
#                            the engine and validates every emitted wide
#                            event against the documented closed schema
#   5. chaos gate            go test -race -tags faultinject over the
#                            serving stack, the failpoint registry and
#                            the partitioned cluster — the chaos suite
#                            arms every failpoint (slow evaluator,
#                            panicking measure, failing refresh, queue
#                            delay, partition down/slow/flap) and
#                            asserts the engine and the scatter-gather
#                            coordinator converge back to correct
#                            answers once faults clear
#   6. mitigation gate       go test -race over internal/mitigate (the
#                            Problem 3 golden tests, property tests and
#                            the FuzzMitigators seed corpus) plus the
#                            served-path goldens and the concurrent
#                            mitigate race stress in internal/serve
#   7. profiling gate        go test -race over the continuous profiler
#                            (a captured CPU profile must carry the
#                            request pprof labels), the runtime-metrics
#                            bridge and the open-loop load harness, plus
#                            a fairjob loadtest smoke: one short run must
#                            emit a JSON artifact joining CO-corrected
#                            latency with labeled CPU attribution
#   8. go test -race ./...   full suite under the race detector — the
#                            evaluators' sharded worker pools and the
#                            serve engine's concurrent query paths must
#                            stay race-clean at any worker count
#   9. overhead gates        the telemetry, resilience, logging,
#                            profiling and scatter-gather on-vs-off
#                            benchmark pairs, each with the
#                            < 5% acceptance budget. Each measurement is
#                            5 ABBA rounds — four single-variant
#                            invocations per round in the order off, on,
#                            on, off — and the gate takes the MEDIAN of
#                            the per-round sum(on)-vs-sum(off) deltas.
#                            The estimator is chosen against measured
#                            host behaviour: run-to-run drift here
#                            reaches ±15%, which dwarfs the 5% budget, so
#                            (a) a single -count=N run (off×N then on×N)
#                            reads block-to-block drift as overhead,
#                            (b) per-variant aggregates (median or min
#                            across runs) are skewed by one lucky run of
#                            one variant, and (c) back-to-back off/on
#                            pairs bias against whichever variant always
#                            runs second. ABBA puts both variants at the
#                            same mean timeline position, cancelling any
#                            drift linear over a round; the median drops
#                            the occasional wild round. A gate that still
#                            breaches gets ONE independent re-measure a
#                            minute later (the sleep is the point: drift
#                            windows span whole measurements, so
#                            re-measuring immediately samples the same
#                            window): a real regression reproduces, a
#                            drift window does not. A breach in both
#                            measurements FAILS the build.
#
# Usage: scripts/check.sh [-short]
#
# With -short the test step runs `go test -race -short ./...`, trimming
# the iteration counts of the randomized equivalence and concurrency
# suites, and the overhead gates are skipped — a fast pre-commit signal;
# the full run stays the gate.
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/obs ./internal/serve (telemetry gate)"
go test -race -count=1 ./internal/obs/ ./internal/serve/

echo "== go test -race -run 'TestStress|TestWideEventSchemaGate' (observability gate)"
go test -race -count=1 -run 'TestStress' ./internal/obs/
go test -race -count=1 -run 'TestWideEventSchemaGate' ./internal/serve/
go test -race -count=1 -run 'TestWideEventSchemaGate' ./internal/cluster/

echo "== go test -race -run 'TestSpan|TestClusterTracing' (tracing gate)"
go test -race -count=1 -run 'TestSpan|TestWaterfall|TestTraceIDLookup' ./internal/obs/
go test -race -count=1 -run 'TestClusterTracing' ./internal/cluster/

echo "== go test -race -tags faultinject ./internal/serve/... ./internal/faultinject/... ./internal/cluster/... (chaos gate)"
go test -race -tags faultinject -count=1 ./internal/serve/... ./internal/faultinject/... ./internal/topk/... ./internal/cluster/...

echo "== go test -race ./internal/mitigate ./internal/serve (mitigation gate)"
go test -race -count=1 ./internal/mitigate/ ./internal/testutil/
go test -race -count=1 -run 'FuzzMitigators' ./internal/mitigate/
go test -race -count=1 -run 'TestServeMitigate' ./internal/serve/

echo "== profiling gate: labeled profiles, runtime bridge, load harness, loadtest smoke"
go test -race -count=1 -run 'TestProfiler|TestDebugProfilesEndpoint|TestRegisterRuntimeMetrics|TestStressAdminEndpointsUnderLoad' ./internal/obs/
go test -race -count=1 ./internal/loadgen/
lt_smoke="$(mktemp)"
trap 'rm -f "$lt_smoke"' EXIT
go run ./cmd/fairjob loadtest -rate 150 -warmup 300ms -duration 1500ms -out "$lt_smoke" 2>/dev/null
for key in '"p99_ns"' '"p999_ns"' '"top_cpu_labels"' '"cpu_sample_total_ns"' '"by_label"'; do
    if ! grep -q "$key" "$lt_smoke"; then
        echo "check.sh: FAIL — loadtest smoke artifact lacks $key" >&2
        exit 1
    fi
done
# The captured CPU profile must decompose by the request labels the
# engine attaches: at 150 rps for 1.5s at least one of the label keys
# must have accumulated samples.
if ! grep -Eq '"key": "(problem|algo|dim|mitigator|cache)"' "$lt_smoke"; then
    echo "check.sh: FAIL — loadtest smoke captured no request-labeled CPU samples" >&2
    exit 1
fi
echo "check.sh: loadtest smoke artifact carries labeled CPU attribution"

echo "== go test -race ${short:+$short }./..."
go test -race $short ./...

if [ -z "$short" ]; then
    echo "== overhead gates: telemetry/resilience/logging/profiling/scatter-gather/span-tracing on-vs-off, < 5% budget (median of 5 ABBA round deltas)"
    bench_raw="$(mktemp)"
    trap 'rm -f "$bench_raw" "$lt_smoke"' EXIT
    # Five ABBA rounds over benchmark group $1 (a name, or names joined
    # with |): off, on, on, off as four single-variant invocations.
    # benchtime matches bench.sh's 2s protocol: at 1s the ~10ms/op pairs
    # collect too few iterations on a 1-vCPU host and single rounds
    # swing ±20%, which false-positives the 5% budget.
    measure_abba() {
        : > "$bench_raw"
        for round in 1 2 3 4 5; do
            for v in off on on off; do
                go test -run '^$' -bench "($1)/$v\$" -benchtime=2s -count=1 ./internal/serve/
            done
        done | tee -a "$bench_raw"
    }
    # Prints the median per-round ABBA delta (%) for benchmark $1; exits
    # nonzero when the raw file holds no complete rounds for it.
    overhead_pct() {
        awk -v b="$1" '
            $1 ~ "^" b "/off" { off[++no] = $3 }
            $1 ~ "^" b "/on"  { on[++nn] = $3 }
            END {
                rounds = int((no < nn ? no : nn) / 2)
                if (rounds == 0) exit 1
                for (r = 1; r <= rounds; r++) {
                    o = off[2*r-1] + off[2*r]; n = on[2*r-1] + on[2*r]
                    d[r] = (n - o) / o * 100
                }
                for (i = 2; i <= rounds; i++)
                    for (j = i; j > 1 && d[j] < d[j-1]; j--) { t = d[j]; d[j] = d[j-1]; d[j-1] = t }
                printf "%.2f", d[int((rounds + 1) / 2)]
            }' "$bench_raw"
    }
    # Returns 0 when the budget is BREACHED, 1 when within budget.
    gate_breached() {
        bench="$1"; label="$2"
        pct="$(overhead_pct "$bench")" || {
            echo "check.sh: FAIL — $bench produced no off/on results" >&2
            exit 1
        }
        echo "check.sh: $label overhead (median of ABBA round deltas): $pct%"
        awk -v p="$pct" 'BEGIN { exit !(p >= 5) }'
    }
    measure_abba 'BenchmarkServeInstrumented|BenchmarkServeResilient|BenchmarkServeLogging|BenchmarkServeProfiled|BenchmarkScatterGather|BenchmarkSpanTracing'
    breached=""
    if gate_breached BenchmarkServeInstrumented telemetry; then breached="$breached BenchmarkServeInstrumented:telemetry"; fi
    if gate_breached BenchmarkServeResilient resilience; then breached="$breached BenchmarkServeResilient:resilience"; fi
    if gate_breached BenchmarkServeLogging logging; then breached="$breached BenchmarkServeLogging:logging"; fi
    if gate_breached BenchmarkServeProfiled profiling; then breached="$breached BenchmarkServeProfiled:profiling"; fi
    if gate_breached BenchmarkScatterGather scatter-gather; then breached="$breached BenchmarkScatterGather:scatter-gather"; fi
    if gate_breached BenchmarkSpanTracing span-tracing; then breached="$breached BenchmarkSpanTracing:span-tracing"; fi
    for entry in $breached; do
        bench="${entry%%:*}"; label="${entry#*:}"
        echo "check.sh: $label overhead breached the < 5% budget — re-measuring once after a cool-down to rule out machine drift"
        sleep 60
        measure_abba "$bench"
        if gate_breached "$bench" "$label"; then
            echo "check.sh: FAIL — $label overhead breached the < 5% acceptance budget in two independent measurements" >&2
            exit 1
        fi
        echo "check.sh: $label overhead cleared on re-measure (first breach attributed to machine drift)"
    done
else
    echo "== overhead gates skipped (-short)"
fi

echo "check.sh: all green"
