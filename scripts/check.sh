#!/bin/sh
# check.sh — the repo's verification gate, make-free by design.
#
# Runs, in order:
#   1. go vet ./...          static checks
#   2. go build ./...        everything compiles
#   3. go test -race ./...   full suite under the race detector — the
#                            evaluators' sharded worker pools must stay
#                            race-clean at any worker count
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all green"
