#!/bin/sh
# check.sh — the repo's verification gate, make-free by design.
#
# Runs, in order:
#   1. go vet ./...          static checks
#   2. go build ./...        everything compiles
#   3. go test -race ./internal/obs ./internal/serve
#                            the telemetry gate: the lock-free metric
#                            and trace paths plus the instrumented
#                            engine, raced first and uncached so a
#                            telemetry regression fails fast
#   4. observability gate    go test -race over the PR 5 stress suite
#                            (histogram exemplars, tail-sampled trace
#                            ring and event ring under concurrent
#                            scrapes) plus the jq-free schema gate: a Go
#                            test that drives a mixed workload through
#                            the engine and validates every emitted wide
#                            event against the documented closed schema
#   5. chaos gate            go test -race -tags faultinject over the
#                            serving stack and the failpoint registry —
#                            the chaos suite arms every failpoint
#                            (slow evaluator, panicking measure, failing
#                            refresh, queue delay) and asserts the
#                            engine converges back to correct answers
#                            once faults clear
#   6. go test -race ./...   full suite under the race detector — the
#                            evaluators' sharded worker pools and the
#                            serve engine's concurrent query paths must
#                            stay race-clean at any worker count
#
# Usage: scripts/check.sh [-short]
#
# With -short the test step runs `go test -race -short ./...`, trimming
# the iteration counts of the randomized equivalence and concurrency
# suites for a fast pre-commit signal; the full run stays the gate.
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/obs ./internal/serve (telemetry gate)"
go test -race -count=1 ./internal/obs/ ./internal/serve/

echo "== go test -race -run 'TestStress|TestWideEventSchemaGate' (observability gate)"
go test -race -count=1 -run 'TestStress' ./internal/obs/
go test -race -count=1 -run 'TestWideEventSchemaGate' ./internal/serve/

echo "== go test -race -tags faultinject ./internal/serve/... ./internal/faultinject/... (chaos gate)"
go test -race -tags faultinject -count=1 ./internal/serve/... ./internal/faultinject/... ./internal/topk/...

echo "== go test -race ${short:+$short }./..."
go test -race $short ./...

echo "check.sh: all green"
