// Package fairjob is a from-scratch Go reproduction of "Fairness in Online
// Jobs: A Case Study on TaskRabbit and Google" (Amer-Yahia et al., EDBT
// 2020): a unified framework for quantifying and comparing group fairness
// in online job rankings, together with synthetic substrates standing in
// for the paper's crawled TaskRabbit and Google datasets.
//
// The implementation lives under internal/:
//
//   - internal/core — the fairness framework: groups, comparable groups,
//     the four unfairness measures, and the d<g,q,l> table (§3);
//   - internal/index, internal/topk, internal/compare — the three index
//     families and the Fagin-style algorithms for the paper's two problems
//     (§4);
//   - internal/marketplace, internal/search, internal/labeling — the
//     simulated TaskRabbit, Google job search, and AMT labeling substrates
//     (§5.1);
//   - internal/experiment — one runner per table and figure of the
//     evaluation (§5.2–5.3).
//
// The bench_test.go file in this directory regenerates every table and
// figure as a benchmark and adds the design-choice ablations from
// DESIGN.md. See README.md for a tour and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// # Panic vs error policy
//
// The repository draws one line through failure handling (DESIGN.md §10
// has the full rationale):
//
//   - Construction-time misuse panics. Building an evaluator, engine or
//     snapshot with impossible configuration — a nil snapshot, an
//     algorithm or measure enum that does not exist — is a programming
//     error caught in development, so constructors and config-time
//     switches fail loudly and immediately.
//   - Request-time failures return errors. Anything that depends on
//     runtime data or load — an unknown measure reaching an evaluation,
//     a malformed query, a canceled context, an overloaded engine, a
//     failing snapshot refresh — comes back as a typed error the caller
//     can branch on (see internal/serve's ErrOverloaded,
//     ErrDeadlineExceeded, ErrCanceled, ErrInternal).
//   - Panics that escape anyway are contained. The serve engine recovers
//     any panic raised while executing a request into an *InternalError
//     response carrying the panic value and stack, so one poisoned query
//     cannot take down a batch worker or a serving goroutine.
package fairjob
