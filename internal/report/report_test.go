package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Table 8", "Group", "EMD")
	t.AddRow("Asian Female", 0.876)
	t.AddRow("White Male", 0.421)
	t.AddRow("n", 42)
	return t
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 8", "Group", "Asian Female", "0.876", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Alignment: the EMD column starts at the same offset in every row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	idx := strings.Index(lines[2], "EMD")
	_ = idx
	col := strings.Index(lines[4], "0.876")
	if col < 0 {
		t.Fatalf("value row missing: %q", lines[4])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Table 8") || !strings.Contains(out, "| Group | EMD |") {
		t.Fatalf("markdown output:\n%s", out)
	}
	if !strings.Contains(out, "| Asian Female | 0.876 |") {
		t.Fatalf("markdown row missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || lines[0] != "Group,EMD" || lines[1] != "Asian Female,0.876" {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestWriteDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Write(&buf, Markdown); err != nil {
		t.Fatal(err)
	}
	if err := sample().Write(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if err := sample().Write(&buf, "toml"); err == nil {
		t.Fatal("unknown format should error")
	}
}

func TestRaggedRowsRenderSafely(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("only-one")
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
}
