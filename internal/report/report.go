// Package report renders experiment results as aligned plain-text tables,
// Markdown tables, or CSV — the presentation layer of cmd/experiments and
// cmd/fairjob.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths returns the rendered width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len([]rune(c)) > w[i] {
				w[i] = len([]rune(c))
			}
		}
	}
	return w
}

// WriteText renders the table as aligned plain text.
func (t *Table) WriteText(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len([]rune(t.Title)))); err != nil {
			return err
		}
	}
	widths := t.widths()
	writeRow := func(cells []string) error {
		parts := make([]string, len(t.Headers))
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = c + strings.Repeat(" ", widths[i]-len([]rune(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdown renders the table as GitHub-flavoured Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(t.Headers))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (headers first; the title is
// omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Format names an output format.
type Format string

// Supported formats.
const (
	Text     Format = "text"
	Markdown Format = "markdown"
	CSV      Format = "csv"
)

// Write renders the table in the chosen format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case Text, "":
		return t.WriteText(w)
	case Markdown:
		return t.WriteMarkdown(w)
	case CSV:
		return t.WriteCSV(w)
	default:
		return fmt.Errorf("report: unknown format %q", f)
	}
}
