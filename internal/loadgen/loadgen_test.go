package loadgen

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fairjob/internal/core"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
)

func testEngine(tb testing.TB) *serve.Engine {
	tb.Helper()
	rng := stats.NewRNG(99)
	tbl := core.NewTable()
	for g := 0; g < 8; g++ {
		grp := core.NewGroup(core.Predicate{Attr: "cohort", Value: fmt.Sprintf("g%02d", g)})
		for q := 0; q < 12; q++ {
			for l := 0; l < 4; l++ {
				tbl.Set(grp, core.Query(fmt.Sprintf("q%02d", q)), core.Location(fmt.Sprintf("l%02d", l)), rng.Float64())
			}
		}
	}
	return serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{Workers: 2})
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1µs .. 1ms
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Max(); got != 1000000 {
		t.Fatalf("max = %d", got)
	}
	// Bucket resolution is 2^-5 ≈ 3.2%; allow 2 buckets of slack.
	checks := []struct {
		q    float64
		want int64
	}{{0.5, 500_000}, {0.9, 900_000}, {0.99, 990_000}, {1.0, 1_000_000}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := c.want - c.want/10
		hi := c.want + c.want/10
		if got < lo || got > hi {
			t.Errorf("q%.3f = %d, want within [%d, %d]", c.q, got, lo, hi)
		}
	}
	if h.Mean() < 450_000 || h.Mean() > 550_000 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestBucketRoundtrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 99} {
		idx := bucketOf(v)
		mid := bucketMid(idx)
		// The representative value must be within one sub-bucket width.
		if v >= 1<<subBits {
			rel := float64(mid-v) / float64(v)
			if rel < -0.05 || rel > 0.05 {
				t.Errorf("bucketMid(bucketOf(%d)) = %d, rel err %v", v, mid, rel)
			}
		} else if mid != v {
			t.Errorf("identity range: bucketMid(bucketOf(%d)) = %d", v, mid)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucket index %d out of range for %d", idx, v)
		}
	}
}

func TestBuildWorkload(t *testing.T) {
	eng := testEngine(t)
	wl, err := BuildWorkload(NewEngineTarget(eng), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	labels := wl.Labels()
	if len(labels) == 0 {
		t.Fatal("no workload labels")
	}
	hasQuantify, hasCompare := false, false
	for _, l := range labels {
		if l == "quantify/TA" {
			hasQuantify = true
		}
		if l == "compare/group" {
			hasCompare = true
		}
	}
	if !hasQuantify || !hasCompare {
		t.Fatalf("labels = %v, want quantify/TA and compare/group present", labels)
	}

	// Every sampled request answers OK, including cache-busting variants.
	rng := stats.NewRNG(7)
	busted := 0
	for i := 0; i < 200; i++ {
		label, req := wl.Sample(rng)
		if label == "" {
			t.Fatal("empty label")
		}
		if len(req.Candidates) > 0 {
			busted++
		}
		if resp := eng.DoCtx(context.Background(), req); resp.Err != nil {
			t.Fatalf("sampled %s errored: %v", label, resp.Err)
		}
	}
	if busted == 0 {
		t.Fatal("uniqueFrac=0.5 never produced a cache-busting variant")
	}

	// Determinism: same RNG seed, same sample sequence.
	a, b := stats.NewRNG(11), stats.NewRNG(11)
	for i := 0; i < 50; i++ {
		la, ra := wl.Sample(a)
		lb, rb := wl.Sample(b)
		if la != lb || fmt.Sprint(ra) != fmt.Sprint(rb) {
			t.Fatalf("sample %d diverged: %s vs %s", i, la, lb)
		}
	}
}

func TestRunnerReport(t *testing.T) {
	eng := testEngine(t)
	wl, err := BuildWorkload(NewEngineTarget(eng), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(NewEngineTarget(eng), wl, Options{
		Rate:     300,
		Arrival:  Poisson,
		Warmup:   150 * time.Millisecond,
		Duration: 500 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run(context.Background())
	if rep.Interrupted {
		t.Fatal("uninterrupted run reported interrupted")
	}
	if rep.Sent == 0 || rep.Completed != rep.Sent {
		t.Fatalf("sent %d, completed %d", rep.Sent, rep.Completed)
	}
	if rep.WarmupRequests == 0 {
		t.Fatal("warmup offered no requests")
	}
	if rep.Outcomes["ok"] != rep.Completed {
		t.Fatalf("outcomes %v, want all ok of %d", rep.Outcomes, rep.Completed)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Fatalf("latency summary disordered: %+v", rep.Latency)
	}
	if len(rep.ByLabel) == 0 {
		t.Fatal("no per-label stats")
	}
	var labelTotal int64
	for _, ls := range rep.ByLabel {
		labelTotal += ls.Count
		if ls.Latency.P50 <= 0 {
			t.Fatalf("label %s has zero p50", ls.Label)
		}
	}
	if labelTotal != rep.Completed {
		t.Fatalf("label counts sum to %d, completed %d", labelTotal, rep.Completed)
	}
	// The offered rate should be roughly achieved against this tiny
	// engine (generous bounds: CI hosts are noisy).
	if rep.AchievedRPS < 50 || rep.AchievedRPS > 1200 {
		t.Fatalf("achieved rps = %v at offered 300", rep.AchievedRPS)
	}
}

func TestRunnerGracefulCancel(t *testing.T) {
	eng := testEngine(t)
	wl, err := BuildWorkload(NewEngineTarget(eng), 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(NewEngineTarget(eng), wl, Options{
		Rate:     200,
		Warmup:   50 * time.Millisecond,
		Duration: 30 * time.Second, // cancelled long before this
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep := r.Run(ctx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v to flush", elapsed)
	}
	if !rep.Interrupted {
		t.Fatal("cancelled run not marked interrupted")
	}
	if rep.Sent == 0 || rep.Completed == 0 {
		t.Fatalf("interrupted run flushed nothing: sent %d completed %d", rep.Sent, rep.Completed)
	}
}

func TestNewRunnerValidation(t *testing.T) {
	eng := testEngine(t)
	wl, _ := BuildWorkload(NewEngineTarget(eng), 0)
	if _, err := NewRunner(nil, wl, Options{Rate: 1}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewRunner(NewEngineTarget(eng), wl, Options{Rate: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewRunner(NewEngineTarget(eng), wl, Options{Rate: 10, UniqueFrac: 1.5}); err == nil {
		t.Fatal("unique fraction 1.5 accepted")
	}
}

func TestParseArrival(t *testing.T) {
	if a, err := ParseArrival("poisson"); err != nil || a != Poisson {
		t.Fatalf("poisson: %v %v", a, err)
	}
	if a, err := ParseArrival("constant"); err != nil || a != Constant {
		t.Fatalf("constant: %v %v", a, err)
	}
	if _, err := ParseArrival("fibonacci"); err == nil {
		t.Fatal("bad arrival accepted")
	}
}
