package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"fairjob/internal/serve"
	"fairjob/internal/stats"
)

// Arrival selects the inter-arrival process of the offered load.
type Arrival int

const (
	// Poisson draws exponential inter-arrival gaps — the memoryless
	// arrivals of independent users, and the default: bursts and lulls
	// happen at every rate, which is what exposes queueing behavior.
	Poisson Arrival = iota
	// Constant spaces arrivals exactly 1/rate apart — a metronome, useful
	// to isolate service-time variance from arrival variance.
	Constant
)

func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case Constant:
		return "constant"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// ParseArrival resolves a CLI arrival-process name.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "constant":
		return Constant, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown arrival process %q (want poisson or constant)", s)
	}
}

// Options configures a load run.
type Options struct {
	// Rate is the offered arrival rate in requests/second (required).
	Rate float64
	// Arrival is the inter-arrival process (default Poisson).
	Arrival Arrival
	// Warmup is how long requests are offered but not measured before
	// the measurement phase — caches fill, the JIT-warm steady state
	// establishes (default 2s).
	Warmup time.Duration
	// Duration is the measurement phase length (default 10s).
	Duration time.Duration
	// Seed makes the run deterministic: the same seed offers the same
	// request sequence at the same scheduled times (default 1).
	Seed uint64
	// UniqueFrac is the fraction of quantify requests rewritten to bust
	// the result cache (see Workload.Sample). 0 converges to a cache-hit
	// run; 1 makes every quantify a compute request.
	UniqueFrac float64
	// MaxInflight caps concurrently executing requests. Arrivals beyond
	// the cap still happen on schedule — they queue, and their queueing
	// time is measured, which is the coordinated-omission contract
	// (default 256).
	MaxInflight int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Warmup <= 0 {
		out.Warmup = 2 * time.Second
	}
	if out.Duration <= 0 {
		out.Duration = 10 * time.Second
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.MaxInflight <= 0 {
		out.MaxInflight = 256
	}
	return out
}

// LatencySummary is the measurement phase's latency distribution in
// nanoseconds (bucket resolution ~3%; Max and Mean are exact).
type LatencySummary struct {
	P50  int64   `json:"p50_ns"`
	P90  int64   `json:"p90_ns"`
	P99  int64   `json:"p99_ns"`
	P999 int64   `json:"p999_ns"`
	Max  int64   `json:"max_ns"`
	Mean float64 `json:"mean_ns"`
}

func summarize(h *Hist) LatencySummary {
	return LatencySummary{
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
		Mean: h.Mean(),
	}
}

// LabelStats is one request kind's share of the measured run.
type LabelStats struct {
	Label     string         `json:"label"`
	Count     int64          `json:"count"`
	Errors    int64          `json:"errors"`
	CacheHits int64          `json:"cache_hits"`
	Latency   LatencySummary `json:"latency"`
}

// Report is a load run's JSON artifact. All latency figures are
// coordinated-omission corrected: measured from each request's
// scheduled arrival, so a stalled engine shows up as tail latency
// instead of silently reducing the offered load.
type Report struct {
	OfferedRPS     float64          `json:"offered_rps"`
	Arrival        string           `json:"arrival"`
	Seed           uint64           `json:"seed"`
	UniqueFrac     float64          `json:"unique_frac"`
	WarmupSeconds  float64          `json:"warmup_seconds"`
	MeasureSeconds float64          `json:"measure_seconds"`
	Interrupted    bool             `json:"interrupted"`
	WarmupRequests int64            `json:"warmup_requests"`
	Sent           int64            `json:"sent"`
	Completed      int64            `json:"completed"`
	AchievedRPS    float64          `json:"achieved_rps"`
	MaxLatenessNs  int64            `json:"max_dispatch_lateness_ns"`
	Outcomes       map[string]int64 `json:"outcomes"`
	Latency        LatencySummary   `json:"latency"`
	ByLabel        []LabelStats     `json:"by_label"`
}

// labelTrack is one label's accumulation during the run.
type labelTrack struct {
	hist      Hist
	count     int64
	errors    int64
	cacheHits int64
	mu        sync.Mutex
}

// Runner drives one target with one workload. Construct with NewRunner,
// run with Run; a Runner is single-use.
type Runner struct {
	target Target
	wl     *Workload
	o      Options
}

// NewRunner validates the options and binds target + workload. The
// target may be a single engine (EngineTarget) or a partitioned
// coordinator — the runner is agnostic.
func NewRunner(t Target, wl *Workload, o Options) (*Runner, error) {
	if t == nil || wl == nil {
		return nil, errors.New("loadgen: target and workload are required")
	}
	if o.Rate <= 0 || math.IsNaN(o.Rate) || math.IsInf(o.Rate, 0) {
		return nil, fmt.Errorf("loadgen: rate must be a positive finite rps, got %v", o.Rate)
	}
	if o.UniqueFrac < 0 || o.UniqueFrac > 1 {
		return nil, fmt.Errorf("loadgen: unique fraction must be in [0,1], got %v", o.UniqueFrac)
	}
	return &Runner{target: t, wl: wl, o: o.withDefaults()}, nil
}

// Run offers the load and blocks until every dispatched request has
// completed, then returns the report. Cancelling ctx stops the arrival
// schedule at the next tick, lets in-flight requests drain (they observe
// the same ctx, so they finish fast), and still returns a complete
// report over whatever was measured — the graceful-shutdown contract:
// an interrupted run flushes, it does not vanish.
func (r *Runner) Run(ctx context.Context) *Report {
	o := r.o
	rng := stats.NewRNG(o.Seed)
	arrivalRNG := rng.Split()
	sampleRNG := rng.Split()

	var (
		total     Hist
		mu        sync.Mutex
		outcomes  = make(map[string]int64)
		byLabel   = make(map[string]*labelTrack)
		wg        sync.WaitGroup
		sem       = make(chan struct{}, o.MaxInflight)
		sent      int64
		warmSent  int64
		completed int64
		maxLate   int64
	)
	for _, l := range r.wl.Labels() {
		byLabel[l] = &labelTrack{}
	}

	begin := time.Now()
	measureStart := begin.Add(o.Warmup)
	end := measureStart.Add(o.Duration)
	sched := begin

	for {
		sched = sched.Add(r.interArrival(arrivalRNG))
		if sched.After(end) {
			break
		}
		if ctx.Err() != nil {
			break
		}
		if d := time.Until(sched); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		} else if late := int64(-d); late > maxLate {
			// The dispatcher itself fell behind schedule (scheduler
			// starvation, GC pause). Lateness is reported so a run whose
			// generator — not engine — was the bottleneck is identifiable.
			maxLate = late
		}
		label, req := r.wl.Sample(sampleRNG)
		measured := !sched.Before(measureStart)
		if measured {
			sent++
		} else {
			warmSent++
		}
		arrival := sched
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp := r.target.DoCtx(ctx, req)
			lat := time.Since(arrival) // from SCHEDULED arrival: CO-correct
			if !measured {
				return
			}
			track := byLabel[label]
			track.hist.Record(lat.Nanoseconds())
			track.mu.Lock()
			track.count++
			if resp.Err != nil {
				track.errors++
			}
			if resp.CacheHit {
				track.cacheHits++
			}
			track.mu.Unlock()
			total.Record(lat.Nanoseconds())
			mu.Lock()
			completed++
			outcomes[serve.Outcome(resp.Err)]++
			mu.Unlock()
		}()
	}
	interrupted := ctx.Err() != nil
	wg.Wait()
	measuredEnd := time.Now()
	if measuredEnd.After(end) && !interrupted {
		measuredEnd = end
	}
	measureSec := measuredEnd.Sub(measureStart).Seconds()
	if measureSec <= 0 {
		measureSec = math.SmallestNonzeroFloat64
	}

	rep := &Report{
		OfferedRPS:     o.Rate,
		Arrival:        o.Arrival.String(),
		Seed:           o.Seed,
		UniqueFrac:     o.UniqueFrac,
		WarmupSeconds:  o.Warmup.Seconds(),
		MeasureSeconds: measureSec,
		Interrupted:    interrupted,
		WarmupRequests: warmSent,
		Sent:           sent,
		Completed:      completed,
		AchievedRPS:    float64(completed) / measureSec,
		MaxLatenessNs:  maxLate,
		Outcomes:       outcomes,
		Latency:        summarize(&total),
	}
	for label, track := range byLabel {
		if track.count == 0 {
			continue
		}
		rep.ByLabel = append(rep.ByLabel, LabelStats{
			Label:     label,
			Count:     track.count,
			Errors:    track.errors,
			CacheHits: track.cacheHits,
			Latency:   summarize(&track.hist),
		})
	}
	sort.Slice(rep.ByLabel, func(i, j int) bool { return rep.ByLabel[i].Label < rep.ByLabel[j].Label })
	return rep
}

// interArrival draws the next gap in the arrival schedule.
func (r *Runner) interArrival(rng *stats.RNG) time.Duration {
	mean := 1 / r.o.Rate // seconds
	switch r.o.Arrival {
	case Constant:
		return time.Duration(mean * float64(time.Second))
	default: // Poisson: exponential gaps
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return time.Duration(-math.Log(u) * mean * float64(time.Second))
	}
}
