package loadgen

import (
	"context"

	"fairjob/internal/core"
	"fairjob/internal/serve"
)

// Target is what a load run drives: anything that answers serve
// requests and can describe its dimension universe well enough for
// BuildWorkload to derive a mix. A single serve.Engine (via
// EngineTarget) and the scatter-gather cluster.Coordinator both
// qualify, so the same open-loop harness measures one engine or a
// partitioned fan-out without changing a line of the runner.
type Target interface {
	// DoCtx answers one request under ctx.
	DoCtx(ctx context.Context, req serve.Request) serve.Response
	// GroupKeys, Queries and Locations are the served dimension members,
	// sorted.
	GroupKeys() []string
	Queries() []core.Query
	Locations() []core.Location
	// HasRankings reports whether Problem 3 requests can be served.
	HasRankings() bool
	// Pages lists the distinct (query, location) marketplace pages,
	// sorted; empty without rankings.
	Pages() [][2]string
}

// EngineTarget adapts a single serve.Engine to the Target interface,
// answering the dimension queries from the engine's current snapshot.
type EngineTarget struct {
	Engine *serve.Engine
}

// NewEngineTarget wraps eng as a load-test target.
func NewEngineTarget(eng *serve.Engine) EngineTarget { return EngineTarget{Engine: eng} }

func (t EngineTarget) DoCtx(ctx context.Context, req serve.Request) serve.Response {
	return t.Engine.DoCtx(ctx, req)
}
func (t EngineTarget) GroupKeys() []string        { return t.Engine.Snapshot().GroupKeys() }
func (t EngineTarget) Queries() []core.Query      { return t.Engine.Snapshot().Queries() }
func (t EngineTarget) Locations() []core.Location { return t.Engine.Snapshot().Locations() }
func (t EngineTarget) HasRankings() bool          { return t.Engine.Snapshot().HasRankings() }
func (t EngineTarget) Pages() [][2]string         { return t.Engine.Snapshot().Pages() }
