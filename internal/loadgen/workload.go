package loadgen

import (
	"context"
	"fmt"

	"fairjob/internal/compare"
	"fairjob/internal/mitigate"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// Shape is one request kind in the offered mix: a label matching the
// pprof label vocabulary the engine attaches (problem/algo or
// problem/mitigator), the request itself, and its sampling weight.
type Shape struct {
	Label  string
	Req    serve.Request
	Weight float64
}

// Workload is the sampled request mix of a load run. Sampling is
// deterministic given the RNG the runner feeds it.
type Workload struct {
	shapes    []Shape
	weights   []float64
	groupKeys []string
	// uniqueFrac is the probability a sampled quantify request is
	// rewritten into a cache-busting variant (a fresh Candidates subset),
	// so runs exercise the compute path, not just the LRU.
	uniqueFrac float64
}

// BuildWorkload derives a mixed P1/P2/P3 workload from the target's
// served universe: top-k quantify requests across every algorithm and
// dimension, compare requests across dimension pairs, and — when the
// target carries rankings — one mitigate request per re-ranker. Every
// candidate shape is executed once against the target and kept only if
// it answers OK, so the offered mix never measures the error path by
// construction (run errors still count in the report if they appear
// under load). uniqueFrac in [0,1] is the fraction of quantify requests
// rewritten to bypass the result cache.
func BuildWorkload(t Target, uniqueFrac float64) (*Workload, error) {
	var candidates []Shape

	for _, dim := range []compare.Dimension{compare.ByGroup, compare.ByQuery, compare.ByLocation} {
		for _, algo := range topk.Algorithms() {
			candidates = append(candidates, Shape{
				Label: "quantify/" + algo.String(),
				Req: serve.Request{
					Problem: serve.Quantify, Dim: dim, K: 5,
					Direction: topk.MostUnfair, Algorithm: algo,
				},
				// The naive full scan is deliberately under-weighted: it
				// costs double admission weight and exists as a baseline,
				// not a production path.
				Weight: map[bool]float64{true: 0.25, false: 1}[algo == topk.Naive],
			})
		}
	}

	gks, qs, ls := t.GroupKeys(), t.Queries(), t.Locations()
	if len(gks) >= 2 {
		candidates = append(candidates, Shape{
			Label:  "compare/group",
			Req:    serve.Request{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByQuery},
			Weight: 1,
		})
	}
	if len(qs) >= 2 {
		candidates = append(candidates, Shape{
			Label:  "compare/query",
			Req:    serve.Request{Problem: serve.Compare, Of: compare.ByQuery, R1: string(qs[0]), R2: string(qs[1]), By: compare.ByGroup},
			Weight: 1,
		})
	}
	if len(ls) >= 2 {
		candidates = append(candidates, Shape{
			Label:  "compare/location",
			Req:    serve.Request{Problem: serve.Compare, Of: compare.ByLocation, R1: string(ls[0]), R2: string(ls[1]), By: compare.ByGroup},
			Weight: 1,
		})
	}

	if t.HasRankings() {
		pages := t.Pages()
		for _, kind := range mitigate.Kinds() {
			// Scan pages × groups for one combination this re-ranker
			// answers OK; pages may lack any given group.
			for _, pg := range pages {
				found := false
				for _, gk := range gks {
					req := serve.Request{
						Problem: serve.Mitigate, Mitigator: kind,
						Group: gk, Query: pg[0], Location: pg[1],
					}
					if resp := t.DoCtx(context.Background(), req); resp.Err == nil {
						candidates = append(candidates, Shape{
							Label:  "mitigate/" + kind.String(),
							Req:    req,
							Weight: 1,
						})
						found = true
						break
					}
				}
				if found {
					break
				}
			}
		}
	}

	var kept []Shape
	for _, c := range candidates {
		if resp := t.DoCtx(context.Background(), c.Req); resp.Err == nil {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("loadgen: no workload shape answers OK against this snapshot")
	}
	wl := &Workload{shapes: kept, groupKeys: gks, uniqueFrac: uniqueFrac}
	wl.weights = make([]float64, len(kept))
	for i, s := range kept {
		wl.weights[i] = s.Weight
	}
	return wl, nil
}

// Labels returns the distinct shape labels of the mix, in shape order.
func (w *Workload) Labels() []string {
	seen := make(map[string]bool, len(w.shapes))
	var out []string
	for _, s := range w.shapes {
		if !seen[s.Label] {
			seen[s.Label] = true
			out = append(out, s.Label)
		}
	}
	return out
}

// Sample draws one request from the mix. With probability uniqueFrac a
// quantify request is rewritten with a random Candidates subset — a
// distinct cache key with the same computational profile — so the run
// offers a controllable miss rate instead of converging to 100% cache
// hits on a static mix.
func (w *Workload) Sample(rng *stats.RNG) (string, serve.Request) {
	s := w.shapes[rng.Pick(w.weights)]
	req := s.Req
	if req.Problem == serve.Quantify && req.Dim == compare.ByGroup &&
		len(w.groupKeys) >= 4 && rng.Bernoulli(w.uniqueFrac) {
		// A random half-universe candidate set: still a valid restriction,
		// still touches the index family, but a fresh cache key. The subset
		// is drawn order-preservingly so the request stays deterministic
		// given the RNG state.
		n := len(w.groupKeys)/2 + rng.Intn(len(w.groupKeys)/4+1)
		cand := make([]string, 0, n)
		for _, i := range rng.Perm(len(w.groupKeys))[:n] {
			cand = append(cand, w.groupKeys[i])
		}
		req.Candidates = cand
	}
	return s.Label, req
}
