// Package loadgen is the open-loop load harness (DESIGN.md §13): it
// offers requests to a serve.Engine at a scheduled arrival rate —
// constant or Poisson — and records coordinated-omission-correct
// latency, i.e. every request's latency is measured from its *scheduled*
// arrival time, not from whenever the generator got around to sending
// it. A closed-loop generator (send, wait, send) silently stops offering
// load exactly when the system stalls, so its percentiles miss the worst
// behavior; the open-loop schedule keeps arrivals independent of
// responses, the way real user traffic is.
package loadgen

import (
	"math/bits"
	"sync/atomic"
)

// subBits is the log-linear histogram's sub-bucket resolution: 2^subBits
// sub-buckets per octave, giving a worst-case relative error of
// 2^-subBits ≈ 3% per recorded value — far below run-to-run noise.
const subBits = 5

// histBuckets covers values up to 2^63-1 ns (≈ 292 years); latencies
// live in the first ~40 octaves.
const histBuckets = (64 - subBits + 1) << subBits

// Hist is a lock-free log-linear latency histogram in nanoseconds, in
// the HdrHistogram tradition: fixed memory, constant-time record, ~3%
// value resolution. Concurrent recorders only touch atomic counters, so
// the load generator's dispatch goroutines never serialize on it.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a nanosecond value to its bucket: identity below
// 2^subBits, then log-linear — the octave selects a bucket block, the
// top subBits bits after the leading one select the sub-bucket.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < 1<<subBits {
		return int(u)
	}
	b := bits.Len64(u) - 1
	shift := b - subBits
	sub := (u >> shift) - (1 << subBits)
	return int(uint64(shift+1)<<subBits + sub)
}

// bucketMid returns the representative (midpoint) value of a bucket.
func bucketMid(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	shift := idx>>subBits - 1
	sub := uint64(idx & (1<<subBits - 1))
	lo := (1<<subBits + sub) << shift
	return int64(lo + 1<<shift/2)
}

// Record adds one latency observation in nanoseconds. Negative values
// clamp to zero (the clock stepped; the sample still counts).
func (h *Hist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Max returns the largest recorded value exactly (not bucket-rounded).
func (h *Hist) Max() int64 { return h.max.Load() }

// Mean returns the exact mean of recorded values.
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) in nanoseconds, to bucket
// resolution. The exact maximum is substituted at q = 1.
func (h *Hist) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	target := int64(q*float64(n-1)) + 1
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			return bucketMid(i)
		}
	}
	return h.Max()
}
