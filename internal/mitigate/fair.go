package mitigate

import (
	"fmt"
	"math"
)

// fairTopK implements FA*IR fair top-k (Zehlike et al.): compute the
// binomial minimum-representation table m(k) — the smallest protected
// count a fair-by-chance prefix of length k would contain at
// significance α when each position is protected with probability p —
// then greedily merge the protected and non-protected queues so every
// prefix satisfies its minimum while the better head is taken whenever
// the constraint leaves a choice.
type fairTopK struct{}

func (fairTopK) Kind() Kind { return FairTopK }

func (fairTopK) Rerank(items []Item, opts Options) ([]int, error) {
	if err := validateCommon(opts); err != nil {
		return nil, err
	}
	p := opts.MinProportion
	if p == 0 {
		p = protectedShare(items, opts)
	}
	if err := clampProportion("MinProportion", p); err != nil {
		return nil, err
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if math.IsNaN(alpha) || alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("mitigate: Alpha must be in (0, 1), got %v", alpha)
	}

	n := len(items)
	var protected, rest []int
	for i, it := range items {
		if it.Group == opts.Target {
			protected = append(protected, i)
		} else {
			rest = append(rest, i)
		}
	}
	// The raw table can demand more protected items than the page holds
	// (an infeasible p); capping at the available count keeps the merge
	// total — FA*IR's "as fair as this page can be" reading rather than
	// an error, so a mitigation request never fails on a sparse page.
	m := minimumTable(n, p, alpha)
	for k := range m {
		if m[k] > len(protected) {
			m[k] = len(protected)
		}
	}

	out := make([]int, 0, n)
	pi, ri, placed := 0, 0, 0
	for k := 1; k <= n; k++ {
		forced := placed < m[k-1] && pi < len(protected)
		switch {
		case forced:
			out = append(out, protected[pi])
			pi++
			placed++
		case pi == len(protected):
			out = append(out, rest[ri])
			ri++
		case ri == len(rest):
			out = append(out, protected[pi])
			pi++
			placed++
		case better(items, protected[pi], rest[ri]):
			out = append(out, protected[pi])
			pi++
			placed++
		default:
			out = append(out, rest[ri])
			ri++
		}
	}
	return out, nil
}

// minimumTable returns FA*IR's m(k) for k = 1…n:
//
//	m(k) = min{ t : BinomCDF(t; k, p) > α }
//
// — reject a prefix only when even t protected items would be a
// statistically significant shortfall against the binomial null model.
func minimumTable(n int, p, alpha float64) []int {
	m := make([]int, n)
	for k := 1; k <= n; k++ {
		t := 0
		for binomCDF(t, k, p) <= alpha {
			t++
		}
		m[k-1] = t
	}
	return m
}

// binomCDF is P[X ≤ t] for X ~ Binomial(k, p), summed in log space so
// the table stays exact for any page length a marketplace returns.
func binomCDF(t, k int, p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		if t >= k {
			return 1
		}
		return 0
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	lk, _ := math.Lgamma(float64(k) + 1)
	var sum float64
	for i := 0; i <= t && i <= k; i++ {
		li, _ := math.Lgamma(float64(i) + 1)
		lki, _ := math.Lgamma(float64(k-i) + 1)
		sum += math.Exp(lk - li - lki + float64(i)*lp + float64(k-i)*lq)
	}
	return sum
}
