package mitigate

import "math"

// detGreedy implements the deterministic greedy constrained-sorting
// re-ranker of Geyik et al. (the LinkedIn Talent Search mitigation):
// every group g gets a target share p_g of the page — proportional to
// its presence in the original page here, so the re-ranker equalizes
// *where* groups appear without changing *how much* of each group the
// page shows. At each position k the groups that have fallen below
// their integral floor ⌊p_g·k⌋ are served first (best next item among
// them); when no group is below its floor, any group still under its
// ceiling ⌈p_g·k⌉ may supply its best remaining item. Ties break by
// original position, making the output deterministic.
type detGreedy struct{}

func (detGreedy) Kind() Kind { return DetGreedy }

func (detGreedy) Rerank(items []Item, opts Options) ([]int, error) {
	if err := validateCommon(opts); err != nil {
		return nil, err
	}
	n := len(items)
	if n == 0 {
		return []int{}, nil
	}
	cats := groupOrder(items)
	queues := make(map[string][]int, len(cats))
	for i, it := range items {
		queues[it.Group] = append(queues[it.Group], i)
	}
	share := make(map[string]float64, len(cats))
	for _, c := range cats {
		share[c] = float64(len(queues[c])) / float64(n)
	}

	head := make(map[string]int, len(cats))
	placed := make(map[string]int, len(cats))
	out := make([]int, 0, n)
	pick := func(pool []string) {
		best := -1
		for _, c := range pool {
			next := queues[c][head[c]]
			if best < 0 || better(items, next, best) {
				best = next
			}
		}
		c := items[best].Group
		head[c]++
		placed[c]++
		out = append(out, best)
	}
	for k := 1; k <= n; k++ {
		var below, eligible, remaining []string
		for _, c := range cats {
			if head[c] >= len(queues[c]) {
				continue
			}
			remaining = append(remaining, c)
			kf := share[c] * float64(k)
			if placed[c] < int(math.Floor(kf)) {
				below = append(below, c)
			}
			if placed[c] < int(math.Ceil(kf)) {
				eligible = append(eligible, c)
			}
		}
		switch {
		case len(below) > 0:
			pick(below)
		case len(eligible) > 0:
			pick(eligible)
		default:
			// Integral targets can leave every remaining group at its
			// ceiling; serve the best remaining item rather than stall.
			pick(remaining)
		}
	}
	return out, nil
}
