package mitigate

import (
	"fmt"
	"math"
	"testing"
)

// checkPermutation asserts perm is a permutation of [0, n).
func checkPermutation(t *testing.T, kind Kind, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("%v: permutation length %d, want %d", kind, len(perm), n)
	}
	seen := make([]bool, n)
	for _, oi := range perm {
		if oi < 0 || oi >= n || seen[oi] {
			t.Fatalf("%v: %v is not a permutation of [0, %d)", kind, perm, n)
		}
		seen[oi] = true
	}
}

// checkWithinGroupOrder asserts same-group items keep their original
// relative order: mitigation moves groups, it never re-judges workers
// of one group against each other.
func checkWithinGroupOrder(t *testing.T, kind Kind, items []Item, perm []int) {
	t.Helper()
	last := make(map[string]int)
	for _, oi := range perm {
		g := items[oi].Group
		if prev, ok := last[g]; ok && oi < prev {
			t.Fatalf("%v: items %d and %d of group %q swapped relative order", kind, prev, oi, g)
		}
		last[g] = oi
	}
}

// checkFairPrefix asserts FA*IR's minimum-representation constraint at
// every prefix, recomputing the table the re-ranker used (default-p
// derivation and feasibility cap included).
func checkFairPrefix(t *testing.T, items []Item, perm []int, opts Options) {
	t.Helper()
	p := opts.MinProportion
	if p == 0 {
		p = protectedShare(items, opts)
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	available := 0
	for _, it := range items {
		if it.Group == opts.Target {
			available++
		}
	}
	m := minimumTable(len(items), p, alpha)
	placed := 0
	for k := 1; k <= len(perm); k++ {
		if items[perm[k-1]].Group == opts.Target {
			placed++
		}
		need := m[k-1]
		if need > available {
			need = available
		}
		if placed < need {
			t.Fatalf("fair: prefix %d holds %d protected items, constraint requires %d (p=%v, α=%v)", k, placed, need, p, alpha)
		}
	}
}

// checkInvariants runs every re-ranker over one page and asserts the
// shared invariants, plus each mitigator's own contract.
func checkInvariants(t *testing.T, items []Item, opts Options) {
	t.Helper()
	before, defined := Unfairness(items, nil, opts.Target, opts.Comparable)
	for _, kind := range Kinds() {
		perm, err := New(kind).Rerank(items, opts)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		checkPermutation(t, kind, perm, len(items))
		checkWithinGroupOrder(t, kind, items, perm)
		if kind == FairTopK {
			checkFairPrefix(t, items, perm, opts)
		}
		if kind == ExposureParity && defined {
			after, _ := Unfairness(items, perm, opts.Target, opts.Comparable)
			if after > before+1e-12 {
				t.Fatalf("exposure: made things worse, before %v after %v", before, after)
			}
		}
		if defined {
			out, err := Rerank(kind, items, opts)
			if err != nil {
				t.Fatalf("Rerank(%v): %v", kind, err)
			}
			direct, _ := Unfairness(items, out.Permutation, opts.Target, opts.Comparable)
			if out.After != direct {
				t.Fatalf("%v: Outcome.After %v != direct re-measure %v", kind, out.After, direct)
			}
		}
	}
}

// TestMitigatorInvariants runs the invariant suite over hand-built
// pages covering the interesting shapes: the paper fixture, a page with
// no protected item, all-protected, tied scores, partial-attribute
// groups, and tiny pages.
func TestMitigatorInvariants(t *testing.T) {
	pages := []struct {
		name  string
		items []Item
		opts  Options
	}{
		{"paper", paperItems(), Options{Target: targetAF, Comparable: comparableAF(), MinProportion: 0.3, Alpha: 0.25, SwapBudget: 10}},
		{"paper-defaults", paperItems(), Options{Target: targetAF, Comparable: comparableAF()}},
		{"no-protected", []Item{
			{ID: "a", Rel: 0.9, Group: "g=B"}, {ID: "b", Rel: 0.5, Group: "g=C"},
		}, Options{Target: "g=A", Comparable: []string{"g=B", "g=C"}}},
		{"all-protected", []Item{
			{ID: "a", Rel: 0.9, Group: "g=A"}, {ID: "b", Rel: 0.5, Group: "g=A"},
		}, Options{Target: "g=A", Comparable: []string{"g=B"}}},
		{"tied-scores", []Item{
			{ID: "a", Rel: 0.5, Group: "g=B"}, {ID: "b", Rel: 0.5, Group: "g=A"},
			{ID: "c", Rel: 0.5, Group: "g=B"}, {ID: "d", Rel: 0.5, Group: "g=A"},
		}, Options{Target: "g=A", Comparable: []string{"g=B"}, MinProportion: 0.5}},
		{"partial-attribute", []Item{
			{ID: "a", Rel: 1.0, Group: "gender=Male"}, {ID: "b", Rel: 0.7, Group: "gender=Male"},
			{ID: "c", Rel: 0.4, Group: "gender=Female"}, {ID: "d", Rel: 0.1, Group: "gender=Female"},
		}, Options{Target: "gender=Female", Comparable: []string{"gender=Male"}}},
		{"single", []Item{{ID: "a", Rel: 0.5, Group: "g=A"}}, Options{Target: "g=A", Comparable: []string{"g=B"}}},
		{"empty", nil, Options{Target: "g=A", Comparable: []string{"g=B"}}},
	}
	for _, p := range pages {
		t.Run(p.name, func(t *testing.T) { checkInvariants(t, p.items, p.opts) })
	}
}

// fuzzItems decodes a byte string into a page: each byte contributes
// one item, its low bits choosing among three groups and its high bits
// the relevance. Pages are capped at 32 items to keep the
// exposure-parity search cheap under the fuzzer.
func fuzzItems(data []byte) []Item {
	if len(data) > 32 {
		data = data[:32]
	}
	items := make([]Item, len(data))
	for i, b := range data {
		items[i] = Item{
			ID:    fmt.Sprintf("w%d", i),
			Rel:   float64(b>>2) / 63.0,
			Group: fmt.Sprintf("g=%c", 'A'+b%3),
		}
	}
	return items
}

// FuzzMitigators drives random pages, proportions and budgets through
// all three re-rankers, asserting the permutation, within-group-order,
// FA*IR prefix and no-worse-exposure invariants — the check.sh
// mitigation gate runs the seed corpus under -race.
func FuzzMitigators(f *testing.F) {
	f.Add([]byte{}, 0.3, 0.25, uint8(10))
	f.Add([]byte{0x00}, 0.0, 0.0, uint8(0))
	f.Add([]byte{0x93, 0x41, 0x02, 0xff, 0x7c, 0x25, 0x68, 0x1a, 0xb1, 0x0e}, 0.3, 0.25, uint8(10))
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 0, 0, 0}, 0.5, 0.1, uint8(3))
	f.Add([]byte{255, 254, 253, 3, 7, 11, 96, 97, 98, 99, 100, 101}, 0.9, 0.05, uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, p, alpha float64, budget uint8) {
		items := fuzzItems(data)
		// Sanitize the float knobs into their legal ranges; the explicit
		// rejection of illegal values is covered by TestOptionValidation.
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			p = 0
		}
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 0 || alpha >= 1 {
			alpha = 0
		}
		opts := Options{
			Target:        "g=A",
			Comparable:    []string{"g=B", "g=C"},
			MinProportion: p,
			Alpha:         alpha,
			SwapBudget:    int(budget),
		}
		checkInvariants(t, items, opts)
	})
}
