package mitigate

import "fmt"

// exposureParity directly minimizes the measure this repository serves:
// the §3.3.2 Exposure deviation of the target group. Each step considers
// every adjacent pair of different-group items, evaluates the deviation
// the swap would produce, and applies the best strictly-improving swap;
// it stops when no swap improves or the budget is spent. Same-group
// pairs are never swapped, which is both pointless (the measure only
// sees group totals) and what preserves within-group order. Because
// every applied swap strictly reduces the deviation, the result is
// never worse than the input — the no-worse-exposure invariant the
// property tests pin.
type exposureParity struct{}

func (exposureParity) Kind() Kind { return ExposureParity }

func (exposureParity) Rerank(items []Item, opts Options) ([]int, error) {
	if err := validateCommon(opts); err != nil {
		return nil, err
	}
	if opts.SwapBudget < 0 {
		return nil, fmt.Errorf("mitigate: SwapBudget must be non-negative, got %d", opts.SwapBudget)
	}
	n := len(items)
	order := identity(n)
	if n < 2 {
		return order, nil
	}
	budget := opts.SwapBudget
	if budget == 0 {
		// Enough adjacent swaps to realize any permutation; the strict
		// improvement rule is then the only stopping condition.
		budget = n * (n - 1) / 2
	}
	cur, ok := Unfairness(items, order, opts.Target, opts.Comparable)
	if !ok {
		// No target item on the page: nothing to improve, identity is
		// already optimal for a measure that is undefined.
		return order, nil
	}
	for swap := 0; swap < budget; swap++ {
		best, bestVal := -1, cur
		for i := 0; i+1 < n; i++ {
			if items[order[i]].Group == items[order[i+1]].Group {
				continue
			}
			order[i], order[i+1] = order[i+1], order[i]
			v, _ := Unfairness(items, order, opts.Target, opts.Comparable)
			order[i], order[i+1] = order[i+1], order[i]
			if v < bestVal {
				best, bestVal = i, v
			}
		}
		if best < 0 {
			break
		}
		order[best], order[best+1] = order[best+1], order[best]
		cur = bestVal
	}
	return order, nil
}
