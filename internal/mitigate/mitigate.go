// Package mitigate closes the loop the paper leaves open: after the
// framework has *measured* how unfair a ranking is to a group (§3.3.2's
// Exposure deviation), this package *re-ranks* the page to reduce that
// unfairness. It implements three interchangeable post-processors behind
// one interface:
//
//   - FairTopK — FA*IR fair top-k (Zehlike et al.): a binomial
//     minimum-representation table m(k) gives the smallest number of
//     protected items every prefix of length k must contain at
//     significance α for minimum proportion p; a two-queue greedy merge
//     satisfies the table while otherwise keeping the best item first.
//
//   - DetGreedy — the LinkedIn-style deterministic constrained-sorting
//     re-ranker (Geyik et al.): every group g gets a target share p_g
//     (proportional to its page presence by default); at each position
//     groups below ⌊p_g·k⌋ must be served first, otherwise any group
//     still under ⌈p_g·k⌉ may supply its best remaining item.
//
//   - ExposureParity — a direct minimizer of this repository's own
//     measure: greedy best-improving adjacent swaps between items of
//     different groups, bounded by a swap budget, each swap strictly
//     reducing the |exposure share − relevance share| deviation.
//
// All three consume the same flattened page — items with an intrinsic
// relevance and a projected group key — and return a permutation, never
// mutating their input. Relevance must be intrinsic (the platform score,
// or the original rank-derived proxy carried through the permutation):
// re-ranking changes positions, and a relevance that re-derived itself
// from the *new* rank would make the before/after comparison circular.
// Within one group, every re-ranker preserves the original relative
// order — mitigation trades positions *between* groups, it never
// re-judges workers of the same group against each other. The property
// and fuzz tests pin these invariants.
package mitigate

import (
	"fmt"
	"math"
	"sort"

	"fairjob/internal/metrics"
)

// Item is one ranked result flattened for mitigation: an identifier, an
// intrinsic relevance in [0, 1], and the item's group key projected onto
// the protected attributes of the mitigation target (so a partial-group
// target like "gender=Female" sees every item as its gender projection).
type Item struct {
	ID    string
	Rel   float64
	Group string
}

// Kind names one of the three re-rankers.
type Kind int

const (
	// FairTopK is the FA*IR fair top-k post-processor.
	FairTopK Kind = iota
	// DetGreedy is the deterministic greedy constrained-sorting
	// re-ranker.
	DetGreedy
	// ExposureParity is the bounded-swap minimizer of the Exposure
	// deviation measure.
	ExposureParity
)

func (k Kind) String() string {
	switch k {
	case FairTopK:
		return "fair"
	case DetGreedy:
		return "greedy"
	case ExposureParity:
		return "exposure"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a CLI/API mitigator name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "fair":
		return FairTopK, nil
	case "greedy":
		return DetGreedy, nil
	case "exposure":
		return ExposureParity, nil
	default:
		return 0, fmt.Errorf("mitigate: unknown mitigator %q (want fair, greedy or exposure)", s)
	}
}

// Kinds lists every implemented re-ranker in declaration order; tests
// and the serve layer iterate it rather than hard-coding the set.
func Kinds() []Kind { return []Kind{FairTopK, DetGreedy, ExposureParity} }

// Options configures a mitigation run.
type Options struct {
	// Target is the projected group key of the protected group — the
	// group whose Exposure deviation the run tries to reduce.
	Target string
	// Comparable lists the projected group keys of Target's comparable
	// groups (§3.1 single-attribute variants). Together with Target they
	// form the population the Exposure measure is taken over; items in
	// neither set are re-ranked but never measured.
	Comparable []string

	// MinProportion is FA*IR's p, the minimum protected proportion every
	// prefix should reach. 0 derives p from the page itself: the
	// protected share of the measured population.
	MinProportion float64
	// Alpha is FA*IR's significance level; 0 selects DefaultAlpha.
	Alpha float64
	// SwapBudget bounds ExposureParity's adjacent swaps; 0 selects
	// n·(n−1)/2 — enough to realize any permutation, so the default is
	// limited only by the strict-improvement stopping rule.
	SwapBudget int
}

// DefaultAlpha is FA*IR's significance level when Options.Alpha is 0.
const DefaultAlpha = 0.1

// Reranker is one mitigation strategy: it returns a permutation perm of
// [0, len(items)) with perm[newPos] = original index. Implementations
// never mutate items and keep the relative order of same-group items.
type Reranker interface {
	Kind() Kind
	Rerank(items []Item, opts Options) ([]int, error)
}

// New returns the re-ranker of the given kind. An out-of-range kind
// panics: the enum is closed, so that is a configuration bug (see the
// repository doc.go on the panic-vs-error policy).
func New(kind Kind) Reranker {
	switch kind {
	case FairTopK:
		return fairTopK{}
	case DetGreedy:
		return detGreedy{}
	case ExposureParity:
		return exposureParity{}
	default:
		panic(fmt.Sprintf("mitigate: unknown kind %d", int(kind)))
	}
}

// Outcome is one measure → mitigate → re-measure run.
type Outcome struct {
	Mitigator Kind
	// Before and After are the Exposure deviations of the target group
	// under the original and the mitigated order.
	Before, After float64
	// Permutation maps new position → original index.
	Permutation []int
	// Moved counts items whose position changed.
	Moved int
}

// Delta returns Before − After: positive when mitigation reduced the
// measured unfairness.
func (o Outcome) Delta() float64 { return o.Before - o.After }

// Rerank runs the full loop for one mitigator: measure the target's
// unfairness on the original order, re-rank, and re-measure on the
// permuted order. It errors when the measure is undefined on the page
// (no target item, or no comparable item to contrast against) — there
// is nothing to mitigate then.
func Rerank(kind Kind, items []Item, opts Options) (Outcome, error) {
	before, ok := Unfairness(items, nil, opts.Target, opts.Comparable)
	if !ok {
		return Outcome{}, fmt.Errorf("mitigate: exposure unfairness of %q is undefined on this page (target or comparable groups absent)", opts.Target)
	}
	perm, err := New(kind).Rerank(items, opts)
	if err != nil {
		return Outcome{}, err
	}
	after, _ := Unfairness(items, perm, opts.Target, opts.Comparable)
	out := Outcome{Mitigator: kind, Before: before, After: after, Permutation: perm}
	for pos, oi := range perm {
		if pos != oi {
			out.Moved++
		}
	}
	return out, nil
}

// Unfairness is the package's measurement half: the §3.3.2 Exposure
// deviation of the target group under the given order, |exposure share −
// relevance share| over the population target ∪ comparable. order maps
// new position → original index; nil means the original order. Exposure
// is positional (metrics.ExposureAtRank of the *new* 1-based position);
// relevance is each item's intrinsic Rel, carried through the
// permutation. The boolean is false when the measure is undefined — the
// target has no items on the page; a page where no comparable group
// appears is defined with deviation 0, mirroring
// core.MarketplaceEvaluator's exposure cell.
func Unfairness(items []Item, order []int, target string, comparable []string) (float64, bool) {
	comp := make(map[string]bool, len(comparable))
	for _, c := range comparable {
		comp[c] = true
	}
	var gExp, gRel, totExp, totRel float64
	targetSeen, comparableSeen := false, false
	for pos := range items {
		oi := pos
		if order != nil {
			oi = order[pos]
		}
		it := items[oi]
		switch {
		case it.Group == target:
			e := metrics.ExposureAtRank(pos + 1)
			gExp += e
			gRel += it.Rel
			totExp += e
			totRel += it.Rel
			targetSeen = true
		case comp[it.Group]:
			totExp += metrics.ExposureAtRank(pos + 1)
			totRel += it.Rel
			comparableSeen = true
		}
	}
	if !targetSeen {
		return 0, false
	}
	if !comparableSeen {
		return 0, true
	}
	return metrics.ExposureDeviation(
		metrics.Share(gExp, totExp),
		metrics.Share(gRel, totRel),
	), true
}

// validateCommon rejects option values every re-ranker agrees are
// malformed.
func validateCommon(opts Options) error {
	if opts.Target == "" {
		return fmt.Errorf("mitigate: options need a target group")
	}
	return nil
}

// protectedShare derives FA*IR's default p: the protected share of the
// measured population on this page.
func protectedShare(items []Item, opts Options) float64 {
	comp := make(map[string]bool, len(opts.Comparable))
	for _, c := range opts.Comparable {
		comp[c] = true
	}
	prot, pop := 0, 0
	for _, it := range items {
		switch {
		case it.Group == opts.Target:
			prot++
			pop++
		case comp[it.Group]:
			pop++
		}
	}
	if pop == 0 {
		return 0
	}
	return float64(prot) / float64(pop)
}

// groupOrder returns the distinct group keys of items, sorted — the
// deterministic category enumeration DetGreedy iterates.
func groupOrder(items []Item) []string {
	seen := make(map[string]bool)
	var out []string
	for _, it := range items {
		if !seen[it.Group] {
			seen[it.Group] = true
			out = append(out, it.Group)
		}
	}
	sort.Strings(out)
	return out
}

// better reports whether item a should precede item b when no fairness
// constraint forces a choice: higher relevance first, original position
// breaking ties — the deterministic tie-break all three re-rankers
// share.
func better(items []Item, a, b int) bool {
	if items[a].Rel != items[b].Rel {
		return items[a].Rel > items[b].Rel
	}
	return a < b
}

// identity returns the identity permutation of length n.
func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// clampProportion validates p ∈ [0, 1]; NaN and out-of-range values are
// caller bugs reported as errors.
func clampProportion(name string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("mitigate: %s must be in [0, 1], got %v", name, p)
	}
	return nil
}
