package mitigate

import (
	"testing"

	"fairjob/internal/testutil"
)

// paperItems flattens the Tables 2–3 ranking of the source paper (the
// Figure 4/5 fixture, experiment.paperRanking) for mitigation: ten
// workers, relevance = the observed platform score, group = the full
// gender×ethnicity projection. The target is Asian Female — the one
// under-exposed group of the page (its exposure share trails its
// relevance share), so promotion-style mitigators genuinely help it;
// Figure 5's Black Females are over-exposed on this page, and promoting
// them further would *raise* their deviation.
func paperItems() []Item {
	return []Item{
		{ID: "w3", Rel: 0.9, Group: "ethnicity=White&gender=Female"},
		{ID: "w8", Rel: 0.8, Group: "ethnicity=Black&gender=Male"},
		{ID: "w6", Rel: 0.7, Group: "ethnicity=Black&gender=Male"},
		{ID: "w2", Rel: 0.6, Group: "ethnicity=White&gender=Male"},
		{ID: "w1", Rel: 0.5, Group: "ethnicity=Asian&gender=Female"},
		{ID: "w4", Rel: 0.4, Group: "ethnicity=Asian&gender=Male"},
		{ID: "w7", Rel: 0.3, Group: "ethnicity=Black&gender=Female"},
		{ID: "w5", Rel: 0.2, Group: "ethnicity=Black&gender=Female"},
		{ID: "w9", Rel: 0.1, Group: "ethnicity=White&gender=Male"},
		{ID: "w10", Rel: 0.0, Group: "ethnicity=White&gender=Female"},
	}
}

const (
	targetAF = "ethnicity=Asian&gender=Female"
	// beforeAF is the Exposure deviation of Asian Female on the original
	// page — the golden "before" every mitigator must strictly improve.
	beforeAF = 0.07309294039141703
)

// comparableAF is Comparable(Asian Female): the single-attribute
// variants, in the canonical sorted-key order core.Schema produces.
func comparableAF() []string {
	return []string{
		"ethnicity=Asian&gender=Male",
		"ethnicity=Black&gender=Female",
		"ethnicity=White&gender=Female",
	}
}

// goldenRun pins one mitigator's full outcome on the paper fixture.
type goldenRun struct {
	kind  Kind
	opts  Options
	order []string // expected re-ranked IDs
	after float64
}

func goldenRuns() []goldenRun {
	return []goldenRun{
		{
			kind:  FairTopK,
			opts:  Options{Target: targetAF, Comparable: comparableAF(), MinProportion: 0.3, Alpha: 0.25},
			order: []string{"w3", "w8", "w6", "w1", "w2", "w4", "w7", "w5", "w9", "w10"},
			after: 0.05933017331766394,
		},
		{
			kind:  DetGreedy,
			opts:  Options{Target: targetAF, Comparable: comparableAF()},
			order: []string{"w3", "w8", "w2", "w1", "w7", "w6", "w4", "w5", "w9", "w10"},
			after: 0.06108813758266332,
		},
		{
			kind:  ExposureParity,
			opts:  Options{Target: targetAF, Comparable: comparableAF(), SwapBudget: 10},
			order: []string{"w8", "w3", "w1", "w6", "w2", "w9", "w7", "w4", "w5", "w10"},
			after: 0.006405063932327981,
		},
	}
}

// TestMitigateGolden is the package's anchor: on the paper's own
// Tables 2–3 page, each of the three mitigators strictly reduces the
// Exposure deviation of the under-exposed Asian Female group, and both
// the permutation and the re-measured value are pinned.
func TestMitigateGolden(t *testing.T) {
	items := paperItems()
	got, ok := Unfairness(items, nil, targetAF, comparableAF())
	if !ok {
		t.Fatal("exposure unfairness of Asian Female undefined on the paper page")
	}
	testutil.Approx(t, "before", got, beforeAF, testutil.DefaultTol)

	for _, g := range goldenRuns() {
		t.Run(g.kind.String(), func(t *testing.T) {
			out, err := Rerank(g.kind, items, g.opts)
			if err != nil {
				t.Fatalf("Rerank(%v): %v", g.kind, err)
			}
			testutil.Approx(t, "before", out.Before, beforeAF, testutil.DefaultTol)
			testutil.Approx(t, "after", out.After, g.after, testutil.DefaultTol)
			if out.After >= out.Before {
				t.Fatalf("%v did not strictly reduce unfairness: before %v, after %v", g.kind, out.Before, out.After)
			}
			if out.Delta() <= 0 {
				t.Fatalf("%v Delta() = %v, want > 0", g.kind, out.Delta())
			}
			ids := make([]string, len(out.Permutation))
			for pos, oi := range out.Permutation {
				ids[pos] = items[oi].ID
			}
			for i := range ids {
				if ids[i] != g.order[i] {
					t.Fatalf("%v order = %v, want %v", g.kind, ids, g.order)
				}
			}
			if out.Moved == 0 {
				t.Fatalf("%v reports Moved = 0 for a non-identity permutation", g.kind)
			}
			// The outcome's After must be exactly the measurement of its
			// own permutation — the re-measure is not a separate code path.
			direct, ok := Unfairness(items, out.Permutation, g.opts.Target, g.opts.Comparable)
			if !ok {
				t.Fatal("re-measure undefined")
			}
			testutil.Approx(t, "re-measure", out.After, direct, 1e-15)
		})
	}
}

// TestFairMinimumTable pins the FA*IR binomial table itself for the
// golden parameters: with p = 0.3 and α = 0.25 a prefix of 4 must
// already hold one protected item, and prefixes of 9–10 would demand
// two — more than the page's single Asian Female, which the cap
// reduces to the feasible one.
func TestFairMinimumTable(t *testing.T) {
	got := minimumTable(10, 0.3, 0.25)
	want := []int{0, 0, 0, 1, 1, 1, 1, 1, 2, 2}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("m(%d) = %d, want %d (full table %v)", k+1, got[k], w, got)
		}
	}
}

func TestBinomCDF(t *testing.T) {
	// Binomial(4, 0.5): P[X ≤ 1] = (1+4)/16, P[X ≤ 4] = 1.
	testutil.Approx(t, "cdf(1;4,0.5)", binomCDF(1, 4, 0.5), 5.0/16.0, 1e-12)
	testutil.Approx(t, "cdf(4;4,0.5)", binomCDF(4, 4, 0.5), 1.0, 1e-12)
	testutil.Approx(t, "cdf(0;10,0)", binomCDF(0, 10, 0), 1.0, 0)
	testutil.Approx(t, "cdf(9;10,1)", binomCDF(9, 10, 1), 0.0, 0)
	testutil.Approx(t, "cdf(10;10,1)", binomCDF(10, 10, 1), 1.0, 0)
}

func TestUnfairnessEdges(t *testing.T) {
	items := []Item{
		{ID: "a", Rel: 0.9, Group: "g=A"},
		{ID: "b", Rel: 0.1, Group: "g=B"},
	}
	if _, ok := Unfairness(items, nil, "g=C", []string{"g=A"}); ok {
		t.Fatal("unfairness defined for a target with no items")
	}
	v, ok := Unfairness(items, nil, "g=A", []string{"g=C"})
	if !ok || v != 0 {
		t.Fatalf("no comparable on page: got (%v, %v), want (0, true)", v, ok)
	}
	if _, err := Rerank(FairTopK, items, Options{Target: "g=C", Comparable: []string{"g=A"}}); err == nil {
		t.Fatal("Rerank accepted an undefined measurement")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = (%v, %v), want (%v, nil)", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

func TestOptionValidation(t *testing.T) {
	items := paperItems()
	if _, err := New(FairTopK).Rerank(items, Options{}); err == nil {
		t.Fatal("FairTopK accepted an empty target")
	}
	if _, err := New(FairTopK).Rerank(items, Options{Target: targetAF, MinProportion: 1.5}); err == nil {
		t.Fatal("FairTopK accepted MinProportion > 1")
	}
	if _, err := New(FairTopK).Rerank(items, Options{Target: targetAF, Alpha: 1}); err == nil {
		t.Fatal("FairTopK accepted Alpha = 1")
	}
	if _, err := New(ExposureParity).Rerank(items, Options{Target: targetAF, SwapBudget: -1}); err == nil {
		t.Fatal("ExposureParity accepted a negative budget")
	}
}
