// Package index implements the three pre-computed index families of the
// paper's Table 5: group-based indices I(q,l), query-based indices I(g,l)
// and location-based indices I(g,q). Each index is an inverted list of
// (member, unfairness) postings sorted by descending unfairness, supporting
// the two access modes Fagin-style algorithms need: sorted access (next
// posting) and random access (value of a given member).
//
// Completion invariant: every posting list over a dimension contains an
// entry for every member of that dimension that appears anywhere in the
// source table, with unfairness 0 for triples the evaluator left undefined.
// This mirrors Algorithm 1's unconditional division by |Q|·|L| and is what
// makes the threshold bound valid in both top-k directions.
package index

import (
	"sort"
	"sync"

	"fairjob/internal/core"
)

// Entry is one posting: a dimension member (group key, query, or location)
// and its unfairness value.
type Entry struct {
	Key   string
	Value float64
}

// Inverted is a posting list sorted by descending Value (ties broken by
// ascending Key so ordering is deterministic). It supports sorted access
// via At and random access via Find.
type Inverted struct {
	entries []Entry
	byKey   map[string]float64
}

func newInverted(entries []Entry) *Inverted {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value > entries[j].Value
		}
		return entries[i].Key < entries[j].Key
	})
	byKey := make(map[string]float64, len(entries))
	for _, e := range entries {
		byKey[e.Key] = e.Value
	}
	return &Inverted{entries: entries, byKey: byKey}
}

// Len returns the number of postings.
func (iv *Inverted) Len() int { return len(iv.entries) }

// At performs a sorted access: the posting at position pos (0 = highest
// unfairness). ok is false past the end of the list.
func (iv *Inverted) At(pos int) (Entry, bool) {
	if pos < 0 || pos >= len(iv.entries) {
		return Entry{}, false
	}
	return iv.entries[pos], true
}

// Find performs a random access: the unfairness value recorded for key.
func (iv *Inverted) Find(key string) (float64, bool) {
	v, ok := iv.byKey[key]
	return v, ok
}

// Entries returns a copy of the posting list in sorted order.
func (iv *Inverted) Entries() []Entry {
	return append([]Entry(nil), iv.entries...)
}

// QL identifies a (query, location) pair.
type QL struct {
	Q core.Query
	L core.Location
}

// GL identifies a (group, location) pair; the group is its canonical key.
type GL struct {
	G string
	L core.Location
}

// GQ identifies a (group, query) pair.
type GQ struct {
	G string
	Q core.Query
}

// GroupIndex holds one inverted list of groups per (query, location) pair:
// the I(q,l) family.
type GroupIndex struct {
	lists map[QL]*Inverted
	// Dimension metadata, sorted, shared by consumers.
	GroupKeys []string
	Queries   []core.Query
	Locations []core.Location
	groups    map[string]core.Group
}

// QueryIndex holds one inverted list of queries per (group, location)
// pair: the I(g,l) family.
type QueryIndex struct {
	lists     map[GL]*Inverted
	GroupKeys []string
	Queries   []core.Query
	Locations []core.Location
}

// LocationIndex holds one inverted list of locations per (group, query)
// pair: the I(g,q) family.
type LocationIndex struct {
	lists     map[GQ]*Inverted
	GroupKeys []string
	Queries   []core.Query
	Locations []core.Location
}

func dims(t *core.Table) (gks []string, gmap map[string]core.Group, qs []core.Query, ls []core.Location) {
	groups := t.Groups()
	gks = make([]string, len(groups))
	gmap = make(map[string]core.Group, len(groups))
	for i, g := range groups {
		gks[i] = g.Key()
		gmap[g.Key()] = g
	}
	return gks, gmap, t.Queries(), t.Locations()
}

// value returns the table's value for the triple, or 0 when undefined
// (the completion invariant).
func value(t *core.Table, g string, q core.Query, l core.Location) float64 {
	v, ok := t.GetKey(g, q, l)
	if !ok {
		return 0
	}
	return v
}

// BuildGroupIndex builds the I(q,l) family from an unfairness table.
func BuildGroupIndex(t *core.Table) *GroupIndex {
	gks, gmap, qs, ls := dims(t)
	gi := &GroupIndex{
		lists:     make(map[QL]*Inverted, len(qs)*len(ls)),
		GroupKeys: gks, Queries: qs, Locations: ls, groups: gmap,
	}
	for _, q := range qs {
		for _, l := range ls {
			entries := make([]Entry, len(gks))
			for i, g := range gks {
				entries[i] = Entry{Key: g, Value: value(t, g, q, l)}
			}
			gi.lists[QL{q, l}] = newInverted(entries)
		}
	}
	return gi
}

// Get returns the inverted list of groups for (q, l), or nil when the pair
// was not indexed.
func (gi *GroupIndex) Get(q core.Query, l core.Location) *Inverted {
	return gi.lists[QL{q, l}]
}

// Group resolves a group key to the core.Group recorded in the source
// table.
func (gi *GroupIndex) Group(key string) (core.Group, bool) {
	g, ok := gi.groups[key]
	return g, ok
}

// BuildQueryIndex builds the I(g,l) family from an unfairness table.
func BuildQueryIndex(t *core.Table) *QueryIndex {
	gks, _, qs, ls := dims(t)
	qi := &QueryIndex{
		lists:     make(map[GL]*Inverted, len(gks)*len(ls)),
		GroupKeys: gks, Queries: qs, Locations: ls,
	}
	for _, g := range gks {
		for _, l := range ls {
			entries := make([]Entry, len(qs))
			for i, q := range qs {
				entries[i] = Entry{Key: string(q), Value: value(t, g, q, l)}
			}
			qi.lists[GL{g, l}] = newInverted(entries)
		}
	}
	return qi
}

// Get returns the inverted list of queries for (groupKey, l).
func (qi *QueryIndex) Get(g string, l core.Location) *Inverted {
	return qi.lists[GL{g, l}]
}

// BuildLocationIndex builds the I(g,q) family from an unfairness table.
func BuildLocationIndex(t *core.Table) *LocationIndex {
	gks, _, qs, ls := dims(t)
	li := &LocationIndex{
		lists:     make(map[GQ]*Inverted, len(gks)*len(qs)),
		GroupKeys: gks, Queries: qs, Locations: ls,
	}
	for _, g := range gks {
		for _, q := range qs {
			entries := make([]Entry, len(ls))
			for i, l := range ls {
				entries[i] = Entry{Key: string(l), Value: value(t, g, q, l)}
			}
			li.lists[GQ{g, q}] = newInverted(entries)
		}
	}
	return li
}

// Get returns the inverted list of locations for (groupKey, q).
func (li *LocationIndex) Get(g string, q core.Query) *Inverted {
	return li.lists[GQ{g, q}]
}

// BuildAll builds the three Table-5 index families from one unfairness
// table, one family per goroutine (the families are independent and each
// build only reads the table). Every index this package builds is
// immutable once its Build* constructor returns — there is no mutating
// method on any index type — so the returned families may be shared by
// any number of concurrent readers; internal/serve relies on this to
// freeze them into query-serving snapshots.
func BuildAll(t *core.Table) (*GroupIndex, *QueryIndex, *LocationIndex) {
	var (
		gi *GroupIndex
		qi *QueryIndex
		li *LocationIndex
		wg sync.WaitGroup
	)
	wg.Add(3)
	go func() { defer wg.Done(); gi = BuildGroupIndex(t) }()
	go func() { defer wg.Done(); qi = BuildQueryIndex(t) }()
	go func() { defer wg.Done(); li = BuildLocationIndex(t) }()
	wg.Wait()
	return gi, qi, li
}
