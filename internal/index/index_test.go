package index

import (
	"fmt"
	"testing"
	"testing/quick"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

func sampleTable() *core.Table {
	t := core.NewTable()
	male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
	female := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
	t.Set(male, "q1", "l1", 0.2)
	t.Set(female, "q1", "l1", 0.8)
	t.Set(male, "q2", "l1", 0.5)
	t.Set(female, "q2", "l1", 0.4)
	t.Set(male, "q1", "l2", 0.9)
	// female@q1,l2 and both@q2,l2 left undefined: completion fills 0.
	return t
}

func TestInvertedOrderingAndAccess(t *testing.T) {
	iv := newInverted([]Entry{{"a", 0.3}, {"b", 0.9}, {"c", 0.3}})
	if iv.Len() != 3 {
		t.Fatalf("Len = %d", iv.Len())
	}
	e0, ok := iv.At(0)
	if !ok || e0.Key != "b" {
		t.Fatalf("At(0) = %v, %v", e0, ok)
	}
	// Ties broken by key: a before c.
	e1, _ := iv.At(1)
	e2, _ := iv.At(2)
	if e1.Key != "a" || e2.Key != "c" {
		t.Fatalf("tie order: %v, %v", e1, e2)
	}
	if _, ok := iv.At(3); ok {
		t.Fatal("At past end should fail")
	}
	if _, ok := iv.At(-1); ok {
		t.Fatal("At(-1) should fail")
	}
	if v, ok := iv.Find("c"); !ok || v != 0.3 {
		t.Fatalf("Find(c) = %v, %v", v, ok)
	}
	if _, ok := iv.Find("zzz"); ok {
		t.Fatal("Find of absent key should fail")
	}
}

func TestInvertedEntriesCopy(t *testing.T) {
	iv := newInverted([]Entry{{"a", 1}, {"b", 2}})
	es := iv.Entries()
	es[0].Value = 99
	if e, _ := iv.At(0); e.Value == 99 {
		t.Fatal("Entries leaks internal slice")
	}
}

func TestGroupIndexSortedByUnfairness(t *testing.T) {
	gi := BuildGroupIndex(sampleTable())
	iv := gi.Get("q1", "l1")
	if iv == nil {
		t.Fatal("missing list")
	}
	top, _ := iv.At(0)
	if top.Key != "gender=Female" || top.Value != 0.8 {
		t.Fatalf("top = %v", top)
	}
}

func TestGroupIndexCompletion(t *testing.T) {
	gi := BuildGroupIndex(sampleTable())
	// female@q1,l2 was undefined -> completed with 0.
	iv := gi.Get("q1", "l2")
	v, ok := iv.Find("gender=Female")
	if !ok || v != 0 {
		t.Fatalf("completed value = %v, %v", v, ok)
	}
	// Every list has every group.
	for _, q := range gi.Queries {
		for _, l := range gi.Locations {
			if got := gi.Get(q, l).Len(); got != len(gi.GroupKeys) {
				t.Fatalf("list (%s,%s) has %d entries, want %d", q, l, got, len(gi.GroupKeys))
			}
		}
	}
}

func TestGroupIndexGroupResolution(t *testing.T) {
	gi := BuildGroupIndex(sampleTable())
	g, ok := gi.Group("gender=Male")
	if !ok || g.Name() != "Male" {
		t.Fatalf("Group = %v, %v", g, ok)
	}
	if _, ok := gi.Group("nope"); ok {
		t.Fatal("unknown key resolved")
	}
}

func TestGroupIndexMissingPair(t *testing.T) {
	gi := BuildGroupIndex(sampleTable())
	if gi.Get("zzz", "l1") != nil {
		t.Fatal("unknown pair should return nil")
	}
}

func TestQueryIndex(t *testing.T) {
	qi := BuildQueryIndex(sampleTable())
	iv := qi.Get("gender=Male", "l1")
	if iv == nil || iv.Len() != 2 {
		t.Fatalf("list = %v", iv)
	}
	top, _ := iv.At(0)
	if top.Key != "q2" || top.Value != 0.5 {
		t.Fatalf("top query = %v", top)
	}
	// Completion: male@q2,l2 undefined -> 0.
	if v, ok := qi.Get("gender=Male", "l2").Find("q2"); !ok || v != 0 {
		t.Fatalf("completed = %v, %v", v, ok)
	}
}

func TestLocationIndex(t *testing.T) {
	li := BuildLocationIndex(sampleTable())
	iv := li.Get("gender=Male", "q1")
	if iv == nil || iv.Len() != 2 {
		t.Fatalf("list = %v", iv)
	}
	top, _ := iv.At(0)
	if top.Key != "l2" || top.Value != 0.9 {
		t.Fatalf("top location = %v", top)
	}
}

func TestIndexDimsSorted(t *testing.T) {
	gi := BuildGroupIndex(sampleTable())
	if len(gi.Queries) != 2 || gi.Queries[0] != "q1" {
		t.Fatalf("Queries = %v", gi.Queries)
	}
	if len(gi.Locations) != 2 || gi.Locations[0] != "l1" {
		t.Fatalf("Locations = %v", gi.Locations)
	}
	if len(gi.GroupKeys) != 2 || gi.GroupKeys[0] != "gender=Female" {
		t.Fatalf("GroupKeys = %v", gi.GroupKeys)
	}
}

// Property: for random tables, every posting list has identical membership
// (the completion invariant), entries sorted by descending value, and
// random access agrees with sorted access.
func TestIndexInvariantsProperty(t *testing.T) {
	f := func(seed uint64, ng, nq, nl uint8) bool {
		rng := stats.NewRNG(seed)
		tbl := core.NewTable()
		g := int(ng%6) + 1
		q := int(nq%5) + 1
		l := int(nl%5) + 1
		for gi := 0; gi < g; gi++ {
			grp := core.NewGroup(core.Predicate{Attr: "g", Value: fmt.Sprintf("g%d", gi)})
			for qi := 0; qi < q; qi++ {
				for li := 0; li < l; li++ {
					if rng.Bernoulli(0.7) { // sparse on purpose
						tbl.Set(grp, core.Query(fmt.Sprintf("q%d", qi)), core.Location(fmt.Sprintf("l%d", li)), rng.Float64())
					}
				}
			}
		}
		if tbl.Len() == 0 {
			return true
		}
		gi := BuildGroupIndex(tbl)
		for _, qq := range gi.Queries {
			for _, ll := range gi.Locations {
				iv := gi.Get(qq, ll)
				if iv == nil || iv.Len() != len(gi.GroupKeys) {
					return false
				}
				prev := 2.0
				for pos := 0; pos < iv.Len(); pos++ {
					e, ok := iv.At(pos)
					if !ok || e.Value > prev {
						return false
					}
					prev = e.Value
					if v, ok := iv.Find(e.Key); !ok || v != e.Value {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
