package experiment

import (
	"sort"

	"fairjob/internal/core"
)

// Ranked is one row of a defined-only ranking.
type Ranked struct {
	Key   string
	Name  string
	Value float64
}

// groupRanking ranks all groups in the table by defined-only average
// unfairness, descending — the aggregation the paper's empirical tables
// use (DESIGN.md §5).
func groupRanking(tbl *core.Table) []Ranked {
	qs, ls := tbl.Queries(), tbl.Locations()
	var out []Ranked
	for _, g := range tbl.Groups() {
		if v, ok := tbl.AggregateGroup(g, qs, ls); ok {
			out = append(out, Ranked{Key: g.Key(), Name: g.Name(), Value: v})
		}
	}
	sortRanked(out)
	return out
}

// locationRanking ranks all locations by defined-only average unfairness,
// descending.
func locationRanking(tbl *core.Table) []Ranked {
	gs, qs := tbl.Groups(), tbl.Queries()
	var out []Ranked
	for _, l := range tbl.Locations() {
		if v, ok := tbl.AggregateLocation(l, gs, qs); ok {
			out = append(out, Ranked{Key: string(l), Name: string(l), Value: v})
		}
	}
	sortRanked(out)
	return out
}

// querySetRanking ranks named query sets (categories, bases) by
// defined-only average unfairness, descending.
func querySetRanking(tbl *core.Table, sets map[string][]core.Query) []Ranked {
	gs, ls := tbl.Groups(), tbl.Locations()
	var out []Ranked
	for name, qs := range sets {
		var sum float64
		var n int
		for _, q := range qs {
			for _, g := range gs {
				for _, l := range ls {
					if v, ok := tbl.Get(g, q, l); ok {
						sum += v
						n++
					}
				}
			}
		}
		if n > 0 {
			out = append(out, Ranked{Key: name, Name: name, Value: sum / float64(n)})
		}
	}
	sortRanked(out)
	return out
}

func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Value != rs[j].Value {
			return rs[i].Value > rs[j].Value
		}
		return rs[i].Key < rs[j].Key
	})
}

// rankOf returns the position of key in a ranking, or -1.
func rankOf(rs []Ranked, key string) int {
	for i, r := range rs {
		if r.Key == key {
			return i
		}
	}
	return -1
}

// genderValue is the hierarchical gender aggregate: the average
// unfairness of the gender's full groups over the scope. The literal
// single-attribute gender groups have provably equal per-cell values
// whenever both genders appear, so the paper's asymmetric gender rows
// must be group-mediated (see EXPERIMENTS.md).
func genderValue(tbl *core.Table, gender string, qs []core.Query, ls []core.Location) (float64, bool) {
	var sum float64
	var n int
	for _, g := range core.DefaultSchema().FullGroups() {
		if v, ok := g.Label.ValueOf("gender"); !ok || v != gender {
			continue
		}
		if v, ok := tbl.AggregateGroup(g, qs, ls); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func ethnicityGroupKeys() []string {
	return []string{
		core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "Asian"}).Key(),
		core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "Black"}).Key(),
		core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "White"}).Key(),
	}
}
