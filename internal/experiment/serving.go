package experiment

import (
	"fmt"
	"math"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/report"
	"fairjob/internal/serve"
	"fairjob/internal/topk"
)

// servingRunner (SV1) validates the concurrent query-serving path on the
// TaskRabbit substrate: it freezes the marketplace EMD table into an
// immutable IndexSnapshot, fans a mixed Problem 1 / Problem 2 workload
// across the engine's worker pool, and cross-checks every response
// against a direct topk/compare computation on the same table. A second
// pass of the identical batch must be answered entirely from the result
// cache with byte-identical answers.
func servingRunner() Runner {
	return Runner{
		ID:    "SV1",
		Title: "Serving — concurrent batch equivalence on the marketplace table",
		Description: "Freezes the TaskRabbit EMD table into an IndexSnapshot, runs every " +
			"dimension × direction × algorithm quantification plus top-pair reversal " +
			"analyses through the batch engine, and cross-checks responses against " +
			"direct Algorithm 1–3 calls; a repeat batch must be all cache hits.",
		Run: func(env *Env) (*Result, error) {
			tbl := env.MarketTable(core.MeasureEMD)
			eng := serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{Workers: env.Workers})

			reqs := servingWorkload(tbl)
			first := eng.DoBatch(reqs)
			mismatches, errors := 0, 0
			for i, resp := range first {
				if resp.Err != nil {
					errors++
					continue
				}
				if !servingMatchesDirect(tbl, reqs[i], resp) {
					mismatches++
				}
			}

			second := eng.DoBatch(reqs)
			hits := 0
			for i, resp := range second {
				if resp.CacheHit && servingSameAnswer(first[i], resp) {
					hits++
				}
			}
			cs := eng.CacheStats()

			res := &Result{ID: "SV1", Title: "Concurrent serving equivalence"}
			out := report.NewTable("Batch serving on the marketplace EMD table",
				"Quantity", "Value")
			out.AddRow("batch size", len(reqs))
			out.AddRow("worker pool", core.BoundedWorkers(env.Workers, len(reqs)))
			out.AddRow("responses matching direct computation", len(reqs)-mismatches-errors)
			out.AddRow("request errors", errors)
			out.AddRow("repeat batch served from cache", hits)
			out.AddRow("engine cache hits / misses / entries", fmt.Sprintf("%d / %d / %d", cs.Hits, cs.Misses, cs.Entries))
			res.Tables = append(res.Tables, out)

			res.check(errors == 0, "all %d batch requests executed without error", len(reqs))
			res.check(mismatches == 0, "engine responses ≡ direct Algorithm 1–3 computations (%d mismatch(es))", mismatches)
			res.check(hits == len(reqs), "repeat batch is 100%% cache hits with identical answers (%d/%d)", hits, len(reqs))
			return res, nil
		},
	}
}

// servingWorkload builds the SV1 request mix: every dimension × direction
// × algorithm quantification at two ks, plus the reversal analysis of the
// two most unfair members of each dimension under both aggregation
// semantics. Operands come from direct computation on the source table so
// the workload itself is independent of the serve layer under test.
func servingWorkload(tbl *core.Table) []serve.Request {
	var reqs []serve.Request
	dims := []compare.Dimension{compare.ByGroup, compare.ByQuery, compare.ByLocation}
	for _, d := range dims {
		for _, dir := range []topk.Direction{topk.MostUnfair, topk.LeastUnfair} {
			for _, algo := range topk.Algorithms() {
				for _, k := range []int{1, 5} {
					reqs = append(reqs, serve.Request{
						Problem: serve.Quantify, Dim: d, K: k, Direction: dir, Algorithm: algo,
					})
				}
			}
		}
	}
	for _, d := range dims {
		top := quantifyDirect(tbl, d, 2, topk.MostUnfair)
		if len(top) < 2 {
			continue
		}
		by := compare.ByQuery
		if d == compare.ByQuery {
			by = compare.ByLocation
		}
		for _, definedOnly := range []bool{false, true} {
			reqs = append(reqs, serve.Request{
				Problem: serve.Compare, Of: d, R1: top[0].Key, R2: top[1].Key,
				By: by, DefinedOnly: definedOnly,
			})
		}
	}
	return reqs
}

// quantifyDirect answers Problem 1 without the serve layer, building a
// fresh index — the independent reference SV1 cross-checks against.
func quantifyDirect(tbl *core.Table, d compare.Dimension, k int, dir topk.Direction) []topk.Result {
	var (
		res []topk.Result
		err error
	)
	switch d {
	case compare.ByGroup:
		res, err = topk.GroupFairness(index.BuildGroupIndex(tbl), nil, nil, k, dir)
	case compare.ByQuery:
		res, err = topk.QueryFairness(index.BuildQueryIndex(tbl), nil, nil, k, dir)
	case compare.ByLocation:
		res, err = topk.LocationFairness(index.BuildLocationIndex(tbl), nil, nil, k, dir)
	}
	if err != nil {
		return nil
	}
	return res
}

// servingMatchesDirect recomputes a request with direct topk/compare
// calls on the source table and compares member sets and values (1e-12,
// absorbing nothing — index construction is deterministic, so the sums
// are bitwise-reproducible, but the tolerance keeps the check honest if
// iteration order ever changes).
func servingMatchesDirect(tbl *core.Table, req serve.Request, resp serve.Response) bool {
	const eps = 1e-12
	switch req.Problem {
	case serve.Quantify:
		want := quantifyDirect(tbl, req.Dim, req.K, req.Direction)
		if len(want) != len(resp.Results) {
			return false
		}
		for i := range want {
			if want[i].Key != resp.Results[i].Key || math.Abs(want[i].Value-resp.Results[i].Value) > eps {
				return false
			}
		}
		return true
	case serve.Compare:
		var c *compare.Comparer
		if req.DefinedOnly {
			c = compare.NewDefinedOnly(tbl)
		} else {
			c = compare.New(index.BuildGroupIndex(tbl))
		}
		var (
			want *compare.Comparison
			err  error
		)
		switch req.Of {
		case compare.ByGroup:
			want, err = c.Groups(req.R1, req.R2, req.By, compare.Scope{})
		case compare.ByQuery:
			want, err = c.Queries(core.Query(req.R1), core.Query(req.R2), req.By, compare.Scope{})
		case compare.ByLocation:
			want, err = c.Locations(core.Location(req.R1), core.Location(req.R2), req.By, compare.Scope{})
		}
		if err != nil || want == nil || resp.Comparison == nil {
			return false
		}
		got := resp.Comparison
		if math.Abs(want.Overall1-got.Overall1) > eps || math.Abs(want.Overall2-got.Overall2) > eps {
			return false
		}
		if len(want.Reversed) != len(got.Reversed) {
			return false
		}
		for i := range want.Reversed {
			if want.Reversed[i].B != got.Reversed[i].B {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// servingSameAnswer reports whether two responses carry the same payload
// (the cache-hit ≡ cache-miss contract, checked field-wise).
func servingSameAnswer(a, b serve.Response) bool {
	return fmt.Sprintf("%+v%+v%+v", a.Results, a.Stats, a.Comparison) ==
		fmt.Sprintf("%+v%+v%+v", b.Results, b.Stats, b.Comparison)
}
