package experiment

import "fmt"

// All returns every experiment runner in canonical order: the paper's
// worked examples first, then the TaskRabbit case study, then Google job
// search. Each entry maps to one table or figure of the paper; see
// DESIGN.md §4 for the index.
func All() []Runner {
	return []Runner{
		figure1(),
		figure2(),
		figure3(),
		figure4(),
		figure5(),
		breakdownRunner("F7", "Figure 7 — gender breakdown of crawled taskers", "gender", "Male", 0.72),
		breakdownRunner("F8", "Figure 8 — ethnic breakdown of crawled taskers", "ethnicity", "White", 0.66),
		table8(),
		table9(),
		tables10and11(),
		table12(),
		tables13and14(),
		table15(),
		table6(),
		table7(),
		googleQuant(),
		tables16and17(),
		tables18and19(),
		tables20and21(),
		significanceRunner(),
		servingRunner(),
		observabilityRunner(),
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiment: unknown id %q", id)
}

// IDs lists all runner IDs in canonical order.
func IDs() []string {
	rs := All()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}
