package experiment

import (
	"fmt"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/marketplace"
	"fairjob/internal/report"
)

// figure7and8 reproduces Figures 7–8: the gender and ethnic breakdowns of
// the taskers appearing in the crawl.
func breakdownRunner(id, title, attr string, wantTop string, wantShare float64) Runner {
	return Runner{
		ID:    id,
		Title: title,
		Description: fmt.Sprintf("Computes the %s breakdown of the taskers appearing in crawled "+
			"result pages, the statistic behind the paper's pie chart.", attr),
		Run: func(env *Env) (*Result, error) {
			ds := env.MarketDataset()
			shares := ds.Breakdown(attr)
			res := &Result{ID: id, Title: title}
			tbl := report.NewTable(title, attr, "Count", "Share")
			var topShare float64
			for _, s := range shares {
				tbl.AddRow(s.Value, s.Count, s.Fraction)
				if s.Value == wantTop {
					topShare = s.Fraction
				}
			}
			res.Tables = append(res.Tables, tbl)
			res.check(approxEq(topShare, wantShare, 0.04),
				"%s share = %.2f (paper: ≈%.2f)", wantTop, topShare, wantShare)
			res.notef("unique taskers on pages: %d (paper's crawl: 3,311; our supply is larger so truncation exists — DESIGN.md §2)",
				ds.UniqueTaskersOnPages())
			return res, nil
		},
	}
}

// table8 reproduces Table 8: all 11 groups ranked by EMD and exposure.
func table8() Runner {
	return Runner{
		ID:    "T8",
		Title: "Table 8 — EMD and Exposure of all groups on TaskRabbit",
		Description: "Ranks the 11 demographic groups by defined-only average unfairness " +
			"under both marketplace measures, as in the paper's Table 8.",
		Run: func(env *Env) (*Result, error) {
			emd := groupRanking(env.MarketTable(core.MeasureEMD))
			exp := groupRanking(env.MarketTable(core.MeasureExposure))
			res := &Result{ID: "T8", Title: "Table 8"}
			tbl := report.NewTable("Groups ranked from unfairest to fairest",
				"Group (EMD)", "EMD", "Group (Exposure)", "Exposure")
			for i := range emd {
				eName, eVal := "", ""
				if i < len(exp) {
					eName, eVal = exp[i].Name, fmt.Sprintf("%.3f", exp[i].Value)
				}
				tbl.AddRow(emd[i].Name, emd[i].Value, eName, eVal)
			}
			res.Tables = append(res.Tables, tbl)

			res.check(emd[0].Name == "Asian Female", "EMD: Asian Female most discriminated against (got %s)", emd[0].Name)
			amPos := -1
			for i, r := range emd {
				if r.Name == "Asian Male" {
					amPos = i
				}
			}
			res.check(amPos >= 0 && amPos <= 3, "EMD: Asian Male in the top 4 (got rank %d)", amPos+1)
			res.check(exp[0].Name == "Asian" || exp[0].Name == "Asian Female" || exp[0].Name == "Asian Male",
				"Exposure: an Asian group most discriminated against (got %s)", exp[0].Name)
			res.notef("divergence: under exposure, dense pages rank beneficiary groups (White, White Male) higher than the paper's sparse crawl did — see EXPERIMENTS.md")
			return res, nil
		},
	}
}

func categorySets() map[string][]core.Query {
	sets := map[string][]core.Query{}
	for _, cat := range marketplace.Categories() {
		sets[cat.Name] = marketplace.QueriesOf(cat)
	}
	return sets
}

// table9 reproduces Table 9: the 8 job categories ranked by both measures.
func table9() Runner {
	return Runner{
		ID:    "T9",
		Title: "Table 9 — EMD and Exposure for all jobs on TaskRabbit",
		Description: "Ranks the eight job categories by defined-only average unfairness " +
			"under both marketplace measures.",
		Run: func(env *Env) (*Result, error) {
			sets := categorySets()
			emd := querySetRanking(env.MarketTable(core.MeasureEMD), sets)
			exp := querySetRanking(env.MarketTable(core.MeasureExposure), sets)
			res := &Result{ID: "T9", Title: "Table 9"}
			tbl := report.NewTable("Job categories ranked from unfairest to fairest",
				"Job (EMD)", "EMD", "Job (Exposure)", "Exposure")
			for i := range emd {
				tbl.AddRow(emd[i].Name, emd[i].Value, exp[i].Name, exp[i].Value)
			}
			res.Tables = append(res.Tables, tbl)
			for _, rk := range [][]Ranked{emd, exp} {
				top := rk[0].Name
				res.check(top == "Handyman" || top == "Yard Work",
					"most unfair category is Handyman or Yard Work (got %s)", top)
				res.check(rankOf(rk, "Delivery") >= 5 && rankOf(rk, "Furniture Assembly") >= 5,
					"Delivery (rank %d) and Furniture Assembly (rank %d) among the fairest 3",
					rankOf(rk, "Delivery")+1, rankOf(rk, "Furniture Assembly")+1)
			}
			return res, nil
		},
	}
}

// tables10and11 reproduces Tables 10–11: the least and most fair
// locations.
func tables10and11() Runner {
	return Runner{
		ID:    "T10",
		Title: "Tables 10–11 — unfairest and fairest locations on TaskRabbit",
		Description: "Ranks the 56 cities by defined-only average unfairness under both " +
			"measures and reports the top and bottom 10, as in Tables 10 and 11.",
		Run: func(env *Env) (*Result, error) {
			emd := locationRanking(env.MarketTable(core.MeasureEMD))
			exp := locationRanking(env.MarketTable(core.MeasureExposure))
			res := &Result{ID: "T10", Title: "Tables 10–11"}

			unfair := report.NewTable("Table 10 — ten unfairest locations",
				"City (EMD)", "EMD", "City (Exposure)", "Exposure")
			for i := 0; i < 10; i++ {
				unfair.AddRow(emd[i].Name, emd[i].Value, exp[i].Name, exp[i].Value)
			}
			fair := report.NewTable("Table 11 — ten fairest locations",
				"City (EMD)", "EMD", "City (Exposure)", "Exposure")
			for i := 0; i < 10; i++ {
				j := len(emd) - 1 - i
				fair.AddRow(emd[j].Name, emd[j].Value, exp[j].Name, exp[j].Value)
			}
			res.Tables = append(res.Tables, unfair, fair)

			res.check(rankOf(emd, "Birmingham, UK") <= 2, "EMD: Birmingham, UK among the 3 least fair (rank %d)", rankOf(emd, "Birmingham, UK")+1)
			res.check(rankOf(emd, "Oklahoma City, OK") <= 3, "EMD: Oklahoma City among the 4 least fair (rank %d)", rankOf(emd, "Oklahoma City, OK")+1)
			n := len(emd)
			res.check(rankOf(emd, "Chicago, IL") >= n-5, "EMD: Chicago among the 5 fairest (rank %d of %d)", rankOf(emd, "Chicago, IL")+1, n)
			res.check(rankOf(emd, "San Francisco, CA") >= n-5, "EMD: San Francisco among the 5 fairest (rank %d of %d)", rankOf(emd, "San Francisco, CA")+1, n)
			res.check(rankOf(exp, "Birmingham, UK") <= 9, "Exposure: Birmingham among the 10 least fair (rank %d)", rankOf(exp, "Birmingham, UK")+1)
			return res, nil
		},
	}
}

// table12 reproduces Table 12: males vs females by location under
// exposure, listing the locations whose comparison differs from the
// overall one.
func table12() Runner {
	return Runner{
		ID:    "T12",
		Title: "Table 12 — male/female comparison by location (Exposure)",
		Description: "Solves the group-comparison instance of Problem 2 for Males vs " +
			"Females with locations as the breakdown, under the exposure measure.",
		Run: func(env *Env) (*Result, error) {
			tbl := env.MarketTable(core.MeasureExposure)
			cmp, err := compare.NewDefinedOnly(tbl).Groups(
				core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"}).Key(),
				core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}).Key(),
				compare.ByLocation, compare.Scope{})
			if err != nil {
				return nil, err
			}
			res := &Result{ID: "T12", Title: "Table 12"}
			out := report.NewTable("Locations where females are treated at least as fairly as males",
				"Group-comparison", "Males", "Females")
			out.AddRow("All", cmp.Overall1, cmp.Overall2)
			for _, b := range cmp.Reversed {
				out.AddRow(b.B, b.V1, b.V2)
			}
			res.Tables = append(res.Tables, out)

			res.check(cmp.Overall1 < cmp.Overall2,
				"overall, females are treated less fairly (male %.4f < female %.4f)", cmp.Overall1, cmp.Overall2)
			ffHit := 0
			reversed := map[string]bool{}
			for _, b := range cmp.Reversed {
				reversed[b.B] = true
			}
			var ffTotal int
			for _, c := range marketplace.Cities() {
				if c.FemaleFavored {
					ffTotal++
					if reversed[string(c.Name)] {
						ffHit++
					}
				}
			}
			res.check(ffHit == ffTotal, "all %d female-favoring cities appear in the reversal set (%d found, %d total reversals)",
				ffTotal, ffHit, len(cmp.Reversed))
			return res, nil
		},
	}
}

// tables13and14 reproduces Tables 13–14: Lawn Mowing vs Event Decorating
// broken down by ethnicity, under EMD and exposure.
func tables13and14() Runner {
	return Runner{
		ID:    "T13",
		Title: "Tables 13–14 — Lawn Mowing vs Event Decorating by ethnicity",
		Description: "Solves the query-comparison instance of Problem 2 for Lawn Mowing vs " +
			"Event Decorating with ethnicity as the breakdown, under EMD (Table 13) and " +
			"exposure (Table 14).",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "T13", Title: "Tables 13–14"}
			for _, mc := range []struct {
				measure  core.MarketplaceMeasure
				tableNo  string
				mustFlip string
			}{
				{core.MeasureEMD, "Table 13", "White"},
				{core.MeasureExposure, "Table 14", "Black"},
			} {
				tbl := env.MarketTable(mc.measure)
				cmp, err := compare.NewDefinedOnly(tbl).Queries(
					"Lawn Mowing", "Event Decorating", compare.ByGroup,
					compare.Scope{Groups: ethnicityGroupKeys()})
				if err != nil {
					return nil, err
				}
				out := report.NewTable(fmt.Sprintf("%s (%v)", mc.tableNo, mc.measure),
					"Job-comparison", "Lawn Mowing", "Event Decorating", "differs")
				out.AddRow("All", cmp.Overall1, cmp.Overall2, "")
				flipped := map[string]bool{}
				for _, b := range cmp.All {
					g, _ := tbl.GroupByKey(b.B)
					out.AddRow(g.Name(), b.V1, b.V2, fmt.Sprintf("%v", b.Reversed))
					if b.Reversed {
						flipped[g.Name()] = true
					}
				}
				res.Tables = append(res.Tables, out)
				res.check(cmp.Overall1 > cmp.Overall2,
					"%v: Lawn Mowing less fair than Event Decorating overall (%.3f vs %.3f)",
					mc.measure, cmp.Overall1, cmp.Overall2)
				res.check(flipped[mc.mustFlip], "%v: the comparison reverses for %s (paper's %s)",
					mc.measure, mc.mustFlip, mc.tableNo)
			}
			res.notef("as in the paper, EMD and exposure disagree on which ethnicity reverses — flagged there as warranting further investigation")
			return res, nil
		},
	}
}

// table15 reproduces Table 15: SF Bay Area vs Chicago broken down by
// General Cleaning jobs under EMD.
func table15() Runner {
	return Runner{
		ID:    "T15",
		Title: "Table 15 — SF Bay Area vs Chicago across General Cleaning jobs (EMD)",
		Description: "Solves the location-comparison instance of Problem 2 for the San " +
			"Francisco Bay Area vs Chicago with General Cleaning jobs as the breakdown.",
		Run: func(env *Env) (*Result, error) {
			tbl := env.MarketTable(core.MeasureEMD)
			gc, _ := marketplace.CategoryByName("General Cleaning")
			cmp, err := compare.NewDefinedOnly(tbl).Locations(
				"San Francisco Bay Area, CA", "Chicago, IL", compare.ByQuery,
				compare.Scope{Queries: marketplace.QueriesOf(gc)})
			if err != nil {
				return nil, err
			}
			res := &Result{ID: "T15", Title: "Table 15"}
			out := report.NewTable("Jobs where the SF-fairer trend inverts",
				"Location-comparison", "San Francisco Bay Area, CA", "Chicago, IL")
			out.AddRow("All", cmp.Overall1, cmp.Overall2)
			reversed := map[string]bool{}
			for _, b := range cmp.Reversed {
				out.AddRow(b.B, b.V1, b.V2)
				reversed[b.B] = true
			}
			res.Tables = append(res.Tables, out)
			res.check(cmp.Overall1 < cmp.Overall2,
				"SF Bay Area fairer than Chicago overall (%.3f vs %.3f)", cmp.Overall1, cmp.Overall2)
			ok := reversed["Back To Organized"] && reversed["Organize & Declutter"] && reversed["Organize Closet"]
			res.check(ok, "the trend inverts for Back To Organized, Organize & Declutter and Organize Closet")
			return res, nil
		},
	}
}
