package experiment

import (
	"fmt"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/report"
	"fairjob/internal/search"
)

// table6 reproduces Table 6: sample TaskRabbit queries and their
// equivalent Google search terms.
func table6() Runner {
	return Runner{
		ID:    "T6",
		Title: "Table 6 — sample queries and equivalent Google search terms",
		Description: "Shows the Keyword-Planner stand-in fanning the paper's two sample " +
			"queries into five equivalent search formulations each.",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "T6", Title: "Table 6"}
			tbl := report.NewTable("Equivalent Google search terms",
				"TaskRabbit query", "Location", "Equivalent search term")
			samples := []struct {
				base string
				loc  core.Location
			}{
				{"run errand", "London, UK"},
				{"yard work", "New York City, NY"},
			}
			for _, s := range samples {
				for _, term := range search.EquivalentTerms(s.base) {
					tbl.AddRow(s.base, s.loc, search.FullTerm(term, s.loc))
				}
			}
			res.Tables = append(res.Tables, tbl)
			res.check(len(search.EquivalentTerms("run errand")) == 5, "five formulations per query, as in the study design")
			return res, nil
		},
	}
}

// table7 reproduces Table 7: the number of study locations per job.
func table7() Runner {
	return Runner{
		ID:          "T7",
		Title:       "Table 7 — number of locations per job in the Google study",
		Description: "Derives the study design's job-to-location distribution.",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "T7", Title: "Table 7"}
			counts := map[string]int{}
			for _, s := range search.Studies() {
				counts[s.Base]++
			}
			tbl := report.NewTable("Locations per job", "Job", "Locations")
			for _, base := range search.Bases() {
				tbl.AddRow(base, counts[base])
			}
			res.Tables = append(res.Tables, tbl)
			res.check(counts["yard work"] == 4 && counts["general cleaning"] == 3 &&
				counts["event staffing"] == 1 && counts["moving job"] == 1 && counts["run errand"] == 1,
				"matches Table 7 (yard work 4, general cleaning 3, others 1)")
			res.notef("furniture assembly (1 location) is our addition so the §5.2.2 query finding has a subject")
			return res, nil
		},
	}
}

// googleQuant reproduces §5.2.2: the quantification findings on Google job
// search for groups, locations and queries under both measures.
func googleQuant() Runner {
	return Runner{
		ID:    "GQ",
		Title: "§5.2.2 — Google job search fairness quantification",
		Description: "Ranks groups, locations and query bases by defined-only average " +
			"unfairness under Kendall Tau and Jaccard.",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "GQ", Title: "Google fairness quantification"}
			for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
				tbl := env.GoogleTable(measure)

				groups := groupRanking(tbl)
				gt := report.NewTable(fmt.Sprintf("Groups (%v)", measure), "Group", "Unfairness")
				var full []Ranked
				for _, r := range groups {
					g, _ := tbl.GroupByKey(r.Key)
					if len(g.Label) == 2 {
						full = append(full, r)
					}
					gt.AddRow(r.Name, r.Value)
				}
				res.Tables = append(res.Tables, gt)
				res.check(len(full) > 0 && full[0].Name == "White Female",
					"%v: White Females most discriminated against (got %s)", measure, full[0].Name)
				res.check(len(full) > 0 && full[len(full)-1].Name == "Black Male",
					"%v: Black Males least discriminated against (got %s)", measure, full[len(full)-1].Name)

				locs := locationRanking(tbl)
				lt := report.NewTable(fmt.Sprintf("Locations (%v)", measure), "Location", "Unfairness")
				for _, r := range locs {
					lt.AddRow(r.Name, r.Value)
				}
				res.Tables = append(res.Tables, lt)
				res.check(locs[0].Name == "London, UK", "%v: London, UK is the unfairest location (got %s)", measure, locs[0].Name)
				res.check(locs[len(locs)-1].Name == "Washington, DC", "%v: Washington, DC is the fairest location (got %s)", measure, locs[len(locs)-1].Name)

				sets := map[string][]core.Query{}
				for _, base := range search.Bases() {
					sets[base] = search.TermsOfBase(base)
				}
				bases := querySetRanking(tbl, sets)
				bt := report.NewTable(fmt.Sprintf("Queries (%v)", measure), "Query base", "Unfairness")
				for _, r := range bases {
					bt.AddRow(r.Name, r.Value)
				}
				res.Tables = append(res.Tables, bt)
				res.check(bases[0].Name == "yard work", "%v: yard work is the most unfair query (got %s)", measure, bases[0].Name)
				res.check(bases[len(bases)-1].Name == "furniture assembly", "%v: furniture assembly is the fairest query (got %s)",
					measure, bases[len(bases)-1].Name)
			}
			return res, nil
		},
	}
}

// tables16and17 reproduces Tables 16–17: the male/female comparison by
// location under Kendall Tau and Jaccard.
func tables16and17() Runner {
	return Runner{
		ID:    "T16",
		Title: "Tables 16–17 — male/female comparison by location on Google",
		Description: "Compares the gender aggregates per location under both measures: " +
			"males fare worse at the Table 16 cities, females at the Table 17 cities.",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "T16", Title: "Tables 16–17"}
			maleWorse := map[core.Location]bool{
				"Birmingham, UK": true, "Bristol, UK": true, "Detroit, MI": true, "New York City, NY": true,
			}
			femaleWorse := map[core.Location]bool{
				"Boston, MA": true, "Charlotte, NC": true, "London, UK": true,
				"Los Angeles, CA": true, "Manchester, UK": true, "Pittsburgh, PA": true,
			}
			for _, mc := range []struct {
				measure core.SearchMeasure
				tableNo string
			}{
				{core.MeasureKendallTau, "Table 16"},
				{core.MeasureJaccard, "Table 17"},
			} {
				tbl := env.GoogleTable(mc.measure)
				qs := tbl.Queries()
				om, _ := genderValue(tbl, "Male", qs, tbl.Locations())
				of, _ := genderValue(tbl, "Female", qs, tbl.Locations())
				out := report.NewTable(fmt.Sprintf("%s (%v)", mc.tableNo, mc.measure),
					"Group-comparison", "Males", "Females")
				out.AddRow("All", om, of)
				okMale, okFemale := true, true
				for _, l := range tbl.Locations() {
					lm, okM := genderValue(tbl, "Male", qs, []core.Location{l})
					lf, okF := genderValue(tbl, "Female", qs, []core.Location{l})
					if !okM || !okF {
						continue
					}
					out.AddRow(string(l), lm, lf)
					if maleWorse[l] && lm < lf {
						okMale = false
					}
					if femaleWorse[l] && lf < lm {
						okFemale = false
					}
				}
				res.Tables = append(res.Tables, out)
				res.check(om < of, "%v: females treated less fairly overall (%.3f vs %.3f)", mc.measure, of, om)
				res.check(okMale, "%v: males treated less fairly at all Table 16 cities", mc.measure)
				res.check(okFemale, "%v: females treated less fairly at all Table 17 cities", mc.measure)
			}
			res.notef("divergence: the paper's Jaccard overall direction flips by 0.002 (0.395 vs 0.393); we certify the per-location geography instead — see EXPERIMENTS.md")
			return res, nil
		},
	}
}

// tables18and19 reproduces Tables 18–19: running errands vs general
// cleaning by ethnicity.
func tables18and19() Runner {
	return Runner{
		ID:    "T18",
		Title: "Tables 18–19 — Running Errands vs General Cleaning by ethnicity on Google",
		Description: "Compares the two query families with ethnicity as the breakdown " +
			"under both measures; Black users reverse under both, Asian users under " +
			"Kendall Tau only.",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "T18", Title: "Tables 18–19"}
			re := search.TermsOfBase("run errand")
			gc := search.TermsOfBase("general cleaning")
			for _, mc := range []struct {
				measure       core.SearchMeasure
				tableNo       string
				asianReverses bool
			}{
				{core.MeasureKendallTau, "Table 18", true},
				{core.MeasureJaccard, "Table 19", false},
			} {
				tbl := env.GoogleTable(mc.measure)
				cmp, err := compare.NewDefinedOnly(tbl).QuerySets(
					"Running Errands", "General Cleaning", re, gc,
					compare.ByGroup, compare.Scope{Groups: ethnicityGroupKeys()})
				if err != nil {
					return nil, err
				}
				out := report.NewTable(fmt.Sprintf("%s (%v)", mc.tableNo, mc.measure),
					"Job-comparison", "Running Errands", "General Cleaning", "differs")
				out.AddRow("All", cmp.Overall1, cmp.Overall2, "")
				flipped := map[string]bool{}
				for _, b := range cmp.All {
					g, _ := tbl.GroupByKey(b.B)
					out.AddRow(g.Name(), b.V1, b.V2, fmt.Sprintf("%v", b.Reversed))
					flipped[g.Name()] = b.Reversed
				}
				res.Tables = append(res.Tables, out)
				res.check(cmp.Overall1 > cmp.Overall2,
					"%v: running errands less fair than general cleaning overall (%.3f vs %.3f)",
					mc.measure, cmp.Overall1, cmp.Overall2)
				res.check(flipped["Black"], "%v: the comparison reverses for Black users", mc.measure)
				res.check(flipped["Asian"] == mc.asianReverses,
					"%v: Asian reversal = %v (paper: %v)", mc.measure, flipped["Asian"], mc.asianReverses)
			}
			res.notef("as in the paper, Kendall Tau and Jaccard disagree on Asian users — flagged there as warranting further investigation")
			return res, nil
		},
	}
}

// tables20and21 reproduces Tables 20–21: Boston vs Bristol across the
// general-cleaning formulations.
func tables20and21() Runner {
	return Runner{
		ID:    "T20",
		Title: "Tables 20–21 — Boston vs Bristol across General Cleaning formulations",
		Description: "Compares the two locations with the five general-cleaning search " +
			"formulations as the breakdown, under both measures.",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "T20", Title: "Tables 20–21"}
			gcTerms := search.TermsOfBase("general cleaning")
			for _, mc := range []struct {
				measure core.SearchMeasure
				tableNo string
			}{
				{core.MeasureKendallTau, "Table 20"},
				{core.MeasureJaccard, "Table 21"},
			} {
				tbl := env.GoogleTable(mc.measure)
				cmp, err := compare.NewDefinedOnly(tbl).Locations(
					"Boston, MA", "Bristol, UK", compare.ByQuery,
					compare.Scope{Queries: gcTerms})
				if err != nil {
					return nil, err
				}
				out := report.NewTable(fmt.Sprintf("%s (%v)", mc.tableNo, mc.measure),
					"Location-comparison", "Boston, MA", "Bristol, UK", "differs")
				out.AddRow("All", cmp.Overall1, cmp.Overall2, "")
				reversed := map[string]bool{}
				for _, b := range cmp.All {
					out.AddRow(b.B, b.V1, b.V2, fmt.Sprintf("%v", b.Reversed))
					reversed[b.B] = b.Reversed
				}
				res.Tables = append(res.Tables, out)
				res.check(cmp.Overall1 < cmp.Overall2,
					"%v: Boston fairer than Bristol overall (%.3f vs %.3f)", mc.measure, cmp.Overall1, cmp.Overall2)
				res.check(reversed["office cleaning jobs"] && reversed["private cleaning jobs"],
					"%v: the trend inverts for office and private cleaning formulations", mc.measure)
			}
			res.notef("as in the paper, the two measures agree here (Tables 20 and 21 report the same reversals)")
			return res, nil
		},
	}
}
