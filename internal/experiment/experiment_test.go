package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// sharedEnv is reused across tests: the crawl and tables are expensive and
// deterministic.
var sharedEnv = NewEnv(0)

// TestAllRunnersPassTheirShapeChecks runs the full registry and requires
// every embedded shape check to pass: this is the repository's end-to-end
// reproduction test.
func TestAllRunnersPassTheirShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction sweep")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			res, err := r.Run(sharedEnv)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if res.ID != r.ID {
				t.Errorf("result ID %q != runner ID %q", res.ID, r.ID)
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", r.ID)
			}
			shapeChecks := 0
			for _, note := range res.Notes {
				t.Log(note)
				if strings.HasPrefix(note, "shape [FAIL]") {
					t.Errorf("%s: %s", r.ID, note)
				}
				if strings.HasPrefix(note, "shape [") {
					shapeChecks++
				}
			}
			if shapeChecks == 0 {
				t.Errorf("%s has no shape checks", r.ID)
			}
			// Every table must render in every format.
			for _, tbl := range res.Tables {
				var buf bytes.Buffer
				if err := tbl.WriteText(&buf); err != nil {
					t.Errorf("%s: text render: %v", r.ID, err)
				}
				if err := tbl.WriteMarkdown(&buf); err != nil {
					t.Errorf("%s: markdown render: %v", r.ID, err)
				}
				if err := tbl.WriteCSV(&buf); err != nil {
					t.Errorf("%s: csv render: %v", r.ID, err)
				}
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs = %d, runners = %d", len(ids), len(All()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate runner ID %q", id)
		}
		seen[id] = true
		r, err := ByID(id)
		if err != nil || r.ID != id {
			t.Errorf("ByID(%q) = %v, %v", id, r.ID, err)
		}
		if r.Title == "" || r.Description == "" {
			t.Errorf("%s missing title or description", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID should error")
	}
	// The registry must cover the paper's evaluation artifacts.
	for _, want := range []string{"F1", "F2", "F3", "F4", "F5", "F7", "F8",
		"T6", "T7", "T8", "T9", "T10", "T12", "T13", "T15", "GQ", "T16", "T18", "T20"} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestPermutationWithInversions(t *testing.T) {
	counts := func(perm []string) int {
		// Count inversions relative to sorted order of the labels.
		inv := 0
		for i := 0; i < len(perm); i++ {
			for j := i + 1; j < len(perm); j++ {
				if perm[i] > perm[j] {
					inv++
				}
			}
		}
		return inv
	}
	for _, tc := range []struct{ n, k int }{{5, 0}, {5, 10}, {5, 7}, {20, 133}, {20, 95}, {20, 57}, {2, 1}} {
		perm := permutationWithInversions(tc.n, tc.k)
		if got := counts(perm); got != tc.k {
			t.Errorf("permutationWithInversions(%d, %d) has %d inversions", tc.n, tc.k, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for impossible inversion count")
		}
	}()
	permutationWithInversions(3, 99)
}

func TestEnvCachesAndSeeds(t *testing.T) {
	e := NewEnv(0)
	if e.Seed != DefaultSeed {
		t.Fatalf("seed = %d", e.Seed)
	}
	if e.Market() != e.Market() {
		t.Fatal("Market not cached")
	}
	e2 := NewEnv(123)
	if e2.Seed != 123 {
		t.Fatalf("seed = %d", e2.Seed)
	}
}

// TestObservedLabelsStayCloseToGroundTruth verifies that the simulated
// AMT labeling step does not change the headline shape: the most
// discriminated-against group is the same under observed and true labels.
func TestObservedLabelsStayCloseToGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("two full crawls")
	}
	observed := NewEnv(0)
	observed.ObservedLabels = true
	truth := sharedEnv
	for _, mk := range []struct{ name string }{{"EMD"}} {
		_ = mk
		obsRank := groupRanking(observed.MarketTable(0)) // MeasureEMD == 0
		truthRank := groupRanking(truth.MarketTable(0))
		if obsRank[0].Name != truthRank[0].Name {
			t.Errorf("top group differs: observed %s vs truth %s", obsRank[0].Name, truthRank[0].Name)
		}
	}
}
