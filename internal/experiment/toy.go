package experiment

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/metrics"
	"fairjob/internal/report"
	"fairjob/internal/stats"
)

// permutationWithInversions builds a permutation of [0, n) with exactly k
// inversions (0 <= k <= n(n-1)/2), rendered as item names. It lets the toy
// runners reconstruct the paper's worked examples with exact Kendall
// distances.
func permutationWithInversions(n, k int) []string {
	if max := n * (n - 1) / 2; k < 0 || k > max {
		panic(fmt.Sprintf("experiment: cannot build %d inversions with %d items", k, n))
	}
	// Insert items back-to-front: placing item i (0-based from the end)
	// j positions from the left of the remaining slots creates j
	// inversions with the smaller items... Simpler constructive scheme:
	// Lehmer code. digits[i] ∈ [0, n-1-i] counts inversions contributed
	// by position i.
	digits := make([]int, n)
	rem := k
	for i := 0; i < n; i++ {
		maxDigit := n - 1 - i
		d := rem
		if d > maxDigit {
			d = maxDigit
		}
		digits[i] = d
		rem -= d
	}
	// Decode the Lehmer code.
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	out := make([]string, n)
	for i, d := range digits {
		v := avail[d]
		avail = append(avail[:d], avail[d+1:]...)
		out[i] = fmt.Sprintf("job%02d", v)
	}
	return out
}

func identityList(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("job%02d", i)
	}
	return out
}

func toyUser(id, gender, eth string, list []string) core.UserResults {
	return core.UserResults{ID: id, Attrs: core.Assignment{"gender": gender, "ethnicity": eth}, List: list}
}

// figure1 reproduces Figure 1: the unfairness of "Black Females" for a
// Google query is the average Kendall Tau distance to the three comparable
// groups — 0.70, 0.50 and 0.30, averaging to exactly 0.50.
func figure1() Runner {
	return Runner{
		ID:    "F1",
		Title: "Figure 1 — Kendall Tau unfairness on a search engine (worked example)",
		Description: "Reconstructs the paper's Figure 1: search-result lists whose pairwise " +
			"Kendall distances to Black Females are exactly 0.70, 0.50 and 0.30.",
		Run: func(env *Env) (*Result, error) {
			const n = 20
			pairs := n * (n - 1) / 2 // 190
			sr := &core.SearchResults{Query: "Home Cleaning", Location: "San Francisco, CA", Users: []core.UserResults{
				toyUser("bf", "Female", "Black", identityList(n)),
				toyUser("bm", "Male", "Black", permutationWithInversions(n, 7*pairs/10)),
				toyUser("wf", "Female", "White", permutationWithInversions(n, 5*pairs/10)),
				toyUser("af", "Female", "Asian", permutationWithInversions(n, 3*pairs/10)),
			}}
			ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureKendallTau}
			bf := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}, core.Predicate{Attr: "ethnicity", Value: "Black"})

			res := &Result{ID: "F1", Title: "Figure 1 worked example"}
			tbl := report.NewTable("Partial unfairness of Black Females (Kendall Tau)", "Comparable group", "DIST")
			var total float64
			for _, cg := range core.DefaultSchema().Comparable(bf) {
				d, ok := ev.PairwiseUnfairness(sr, bf, cg)
				if !ok {
					return nil, fmt.Errorf("F1: pairwise unfairness undefined for %s", cg.Name())
				}
				tbl.AddRow(cg.Name(), d)
				total += d
			}
			d, _ := ev.Unfairness(sr, bf)
			tbl.AddRow("average (= d<g,q,l>)", d)
			res.Tables = append(res.Tables, tbl)
			res.check(approxEq(d, 0.50, 1e-9), "d<Black Female> = %.3f, paper: (0.70+0.50+0.30)/3 = 0.50", d)
			return res, nil
		},
	}
}

// figure2 reproduces Figure 2: EMD unfairness on a marketplace, averaging
// distances 0.45, 0.25 and 0.65 to exactly 0.45.
func figure2() Runner {
	return Runner{
		ID:    "F2",
		Title: "Figure 2 — EMD unfairness on a marketplace (worked example)",
		Description: "Reconstructs Figure 2: ranking-score histograms whose EMDs to Black " +
			"Females are exactly 0.45, 0.25 and 0.65.",
		Run: func(env *Env) (*Result, error) {
			// With 21 bins over [0,1], a point mass k bins away has
			// normalized EMD exactly k/20.
			const bins = 21
			mass := func(bin int) *stats.Histogram {
				h := stats.NewHistogram(0, 1, bins)
				h.AddWeighted((float64(bin)+0.5)/bins, 1)
				return h
			}
			bf := mass(0)
			comparables := []struct {
				name string
				bin  int
				want float64
			}{
				{"Black Male", 9, 0.45},
				{"Asian Female", 5, 0.25},
				{"White Female", 13, 0.65},
			}
			res := &Result{ID: "F2", Title: "Figure 2 worked example"}
			tbl := report.NewTable("EMD between ranking distributions", "Comparable group", "EMD")
			var sum float64
			allExact := true
			for _, c := range comparables {
				d := metrics.EMDHistograms(bf, mass(c.bin))
				tbl.AddRow(c.name, d)
				sum += d
				allExact = allExact && approxEq(d, c.want, 1e-9)
			}
			avg := sum / float64(len(comparables))
			tbl.AddRow("average (= d<g,q,l>)", avg)
			res.Tables = append(res.Tables, tbl)
			res.check(allExact && approxEq(avg, 0.45, 1e-9),
				"EMDs = 0.45, 0.25, 0.65; average = %.3f (paper: 0.45)", avg)
			return res, nil
		},
	}
}

// figure3 reproduces Figure 3 (with Table 1's setting): the partial
// unfairness between Black Females and Asian Females as the average
// pairwise Jaccard index (0.8 + 0.5)/2 = 0.65.
func figure3() Runner {
	return Runner{
		ID:    "F3",
		Title: "Figure 3 / Table 1 — partial Jaccard unfairness between two groups",
		Description: "Reconstructs Figure 3: result lists with pairwise Jaccard indices " +
			"0.8 and 0.5 against Black Females, averaging 0.65. (The paper quotes the " +
			"Jaccard index here; the framework's distance is 1 − index.)",
		Run: func(env *Env) (*Result, error) {
			// bf's list vs af1 (index 0.8: 8 common of 10 union) and af2
			// (index 0.5: 6 common of 12 union).
			bf := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
			af1 := []string{"a", "b", "c", "d", "e", "f", "g", "h", "x"}
			af2 := []string{"a", "b", "c", "d", "e", "f", "x", "y", "z"}
			sr := &core.SearchResults{Query: "Home Cleaning", Location: "San Francisco, CA", Users: []core.UserResults{
				toyUser("bf1", "Female", "Black", bf),
				toyUser("af1", "Female", "Asian", af1),
				toyUser("af2", "Female", "Asian", af2),
			}}
			ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureJaccard}
			g := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}, core.Predicate{Attr: "ethnicity", Value: "Black"})
			ag := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}, core.Predicate{Attr: "ethnicity", Value: "Asian"})
			dist, ok := ev.PairwiseUnfairness(sr, g, ag)
			if !ok {
				return nil, fmt.Errorf("F3: pairwise unfairness undefined")
			}
			index := 1 - dist

			res := &Result{ID: "F3", Title: "Figure 3 worked example"}
			tbl := report.NewTable("Pairwise Jaccard between Black and Asian Females", "Pair", "Jaccard index")
			tbl.AddRow("bf1 vs af1", metrics.JaccardIndex(bf, af1))
			tbl.AddRow("bf1 vs af2", metrics.JaccardIndex(bf, af2))
			tbl.AddRow("average", index)
			res.Tables = append(res.Tables, tbl)
			res.check(approxEq(index, 0.65, 1e-9), "average Jaccard index = %.3f (paper: (0.8+0.5)/2 = 0.65)", index)
			return res, nil
		},
	}
}

// paperRanking reconstructs Tables 2–3: the ten workers and their ranking
// for "Home Cleaning" in San Francisco.
func paperRanking() *core.MarketplaceRanking {
	type row struct {
		id, gender, eth string
		rank            int
		score           float64
	}
	rows := []row{
		{"w3", "Female", "White", 1, 0.9}, {"w8", "Male", "Black", 2, 0.8},
		{"w6", "Male", "Black", 3, 0.7}, {"w2", "Male", "White", 4, 0.6},
		{"w1", "Female", "Asian", 5, 0.5}, {"w4", "Male", "Asian", 6, 0.4},
		{"w7", "Female", "Black", 7, 0.3}, {"w5", "Female", "Black", 8, 0.2},
		{"w9", "Male", "White", 9, 0.1}, {"w10", "Female", "White", 10, 0.0},
	}
	r := &core.MarketplaceRanking{Query: "Home Cleaning", Location: "San Francisco, CA"}
	for _, x := range rows {
		r.Workers = append(r.Workers, core.RankedWorker{
			ID:    x.id,
			Attrs: core.Assignment{"gender": x.gender, "ethnicity": x.eth},
			Rank:  x.rank,
			Score: x.score,
		})
	}
	return r
}

// figure4 reproduces Figure 4 with the Tables 2–3 data: the EMD unfairness
// of Black Females from the actual 10-worker ranking.
func figure4() Runner {
	return Runner{
		ID:    "F4",
		Title: "Figure 4 / Tables 2–3 — EMD unfairness of Black Females",
		Description: "Runs the EMD measure on the paper's 10-worker ranking. The figure's " +
			"0.70/0.50/0.30 values are illustrative; this reports the measure's actual " +
			"output on the Table 3 ranking.",
		Run: func(env *Env) (*Result, error) {
			r := paperRanking()
			bf := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}, core.Predicate{Attr: "ethnicity", Value: "Black"})
			res := &Result{ID: "F4", Title: "Figure 4 worked example"}
			tbl := report.NewTable("EMD unfairness on the Table 3 ranking", "Group", "EMD")
			ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureEMD}
			var bfVal float64
			for _, g := range core.DefaultSchema().FullGroups() {
				if d, ok := ev.Unfairness(r, g); ok {
					tbl.AddRow(g.Name(), d)
					if g.Key() == bf.Key() {
						bfVal = d
					}
				}
			}
			res.Tables = append(res.Tables, tbl)
			res.check(bfVal > 0 && bfVal <= 1, "d<Black Female> = %.3f is defined and in (0,1]", bfVal)
			res.notef("the figure's 0.50 is an illustration; the measure's exact value on this ranking is %.3f", bfVal)
			return res, nil
		},
	}
}

// figure5 reproduces Figure 5 exactly: exposure share 0.19, relevance
// share 0.15, unfairness 0.04.
func figure5() Runner {
	return Runner{
		ID:    "F5",
		Title: "Figure 5 — exposure unfairness of Black Females",
		Description: "Runs the exposure measure on the Tables 2–3 ranking; the paper " +
			"computes 0.94/(0.94+4.0) − 0.5/(0.5+2.9) = 0.19 − 0.15 = 0.04.",
		Run: func(env *Env) (*Result, error) {
			r := paperRanking()
			bf := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}, core.Predicate{Attr: "ethnicity", Value: "Black"})
			ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureExposure}
			d, ok := ev.Unfairness(r, bf)
			if !ok {
				return nil, fmt.Errorf("F5: exposure undefined")
			}

			var gExp, gRel, totExp, totRel float64
			for _, w := range r.Workers {
				if w.Attrs.Matches(bf.Label) {
					gExp += metrics.ExposureAtRank(w.Rank)
					gRel += metrics.RelevanceFromRank(w.Rank, len(r.Workers))
				}
			}
			for _, cg := range core.DefaultSchema().Comparable(bf) {
				for _, w := range r.Workers {
					if w.Attrs.Matches(cg.Label) {
						totExp += metrics.ExposureAtRank(w.Rank)
						totRel += metrics.RelevanceFromRank(w.Rank, len(r.Workers))
					}
				}
			}
			res := &Result{ID: "F5", Title: "Figure 5 worked example"}
			tbl := report.NewTable("Exposure unfairness of Black Females", "Quantity", "Value")
			tbl.AddRow("group exposure", gExp)
			tbl.AddRow("comparable exposure", totExp)
			tbl.AddRow("exposure share", gExp/(gExp+totExp))
			tbl.AddRow("group relevance", gRel)
			tbl.AddRow("comparable relevance", totRel)
			tbl.AddRow("relevance share", gRel/(gRel+totRel))
			tbl.AddRow("unfairness |exp - rel|", d)
			res.Tables = append(res.Tables, tbl)
			res.check(approxEq(d, 0.04, 0.01), "exposure unfairness = %.3f (paper: 0.19 − 0.15 = 0.04)", d)
			res.check(approxEq(gExp, 0.94, 0.005), "group exposure = %.3f (paper: 0.94)", gExp)
			return res, nil
		},
	}
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
