package experiment

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/report"
	"fairjob/internal/significance"
	"fairjob/internal/stats"
)

// significanceRunner adds the statistical layer the paper's §2 calls for
// ("further statistical and manual investigations are necessary"): paired
// permutation tests and bootstrap CIs for the headline gaps of Tables 8
// and §5.2.2. It is an extension beyond the paper's own evaluation.
func significanceRunner() Runner {
	return Runner{
		ID:    "SIG",
		Title: "Extension — statistical significance of the headline gaps",
		Description: "Paired sign-flip permutation tests (B=999) and 95% bootstrap CIs for " +
			"the most-vs-least discriminated group gaps on both platforms.",
		Run: func(env *Env) (*Result, error) {
			res := &Result{ID: "SIG", Title: "Significance of headline gaps"}
			tbl := report.NewTable("Paired comparisons (most vs least discriminated group)",
				"Platform / measure", "Groups", "Cells", "Mean diff", "95% CI", "p-value")

			type testCase struct {
				label   string
				table   *core.Table
				g1, g2  string
				wantSig bool
			}
			keyOf := func(gender, eth string) string {
				return core.NewGroup(
					core.Predicate{Attr: "gender", Value: gender},
					core.Predicate{Attr: "ethnicity", Value: eth},
				).Key()
			}
			cases := []testCase{
				{"TaskRabbit / EMD", env.MarketTable(core.MeasureEMD), keyOf("Female", "Asian"), keyOf("Male", "White"), true},
				{"TaskRabbit / Exposure", env.MarketTable(core.MeasureExposure), keyOf("Female", "Asian"), keyOf("Male", "Black"), true},
				{"Google / Kendall Tau", env.GoogleTable(core.MeasureKendallTau), keyOf("Female", "White"), keyOf("Male", "Black"), true},
				{"Google / Jaccard", env.GoogleTable(core.MeasureJaccard), keyOf("Female", "White"), keyOf("Male", "Black"), true},
			}
			rng := stats.NewRNG(env.Seed ^ 0x51f)
			for _, c := range cases {
				r, err := significance.Groups(rng, c.table, c.g1, c.g2, 999)
				if err != nil {
					return nil, err
				}
				name := func(key string) string {
					g, _ := c.table.GroupByKey(key)
					return g.Name()
				}
				tbl.AddRow(c.label,
					name(c.g1)+" vs "+name(c.g2),
					r.N, r.MeanDiff,
					fmt.Sprintf("[%.4f, %.4f]", r.CILo, r.CIHi),
					r.PValue)
				res.check(r.Significant(0.05) == c.wantSig && r.MeanDiff > 0,
					"%s: %s vs %s gap is positive and significant (p=%.4f)",
					c.label, name(c.g1), name(c.g2), r.PValue)
			}
			res.Tables = append(res.Tables, tbl)
			res.notef("extension beyond the paper: its tables report point estimates only")
			return res, nil
		},
	}
}
