package experiment

import (
	"testing"

	"fairjob/internal/core"
)

// TestHeadlineShapesRobustToSeed re-runs the headline findings under two
// alternative seeds: the calibrated shapes must come from the bias
// mechanisms, not from one lucky random stream. (Most generated attributes
// are stratified, so the residual seed sensitivity is the per-query rank
// jitter and the search engine's personalization draws.)
func TestHeadlineShapesRobustToSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full crawls")
	}
	for _, seed := range []uint64{101, 20260705} {
		env := NewEnv(seed)

		// TaskRabbit headline: Asian Female tops the EMD ranking and the
		// extreme locations keep their ends.
		emd := groupRanking(env.MarketTable(core.MeasureEMD))
		if emd[0].Name != "Asian Female" {
			t.Errorf("seed %d: EMD top group = %s, want Asian Female", seed, emd[0].Name)
		}
		locs := locationRanking(env.MarketTable(core.MeasureEMD))
		if got := rankOf(locs, "Birmingham, UK"); got > 4 {
			t.Errorf("seed %d: Birmingham rank %d, want top 5", seed, got+1)
		}
		if got := rankOf(locs, "Chicago, IL"); got < len(locs)-8 {
			t.Errorf("seed %d: Chicago rank %d of %d, want among fairest 8", seed, got+1, len(locs))
		}

		// Google headline: White Female most and Black Male least
		// divergent results under Kendall Tau.
		gt := env.GoogleTable(core.MeasureKendallTau)
		var full []Ranked
		for _, r := range groupRanking(gt) {
			if g, ok := gt.GroupByKey(r.Key); ok && len(g.Label) == 2 {
				full = append(full, r)
			}
		}
		if full[0].Name != "White Female" {
			t.Errorf("seed %d: Google top group = %s, want White Female", seed, full[0].Name)
		}
		if full[len(full)-1].Name != "Black Male" {
			t.Errorf("seed %d: Google bottom group = %s, want Black Male", seed, full[len(full)-1].Name)
		}
		gLocs := locationRanking(gt)
		if gLocs[0].Name != "London, UK" {
			t.Errorf("seed %d: Google unfairest location = %s, want London", seed, gLocs[0].Name)
		}
		if gLocs[len(gLocs)-1].Name != "Washington, DC" {
			t.Errorf("seed %d: Google fairest location = %s, want Washington DC", seed, gLocs[len(gLocs)-1].Name)
		}
	}
}
