package experiment

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/obs"
	"fairjob/internal/report"
	"fairjob/internal/serve"
	"fairjob/internal/topk"
)

// observabilityRunner (OB1) validates the telemetry layer end to end on
// the marketplace substrate: it drives the serve engine's Problem 1 path
// under TA and NRA with an attached registry and tracer, scrapes the
// admin endpoint's Prometheus exposition (live TCP when the sandbox
// permits listening, in-process otherwise), and checks that the
// per-algorithm access-cost histograms recovered from /metrics equal the
// Stats the algorithms returned directly — the §6.3 / Table-6-style
// numbers, read back through the observability path instead of from
// benchmark output.
func observabilityRunner() Runner {
	return Runner{
		ID:    "OB1",
		Title: "Observability — access-cost telemetry round-trip through /metrics",
		Description: "Runs every dimension × direction quantification under TA and NRA " +
			"through an instrumented engine, scrapes the Prometheus exposition from " +
			"the admin endpoint, and cross-checks the recovered per-algorithm " +
			"sorted/random access totals against the directly returned topk.Stats; " +
			"also verifies the per-query trace ring saw every request.",
		Run: func(env *Env) (*Result, error) {
			tbl := env.MarketTable(core.MeasureEMD)
			reg := obs.NewRegistry()
			tz := obs.NewTracer(obs.DefaultTraceCapacity)
			// Caching is disabled so every request executes its algorithm
			// and contributes one Stats sample — the same accounting the
			// paper's cost tables use.
			eng := serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{
				Workers: env.Workers, CacheSize: -1, Obs: reg, Tracer: tz,
			})

			algos := []topk.Algorithm{topk.TA, topk.NRA}
			direct := map[topk.Algorithm]*topk.Stats{topk.TA: {}, topk.NRA: {}}
			requests := 0
			for _, algo := range algos {
				for _, d := range []compare.Dimension{compare.ByGroup, compare.ByQuery, compare.ByLocation} {
					for _, dir := range []topk.Direction{topk.MostUnfair, topk.LeastUnfair} {
						for _, k := range []int{1, 5} {
							resp := eng.Do(serve.Request{
								Problem: serve.Quantify, Dim: d, K: k, Direction: dir, Algorithm: algo,
							})
							if resp.Err != nil {
								return nil, fmt.Errorf("OB1 request failed: %w", resp.Err)
							}
							direct[algo].SortedAccesses += resp.Stats.SortedAccesses
							direct[algo].RandomAccesses += resp.Stats.RandomAccesses
							direct[algo].Rounds += resp.Stats.Rounds
							requests++
						}
					}
				}
			}

			exposition, transport, err := scrapeMetrics(reg, tz)
			if err != nil {
				return nil, err
			}

			res := &Result{ID: "OB1", Title: "Telemetry round-trip"}
			out := report.NewTable("Access costs recovered from /metrics vs direct topk.Stats",
				"Algorithm", "Sorted (metrics)", "Sorted (direct)", "Random (metrics)", "Random (direct)", "Samples")
			allEqual := true
			for _, algo := range algos {
				sortedSum, sortedCount := expositionHistogram(exposition, "topk_sorted_accesses", algo.String())
				randomSum, _ := expositionHistogram(exposition, "topk_random_accesses", algo.String())
				out.AddRow(algo.String(),
					int(sortedSum), direct[algo].SortedAccesses,
					int(randomSum), direct[algo].RandomAccesses,
					int(sortedCount))
				if int(sortedSum) != direct[algo].SortedAccesses ||
					int(randomSum) != direct[algo].RandomAccesses ||
					int(sortedCount) != requests/len(algos) {
					allEqual = false
				}
			}
			res.Tables = append(res.Tables, out)

			res.notef("exposition scraped over %s", transport)
			res.check(allEqual, "per-algorithm access totals from /metrics ≡ directly returned Stats")
			res.check(direct[topk.NRA].RandomAccesses == 0,
				"NRA performs no random accesses (its defining property, visible in telemetry)")
			res.check(direct[topk.TA].RandomAccesses > 0,
				"TA performs random accesses (%d recorded)", direct[topk.TA].RandomAccesses)
			res.check(tz.Finished() == uint64(requests),
				"trace ring finished one trace per request (%d/%d)", tz.Finished(), requests)
			reqLine := fmt.Sprintf(`serve_requests_total{problem="quantify"} %d`, requests)
			res.check(strings.Contains(exposition, reqLine),
				"exposition carries the exact request counter line %q", reqLine)
			return res, nil
		},
	}
}

// scrapeMetrics fetches the /metrics exposition, preferring a real TCP
// round-trip through obs.Serve and falling back to an in-process
// request when the environment forbids listening.
func scrapeMetrics(reg *obs.Registry, tz *obs.Tracer) (body, transport string, err error) {
	if srv, serr := obs.Serve("127.0.0.1:0", reg, tz, nil); serr == nil {
		defer srv.Close()
		resp, gerr := http.Get("http://" + srv.Addr() + "/metrics")
		if gerr == nil {
			defer resp.Body.Close()
			b, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				return "", "", rerr
			}
			return string(b), "live TCP (" + srv.Addr() + ")", nil
		}
	}
	rec := httptest.NewRecorder()
	obs.Handler(reg, tz, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String(), "in-process handler (listen unavailable)", nil
}

// expositionHistogram extracts a histogram's _sum and _count for one algo
// label from Prometheus exposition text.
func expositionHistogram(body, base, algo string) (sum, count float64) {
	sumPrefix := fmt.Sprintf(`%s_sum{algo="%s"} `, base, algo)
	countPrefix := fmt.Sprintf(`%s_count{algo="%s"} `, base, algo)
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, sumPrefix); ok {
			sum, _ = strconv.ParseFloat(v, 64)
		}
		if v, ok := strings.CutPrefix(line, countPrefix); ok {
			count, _ = strconv.ParseFloat(v, 64)
		}
	}
	return sum, count
}
