// Package experiment contains one runner per table and figure of the
// paper's evaluation (§5), wired to the synthetic substrates: each runner
// regenerates its artifact — the same rows the paper reports — and
// annotates it with the shape properties that hold or diverge. The
// cmd/experiments binary executes the full registry; bench_test.go
// benchmarks each runner.
package experiment

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/dataset"
	"fairjob/internal/labeling"
	"fairjob/internal/marketplace"
	"fairjob/internal/obs"
	"fairjob/internal/report"
	"fairjob/internal/search"
)

// DefaultSeed is the seed used by cmd/experiments and the benchmarks; it
// matches the calibration tests.
const DefaultSeed = 7

// Env lazily builds and caches the shared datasets: the marketplace crawl
// (with AMT-style observed labels), the Google study sweep, and the
// unfairness tables for every measure.
type Env struct {
	// Seed drives all generation.
	Seed uint64
	// ObservedLabels runs the faithful Figure 6 pipeline: worker
	// demographics come from the simulated AMT majority vote, labeling
	// noise included. The default (false) uses ground-truth
	// demographics, because several of the paper's comparison margins
	// are razor-thin (Table 15's overall gap is ~0.02 in the paper
	// itself) and per-tasker label errors persist across all of a
	// city's pages, re-introducing exactly the composition luck the
	// generator stratifies away. The labeling step's impact is
	// quantified by TestObservedLabelsStayCloseToGroundTruth and noted
	// in EXPERIMENTS.md.
	ObservedLabels bool
	// Workers bounds the goroutines the evaluators shard table
	// construction across. The zero value selects the parallel default
	// (runtime.GOMAXPROCS); the sharded pipeline is deterministic, so
	// the tables are identical at any worker count.
	Workers int
	// Obs, when non-nil, is handed to the evaluators so table
	// construction reports shard telemetry (eval_shard_seconds,
	// eval_pages_total, …) alongside whatever the serving layer records
	// in the same registry.
	Obs *obs.Registry

	mkt         *marketplace.Marketplace
	mktCrawl    []*core.MarketplaceRanking // observed-label rankings
	labels      map[string]core.Assignment
	mktTables   map[core.MarketplaceMeasure]*core.Table
	googleRes   []*core.SearchResults
	googleTbls  map[core.SearchMeasure]*core.Table
	mktDataset  *dataset.Marketplace
	searchCache *search.Engine
}

// NewEnv creates an environment; 0 selects DefaultSeed.
func NewEnv(seed uint64) *Env {
	if seed == 0 {
		seed = DefaultSeed
	}
	return &Env{
		Seed:       seed,
		mktTables:  map[core.MarketplaceMeasure]*core.Table{},
		googleTbls: map[core.SearchMeasure]*core.Table{},
	}
}

// Market returns the simulated marketplace.
func (e *Env) Market() *marketplace.Marketplace {
	if e.mkt == nil {
		e.mkt = marketplace.New(marketplace.Config{Seed: e.Seed})
	}
	return e.mkt
}

// Labels returns the observed (AMT majority-vote) demographic labels per
// tasker.
func (e *Env) Labels() map[string]core.Assignment {
	if e.labels == nil {
		m := e.Market()
		subjects := make([]labeling.Subject, len(m.Taskers))
		for i, t := range m.Taskers {
			subjects[i] = labeling.Subject{ID: t.ID, PhotoID: t.PhotoID, Gender: t.Gender, Ethnicity: t.Ethnicity}
		}
		e.labels = labeling.New(labeling.DefaultConfig(e.Seed)).LabelAll(subjects)
	}
	return e.labels
}

// MarketCrawl returns the full 5,361-query crawl, with the pipeline's
// observed labels applied when ObservedLabels is set.
func (e *Env) MarketCrawl() []*core.MarketplaceRanking {
	if e.mktCrawl == nil {
		crawl := e.Market().CrawlAll()
		if e.ObservedLabels {
			e.mktCrawl = labeling.Relabel(crawl, e.Labels())
		} else {
			e.mktCrawl = crawl
		}
	}
	return e.mktCrawl
}

// MarketTable returns the marketplace unfairness table for a measure.
func (e *Env) MarketTable(m core.MarketplaceMeasure) *core.Table {
	if tbl, ok := e.mktTables[m]; ok {
		return tbl
	}
	ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: m, Workers: e.Workers, Obs: e.Obs}
	tbl := ev.EvaluateAll(e.MarketCrawl(), nil)
	e.mktTables[m] = tbl
	return tbl
}

// MarketDataset returns the persistable dataset built from the crawl.
func (e *Env) MarketDataset() *dataset.Marketplace {
	if e.mktDataset == nil {
		m := e.Market()
		labels := e.Labels()
		profiles := make([]dataset.TaskerRecord, len(m.Taskers))
		for i, t := range m.Taskers {
			gender, ethnicity := t.Gender, t.Ethnicity
			if e.ObservedLabels {
				obs := labels[t.ID]
				gender, ethnicity = obs["gender"], obs["ethnicity"]
			}
			profiles[i] = dataset.TaskerRecord{
				ID: t.ID, City: string(t.City),
				Gender: gender, Ethnicity: ethnicity,
				Rating: t.Rating, Completed: t.Completed,
				HourlyRate: t.HourlyRate, Elite: t.Elite, PhotoID: t.PhotoID,
			}
		}
		e.mktDataset = dataset.FromRankings(e.MarketCrawl(), profiles)
	}
	return e.mktDataset
}

// SearchEngine returns the simulated Google engine.
func (e *Env) SearchEngine() *search.Engine {
	if e.searchCache == nil {
		e.searchCache = search.New(search.Config{Seed: e.Seed + 4})
	}
	return e.searchCache
}

// GoogleResults returns the full study sweep.
func (e *Env) GoogleResults() []*core.SearchResults {
	if e.googleRes == nil {
		e.googleRes = e.SearchEngine().CrawlAll()
	}
	return e.googleRes
}

// GoogleTable returns the Google unfairness table for a measure.
func (e *Env) GoogleTable(m core.SearchMeasure) *core.Table {
	if tbl, ok := e.googleTbls[m]; ok {
		return tbl
	}
	ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: m, Workers: e.Workers, Obs: e.Obs}
	tbl := ev.EvaluateAll(e.GoogleResults(), nil)
	e.googleTbls[m] = tbl
	return tbl
}

// Result is the output of one experiment runner.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	// Notes record the shape properties checked against the paper and
	// any documented divergences.
	Notes []string
}

func (r *Result) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// check appends a PASS/FAIL shape note.
func (r *Result) check(ok bool, format string, args ...interface{}) {
	status := "PASS"
	if !ok {
		status = "FAIL"
	}
	r.Notes = append(r.Notes, fmt.Sprintf("shape [%s]: %s", status, fmt.Sprintf(format, args...)))
}

// Runner regenerates one of the paper's artifacts.
type Runner struct {
	ID          string
	Title       string
	Description string
	Run         func(env *Env) (*Result, error)
}
