package significance

import (
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

// syntheticTable builds a table where group A is consistently ~delta less
// fair than group B across 80 cells, with per-cell noise.
func syntheticTable(seed uint64, delta float64) (*core.Table, string, string) {
	rng := stats.NewRNG(seed)
	a := core.NewGroup(core.Predicate{Attr: "g", Value: "a"})
	b := core.NewGroup(core.Predicate{Attr: "g", Value: "b"})
	t := core.NewTable()
	for qi := 0; qi < 8; qi++ {
		for li := 0; li < 10; li++ {
			q := core.Query(rune('a'+qi)%26 + 'A')
			_ = q
			query := core.Query(string(rune('q')) + string(rune('0'+qi)))
			loc := core.Location(string(rune('l')) + string(rune('0'+li)))
			base := 0.3 + 0.1*rng.NormFloat64()
			t.Set(a, query, loc, stats.Clamp(base+delta, 0, 1))
			t.Set(b, query, loc, stats.Clamp(base, 0, 1))
		}
	}
	return t, a.Key(), b.Key()
}

func TestGroupsDetectsRealDifference(t *testing.T) {
	tbl, a, b := syntheticTable(1, 0.15)
	res, err := Groups(stats.NewRNG(2), tbl, a, b, 999)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 80 {
		t.Fatalf("paired cells = %d", res.N)
	}
	if !res.Significant(0.05) {
		t.Fatalf("0.15 shift not significant: %s", res)
	}
	if res.MeanDiff < 0.1 || res.MeanDiff > 0.2 {
		t.Fatalf("mean diff = %v", res.MeanDiff)
	}
	if res.CILo > res.MeanDiff || res.CIHi < res.MeanDiff {
		t.Fatalf("CI [%v, %v] excludes the point estimate %v", res.CILo, res.CIHi, res.MeanDiff)
	}
	if res.CILo <= 0 {
		t.Fatalf("CI lower bound %v should exclude 0 for a real shift", res.CILo)
	}
}

func TestGroupsNullNotSignificant(t *testing.T) {
	tbl, a, b := syntheticTable(3, 0)
	res, err := Groups(stats.NewRNG(4), tbl, a, b, 999)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Fatalf("null difference flagged significant: %s", res)
	}
}

func TestGroupsNoCommonCells(t *testing.T) {
	a := core.NewGroup(core.Predicate{Attr: "g", Value: "a"})
	b := core.NewGroup(core.Predicate{Attr: "g", Value: "b"})
	tbl := core.NewTable()
	tbl.Set(a, "q1", "l1", 0.5)
	tbl.Set(b, "q2", "l2", 0.5)
	if _, err := Groups(stats.NewRNG(1), tbl, a.Key(), b.Key(), 99); err == nil {
		t.Fatal("expected error for disjoint cells")
	}
}

func TestQueriesAndLocations(t *testing.T) {
	g := core.NewGroup(core.Predicate{Attr: "g", Value: "x"})
	rng := stats.NewRNG(5)
	tbl := core.NewTable()
	for li := 0; li < 30; li++ {
		loc := core.Location(rune('A' + li%26))
		loc = core.Location(string(loc) + string(rune('0'+li/26)))
		base := 0.4 + 0.05*rng.NormFloat64()
		tbl.Set(g, "unfairQ", loc, stats.Clamp(base+0.2, 0, 1))
		tbl.Set(g, "fairQ", loc, stats.Clamp(base, 0, 1))
	}
	res, err := Queries(stats.NewRNG(6), tbl, "unfairQ", "fairQ", 999)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) || res.MeanDiff < 0.1 {
		t.Fatalf("query difference missed: %s", res)
	}

	// Locations: build per-location contrast.
	tbl2 := core.NewTable()
	for qi := 0; qi < 30; qi++ {
		q := core.Query(string(rune('q')) + string(rune('A'+qi%26)) + string(rune('0'+qi/26)))
		base := 0.4 + 0.05*rng.NormFloat64()
		tbl2.Set(g, q, "badCity", stats.Clamp(base+0.2, 0, 1))
		tbl2.Set(g, q, "goodCity", stats.Clamp(base, 0, 1))
	}
	res2, err := Locations(stats.NewRNG(7), tbl2, "badCity", "goodCity", 999)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Significant(0.05) {
		t.Fatalf("location difference missed: %s", res2)
	}
	if _, err := Locations(stats.NewRNG(8), tbl2, "badCity", "atlantis", 99); err == nil {
		t.Fatal("unknown location should error")
	}
}

func TestQuerySets(t *testing.T) {
	g := core.NewGroup(core.Predicate{Attr: "g", Value: "x"})
	rng := stats.NewRNG(9)
	tbl := core.NewTable()
	for li := 0; li < 25; li++ {
		loc := core.Location(string(rune('l')) + string(rune('A'+li)))
		base := 0.4 + 0.05*rng.NormFloat64()
		tbl.Set(g, "a1", loc, stats.Clamp(base+0.15, 0, 1))
		tbl.Set(g, "a2", loc, stats.Clamp(base+0.17, 0, 1))
		tbl.Set(g, "b1", loc, stats.Clamp(base, 0, 1))
	}
	res, err := QuerySets(stats.NewRNG(10), tbl,
		[]core.Query{"a1", "a2"}, []core.Query{"b1"}, 999)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Fatalf("query-set difference missed: %s", res)
	}
	if _, err := QuerySets(stats.NewRNG(11), tbl, []core.Query{"zz"}, []core.Query{"b1"}, 99); err == nil {
		t.Fatal("empty overlap should error")
	}
}

func TestDefaultResamplesAndString(t *testing.T) {
	tbl, a, b := syntheticTable(12, 0.1)
	res, err := Groups(stats.NewRNG(13), tbl, a, b, 0) // 0 -> default
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}
