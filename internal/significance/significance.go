// Package significance adds the statistical layer the paper's related-work
// section calls for ("further statistical and manual investigations are
// necessary"): paired permutation tests and bootstrap confidence intervals
// on top of the unfairness table, answering whether a measured difference
// between two groups, queries or locations is distinguishable from
// sampling noise.
//
// All tests are paired on the table's cells: comparing groups g1 and g2
// pairs their values on every (query, location) cell where both are
// defined, so platform-wide variation cancels and only the between-subject
// difference is tested.
package significance

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

// DefaultResamples is the number of permutations/bootstrap resamples used
// when the caller passes 0.
const DefaultResamples = 999

// Result reports one paired comparison.
type Result struct {
	// N is the number of paired cells.
	N int
	// Mean1 and Mean2 are the mean unfairness of each side over the
	// paired cells.
	Mean1, Mean2 float64
	// MeanDiff = Mean1 − Mean2.
	MeanDiff float64
	// PValue is the two-sided sign-flip permutation p-value for
	// MeanDiff = 0 (add-one corrected, never exactly 0).
	PValue float64
	// CILo and CIHi bound MeanDiff with a 95% percentile bootstrap CI.
	CILo, CIHi float64
}

// Significant reports whether the difference is significant at the given
// level (e.g. 0.05).
func (r *Result) Significant(alpha float64) bool { return r.PValue < alpha }

func (r *Result) String() string {
	return fmt.Sprintf("n=%d mean1=%.4f mean2=%.4f diff=%.4f p=%.4f CI=[%.4f, %.4f]",
		r.N, r.Mean1, r.Mean2, r.MeanDiff, r.PValue, r.CILo, r.CIHi)
}

func test(rng *stats.RNG, v1, v2 []float64, b int) *Result {
	if b <= 0 {
		b = DefaultResamples
	}
	ds := make([]float64, len(v1))
	for i := range v1 {
		ds[i] = v1[i] - v2[i]
	}
	lo, hi := stats.Bootstrap(rng, ds, b, 0.05, stats.Mean)
	return &Result{
		N:        len(ds),
		Mean1:    stats.Mean(v1),
		Mean2:    stats.Mean(v2),
		MeanDiff: stats.Mean(ds),
		PValue:   stats.PairedPermutationTest(rng, ds, b),
		CILo:     lo,
		CIHi:     hi,
	}
}

// Groups tests whether two groups' unfairness differs over the (query,
// location) cells where both are defined. Group arguments are canonical
// keys. b resamples (0 = DefaultResamples).
func Groups(rng *stats.RNG, tbl *core.Table, g1, g2 string, b int) (*Result, error) {
	var v1, v2 []float64
	for _, q := range tbl.Queries() {
		for _, l := range tbl.Locations() {
			a, okA := tbl.GetKey(g1, q, l)
			c, okC := tbl.GetKey(g2, q, l)
			if okA && okC {
				v1 = append(v1, a)
				v2 = append(v2, c)
			}
		}
	}
	if len(v1) == 0 {
		return nil, fmt.Errorf("significance: groups %q and %q share no defined cells", g1, g2)
	}
	return test(rng, v1, v2, b), nil
}

// Queries tests whether two queries' unfairness differs over the (group,
// location) cells where both are defined.
func Queries(rng *stats.RNG, tbl *core.Table, q1, q2 core.Query, b int) (*Result, error) {
	var v1, v2 []float64
	for _, g := range tbl.Groups() {
		for _, l := range tbl.Locations() {
			a, okA := tbl.Get(g, q1, l)
			c, okC := tbl.Get(g, q2, l)
			if okA && okC {
				v1 = append(v1, a)
				v2 = append(v2, c)
			}
		}
	}
	if len(v1) == 0 {
		return nil, fmt.Errorf("significance: queries %q and %q share no defined cells", q1, q2)
	}
	return test(rng, v1, v2, b), nil
}

// Locations tests whether two locations' unfairness differs over the
// (group, query) cells where both are defined.
func Locations(rng *stats.RNG, tbl *core.Table, l1, l2 core.Location, b int) (*Result, error) {
	var v1, v2 []float64
	for _, g := range tbl.Groups() {
		for _, q := range tbl.Queries() {
			a, okA := tbl.Get(g, q, l1)
			c, okC := tbl.Get(g, q, l2)
			if okA && okC {
				v1 = append(v1, a)
				v2 = append(v2, c)
			}
		}
	}
	if len(v1) == 0 {
		return nil, fmt.Errorf("significance: locations %q and %q share no defined cells", l1, l2)
	}
	return test(rng, v1, v2, b), nil
}

// QuerySets tests two query families (e.g. two marketplace categories)
// against each other: each family's values are averaged per (group,
// location) cell first, then the cell averages are paired.
func QuerySets(rng *stats.RNG, tbl *core.Table, qs1, qs2 []core.Query, b int) (*Result, error) {
	cellAvg := func(g core.Group, l core.Location, qs []core.Query) (float64, bool) {
		var sum float64
		var n int
		for _, q := range qs {
			if v, ok := tbl.Get(g, q, l); ok {
				sum += v
				n++
			}
		}
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), true
	}
	var v1, v2 []float64
	for _, g := range tbl.Groups() {
		for _, l := range tbl.Locations() {
			a, okA := cellAvg(g, l, qs1)
			c, okC := cellAvg(g, l, qs2)
			if okA && okC {
				v1 = append(v1, a)
				v2 = append(v2, c)
			}
		}
	}
	if len(v1) == 0 {
		return nil, fmt.Errorf("significance: query sets share no defined cells")
	}
	return test(rng, v1, v2, b), nil
}
