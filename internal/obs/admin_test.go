package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// adminFixture builds a handler with every view populated: metrics with
// an exemplared histogram, a tracer with mixed outcomes, an SLO monitor
// mid-burn and a wide-event ring.
func adminFixture(t *testing.T) http.Handler {
	t.Helper()
	reg := NewRegistry()
	reg.Counter(Name("serve_requests_total", "problem", "quantify")).Add(3)
	reg.Gauge("serve_inflight").Set(1)
	h := reg.Histogram("serve_request_seconds", LatencyBuckets())
	h.ObserveWithExemplar(0.004, 7)
	h.Observe(0.1)

	tz := NewTracerTailSampled(16, TailSamplingPolicy{SlowThreshold: 50 * time.Millisecond})
	for i, outcome := range []string{"ok", "ok", "deadline", "error", "ok"} {
		tr := tz.Start("q")
		tr.SetOutcome(outcome)
		if i == 4 {
			tr.Begin = tr.Begin.Add(-time.Second) // a slow success
			tr.SetOutcome("ok")
		}
		tz.Finish(tr)
	}

	clock := newFakeClock()
	slo := latencySLO(clock)
	slo.Observe(time.Millisecond, nil)

	events := NewRingSink(8)
	for i := 0; i < 5; i++ {
		events.Emit(&Event{Component: "serve", Level: "info", Outcome: "ok", LatencyNS: int64(i)})
	}
	return NewHandler(AdminOptions{
		Registry: reg,
		Tracer:   tz,
		Health:   &Health{},
		SLO:      slo,
		Events:   events,
	})
}

func TestMetricsContentTypeAndHead(t *testing.T) {
	srv := httptest.NewServer(adminFixture(t))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("GET /metrics Content-Type = %q, want %q", ct, MetricsContentType)
	}

	resp, err = http.Head(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("HEAD /metrics Content-Type = %q, want %q", ct, MetricsContentType)
	}
	if resp.ContentLength > 0 {
		t.Fatalf("HEAD carried a %d-byte body", resp.ContentLength)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/metrics", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("405 Allow = %q", allow)
	}
}

// reparseExposition re-parses one exposition body line by line:
// `# TYPE name <type>` headers, `name[{labels}] value` samples, and —
// only when exemplars is true (the OpenMetrics rendering) — optional
// ` # {trace_id="…"} value` exemplar suffixes on bucket lines. It
// returns the number of sample lines and whether an exemplar was seen.
func reparseExposition(t *testing.T, body string, exemplars bool) (samples int, sawExemplar bool) {
	t.Helper()
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if line == "# EOF" {
			continue // terminator legality is checked by the callers
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "unknown":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		sample := line
		if i := strings.Index(line, " # "); i >= 0 {
			if !exemplars {
				// The classic 0.0.4 parser has no exemplar concept: a
				// bucket line carrying one fails the whole scrape.
				t.Fatalf("exemplar suffix in a 0.0.4 exposition: %q", line)
			}
			// Exemplar suffix: only legal on bucket lines, and its own
			// value must parse.
			exemplar := line[i+3:]
			sample = line[:i]
			if !strings.Contains(sample, "_bucket{") {
				t.Fatalf("exemplar on a non-bucket line: %q", line)
			}
			parts := strings.Fields(exemplar)
			if len(parts) != 2 || !strings.HasPrefix(parts[0], `{trace_id="`) {
				t.Fatalf("malformed exemplar %q", exemplar)
			}
			if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
				t.Fatalf("exemplar value in %q: %v", line, err)
			}
			sawExemplar = true
		}
		sp := strings.LastIndex(sample, " ")
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, value := sample[:sp], sample[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("unbalanced label block in %q", line)
			}
			base = base[:i]
		}
		root := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		// OpenMetrics counter families drop the _total suffix from the
		// header, so a sample may also resolve through its trimmed root.
		counterRoot := strings.TrimSuffix(base, "_total")
		if _, ok := types[root]; !ok && types[base] == "" && types[counterRoot] == "" {
			t.Fatalf("sample %q precedes its # TYPE header", line)
		}
		samples++
	}
	return samples, sawExemplar
}

// TestMetricsScrapeReparses is the exposition-format regression gate: it
// scrapes /metrics without Accept negotiation and re-parses every line
// as strict version 0.0.4 text. Exemplar suffixes are an OpenMetrics
// construct and fail the classic parser, so their absence is part of
// what this test pins.
func TestMetricsScrapeReparses(t *testing.T) {
	srv := httptest.NewServer(adminFixture(t))
	defer srv.Close()
	body, err := httpGet(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body, "# EOF") {
		t.Fatal("0.0.4 scrape carries the OpenMetrics terminator")
	}
	samples, _ := reparseExposition(t, body, false)
	if samples == 0 {
		t.Fatal("no samples scraped")
	}
}

// TestMetricsOpenMetricsNegotiation covers the Accept-negotiated
// OpenMetrics rendering: the openmetrics content type, the # EOF
// terminator, exemplar suffixes on exemplared buckets, and a body that
// still re-parses line by line.
func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	srv := httptest.NewServer(adminFixture(t))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8, text/plain;q=0.5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != OpenMetricsContentType {
		t.Fatalf("negotiated Content-Type = %q, want %q", ct, OpenMetricsContentType)
	}
	body := string(raw)
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("OpenMetrics body lacks the # EOF terminator:\n%s", body)
	}
	samples, sawExemplar := reparseExposition(t, body, true)
	if samples == 0 {
		t.Fatal("no samples scraped")
	}
	if !sawExemplar {
		t.Fatal("exemplared fixture produced no exemplar suffix in the OpenMetrics rendering")
	}

	// HEAD negotiates the same content type.
	req, _ = http.NewRequest(http.MethodHead, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != OpenMetricsContentType {
		t.Fatalf("HEAD negotiated Content-Type = %q, want %q", ct, OpenMetricsContentType)
	}

	// An Accept header not asking for OpenMetrics keeps the 0.0.4 format.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("text/plain Accept negotiated %q, want %q", ct, MetricsContentType)
	}
	if strings.Contains(string(raw), " # ") {
		t.Fatal("0.0.4 body carries an exemplar suffix")
	}
}

func TestDebugTracesLimitAndOutcomeFilter(t *testing.T) {
	srv := httptest.NewServer(adminFixture(t))
	defer srv.Close()

	var dump struct {
		Finished  uint64                    `json:"finished"`
		Retention map[string]TraceRetention `json:"retention"`
		Traces    []*Trace                  `json:"traces"`
	}
	get := func(q string) {
		t.Helper()
		body, err := httpGet(srv.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		dump = struct {
			Finished  uint64                    `json:"finished"`
			Retention map[string]TraceRetention `json:"retention"`
			Traces    []*Trace                  `json:"traces"`
		}{}
		if err := json.Unmarshal([]byte(body), &dump); err != nil {
			t.Fatal(err)
		}
	}

	get("")
	if dump.Finished != 5 || len(dump.Traces) != 5 {
		t.Fatalf("unfiltered dump: finished %d, %d traces", dump.Finished, len(dump.Traces))
	}
	get("?limit=2")
	if len(dump.Traces) != 2 {
		t.Fatalf("?limit=2 returned %d traces", len(dump.Traces))
	}
	get("?outcome=error")
	if len(dump.Traces) != 2 {
		t.Fatalf("?outcome=error returned %d traces, want 2 (deadline + error)", len(dump.Traces))
	}
	for _, tr := range dump.Traces {
		if tr.Class() != "error" {
			t.Fatalf("filter leaked a %q trace", tr.Class())
		}
	}
	get("?outcome=slow")
	if len(dump.Traces) != 1 || !dump.Traces[0].Slow {
		t.Fatalf("?outcome=slow returned %+v", dump.Traces)
	}
	get("?outcome=ok&limit=1")
	if len(dump.Traces) != 1 || dump.Traces[0].Class() != "ok" {
		t.Fatalf("combined filters returned %+v", dump.Traces)
	}

	resp, err := http.Get(srv.URL + "/debug/traces?outcome=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus outcome = %d, want 400", resp.StatusCode)
	}
}

func TestDebugSLOView(t *testing.T) {
	srv := httptest.NewServer(adminFixture(t))
	defer srv.Close()
	body, err := httpGet(srv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var st SLOStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Objectives) != 1 || st.Objectives[0].Name != "latency" {
		t.Fatalf("slo status = %+v", st)
	}
	if st.Burning {
		t.Fatal("one good observation should not burn")
	}
}

func TestDebugEventsView(t *testing.T) {
	srv := httptest.NewServer(adminFixture(t))
	defer srv.Close()
	body, err := httpGet(srv.URL + "/debug/events?limit=3")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Events []*Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 3 {
		t.Fatalf("?limit=3 returned %d events", len(dump.Events))
	}
	if dump.Events[0].LatencyNS != 4 {
		t.Fatalf("events not newest-first: %+v", dump.Events[0])
	}
}

func TestAdminViewsWithNilSources(t *testing.T) {
	srv := httptest.NewServer(NewHandler(AdminOptions{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/traces", "/debug/slo", "/debug/events", "/healthz", "/readyz"} {
		if _, err := httpGet(srv.URL + path); err != nil {
			t.Errorf("nil-source %s: %v", path, err)
		}
	}
}
