package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMetricsExposition round-trips a populated registry through the
// /metrics handler and checks the Prometheus text format: TYPE headers,
// label pass-through, and cumulative histogram buckets that end at the
// total count.
func TestMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Name("req_total", "problem", "quantify")).Add(3)
	reg.Counter(Name("req_total", "problem", "compare")).Add(2)
	reg.Gauge("depth").Set(1.5)
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	rec := httptest.NewRecorder()
	Handler(reg, nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()

	for _, want := range []string{
		"# TYPE req_total counter\n",
		`req_total{problem="quantify"} 3` + "\n",
		`req_total{problem="compare"} 2` + "\n",
		"# TYPE depth gauge\n",
		"depth 1.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 99.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# TYPE req_total"); n != 1 {
		t.Fatalf("TYPE header repeated %d times for labeled counter", n)
	}
}

// TestMetricsExpositionLabeledHistogram checks that a histogram with a
// label block merges `le` into the existing labels.
func TestMetricsExpositionLabeledHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(Name("cost", "algo", "TA"), []float64{10}).Observe(4)

	rec := httptest.NewRecorder()
	Handler(reg, nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`cost_bucket{algo="TA",le="10"} 1`,
		`cost_bucket{algo="TA",le="+Inf"} 1`,
		`cost_sum{algo="TA"} 4`,
		`cost_count{algo="TA"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("labeled histogram missing %q:\n%s", want, body)
		}
	}
}

// parseExpositionValue extracts the numeric value of the first line with
// the given prefix.
func parseExpositionValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no line with prefix %q in:\n%s", prefix, body)
	return 0
}

func TestDebugTraces(t *testing.T) {
	tz := NewTracer(8)
	tr := tz.Start("quantify")
	tr.Mark("snapshot-pin")
	tr.Mark("execute")
	tr.Annotate("algo", "TA")
	tz.Finish(tr)

	rec := httptest.NewRecorder()
	Handler(nil, tz, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Finished uint64 `json:"finished"`
		Traces   []struct {
			Label string `json:"label"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
			Annotations []struct {
				Key, Value string
			} `json:"annotations"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if out.Finished != 1 || len(out.Traces) != 1 {
		t.Fatalf("finished=%d traces=%d", out.Finished, len(out.Traces))
	}
	got := out.Traces[0]
	if got.Label != "quantify" || len(got.Spans) != 2 || got.Spans[0].Name != "snapshot-pin" {
		t.Fatalf("trace = %+v", got)
	}
	if len(got.Annotations) != 1 || got.Annotations[0].Key != "algo" {
		t.Fatalf("annotations = %+v", got.Annotations)
	}
}

func TestDebugTracesEmpty(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil, nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var out struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Traces == nil {
		t.Fatal("traces serialized as null, want []")
	}
}

func TestIndexAndNotFound(t *testing.T) {
	h := Handler(NewRegistry(), NewTracer(1), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/metrics") {
		t.Fatalf("index: %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", rec.Code)
	}
}

// TestHealthProbes covers the probe matrix: nil Health (always ok), a
// passing probe, and a failing probe surfacing 503 with the reason.
func TestHealthProbes(t *testing.T) {
	get := func(h http.Handler, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	nilHealth := Handler(nil, nil, nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		if rec := get(nilHealth, path); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
			t.Fatalf("%s with nil health: %d %q", path, rec.Code, rec.Body.String())
		}
	}

	h := Handler(nil, nil, &Health{
		Live:  func() error { return nil },
		Ready: func() error { return errors.New("gate saturated") },
	})
	if rec := get(h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	rec := get(h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "gate saturated") {
		t.Fatalf("/readyz body %q does not carry the probe error", rec.Body.String())
	}
}

// TestServerShutdown checks graceful shutdown: a Shutdown with headroom
// returns nil and further connections are refused.
func TestServerShutdown(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil, nil)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	addr := srv.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("scrape after shutdown succeeded, want connection error")
	}
}

// TestServeLiveEndpoint starts a real listener on a loopback port and
// scrapes it over TCP — the end-to-end path `fairjob -admin` uses. Skips
// when the sandbox forbids listening.
func TestServeLiveEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("live_total").Add(5)
	srv, err := Serve("127.0.0.1:0", reg, NewTracer(4), nil)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	rec := httptest.NewRecorder()
	if _, err := rec.Body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if v := parseExpositionValue(t, rec.Body.String(), "live_total"); v != 5 {
		t.Fatalf("live_total = %g", v)
	}
}
