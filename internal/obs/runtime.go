package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// This file bridges the Go runtime's own telemetry (runtime/metrics)
// into the obs registry, so /metrics scrapes and the SLO engine see GC
// pressure next to the request metrics it causes. The PR7 finding that
// per-query trace garbage showed up as ~8% "telemetry overhead" is the
// motivating case: without GC pause and heap-goal visibility, allocation
// regressions masquerade as latency regressions in whatever subsystem
// happens to be on-CPU when the collector runs.
//
// All gauges read through one TTL-cached batched metrics.Read: a scrape
// that evaluates every GaugeFunc triggers at most one runtime sweep, and
// concurrent scrapes share it. Names are probed against metrics.All()
// with fallbacks for renamed metrics, so the bridge degrades to "metric
// absent" rather than failing on runtime version drift.

// runtimeSampleTTL bounds how stale the cached runtime sample batch may
// be. One second is far finer than any scrape interval while making the
// per-scrape cost a single metrics.Read.
const runtimeSampleTTL = time.Second

// runtimeSampler is the shared TTL cache of one metrics.Read batch.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	index   map[string]int
	last    time.Time
}

func newRuntimeSampler(names []string) *runtimeSampler {
	s := &runtimeSampler{
		samples: make([]metrics.Sample, len(names)),
		index:   make(map[string]int, len(names)),
	}
	for i, n := range names {
		s.samples[i].Name = n
		s.index[n] = i
	}
	return s
}

// get returns the freshest cached sample for name, refreshing the whole
// batch when the cache has expired.
func (s *runtimeSampler) get(name string) metrics.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) > runtimeSampleTTL {
		metrics.Read(s.samples)
		s.last = time.Now()
	}
	return s.samples[s.index[name]].Value
}

// asFloat converts a runtime metric value to the registry's gauge
// domain; unsupported kinds (histograms are handled separately) read 0.
func asFloat(v metrics.Value) float64 {
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	default:
		return 0
	}
}

// histQuantile computes the q-quantile of a runtime
// Float64Histogram by linear scan of its cumulative counts. Buckets may
// have infinite bounds (the first and last); those collapse onto the
// nearest finite edge.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				return hi
			}
			if math.IsInf(hi, +1) {
				return lo
			}
			return (lo + hi) / 2
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// runtimeGaugeSpecs maps registry gauge names to runtime metric names,
// first-available wins — the fallback entries track runtime renames
// (e.g. /gc/pauses:seconds became /sched/pauses/total/gc:seconds).
var runtimeGaugeSpecs = []struct {
	gauge      string
	candidates []string
}{
	{"go_goroutines", []string{"/sched/goroutines:goroutines"}},
	{"go_gomaxprocs", []string{"/sched/gomaxprocs:threads"}},
	{"go_heap_live_bytes", []string{"/gc/heap/live:bytes", "/memory/classes/heap/objects:bytes"}},
	{"go_heap_goal_bytes", []string{"/gc/heap/goal:bytes"}},
	{"go_memory_total_bytes", []string{"/memory/classes/total:bytes"}},
	{"go_gc_cycles", []string{"/gc/cycles/total:gc-cycles"}},
	{"go_cgo_calls", []string{"/cgo/go-to-c-calls:calls"}},
}

// runtimeHistSpecs are the runtime histogram metrics exported as
// per-quantile gauges (histogram shapes are runtime-defined and change
// across versions, so re-bucketing them into obs histograms would lie;
// quantile gauges are stable).
var runtimeHistSpecs = []struct {
	base       string
	candidates []string
}{
	{"go_gc_pause_seconds", []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}},
	{"go_sched_latency_seconds", []string{"/sched/latencies:seconds"}},
}

var runtimeQuantiles = []struct {
	label string
	q     float64
}{
	{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1.0},
}

// RegisterRuntimeMetrics exports the Go runtime's health metrics
// (goroutine count, GOMAXPROCS, heap live/goal, total memory, GC cycle
// count and pause quantiles, scheduler latency quantiles, cgo calls)
// into the registry as gauges under the go_* prefix. Metrics the running
// runtime does not provide are skipped. Safe to call once per registry;
// the underlying sampler batches all reads with a 1s TTL so scrape cost
// stays one metrics.Read regardless of gauge count.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	available := make(map[string]bool)
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	pick := func(candidates []string) (string, bool) {
		for _, c := range candidates {
			if available[c] {
				return c, true
			}
		}
		return "", false
	}

	var names []string
	type gaugeBind struct{ gauge, metric string }
	type histBind struct{ base, metric string }
	var gauges []gaugeBind
	var hists []histBind
	for _, spec := range runtimeGaugeSpecs {
		if m, ok := pick(spec.candidates); ok {
			gauges = append(gauges, gaugeBind{spec.gauge, m})
			names = append(names, m)
		}
	}
	for _, spec := range runtimeHistSpecs {
		if m, ok := pick(spec.candidates); ok {
			hists = append(hists, histBind{spec.base, m})
			names = append(names, m)
		}
	}
	if len(names) == 0 {
		return
	}
	sampler := newRuntimeSampler(names)
	for _, b := range gauges {
		metric := b.metric
		r.GaugeFunc(b.gauge, func() float64 {
			return asFloat(sampler.get(metric))
		})
	}
	for _, b := range hists {
		metric := b.metric
		for _, qt := range runtimeQuantiles {
			q := qt.q
			r.GaugeFunc(Name(b.base, "q", qt.label), func() float64 {
				v := sampler.get(metric)
				if v.Kind() != metrics.KindFloat64Histogram {
					return 0
				}
				return histQuantile(v.Float64Histogram(), q)
			})
		}
	}
}
