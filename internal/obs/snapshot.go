package obs

// Snapshot is a point-in-time copy of every metric in a registry, keyed
// by full metric name (base plus label block). It is the HTTP-free read
// API: experiments and tests assert on telemetry through Snapshot rather
// than scraping /metrics. Lazily registered GaugeFuncs are evaluated at
// snapshot time and appear under Gauges.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	names, metrics := r.copyMetrics()
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			s.Counters[name] = m.Value()
		case *Gauge:
			s.Gauges[name] = m.Value()
		case gaugeFunc:
			s.Gauges[name] = m()
		case *Histogram:
			s.Histograms[name] = m.Snapshot()
		}
	}
	return s
}

// CounterSum sums every counter whose base name (label block stripped)
// equals base — the cross-label total, e.g. requests across problems.
func (s Snapshot) CounterSum(base string) uint64 {
	var sum uint64
	for name, v := range s.Counters {
		if b, _ := SplitName(name); b == base {
			sum += v
		}
	}
	return sum
}

// MergeHistograms merges every histogram whose base name equals base
// into one snapshot — the cross-label aggregate, e.g. request latency
// across problems. The boolean is false when no histogram matched or the
// label variants carry incompatible bucket bounds.
func (s Snapshot) MergeHistograms(base string) (HistogramSnapshot, bool) {
	var out HistogramSnapshot
	found := false
	for name, h := range s.Histograms {
		if b, _ := SplitName(name); b != base {
			continue
		}
		merged, ok := out.Merge(h)
		if !ok {
			return HistogramSnapshot{}, false
		}
		out = merged
		found = true
	}
	return out, found
}
