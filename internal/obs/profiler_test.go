package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// spin burns CPU under a pprof label so a short CPU window has labeled
// samples to find.
func spin(ctx context.Context, d time.Duration) {
	pprof.Do(ctx, pprof.Labels("problem", "quantify", "algo", "ta"), func(context.Context) {
		deadline := time.Now().Add(d)
		x := 1.0
		for time.Now().Before(deadline) {
			for i := 0; i < 10000; i++ {
				x = x*1.000001 + 1e-9
			}
		}
		_ = x
	})
}

func TestProfilerCaptureRound(t *testing.T) {
	reg := NewRegistry()
	p := NewProfiler(ProfilerOptions{
		Registry:    reg,
		Interval:    time.Hour, // loop never fires; rounds are driven manually
		CPUDuration: 200 * time.Millisecond,
		Ring:        2,
	})
	ctx := context.Background()
	go spin(ctx, 250*time.Millisecond)
	p.CaptureRound(ctx)
	// Allocate between rounds so the heap delta has content, and keep a
	// labeled spinner running through round 2 so the *latest* CPU profile
	// has labeled samples too.
	waste := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		waste = append(waste, make([]byte, 64<<10))
	}
	_ = waste
	go spin(ctx, 250*time.Millisecond)
	p.CaptureRound(ctx)

	if got := p.Rounds(); got != 2 {
		t.Fatalf("Rounds() = %d, want 2", got)
	}
	for _, kind := range []string{ProfileCPU, ProfileHeap, ProfileGoroutine, ProfileMutex, ProfileBlock} {
		cp, ok := p.Latest(kind)
		if !ok {
			t.Fatalf("no %s profile captured", kind)
		}
		if cp.Size == 0 || len(cp.Data) == 0 {
			t.Fatalf("%s profile is empty", kind)
		}
		if _, _, err := LabelTotals(cp.Data); err != nil {
			t.Fatalf("LabelTotals(%s) failed to parse: %v", kind, err)
		}
	}

	// The CPU profile must carry the request labels the spinner set.
	cpu, _ := p.Latest(ProfileCPU)
	keys, err := ProfileLabelKeys(cpu.Data)
	if err != nil {
		t.Fatalf("ProfileLabelKeys: %v", err)
	}
	haveProblem, haveAlgo := false, false
	for _, k := range keys {
		switch k {
		case "problem":
			haveProblem = true
		case "algo":
			haveAlgo = true
		}
	}
	if !haveProblem || !haveAlgo {
		t.Fatalf("CPU profile label keys = %v, want problem and algo present", keys)
	}
	totals, grand, err := LabelTotals(cpu.Data)
	if err != nil {
		t.Fatalf("LabelTotals: %v", err)
	}
	if grand <= 0 {
		t.Fatalf("profile grand total = %d, want > 0", grand)
	}
	foundQuantify := false
	for _, lt := range totals {
		if lt.Key == "problem" && lt.Value == "quantify" && lt.Total > 0 {
			foundQuantify = true
			if lt.Fraction <= 0 || lt.Fraction > 1 {
				t.Fatalf("fraction %v out of (0,1]", lt.Fraction)
			}
		}
	}
	if !foundQuantify {
		t.Fatalf("no problem=quantify attribution in %+v", totals)
	}

	// Ring bound: a third round must evict the first round's profiles.
	p.CaptureRound(ctx)
	list := p.List()
	perKind := map[string]int{}
	for _, cp := range list {
		perKind[cp.Kind]++
		if len(cp.Data) != 0 {
			t.Fatalf("List() must elide profile bodies")
		}
	}
	for kind, n := range perKind {
		if n > 2 {
			t.Fatalf("ring for %s holds %d profiles, want ≤ 2", kind, n)
		}
	}

	// Heap delta: two heap rounds ran, so a delta must exist and its
	// sites must be sorted by alloc bytes descending.
	delta, ok := p.LatestHeapDelta()
	if !ok {
		t.Fatal("no heap delta after two rounds")
	}
	for i := 1; i < len(delta.Sites); i++ {
		if delta.Sites[i].AllocBytes > delta.Sites[i-1].AllocBytes {
			t.Fatalf("heap delta sites not sorted: %+v", delta.Sites)
		}
	}

	// Telemetry: every kind counted its captures.
	snap := reg.Snapshot()
	if got := snap.Counters[Name("profiler_captures_total", "kind", "heap")]; got != 3 {
		t.Fatalf("heap captures counter = %d, want 3", got)
	}
}

func TestProfilerStartStop(t *testing.T) {
	p := NewProfiler(ProfilerOptions{
		Interval:    20 * time.Millisecond,
		CPUDuration: 5 * time.Millisecond,
	})
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for p.Rounds() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no capture round within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()
	rounds := p.Rounds()
	time.Sleep(50 * time.Millisecond)
	if got := p.Rounds(); got != rounds {
		t.Fatalf("rounds advanced after Stop: %d -> %d", rounds, got)
	}
	p.Stop() // idempotent
}

func TestProfilerStopWithoutStart(t *testing.T) {
	done := make(chan struct{})
	p := NewProfiler(ProfilerOptions{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop on a never-started profiler hung")
	}
}

func TestDebugProfilesEndpoint(t *testing.T) {
	p := NewProfiler(ProfilerOptions{
		Interval:    time.Hour,
		CPUDuration: 50 * time.Millisecond,
	})
	p.CaptureRound(context.Background())
	p.CaptureRound(context.Background())
	h := NewHandler(AdminOptions{Profiler: p})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	// List.
	rec := get("/debug/profiles")
	if rec.Code != http.StatusOK {
		t.Fatalf("list status = %d", rec.Code)
	}
	var listing struct {
		Rounds   uint64            `json:"rounds"`
		Profiles []CapturedProfile `json:"profiles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("list parse: %v", err)
	}
	if listing.Rounds != 2 || len(listing.Profiles) == 0 {
		t.Fatalf("listing = rounds %d with %d profiles", listing.Rounds, len(listing.Profiles))
	}

	// Fetch-by-id returns the raw profile; a parseable pprof document.
	id := listing.Profiles[0].ID
	rec = get("/debug/profiles/" + itoa(id))
	if rec.Code != http.StatusOK {
		t.Fatalf("fetch status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("fetch content type = %q", ct)
	}
	if _, _, err := LabelTotals(rec.Body.Bytes()); err != nil {
		t.Fatalf("fetched profile unparseable: %v", err)
	}

	// Label totals view.
	rec = get("/debug/profiles/" + itoa(id) + "/labels")
	if rec.Code != http.StatusOK {
		t.Fatalf("labels status = %d", rec.Code)
	}
	var lab struct {
		ID     uint64       `json:"id"`
		Kind   string       `json:"kind"`
		Total  int64        `json:"total"`
		Labels []LabelTotal `json:"labels"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &lab); err != nil {
		t.Fatalf("labels parse: %v", err)
	}
	if lab.ID != id {
		t.Fatalf("labels id = %d, want %d", lab.ID, id)
	}

	// Heap delta (two heap rounds ran).
	rec = get("/debug/profiles/heapdelta")
	if rec.Code != http.StatusOK {
		t.Fatalf("heapdelta status = %d", rec.Code)
	}
	var delta HeapDelta
	if err := json.Unmarshal(rec.Body.Bytes(), &delta); err != nil {
		t.Fatalf("heapdelta parse: %v", err)
	}

	// Errors: bad id, missing id, disabled profiler.
	if rec = get("/debug/profiles/notanumber"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id status = %d", rec.Code)
	}
	if rec = get("/debug/profiles/999999"); rec.Code != http.StatusNotFound {
		t.Fatalf("missing id status = %d", rec.Code)
	}
	hOff := NewHandler(AdminOptions{})
	recOff := httptest.NewRecorder()
	hOff.ServeHTTP(recOff, httptest.NewRequest(http.MethodGet, "/debug/profiles/1", nil))
	if recOff.Code != http.StatusNotFound {
		t.Fatalf("disabled profiler status = %d", recOff.Code)
	}
	recOff = httptest.NewRecorder()
	hOff.ServeHTTP(recOff, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	if recOff.Code != http.StatusOK || !strings.Contains(recOff.Body.String(), `"profiles": []`) {
		t.Fatalf("disabled profiler list = %d %q", recOff.Code, recOff.Body.String())
	}
}

func itoa(v uint64) string {
	b := [20]byte{}
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(b[i:])
		}
	}
}
