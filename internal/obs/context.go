package obs

import "context"

// Trace-context propagation: the cluster coordinator parents every
// fan-out leg under a span and threads that SpanRef through the leg's
// context, across the Transport boundary, so the node-side engine joins
// the request's trace instead of starting its own. The ref is a value
// (no allocation beyond the context node), and an invalid ref is never
// stored — with tracing disabled the context passes through untouched,
// so the off path costs one branch.

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the current parent span.
// An invalid ref returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s SpanRef) context.Context {
	if !s.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the parent span carried by ctx, if any.
func SpanFromContext(ctx context.Context) (SpanRef, bool) {
	s, ok := ctx.Value(spanCtxKey{}).(SpanRef)
	return s, ok
}
