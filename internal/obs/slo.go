package obs

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// The SLO engine turns raw request telemetry into a paging decision:
// declarative objectives ("99% of requests answer within 50ms", "99.9%
// of requests succeed") are evaluated over sliding windows, and
// multi-window burn-rate alerts — the standard SRE construction: a fast
// window that reacts to an acute burn and a long window that confirms
// it is sustained — decide when the process should stop advertising
// readiness. Time is injectable, so tests drive hours of window
// arithmetic with a fake clock; production uses time.Now.
//
// Burn rate over a window W is badFraction(W) / (1 - target): 1 means
// the error budget is being consumed exactly at the rate that exhausts
// it at the window's end; 14.4 over 5m/1h means a day's budget burns in
// 100 minutes. An alert fires when BOTH of its windows exceed the
// threshold — the short window for responsiveness, the long one to keep
// a brief blip from paging — and both windows hold at least
// MinWindowRequests observations, so low-traffic noise (one failure on
// an otherwise idle replica) cannot fire.

// Objective declares one service-level objective.
type Objective struct {
	// Name labels the objective in /debug/slo, the gauges and the
	// readiness error.
	Name string
	// Target is the required good fraction in (0, 1), e.g. 0.99.
	Target float64
	// LatencyBound, when positive, makes a request good only when it
	// succeeded AND answered within the bound — a latency objective.
	// Zero means good = no error — an error-rate objective.
	LatencyBound time.Duration
}

// BurnAlert is one multi-window burn-rate rule: it fires when the burn
// rate over BOTH windows exceeds Threshold.
type BurnAlert struct {
	Name      string
	Short     time.Duration
	Long      time.Duration
	Threshold float64
}

// DefaultBurnAlerts returns the standard two-alert ladder: a fast
// 5m/1h pair at 14.4× (page: a day's budget in under two hours) and a
// slow 1h/6h pair at 6× (ticket: sustained slow burn).
func DefaultBurnAlerts() []BurnAlert {
	return []BurnAlert{
		{Name: "fast", Short: 5 * time.Minute, Long: time.Hour, Threshold: 14.4},
		{Name: "slow", Short: time.Hour, Long: 6 * time.Hour, Threshold: 6},
	}
}

// DefaultSLOMinWindowRequests is the minimum-volume floor applied when
// SLOOptions.MinWindowRequests is zero.
const DefaultSLOMinWindowRequests = 10

// SLOOptions configures NewSLOMonitor.
type SLOOptions struct {
	// Clock supplies the current time; nil selects time.Now. Tests
	// inject a fake clock and slide windows without sleeping.
	Clock func() time.Time
	// Alerts is the burn-rate rule set; nil selects DefaultBurnAlerts.
	Alerts []BurnAlert
	// MinWindowRequests is the minimum number of observations each of an
	// alert's windows must contain before that alert may fire — the
	// standard low-traffic guard on multi-window burn alerts. Without it
	// a single failed request on an idle replica makes the bad fraction
	// 1.0 in every window, trips every threshold, and drains the replica
	// through /readyz for the length of the long window. Burn rates are
	// still reported below the floor; only the firing decision (Status,
	// Healthy, the slo_burning gauge) is gated. 0 selects
	// DefaultSLOMinWindowRequests; negative disables the guard.
	MinWindowRequests int
}

// SLOMonitor evaluates a set of objectives over sliding windows. All
// methods are safe for concurrent use and nil-receiver-safe, so an
// engine can call Observe/Healthy unconditionally.
type SLOMonitor struct {
	clock     func() time.Time
	alerts    []BurnAlert
	minEvents uint64 // per-window volume floor for alert firing
	objs      []*sloObjective
}

// sloObjective is one objective's sliding-window state: a ring of
// fixed-duration buckets covering the longest alert window. Observe
// lands in the bucket of the current time; burn rates sum the buckets
// inside the queried window. The mutex spans one ring index plus a few
// integer adds per Observe — far off the atomic-metrics hot path, but
// Observe happens once per request, not per sample, so it stays cheap.
type sloObjective struct {
	Objective
	mu      sync.Mutex
	bucketD time.Duration
	buckets []sloBucket // ring, indexed by (unix time / bucketD) % len
}

type sloBucket struct {
	epoch     int64 // bucket timestamp in bucketD units; stale entries are zeroed on reuse
	good, bad uint64
}

// NewSLOMonitor builds a monitor for the given objectives. Objectives
// with targets outside (0, 1) panic — that is a configuration error.
// Bucket resolution is the shortest alert window / 10, and the ring
// spans the longest window, so every queried burn rate is accurate to
// one bucket width.
func NewSLOMonitor(objectives []Objective, opts SLOOptions) *SLOMonitor {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	alerts := opts.Alerts
	if alerts == nil {
		alerts = DefaultBurnAlerts()
	}
	shortest, longest := time.Duration(0), time.Duration(0)
	for _, a := range alerts {
		if a.Short <= 0 || a.Long < a.Short || a.Threshold <= 0 {
			panic(fmt.Sprintf("obs: malformed burn alert %+v", a))
		}
		if shortest == 0 || a.Short < shortest {
			shortest = a.Short
		}
		if a.Long > longest {
			longest = a.Long
		}
	}
	bucketD := shortest / 10
	if bucketD <= 0 {
		bucketD = time.Second
	}
	minEvents := uint64(DefaultSLOMinWindowRequests)
	switch {
	case opts.MinWindowRequests > 0:
		minEvents = uint64(opts.MinWindowRequests)
	case opts.MinWindowRequests < 0:
		minEvents = 0
	}
	n := int(longest/bucketD) + 2 // +1 partial bucket at each end
	m := &SLOMonitor{clock: clock, alerts: alerts, minEvents: minEvents}
	for _, o := range objectives {
		if o.Target <= 0 || o.Target >= 1 {
			panic(fmt.Sprintf("obs: SLO target %g for %q outside (0, 1)", o.Target, o.Name))
		}
		m.objs = append(m.objs, &sloObjective{
			Objective: o,
			bucketD:   bucketD,
			buckets:   make([]sloBucket, n),
		})
	}
	return m
}

// Observe classifies one completed request against every objective:
// err != nil is bad everywhere; a slow success is bad for latency
// objectives only.
func (m *SLOMonitor) Observe(latency time.Duration, err error) {
	if m == nil {
		return
	}
	now := m.clock()
	for _, o := range m.objs {
		good := err == nil && (o.LatencyBound <= 0 || latency <= o.LatencyBound)
		o.record(now, good)
	}
}

func (o *sloObjective) record(now time.Time, good bool) {
	epoch := now.UnixNano() / int64(o.bucketD)
	o.mu.Lock()
	b := &o.buckets[int(epoch%int64(len(o.buckets)))]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	if good {
		b.good++
	} else {
		b.bad++
	}
	o.mu.Unlock()
}

// window sums the buckets inside [now-w, now].
func (o *sloObjective) window(now time.Time, w time.Duration) (good, bad uint64) {
	nowEpoch := now.UnixNano() / int64(o.bucketD)
	span := int64(w / o.bucketD)
	if span < 1 {
		span = 1
	}
	if span > int64(len(o.buckets)) {
		span = int64(len(o.buckets))
	}
	o.mu.Lock()
	for i := int64(0); i < span; i++ {
		e := nowEpoch - i
		b := o.buckets[int(((e%int64(len(o.buckets)))+int64(len(o.buckets)))%int64(len(o.buckets)))]
		if b.epoch == e {
			good += b.good
			bad += b.bad
		}
	}
	o.mu.Unlock()
	return good, bad
}

// burnRate is badFraction(window) / errorBudget; an empty window burns
// nothing.
func (o *sloObjective) burnRate(now time.Time, w time.Duration) float64 {
	good, bad := o.window(now, w)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - o.Target)
}

// firing reports whether alert a fires for objective o at now: the burn
// rate over BOTH windows exceeds the threshold, and both windows hold at
// least the monitor's minimum request volume — a lone failure in a quiet
// window cannot page or drain the replica.
func (m *SLOMonitor) firing(o *sloObjective, a BurnAlert, now time.Time) bool {
	for _, w := range []time.Duration{a.Short, a.Long} {
		good, bad := o.window(now, w)
		total := good + bad
		if total == 0 || total < m.minEvents {
			return false
		}
		if (float64(bad)/float64(total))/(1-o.Target) <= a.Threshold {
			return false
		}
	}
	return true
}

// WindowBurn is one window's burn rate in an objective's status.
type WindowBurn struct {
	Window   string  `json:"window"`
	BurnRate float64 `json:"burn_rate"`
}

// AlertStatus is one burn alert's evaluation in an objective's status.
type AlertStatus struct {
	Name      string  `json:"name"`
	Short     string  `json:"short"`
	Long      string  `json:"long"`
	Threshold float64 `json:"threshold"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Firing    bool    `json:"firing"`
}

// ObjectiveStatus is one objective's full evaluation.
type ObjectiveStatus struct {
	Name            string        `json:"name"`
	Target          float64       `json:"target"`
	LatencyBoundNS  int64         `json:"latency_bound_ns,omitempty"`
	Good            uint64        `json:"good"` // over the longest alert window
	Bad             uint64        `json:"bad"`
	Windows         []WindowBurn  `json:"windows"`
	Alerts          []AlertStatus `json:"alerts"`
	BudgetRemaining float64       `json:"budget_remaining"` // 1 - burn over the longest window
	Burning         bool          `json:"burning"`
}

// SLOStatus is the /debug/slo document.
type SLOStatus struct {
	Time time.Time `json:"time"`
	// MinWindowRequests is the volume floor below which a window cannot
	// contribute to alert firing.
	MinWindowRequests uint64            `json:"min_window_requests"`
	Objectives        []ObjectiveStatus `json:"objectives"`
	Burning           bool              `json:"burning"`
}

// longestWindow returns the longest alert window — the budget horizon.
func (m *SLOMonitor) longestWindow() time.Duration {
	var longest time.Duration
	for _, a := range m.alerts {
		if a.Long > longest {
			longest = a.Long
		}
	}
	return longest
}

// Status evaluates every objective and alert at the current clock
// reading.
func (m *SLOMonitor) Status() SLOStatus {
	if m == nil {
		return SLOStatus{}
	}
	now := m.clock()
	st := SLOStatus{Time: now, MinWindowRequests: m.minEvents, Objectives: make([]ObjectiveStatus, 0, len(m.objs))}
	budgetW := m.longestWindow()
	for _, o := range m.objs {
		os := ObjectiveStatus{
			Name:           o.Name,
			Target:         o.Target,
			LatencyBoundNS: int64(o.LatencyBound),
		}
		os.Good, os.Bad = o.window(now, budgetW)
		seen := map[time.Duration]bool{}
		for _, a := range m.alerts {
			short, long := o.burnRate(now, a.Short), o.burnRate(now, a.Long)
			for _, wb := range []struct {
				w time.Duration
				r float64
			}{{a.Short, short}, {a.Long, long}} {
				if !seen[wb.w] {
					seen[wb.w] = true
					os.Windows = append(os.Windows, WindowBurn{Window: wb.w.String(), BurnRate: wb.r})
				}
			}
			as := AlertStatus{
				Name: a.Name, Short: a.Short.String(), Long: a.Long.String(),
				Threshold: a.Threshold, ShortBurn: short, LongBurn: long,
				Firing: m.firing(o, a, now),
			}
			if as.Firing {
				os.Burning = true
			}
			os.Alerts = append(os.Alerts, as)
		}
		os.BudgetRemaining = 1 - o.burnRate(now, budgetW)
		st.Objectives = append(st.Objectives, os)
		if os.Burning {
			st.Burning = true
		}
	}
	return st
}

// ErrSLOBurning is the class of readiness failures Healthy reports;
// errors.Is(err, ErrSLOBurning) matches them.
var ErrSLOBurning = errors.New("obs: SLO error budget burning")

// Healthy is the readiness predicate: nil while no alert fires, an
// error naming the burning objective and alert otherwise. Wired into
// Engine.Ready, a sustained hard burn flips /readyz to 503 so a load
// balancer drains the replica; once the windows slide past the burst,
// Healthy clears without a restart.
func (m *SLOMonitor) Healthy() error {
	if m == nil {
		return nil
	}
	now := m.clock()
	for _, o := range m.objs {
		for _, a := range m.alerts {
			if m.firing(o, a, now) {
				return fmt.Errorf("slo %q burning: %s alert over %s/%s exceeds %gx: %w",
					o.Name, a.Name, a.Short, a.Long, a.Threshold, ErrSLOBurning)
			}
		}
	}
	return nil
}

// Register publishes the monitor's state into reg as lazily evaluated
// gauges: slo_burn_rate{slo=,window=} for every objective × distinct
// alert window, slo_budget_remaining{slo=} over the longest window, and
// slo_burning{slo=} as a 0/1 flag.
func (m *SLOMonitor) Register(reg *Registry) {
	if m == nil || reg == nil {
		return
	}
	budgetW := m.longestWindow()
	for _, o := range m.objs {
		o := o
		seen := map[time.Duration]bool{}
		for _, a := range m.alerts {
			for _, w := range []time.Duration{a.Short, a.Long} {
				if seen[w] {
					continue
				}
				seen[w] = true
				w := w
				reg.GaugeFunc(Name("slo_burn_rate", "slo", o.Name, "window", w.String()), func() float64 {
					return o.burnRate(m.clock(), w)
				})
			}
		}
		reg.GaugeFunc(Name("slo_budget_remaining", "slo", o.Name), func() float64 {
			return 1 - o.burnRate(m.clock(), budgetW)
		})
		reg.GaugeFunc(Name("slo_burning", "slo", o.Name), func() float64 {
			now := m.clock()
			for _, a := range m.alerts {
				if m.firing(o, a, now) {
					return 1
				}
			}
			return 0
		})
	}
}
