package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsFullyInert covers the disabled-tracing contract: every
// operation on a nil tracer and the nil traces it hands out must be a
// safe no-op.
func TestNilTracerIsFullyInert(t *testing.T) {
	var tz *Tracer
	tr := tz.Start("q")
	if tr != nil {
		t.Fatal("nil tracer returned a trace")
	}
	tr.Mark("phase") // must not panic
	tr.Annotate("k", "v")
	tz.Finish(tr)
	if tz.Finished() != 0 {
		t.Fatalf("nil tracer finished = %d", tz.Finished())
	}
	if tz.Recent() != nil {
		t.Fatal("nil tracer has recent traces")
	}
}

func TestTraceSpansAreContiguous(t *testing.T) {
	tz := NewTracer(4)
	tr := tz.Start("query")
	tr.Mark("a")
	time.Sleep(time.Millisecond)
	tr.Mark("b")
	tr.Annotate("cache", "miss")
	tz.Finish(tr)

	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %v", tr.Spans)
	}
	if tr.Spans[0].Name != "a" || tr.Spans[1].Name != "b" {
		t.Fatalf("span names = %q, %q", tr.Spans[0].Name, tr.Spans[1].Name)
	}
	if tr.Spans[0].Start != 0 {
		t.Fatalf("first span starts at %v", tr.Spans[0].Start)
	}
	if tr.Spans[1].Start != tr.Spans[0].Start+tr.Spans[0].Dur {
		t.Fatal("spans are not contiguous")
	}
	if tr.Spans[1].Dur < time.Millisecond {
		t.Fatalf("span b duration = %v, want ≥ 1ms", tr.Spans[1].Dur)
	}
	if tr.Total < tr.Spans[1].Start+tr.Spans[1].Dur {
		t.Fatalf("total %v < end of last span", tr.Total)
	}
	if len(tr.Annots) != 1 || tr.Annots[0] != (Annotation{"cache", "miss"}) {
		t.Fatalf("annotations = %v", tr.Annots)
	}
}

// TestRingWraparound fills a small ring past capacity and checks that
// Recent returns exactly the newest traces, newest first.
func TestRingWraparound(t *testing.T) {
	const capacity, total = 4, 10
	tz := NewTracer(capacity)
	for i := 1; i <= total; i++ {
		tz.Finish(tz.Start(fmt.Sprintf("q%d", i)))
	}
	if tz.Finished() != total {
		t.Fatalf("finished = %d, want %d", tz.Finished(), total)
	}
	recent := tz.Recent()
	if len(recent) != capacity {
		t.Fatalf("recent len = %d, want %d", len(recent), capacity)
	}
	for i, tr := range recent {
		want := fmt.Sprintf("q%d", total-i)
		if tr.Label != want {
			t.Fatalf("recent[%d] = %s, want %s (ring order broken)", i, tr.Label, want)
		}
	}
}

func TestRecentBeforeFull(t *testing.T) {
	tz := NewTracer(8)
	for i := 1; i <= 3; i++ {
		tz.Finish(tz.Start(fmt.Sprintf("q%d", i)))
	}
	recent := tz.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent len = %d", len(recent))
	}
	for i, want := range []string{"q3", "q2", "q1"} {
		if recent[i].Label != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].Label, want)
		}
	}
}

func TestTraceIDsAreUnique(t *testing.T) {
	tz := NewTracer(16)
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		tr := tz.Start("q")
		if seen[tr.ID] {
			t.Fatalf("duplicate trace id %d", tr.ID)
		}
		seen[tr.ID] = true
		tz.Finish(tr)
	}
}

// TestConcurrentTracing hammers Start/Mark/Finish/Recent from many
// goroutines; -race must stay quiet and the finished count exact.
func TestConcurrentTracing(t *testing.T) {
	const workers, perWorker = 8, 500
	tz := NewTracer(32)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := tz.Start("q")
				tr.Mark("only")
				tz.Finish(tr)
				if i%100 == 0 {
					tz.Recent()
				}
			}
		}()
	}
	wg.Wait()
	if tz.Finished() != workers*perWorker {
		t.Fatalf("finished = %d, want %d", tz.Finished(), workers*perWorker)
	}
	if len(tz.Recent()) != 32 {
		t.Fatalf("ring len = %d, want 32", len(tz.Recent()))
	}
}
