package obs

import (
	"strings"
	"testing"
)

func TestExemplarPerBucketMostRecentWins(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.ObserveWithExemplar(0.5, 11)
	h.ObserveWithExemplar(0.7, 12) // same bucket, newer
	h.ObserveWithExemplar(3, 13)
	h.ObserveWithExemplar(100, 14) // +Inf bucket
	if ex := h.Exemplar(0); ex == nil || ex.TraceID != 12 || ex.Value != 0.7 {
		t.Fatalf("bucket 0 exemplar = %+v, want trace 12 value 0.7", ex)
	}
	if ex := h.Exemplar(1); ex != nil {
		t.Fatalf("empty bucket carries exemplar %+v", ex)
	}
	if ex := h.Exemplar(2); ex == nil || ex.TraceID != 13 {
		t.Fatalf("bucket 2 exemplar = %+v, want trace 13", ex)
	}
	if ex := h.Exemplar(3); ex == nil || ex.TraceID != 14 {
		t.Fatalf("+Inf exemplar = %+v, want trace 14", ex)
	}
	if ex := h.Exemplar(99); ex != nil {
		t.Fatal("out-of-range index should return nil")
	}
}

func TestExemplarMaxTracksLargestObservation(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveWithExemplar(5, 1)
	h.ObserveWithExemplar(2, 2) // smaller: max unchanged
	if ex := h.MaxExemplar(); ex == nil || ex.TraceID != 1 || ex.Value != 5 {
		t.Fatalf("max exemplar = %+v, want trace 1 value 5", ex)
	}
	h.ObserveWithExemplar(9, 3)
	if ex := h.MaxExemplar(); ex == nil || ex.TraceID != 3 {
		t.Fatalf("max exemplar = %+v, want trace 3", ex)
	}
}

func TestExemplarZeroTraceIDRecordsValueOnly(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveWithExemplar(0.5, 0)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatal("observation lost")
	}
	if s.Exemplars != nil || s.MaxExemplar != nil {
		t.Fatalf("trace ID 0 must not create exemplars: %+v", s)
	}
}

func TestExemplarSnapshotAndMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.ObserveWithExemplar(0.5, 1)
	b.ObserveWithExemplar(1.5, 2)
	b.ObserveWithExemplar(0.6, 3) // bucket 0 collides with a's: a wins in a.Merge(b)
	sa, sb := a.Snapshot(), b.Snapshot()
	m, ok := sa.Merge(sb)
	if !ok {
		t.Fatal("same-layout histograms failed to merge")
	}
	if ex := m.Exemplars[0]; ex == nil || ex.TraceID != 1 {
		t.Fatalf("merge bucket 0 = %+v, want the receiver's trace 1", ex)
	}
	if ex := m.Exemplars[1]; ex == nil || ex.TraceID != 2 {
		t.Fatalf("merge bucket 1 = %+v, want trace 2 filled from the other side", ex)
	}
	if ex := m.MaxExemplar; ex == nil || ex.TraceID != 2 {
		t.Fatalf("merged max = %+v, want trace 2 (value 1.5)", ex)
	}
}

func TestExemplarExpositionSuffix(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	h.ObserveWithExemplar(0.05, 42)

	// OpenMetrics rendering: exemplar suffix on the bucket line, # EOF
	// terminator.
	var b strings.Builder
	if err := WriteOpenMetrics(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `lat_seconds_bucket{le="0.1"} 1 # {trace_id="42"} 0.05`
	if !strings.Contains(out, want) {
		t.Fatalf("OpenMetrics exposition missing exemplar suffix %q:\n%s", want, out)
	}
	// Buckets without an exemplar keep the plain format.
	if !strings.Contains(out, "lat_seconds_bucket{le=\"1\"} 1\n") {
		t.Fatalf("exemplar-free bucket line malformed:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition lacks the # EOF terminator:\n%s", out)
	}

	// The classic 0.0.4 rendering must NOT carry exemplars: the text
	// parser a real Prometheus scraper uses rejects the suffix and loses
	// the whole scrape.
	b.Reset()
	if err := WriteMetrics(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	plain := b.String()
	if strings.Contains(plain, " # ") || strings.Contains(plain, "trace_id") {
		t.Fatalf("0.0.4 exposition carries an exemplar suffix:\n%s", plain)
	}
	if strings.Contains(plain, "# EOF") {
		t.Fatalf("0.0.4 exposition carries the OpenMetrics terminator:\n%s", plain)
	}
	if !strings.Contains(plain, "lat_seconds_bucket{le=\"0.1\"} 1\n") {
		t.Fatalf("0.0.4 bucket line malformed:\n%s", plain)
	}
}

// TestOpenMetricsCounterFamilyNaming pins the counter-family rule: the
// TYPE header drops the `_total` sample suffix, and counters outside
// that convention degrade to type unknown.
func TestOpenMetricsCounterFamilyNaming(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Name("req_total", "problem", "quantify")).Add(3)
	reg.Counter("oddball").Add(1)
	var b strings.Builder
	if err := WriteOpenMetrics(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE req counter\n") {
		t.Fatalf("counter family not trimmed of _total:\n%s", out)
	}
	if !strings.Contains(out, `req_total{problem="quantify"} 3`+"\n") {
		t.Fatalf("counter sample line changed:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE oddball unknown\n") {
		t.Fatalf("non-_total counter not degraded to unknown:\n%s", out)
	}
}
