package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %g", g.Value())
	}
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("Counter(a) returned two instances")
	}
	g1 := r.Gauge("b")
	if g1 != r.Gauge("b") {
		t.Fatal("Gauge(b) returned two instances")
	}
	h1 := r.Histogram("c", []float64{1, 2})
	h2 := r.Histogram("c", []float64{99})
	if h1 != h2 {
		t.Fatal("Histogram(c) returned two instances")
	}
	if got := len(h2.Snapshot().Bounds); got != 2 {
		t.Fatalf("second Histogram call rebuilt bounds: %d", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	mustPanic(t, "Gauge over Counter", func() { r.Gauge("x") })
	mustPanic(t, "Histogram over Counter", func() { r.Histogram("x", nil) })
	r.GaugeFunc("f", func() float64 { return 1 })
	mustPanic(t, "GaugeFunc over Counter", func() { r.GaugeFunc("x", func() float64 { return 0 }) })
	mustPanic(t, "Counter over GaugeFunc", func() { r.Counter("f") })
}

func TestGaugeFuncLazyAndReplace(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("lazy", func() float64 { return v })
	v = 7
	if got := r.Snapshot().Gauges["lazy"]; got != 7 {
		t.Fatalf("gauge func evaluated eagerly: %g", got)
	}
	r.GaugeFunc("lazy", func() float64 { return -1 })
	if got := r.Snapshot().Gauges["lazy"]; got != -1 {
		t.Fatalf("re-registered gauge func not replaced: %g", got)
	}
}

func TestNameComposesLabels(t *testing.T) {
	if got := Name("base"); got != "base" {
		t.Fatalf("Name(base) = %q", got)
	}
	if got := Name("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("m", "k", "a\"b\\c\nd"); got != `m{k="a\"b\\c\nd"}` {
		t.Fatalf("Name escaping = %q", got)
	}
	mustPanic(t, "odd labels", func() { Name("m", "only-key") })
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct {
		in, base, labels string
	}{
		{"plain", "plain", ""},
		{`m{a="1"}`, "m", `a="1"`},
		{`m{a="1",b="2"}`, "m", `a="1",b="2"`},
	} {
		base, labels := SplitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Fatalf("SplitName(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
}

func TestSnapshotCounterSumAcrossLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("req", "p", "a")).Add(3)
	r.Counter(Name("req", "p", "b")).Add(4)
	r.Counter("other").Add(100)
	if got := r.Snapshot().CounterSum("req"); got != 7 {
		t.Fatalf("CounterSum(req) = %d, want 7", got)
	}
	if got := r.Snapshot().CounterSum("missing"); got != 0 {
		t.Fatalf("CounterSum(missing) = %d", got)
	}
}

func TestSnapshotMergeHistogramsAcrossLabels(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2, 4}
	r.Histogram(Name("lat", "p", "a"), bounds).Observe(0.5)
	r.Histogram(Name("lat", "p", "b"), bounds).Observe(3)
	s := r.Snapshot()
	h, ok := s.MergeHistograms("lat")
	if !ok || h.Count != 2 || h.Sum != 3.5 {
		t.Fatalf("MergeHistograms(lat) = %+v, %v", h, ok)
	}
	if _, ok := s.MergeHistograms("absent"); ok {
		t.Fatal("MergeHistograms(absent) reported found")
	}
	// Incompatible bounds across label variants must refuse to merge.
	r.Histogram(Name("lat", "p", "c"), []float64{9}).Observe(1)
	if _, ok := r.Snapshot().MergeHistograms("lat"); ok {
		t.Fatal("MergeHistograms over mismatched bounds reported ok")
	}
}

// TestConcurrentHammering drives every metric kind and the registry's
// get-or-create path from many goroutines at once; totals must be exact
// and -race must stay quiet.
func TestConcurrentHammering(t *testing.T) {
	const workers, perWorker = 8, 5000
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hammer_total").Inc()
				r.Gauge("hammer_gauge").Add(1)
				r.Histogram("hammer_hist", []float64{0.25, 0.5, 0.75}).Observe(float64(i%4) * 0.25)
			}
		}()
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s := r.Snapshot()
				h := s.Histograms["hammer_hist"]
				var sum uint64
				for _, c := range h.Counts {
					sum += c
				}
				if sum != h.Count {
					panic("histogram snapshot internally incoherent")
				}
			}
		}
	}()
	wg.Wait()
	close(done)

	const total = workers * perWorker
	s := r.Snapshot()
	if got := s.Counters["hammer_total"]; got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := s.Gauges["hammer_gauge"]; got != total {
		t.Fatalf("gauge = %g, want %d", got, total)
	}
	h := s.Histograms["hammer_hist"]
	if h.Count != total {
		t.Fatalf("histogram count = %d, want %d", h.Count, total)
	}
	wantSum := float64(total) / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum, wantSum)
	}
	// Values 0 and 0.25 both fall in the le=0.25 bucket; 0.5 and 0.75 get
	// their own; the +Inf overflow stays empty.
	wantBuckets := []uint64{total / 2, total / 4, total / 4, 0}
	for i, c := range h.Counts {
		if c != wantBuckets[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, wantBuckets[i])
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}
