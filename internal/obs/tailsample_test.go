package obs

import (
	"testing"
	"time"
)

func finishWith(tz *Tracer, outcome string, total time.Duration) *Trace {
	t := tz.Start("q")
	t.Begin = time.Now().Add(-total) // backdate so Finish computes ≈ total
	t.SetOutcome(outcome)
	tz.Finish(t)
	return t
}

func TestTailSamplingDropsFastOKKeepsOneInN(t *testing.T) {
	tz := NewTracerTailSampled(64, TailSamplingPolicy{KeepOneInN: 4})
	for i := 0; i < 16; i++ {
		finishWith(tz, "ok", 0)
	}
	if got := len(tz.Recent()); got != 4 {
		t.Fatalf("1-in-4 over 16 fast-OK traces kept %d, want 4", got)
	}
	if tz.Finished() != 16 {
		t.Fatalf("Finished() = %d, want 16 — dropped traces still count", tz.Finished())
	}
	ret := tz.Retention()
	if ret["ok"] != (TraceRetention{Kept: 4, Dropped: 12}) {
		t.Fatalf("ok retention = %+v", ret["ok"])
	}
}

func TestTailSamplingAlwaysKeepsErrorsAndSlow(t *testing.T) {
	tz := NewTracerTailSampled(64, TailSamplingPolicy{
		SlowThreshold: 50 * time.Millisecond,
		KeepOneInN:    1 << 60, // effectively drop every fast-OK trace after the first
	})
	finishWith(tz, "ok", 0) // the 1st fast-OK survives (deterministic sampling)
	for i := 0; i < 10; i++ {
		finishWith(tz, "ok", 0) // dropped
	}
	for _, outcome := range []string{"deadline", "shed", "error", "panic", "canceled"} {
		finishWith(tz, outcome, 0)
	}
	finishWith(tz, "ok", time.Second) // slow success

	byClass := map[string]int{}
	for _, tr := range tz.Recent() {
		byClass[tr.Class()]++
	}
	if byClass["error"] != 5 {
		t.Fatalf("kept %d error traces, want all 5", byClass["error"])
	}
	if byClass["slow"] != 1 {
		t.Fatalf("kept %d slow traces, want 1", byClass["slow"])
	}
	if byClass["ok"] != 1 {
		t.Fatalf("kept %d fast-OK traces, want just the first", byClass["ok"])
	}
	ret := tz.Retention()
	if ret["error"].Dropped != 0 || ret["slow"].Dropped != 0 {
		t.Fatalf("errors/slow must never drop: %+v", ret)
	}
	if ret["ok"].Dropped != 10 {
		t.Fatalf("ok dropped = %d, want 10", ret["ok"].Dropped)
	}
}

func TestTailSamplingSlowStampFromThreshold(t *testing.T) {
	tz := NewTracerTailSampled(8, TailSamplingPolicy{SlowThreshold: 10 * time.Millisecond})
	fast := finishWith(tz, "", time.Millisecond)
	slow := finishWith(tz, "", 20*time.Millisecond)
	if fast.Slow || fast.Class() != "ok" {
		t.Fatalf("fast trace stamped slow: %+v", fast)
	}
	if !slow.Slow || slow.Class() != "slow" {
		t.Fatalf("slow trace not stamped: total=%v class=%s", slow.Total, slow.Class())
	}
}

func TestTraceClassErrorBeatsSlow(t *testing.T) {
	tr := &Trace{Outcome: "deadline", Slow: true}
	if got := tr.Class(); got != "error" {
		t.Fatalf("class = %s, want error (outcome dominates)", got)
	}
	if got := (&Trace{Outcome: "ok", Slow: true}).Class(); got != "slow" {
		t.Fatalf("explicit ok outcome with slow stamp = %s, want slow", got)
	}
}

// TestJoinIDOnlyForRetainedTraces pins the join-key discipline: JoinID
// resolves only for traces the tail sampler actually kept, so exemplars
// and wide events built from it never point at a trace that is absent
// from /debug/traces.
func TestJoinIDOnlyForRetainedTraces(t *testing.T) {
	tz := NewTracerTailSampled(8, TailSamplingPolicy{KeepOneInN: 1 << 60})
	kept := finishWith(tz, "ok", 0)    // first fast-OK survives
	dropped := finishWith(tz, "ok", 0) // sampled out
	if kept.JoinID() != kept.ID || kept.JoinID() == 0 {
		t.Fatalf("retained trace JoinID = %d, want its ID %d", kept.JoinID(), kept.ID)
	}
	if dropped.JoinID() != 0 {
		t.Fatalf("dropped trace JoinID = %d, want 0", dropped.JoinID())
	}
	if dropped.TraceID() == 0 {
		t.Fatal("TraceID must stay the raw accessor even for dropped traces")
	}
	err := finishWith(tz, "error", 0) // errors are always retained
	if err.JoinID() != err.ID {
		t.Fatalf("error trace JoinID = %d, want %d", err.JoinID(), err.ID)
	}

	unfinished := tz.Start("q")
	if unfinished.JoinID() != 0 {
		t.Fatalf("unfinished trace JoinID = %d, want 0", unfinished.JoinID())
	}
	var nilTrace *Trace
	if nilTrace.JoinID() != 0 {
		t.Fatal("nil trace JoinID must be 0")
	}
}

func TestDefaultTracerKeepsEverything(t *testing.T) {
	tz := NewTracer(32)
	for i := 0; i < 20; i++ {
		finishWith(tz, "ok", 0)
	}
	if got := len(tz.Recent()); got != 20 {
		t.Fatalf("no-policy tracer kept %d of 20", got)
	}
	ret := tz.Retention()
	if ret["ok"] != (TraceRetention{Kept: 20}) {
		t.Fatalf("retention = %+v", ret["ok"])
	}
}
