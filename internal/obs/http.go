package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WriteMetrics renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric base name, then
// one line per counter/gauge and the cumulative `_bucket`/`_sum`/`_count`
// series per histogram. Label blocks embedded in metric names (see Name)
// are passed through; histogram bucket lines merge the `le` label into
// them.
func WriteMetrics(w io.Writer, s Snapshot) error {
	type line struct {
		name string
		text string
	}
	byBase := make(map[string][]line)
	types := make(map[string]string)
	add := func(base, name, text string) {
		byBase[base] = append(byBase[base], line{name: name, text: text})
	}

	for name, v := range s.Counters {
		base, _ := SplitName(name)
		types[base] = "counter"
		add(base, name, fmt.Sprintf("%s %d\n", name, v))
	}
	for name, v := range s.Gauges {
		base, _ := SplitName(name)
		types[base] = "gauge"
		add(base, name, fmt.Sprintf("%s %s\n", name, formatFloat(v)))
	}
	for name, h := range s.Histograms {
		base, labels := SplitName(name)
		types[base] = "histogram"
		var b strings.Builder
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", base, joinLabels(labels), le, cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, braced(labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, braced(labels), h.Count)
		add(base, name, b.String())
	}

	bases := make([]string, 0, len(byBase))
	for base := range byBase {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, types[base]); err != nil {
			return err
		}
		lines := byBase[base]
		sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
		for _, l := range lines {
			if _, err := io.WriteString(w, l.text); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinLabels renders a label block as a prefix for an additional label:
// `a="b"` → `a="b",`; empty stays empty.
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// braced re-wraps a label block in braces, or returns "" when empty.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Probe is one health predicate: nil means healthy, an error describes
// why not. Probes must be safe for concurrent use — they run on every
// scrape.
type Probe func() error

// Health wires the Kubernetes-style probe pair into the admin endpoint.
// A nil *Health, or a nil individual probe, reports healthy — a process
// serving /metrics is, at minimum, alive.
type Health struct {
	// Live is the /healthz (liveness) predicate: failing means the
	// process is wedged and should be restarted.
	Live Probe
	// Ready is the /readyz (readiness) predicate: failing means the
	// process should not receive new traffic right now — e.g. the serve
	// engine's admission gate is at its shed threshold — but is expected
	// to recover without a restart.
	Ready Probe
}

func (h *Health) live() error {
	if h == nil || h.Live == nil {
		return nil
	}
	return h.Live()
}

func (h *Health) ready() error {
	if h == nil || h.Ready == nil {
		return nil
	}
	return h.Ready()
}

// probeHandler serves one probe: 200 "ok" when it passes, 503 with the
// error text when it fails.
func probeHandler(probe func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := probe(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unavailable: %v\n", err)
			return
		}
		fmt.Fprint(w, "ok\n")
	}
}

// Handler returns the admin endpoint's HTTP handler:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        liveness probe: 200 "ok" or 503 with the reason
//	/readyz         readiness probe: 200 "ok" or 503 with the reason
//	/debug/traces   JSON dump of the tracer's recent traces, newest first
//	/debug/pprof/*  the standard net/http/pprof handlers
//	/               a plain-text index of the above
//
// reg, tz and h may each be nil, which serves an empty snapshot / trace
// list / always-healthy probes.
func Handler(reg *Registry, tz *Tracer, h *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", probeHandler(h.live))
	mux.HandleFunc("/readyz", probeHandler(h.ready))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var s Snapshot
		if reg != nil {
			s = reg.Snapshot()
		}
		_ = WriteMetrics(w, s)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := tz.Recent()
		if traces == nil {
			traces = []*Trace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Finished uint64   `json:"finished"`
			Traces   []*Trace `json:"traces"`
		}{tz.Finished(), traces})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "fairjob admin endpoint\n\n/metrics\n/healthz\n/readyz\n/debug/traces\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running admin endpoint; Close shuts it down.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the admin endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and serves it on a background goroutine until Close or
// Shutdown.
func Serve(addr string, reg *Registry, tz *Tracer, h *Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, tz, h)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping in-flight scrapes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline — the graceful half of the
// CLI's signal handling. It falls back to Close semantics when ctx ends
// first.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
