package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WriteMetrics renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric base name, then
// one line per counter/gauge and the cumulative `_bucket`/`_sum`/`_count`
// series per histogram. Label blocks embedded in metric names (see Name)
// are passed through; histogram bucket lines merge the `le` label into
// them.
func WriteMetrics(w io.Writer, s Snapshot) error {
	type line struct {
		name string
		text string
	}
	byBase := make(map[string][]line)
	types := make(map[string]string)
	add := func(base, name, text string) {
		byBase[base] = append(byBase[base], line{name: name, text: text})
	}

	for name, v := range s.Counters {
		base, _ := SplitName(name)
		types[base] = "counter"
		add(base, name, fmt.Sprintf("%s %d\n", name, v))
	}
	for name, v := range s.Gauges {
		base, _ := SplitName(name)
		types[base] = "gauge"
		add(base, name, fmt.Sprintf("%s %s\n", name, formatFloat(v)))
	}
	for name, h := range s.Histograms {
		base, labels := SplitName(name)
		types[base] = "histogram"
		var b strings.Builder
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", base, joinLabels(labels), le, cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, braced(labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, braced(labels), h.Count)
		add(base, name, b.String())
	}

	bases := make([]string, 0, len(byBase))
	for base := range byBase {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, types[base]); err != nil {
			return err
		}
		lines := byBase[base]
		sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
		for _, l := range lines {
			if _, err := io.WriteString(w, l.text); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinLabels renders a label block as a prefix for an additional label:
// `a="b"` → `a="b",`; empty stays empty.
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// braced re-wraps a label block in braces, or returns "" when empty.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the admin endpoint's HTTP handler:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/traces   JSON dump of the tracer's recent traces, newest first
//	/debug/pprof/*  the standard net/http/pprof handlers
//	/               a plain-text index of the above
//
// reg and tz may each be nil, which serves an empty snapshot / trace
// list.
func Handler(reg *Registry, tz *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var s Snapshot
		if reg != nil {
			s = reg.Snapshot()
		}
		_ = WriteMetrics(w, s)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := tz.Recent()
		if traces == nil {
			traces = []*Trace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Finished uint64   `json:"finished"`
			Traces   []*Trace `json:"traces"`
		}{tz.Finished(), traces})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "fairjob admin endpoint\n\n/metrics\n/debug/traces\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running admin endpoint; Close shuts it down.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the admin endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and serves it on a background goroutine until Close.
func Serve(addr string, reg *Registry, tz *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, tz)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes the listener.
func (s *Server) Close() error { return s.srv.Close() }
