package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WriteMetrics renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric base name, then
// one line per counter/gauge and the cumulative `_bucket`/`_sum`/`_count`
// series per histogram. Label blocks embedded in metric names (see Name)
// are passed through; histogram bucket lines merge the `le` label into
// them. Exemplars are NOT written — they are an OpenMetrics construct,
// and a classic text-format parser rejects a bucket line carrying one,
// losing the whole scrape. Clients that want exemplars negotiate
// WriteOpenMetrics through the /metrics Accept header.
func WriteMetrics(w io.Writer, s Snapshot) error {
	return writeExposition(w, s, false)
}

// WriteOpenMetrics renders a snapshot in the OpenMetrics text format:
// histogram bucket lines carry ` # {trace_id="…"} value` exemplar
// suffixes (the /metrics → /debug/traces join key), counter families are
// named without their `_total` suffix as the spec requires (counters not
// following the `_total` convention are exposed as type `unknown`), and
// the exposition ends with the mandatory `# EOF` terminator.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	return writeExposition(w, s, true)
}

func writeExposition(w io.Writer, s Snapshot, openMetrics bool) error {
	type line struct {
		name string
		text string
	}
	byBase := make(map[string][]line)
	types := make(map[string]string)
	add := func(base, name, text string) {
		byBase[base] = append(byBase[base], line{name: name, text: text})
	}

	for name, v := range s.Counters {
		base, _ := SplitName(name)
		types[base] = "counter"
		add(base, name, fmt.Sprintf("%s %d\n", name, v))
	}
	for name, v := range s.Gauges {
		base, _ := SplitName(name)
		types[base] = "gauge"
		add(base, name, fmt.Sprintf("%s %s\n", name, formatFloat(v)))
	}
	for name, h := range s.Histograms {
		base, labels := SplitName(name)
		types[base] = "histogram"
		var b strings.Builder
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d", base, joinLabels(labels), le, cum)
			// Exemplar suffix: the trace behind the bucket's most recent
			// observation, the /metrics → /debug/traces join key. Legal in
			// OpenMetrics only.
			if openMetrics && h.Exemplars != nil && i < len(h.Exemplars) && h.Exemplars[i] != nil {
				ex := h.Exemplars[i]
				fmt.Fprintf(&b, " # {trace_id=\"%d\"} %s", ex.TraceID, formatFloat(ex.Value))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, braced(labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, braced(labels), h.Count)
		add(base, name, b.String())
	}

	bases := make([]string, 0, len(byBase))
	for base := range byBase {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		family, typ := base, types[base]
		if openMetrics && typ == "counter" {
			// OpenMetrics names the counter family without the `_total`
			// sample suffix; counters outside that convention cannot be
			// expressed as counters and degrade to `unknown`.
			if trimmed := strings.TrimSuffix(base, "_total"); trimmed != base {
				family = trimmed
			} else {
				typ = "unknown"
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, typ); err != nil {
			return err
		}
		lines := byBase[base]
		sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
		for _, l := range lines {
			if _, err := io.WriteString(w, l.text); err != nil {
				return err
			}
		}
	}
	if openMetrics {
		if _, err := io.WriteString(w, "# EOF\n"); err != nil {
			return err
		}
	}
	return nil
}

// joinLabels renders a label block as a prefix for an additional label:
// `a="b"` → `a="b",`; empty stays empty.
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// braced re-wraps a label block in braces, or returns "" when empty.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Probe is one health predicate: nil means healthy, an error describes
// why not. Probes must be safe for concurrent use — they run on every
// scrape.
type Probe func() error

// Health wires the Kubernetes-style probe pair into the admin endpoint.
// A nil *Health, or a nil individual probe, reports healthy — a process
// serving /metrics is, at minimum, alive.
type Health struct {
	// Live is the /healthz (liveness) predicate: failing means the
	// process is wedged and should be restarted.
	Live Probe
	// Ready is the /readyz (readiness) predicate: failing means the
	// process should not receive new traffic right now — e.g. the serve
	// engine's admission gate is at its shed threshold — but is expected
	// to recover without a restart.
	Ready Probe
}

func (h *Health) live() error {
	if h == nil || h.Live == nil {
		return nil
	}
	return h.Live()
}

func (h *Health) ready() error {
	if h == nil || h.Ready == nil {
		return nil
	}
	return h.Ready()
}

// probeHandler serves one probe: 200 "ok" when it passes, 503 with the
// error text when it fails.
func probeHandler(probe func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := probe(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unavailable: %v\n", err)
			return
		}
		fmt.Fprint(w, "ok\n")
	}
}

// MetricsContentType is the default /metrics Content-Type: the
// Prometheus text exposition format, version 0.0.4, with no exemplars.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the /metrics Content-Type when the client
// negotiates OpenMetrics via `Accept: application/openmetrics-text`; the
// body then carries exemplar suffixes and ends with `# EOF`.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text format. Each media range is matched on its type alone
// (parameters like version= and q= are ignored) — the same lenient
// matching Prometheus servers apply.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := part
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = mt[:i]
		}
		if strings.TrimSpace(mt) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// metricsHandler serves /metrics with content negotiation: the classic
// 0.0.4 text format (no exemplars) by default, the OpenMetrics text
// format (exemplars, `# EOF`) when the Accept header asks for it. HEAD
// answers with the negotiated headers alone; other methods get 405.
func metricsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		openMetrics := acceptsOpenMetrics(r.Header.Get("Accept"))
		ct := MetricsContentType
		if openMetrics {
			ct = OpenMetricsContentType
		}
		w.Header().Set("Content-Type", ct)
		switch r.Method {
		case http.MethodGet:
			var s Snapshot
			if reg != nil {
				s = reg.Snapshot()
			}
			if openMetrics {
				_ = WriteOpenMetrics(w, s)
			} else {
				_ = WriteMetrics(w, s)
			}
		case http.MethodHead:
			w.WriteHeader(http.StatusOK)
		default:
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	}
}

// DefaultTraceDumpLimit bounds how many traces /debug/traces returns
// when the request carries no ?limit.
const DefaultTraceDumpLimit = 64

// AdminOptions wires the admin endpoint's data sources. Every field may
// be nil; the corresponding view serves an empty document or an
// always-healthy probe.
type AdminOptions struct {
	Registry *Registry
	Tracer   *Tracer
	Health   *Health
	// SLO, when set, serves /debug/slo.
	SLO *SLOMonitor
	// Events, when set, serves the wide-event ring at /debug/events.
	Events *RingSink
	// Profiler, when set, serves the continuous-profile ring at
	// /debug/profiles (list, fetch-by-id, latest heap delta).
	Profiler *Profiler
}

// Handler is the two-source compatibility constructor predating
// AdminOptions; it serves no SLO or event views.
func Handler(reg *Registry, tz *Tracer, h *Health) http.Handler {
	return NewHandler(AdminOptions{Registry: reg, Tracer: tz, Health: h})
}

// readOnly guards a GET/HEAD endpoint: it answers HEAD with the headers
// alone (the probe a scraper's liveness check sends), rejects other
// methods with 405, and delegates GET to fn.
func readOnly(contentType string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		switch r.Method {
		case http.MethodGet:
			fn(w, r)
		case http.MethodHead:
			w.WriteHeader(http.StatusOK)
		default:
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	}
}

// NewHandler returns the admin endpoint's HTTP handler:
//
//	/metrics        Prometheus text exposition of the registry (0.0.4,
//	                no exemplars); `Accept: application/openmetrics-text`
//	                negotiates OpenMetrics with exemplar suffixes on
//	                histogram buckets; GET and HEAD
//	/healthz        liveness probe: 200 "ok" or 503 with the reason
//	/readyz         readiness probe: 200 "ok" or 503 with the reason
//	/debug/traces   JSON dump of retained traces, newest first;
//	                ?limit=N (default 64), ?outcome=ok|slow|error, and
//	                ?trace_id=N exact lookup (the exemplar/wide-event
//	                join key; 404 when not retained)
//	/debug/traces/<id>  plain-text span waterfall of one retained trace
//	/debug/slo      JSON SLO status: burn rates, alerts, budget
//	/debug/events   JSON dump of recent wide events, newest first;
//	                ?limit=N (default 64)
//	/debug/pprof/*  the standard net/http/pprof handlers
//	/               a plain-text index of the above
func NewHandler(o AdminOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", probeHandler(o.Health.live))
	mux.HandleFunc("/readyz", probeHandler(o.Health.ready))
	mux.HandleFunc("/metrics", metricsHandler(o.Registry))
	mux.HandleFunc("/debug/traces", readOnly("application/json", func(w http.ResponseWriter, r *http.Request) {
		// ?trace_id= is the exact-lookup path: the join key an exemplar
		// or wide event published resolves to its one trace (404 when
		// the ring evicted it or the sampler dropped it).
		if raw := r.URL.Query().Get("trace_id"); raw != "" {
			id, err := strconv.ParseUint(raw, 10, 64)
			if err != nil || id == 0 {
				http.Error(w, "trace_id must be a positive integer", http.StatusBadRequest)
				return
			}
			t := o.Tracer.Find(id)
			if t == nil {
				http.Error(w, "trace not retained (evicted, sampled out, or never existed)", http.StatusNotFound)
				return
			}
			writeJSON(w, t)
			return
		}
		limit := parseLimit(r, DefaultTraceDumpLimit)
		outcome := r.URL.Query().Get("outcome")
		if outcome != "" && outcome != "ok" && outcome != "slow" && outcome != "error" {
			http.Error(w, `outcome must be "ok", "slow" or "error"`, http.StatusBadRequest)
			return
		}
		traces := []*Trace{}
		for _, t := range o.Tracer.Recent() {
			if outcome != "" && t.Class() != outcome {
				continue
			}
			traces = append(traces, t)
			if len(traces) == limit {
				break
			}
		}
		writeJSON(w, struct {
			Finished  uint64                    `json:"finished"`
			Retention map[string]TraceRetention `json:"retention,omitempty"`
			Traces    []*Trace                  `json:"traces"`
		}{o.Tracer.Finished(), o.Tracer.Retention(), traces})
	}))
	mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
		tracesSubHandler(o.Tracer, w, r)
	})
	mux.HandleFunc("/debug/slo", readOnly("application/json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, o.SLO.Status())
	}))
	mux.HandleFunc("/debug/events", readOnly("application/json", func(w http.ResponseWriter, r *http.Request) {
		limit := parseLimit(r, DefaultTraceDumpLimit)
		events := o.Events.Recent()
		if events == nil {
			events = []*Event{}
		}
		if len(events) > limit {
			events = events[:limit]
		}
		writeJSON(w, struct {
			Events []*Event `json:"events"`
		}{events})
	}))
	mux.HandleFunc("/debug/profiles", readOnly("application/json", func(w http.ResponseWriter, _ *http.Request) {
		profiles := []CapturedProfile{}
		var rounds uint64
		if o.Profiler != nil {
			profiles = o.Profiler.List()
			rounds = o.Profiler.Rounds()
		}
		writeJSON(w, struct {
			Rounds   uint64            `json:"rounds"`
			Profiles []CapturedProfile `json:"profiles"`
		}{rounds, profiles})
	}))
	mux.HandleFunc("/debug/profiles/", func(w http.ResponseWriter, r *http.Request) {
		profilesSubHandler(o.Profiler, w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "fairjob admin endpoint\n\n/metrics\n/healthz\n/readyz\n/debug/traces\n/debug/traces/<id>\n/debug/slo\n/debug/events\n/debug/profiles\n/debug/pprof/\n")
	})
	return mux
}

// tracesSubHandler serves /debug/traces/<id>: the plain-text span
// waterfall of one retained trace (see WriteWaterfall), the rendering
// an operator reads after a wide event or exemplar hands them a
// trace_id.
func tracesSubHandler(tz *Tracer, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "usage: /debug/traces/<id>", http.StatusBadRequest)
		return
	}
	t := tz.Find(id)
	if t == nil {
		http.Error(w, "trace not retained (evicted, sampled out, or never existed)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	WriteWaterfall(w, t)
}

// profilesSubHandler serves the /debug/profiles/ subtree:
//
//	/debug/profiles/<id>         the raw gzipped pprof protobuf
//	/debug/profiles/<id>/labels  JSON pprof-label totals of that profile
//	/debug/profiles/heapdelta    JSON allocation delta between the two
//	                             most recent heap captures
func profilesSubHandler(p *Profiler, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if p == nil {
		http.Error(w, "profiler disabled", http.StatusNotFound)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/profiles/")
	if rest == "heapdelta" {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusOK)
			return
		}
		delta, ok := p.LatestHeapDelta()
		if !ok {
			// No two heap rounds yet: an empty delta, not an error — the
			// scrape loop should not 404-flap while the profiler warms up.
			delta = &HeapDelta{Sites: []HeapDeltaSite{}}
		}
		writeJSON(w, delta)
		return
	}
	idStr, wantLabels := rest, false
	if s := strings.TrimSuffix(rest, "/labels"); s != rest {
		idStr, wantLabels = s, true
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "profile id must be an integer", http.StatusBadRequest)
		return
	}
	cp, ok := p.Get(id)
	if !ok {
		http.Error(w, "no such profile (it may have fallen off the ring)", http.StatusNotFound)
		return
	}
	if wantLabels {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusOK)
			return
		}
		totals, grand, err := LabelTotals(cp.Data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, struct {
			ID     uint64       `json:"id"`
			Kind   string       `json:"kind"`
			Total  int64        `json:"total"`
			Labels []LabelTotal `json:"labels"`
		}{cp.ID, cp.Kind, grand, totals})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("%s-%d.pprof", cp.Kind, cp.ID)))
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	_, _ = w.Write(cp.Data)
}

// parseLimit reads ?limit=N, falling back to def for missing or
// malformed values and clamping to ≥ 1.
func parseLimit(r *http.Request, def int) int {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running admin endpoint; Close shuts it down.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve is the compatibility wrapper over ServeAdmin without SLO or
// event views.
func Serve(addr string, reg *Registry, tz *Tracer, h *Health) (*Server, error) {
	return ServeAdmin(addr, AdminOptions{Registry: reg, Tracer: tz, Health: h})
}

// ServeAdmin starts the admin endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and serves it on a background goroutine until Close or
// Shutdown.
func ServeAdmin(addr string, o AdminOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(o)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping in-flight scrapes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline — the graceful half of the
// CLI's signal handling. It falls back to Close semantics when ctx ends
// first.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
