package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets defined by sorted
// upper bounds, with an implicit +Inf overflow bucket, and tracks the
// observation count and sum. Recording is lock-free (one binary search
// plus three atomic adds); quantiles are estimated from a Snapshot by
// linear interpolation inside the covering bucket, the standard
// Prometheus-style estimator whose error is bounded by the bucket width.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; immutable
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated

	// Exemplar storage (see exemplar.go): per-bucket most-recent
	// observation plus the overall maximum, recorded only through
	// ObserveWithExemplar.
	exemplars []atomic.Pointer[Exemplar]
	max       atomic.Pointer[Exemplar]
}

// NewHistogram builds a histogram with the given bucket upper bounds
// (sorted copies are taken; duplicates are removed). Nil or empty bounds
// default to LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets()
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{
		bounds:    uniq,
		counts:    make([]atomic.Uint64, len(uniq)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(uniq)+1),
	}
}

// bucketIndex returns the bucket covering v: the first bucket whose
// upper bound is ≥ v, with len(bounds) the +Inf overflow bucket.
func bucketIndex(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := bucketIndex(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot captures the histogram's current state. Writers are not
// stopped, so the copy is only approximately consistent (see the package
// doc); totals are recomputed from the copied buckets so the snapshot is
// internally coherent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:      h.bounds, // immutable, shared
		Counts:      make([]uint64, len(h.counts)),
		Sum:         h.Sum(),
		Exemplars:   h.snapshotExemplars(),
		MaxExemplar: h.max.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// counts (Counts[len(Bounds)] is the +Inf overflow bucket), the total
// count and the value sum, plus the exemplars recorded so far —
// Exemplars is nil when none were recorded, else indexed like Counts
// with nil gaps.
type HistogramSnapshot struct {
	Bounds      []float64
	Counts      []uint64
	Count       uint64
	Sum         float64
	Exemplars   []*Exemplar
	MaxExemplar *Exemplar
}

// Mean returns the average observed value, or NaN when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the covering bucket, taking 0 as the lower edge
// of the first bucket. Observations in the +Inf overflow bucket clamp to
// the highest finite bound. An empty snapshot returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: the estimator has no upper edge, clamp.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*((target-prev)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge adds other's buckets into a copy of s and returns it. Both
// snapshots must share identical bounds (true for all label variants of
// one logical metric); mismatched bounds return s unchanged and false.
func (s HistogramSnapshot) Merge(other HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(s.Bounds) == 0 {
		return other, true
	}
	if len(other.Bounds) == 0 {
		return s, true
	}
	if len(s.Bounds) != len(other.Bounds) {
		return s, false
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return s, false
		}
	}
	out := HistogramSnapshot{
		Bounds:      s.Bounds,
		Counts:      make([]uint64, len(s.Counts)),
		Count:       s.Count + other.Count,
		Sum:         s.Sum + other.Sum,
		Exemplars:   mergeExemplars(s.Exemplars, other.Exemplars, len(s.Counts)),
		MaxExemplar: maxExemplar(s.MaxExemplar, other.MaxExemplar),
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + other.Counts[i]
	}
	return out, true
}

// LatencyBuckets returns the default latency bucket bounds in seconds:
// 1µs to 10s in 1–2.5–5 decade steps — wide enough to cover a cache hit
// (~100ns rounds to the first bucket) through a cold full-table scan.
func LatencyBuckets() []float64 {
	var out []float64
	for decade := 1e-6; decade < 10; decade *= 10 {
		out = append(out, decade, 2.5*decade, 5*decade)
	}
	return append(out, 10)
}

// LinearBuckets returns n buckets of the given width starting at start:
// start, start+width, …, start+(n-1)·width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n buckets growing geometrically from start
// by factor: start, start·factor, …
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
