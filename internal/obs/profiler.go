package obs

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// This file is the continuous profiler (DESIGN.md §13): a background
// loop that captures CPU, heap, goroutine, mutex and block profiles on a
// fixed cadence into a bounded per-kind ring, so the admin endpoint can
// answer "what was the process doing N minutes ago" without anyone
// having run `go tool pprof` in advance. CPU profiles carry the pprof
// labels the serve engine attaches per request (serve.profileLabels), so
// a captured window decomposes by request kind; heap captures
// additionally feed a stack-keyed allocation delta between consecutive
// rounds — the "what allocated since last time" view that absolute heap
// profiles hide behind long-lived state.

// Profile kinds the capture round produces. CPU is captured by sampling
// a window of execution; the others are instantaneous runtime snapshots.
const (
	ProfileCPU       = "cpu"
	ProfileHeap      = "heap"
	ProfileGoroutine = "goroutine"
	ProfileMutex     = "mutex"
	ProfileBlock     = "block"
)

// profileKinds is the capture order of one round. CPU runs first because
// it is the only capture that takes wall time; the instantaneous
// snapshots then describe the process right after the sampled window.
var profileKinds = []string{ProfileCPU, ProfileHeap, ProfileGoroutine, ProfileMutex, ProfileBlock}

// DefaultProfileRing is how many profiles of each kind the ring keeps
// when ProfilerOptions.Ring is zero.
const DefaultProfileRing = 4

// ProfilerOptions configures NewProfiler. The zero value is usable: a
// 60s cadence with a 5s CPU window, four profiles per kind, no metrics,
// and mutex/block profiling left at the process's current rates.
type ProfilerOptions struct {
	// Registry, when non-nil, receives profiler telemetry:
	// profiler_captures_total{kind=…}, profiler_errors_total{kind=…},
	// the profiler_ring_profiles gauge and the
	// profiler_last_capture_unixtime gauge.
	Registry *Registry
	// Interval is the cadence between capture rounds (default 60s).
	Interval time.Duration
	// CPUDuration is the CPU sampling window per round (default 5s). It
	// is clamped to Interval so a round never overruns its slot.
	CPUDuration time.Duration
	// Ring bounds how many profiles of each kind are retained (default
	// DefaultProfileRing). Older profiles fall off; memory is bounded by
	// Ring × kinds × profile size.
	Ring int
	// MutexFraction, when positive, is passed to
	// runtime.SetMutexProfileFraction so mutex profiles have content.
	// Zero leaves the process setting untouched.
	MutexFraction int
	// BlockRate, when positive, is passed to
	// runtime.SetBlockProfileRate so block profiles have content. Zero
	// leaves the process setting untouched.
	BlockRate int
}

// CapturedProfile is one retained profile: the raw gzipped pprof
// protobuf plus capture metadata. Data is omitted from JSON listings —
// it is fetched by ID as a binary document.
type CapturedProfile struct {
	ID    uint64    `json:"id"`
	Kind  string    `json:"kind"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Size  int       `json:"size"`
	Data  []byte    `json:"-"`
}

// HeapDeltaSite is one allocation site of a heap delta, attributed to
// the innermost resolvable function of its stack.
type HeapDeltaSite struct {
	Func         string `json:"func"`
	AllocBytes   int64  `json:"alloc_bytes"`
	AllocObjects int64  `json:"alloc_objects"`
}

// HeapDelta is the allocation growth between two consecutive heap
// captures: per-site cumulative alloc deltas, largest first. Sites that
// allocated nothing in the window are omitted.
type HeapDelta struct {
	From  time.Time       `json:"from"`
	To    time.Time       `json:"to"`
	Sites []HeapDeltaSite `json:"sites"`
}

// heapDeltaTopSites bounds how many sites a HeapDelta reports.
const heapDeltaTopSites = 20

// memKey identifies an allocation site by its sampled call stack.
type memKey [32]uintptr

type memCounts struct {
	bytes, objects int64
}

// Profiler captures profiles continuously. Create with NewProfiler,
// start the background loop with Start, stop it with Stop (which waits
// for an in-flight round to finish — the graceful-shutdown contract the
// CLI's SIGTERM path relies on). All methods are safe for concurrent
// use; the admin endpoint reads the ring while the loop appends to it.
type Profiler struct {
	interval time.Duration
	cpuDur   time.Duration
	ringSize int

	mu       sync.Mutex
	rings    map[string][]*CapturedProfile
	nextID   uint64
	lastMem  map[memKey]memCounts
	lastHeap time.Time
	delta    *HeapDelta
	rounds   uint64

	capturesBy map[string]*Counter
	errorsBy   map[string]*Counter
	lastUnix   *Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewProfiler returns a profiler that is configured but not running;
// call Start to begin the capture loop, or CaptureRound to take one
// round synchronously (tests, one-shot tools).
func NewProfiler(o ProfilerOptions) *Profiler {
	if o.Interval <= 0 {
		o.Interval = 60 * time.Second
	}
	if o.CPUDuration <= 0 {
		o.CPUDuration = 5 * time.Second
	}
	if o.CPUDuration > o.Interval {
		o.CPUDuration = o.Interval
	}
	if o.Ring <= 0 {
		o.Ring = DefaultProfileRing
	}
	if o.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(o.MutexFraction)
	}
	if o.BlockRate > 0 {
		runtime.SetBlockProfileRate(o.BlockRate)
	}
	p := &Profiler{
		interval:   o.Interval,
		cpuDur:     o.CPUDuration,
		ringSize:   o.Ring,
		rings:      make(map[string][]*CapturedProfile, len(profileKinds)),
		capturesBy: make(map[string]*Counter, len(profileKinds)),
		errorsBy:   make(map[string]*Counter, len(profileKinds)),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if r := o.Registry; r != nil {
		for _, kind := range profileKinds {
			p.capturesBy[kind] = r.Counter(Name("profiler_captures_total", "kind", kind))
			p.errorsBy[kind] = r.Counter(Name("profiler_errors_total", "kind", kind))
		}
		p.lastUnix = r.Gauge("profiler_last_capture_unixtime")
		r.GaugeFunc("profiler_ring_profiles", func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			n := 0
			for _, ring := range p.rings {
				n += len(ring)
			}
			return float64(n)
		})
	}
	return p
}

// Start launches the capture loop on a background goroutine. The first
// round begins one interval after Start — a process's first seconds are
// dominated by its own boot, which is rarely the window worth keeping.
// Start is idempotent.
func (p *Profiler) Start() {
	p.startOnce.Do(func() {
		go p.loop()
	})
}

func (p *Profiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-p.stop
		cancel()
	}()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.CaptureRound(ctx)
		}
	}
}

// Stop halts the capture loop and waits for an in-flight round to
// finish. A round's CPU window is interrupted (the context cancels the
// wait), so Stop returns promptly even mid-window. Stop is idempotent
// and safe to call on a profiler that was never started.
func (p *Profiler) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.startOnce.Do(func() { close(p.done) }) // never started: nothing to wait for
	<-p.done
}

// CaptureRound synchronously captures one profile of every kind,
// appending each to its ring. The ctx bounds the CPU sampling window —
// cancellation cuts the window short but still keeps the partial
// profile, which is exactly what a SIGTERM wants: whatever was sampled,
// flushed.
func (p *Profiler) CaptureRound(ctx context.Context) {
	for _, kind := range profileKinds {
		if err := p.captureOne(ctx, kind); err != nil {
			if c := p.errorsBy[kind]; c != nil {
				c.Inc()
			}
			continue
		}
		if c := p.capturesBy[kind]; c != nil {
			c.Inc()
		}
	}
	p.mu.Lock()
	p.rounds++
	p.mu.Unlock()
	if p.lastUnix != nil {
		p.lastUnix.Set(float64(time.Now().Unix()))
	}
}

// CaptureHeap takes one heap capture — and advances the allocation-delta
// baseline — without sampling a CPU window. The load harness calls this
// right before its measured phase so LatestHeapDelta spans exactly the
// run, not whatever happened since the previous full round.
func (p *Profiler) CaptureHeap() {
	if err := p.captureOne(context.Background(), ProfileHeap); err != nil {
		if c := p.errorsBy[ProfileHeap]; c != nil {
			c.Inc()
		}
		return
	}
	if c := p.capturesBy[ProfileHeap]; c != nil {
		c.Inc()
	}
}

func (p *Profiler) captureOne(ctx context.Context, kind string) error {
	start := time.Now()
	var buf bytes.Buffer
	switch kind {
	case ProfileCPU:
		// Only one CPU profile can run process-wide; if /debug/pprof/profile
		// (or a test) holds it, record the error and move on — the next
		// round retries.
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return err
		}
		select {
		case <-time.After(p.cpuDur):
		case <-ctx.Done():
		}
		pprof.StopCPUProfile()
	case ProfileHeap:
		p.recordHeapDelta(start)
		if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
			return err
		}
	default:
		prof := pprof.Lookup(kind)
		if prof == nil {
			return fmt.Errorf("obs: no such profile %q", kind)
		}
		if err := prof.WriteTo(&buf, 0); err != nil {
			return err
		}
	}
	p.append(&CapturedProfile{
		Kind:  kind,
		Start: start,
		End:   time.Now(),
		Size:  buf.Len(),
		Data:  buf.Bytes(),
	})
	return nil
}

func (p *Profiler) append(cp *CapturedProfile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	cp.ID = p.nextID
	ring := append(p.rings[cp.Kind], cp)
	if len(ring) > p.ringSize {
		ring = ring[len(ring)-p.ringSize:]
	}
	p.rings[cp.Kind] = ring
}

// recordHeapDelta snapshots runtime.MemProfile and, when a previous
// snapshot exists, computes the per-site allocation growth since it.
// Using the raw records rather than diffing two pprof protobufs keeps
// the computation allocation-light and symbol resolution lazy: only the
// top sites of the delta are ever symbolized.
func (p *Profiler) recordHeapDelta(now time.Time) {
	// The memory profile is published lazily — records can lag the live
	// heap by up to two GC cycles, which makes short windows read as "no
	// allocation". One forced GC per capture (at most one per interval)
	// pins the window edge to the present.
	runtime.GC()
	var records []runtime.MemProfileRecord
	n, ok := runtime.MemProfile(nil, true)
	for {
		records = make([]runtime.MemProfileRecord, n+64)
		n, ok = runtime.MemProfile(records, true)
		if ok {
			records = records[:n]
			break
		}
	}
	cur := make(map[memKey]memCounts, len(records))
	type site struct {
		key memKey
		d   memCounts
	}
	var grown []site
	p.mu.Lock()
	prev, prevAt := p.lastMem, p.lastHeap
	p.mu.Unlock()
	for _, r := range records {
		k := memKey(r.Stack0)
		c := cur[k]
		c.bytes += r.AllocBytes
		c.objects += r.AllocObjects
		cur[k] = c
	}
	if prev != nil {
		for k, c := range cur {
			d := memCounts{bytes: c.bytes - prev[k].bytes, objects: c.objects - prev[k].objects}
			if d.bytes > 0 {
				grown = append(grown, site{key: k, d: d})
			}
		}
		sort.Slice(grown, func(i, j int) bool { return grown[i].d.bytes > grown[j].d.bytes })
		if len(grown) > heapDeltaTopSites {
			grown = grown[:heapDeltaTopSites]
		}
		delta := &HeapDelta{From: prevAt, To: now, Sites: make([]HeapDeltaSite, 0, len(grown))}
		for _, s := range grown {
			delta.Sites = append(delta.Sites, HeapDeltaSite{
				Func:         siteFunc(s.key),
				AllocBytes:   s.d.bytes,
				AllocObjects: s.d.objects,
			})
		}
		p.mu.Lock()
		p.delta = delta
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.lastMem, p.lastHeap = cur, now
	p.mu.Unlock()
}

// siteFunc names an allocation site: the innermost stack frame that
// resolves to a function, skipping runtime-internal malloc frames.
func siteFunc(k memKey) string {
	for _, pc := range k {
		if pc == 0 {
			break
		}
		f := runtime.FuncForPC(pc)
		if f == nil {
			continue
		}
		name := f.Name()
		switch name {
		case "runtime.mallocgc", "runtime.makeslice", "runtime.growslice",
			"runtime.newobject", "runtime.makemap", "runtime.mapassign":
			continue
		}
		return name
	}
	return "unknown"
}

// List returns capture metadata for every retained profile, newest
// first, with the profile bodies elided.
func (p *Profiler) List() []CapturedProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []CapturedProfile
	for _, ring := range p.rings {
		for _, cp := range ring {
			meta := *cp
			meta.Data = nil
			out = append(out, meta)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Get returns the retained profile with the given ID.
func (p *Profiler) Get(id uint64) (*CapturedProfile, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ring := range p.rings {
		for _, cp := range ring {
			if cp.ID == id {
				return cp, true
			}
		}
	}
	return nil, false
}

// Latest returns the newest retained profile of the given kind.
func (p *Profiler) Latest(kind string) (*CapturedProfile, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ring := p.rings[kind]
	if len(ring) == 0 {
		return nil, false
	}
	return ring[len(ring)-1], true
}

// LatestHeapDelta returns the allocation delta between the two most
// recent heap captures, or false before two rounds have run.
func (p *Profiler) LatestHeapDelta() (*HeapDelta, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delta, p.delta != nil
}

// Rounds returns how many capture rounds have completed.
func (p *Profiler) Rounds() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rounds
}
