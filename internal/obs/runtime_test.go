package obs

import (
	"bytes"
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // ensure at least one GC cycle and pause exist

	snap := reg.Snapshot()
	if g, ok := snap.Gauges["go_goroutines"]; !ok || g < 1 {
		t.Fatalf("go_goroutines = %v (present=%v), want ≥ 1", g, ok)
	}
	if g, ok := snap.Gauges["go_gomaxprocs"]; !ok || g < 1 {
		t.Fatalf("go_gomaxprocs = %v (present=%v), want ≥ 1", g, ok)
	}
	if g, ok := snap.Gauges["go_heap_live_bytes"]; !ok || g <= 0 {
		t.Fatalf("go_heap_live_bytes = %v (present=%v), want > 0", g, ok)
	}
	if g, ok := snap.Gauges["go_heap_goal_bytes"]; !ok || g <= 0 {
		t.Fatalf("go_heap_goal_bytes = %v (present=%v), want > 0", g, ok)
	}
	if g, ok := snap.Gauges["go_gc_cycles"]; !ok || g < 1 {
		t.Fatalf("go_gc_cycles = %v (present=%v), want ≥ 1", g, ok)
	}
	// Pause quantiles exist and are ordered p50 ≤ p99 ≤ max.
	p50 := snap.Gauges[Name("go_gc_pause_seconds", "q", "p50")]
	p99 := snap.Gauges[Name("go_gc_pause_seconds", "q", "p99")]
	mx := snap.Gauges[Name("go_gc_pause_seconds", "q", "max")]
	if p50 < 0 || p99 < p50 || mx < p99 {
		t.Fatalf("pause quantiles disordered: p50=%v p99=%v max=%v", p50, p99, mx)
	}

	// The bridge renders as valid Prometheus text.
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, snap); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if !strings.Contains(buf.String(), "go_goroutines") {
		t.Fatal("rendered exposition lacks go_goroutines")
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 10, 0},
		Buckets: []float64{0, 1, 2, 3, 4},
	}
	if q := histQuantile(h, 0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2)", q)
	}
	if q := histQuantile(h, 1.0); q < 2 || q > 3 {
		t.Fatalf("max = %v, want within (2,3)", q)
	}
	if q := histQuantile(nil, 0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", q)
	}
	if q := histQuantile(&metrics.Float64Histogram{}, 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// Infinite edges collapse to the finite neighbor.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{5, 0, 5},
		Buckets: []float64{math.Inf(-1), 1, 2, math.Inf(+1)},
	}
	if q := histQuantile(inf, 0.01); q != 1 {
		t.Fatalf("-Inf bucket quantile = %v, want 1", q)
	}
	if q := histQuantile(inf, 1.0); q != 2 {
		t.Fatalf("+Inf bucket quantile = %v, want 2", q)
	}
}
