package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeBasics(t *testing.T) {
	tz := NewTracer(4)
	tr := tz.Start("quantify")

	scatter := tr.StartSpan("scatter")
	scatter.SetKind("primary")
	leg := scatter.StartChild("serve")
	leg.SetKind("primary")
	leg.SetPartition(2)
	leg.SetGen(7)
	leg.SetEntries(11)
	leg.SetOutcome("won")
	hedge := scatter.StartChild("serve")
	hedge.SetKind("hedge")
	hedge.SetPartition(2)
	hedge.SetOutcome("lost")
	hedge.Link(leg)
	leg.FinishDur(3 * time.Millisecond)
	hedge.FinishDur(time.Millisecond)
	scatter.SetOutcome("ok")
	scatter.Finish()
	tz.Finish(tr)

	got := tz.Recent()
	if len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
	c := got[0]
	if err := c.CheckSpans(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
	if len(c.Children) != 3 {
		t.Fatalf("retained %d spans, want 3", len(c.Children))
	}
	root, l, h := c.Children[0], c.Children[1], c.Children[2]
	if root.Parent != 0 || l.Parent != root.ID || h.Parent != root.ID {
		t.Fatalf("parent links wrong: %+v", c.Children)
	}
	if l.Partition != 2 || l.Gen != 7 || l.Entries != 11 || l.Outcome != "won" || l.Dur != 3*time.Millisecond {
		t.Fatalf("leg fields wrong: %+v", l)
	}
	if l.Link != h.ID || h.Link != l.ID {
		t.Fatalf("hedge pair not reciprocally linked: leg.Link=%d hedge.Link=%d", l.Link, h.Link)
	}
	// The retained tree must survive a JSON round-trip (the ?trace_id=
	// endpoint serializes it).
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"children"`)) {
		t.Fatalf("serialized trace lacks children: %s", raw)
	}
	tz.Release(tr)
}

func TestSpanInvalidRefsAreInert(t *testing.T) {
	var nilTrace *Trace
	s := nilTrace.StartSpan("x")
	if s.Valid() || s.ID() != 0 {
		t.Fatalf("nil trace produced a valid ref: %+v", s)
	}
	// Every op on an invalid ref is a no-op; none may panic.
	s.SetKind("k")
	s.SetPartition(1)
	s.SetGen(1)
	s.SetEntries(1)
	s.SetOutcome("ok")
	s.Annotate("a", "b")
	s.Finish()
	s.FinishDur(time.Second)
	s.Link(s)
	if c := s.StartChild("y"); c.Valid() {
		t.Fatal("child of an invalid ref must be invalid")
	}
}

func TestSpanCapDrops(t *testing.T) {
	tz := NewTracer(2)
	tr := tz.Start("flood")
	for i := 0; i < MaxChildSpans+5; i++ {
		s := tr.StartSpan("scan")
		s.FinishDur(0)
	}
	if len(tr.Children) != MaxChildSpans {
		t.Fatalf("tree grew to %d, cap is %d", len(tr.Children), MaxChildSpans)
	}
	if tr.SpansDropped != 5 {
		t.Fatalf("SpansDropped = %d, want 5", tr.SpansDropped)
	}
	tz.Finish(tr)
	if err := tz.Recent()[0].CheckSpans(); err != nil {
		t.Fatalf("capped tree malformed: %v", err)
	}
	tz.Release(tr)
}

func TestSpanFinishOnce(t *testing.T) {
	tz := NewTracer(2)
	tr := tz.Start("x")
	s := tr.StartSpan("leg")
	s.FinishDur(5 * time.Millisecond)
	s.FinishDur(time.Hour)
	s.Finish()
	if d := tr.Children[0].Dur; d != 5*time.Millisecond {
		t.Fatalf("span re-finished: dur %v, want 5ms", d)
	}
	tz.Finish(tr)
	tz.Release(tr)
}

func TestSpanAbandonedClosedInRingCopy(t *testing.T) {
	tz := NewTracer(2)
	tr := tz.Start("x")
	open := tr.StartSpan("engine") // never finished: a node-side straggler
	done := tr.StartSpan("serve")
	done.SetOutcome("ok")
	done.FinishDur(time.Millisecond)
	tz.Finish(tr)

	c := tz.Recent()[0]
	if err := c.CheckSpans(); err != nil {
		t.Fatalf("retained tree must be well-formed despite the open span: %v", err)
	}
	if c.Children[0].Outcome != "abandoned" || c.Children[0].Dur < 0 {
		t.Fatalf("open span not closed as abandoned in the copy: %+v", c.Children[0])
	}
	// The live object is untouched: the straggler's own Finish still
	// lands there (and only there).
	if tr.Children[0].Dur >= 0 {
		t.Fatalf("live span was closed in place: %+v", tr.Children[0])
	}
	open.Finish()
	if tr.Children[0].Dur < 0 {
		t.Fatal("straggler Finish must land on the live object")
	}
	tz.Release(tr)
}

func TestSpanStragglerAfterRecycleIsIgnored(t *testing.T) {
	tz := NewTracer(2)
	tr := tz.Start("first")
	s := tr.StartSpan("leg")

	// Recycle the trace by hand, exactly as Tracer.Start does when the
	// pool hands this object to the next request.
	mu := tr.cmu
	mu.Lock()
	*tr = Trace{ID: tr.ID + 1, Label: "second", Begin: time.Now()}
	tr.cmu = mu
	tr.Spans = tr.spanBuf[:0]
	tr.Annots = tr.annotBuf[:0]
	tr.Children = tr.childBuf[:0]
	mu.Unlock()

	// The straggling ref's writes must all miss.
	s.SetOutcome("late")
	s.Finish()
	if len(tr.Children) != 0 {
		t.Fatalf("straggler scribbled on the recycled trace: %+v", tr.Children)
	}
	if c := s.StartChild("x"); c.Valid() {
		t.Fatal("straggler spawned a child under the recycled trace")
	}
}

// TestStressSpanPool races concurrent span creation, straggling span
// writers that outlive their request, trace recycling through the pool,
// and ring scrapers — every scraped tree must stay well-formed. Run
// with -race; this is the span-tree analogue of the PR 5 trace-ring
// stress tests.
func TestStressSpanPool(t *testing.T) {
	tz := NewTracerTailSampled(16, TailSamplingPolicy{KeepOneInN: 2})
	const workers, iters = 8, 300
	var workerWG, scrapeWG, stragglers sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: hammer Recent and Find while traces churn.
	for g := 0; g < 2; g++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, c := range tz.Recent() {
					if err := c.CheckSpans(); err != nil {
						t.Errorf("scraped malformed tree: %v", err)
						return
					}
					if f := tz.Find(c.ID); f != nil && f.ID != c.ID {
						t.Errorf("Find(%d) returned trace %d", c.ID, f.ID)
						return
					}
				}
			}
		}()
	}

	for g := 0; g < workers; g++ {
		workerWG.Add(1)
		go func(g int) {
			defer workerWG.Done()
			for i := 0; i < iters; i++ {
				tr := tz.Start("req")
				root := tr.StartSpan("scatter")
				a := root.StartChild("serve")
				a.SetPartition(g)
				b := root.StartChild("serve")
				b.SetKind("hedge")
				b.Link(a)
				// A straggler holds refs past Release, like a node-side
				// engine goroutine outliving its request.
				stragglers.Add(1)
				go func(a, b SpanRef) {
					defer stragglers.Done()
					a.SetOutcome("won")
					a.Finish()
					b.SetOutcome("lost")
					b.Finish()
					c := a.StartChild("engine")
					c.Finish()
				}(a, b)
				if i%3 == 0 {
					tr.SetOutcome("error") // exercise the always-keep class
				}
				root.Finish()
				tz.Finish(tr)
				tz.Release(tr)
			}
		}(g)
	}
	// Workers (and their stragglers) first, then stop the scrapers.
	workerWG.Wait()
	stragglers.Wait()
	close(stop)
	scrapeWG.Wait()

	for _, c := range tz.Recent() {
		if err := c.CheckSpans(); err != nil {
			t.Fatalf("final scrape malformed: %v", err)
		}
	}
}

func TestWaterfallRendering(t *testing.T) {
	tz := NewTracer(2)
	tr := tz.Start("quantify")
	scatter := tr.StartSpan("scatter")
	scatter.SetKind("primary")
	leg := scatter.StartChild("serve")
	leg.SetKind("primary")
	leg.SetPartition(1)
	leg.SetOutcome("won")
	hedge := scatter.StartChild("serve")
	hedge.SetKind("hedge")
	hedge.SetPartition(1)
	hedge.SetOutcome("lost")
	hedge.Link(leg)
	leg.FinishDur(2 * time.Millisecond)
	hedge.FinishDur(time.Millisecond)
	scatter.Finish()
	tr.Mark("validate")
	tz.Finish(tr)

	var buf bytes.Buffer
	WriteWaterfall(&buf, tz.Recent()[0])
	out := buf.String()
	for _, want := range []string{
		fmt.Sprintf("trace %d", tr.ID),
		"scatter [primary]",
		"serve p1 [primary]",
		"serve p1 [hedge]",
		"◀ winner",
		"peer=#",
		"phases: validate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall lacks %q:\n%s", want, out)
		}
	}
	tz.Release(tr)
}

func TestTraceIDLookupAndWaterfallEndpoint(t *testing.T) {
	tz := NewTracer(8)
	tr := tz.Start("quantify")
	s := tr.StartSpan("scatter")
	s.SetOutcome("ok")
	s.Finish()
	tz.Finish(tr)
	id := tr.TraceID()
	tz.Release(tr)

	srv := httptest.NewServer(NewHandler(AdminOptions{Registry: NewRegistry(), Tracer: tz}))
	defer srv.Close()

	// ?trace_id= exact lookup returns the one trace, as JSON.
	res, err := http.Get(fmt.Sprintf("%s/debug/traces?trace_id=%d", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("?trace_id=%d: status %d: %s", id, res.StatusCode, body)
	}
	var got Trace
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("?trace_id= body is not one trace: %v\n%s", err, body)
	}
	if got.ID != id || len(got.Children) != 1 {
		t.Fatalf("lookup returned trace %d with %d spans, want %d with 1", got.ID, len(got.Children), id)
	}

	// Unknown and malformed ids.
	if res, _ := http.Get(srv.URL + "/debug/traces?trace_id=999999"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace_id: status %d, want 404", res.StatusCode)
	}
	if res, _ := http.Get(srv.URL + "/debug/traces?trace_id=bogus"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed trace_id: status %d, want 400", res.StatusCode)
	}

	// /debug/traces/<id> renders the waterfall.
	res, err = http.Get(fmt.Sprintf("%s/debug/traces/%d", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("waterfall: status %d: %s", res.StatusCode, body)
	}
	if !strings.Contains(string(body), fmt.Sprintf("trace %d", id)) || !strings.Contains(string(body), "scatter") {
		t.Fatalf("waterfall body wrong:\n%s", body)
	}
	if res, _ := http.Get(srv.URL + "/debug/traces/424242"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("waterfall for unknown id: status %d, want 404", res.StatusCode)
	}
}
