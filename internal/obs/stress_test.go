package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// The TestStress* tests are the observability gate's race-detector
// workload (scripts/check.sh runs them under -race): concurrent writers
// on the lock-free record paths while readers snapshot and scrape over
// HTTP, exactly the production interleaving of a busy engine plus a
// Prometheus scraper.

// httpGet fetches a URL and returns the body, failing on any non-200.
func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body), nil
}

func TestStressHistogramExemplarConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("stress_seconds", LatencyBuckets())
	srv := httptest.NewServer(NewHandler(AdminOptions{Registry: reg}))
	defer srv.Close()

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				h.ObserveWithExemplar(float64(i%100)/1000, uint64(g*2000+i+1))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.MaxExemplar != nil && s.MaxExemplar.TraceID == 0 {
					t.Error("torn exemplar read")
					return
				}
				if _, err := httpGet(srv.URL + "/metrics"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("lost observations: count = %d, want 8000", s.Count)
	}
	if s.MaxExemplar == nil {
		t.Fatal("no max exemplar after 8000 exemplared observations")
	}
}

func TestStressTracerRingConcurrentDump(t *testing.T) {
	tz := NewTracerTailSampled(128, TailSamplingPolicy{
		SlowThreshold: time.Millisecond,
		KeepOneInN:    4,
	})
	srv := httptest.NewServer(NewHandler(AdminOptions{Tracer: tz}))
	defer srv.Close()

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	outcomes := []string{"", "ok", "deadline", "error"}
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				tr := tz.Start("stress")
				tr.Mark("phase")
				tr.SetOutcome(outcomes[(g+i)%len(outcomes)])
				tz.Finish(tr)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tz.Recent()
				tz.Retention()
				for _, q := range []string{"", "?outcome=error", "?limit=5"} {
					if _, err := httpGet(srv.URL + "/debug/traces" + q); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if tz.Finished() != 8000 {
		t.Fatalf("Finished() = %d, want 8000", tz.Finished())
	}
	var kept, dropped uint64
	for _, r := range tz.Retention() {
		kept += r.Kept
		dropped += r.Dropped
	}
	if kept+dropped != 8000 {
		t.Fatalf("retention accounts for %d of 8000", kept+dropped)
	}
}

func TestStressLoggerRingConcurrentReaders(t *testing.T) {
	l := NewLogger(LoggerOptions{SampleN: 8})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				outcome := "ok"
				if i%7 == 0 {
					outcome = "error"
				}
				l.Log(Event{Outcome: outcome, LatencyNS: int64(i), TraceID: uint64(g*2000 + i + 1)})
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range l.Ring().Recent() {
				if e.Outcome == "" {
					t.Error("torn event read")
					return
				}
			}
			l.Stats()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
}
