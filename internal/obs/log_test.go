package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilLoggerIsFullyInert(t *testing.T) {
	var l *Logger
	l.Log(Event{Outcome: "ok"})
	l.SetMinLevel(LevelError)
	if l.Component("x") != nil {
		t.Fatal("nil logger Component should stay nil")
	}
	if l.Ring() != nil {
		t.Fatal("nil logger has no ring")
	}
	if s := l.Stats(); s != (LoggerStats{}) {
		t.Fatalf("nil logger stats = %+v", s)
	}
}

func TestLoggerStampsAndDefaultRing(t *testing.T) {
	l := NewLogger(LoggerOptions{Measure: "exposure"})
	before := time.Now()
	l.Log(Event{Outcome: "ok", LatencyNS: 42})
	got := l.Ring().Recent()
	if len(got) != 1 {
		t.Fatalf("ring holds %d events, want 1", len(got))
	}
	e := got[0]
	if e.Component != "app" || e.Measure != "exposure" || e.Level != "info" {
		t.Fatalf("stamps wrong: %+v", e)
	}
	if e.Time.Before(before) {
		t.Fatalf("timestamp %v predates the call", e.Time)
	}
}

func TestLoggerLevelFromOutcome(t *testing.T) {
	cases := map[string]string{
		"":         "info",
		"ok":       "info",
		"shed":     "warn",
		"deadline": "warn",
		"canceled": "warn",
		"panic":    "error",
		"error":    "error",
	}
	for outcome, want := range cases {
		if got := levelFor(outcome).String(); got != want {
			t.Errorf("levelFor(%q) = %s, want %s", outcome, got, want)
		}
	}
}

func TestLoggerMinLevelFilters(t *testing.T) {
	l := NewLogger(LoggerOptions{MinLevel: LevelWarn})
	l.Log(Event{Outcome: "ok"})
	l.Log(Event{Outcome: "shed"})
	l.Log(Event{Outcome: "panic"})
	if got := len(l.Ring().Recent()); got != 2 {
		t.Fatalf("MinLevel=warn kept %d events, want 2", got)
	}
	l.SetMinLevel(LevelDebug)
	l.Log(Event{Outcome: "ok"})
	if got := len(l.Ring().Recent()); got != 3 {
		t.Fatalf("after lowering the level, %d events, want 3", got)
	}
}

func TestLoggerSamplesSuccessesKeepsFailures(t *testing.T) {
	l := NewLogger(LoggerOptions{SampleN: 8})
	for i := 0; i < 64; i++ {
		l.Log(Event{Outcome: "ok"})
	}
	for _, bad := range []string{"shed", "deadline", "canceled", "panic", "error"} {
		l.Log(Event{Outcome: bad})
	}
	var ok, other int
	for _, e := range l.Ring().Recent() {
		if e.Outcome == "ok" {
			ok++
		} else {
			other++
		}
	}
	if ok != 8 {
		t.Fatalf("1-in-8 sampling over 64 successes kept %d, want 8", ok)
	}
	if other != 5 {
		t.Fatalf("failures must never be sampled out: kept %d of 5", other)
	}
	st := l.Stats()
	if st.Emitted != 13 || st.Sampled != 56 {
		t.Fatalf("stats = %+v, want emitted 13 sampled 56", st)
	}
}

func TestComponentLoggersShareSamplingBudget(t *testing.T) {
	l := NewLogger(LoggerOptions{Component: "serve", SampleN: 2})
	child := l.Component("refresh")
	l.Log(Event{Outcome: "ok"})     // kept (1st)
	child.Log(Event{Outcome: "ok"}) // dropped (2nd of the shared counter)
	events := l.Ring().Recent()
	if len(events) != 1 || events[0].Component != "serve" {
		t.Fatalf("shared budget violated: %+v", events)
	}
	child.Log(Event{Outcome: "error"})
	events = l.Ring().Recent()
	if len(events) != 2 || events[0].Component != "refresh" {
		t.Fatalf("child stamp missing: %+v", events[0])
	}
}

func TestRingSinkWraparound(t *testing.T) {
	s := NewRingSink(4)
	for i := 1; i <= 10; i++ {
		s.Emit(&Event{LatencyNS: int64(i)})
	}
	got := s.Recent()
	if len(got) != 4 {
		t.Fatalf("ring of 4 holds %d", len(got))
	}
	for i, e := range got { // newest first
		if want := int64(10 - i); e.LatencyNS != want {
			t.Fatalf("slot %d = %d, want %d", i, e.LatencyNS, want)
		}
	}
}

func TestWriterSinkEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(LoggerOptions{Sink: NewWriterSink(&buf)})
	l.Log(Event{Outcome: "ok", LatencyNS: 1, TraceID: 7, Problem: "quantify"})
	l.Log(Event{Outcome: "deadline", LatencyNS: 2, Err: "serve: deadline exceeded"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		if err := ValidateEventJSON([]byte(ln)); err != nil {
			t.Fatalf("emitted line fails the schema: %v\n%s", err, ln)
		}
	}
}

func TestMultiSinkFansOutAndSkipsNil(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	var buf bytes.Buffer
	l := NewLogger(LoggerOptions{Sink: MultiSink(a, nil, b, NewWriterSink(&buf))})
	l.Log(Event{Outcome: "ok"})
	if len(a.Recent()) != 1 || len(b.Recent()) != 1 || buf.Len() == 0 {
		t.Fatal("event did not reach every sink")
	}
}

func TestValidateEventJSON(t *testing.T) {
	good, err := json.Marshal(Event{Outcome: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEventJSON(good); err != nil {
		t.Fatalf("canonical event rejected: %v", err)
	}
	cases := map[string]string{
		"not an object":   `[1, 2]`,
		"unknown field":   `{"time":"2026-01-01T00:00:00Z","component":"a","level":"info","outcome":"ok","latency_ns":1,"surprise":1}`,
		"missing outcome": `{"time":"2026-01-01T00:00:00Z","component":"a","level":"info","latency_ns":1}`,
	}
	for name, raw := range cases {
		if err := ValidateEventJSON([]byte(raw)); err == nil {
			t.Errorf("%s: validator accepted %s", name, raw)
		}
	}
}

func TestEventSchemaMatchesStruct(t *testing.T) {
	// Every JSON field the Event struct can produce must be declared in
	// EventSchema, and vice versa — the schema is closed in both
	// directions.
	e := Event{
		Time: time.Now(), Component: "c", Level: "info", Outcome: "ok", LatencyNS: 1,
		TraceID: 1, Gen: 1, Measure: "m", Problem: "p", Dim: "d", K: 1,
		Direction: "most", Algo: "TA", R1: "a", R2: "b", By: "x", Mitigator: "fair",
		Cache: "hit", QueueWaitNS: 1, SortedAccesses: 1, RandomAccesses: 1,
		Rounds: 1, CompareAccesses: 1, DeltaUnfairness: 0.01, Err: "e",
		Partitions: 1, MissingPartitions: "1",
		RPCs: 1, HedgesFired: 1, HedgesWon: 1, LegRetries: 1, SlowestPartition: "0",
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for field := range m {
		if _, ok := EventSchema[field]; !ok {
			t.Errorf("struct emits %q, absent from EventSchema", field)
		}
	}
	for field := range EventSchema {
		if _, ok := m[field]; !ok {
			t.Errorf("EventSchema declares %q, never emitted by a fully-populated Event", field)
		}
	}
}

func TestLoggerConcurrentUse(t *testing.T) {
	l := NewLogger(LoggerOptions{SampleN: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Log(Event{Outcome: "ok"})
				l.Log(Event{Outcome: "error"})
				l.Ring().Recent()
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	// 1600 successes at 1-in-4 → 400 kept; 1600 failures all kept.
	if st.Emitted != 2000 || st.Sampled != 1200 {
		t.Fatalf("stats = %+v, want emitted 2000 sampled 1200", st)
	}
}
