package obs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// This file is a minimal reader for the pprof protobuf wire format —
// just enough to aggregate sample values by pprof label, which is what
// the loadtest report and the CI profiling gate need. Parsing the wire
// format directly (a profile is an ordinary protobuf: field 1
// sample_type, field 2 samples with packed values and label pairs, field
// 6 the string table) keeps the repository dependency-free: the
// alternative is the github.com/google/pprof/profile package, which the
// zero-dependency policy rules out. The reader understands only the
// three fields it aggregates over and skips everything else by wire
// type, so profile format additions do not break it.

// LabelTotal is one (label key, label value) cell of a profile's
// aggregation: the summed sample value and its share of the profile
// total.
type LabelTotal struct {
	Key      string  `json:"key"`
	Value    string  `json:"value"`
	Total    int64   `json:"total"`
	Fraction float64 `json:"fraction"`
}

// LabelTotals aggregates a gzipped pprof profile's samples by pprof
// label: for every label key, the summed final sample value (CPU
// nanoseconds for CPU profiles) per label value, sorted by key then
// total descending. The second return is the profile's grand total over
// all samples, labeled or not, so callers can compute the unattributed
// remainder.
func LabelTotals(data []byte) ([]LabelTotal, int64, error) {
	prof, err := parseProfile(data)
	if err != nil {
		return nil, 0, err
	}
	byKey := make(map[string]map[string]int64)
	var grand int64
	for _, s := range prof.samples {
		grand += s.value
		for _, l := range s.labels {
			vals := byKey[l.key]
			if vals == nil {
				vals = make(map[string]int64)
				byKey[l.key] = vals
			}
			vals[l.value] += s.value
		}
	}
	var out []LabelTotal
	for k, vals := range byKey {
		for v, total := range vals {
			lt := LabelTotal{Key: k, Value: v, Total: total}
			if grand > 0 {
				lt.Fraction = float64(total) / float64(grand)
			}
			out = append(out, lt)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Value < out[j].Value
	})
	return out, grand, nil
}

// ProfileLabelKeys returns the distinct pprof label keys present in a
// gzipped profile — the CI gate's "are requests actually labeled" check.
func ProfileLabelKeys(data []byte) ([]string, error) {
	totals, _, err := LabelTotals(data)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, lt := range totals {
		if len(keys) == 0 || keys[len(keys)-1] != lt.Key {
			keys = append(keys, lt.Key)
		}
	}
	return keys, nil
}

type parsedLabel struct {
	key, value string
}

type parsedSample struct {
	value  int64 // the sample's final value column (CPU nanos for cpu profiles)
	labels []parsedLabel
}

type parsedProfile struct {
	samples []parsedSample
}

// parseProfile gunzips and decodes the three profile fields the
// aggregation needs. Raw (non-gzipped) profiles are accepted too — the
// gzip magic decides.
func parseProfile(data []byte) (*parsedProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("obs: profile gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("obs: profile gunzip: %w", err)
		}
		data = raw
	}

	// Pass 1: collect the string table and raw sample messages. The
	// string table may appear after samples in the stream, so label
	// indices are resolved in pass 2.
	var strtab []string
	var rawSamples [][]byte
	d := protoDecoder{buf: data}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch {
		case field == 6 && wire == 2: // string_table
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(b))
		case field == 2 && wire == 2: // sample
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			rawSamples = append(rawSamples, b)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}

	prof := &parsedProfile{samples: make([]parsedSample, 0, len(rawSamples))}
	for _, raw := range rawSamples {
		s, err := parseSample(raw, str)
		if err != nil {
			return nil, err
		}
		prof.samples = append(prof.samples, s)
	}
	return prof, nil
}

func parseSample(raw []byte, str func(uint64) string) (parsedSample, error) {
	var s parsedSample
	d := protoDecoder{buf: raw}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch {
		case field == 2 && wire == 2: // packed values; keep the last column
			b, err := d.bytes()
			if err != nil {
				return s, err
			}
			vd := protoDecoder{buf: b}
			for !vd.done() {
				v, err := vd.varint()
				if err != nil {
					return s, err
				}
				s.value = int64(v)
			}
		case field == 2 && wire == 0: // unpacked value
			v, err := d.varint()
			if err != nil {
				return s, err
			}
			s.value = int64(v)
		case field == 3 && wire == 2: // label
			b, err := d.bytes()
			if err != nil {
				return s, err
			}
			var keyIdx, strIdx uint64
			ld := protoDecoder{buf: b}
			for !ld.done() {
				lf, lw, err := ld.tag()
				if err != nil {
					return s, err
				}
				switch {
				case lf == 1 && lw == 0:
					keyIdx, err = ld.varint()
				case lf == 2 && lw == 0:
					strIdx, err = ld.varint()
				default:
					err = ld.skip(lw)
				}
				if err != nil {
					return s, err
				}
			}
			// Numeric labels (str == 0) are skipped: the request labels
			// the aggregation serves are all string-valued.
			if strIdx != 0 {
				s.labels = append(s.labels, parsedLabel{key: str(keyIdx), value: str(strIdx)})
			}
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// protoDecoder is a cursor over protobuf wire data.
type protoDecoder struct {
	buf []byte
	pos int
}

func (d *protoDecoder) done() bool { return d.pos >= len(d.buf) }

func (d *protoDecoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("obs: profile parse: truncated varint")
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("obs: profile parse: varint overflow")
		}
	}
}

func (d *protoDecoder) tag() (field int, wire int, err error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

func (d *protoDecoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("obs: profile parse: truncated field")
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *protoDecoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		if len(d.buf)-d.pos < 8 {
			return fmt.Errorf("obs: profile parse: truncated fixed64")
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes()
		return err
	case 5:
		if len(d.buf)-d.pos < 4 {
			return fmt.Errorf("obs: profile parse: truncated fixed32")
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("obs: profile parse: unsupported wire type %d", wire)
	}
}
