package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the wide-event half of the observability layer: one
// structured JSON event per request, carrying everything an operator
// needs to attribute a slow, shed or failed query to a concrete
// workload — problem type, measure, dimension/operands, snapshot
// generation, cache behavior, admission queue wait, access-cost
// counters and outcome — without joining log lines. Events flow through
// a Logger (leveled, component-stamped, with rate-limited sampling of
// success events) into one or more Sinks (an atomic ring for the admin
// endpoint, an io.Writer for JSONL files). Everything is zero-dependency
// and nil-safe: a nil *Logger drops every event for the cost of one
// branch, so instrumentation sites run unconditionally.

// Level classifies an event's severity. Events below a logger's minimum
// level are dropped before sampling.
type Level int32

const (
	// LevelDebug is for high-volume diagnostics (unused by the serve
	// path today, reserved for callers).
	LevelDebug Level = iota
	// LevelInfo is the success path: outcome "ok".
	LevelInfo
	// LevelWarn covers work the system chose to refuse or complete
	// incompletely: shed, deadline, canceled and partial outcomes.
	LevelWarn
	// LevelError covers failures: validation/execution errors and
	// recovered panics.
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// Event is one wide request event. The JSON field set is closed: every
// field an event may carry appears below and in EventSchema, and the
// schema gate (check.sh) rejects events with unknown or missing-required
// fields. Required fields have no omitempty so they serialize even at
// their zero value; optional fields are omitted when empty so events
// stay one compact line.
type Event struct {
	// Required on every event.
	Time      time.Time `json:"time"`
	Component string    `json:"component"`
	Level     string    `json:"level"`
	Outcome   string    `json:"outcome"` // ok | shed | deadline | canceled | panic | partial | error
	LatencyNS int64     `json:"latency_ns"`

	// Identity and linkage.
	TraceID uint64 `json:"trace_id,omitempty"` // joins /debug/traces and /metrics exemplars
	Gen     uint64 `json:"gen,omitempty"`      // snapshot generation that served the request
	Measure string `json:"measure,omitempty"`  // workload measure (emd, exposure, kendall, jaccard)

	// Request shape: quantify requests fill dim/k/direction/algo,
	// compare requests fill r1/r2/by, mitigate requests fill mitigator
	// plus r1/r2/by (target group key, query, location).
	Problem   string `json:"problem,omitempty"`
	Dim       string `json:"dim,omitempty"`
	K         int    `json:"k,omitempty"`
	Direction string `json:"direction,omitempty"`
	Algo      string `json:"algo,omitempty"`
	R1        string `json:"r1,omitempty"`
	R2        string `json:"r2,omitempty"`
	By        string `json:"by,omitempty"`
	Mitigator string `json:"mitigator,omitempty"`

	// Execution detail.
	Cache           string `json:"cache,omitempty"` // hit | miss | off
	QueueWaitNS     int64  `json:"queue_wait_ns,omitempty"`
	SortedAccesses  int    `json:"sorted_accesses,omitempty"`
	RandomAccesses  int    `json:"random_accesses,omitempty"`
	Rounds          int    `json:"rounds,omitempty"`
	CompareAccesses int    `json:"compare_accesses,omitempty"`
	// DeltaUnfairness is a mitigate request's before − after Exposure
	// deviation: positive when the re-ranking helped the target group.
	DeltaUnfairness float64 `json:"delta_unfairness,omitempty"`
	Err             string  `json:"err,omitempty"`

	// Scatter-gather detail (component "cluster"): the fan-out width and,
	// on a degraded ("partial" outcome) response, the comma-joined ids of
	// the partitions whose data is missing from the answer.
	Partitions        int    `json:"partitions,omitempty"`
	MissingPartitions string `json:"missing_partitions,omitempty"`
	// Fan-out cost and tail attribution: how many transport round-trips
	// the request issued (every primary, hedge and retry send), how many
	// hedge duplicates fired and how many of those won their race, how
	// many leg retries ran, and which partition consumed the most total
	// leg time — one line answers "why was this scatter slow".
	// SlowestPartition is a string (not int) so partition 0 survives
	// omitempty.
	RPCs             int64  `json:"rpcs,omitempty"`
	HedgesFired      int64  `json:"hedges_fired,omitempty"`
	HedgesWon        int64  `json:"hedges_won,omitempty"`
	LegRetries       int64  `json:"leg_retries,omitempty"`
	SlowestPartition string `json:"slowest_partition,omitempty"`
}

// EventSchema is the documented wide-event schema: every legal JSON
// field name mapped to whether it is required. ValidateEventJSON (and
// the schema gate built on it) enforce that emitted events carry no
// field outside this set and none of the required ones missing. The
// table in DESIGN.md §11 mirrors this map.
var EventSchema = map[string]bool{
	"time": true, "component": true, "level": true, "outcome": true, "latency_ns": true,
	"trace_id": false, "gen": false, "measure": false,
	"problem": false, "dim": false, "k": false, "direction": false, "algo": false,
	"r1": false, "r2": false, "by": false, "mitigator": false,
	"cache": false, "queue_wait_ns": false,
	"sorted_accesses": false, "random_accesses": false, "rounds": false,
	"compare_accesses": false, "delta_unfairness": false, "err": false,
	"partitions": false, "missing_partitions": false,
	"rpcs": false, "hedges_fired": false, "hedges_won": false,
	"leg_retries": false, "slowest_partition": false,
}

// ValidateEventJSON checks one serialized event against EventSchema: it
// must be a JSON object, carry every required field, and carry no field
// outside the schema. It is the jq-free validator the observability
// gate runs over every event a test workload emits.
func ValidateEventJSON(line []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err != nil {
		return fmt.Errorf("obs: event is not a JSON object: %w", err)
	}
	for field := range m {
		if _, ok := EventSchema[field]; !ok {
			return fmt.Errorf("obs: event carries unknown field %q", field)
		}
	}
	for field, required := range EventSchema {
		if !required {
			continue
		}
		if _, ok := m[field]; !ok {
			return fmt.Errorf("obs: event missing required field %q", field)
		}
	}
	return nil
}

// Sink receives emitted events. The event pointer is owned by the sink
// layer after Emit and must be treated as read-only (the ring sink
// shares it with concurrent readers).
type Sink interface {
	Emit(e *Event)
}

// DefaultEventCapacity is the ring size used when NewRingSink is given a
// non-positive capacity.
const DefaultEventCapacity = 256

// RingSink retains the most recent events in a fixed-size ring, the
// same lock-free claim-then-store design as the trace ring: an atomic
// counter claims a slot, an atomic pointer publishes the event, so
// concurrent batch workers never serialize on a mutex. It backs the
// admin endpoint's /debug/events view.
type RingSink struct {
	capacity int
	next     atomic.Uint64
	ring     []atomic.Pointer[Event]
}

// NewRingSink builds a ring sink retaining the last capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &RingSink{capacity: capacity, ring: make([]atomic.Pointer[Event], capacity)}
}

// Emit publishes e into the ring, evicting the oldest event once full.
func (s *RingSink) Emit(e *Event) {
	if s == nil || e == nil {
		return
	}
	slot := s.next.Add(1) - 1
	s.ring[slot%uint64(s.capacity)].Store(e)
}

// Recent returns the retained events, newest first. The slice is a
// copy; the events are shared and read-only.
func (s *RingSink) Recent() []*Event {
	if s == nil {
		return nil
	}
	claimed := s.next.Load()
	n := claimed
	if n > uint64(s.capacity) {
		n = uint64(s.capacity)
	}
	out := make([]*Event, 0, n)
	for i := uint64(0); i < n; i++ {
		if e := s.ring[(claimed-1-i)%uint64(s.capacity)].Load(); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// WriterSink serializes events as JSON lines to an io.Writer behind a
// mutex — the file/stderr sink of `fairjob -log`. Encoding errors are
// counted, not returned: logging must never fail a request.
type WriterSink struct {
	mu     sync.Mutex
	enc    *json.Encoder
	errors atomic.Uint64
}

// NewWriterSink wraps w in a JSONL sink.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{enc: json.NewEncoder(w)}
}

// Emit writes e as one JSON line.
func (s *WriterSink) Emit(e *Event) {
	if s == nil || e == nil {
		return
	}
	s.mu.Lock()
	err := s.enc.Encode(e)
	s.mu.Unlock()
	if err != nil {
		s.errors.Add(1)
	}
}

// Errors returns how many events failed to serialize or write.
func (s *WriterSink) Errors() uint64 { return s.errors.Load() }

// MultiSink fans each event out to every sink in order (ring for the
// admin endpoint plus a JSONL file, say). Nil members are skipped.
func MultiSink(sinks ...Sink) Sink {
	kept := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return kept
}

type multiSink []Sink

func (m multiSink) Emit(e *Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// LoggerOptions configures NewLogger.
type LoggerOptions struct {
	// Component stamps every event missing one; Component on the event
	// itself wins. Empty defaults to "app".
	Component string
	// Measure stamps every event missing one (the workload's measure
	// name — emd, exposure, kendall, jaccard).
	Measure string
	// Sink receives the surviving events; nil selects a fresh RingSink
	// of DefaultEventCapacity (readable via Logger.Ring).
	Sink Sink
	// SampleN keeps one in SampleN success ("ok") events; 0 or 1 keeps
	// every event. Warn- and error-level events — sheds, deadlines,
	// cancellations, panics, errors — are never sampled out: failures
	// are always worth a line.
	SampleN uint64
	// MinLevel drops events below this level before sampling.
	MinLevel Level
}

// Logger emits wide events. It is safe for concurrent use — the
// sampling counter and stats are atomics, level is atomically
// adjustable, and sinks synchronize themselves. Component loggers made
// with Component share the parent's sink, sampling state and counters,
// so one process-wide sampling budget spans all components. All methods
// are nil-receiver-safe.
type Logger struct {
	core      *loggerCore
	component string
	measure   string
}

type loggerCore struct {
	sink    Sink
	ring    *RingSink // non-nil only when the logger owns its default ring
	min     atomic.Int32
	sampleN uint64

	seq     atomic.Uint64 // success events seen, drives 1-in-N sampling
	emitted atomic.Uint64 // events that reached the sink
	sampled atomic.Uint64 // success events dropped by sampling
}

// NewLogger builds a wide-event logger.
func NewLogger(opts LoggerOptions) *Logger {
	core := &loggerCore{sink: opts.Sink, sampleN: opts.SampleN}
	if core.sink == nil {
		core.ring = NewRingSink(DefaultEventCapacity)
		core.sink = core.ring
	}
	core.min.Store(int32(opts.MinLevel))
	component := opts.Component
	if component == "" {
		component = "app"
	}
	return &Logger{core: core, component: component, measure: opts.Measure}
}

// Component returns a logger stamping events with the given component
// name, sharing the receiver's sink, level and sampling state.
func (l *Logger) Component(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{core: l.core, component: name, measure: l.measure}
}

// Ring returns the logger's default ring sink, or nil when the logger
// was given an explicit sink.
func (l *Logger) Ring() *RingSink {
	if l == nil {
		return nil
	}
	return l.core.ring
}

// SetMinLevel adjusts the logger's minimum level at runtime (shared
// with its component loggers).
func (l *Logger) SetMinLevel(min Level) {
	if l == nil {
		return
	}
	l.core.min.Store(int32(min))
}

// levelFor derives an event's level from its outcome: failures are
// errors, refusals are warnings, everything else is info.
func levelFor(outcome string) Level {
	switch outcome {
	case "", "ok":
		return LevelInfo
	case "shed", "deadline", "canceled", "partial":
		return LevelWarn
	default: // panic, error, and any future failure class
		return LevelError
	}
}

// Log emits one event: the level is derived from the outcome, the
// component/measure stamps and timestamp are applied, leveling and
// success-sampling run, and the survivor goes to the sink. The event is
// copied, so the caller may reuse its value.
func (l *Logger) Log(e Event) {
	if l == nil {
		return
	}
	lvl := levelFor(e.Outcome)
	if lvl < Level(l.core.min.Load()) {
		return
	}
	if lvl == LevelInfo && l.core.sampleN > 1 {
		// Deterministic 1-in-N: the first success and every Nth after it
		// survive; failures never enter this branch.
		if (l.core.seq.Add(1)-1)%l.core.sampleN != 0 {
			l.core.sampled.Add(1)
			return
		}
	}
	// The sink keeps a pointer, so the survivor must live on the heap —
	// but only the survivor: copying into a fresh variable *after* the
	// sampling returns keeps the parameter itself stack-allocated, so a
	// sampled-out call costs no allocation at all.
	ev := e
	if ev.Component == "" {
		ev.Component = l.component
	}
	if ev.Measure == "" {
		ev.Measure = l.measure
	}
	if ev.Level == "" {
		ev.Level = lvl.String()
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	l.core.emitted.Add(1)
	l.core.sink.Emit(&ev)
}

// LoggerStats reports a logger's lifetime emission counters.
type LoggerStats struct {
	// Emitted counts events that reached the sink.
	Emitted uint64
	// Sampled counts success events dropped by 1-in-N sampling.
	Sampled uint64
}

// Stats returns the logger's emission counters (shared across its
// component loggers).
func (l *Logger) Stats() LoggerStats {
	if l == nil {
		return LoggerStats{}
	}
	return LoggerStats{Emitted: l.core.emitted.Load(), Sampled: l.core.sampled.Load()}
}
