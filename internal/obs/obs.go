// Package obs is the repository's zero-dependency telemetry layer: a
// named registry of atomic counters, gauges and fixed-bucket histograms,
// plus lightweight per-query trace spans kept in a ring buffer, plus an
// optional HTTP admin endpoint that exposes both (Prometheus text
// exposition at /metrics, JSON traces at /debug/traces, and
// net/http/pprof).
//
// The package exists because the paper's efficiency story (§6.3, Table 6)
// is about access costs and latency, and the serving/eval pipelines those
// numbers come from were previously observable only through one-off
// benchmarks. With obs, the serve engine, the sharded evaluators and the
// top-k algorithms publish their hot-path behavior continuously, and both
// experiments and operators can read it back — through Registry.Snapshot
// in-process, or over HTTP from a live process.
//
// Design constraints (see DESIGN.md §9):
//
//   - Zero dependencies: standard library only.
//   - Allocation-conscious: recording a counter increment or a histogram
//     observation allocates nothing and takes a handful of atomic
//     operations; metric pointers are resolved once at instrumentation
//     setup, never per event. Tracing allocates one small Trace per query
//     and is opt-in.
//   - Safe for concurrent use: every metric type and the registry itself
//     may be hammered from any number of goroutines. Histogram snapshots
//     are read without stopping writers and are therefore only
//     approximately consistent (bucket counts may lag the total by
//     in-flight observations); this is the standard trade of scrape-based
//     telemetry and is irrelevant at scrape timescales.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64 — a value that can go up and
// down (queue depth, utilization, generation number).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named collection of metrics. Metric accessors are
// get-or-create: the first call with a name registers the metric, later
// calls return the same instance, so instrumentation sites can resolve
// their metrics once at setup and share them freely. Registering one name
// as two different kinds panics — that is a programming error, not an
// operational condition.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]any // *Counter | *Gauge | gaugeFunc | *Histogram
}

// gaugeFunc is a gauge evaluated at snapshot time rather than set at
// event time — for values that are cheaper to read on demand than to
// maintain (cache length, snapshot age).
type gaugeFunc func() float64

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the metric registered under name, or nil.
func (r *Registry) lookup(name string) any {
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	return m
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if m := r.lookup(name); m != nil {
		return mustKind[*Counter](name, m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return mustKind[*Counter](name, m)
	}
	c := &Counter{}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if m := r.lookup(name); m != nil {
		return mustKind[*Gauge](name, m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return mustKind[*Gauge](name, m)
	}
	g := &Gauge{}
	r.metrics[name] = g
	return g
}

// GaugeFunc registers fn as a gauge evaluated lazily at snapshot time.
// Re-registering a name replaces the previous function (an engine that
// swaps snapshots re-points its age gauge this way).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if _, isFn := m.(gaugeFunc); !isFn {
			panic(fmt.Sprintf("obs: metric %q already registered as %T, not a gauge func", name, m))
		}
	}
	r.metrics[name] = gaugeFunc(fn)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls ignore
// bounds and return the existing instance). A nil bounds defaults to
// LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if m := r.lookup(name); m != nil {
		return mustKind[*Histogram](name, m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return mustKind[*Histogram](name, m)
	}
	h := NewHistogram(bounds)
	r.metrics[name] = h
	return h
}

// mustKind asserts that a registered metric has the expected kind.
func mustKind[T any](name string, m any) T {
	t, ok := m.(T)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return t
}

// names returns all registered metric names, sorted, plus a shallow copy
// of the metric map taken under the lock.
func (r *Registry) copyMetrics() (names []string, metrics map[string]any) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	metrics = make(map[string]any, len(r.metrics))
	names = make([]string, 0, len(r.metrics))
	for name, m := range r.metrics {
		metrics[name] = m
		names = append(names, name)
	}
	sort.Strings(names)
	return names, metrics
}

// Name composes a metric name with a static label set:
// Name("topk_sorted_accesses", "algo", "TA") →
// `topk_sorted_accesses{algo="TA"}`. Labels are key-value pairs; an odd
// count panics. Label values are escaped per the Prometheus text format.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: Name(%q) with odd label count %d", base, len(labels)))
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitName splits a metric name into its base and its label block
// (without braces): `a{b="c"}` → ("a", `b="c"`); a plain name returns
// ("a", "").
func SplitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
