package obs

import (
	"math"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// SearchFloat64s: v ≤ bound lands in that bucket (0.5 and 1 → bucket
	// 0; 1.5 → bucket 1; 3 → bucket 2; 100 → overflow).
	want := []uint64{2, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("count/sum = %d/%g", s.Count, s.Sum)
	}
	if got := s.Mean(); math.Abs(got-106.0/5) > 1e-12 {
		t.Fatalf("mean = %g", got)
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := NewHistogram([]float64{4, 1, 2, 2, 1})
	s := h.Snapshot()
	want := []float64{1, 2, 4}
	if len(s.Bounds) != len(want) {
		t.Fatalf("bounds = %v", s.Bounds)
	}
	for i := range want {
		if s.Bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", s.Bounds, want)
		}
	}
	if len(s.Counts) != len(want)+1 {
		t.Fatalf("counts len = %d", len(s.Counts))
	}
}

// TestQuantileAccuracy checks the interpolation estimator against a known
// uniform distribution: with values 1..1000 and bucket width 10, every
// quantile estimate must land within one bucket width of the true value.
func TestQuantileAccuracy(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 100)) // 10, 20, …, 1000
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500},
		{0.90, 900},
		{0.95, 950},
		{0.99, 990},
		{1.00, 1000},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Fatalf("Quantile(%g) = %g, want %g ± 10 (bucket width)", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(0); got < 0 || got > 10 {
		t.Fatalf("Quantile(0) = %g, want within first bucket", got)
	}
}

// TestQuantileSkewedDistribution checks the estimator where most mass
// sits in one bucket — the cache-hit-vs-miss bimodal shape the serve
// latency histogram actually carries.
func TestQuantileSkewedDistribution(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 99; i++ {
		h.Observe(0.5) // first bucket
	}
	h.Observe(50) // third bucket
	s := h.Snapshot()
	if got := s.Quantile(0.5); got > 1 {
		t.Fatalf("p50 = %g, want within first bucket", got)
	}
	if got := s.Quantile(0.999); got <= 10 || got > 100 {
		t.Fatalf("p99.9 = %g, want inside (10, 100]", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %g, want NaN", got)
	}
	if got := (HistogramSnapshot{}).Mean(); !math.IsNaN(got) {
		t.Fatalf("empty mean = %g, want NaN", got)
	}
	// All observations in the +Inf overflow bucket clamp to the top bound.
	h := NewHistogram([]float64{1, 2})
	h.Observe(1e9)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1, -3, 42} { // out-of-range q clamps
		if got := s.Quantile(q); got != 2 {
			t.Fatalf("overflow Quantile(%g) = %g, want clamp to 2", q, got)
		}
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)
	m, ok := a.Snapshot().Merge(b.Snapshot())
	if !ok || m.Count != 3 || m.Sum != 11 {
		t.Fatalf("merge = %+v, %v", m, ok)
	}
	if m.Counts[0] != 1 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Fatalf("merged counts = %v", m.Counts)
	}
	// Empty merges are identity in either direction.
	if m2, ok := (HistogramSnapshot{}).Merge(a.Snapshot()); !ok || m2.Count != 1 {
		t.Fatalf("empty.Merge = %+v, %v", m2, ok)
	}
	if m2, ok := a.Snapshot().Merge(HistogramSnapshot{}); !ok || m2.Count != 1 {
		t.Fatalf("Merge(empty) = %+v, %v", m2, ok)
	}
	// Mismatched bounds refuse.
	c := NewHistogram([]float64{1, 3})
	if _, ok := a.Snapshot().Merge(c.Snapshot()); ok {
		t.Fatal("merge across mismatched bounds succeeded")
	}
}

func TestBucketHelpers(t *testing.T) {
	lat := LatencyBuckets()
	if len(lat) == 0 {
		t.Fatal("empty latency buckets")
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatalf("latency buckets not increasing at %d: %v", i, lat)
		}
	}
	if lat[0] != 1e-6 || lat[len(lat)-1] != 10 {
		t.Fatalf("latency bucket range = [%g, %g]", lat[0], lat[len(lat)-1])
	}
	lin := LinearBuckets(2, 3, 4)
	for i, want := range []float64{2, 5, 8, 11} {
		if lin[i] != want {
			t.Fatalf("linear = %v", lin)
		}
	}
	exp := ExponentialBuckets(1, 2, 5)
	for i, want := range []float64{1, 2, 4, 8, 16} {
		if exp[i] != want {
			t.Fatalf("exponential = %v", exp)
		}
	}
}
