package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// The waterfall is the human-readable rendering of a trace's span tree:
// one line per span, indented by tree depth, with the span's offset,
// duration, kind, partition and outcome, and a proportional bar showing
// where in the request's lifetime the span ran. It is what
// /debug/traces/<id> serves, and it exists because a JSON span tree
// answers "which partition made this request slow" only after mental
// arithmetic — the bar answers it at a glance.

// waterfallBarWidth is the bar gutter's width in cells.
const waterfallBarWidth = 32

// WriteWaterfall renders t's span tree as text.
func WriteWaterfall(w io.Writer, t *Trace) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "trace %d  %s  outcome=%s  total=%s", t.ID, t.Label, orOK(t.Outcome), round(t.Total))
	if t.Gen != 0 {
		fmt.Fprintf(w, "  gen=%d", t.Gen)
	}
	if t.SpansDropped > 0 {
		fmt.Fprintf(w, "  spans_dropped=%d", t.SpansDropped)
	}
	fmt.Fprintln(w)
	for _, a := range t.Annots {
		fmt.Fprintf(w, "  %s=%s\n", a.Key, a.Value)
	}
	if len(t.Spans) > 0 {
		phases := make([]string, 0, len(t.Spans))
		for _, sp := range t.Spans {
			phases = append(phases, fmt.Sprintf("%s %s", sp.Name, round(sp.Dur)))
		}
		fmt.Fprintf(w, "  phases: %s\n", strings.Join(phases, " | "))
	}
	if len(t.Children) == 0 {
		return
	}
	fmt.Fprintln(w)

	// Children of each parent, rendered in start order so the waterfall
	// reads top-to-bottom as time flows.
	kids := make(map[int32][]int, len(t.Children))
	for i := range t.Children {
		p := t.Children[i].Parent
		kids[p] = append(kids[p], i)
	}
	for _, g := range kids {
		sort.Slice(g, func(a, b int) bool {
			if t.Children[g[a]].Start != t.Children[g[b]].Start {
				return t.Children[g[a]].Start < t.Children[g[b]].Start
			}
			return g[a] < g[b]
		})
	}

	var walk func(parent int32, depth int)
	walk = func(parent int32, depth int) {
		for _, i := range kids[parent] {
			writeSpanLine(w, t, &t.Children[i], depth)
			walk(t.Children[i].ID, depth+1)
		}
	}
	walk(0, 0)
}

func writeSpanLine(w io.Writer, t *Trace, cs *ChildSpan, depth int) {
	label := cs.Name
	if cs.Partition >= 0 {
		label += fmt.Sprintf(" p%d", cs.Partition)
	}
	if cs.Kind != "" {
		label += " [" + cs.Kind + "]"
	}
	detail := make([]string, 0, 4)
	if cs.Outcome != "" {
		detail = append(detail, "outcome="+cs.Outcome)
	}
	if cs.Gen != 0 {
		detail = append(detail, fmt.Sprintf("gen=%d", cs.Gen))
	}
	if cs.Entries != 0 {
		detail = append(detail, fmt.Sprintf("entries=%d", cs.Entries))
	}
	if cs.Link != 0 {
		detail = append(detail, fmt.Sprintf("peer=#%d", cs.Link))
	}
	for _, a := range cs.Annots {
		detail = append(detail, a.Key+"="+a.Value)
	}
	mark := ""
	if cs.Outcome == "won" {
		mark = "  ◀ winner"
	}
	fmt.Fprintf(w, "#%-3d %s|%s| %8s +%-8s %s%s%s\n",
		cs.ID, strings.Repeat("  ", depth), bar(t.Total, cs.Start, cs.Dur),
		round(cs.Start), round(cs.Dur), label, joined(detail), mark)
}

// bar draws the span's extent within the request's total duration.
func bar(total time.Duration, start, dur time.Duration) string {
	cells := [waterfallBarWidth]byte{}
	for i := range cells {
		cells[i] = ' '
	}
	if total > 0 {
		from := int(int64(start) * waterfallBarWidth / int64(total))
		to := int(int64(start+dur) * waterfallBarWidth / int64(total))
		if from < 0 {
			from = 0
		}
		if from > waterfallBarWidth-1 {
			from = waterfallBarWidth - 1
		}
		if to <= from {
			to = from + 1
		}
		if to > waterfallBarWidth {
			to = waterfallBarWidth
		}
		for i := from; i < to; i++ {
			cells[i] = '='
		}
	}
	return string(cells[:])
}

func joined(detail []string) string {
	if len(detail) == 0 {
		return ""
	}
	return "  " + strings.Join(detail, " ")
}

func orOK(outcome string) string {
	if outcome == "" {
		return "ok"
	}
	return outcome
}

// round trims a duration to a readable precision for the waterfall.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond)
	default:
		return d
	}
}
