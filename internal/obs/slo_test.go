package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock is the injectable time source the SLO tests drive: hours of
// window arithmetic without sleeping.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 2, 3, 12, 0, 0, 0, time.UTC)}
}

func latencySLO(clock *fakeClock) *SLOMonitor {
	return NewSLOMonitor([]Objective{
		{Name: "latency", Target: 0.99, LatencyBound: 50 * time.Millisecond},
	}, SLOOptions{Clock: clock.Now})
}

func TestNilSLOMonitorIsFullyInert(t *testing.T) {
	var m *SLOMonitor
	m.Observe(time.Second, errors.New("boom"))
	if err := m.Healthy(); err != nil {
		t.Fatalf("nil monitor unhealthy: %v", err)
	}
	if st := m.Status(); st.Burning || len(st.Objectives) != 0 {
		t.Fatalf("nil monitor status = %+v", st)
	}
	m.Register(NewRegistry())
}

func TestSLOMalformedConfigPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"target 0": func() { NewSLOMonitor([]Objective{{Name: "x", Target: 0}}, SLOOptions{}) },
		"target 1": func() { NewSLOMonitor([]Objective{{Name: "x", Target: 1}}, SLOOptions{}) },
		"bad alert": func() {
			NewSLOMonitor([]Objective{{Name: "x", Target: 0.9}}, SLOOptions{
				Alerts: []BurnAlert{{Name: "a", Short: time.Hour, Long: time.Minute, Threshold: 1}},
			})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	clock := newFakeClock()
	m := latencySLO(clock)
	// 90 good + 10 bad in the current bucket: bad fraction 0.1, budget
	// 0.01 → burn rate 10 over every window that sees the bucket.
	for i := 0; i < 90; i++ {
		m.Observe(time.Millisecond, nil)
	}
	for i := 0; i < 10; i++ {
		m.Observe(time.Second, nil) // slow success is bad for a latency objective
	}
	st := m.Status()
	o := st.Objectives[0]
	if o.Good != 90 || o.Bad != 10 {
		t.Fatalf("good/bad = %d/%d, want 90/10", o.Good, o.Bad)
	}
	for _, w := range o.Windows {
		if w.BurnRate < 9.99 || w.BurnRate > 10.01 {
			t.Fatalf("window %s burn rate %g, want 10", w.Window, w.BurnRate)
		}
	}
	if got := 1 - o.BudgetRemaining; got < 9.99 || got > 10.01 {
		t.Fatalf("budget remaining %g, want 1-10 = -9", o.BudgetRemaining)
	}
}

func TestSLOEmptyWindowBurnsNothing(t *testing.T) {
	m := latencySLO(newFakeClock())
	st := m.Status()
	if st.Burning {
		t.Fatal("empty monitor is burning")
	}
	if br := st.Objectives[0].BudgetRemaining; br != 1 {
		t.Fatalf("empty budget remaining %g, want 1", br)
	}
	if err := m.Healthy(); err != nil {
		t.Fatal(err)
	}
}

func TestSLOMultiWindowAlertNeedsBothWindows(t *testing.T) {
	clock := newFakeClock()
	m := latencySLO(clock)
	// Seed an hour of pure success so the long (1h) window dilutes the
	// burst: the fast alert's short window burns hard but its long
	// window stays under threshold → no firing.
	for i := 0; i < 60; i++ {
		for j := 0; j < 100; j++ {
			m.Observe(time.Millisecond, nil)
		}
		clock.advance(time.Minute)
	}
	for i := 0; i < 100; i++ {
		m.Observe(time.Second, errors.New("boom"))
	}
	st := m.Status()
	fast := st.Objectives[0].Alerts[0]
	if fast.ShortBurn <= fast.Threshold {
		t.Fatalf("short window should burn: %+v", fast)
	}
	if fast.Firing {
		t.Fatalf("diluted long window must hold the alert back: %+v", fast)
	}
	if err := m.Healthy(); err != nil {
		t.Fatalf("healthy while long window is clean: %v", err)
	}
}

func TestSLOBurnFiresAndRecovers(t *testing.T) {
	clock := newFakeClock()
	m := latencySLO(clock)
	// A sustained total outage: every request bad for over an hour, so
	// both the 5m and 1h windows burn at 100× budget.
	for i := 0; i < 70; i++ {
		for j := 0; j < 20; j++ {
			m.Observe(time.Second, errors.New("boom"))
		}
		clock.advance(time.Minute)
	}
	err := m.Healthy()
	if err == nil {
		t.Fatal("sustained outage did not trip Healthy")
	}
	if !errors.Is(err, ErrSLOBurning) {
		t.Fatalf("err %v does not match ErrSLOBurning", err)
	}
	if !strings.Contains(err.Error(), "latency") {
		t.Fatalf("err %v does not name the objective", err)
	}
	if !m.Status().Burning {
		t.Fatal("Status disagrees with Healthy")
	}

	// The outage ends; once the windows slide past it, readiness
	// recovers without a restart (and without new traffic).
	clock.advance(7 * time.Hour)
	if err := m.Healthy(); err != nil {
		t.Fatalf("still unhealthy after the windows slid: %v", err)
	}
	if m.Status().Burning {
		t.Fatal("still burning after the windows slid")
	}
}

// TestSLOMinVolumeGuard pins the low-traffic guard: a lone failure on an
// idle replica has bad fraction 1.0 in every window, but must not fire
// an alert, flip Healthy, or set Burning — only sustained volume above
// the floor may. Disabling the guard restores the raw behavior.
func TestSLOMinVolumeGuard(t *testing.T) {
	clock := newFakeClock()
	m := latencySLO(clock)
	m.Observe(time.Second, errors.New("boom"))
	if err := m.Healthy(); err != nil {
		t.Fatalf("one failure on an idle replica tripped Healthy: %v", err)
	}
	st := m.Status()
	if st.Burning || st.Objectives[0].Burning {
		t.Fatal("one failure on an idle replica set Burning")
	}
	if st.MinWindowRequests != DefaultSLOMinWindowRequests {
		t.Fatalf("status floor = %d, want default %d", st.MinWindowRequests, DefaultSLOMinWindowRequests)
	}
	// The burn rate itself is still reported honestly — only firing is
	// gated.
	if fast := st.Objectives[0].Alerts[0]; fast.ShortBurn <= fast.Threshold {
		t.Fatalf("burn rate under-reported below the floor: %+v", fast)
	}

	// The same all-bad traffic above the floor fires.
	for i := 0; i < DefaultSLOMinWindowRequests; i++ {
		m.Observe(time.Second, errors.New("boom"))
	}
	if err := m.Healthy(); err == nil {
		t.Fatal("all-bad traffic above the volume floor did not fire")
	}

	// MinWindowRequests < 0 disables the guard: one failure fires.
	raw := NewSLOMonitor([]Objective{
		{Name: "latency", Target: 0.99, LatencyBound: 50 * time.Millisecond},
	}, SLOOptions{Clock: clock.Now, MinWindowRequests: -1})
	raw.Observe(time.Second, errors.New("boom"))
	if err := raw.Healthy(); err == nil {
		t.Fatal("guard-disabled monitor did not fire on one bad request")
	}
}

func TestSLOErrorObjectiveIgnoresLatency(t *testing.T) {
	clock := newFakeClock()
	m := NewSLOMonitor([]Objective{
		{Name: "errors", Target: 0.999},
	}, SLOOptions{Clock: clock.Now})
	m.Observe(time.Hour, nil) // slow but successful: good for an error-rate objective
	st := m.Status()
	if st.Objectives[0].Good != 1 || st.Objectives[0].Bad != 0 {
		t.Fatalf("slow success misclassified: %+v", st.Objectives[0])
	}
}

func TestSLORegisterGauges(t *testing.T) {
	clock := newFakeClock()
	m := latencySLO(clock)
	reg := NewRegistry()
	m.Register(reg)
	for i := 0; i < 100; i++ {
		m.Observe(time.Second, errors.New("boom"))
	}
	s := reg.Snapshot()
	burn, ok := s.Gauges[Name("slo_burn_rate", "slo", "latency", "window", "5m0s")]
	if !ok {
		t.Fatalf("slo_burn_rate gauge missing; have %v", s.Gauges)
	}
	if burn < 99 {
		t.Fatalf("burn rate gauge %g, want ~100", burn)
	}
	if _, ok := s.Gauges[Name("slo_budget_remaining", "slo", "latency")]; !ok {
		t.Fatal("slo_budget_remaining gauge missing")
	}
	// With no diluting traffic, the all-bad bucket dominates the short
	// AND long windows, so the burning flag trips.
	if flag := s.Gauges[Name("slo_burning", "slo", "latency")]; flag != 1 {
		t.Fatalf("slo_burning = %g, want 1", flag)
	}
}
