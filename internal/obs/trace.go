package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one phase of a traced query: its name, its offset from the
// trace start, and its duration. Spans are contiguous — each Mark closes
// the span running since the previous mark — which matches the serve
// pipeline's linear phase structure (snapshot pin → cache lookup →
// execute → record).
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Annotation is one key-value tag on a trace (generation, algorithm,
// cache-hit flag, error text).
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Trace is the record of one query through an instrumented pipeline. A
// trace is owned by the goroutine executing the query; Finish copies a
// retained trace into the tracer's ring by value, so the caller keeps
// reading its own object (JoinID, wide-event fields) until it hands it
// back with Release. All methods are nil-receiver-safe so
// instrumentation sites can run unconditionally — with tracing
// disabled, Start returns nil and every Mark/Annotate on it is a no-op
// costing one predictable branch.
type Trace struct {
	ID    uint64        `json:"id"`
	Label string        `json:"label"`
	Begin time.Time     `json:"begin"`
	Total time.Duration `json:"total_ns"`
	// Gen and QueueWait are typed fast-path tags (snapshot generation,
	// time queued before a batch worker picked the request up). They are
	// fields rather than Annotations so the hot path stores an integer
	// instead of formatting a string per query.
	Gen       uint64        `json:"gen,omitempty"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	// Outcome is how the traced request ended (ok, shed, deadline,
	// canceled, panic, error); empty is treated as ok. Slow is stamped
	// at Finish when Total reaches the tracer's tail-sampling threshold.
	// Together they drive tail sampling and the /debug/traces filters.
	Outcome string       `json:"outcome,omitempty"`
	Slow    bool         `json:"slow,omitempty"`
	Spans   []Span       `json:"spans"`
	Annots  []Annotation `json:"annotations,omitempty"`

	spanBuf  [5]Span       // inline storage: the serve pipeline has ≤ 5 phases
	annotBuf [2]Annotation // typical traces carry ≤ 2 string tags
	last     time.Duration
	retained bool // set by Finish when the trace entered the ring
}

// SetGen records the snapshot generation serving the traced query.
func (t *Trace) SetGen(gen uint64) {
	if t == nil {
		return
	}
	t.Gen = gen
}

// SetQueueWait records how long the request queued before execution.
func (t *Trace) SetQueueWait(d time.Duration) {
	if t == nil {
		return
	}
	t.QueueWait = d
}

// SetOutcome records how the traced request ended; the tail sampler
// reads it at Finish.
func (t *Trace) SetOutcome(outcome string) {
	if t == nil {
		return
	}
	t.Outcome = outcome
}

// TraceID returns the trace's ID, or 0 on a nil trace.
func (t *Trace) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// JoinID is the join key histogram exemplars and wide events publish:
// the trace's ID when Finish retained it in the tracer's ring — the only
// case the ID resolves in /debug/traces — and 0 otherwise (nil trace,
// not yet finished, or dropped by tail sampling). Publishing JoinID
// instead of TraceID keeps the metric → trace → event join from dangling
// on fast-OK traces the sampler discards.
func (t *Trace) JoinID() uint64 {
	if t == nil || !t.retained {
		return 0
	}
	return t.ID
}

// Class buckets a trace for retention accounting and the /debug/traces
// outcome filter: "error" for any non-ok outcome, else "slow" when the
// Slow stamp is set, else "ok".
func (t *Trace) Class() string {
	switch {
	case t.Outcome != "" && t.Outcome != "ok":
		return "error"
	case t.Slow:
		return "slow"
	default:
		return "ok"
	}
}

// Mark closes the current span under the given name: it covers the time
// since the previous mark (or the trace start).
func (t *Trace) Mark(name string) {
	if t == nil {
		return
	}
	now := time.Since(t.Begin)
	t.Spans = append(t.Spans, Span{Name: name, Start: t.last, Dur: now - t.last})
	t.last = now
}

// Annotate tags the trace with a key-value pair.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.Annots = append(t.Annots, Annotation{Key: key, Value: value})
}

// Tracer keeps the most recent completed traces in a fixed-size ring
// buffer. Start and Finish are allocation-free in steady state: Start
// draws the Trace from a pool, Finish copies a retained trace by value
// into its ring slot, and Release returns the caller's trace to the
// pool once the query is done with it — the serving hot path generates
// no per-query trace garbage, which matters because the tracer's whole
// cost is otherwise GC pressure, not CPU. Publishing claims a slot with
// an atomic counter; the copy in and out of a slot is guarded by that
// slot's own mutex, so concurrent batch workers only ever contend when
// they land on the same slot. Recent copies the ring for inspection. A
// nil *Tracer is valid and disables tracing entirely.
type Tracer struct {
	capacity int
	seq      atomic.Uint64
	finished atomic.Uint64

	// next counts slot claims; claim i lands in ring[i % capacity]. A
	// reader can observe a claimed-but-not-yet-stored slot, in which
	// case Recent sees the slot's previous trace (or nothing) —
	// acceptable for a diagnostic ring, and sequential Finish/Recent
	// pairs are exact.
	next atomic.Uint64
	ring []traceSlot

	// Tail sampling (zero value: keep everything). The ring is small and
	// a busy engine finishes thousands of traces per second, so without
	// tail sampling the one trace an operator needs — the slow or failed
	// request behind a latency spike — is evicted by a flood of
	// uninteresting fast successes within milliseconds. The policy keeps
	// every error and slow trace and probabilistically drops fast-OK
	// traces before they enter the ring.
	policy  TailSamplingPolicy
	okSeen  atomic.Uint64 // fast-OK traces seen, drives 1-in-N retention
	kept    [3]atomic.Uint64
	dropped [3]atomic.Uint64
}

// TailSamplingPolicy decides, at Finish time, whether a completed trace
// enters the ring.
type TailSamplingPolicy struct {
	// SlowThreshold classifies a trace as slow when its total duration
	// reaches it; slow traces are always retained. 0 disables the slow
	// class.
	SlowThreshold time.Duration
	// KeepOneInN retains one in N fast-OK traces (deterministic counter
	// sampling); 0 or 1 retains all. Error and slow traces are always
	// retained regardless.
	KeepOneInN uint64
}

// enabled reports whether the policy can drop anything.
func (p TailSamplingPolicy) enabled() bool { return p.KeepOneInN > 1 }

// traceSlot is one ring entry: the retained trace held by value, so the
// ring owns its memory and evicting a trace never creates garbage.
type traceSlot struct {
	mu sync.Mutex
	ok bool // a trace has been stored here
	t  Trace
}

// tracePool recycles Trace objects across Start/Release cycles. Traces
// are pool-agnostic (no per-tracer state), so one process-wide pool
// serves every tracer.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// copyTrace copies src into dst by value, re-pointing the span and
// annotation slices at dst's inline buffers when src's still live in
// its own (the common, ≤ 5-span case). A slice that overflowed to the
// heap is shared instead: after Finish nothing appends to it — a
// recycled trace is reset to its inline buffer and growth allocates a
// fresh array — so the shared array is immutable.
func copyTrace(dst, src *Trace) {
	ns, na := len(src.Spans), len(src.Annots)
	*dst = *src
	if ns <= len(dst.spanBuf) {
		dst.Spans = dst.spanBuf[:ns]
	}
	if na <= len(dst.annotBuf) {
		dst.Annots = dst.annotBuf[:na]
	}
}

// classIndex maps a trace class to its retention-counter slot.
func classIndex(class string) int {
	switch class {
	case "error":
		return 2
	case "slow":
		return 1
	default:
		return 0
	}
}

var traceClasses = [3]string{"ok", "slow", "error"}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 256

// NewTracer builds a tracer retaining the last capacity traces, with no
// tail sampling: every finished trace enters the ring.
func NewTracer(capacity int) *Tracer {
	return NewTracerTailSampled(capacity, TailSamplingPolicy{})
}

// NewTracerTailSampled builds a tracer that applies policy at Finish.
func NewTracerTailSampled(capacity int, policy TailSamplingPolicy) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity, ring: make([]traceSlot, capacity), policy: policy}
}

// Policy returns the tracer's tail-sampling policy.
func (tz *Tracer) Policy() TailSamplingPolicy {
	if tz == nil {
		return TailSamplingPolicy{}
	}
	return tz.policy
}

// Start begins a new trace, drawn from the process-wide pool. On a nil
// tracer it returns nil, which every Trace method accepts.
func (tz *Tracer) Start(label string) *Trace {
	if tz == nil {
		return nil
	}
	t := tracePool.Get().(*Trace)
	*t = Trace{
		ID:    tz.seq.Add(1),
		Label: label,
		Begin: time.Now(),
	}
	t.Spans = t.spanBuf[:0]
	t.Annots = t.annotBuf[:0]
	return t
}

// Release returns a trace obtained from Start to the pool. Call it once
// the query is completely done with the trace — after Finish AND after
// the last JoinID/field read (the serve engine releases after the wide
// event is emitted). The trace must not be used afterwards. Release is
// optional: an unreleased trace is simply garbage, exactly the pre-pool
// behaviour. Nil tracer or nil trace are no-ops.
func (tz *Tracer) Release(t *Trace) {
	if tz == nil || t == nil {
		return
	}
	tracePool.Put(t)
}

// Finish stamps the trace's total duration and slow classification,
// consults the tail-sampling policy, and — when the trace is retained —
// marks it (see JoinID) and publishes it into the ring, evicting the
// oldest trace once the ring is full. Dropped traces still count in
// Finished and the retention counters, so the drop rate is observable.
// Nil tracer or nil trace are no-ops. The retention decision lands
// before the trace becomes visible, so callers publish the trace ID
// elsewhere (exemplars, wide events) only after Finish, via JoinID.
func (tz *Tracer) Finish(t *Trace) {
	if tz == nil || t == nil {
		return
	}
	t.Total = time.Since(t.Begin)
	if tz.policy.SlowThreshold > 0 && t.Total >= tz.policy.SlowThreshold {
		t.Slow = true
	}
	tz.finished.Add(1)
	ci := classIndex(t.Class())
	if ci == 0 && tz.policy.enabled() && (tz.okSeen.Add(1)-1)%tz.policy.KeepOneInN != 0 {
		tz.dropped[ci].Add(1)
		return
	}
	tz.kept[ci].Add(1)
	t.retained = true // before the copy: readers must never see it unset
	slot := tz.next.Add(1) - 1
	s := &tz.ring[slot%uint64(tz.capacity)]
	s.mu.Lock()
	copyTrace(&s.t, t)
	s.ok = true
	s.mu.Unlock()
}

// TraceRetention reports how many finished traces of one class the tail
// sampler kept and dropped.
type TraceRetention struct {
	Kept    uint64 `json:"kept"`
	Dropped uint64 `json:"dropped"`
}

// Retention returns the per-class (ok, slow, error) retention counters
// accumulated since the tracer was built.
func (tz *Tracer) Retention() map[string]TraceRetention {
	if tz == nil {
		return nil
	}
	out := make(map[string]TraceRetention, len(traceClasses))
	for i, class := range traceClasses {
		out[class] = TraceRetention{Kept: tz.kept[i].Load(), Dropped: tz.dropped[i].Load()}
	}
	return out
}

// Finished returns the number of traces completed so far (including
// those already evicted from the ring).
func (tz *Tracer) Finished() uint64 {
	if tz == nil {
		return 0
	}
	return tz.finished.Load()
}

// Recent returns the retained traces, newest first. The traces are
// fresh copies owned by the caller — the ring keeps recycling slots
// underneath without disturbing them.
func (tz *Tracer) Recent() []*Trace {
	if tz == nil {
		return nil
	}
	claimed := tz.next.Load()
	n := claimed
	if n > uint64(tz.capacity) {
		n = uint64(tz.capacity)
	}
	out := make([]*Trace, 0, n)
	// Walk the ring backwards from the most recently claimed slot,
	// skipping slots whose store hasn't landed yet.
	for i := uint64(0); i < n; i++ {
		s := &tz.ring[(claimed-1-i)%uint64(tz.capacity)]
		s.mu.Lock()
		if s.ok {
			c := new(Trace)
			copyTrace(c, &s.t)
			out = append(out, c)
		}
		s.mu.Unlock()
	}
	return out
}
