package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one phase of a traced query: its name, its offset from the
// trace start, and its duration. Spans are contiguous — each Mark closes
// the span running since the previous mark — which matches the serve
// pipeline's linear phase structure (snapshot pin → cache lookup →
// execute → record).
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Annotation is one key-value tag on a trace (generation, algorithm,
// cache-hit flag, error text).
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// ChildSpan is one node of a trace's span tree: a sub-operation (a
// fan-out leg, a hedge duplicate, a retry attempt, a degraded
// recompute, a node-side engine execution) with its own offset,
// duration and outcome. Unlike the contiguous Mark spans, child spans
// may overlap and nest — parent links form the tree, Link pairs a hedge
// duplicate with the leg it raced.
type ChildSpan struct {
	// ID is the span's 1-based position in the trace's Children slice;
	// Parent is the ID of the enclosing span, 0 for a child of the trace
	// root. Parent is always < ID (a span cannot enclose one created
	// before it), which keeps the tree acyclic by construction.
	ID     int32  `json:"id"`
	Parent int32  `json:"parent"`
	Name   string `json:"name"`
	// Kind classifies the attempt: primary | hedge | retry | repin |
	// recompute | engine | scan.
	Kind string `json:"kind,omitempty"`
	// Partition is the cluster partition the span ran against, -1 when
	// the span is not partition-bound.
	Partition int32         `json:"partition"`
	Start     time.Duration `json:"start_ns"`
	// Dur is -1 until the span finishes — which is how the chaos suite
	// detects a leg that was started and never closed.
	Dur     time.Duration `json:"dur_ns"`
	Gen     uint64        `json:"gen,omitempty"`
	Entries int32         `json:"entries,omitempty"`
	// Outcome is how the attempt ended: ok, won, lost, canceled, or an
	// error class. "won"/"lost" mark the two sides of a hedge race.
	Outcome string `json:"outcome,omitempty"`
	// Link is the ID of the span's hedge-race peer (0 = none). Links are
	// reciprocal: both sides of a pair name each other.
	Link int32 `json:"link,omitempty"`
	// Annots are per-span tags. They allocate (no inline buffer), so the
	// instrumentation uses them sparingly — summary spans, not hot legs.
	Annots []Annotation `json:"annotations,omitempty"`
}

// Trace is the record of one query through an instrumented pipeline. A
// trace is owned by the goroutine executing the query; Finish copies a
// retained trace into the tracer's ring by value, so the caller keeps
// reading its own object (JoinID, wide-event fields) until it hands it
// back with Release. All methods are nil-receiver-safe so
// instrumentation sites can run unconditionally — with tracing
// disabled, Start returns nil and every Mark/Annotate on it is a no-op
// costing one predictable branch.
type Trace struct {
	ID    uint64        `json:"id"`
	Label string        `json:"label"`
	Begin time.Time     `json:"begin"`
	Total time.Duration `json:"total_ns"`
	// Gen and QueueWait are typed fast-path tags (snapshot generation,
	// time queued before a batch worker picked the request up). They are
	// fields rather than Annotations so the hot path stores an integer
	// instead of formatting a string per query.
	Gen       uint64        `json:"gen,omitempty"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	// Outcome is how the traced request ended (ok, shed, deadline,
	// canceled, panic, error); empty is treated as ok. Slow is stamped
	// at Finish when Total reaches the tracer's tail-sampling threshold.
	// Together they drive tail sampling and the /debug/traces filters.
	Outcome string       `json:"outcome,omitempty"`
	Slow    bool         `json:"slow,omitempty"`
	Spans   []Span       `json:"spans"`
	Annots  []Annotation `json:"annotations,omitempty"`
	// Children is the span tree (see ChildSpan); SpansDropped counts
	// spans refused by the MaxChildSpans cap, so a truncated tree is
	// visibly truncated rather than silently complete-looking.
	Children     []ChildSpan `json:"children,omitempty"`
	SpansDropped int32       `json:"spans_dropped,omitempty"`

	spanBuf  [5]Span       // inline storage: the serve pipeline has ≤ 5 phases
	annotBuf [2]Annotation // typical traces carry ≤ 2 string tags
	childBuf [8]ChildSpan  // a single-leg request tree fits inline
	last     time.Duration
	retained bool // set by Finish when the trace entered the ring

	// cmu guards Children and SpansDropped: unlike Mark/Annotate (owning
	// goroutine only), child spans are also written by node-side engine
	// goroutines joining the trace through a context, which may race the
	// owner and may even straggle past Finish. It is a pointer so the
	// Trace value stays copyable (copyTrace, the ring slots); the mutex
	// itself survives pool recycles, and a straggler's SpanRef detects
	// the recycle by trace ID and becomes a no-op instead of corrupting
	// the next request's trace.
	cmu *sync.Mutex
}

// SetGen records the snapshot generation serving the traced query.
func (t *Trace) SetGen(gen uint64) {
	if t == nil {
		return
	}
	t.Gen = gen
}

// SetQueueWait records how long the request queued before execution.
func (t *Trace) SetQueueWait(d time.Duration) {
	if t == nil {
		return
	}
	t.QueueWait = d
}

// SetOutcome records how the traced request ended; the tail sampler
// reads it at Finish.
func (t *Trace) SetOutcome(outcome string) {
	if t == nil {
		return
	}
	t.Outcome = outcome
}

// TraceID returns the trace's ID, or 0 on a nil trace.
func (t *Trace) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// JoinID is the join key histogram exemplars and wide events publish:
// the trace's ID when Finish retained it in the tracer's ring — the only
// case the ID resolves in /debug/traces — and 0 otherwise (nil trace,
// not yet finished, or dropped by tail sampling). Publishing JoinID
// instead of TraceID keeps the metric → trace → event join from dangling
// on fast-OK traces the sampler discards.
func (t *Trace) JoinID() uint64 {
	if t == nil || !t.retained {
		return 0
	}
	return t.ID
}

// Class buckets a trace for retention accounting and the /debug/traces
// outcome filter: "error" for any non-ok outcome, else "slow" when the
// Slow stamp is set, else "ok".
func (t *Trace) Class() string {
	switch {
	case t.Outcome != "" && t.Outcome != "ok":
		return "error"
	case t.Slow:
		return "slow"
	default:
		return "ok"
	}
}

// Mark closes the current span under the given name: it covers the time
// since the previous mark (or the trace start).
func (t *Trace) Mark(name string) {
	if t == nil {
		return
	}
	now := time.Since(t.Begin)
	t.Spans = append(t.Spans, Span{Name: name, Start: t.last, Dur: now - t.last})
	t.last = now
}

// Annotate tags the trace with a key-value pair.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.Annots = append(t.Annots, Annotation{Key: key, Value: value})
}

// MaxChildSpans caps a trace's span tree. A distributed quantify can
// issue thousands of scan RPCs; recording each as a span would turn the
// pooled trace into a megabyte of garbage, so the tree holds the
// interesting attempts (legs, hedges, retries, recomputes, summaries)
// and everything past the cap increments SpansDropped instead.
const MaxChildSpans = 96

// SpanRef is a value handle on one child span of one trace incarnation.
// The zero SpanRef is invalid and every method on it is a no-op, which
// is how span instrumentation stays free when tracing is off (a nil
// trace starts only invalid refs). A ref remembers the trace ID it was
// created under: after the trace is released and recycled for another
// request, a straggling ref's writes miss (ID mismatch) instead of
// scribbling on the new request's tree. The ref carries the tree mutex
// itself — the one pointer on a pooled Trace that survives recycling —
// so a straggler synchronizes without ever reading the recycled
// struct's fields unlocked.
type SpanRef struct {
	t   *Trace
	mu  *sync.Mutex
	tid uint64
	id  int32
}

// Valid reports whether the ref names a live span slot.
func (s SpanRef) Valid() bool { return s.t != nil && s.id > 0 }

// ID returns the span's 1-based id within its trace, 0 for an invalid
// ref — the value propagated across the cluster transport as
// Call.ParentSpan.
func (s SpanRef) ID() int32 {
	if !s.Valid() {
		return 0
	}
	return s.id
}

// StartSpan opens a child span of the trace root, starting now.
func (t *Trace) StartSpan(name string) SpanRef {
	return t.StartSpanAt(name, time.Now())
}

// StartSpanAt opens a child span of the trace root with an explicit
// start time — the reconstruction path for attempts whose span is
// materialized after the fact (a hedged leg's primary, measured before
// anyone knew the race would make it worth a span).
func (t *Trace) StartSpanAt(name string, at time.Time) SpanRef {
	return t.startSpan(0, name, at)
}

// StartChild opens a span nested under s, starting now.
func (s SpanRef) StartChild(name string) SpanRef {
	return s.StartChildAt(name, time.Now())
}

// StartChildAt opens a span nested under s with an explicit start time.
// It goes through the ref's captured mutex, never the trace's own field:
// a straggling ref may race the trace's recycling, and the mutex object
// is the only part of a pooled Trace that is never rewritten.
func (s SpanRef) StartChildAt(name string, at time.Time) SpanRef {
	if !s.Valid() {
		return SpanRef{}
	}
	return s.t.startSpanMu(s.mu, s.tid, s.id, name, at)
}

func (t *Trace) startSpan(parent int32, name string, at time.Time) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	if t.cmu == nil {
		// Traces built by Tracer.Start always carry the mutex; this arms
		// hand-rolled test traces. Only the trace's owner goroutine calls
		// this path (root-span creation) — concurrency begins once a ref
		// has been shared, and shared refs re-enter via startSpanMu.
		t.cmu = new(sync.Mutex)
	}
	return t.startSpanMu(t.cmu, t.ID, parent, name, at)
}

// startSpanMu appends a span under mu (the trace's tree mutex, captured
// by the caller before any recycling race was possible). tid guards the
// incarnation: a recycled trace hands back an invalid ref.
func (t *Trace) startSpanMu(mu *sync.Mutex, tid uint64, parent int32, name string, at time.Time) SpanRef {
	mu.Lock()
	defer mu.Unlock()
	if t.ID != tid {
		return SpanRef{} // the trace was recycled under the caller's ref
	}
	if parent > 0 && int(parent) > len(t.Children) {
		return SpanRef{} // stale parent
	}
	if len(t.Children) >= MaxChildSpans {
		t.SpansDropped++
		return SpanRef{}
	}
	id := int32(len(t.Children) + 1)
	t.Children = append(t.Children, ChildSpan{
		ID:        id,
		Parent:    parent,
		Name:      name,
		Partition: -1,
		Start:     at.Sub(t.Begin),
		Dur:       -1,
	})
	return SpanRef{t: t, mu: mu, tid: tid, id: id}
}

// mutate applies fn to the span under the tree lock, verifying the
// trace has not been recycled out from under the ref.
func (s SpanRef) mutate(fn func(cs *ChildSpan)) {
	if !s.Valid() {
		return
	}
	s.mu.Lock()
	if s.t.ID == s.tid && int(s.id) <= len(s.t.Children) {
		fn(&s.t.Children[s.id-1])
	}
	s.mu.Unlock()
}

// SetKind classifies the attempt (primary, hedge, retry, repin,
// recompute, engine, scan).
func (s SpanRef) SetKind(kind string) { s.mutate(func(cs *ChildSpan) { cs.Kind = kind }) }

// SetPartition records the cluster partition the span ran against.
func (s SpanRef) SetPartition(p int) { s.mutate(func(cs *ChildSpan) { cs.Partition = int32(p) }) }

// SetGen records the snapshot generation that served the span.
func (s SpanRef) SetGen(gen uint64) { s.mutate(func(cs *ChildSpan) { cs.Gen = gen }) }

// SetEntries records how many entries (rows, cells) the span moved.
func (s SpanRef) SetEntries(n int) { s.mutate(func(cs *ChildSpan) { cs.Entries = int32(n) }) }

// SetOutcome records how the attempt ended.
func (s SpanRef) SetOutcome(outcome string) { s.mutate(func(cs *ChildSpan) { cs.Outcome = outcome }) }

// Annotate tags the span. Unlike the setters this allocates; reserve it
// for low-volume spans (summaries, errors).
func (s SpanRef) Annotate(key, value string) {
	s.mutate(func(cs *ChildSpan) { cs.Annots = append(cs.Annots, Annotation{Key: key, Value: value}) })
}

// Link records s and o as the two sides of one hedge race. The link is
// reciprocal; linking across two different traces is ignored.
func (s SpanRef) Link(o SpanRef) {
	if !s.Valid() || !o.Valid() || s.t != o.t {
		return
	}
	s.mutate(func(cs *ChildSpan) { cs.Link = o.id })
	o.mutate(func(cs *ChildSpan) { cs.Link = s.id })
}

// Finish closes the span now. Finishing is once: later Finish calls on
// an already-closed span are no-ops, so reconstruction paths can close
// defensively.
func (s SpanRef) Finish() {
	s.mutate(func(cs *ChildSpan) {
		if cs.Dur < 0 {
			cs.Dur = time.Since(s.t.Begin) - cs.Start
		}
	})
}

// FinishDur closes the span with an explicitly measured duration (the
// reconstruction path for retroactive spans). Same finish-once rule.
func (s SpanRef) FinishDur(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mutate(func(cs *ChildSpan) {
		if cs.Dur < 0 {
			cs.Dur = d
		}
	})
}

// CheckSpans validates the structural invariants of the trace's span
// tree — the chaos suite's well-formedness oracle. It reports the first
// violation: a parent or link naming no span (orphan leg), a parent not
// created before its child, an unfinished span, or a non-reciprocal
// hedge link.
func (t *Trace) CheckSpans() error {
	if t == nil {
		return nil
	}
	for i := range t.Children {
		cs := &t.Children[i]
		if cs.ID != int32(i+1) {
			return fmt.Errorf("obs: span %d carries id %d", i+1, cs.ID)
		}
		if cs.Parent < 0 || cs.Parent >= cs.ID {
			return fmt.Errorf("obs: span %d (%s) has invalid parent %d", cs.ID, cs.Name, cs.Parent)
		}
		if cs.Dur < 0 {
			return fmt.Errorf("obs: span %d (%s, kind %s) unfinished", cs.ID, cs.Name, cs.Kind)
		}
		if cs.Link != 0 {
			if cs.Link < 1 || int(cs.Link) > len(t.Children) {
				return fmt.Errorf("obs: span %d links to missing span %d", cs.ID, cs.Link)
			}
			if peer := &t.Children[cs.Link-1]; peer.Link != cs.ID {
				return fmt.Errorf("obs: span %d → %d hedge link not reciprocal", cs.ID, cs.Link)
			}
		}
	}
	return nil
}

// Tracer keeps the most recent completed traces in a fixed-size ring
// buffer. Start and Finish are allocation-free in steady state: Start
// draws the Trace from a pool, Finish copies a retained trace by value
// into its ring slot, and Release returns the caller's trace to the
// pool once the query is done with it — the serving hot path generates
// no per-query trace garbage, which matters because the tracer's whole
// cost is otherwise GC pressure, not CPU. Publishing claims a slot with
// an atomic counter; the copy in and out of a slot is guarded by that
// slot's own mutex, so concurrent batch workers only ever contend when
// they land on the same slot. Recent copies the ring for inspection. A
// nil *Tracer is valid and disables tracing entirely.
type Tracer struct {
	capacity int
	seq      atomic.Uint64
	finished atomic.Uint64

	// next counts slot claims; claim i lands in ring[i % capacity]. A
	// reader can observe a claimed-but-not-yet-stored slot, in which
	// case Recent sees the slot's previous trace (or nothing) —
	// acceptable for a diagnostic ring, and sequential Finish/Recent
	// pairs are exact.
	next atomic.Uint64
	ring []traceSlot

	// Tail sampling (zero value: keep everything). The ring is small and
	// a busy engine finishes thousands of traces per second, so without
	// tail sampling the one trace an operator needs — the slow or failed
	// request behind a latency spike — is evicted by a flood of
	// uninteresting fast successes within milliseconds. The policy keeps
	// every error and slow trace and probabilistically drops fast-OK
	// traces before they enter the ring.
	policy  TailSamplingPolicy
	okSeen  atomic.Uint64 // fast-OK traces seen, drives 1-in-N retention
	kept    [3]atomic.Uint64
	dropped [3]atomic.Uint64
}

// TailSamplingPolicy decides, at Finish time, whether a completed trace
// enters the ring.
type TailSamplingPolicy struct {
	// SlowThreshold classifies a trace as slow when its total duration
	// reaches it; slow traces are always retained. 0 disables the slow
	// class.
	SlowThreshold time.Duration
	// KeepOneInN retains one in N fast-OK traces (deterministic counter
	// sampling); 0 or 1 retains all. Error and slow traces are always
	// retained regardless.
	KeepOneInN uint64
}

// enabled reports whether the policy can drop anything.
func (p TailSamplingPolicy) enabled() bool { return p.KeepOneInN > 1 }

// traceSlot is one ring entry: the retained trace held by value, so the
// ring owns its memory and evicting a trace never creates garbage.
type traceSlot struct {
	mu sync.Mutex
	ok bool // a trace has been stored here
	t  Trace
}

// tracePool recycles Trace objects across Start/Release cycles. Traces
// are pool-agnostic (no per-tracer state), so one process-wide pool
// serves every tracer.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// copyTrace copies src into dst by value, re-pointing the span,
// annotation and child slices at dst's inline buffers when src's still
// live in its own (the common, ≤ 5-span / ≤ 8-child case). A slice that
// overflowed to the heap is shared instead: after Finish nothing
// appends to it — a recycled trace is reset to its inline buffer and
// growth allocates a fresh array — so the shared array is immutable.
// Children is the exception to overflow sharing: a straggling SpanRef
// (a hedge duplicate's engine goroutine, say) may mutate a child
// element after Finish, so the destination always takes its own copy —
// inline when it fits, else into a heap array the destination owns
// (ring slots recycle theirs across evictions, so steady-state
// publication still allocates nothing).
func copyTrace(dst, src *Trace) {
	ns, na, nc := len(src.Spans), len(src.Annots), len(src.Children)
	spare := dst.Children
	*dst = *src
	if ns <= len(dst.spanBuf) {
		dst.Spans = dst.spanBuf[:ns]
	}
	if na <= len(dst.annotBuf) {
		dst.Annots = dst.annotBuf[:na]
	}
	switch {
	case nc <= len(dst.childBuf):
		// The struct copy above already brought the elements along when
		// src was inline; when src overflowed, pull them in.
		dst.Children = dst.childBuf[:nc]
		copy(dst.Children, src.Children)
	case cap(spare) >= nc:
		dst.Children = spare[:nc]
		copy(dst.Children, src.Children)
	default:
		dst.Children = make([]ChildSpan, nc)
		copy(dst.Children, src.Children)
	}
}

// classIndex maps a trace class to its retention-counter slot.
func classIndex(class string) int {
	switch class {
	case "error":
		return 2
	case "slow":
		return 1
	default:
		return 0
	}
}

var traceClasses = [3]string{"ok", "slow", "error"}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 256

// NewTracer builds a tracer retaining the last capacity traces, with no
// tail sampling: every finished trace enters the ring.
func NewTracer(capacity int) *Tracer {
	return NewTracerTailSampled(capacity, TailSamplingPolicy{})
}

// NewTracerTailSampled builds a tracer that applies policy at Finish.
func NewTracerTailSampled(capacity int, policy TailSamplingPolicy) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity, ring: make([]traceSlot, capacity), policy: policy}
}

// Policy returns the tracer's tail-sampling policy.
func (tz *Tracer) Policy() TailSamplingPolicy {
	if tz == nil {
		return TailSamplingPolicy{}
	}
	return tz.policy
}

// Start begins a new trace, drawn from the process-wide pool. On a nil
// tracer it returns nil, which every Trace method accepts.
func (tz *Tracer) Start(label string) *Trace {
	if tz == nil {
		return nil
	}
	t := tracePool.Get().(*Trace)
	// The tree mutex survives recycles (one allocation per pooled object,
	// ever), and the reset runs under it so a straggling SpanRef from the
	// trace's previous life observes either the old ID or the new one,
	// never a torn struct.
	mu := t.cmu
	if mu == nil {
		mu = new(sync.Mutex)
	}
	mu.Lock()
	*t = Trace{
		ID:    tz.seq.Add(1),
		Label: label,
		Begin: time.Now(),
	}
	t.cmu = mu
	t.Spans = t.spanBuf[:0]
	t.Annots = t.annotBuf[:0]
	t.Children = t.childBuf[:0]
	mu.Unlock()
	return t
}

// Release returns a trace obtained from Start to the pool. Call it once
// the query is completely done with the trace — after Finish AND after
// the last JoinID/field read (the serve engine releases after the wide
// event is emitted). The trace must not be used afterwards. Release is
// optional: an unreleased trace is simply garbage, exactly the pre-pool
// behaviour. Nil tracer or nil trace are no-ops.
func (tz *Tracer) Release(t *Trace) {
	if tz == nil || t == nil {
		return
	}
	tracePool.Put(t)
}

// Finish stamps the trace's total duration and slow classification,
// consults the tail-sampling policy, and — when the trace is retained —
// marks it (see JoinID) and publishes it into the ring, evicting the
// oldest trace once the ring is full. Dropped traces still count in
// Finished and the retention counters, so the drop rate is observable.
// Nil tracer or nil trace are no-ops. The retention decision lands
// before the trace becomes visible, so callers publish the trace ID
// elsewhere (exemplars, wide events) only after Finish, via JoinID.
func (tz *Tracer) Finish(t *Trace) {
	if tz == nil || t == nil {
		return
	}
	t.Total = time.Since(t.Begin)
	if tz.policy.SlowThreshold > 0 && t.Total >= tz.policy.SlowThreshold {
		t.Slow = true
	}
	tz.finished.Add(1)
	ci := classIndex(t.Class())
	if ci == 0 && tz.policy.enabled() && (tz.okSeen.Add(1)-1)%tz.policy.KeepOneInN != 0 {
		tz.dropped[ci].Add(1)
		return
	}
	tz.kept[ci].Add(1)
	t.retained = true // before the copy: readers must never see it unset
	slot := tz.next.Add(1) - 1
	s := &tz.ring[slot%uint64(tz.capacity)]
	s.mu.Lock()
	// The copy runs under the tree lock so concurrent child-span writers
	// (a node-side engine goroutine finishing late) never race it; any
	// span still open when the request publishes is closed in the COPY as
	// abandoned — the request is over, so that is the span's true extent —
	// keeping every retained tree well-formed while the straggler's own
	// late Finish lands only on the private, about-to-be-released object.
	if t.cmu != nil {
		t.cmu.Lock()
	}
	copyTrace(&s.t, t)
	for i := range s.t.Children {
		if cs := &s.t.Children[i]; cs.Dur < 0 {
			cs.Dur = t.Total - cs.Start
			if cs.Dur < 0 {
				cs.Dur = 0
			}
			if cs.Outcome == "" {
				cs.Outcome = "abandoned"
			}
		}
	}
	if t.cmu != nil {
		t.cmu.Unlock()
	}
	s.ok = true
	s.mu.Unlock()
}

// TraceRetention reports how many finished traces of one class the tail
// sampler kept and dropped.
type TraceRetention struct {
	Kept    uint64 `json:"kept"`
	Dropped uint64 `json:"dropped"`
}

// Retention returns the per-class (ok, slow, error) retention counters
// accumulated since the tracer was built.
func (tz *Tracer) Retention() map[string]TraceRetention {
	if tz == nil {
		return nil
	}
	out := make(map[string]TraceRetention, len(traceClasses))
	for i, class := range traceClasses {
		out[class] = TraceRetention{Kept: tz.kept[i].Load(), Dropped: tz.dropped[i].Load()}
	}
	return out
}

// Finished returns the number of traces completed so far (including
// those already evicted from the ring).
func (tz *Tracer) Finished() uint64 {
	if tz == nil {
		return 0
	}
	return tz.finished.Load()
}

// Recent returns the retained traces, newest first. The traces are
// fresh copies owned by the caller — the ring keeps recycling slots
// underneath without disturbing them.
func (tz *Tracer) Recent() []*Trace {
	if tz == nil {
		return nil
	}
	claimed := tz.next.Load()
	n := claimed
	if n > uint64(tz.capacity) {
		n = uint64(tz.capacity)
	}
	out := make([]*Trace, 0, n)
	// Walk the ring backwards from the most recently claimed slot,
	// skipping slots whose store hasn't landed yet.
	for i := uint64(0); i < n; i++ {
		s := &tz.ring[(claimed-1-i)%uint64(tz.capacity)]
		s.mu.Lock()
		if s.ok {
			c := new(Trace)
			copyTrace(c, &s.t)
			out = append(out, c)
		}
		s.mu.Unlock()
	}
	return out
}

// Find returns a fresh copy of the retained trace with the given ID, or
// nil if the ring no longer (or never) holds it — the resolver behind
// /debug/traces?trace_id= and the waterfall endpoint, joining an
// exemplar's or wide event's trace_id back to its trace. It scans the
// ring newest-first, so of two traces that ever shared an ID (they
// cannot: IDs are sequence numbers) the newer would win.
func (tz *Tracer) Find(id uint64) *Trace {
	if tz == nil || id == 0 {
		return nil
	}
	claimed := tz.next.Load()
	n := claimed
	if n > uint64(tz.capacity) {
		n = uint64(tz.capacity)
	}
	for i := uint64(0); i < n; i++ {
		s := &tz.ring[(claimed-1-i)%uint64(tz.capacity)]
		s.mu.Lock()
		if s.ok && s.t.ID == id {
			c := new(Trace)
			copyTrace(c, &s.t)
			s.mu.Unlock()
			return c
		}
		s.mu.Unlock()
	}
	return nil
}
