package obs

import (
	"sync/atomic"
	"time"
)

// Span is one phase of a traced query: its name, its offset from the
// trace start, and its duration. Spans are contiguous — each Mark closes
// the span running since the previous mark — which matches the serve
// pipeline's linear phase structure (snapshot pin → cache lookup →
// execute → record).
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Annotation is one key-value tag on a trace (generation, algorithm,
// cache-hit flag, error text).
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Trace is the record of one query through an instrumented pipeline. A
// trace is owned by the goroutine executing the query until Finish hands
// it to the tracer's ring; after that it is read-only. All methods are
// nil-receiver-safe so instrumentation sites can run unconditionally —
// with tracing disabled, Start returns nil and every Mark/Annotate on it
// is a no-op costing one predictable branch.
type Trace struct {
	ID    uint64        `json:"id"`
	Label string        `json:"label"`
	Begin time.Time     `json:"begin"`
	Total time.Duration `json:"total_ns"`
	// Gen and QueueWait are typed fast-path tags (snapshot generation,
	// time queued before a batch worker picked the request up). They are
	// fields rather than Annotations so the hot path stores an integer
	// instead of formatting a string per query.
	Gen       uint64        `json:"gen,omitempty"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	Spans     []Span        `json:"spans"`
	Annots    []Annotation  `json:"annotations,omitempty"`

	spanBuf  [5]Span       // inline storage: the serve pipeline has ≤ 5 phases
	annotBuf [2]Annotation // typical traces carry ≤ 2 string tags
	last     time.Duration
}

// SetGen records the snapshot generation serving the traced query.
func (t *Trace) SetGen(gen uint64) {
	if t == nil {
		return
	}
	t.Gen = gen
}

// SetQueueWait records how long the request queued before execution.
func (t *Trace) SetQueueWait(d time.Duration) {
	if t == nil {
		return
	}
	t.QueueWait = d
}

// Mark closes the current span under the given name: it covers the time
// since the previous mark (or the trace start).
func (t *Trace) Mark(name string) {
	if t == nil {
		return
	}
	now := time.Since(t.Begin)
	t.Spans = append(t.Spans, Span{Name: name, Start: t.last, Dur: now - t.last})
	t.last = now
}

// Annotate tags the trace with a key-value pair.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.Annots = append(t.Annots, Annotation{Key: key, Value: value})
}

// Tracer keeps the most recent completed traces in a fixed-size ring
// buffer. Start/Finish are cheap and lock-free — one small allocation
// per trace, and publishing claims a ring slot with an atomic counter
// and stores the trace with an atomic pointer, so concurrent batch
// workers never contend on a mutex. Recent copies the ring for
// inspection. A nil *Tracer is valid and disables tracing entirely.
type Tracer struct {
	capacity int
	seq      atomic.Uint64
	finished atomic.Uint64

	// next counts slot claims; claim i lands in ring[i % capacity]. A
	// reader can observe a claimed-but-not-yet-stored slot, in which
	// case Recent sees the slot's previous trace (or nil) — acceptable
	// for a diagnostic ring, and sequential Finish/Recent pairs are
	// exact.
	next atomic.Uint64
	ring []atomic.Pointer[Trace]
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 256

// NewTracer builds a tracer retaining the last capacity traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity, ring: make([]atomic.Pointer[Trace], capacity)}
}

// Start begins a new trace. On a nil tracer it returns nil, which every
// Trace method accepts.
func (tz *Tracer) Start(label string) *Trace {
	if tz == nil {
		return nil
	}
	t := &Trace{
		ID:    tz.seq.Add(1),
		Label: label,
		Begin: time.Now(),
	}
	t.Spans = t.spanBuf[:0]
	t.Annots = t.annotBuf[:0]
	return t
}

// Finish stamps the trace's total duration and publishes it into the
// ring, evicting the oldest trace once the ring is full. Nil tracer or
// nil trace are no-ops.
func (tz *Tracer) Finish(t *Trace) {
	if tz == nil || t == nil {
		return
	}
	t.Total = time.Since(t.Begin)
	slot := tz.next.Add(1) - 1
	tz.ring[slot%uint64(tz.capacity)].Store(t)
	tz.finished.Add(1)
}

// Finished returns the number of traces completed so far (including
// those already evicted from the ring).
func (tz *Tracer) Finished() uint64 {
	if tz == nil {
		return 0
	}
	return tz.finished.Load()
}

// Recent returns the retained traces, newest first. The returned slice
// is a copy; the traces themselves are shared and read-only.
func (tz *Tracer) Recent() []*Trace {
	if tz == nil {
		return nil
	}
	claimed := tz.next.Load()
	n := claimed
	if n > uint64(tz.capacity) {
		n = uint64(tz.capacity)
	}
	out := make([]*Trace, 0, n)
	// Walk the ring backwards from the most recently claimed slot,
	// skipping slots whose store hasn't landed yet.
	for i := uint64(0); i < n; i++ {
		t := tz.ring[(claimed-1-i)%uint64(tz.capacity)].Load()
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}
