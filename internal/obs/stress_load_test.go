package obs_test

// The cross-layer companion to the in-package TestStress* workloads
// (stress_test.go): here a real serve engine takes open-loop load from
// internal/loadgen while the continuous profiler captures rounds, and
// concurrent scrapers hammer every admin endpoint the whole time. The
// contract under -race is the one dashboards rely on: no data races, no
// 500s, and every response parses as what its Content-Type claims.
// scripts/check.sh runs this under -race as part of the profiling gate.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fairjob/internal/core"
	"fairjob/internal/loadgen"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
)

func stressEngine(t *testing.T, reg *obs.Registry, tracer *obs.Tracer, events *obs.RingSink, slo *obs.SLOMonitor) *serve.Engine {
	t.Helper()
	rng := stats.NewRNG(17)
	tbl := core.NewTable()
	for g := 0; g < 8; g++ {
		grp := core.NewGroup(core.Predicate{Attr: "cohort", Value: fmt.Sprintf("g%02d", g)})
		for q := 0; q < 10; q++ {
			for l := 0; l < 4; l++ {
				tbl.Set(grp, core.Query(fmt.Sprintf("q%02d", q)), core.Location(fmt.Sprintf("l%02d", l)), rng.Float64())
			}
		}
	}
	log := obs.NewLogger(obs.LoggerOptions{Component: "stress", Sink: events})
	return serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{
		Workers: 2,
		Obs:     reg,
		Tracer:  tracer,
		Log:     log,
		SLO:     slo,
	})
}

func TestStressAdminEndpointsUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	tracer := obs.NewTracer(256)
	events := obs.NewRingSink(256)
	slo := obs.NewSLOMonitor([]obs.Objective{
		{Name: "latency", Target: 0.99, LatencyBound: time.Second},
		{Name: "errors", Target: 0.999},
	}, obs.SLOOptions{})
	eng := stressEngine(t, reg, tracer, events, slo)

	prof := obs.NewProfiler(obs.ProfilerOptions{
		Registry:    reg,
		Interval:    60 * time.Millisecond,
		CPUDuration: 40 * time.Millisecond,
		Ring:        2,
	})
	prof.Start()
	defer prof.Stop()

	srv := httptest.NewServer(obs.NewHandler(obs.AdminOptions{
		Registry: reg,
		Tracer:   tracer,
		Health:   &obs.Health{Ready: eng.Ready},
		SLO:      slo,
		Events:   events,
		Profiler: prof,
	}))
	defer srv.Close()

	// Open-loop load on the engine for the whole scrape window.
	wl, err := loadgen.BuildWorkload(loadgen.NewEngineTarget(eng), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := loadgen.NewRunner(loadgen.NewEngineTarget(eng), wl, loadgen.Options{
		Rate:     250,
		Warmup:   50 * time.Millisecond,
		Duration: 700 * time.Millisecond,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	loadDone := make(chan *loadgen.Report, 1)
	go func() { loadDone <- runner.Run(t.Context()) }()

	endpoints := []string{
		"/metrics",
		"/healthz",
		"/readyz",
		"/debug/traces",
		"/debug/slo",
		"/debug/events",
		"/debug/profiles",
		"/debug/profiles/heapdelta",
	}
	scrape := func(client *http.Client, path string) error {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("%s: read: %w", path, err)
		}
		// /readyz may legitimately answer 503 while the gate is full;
		// nothing may ever 500.
		if resp.StatusCode >= 500 {
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") && !json.Valid(body) {
			return fmt.Errorf("%s: invalid JSON: %.120s", path, body)
		}
		if path == "/metrics" && !strings.Contains(string(body), "go_goroutines") {
			return fmt.Errorf("/metrics lacks the runtime bridge output")
		}
		return nil
	}

	const scrapers = 4
	var wg sync.WaitGroup
	errs := make(chan error, scrapers)
	stop := make(chan struct{})
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			client := srv.Client()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := scrape(client, endpoints[(n+j)%len(endpoints)]); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}

	rep := <-loadDone
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if rep.Completed == 0 {
		t.Fatal("load run completed nothing; the scrapes raced an idle engine")
	}

	// The profile ring filled while being scraped; fetching a listed
	// profile by ID must yield the document or a clean 404 (it fell off
	// the ring between list and fetch), never a 500.
	resp, err := srv.Client().Get(srv.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Rounds   uint64                `json:"rounds"`
		Profiles []obs.CapturedProfile `json:"profiles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if listing.Rounds == 0 || len(listing.Profiles) == 0 {
		t.Fatalf("continuous profiler captured nothing under load: rounds=%d profiles=%d",
			listing.Rounds, len(listing.Profiles))
	}
	got, err := srv.Client().Get(fmt.Sprintf("%s/debug/profiles/%d", srv.URL, listing.Profiles[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	if got.StatusCode != http.StatusOK && got.StatusCode != http.StatusNotFound {
		t.Fatalf("profile fetch status %d", got.StatusCode)
	}
}
