package obs

// Exemplars tie histogram buckets back to traces: each bucket remembers
// the trace ID of the most recent observation that landed in it, and the
// histogram as a whole remembers its maximum observation. An operator
// reading a bad p99 off /metrics can jump straight to a concrete trace
// in /debug/traces (and from there, via the shared trace ID, to the
// request's wide event) instead of guessing which query was slow.
//
// Storage is one atomic.Pointer per bucket plus one for the maximum —
// recording stays lock-free, and a torn read is impossible because the
// {value, trace ID} pair is published as one immutable struct.

// Exemplar is one observation worth linking: its value and the trace
// that produced it.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID uint64  `json:"trace_id"`
}

// ObserveWithExemplar records one value like Observe and additionally
// retains {v, traceID} as the bucket's exemplar (most recent wins) and
// as the histogram's max exemplar when v is the largest value seen. A
// zero traceID records the value without touching the exemplars, so
// callers with tracing disabled can use one call site unconditionally —
// and callers under a tail-sampled tracer pass Trace.JoinID (zero for
// dropped traces), so an exemplar never references a trace that is
// absent from /debug/traces.
func (h *Histogram) ObserveWithExemplar(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	ex := &Exemplar{Value: v, TraceID: traceID}
	i := bucketIndex(h.bounds, v)
	h.exemplars[i].Store(ex)
	for {
		cur := h.max.Load()
		if cur != nil && cur.Value >= v {
			return
		}
		if h.max.CompareAndSwap(cur, ex) {
			return
		}
	}
}

// Exemplar returns bucket i's exemplar (i == len(Bounds) is the +Inf
// bucket), or nil when no exemplar landed there yet.
func (h *Histogram) Exemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// MaxExemplar returns the exemplar of the largest observation recorded
// with a trace ID, or nil.
func (h *Histogram) MaxExemplar() *Exemplar { return h.max.Load() }

// snapshotExemplars copies the current exemplar pointers for a
// HistogramSnapshot. The exemplars themselves are immutable and shared.
func (h *Histogram) snapshotExemplars() []*Exemplar {
	any := false
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		if out[i] = h.exemplars[i].Load(); out[i] != nil {
			any = true
		}
	}
	if !any {
		return nil // keep exemplar-free snapshots allocation-light and JSON-quiet
	}
	return out
}

// mergeExemplars combines two per-bucket exemplar slices of equal
// bucket layout, preferring a's entries (the receiver of Merge) and
// filling gaps from b.
func mergeExemplars(a, b []*Exemplar, buckets int) []*Exemplar {
	if a == nil && b == nil {
		return nil
	}
	out := make([]*Exemplar, buckets)
	for i := range out {
		if a != nil && a[i] != nil {
			out[i] = a[i]
		} else if b != nil {
			out[i] = b[i]
		}
	}
	return out
}

// maxExemplar returns the exemplar with the larger value, tolerating
// nils.
func maxExemplar(a, b *Exemplar) *Exemplar {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case b.Value > a.Value:
		return b
	default:
		return a
	}
}
