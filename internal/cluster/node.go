package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/serve"
	"fairjob/internal/topk"
)

// NodeOptions configures one partition node.
type NodeOptions struct {
	// CacheSize is passed to the node's local serve engine (0 selects
	// the engine default, negative disables — benchmarks disable it so
	// the measured overhead is transport, not cache luck).
	CacheSize int
}

// Node is one partition: the sub-table of cells whose (query, location)
// pair routes here, a local serve engine over it (the single-leg
// OpServe path), and the three list-fragment families the distributed
// TA scans. A node is a simulated remote process — the coordinator
// talks to it only through the Transport — but lives in-process today.
//
// Fragments are completed against the shared Universe, not the
// sub-table's own dimensions: the I(q,l) fragments carry every group in
// the universe (value 0 where this partition's cells don't define one),
// and the I(g,l) / I(g,q) fragments carry exactly the queries/locations
// whose pairs route here. Each list member therefore lives on exactly
// one partition, so a LessEntries merge of the fragments reproduces the
// single index's lists byte-for-byte.
type Node struct {
	id, n    int
	uni      *Universe
	schema   *core.Schema
	rankings []*core.MarketplaceRanking
	opts     NodeOptions

	mu    sync.Mutex // serializes Refresh
	state atomic.Pointer[nodeState]
}

// nodeState is one immutable generation of a node: sub-table, engine
// and fragment families swap together, atomically, so a pinned call
// never sees a torn mix of generations.
type nodeState struct {
	gen    uint64
	tbl    *core.Table
	engine *serve.Engine

	group, query, loc *fragFamily
}

// fragFamily is one list family's fragments: a global-listID-indexed
// ragged ListSource (nil slices for lists this partition owns no piece
// of) plus the owned list ids for row lookups.
type fragFamily struct {
	lists *topk.SliceLists
	owned []int
}

// NewNode builds partition id of n over its sub-table. The universe,
// schema and rankings are sealed; Refresh replaces cell values only.
func NewNode(id, n int, uni *Universe, sub *core.Table, schema *core.Schema, rankings []*core.MarketplaceRanking, opts NodeOptions) *Node {
	nd := &Node{id: id, n: n, uni: uni, schema: schema, rankings: rankings, opts: opts}
	nd.state.Store(nd.buildState(sub))
	return nd
}

// buildState freezes one generation: the serve snapshot (whose
// process-unique generation number becomes the node's) and the three
// fragment families, all from one view of the sub-table.
func (nd *Node) buildState(sub *core.Table) *nodeState {
	snap := serve.NewSnapshotWithRankings(sub, nd.schema, nd.rankings)
	st := &nodeState{
		gen: snap.Gen(),
		tbl: sub,
		engine: serve.NewEngine(snap, serve.Options{
			Workers:   1,
			CacheSize: nd.opts.CacheSize,
		}),
	}
	st.group, st.query, st.loc = nd.buildFragments(sub)
	return st
}

// buildFragments materializes this partition's fragments of the three
// list families, completed against the universe.
func (nd *Node) buildFragments(sub *core.Table) (group, query, loc *fragFamily) {
	G, Q, L := nd.uni.GroupKeys, nd.uni.Queries, nd.uni.Locations

	// Ownership per (q, l) pair, plus the owned member sets per axis:
	// ownedQ[li] = queries q with Route(q, L[li]) == id, ownedL[qi]
	// symmetric.
	ownedQ := make([][]core.Query, len(L))
	ownedL := make([][]core.Location, len(Q))
	for qi, q := range Q {
		for li, l := range L {
			if Route(q, l, nd.n) == nd.id {
				ownedQ[li] = append(ownedQ[li], q)
				ownedL[qi] = append(ownedL[qi], l)
			}
		}
	}

	// I(q,l) family: one list per owned pair, carrying every group.
	glists := make([][]index.Entry, len(Q)*len(L))
	for qi, q := range Q {
		for li, l := range L {
			if Route(q, l, nd.n) != nd.id {
				continue
			}
			entries := make([]index.Entry, len(G))
			for gi, g := range G {
				v, _ := sub.GetKey(g, q, l) // undefined completes to 0
				entries[gi] = index.Entry{Key: g, Value: v}
			}
			topk.SortEntries(entries)
			glists[qi*len(L)+li] = entries
		}
	}

	// I(g,l) family: for every (g, l), the queries whose (q, l) pair
	// routes here.
	qlists := make([][]index.Entry, len(G)*len(L))
	for gi, g := range G {
		for li, l := range L {
			qs := ownedQ[li]
			if len(qs) == 0 {
				continue
			}
			entries := make([]index.Entry, len(qs))
			for i, q := range qs {
				v, _ := sub.GetKey(g, q, l)
				entries[i] = index.Entry{Key: string(q), Value: v}
			}
			topk.SortEntries(entries)
			qlists[gi*len(L)+li] = entries
		}
	}

	// I(g,q) family: for every (g, q), the locations whose (q, l) pair
	// routes here.
	llists := make([][]index.Entry, len(G)*len(Q))
	for gi, g := range G {
		for qi, q := range Q {
			ls := ownedL[qi]
			if len(ls) == 0 {
				continue
			}
			entries := make([]index.Entry, len(ls))
			for i, l := range ls {
				v, _ := sub.GetKey(g, q, l)
				entries[i] = index.Entry{Key: string(l), Value: v}
			}
			topk.SortEntries(entries)
			llists[gi*len(Q)+qi] = entries
		}
	}

	return newFragFamily(glists), newFragFamily(qlists), newFragFamily(llists)
}

func newFragFamily(lists [][]index.Entry) *fragFamily {
	f := &fragFamily{lists: topk.NewSliceLists(lists)}
	for i, l := range lists {
		if l != nil {
			f.owned = append(f.owned, i)
		}
	}
	return f
}

// Gen returns the node's current generation.
func (nd *Node) Gen() uint64 {
	return nd.state.Load().gen
}

// Refresh applies a copy-on-write edit to the node's sub-table and
// swaps in a new generation: snapshot, engine and fragments together.
// Edits must stay within the partition's owned (query, location) pairs
// and must not grow the dimension universe — ownership and completion
// are both anchored to the sealed Universe.
func (nd *Node) Refresh(apply func(*core.Table)) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	next := nd.state.Load().tbl.Clone()
	if apply != nil {
		apply(next)
	}
	nd.state.Store(nd.buildState(next))
}

// Handle answers one transport call against the node's current
// generation. A non-zero PinGen that no longer matches refuses with
// ErrGenMismatch — the coordinator re-pins and restarts rather than
// merging data from two generations.
//
// Trace propagation: in-process, the coordinator's leg span rides the
// context (obs.ContextWithSpan), so an OpServe request's engine joins
// the caller's trace with no work here. Call.TraceID and
// Call.ParentSpan carry the same join key as wire-visible fields — a
// networked transport would serialize those and reconstruct the
// context server-side; this node reads neither.
func (nd *Node) Handle(ctx context.Context, call Call) (Reply, error) {
	st := nd.state.Load()
	if call.PinGen != 0 && call.PinGen != st.gen {
		return Reply{Gen: st.gen}, fmt.Errorf("%w: partition %d pinned gen %d, now serving %d",
			ErrGenMismatch, nd.id, call.PinGen, st.gen)
	}
	switch call.Op {
	case OpScan:
		fam, err := st.family(call.Dim)
		if err != nil {
			return Reply{Gen: st.gen}, err
		}
		if call.List < 0 || call.List >= fam.lists.NumLists() {
			return Reply{Gen: st.gen}, fmt.Errorf("cluster: partition %d: list %d out of range", nd.id, call.List)
		}
		return Reply{Gen: st.gen, Entries: topk.ScanFrom(fam.lists, call.List, call.Start, call.Count)}, nil
	case OpLookup:
		fam, err := st.family(call.Dim)
		if err != nil {
			return Reply{Gen: st.gen}, err
		}
		var row []ListValue
		for _, li := range fam.owned {
			if v, ok := fam.lists.Find(li, call.Key); ok {
				row = append(row, ListValue{List: li, Value: v})
			}
		}
		return Reply{Gen: st.gen, Row: row}, nil
	case OpCells:
		cells := make([]Cell, 0, st.tbl.Len())
		st.tbl.Range(func(tr core.Triple, v float64) {
			cells = append(cells, Cell{G: tr.GroupKey, Q: tr.Query, L: tr.Location, V: v})
		})
		return Reply{Gen: st.gen, Cells: cells}, nil
	case OpServe:
		return Reply{Gen: st.gen, Resp: st.engine.DoCtx(ctx, call.Req)}, nil
	default:
		return Reply{Gen: st.gen}, fmt.Errorf("cluster: partition %d: unknown op %v", nd.id, call.Op)
	}
}

// family resolves the fragment family for a quantification dimension.
func (st *nodeState) family(dim compare.Dimension) (*fragFamily, error) {
	switch dim {
	case compare.ByGroup:
		return st.group, nil
	case compare.ByQuery:
		return st.query, nil
	case compare.ByLocation:
		return st.loc, nil
	default:
		return nil, fmt.Errorf("cluster: unknown dimension %v", dim)
	}
}
