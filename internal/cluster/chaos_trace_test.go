//go:build faultinject

package cluster_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fairjob/internal/cluster"
	"fairjob/internal/faultinject"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
)

// The chaos tracing suite: under every partition failpoint, every
// retained trace's span tree must stay well-formed — no orphan legs, no
// unfinished spans, hedge pairs always reciprocally linked — because
// the whole point of the waterfall is to be trustworthy exactly when
// the cluster is misbehaving.

// wellFormedTraces asserts every retained trace passes CheckSpans and
// that every hedge span is linked to its peer, then returns them
// (newest first).
func wellFormedTraces(t *testing.T, tz *obs.Tracer) []*obs.Trace {
	t.Helper()
	traces := tz.Recent()
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	for _, tr := range traces {
		if err := tr.CheckSpans(); err != nil {
			t.Fatalf("trace %d (%s) malformed: %v\nspans: %+v", tr.ID, tr.Label, err, tr.Children)
		}
		for i := range tr.Children {
			cs := &tr.Children[i]
			if cs.Kind == "hedge" && cs.Link == 0 && tr.SpansDropped == 0 {
				t.Fatalf("trace %d: hedge span %d has no peer link: %+v", tr.ID, cs.ID, cs)
			}
		}
	}
	return traces
}

func chaosSpan(tr *obs.Trace, pred func(*obs.ChildSpan) bool) *obs.ChildSpan {
	for i := range tr.Children {
		if pred(&tr.Children[i]) {
			return &tr.Children[i]
		}
	}
	return nil
}

// TestClusterChaosTraceSlow is the ISSUE's acceptance scenario: a
// deadline-stressed request against a stalled partition must yield a
// waterfall at /debug/traces/<id> showing the hedge pair with the
// winner marked, and a wide event carrying the scatter cost block —
// all joined by one trace_id that resolves via ?trace_id=.
func TestClusterChaosTraceSlow(t *testing.T) {
	defer faultinject.Reset()
	const n = 3
	tbl := clusterTable(stats.NewRNG(21), 6, 5, 4, 0.15)
	reg := obs.NewRegistry()
	tz := obs.NewTracer(64)
	sink := obs.NewRingSink(64)
	coord := cluster.New(tbl, cluster.Options{
		Partitions:    n,
		NodeCacheSize: -1,
		HedgeFloor:    time.Millisecond,
		Seed:          5,
		Obs:           reg,
		Tracer:        tz,
		Log:           obs.NewLogger(obs.LoggerOptions{Sink: sink}),
	})
	req := chaosRequests(tbl)[0]

	// Warm the latency trackers past hedgeAfterSamples so hedges arm.
	for i := 0; i < 12; i++ {
		if resp := coord.Do(req); resp.Err != nil {
			t.Fatalf("warmup %d failed: %v", i, resp.Err)
		}
	}

	// Stall exactly one send per partition; hedges rescue the request.
	release := make(chan struct{})
	var stalled [n]atomic.Bool
	faultinject.SetKeyed(faultinject.ClusterPartitionSlow, func(key string) error {
		p, _ := strconv.Atoi(key)
		if stalled[p].CompareAndSwap(false, true) {
			<-release
		}
		return nil
	})
	defer close(release)

	req.Deadline = 5 * time.Second // stressed, but rescuable by hedging
	resp := coord.Do(req)
	if resp.Err != nil {
		t.Fatalf("hedged request failed: %v", resp.Err)
	}

	traces := wellFormedTraces(t, tz)
	tr := traces[0] // the stalled request is the newest trace
	winner := chaosSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Kind == "hedge" && cs.Outcome == "won" })
	if winner == nil {
		t.Fatalf("no winning hedge span in the stalled request's trace: %+v", tr.Children)
	}
	loser := &tr.Children[winner.Link-1]
	if loser.Link != winner.ID || loser.Partition != winner.Partition {
		t.Fatalf("hedge pair inconsistent: winner %+v loser %+v", winner, loser)
	}
	if loser.Outcome == "" || loser.Outcome == "ok" {
		t.Fatalf("stalled primary should carry a loss outcome, got %q", loser.Outcome)
	}

	// The wide event joins the trace and carries the scatter cost block.
	ev := sink.Recent()[0]
	if ev.TraceID != tr.ID {
		t.Fatalf("wide event trace_id %d, want %d", ev.TraceID, tr.ID)
	}
	if ev.HedgesFired == 0 || ev.HedgesWon == 0 || ev.RPCs == 0 || ev.SlowestPartition == "" {
		t.Fatalf("wide event lacks scatter cost: %+v", ev)
	}

	// The trace resolves over HTTP: exact lookup, then the waterfall with
	// the winner marked.
	srv := httptest.NewServer(obs.NewHandler(obs.AdminOptions{Registry: reg, Tracer: tz}))
	defer srv.Close()
	res, err := http.Get(fmt.Sprintf("%s/debug/traces?trace_id=%d", srv.URL, tr.ID))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("?trace_id=%d: status %d", tr.ID, res.StatusCode)
	}
	res, err = http.Get(fmt.Sprintf("%s/debug/traces/%d", srv.URL, tr.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	waterfall := string(body)
	if !strings.Contains(waterfall, "◀ winner") || !strings.Contains(waterfall, "[hedge]") {
		t.Fatalf("waterfall does not show the hedge pair with the winner marked:\n%s", waterfall)
	}
}

// TestClusterChaosTraceDown: a hard-down partition degrades the answer,
// and the trace must show it — the scatter attempt marked degraded, a
// recompute span, and the degraded engine joined under it — with every
// tree still well-formed.
func TestClusterChaosTraceDown(t *testing.T) {
	defer faultinject.Reset()
	const n, downed = 3, 1
	tbl := clusterTable(stats.NewRNG(21), 6, 5, 4, 0.15)
	tz := obs.NewTracer(64)
	coord := cluster.New(tbl, cluster.Options{
		Partitions:    n,
		NodeCacheSize: -1,
		Tracer:        tz,
		Retry:         serve.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	faultinject.SetKeyed(faultinject.ClusterPartitionDown, func(key string) error {
		if key == strconv.Itoa(downed) {
			return errors.New("injected: partition down")
		}
		return nil
	})

	resp := coord.Do(chaosRequests(tbl)[0])
	if !errors.Is(resp.Err, cluster.ErrPartialResult) {
		t.Fatalf("want partial result, got %v", resp.Err)
	}

	tr := wellFormedTraces(t, tz)[0]
	scatter := chaosSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Name == "scatter" })
	if scatter == nil || scatter.Outcome != "degraded" {
		t.Fatalf("scatter attempt not marked degraded: %+v", scatter)
	}
	recompute := chaosSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Kind == "recompute" })
	if recompute == nil {
		t.Fatalf("no recompute span after degradation: %+v", tr.Children)
	}
	eng := chaosSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Name == "engine" && cs.Parent == recompute.ID })
	if eng == nil {
		t.Fatalf("degraded engine did not join under the recompute span: %+v", tr.Children)
	}
	// Retries against the downed partition appear as retry-kind spans.
	if chaosSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Kind == "retry" && cs.Partition == downed }) == nil {
		t.Fatalf("no retry span for the downed partition: %+v", tr.Children)
	}
}

// TestClusterChaosTraceFlap: a flapping partition exercises the retry
// policy; the retries must appear as linked retry spans and every tree
// must stay well-formed across a battery of flapping requests.
func TestClusterChaosTraceFlap(t *testing.T) {
	defer faultinject.Reset()
	const n, flapping = 3, 0
	tbl := clusterTable(stats.NewRNG(21), 6, 5, 4, 0.15)
	tz := obs.NewTracer(64)
	coord := cluster.New(tbl, cluster.Options{
		Partitions:    n,
		NodeCacheSize: -1,
		Tracer:        tz,
		Retry:         serve.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	var calls atomic.Uint64
	faultinject.SetKeyed(faultinject.ClusterPartitionFlap, func(key string) error {
		if key != strconv.Itoa(flapping) {
			return nil
		}
		if calls.Add(1)%2 == 1 {
			return errors.New("injected: partition flapped")
		}
		return nil
	})

	for i, req := range chaosRequests(tbl) {
		if resp := coord.Do(req); resp.Err != nil {
			t.Fatalf("request %d failed under flapping: %v", i, resp.Err)
		}
	}
	traces := wellFormedTraces(t, tz)
	sawRetry := false
	for _, tr := range traces {
		if chaosSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Kind == "retry" && cs.Partition == flapping }) != nil {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("flapping never produced a retry span")
	}
}

// TestClusterChaosTraceRepin: a generation flip mid-request restarts
// the fan-out, and the trace shows both attempts — the first scatter
// span closed as gen-flip, the second as the answer.
func TestClusterChaosTraceRepin(t *testing.T) {
	defer faultinject.Reset()
	const n = 3
	tbl := clusterTable(stats.NewRNG(21), 6, 5, 4, 0.15)
	tz := obs.NewTracer(64)
	coord := cluster.New(tbl, cluster.Options{Partitions: n, NodeCacheSize: -1, Tracer: tz})

	var fired atomic.Bool
	faultinject.SetKeyed(faultinject.ClusterPartitionFlap, func(key string) error {
		if key == "0" && fired.CompareAndSwap(false, true) {
			coord.Node(0).Refresh(nil) // same cells, new generation
		}
		return nil
	})

	if resp := coord.Do(chaosRequests(tbl)[0]); resp.Err != nil {
		t.Fatalf("repinned request failed: %v", resp.Err)
	}
	tr := wellFormedTraces(t, tz)[0]
	var kinds []string
	for i := range tr.Children {
		if tr.Children[i].Name == "scatter" {
			kinds = append(kinds, tr.Children[i].Kind+":"+tr.Children[i].Outcome)
		}
	}
	if len(kinds) != 2 || kinds[0] != "primary:gen-flip" || kinds[1] != "repin:ok" {
		t.Fatalf("scatter attempts = %v, want [primary:gen-flip repin:ok]", kinds)
	}
}
