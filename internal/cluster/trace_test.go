package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fairjob/internal/cluster"
	"fairjob/internal/compare"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// findSpan returns the first span matching pred, or nil.
func findSpan(tr *obs.Trace, pred func(*obs.ChildSpan) bool) *obs.ChildSpan {
	for i := range tr.Children {
		if pred(&tr.Children[i]) {
			return &tr.Children[i]
		}
	}
	return nil
}

// TestClusterTracingEndToEnd drives a traced coordinator and asserts
// the whole observability chain for one request: a well-formed span
// tree with the scatter attempt, per-partition scan-stream summaries
// and leg spans; per-partition RED metrics on /metrics; a wide event
// carrying the scatter cost block — all joined by one trace id that
// resolves through ?trace_id= and renders at /debug/traces/<id>.
func TestClusterTracingEndToEnd(t *testing.T) {
	const n = 3
	tbl := clusterTable(stats.NewRNG(7), 6, 5, 4, 0.15)
	reg := obs.NewRegistry()
	tz := obs.NewTracer(64)
	sink := obs.NewRingSink(64)
	coord := cluster.New(tbl, cluster.Options{
		Partitions:    n,
		Obs:           reg,
		Tracer:        tz,
		Log:           obs.NewLogger(obs.LoggerOptions{Sink: sink}),
		NodeCacheSize: -1,
	})

	resp := coord.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 3, Algorithm: topk.TA})
	if resp.Err != nil {
		t.Fatalf("quantify failed: %v", resp.Err)
	}
	if resp2 := coord.Do(serve.Request{Problem: serve.Compare, Of: compare.ByGroup,
		R1: tbl.Groups()[0].Key(), R2: tbl.Groups()[1].Key(), By: compare.ByQuery}); resp2.Err != nil {
		t.Fatalf("compare failed: %v", resp2.Err)
	}

	traces := tz.Recent()
	if len(traces) != 2 {
		t.Fatalf("retained %d traces, want 2", len(traces))
	}
	for _, tr := range traces {
		if err := tr.CheckSpans(); err != nil {
			t.Fatalf("trace %d (%s) malformed: %v", tr.ID, tr.Label, err)
		}
	}
	cmpTrace, quantTrace := traces[0], traces[1] // newest first

	// The quantify trace: a primary scatter attempt, and one scan-stream
	// summary per partition carrying the round-trip counts (the O(lists)
	// RPC evidence), instead of a span per scan.
	scatter := findSpan(quantTrace, func(cs *obs.ChildSpan) bool { return cs.Name == "scatter" && cs.Kind == "primary" })
	if scatter == nil {
		t.Fatalf("quantify trace has no primary scatter span: %+v", quantTrace.Children)
	}
	streams := 0
	for i := range quantTrace.Children {
		cs := &quantTrace.Children[i]
		if cs.Name != "scan-stream" {
			continue
		}
		streams++
		if cs.Kind != "scan" || cs.Parent != scatter.ID || cs.Partition < 0 || cs.Partition >= n {
			t.Fatalf("scan-stream span wrong: %+v", cs)
		}
		if len(cs.Annots) == 0 || cs.Annots[0].Key != "scan_rpcs" {
			t.Fatalf("scan-stream span lacks the scan_rpcs annotation: %+v", cs)
		}
	}
	if streams == 0 {
		t.Fatal("quantify trace has no scan-stream summaries")
	}

	// The compare trace: one cells leg span per partition, under its
	// scatter attempt.
	for p := 0; p < n; p++ {
		leg := findSpan(cmpTrace, func(cs *obs.ChildSpan) bool {
			return cs.Name == "cells" && cs.Partition == int32(p)
		})
		if leg == nil {
			t.Fatalf("compare trace has no cells leg for partition %d: %+v", p, cmpTrace.Children)
		}
		if leg.Kind != "primary" || leg.Outcome != "ok" || leg.Entries == 0 {
			t.Fatalf("cells leg for partition %d wrong: %+v", p, leg)
		}
	}

	// Wide events carry the scatter cost block and stay schema-valid.
	events := sink.Recent()
	if len(events) != 2 {
		t.Fatalf("emitted %d wide events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.RPCs == 0 || ev.Partitions != n || ev.SlowestPartition == "" {
			t.Fatalf("wide event lacks scatter cost fields: %+v", ev)
		}
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateEventJSON(raw); err != nil {
			t.Fatalf("cluster wide event fails the schema: %v\n%s", err, raw)
		}
	}
	quantEvent := events[1]
	if quantEvent.TraceID != quantTrace.ID {
		t.Fatalf("wide event trace_id %d does not join its trace %d", quantEvent.TraceID, quantTrace.ID)
	}

	// Per-partition RED metrics and the hedge-delay gauge on /metrics.
	srv := httptest.NewServer(obs.NewHandler(obs.AdminOptions{Registry: reg, Tracer: tz}))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	metrics := string(body)
	for p := 0; p < n; p++ {
		for _, name := range []string{
			fmt.Sprintf(`cluster_partition_legs_total{partition="%d"}`, p),
			fmt.Sprintf(`cluster_leg_seconds_count{partition="%d"}`, p),
			fmt.Sprintf(`cluster_hedge_delay_seconds{partition="%d"}`, p),
		} {
			if !strings.Contains(metrics, name) {
				t.Errorf("/metrics lacks %s", name)
			}
		}
	}
	if reg.Counter(obs.Name("cluster_partition_legs_total", "partition", "0")).Value() == 0 {
		t.Error("partition 0 leg counter never moved")
	}

	// The trace id resolves via ?trace_id= and renders as a waterfall.
	res, err = http.Get(fmt.Sprintf("%s/debug/traces?trace_id=%d", srv.URL, quantTrace.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), `"children"`) {
		t.Fatalf("?trace_id= lookup failed: status %d body %s", res.StatusCode, body)
	}
	res, err = http.Get(fmt.Sprintf("%s/debug/traces/%d", srv.URL, quantTrace.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "scan-stream") {
		t.Fatalf("waterfall missing scan-stream: status %d\n%s", res.StatusCode, body)
	}
}

// TestClusterTracingEngineJoin: a single-partition coordinator serves
// through OpServe, and the node-side engine must JOIN the coordinator's
// trace as an "engine" child of the serve leg — one request, one trace —
// instead of starting a second trace of its own.
func TestClusterTracingEngineJoin(t *testing.T) {
	tbl := clusterTable(stats.NewRNG(7), 6, 5, 4, 0.15)
	tz := obs.NewTracer(8)
	coord := cluster.New(tbl, cluster.Options{Partitions: 1, Tracer: tz, NodeCacheSize: -1})

	if resp := coord.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}); resp.Err != nil {
		t.Fatalf("quantify failed: %v", resp.Err)
	}
	traces := tz.Recent()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want exactly 1 (the engine must not start its own)", len(traces))
	}
	tr := traces[0]
	if err := tr.CheckSpans(); err != nil {
		t.Fatalf("trace malformed: %v", err)
	}
	leg := findSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Name == "serve" })
	if leg == nil {
		t.Fatalf("no serve leg span: %+v", tr.Children)
	}
	eng := findSpan(tr, func(cs *obs.ChildSpan) bool { return cs.Name == "engine" })
	if eng == nil {
		t.Fatalf("engine never joined the trace: %+v", tr.Children)
	}
	if eng.Parent != leg.ID || eng.Kind != "engine" || eng.Gen == 0 {
		t.Fatalf("engine span wrong (want child of serve leg %d): %+v", leg.ID, eng)
	}
}

// TestWideEventSchemaGateCluster is the cluster side of the closed-
// schema invariant check.sh gates on: every wide event a coordinator
// emits — full answers, partial degradations, refusals — must validate
// against the documented schema, including the scatter cost fields new
// to the cluster path.
func TestWideEventSchemaGateCluster(t *testing.T) {
	tbl := clusterTable(stats.NewRNG(11), 6, 5, 4, 0.15)
	sink := obs.NewRingSink(256)
	coord := cluster.New(tbl, cluster.Options{
		Partitions:    3,
		Log:           obs.NewLogger(obs.LoggerOptions{Sink: sink}),
		NodeCacheSize: -1,
	})
	reqs := clusterBattery(tbl)
	// A refusal path too: an invalid request also emits an event.
	reqs = append(reqs, serve.Request{Problem: serve.Quantify, K: -1})
	for _, req := range reqs {
		coord.Do(req)
	}
	events := sink.Recent()
	if len(events) != len(reqs) {
		t.Fatalf("emitted %d events for %d requests", len(events), len(reqs))
	}
	sawCost := false
	for _, ev := range events {
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateEventJSON(raw); err != nil {
			t.Fatalf("event fails the closed schema: %v\n%s", err, raw)
		}
		if ev.RPCs > 0 && ev.SlowestPartition != "" {
			sawCost = true
		}
	}
	if !sawCost {
		t.Fatal("no event carried the scatter cost block")
	}
}
