package cluster_test

import (
	"fmt"
	"testing"

	"fairjob/internal/cluster"
	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/mitigate"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// partitionCounts is the equivalence sweep: 1 exercises the single-leg
// fast path, 2–3 small splits, 5 and 8 exceed-the-dimensions splits
// where some partitions own few or oddly-shaped pair sets.
var partitionCounts = []int{1, 2, 3, 5, 8}

// clusterTable synthesizes the shared fixture table (same shape as the
// serve package's randomTable).
func clusterTable(rng *stats.RNG, ng, nq, nl int, missing float64) *core.Table {
	tbl := core.NewTable()
	for g := 0; g < ng; g++ {
		grp := core.NewGroup(core.Predicate{Attr: "cohort", Value: fmt.Sprintf("g%02d", g)})
		for q := 0; q < nq; q++ {
			for l := 0; l < nl; l++ {
				if rng.Float64() < missing {
					continue
				}
				tbl.Set(grp, core.Query(fmt.Sprintf("q%02d", q)), core.Location(fmt.Sprintf("l%02d", l)), rng.Float64())
			}
		}
	}
	return tbl
}

// clusterRanking is the paper's Tables 2–3 page, the Problem 3 fixture.
func clusterRanking() *core.MarketplaceRanking {
	type row struct {
		id, gender, eth string
		score           float64
	}
	rows := []row{
		{"w3", "Female", "White", 0.9}, {"w8", "Male", "Black", 0.8},
		{"w6", "Male", "Black", 0.7}, {"w2", "Male", "White", 0.6},
		{"w1", "Female", "Asian", 0.5}, {"w4", "Male", "Asian", 0.4},
		{"w7", "Female", "Black", 0.3}, {"w5", "Female", "Black", 0.2},
		{"w9", "Male", "White", 0.1}, {"w10", "Female", "White", 0.0},
	}
	r := &core.MarketplaceRanking{Query: "Home Cleaning", Location: "San Francisco, CA"}
	for i, x := range rows {
		r.Workers = append(r.Workers, core.RankedWorker{
			ID:    x.id,
			Attrs: core.Assignment{"gender": x.gender, "ethnicity": x.eth},
			Rank:  i + 1,
			Score: x.score,
		})
	}
	return r
}

// fingerprint reduces a response to a deterministic byte string over
// every answer-bearing field. Gen is excluded on purpose: snapshot
// generations are process-unique, so a coordinator's partitions and a
// standalone engine legitimately disagree on them while agreeing on
// every answer byte.
func fingerprint(r serve.Response) string {
	errMsg := ""
	if r.Err != nil {
		errMsg = r.Err.Error()
	}
	mit := ""
	if r.Mitigation != nil {
		mit = fmt.Sprintf("%+v", *r.Mitigation)
	}
	return fmt.Sprintf("results=%+v stats=%+v cmp=%+v mit=%s err=%q", r.Results, r.Stats, r.Comparison, mit, errMsg)
}

// clusterBattery is the mixed Problem 1/2/3 workload: every dimension,
// algorithm, direction and comparison semantics, a candidate-restricted
// quantify, and the three mitigators on the paper page.
func clusterBattery(tbl *core.Table) []serve.Request {
	var reqs []serve.Request
	for _, dim := range []compare.Dimension{compare.ByGroup, compare.ByQuery, compare.ByLocation} {
		for _, algo := range topk.Algorithms() {
			for _, dir := range []topk.Direction{topk.MostUnfair, topk.LeastUnfair} {
				for _, k := range []int{1, 3} {
					reqs = append(reqs, serve.Request{
						Problem: serve.Quantify, Dim: dim, K: k, Direction: dir, Algorithm: algo,
					})
				}
			}
		}
	}
	var gks []string
	for _, g := range tbl.Groups() {
		gks = append(gks, g.Key())
	}
	qs, ls := tbl.Queries(), tbl.Locations()
	if len(gks) >= 3 {
		reqs = append(reqs, serve.Request{
			Problem: serve.Quantify, Dim: compare.ByGroup, K: 2,
			Algorithm: topk.TA, Candidates: gks[:3],
		})
	}
	if len(gks) >= 2 {
		for _, definedOnly := range []bool{false, true} {
			reqs = append(reqs,
				serve.Request{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByQuery, DefinedOnly: definedOnly},
				serve.Request{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByLocation, DefinedOnly: definedOnly},
			)
		}
	}
	if len(qs) >= 2 {
		reqs = append(reqs, serve.Request{Problem: serve.Compare, Of: compare.ByQuery, R1: string(qs[0]), R2: string(qs[1]), By: compare.ByGroup})
	}
	if len(ls) >= 2 {
		reqs = append(reqs, serve.Request{Problem: serve.Compare, Of: compare.ByLocation, R1: string(ls[0]), R2: string(ls[1]), By: compare.ByGroup})
	}
	base := serve.Request{Problem: serve.Mitigate, Group: "ethnicity=Asian&gender=Female", Query: "Home Cleaning", Location: "San Francisco, CA"}
	fair, greedy, exposure := base, base, base
	fair.Mitigator, fair.MinProportion, fair.Alpha = mitigate.FairTopK, 0.3, 0.25
	greedy.Mitigator = mitigate.DetGreedy
	exposure.Mitigator, exposure.SwapBudget = mitigate.ExposureParity, 10
	reqs = append(reqs, fair, greedy, exposure)
	return reqs
}

// TestCoordinatorEquivalence is the core correctness gate: at every
// tested partition count, the coordinator's answer to every battery
// request is byte-identical (results, access-cost stats, comparisons,
// mitigations, error text) to a standalone engine over the unsplit
// table. Caches are disabled on both sides so every answer is a real
// computation.
func TestCoordinatorEquivalence(t *testing.T) {
	tbl := clusterTable(stats.NewRNG(7), 6, 5, 4, 0.15)
	rankings := []*core.MarketplaceRanking{clusterRanking()}
	single := serve.NewEngine(
		serve.NewSnapshotWithRankings(tbl, nil, rankings),
		serve.Options{CacheSize: -1, Workers: 1},
	)
	reqs := clusterBattery(tbl)
	want := make([]string, len(reqs))
	for i, req := range reqs {
		want[i] = fingerprint(single.Do(req))
	}

	for _, n := range partitionCounts {
		t.Run(fmt.Sprintf("partitions=%d", n), func(t *testing.T) {
			coord := cluster.NewWithRankings(tbl, nil, rankings, cluster.Options{
				Partitions:    n,
				NodeCacheSize: -1,
			})
			for i, req := range reqs {
				if got := fingerprint(coord.Do(req)); got != want[i] {
					t.Errorf("request %d (%v) diverged at %d partitions:\n got: %s\nwant: %s",
						i, req.Problem, n, got, want[i])
				}
			}
		})
	}
}

// TestCoordinatorSplitCoversTable pins the partitioning invariant the
// equivalence rests on: every defined cell lands on exactly one
// partition, and the union of the sub-tables is the original table.
func TestCoordinatorSplitCoversTable(t *testing.T) {
	tbl := clusterTable(stats.NewRNG(11), 5, 4, 3, 0.2)
	for _, n := range partitionCounts {
		subs := cluster.SplitTable(tbl, n)
		total := 0
		for _, sub := range subs {
			total += sub.Len()
		}
		if total != tbl.Len() {
			t.Fatalf("n=%d: sub-tables hold %d cells, original has %d", n, total, tbl.Len())
		}
		tbl.Range(func(tr core.Triple, v float64) {
			p := cluster.Route(tr.Query, tr.Location, n)
			got, ok := subs[p].GetKey(tr.GroupKey, tr.Query, tr.Location)
			if !ok || got != v {
				t.Fatalf("n=%d: cell %+v not on its owner %d (ok=%v got=%v want=%v)", n, tr, p, ok, got, v)
			}
		})
	}
}

// TestRouteIsStable pins the routing function's determinism and range.
func TestRouteIsStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		for q := 0; q < 10; q++ {
			for l := 0; l < 10; l++ {
				qq, ll := core.Query(fmt.Sprintf("q%d", q)), core.Location(fmt.Sprintf("l%d", l))
				p1 := cluster.Route(qq, ll, n)
				p2 := cluster.Route(qq, ll, n)
				if p1 != p2 {
					t.Fatalf("Route not deterministic: %d vs %d", p1, p2)
				}
				if p1 < 0 || p1 >= n {
					t.Fatalf("Route(%q, %q, %d) = %d out of range", qq, ll, n, p1)
				}
			}
		}
	}
}

// FuzzClusterEquivalence drives the coordinator≡engine property over
// fuzzed table shapes, seeds and partition counts: whatever the data,
// a split-and-merged quantify and compare must answer byte-identically
// to the unsplit engine.
func FuzzClusterEquivalence(f *testing.F) {
	f.Add(uint64(1), 4, 3, 3, 2)
	f.Add(uint64(7), 6, 5, 4, 3)
	f.Add(uint64(42), 3, 2, 2, 5)
	f.Add(uint64(99), 5, 6, 2, 8)
	f.Fuzz(func(t *testing.T, seed uint64, ng, nq, nl, parts int) {
		if ng < 1 || ng > 8 || nq < 1 || nq > 8 || nl < 1 || nl > 8 || parts < 1 || parts > 9 {
			t.Skip()
		}
		tbl := clusterTable(stats.NewRNG(seed), ng, nq, nl, 0.2)
		if tbl.Len() == 0 {
			t.Skip()
		}
		single := serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{CacheSize: -1, Workers: 1})
		coord := cluster.New(tbl, cluster.Options{Partitions: parts, NodeCacheSize: -1})

		var reqs []serve.Request
		for _, dim := range []compare.Dimension{compare.ByGroup, compare.ByQuery, compare.ByLocation} {
			reqs = append(reqs,
				serve.Request{Problem: serve.Quantify, Dim: dim, K: 2, Algorithm: topk.TA},
				serve.Request{Problem: serve.Quantify, Dim: dim, K: 3, Direction: topk.LeastUnfair, Algorithm: topk.NRA},
			)
		}
		var gks []string
		for _, g := range tbl.Groups() {
			gks = append(gks, g.Key())
		}
		if len(gks) >= 2 {
			reqs = append(reqs, serve.Request{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByQuery})
		}
		for i, req := range reqs {
			want := fingerprint(single.Do(req))
			got := fingerprint(coord.Do(req))
			if got != want {
				t.Errorf("request %d diverged (seed=%d parts=%d):\n got: %s\nwant: %s", i, seed, parts, got, want)
			}
		}
	})
}
