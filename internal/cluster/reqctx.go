package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fairjob/internal/serve"
)

// reqCtx is the per-request fan-out state: the generation pins taken at
// the start of the request (all-or-nothing batch pin), which partitions
// have been marked dead for this request, and whether a pin flipped
// (a refresh landed mid-request — the coordinator re-pins and restarts
// rather than merging two generations).
type reqCtx struct {
	c         *Coordinator
	n         int
	scanBlock int

	mu      sync.Mutex
	pins    []uint64
	dead    []bool
	genFlip bool
	legErr  error
	onFail  func()
}

func (c *Coordinator) newReqCtx() *reqCtx {
	rc := &reqCtx{
		c:         c,
		n:         c.n,
		scanBlock: c.opts.ScanBlock,
		pins:      make([]uint64, c.n),
		dead:      make([]bool, c.n),
	}
	for p := 0; p < c.n; p++ {
		rc.pins[p] = c.gens[p].load()
	}
	return rc
}

// setOnFail installs the hook markDead fires — the quantify path cancels
// its run context here so the topk algorithm unwinds promptly.
func (rc *reqCtx) setOnFail(fn func()) {
	rc.mu.Lock()
	rc.onFail = fn
	rc.mu.Unlock()
}

func (rc *reqCtx) markDead(p int) {
	rc.mu.Lock()
	already := rc.dead[p]
	rc.dead[p] = true
	fn := rc.onFail
	rc.mu.Unlock()
	if !already && fn != nil {
		fn()
	}
}

// missing returns the partitions marked dead for this request, sorted.
func (rc *reqCtx) missing() []int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var out []int
	for p, d := range rc.dead {
		if d {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// recordErr remembers the request's first leg failure.
func (rc *reqCtx) recordErr(err error) {
	rc.mu.Lock()
	if rc.legErr == nil {
		rc.legErr = err
	}
	rc.mu.Unlock()
}

// firstLegErr returns the first leg failure recorded for this request,
// nil if every leg succeeded.
func (rc *reqCtx) firstLegErr() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.legErr
}

func (rc *reqCtx) genFlipped() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.genFlip
}

// pinnedGen is the response generation: the highest pin across
// partitions (snapshot generations are process-unique and monotonic, so
// the max identifies the freshest contributor).
func (rc *reqCtx) pinnedGen() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var g uint64
	for _, pin := range rc.pins {
		if pin > g {
			g = pin
		}
	}
	return g
}

func (rc *reqCtx) pinFor(p int) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.pins[p]
}

// call delivers one pinned call to partition p under the leg retry
// policy: transient errors back off and retry within the request's
// remaining deadline, gen-pin mismatches abort immediately (retrying
// the same pin cannot help), and a partition that exhausts its budget
// is marked dead for the rest of the request.
func (rc *reqCtx) call(ctx context.Context, p int, call Call) (Reply, error) {
	rc.mu.Lock()
	if rc.dead[p] {
		rc.mu.Unlock()
		return Reply{}, fmt.Errorf("%w: partition %d already lost for this request", ErrPartitionUnavailable, p)
	}
	call.PinGen = rc.pins[p]
	rc.mu.Unlock()

	policy := rc.c.legRetry
	userRetry := policy.OnRetry
	policy.OnRetry = func(retry int, err error, delay time.Duration) {
		rc.c.met.legRetries.Inc()
		if userRetry != nil {
			userRetry(retry, err, delay)
		}
	}
	policy.Abort = func(err error) bool { return errors.Is(err, ErrGenMismatch) }

	var reply Reply
	err := policy.DoCtx(ctx, func() error {
		r, legErr := rc.leg(ctx, p, call)
		if legErr != nil {
			if errors.Is(legErr, ErrGenMismatch) {
				// Remember the generation the node now serves, so the
				// restarted request pins it.
				if r.Gen != 0 {
					rc.c.gens[p].store(r.Gen)
				}
				return legErr
			}
			if cerr := ctx.Err(); cerr != nil {
				// The REQUEST is dead (deadline or caller cancel): map to
				// the typed sentinels, which abort the retry loop. A leg
				// whose own budget expired arrives here as a raw context
				// error with the request still alive, and is retried.
				return typedCtxErr(ctx, legErr)
			}
			return legErr
		}
		reply = r
		return nil
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrGenMismatch):
			rc.mu.Lock()
			rc.genFlip = true
			rc.mu.Unlock()
		case errors.Is(err, serve.ErrCanceled), errors.Is(err, serve.ErrDeadlineExceeded):
			// Request-level death is not the partition's fault: no
			// markDead, but the failure must still be rememberable — a
			// scatter run whose legs all died this way has NO missing
			// partitions yet no usable answer either.
			rc.recordErr(err)
		default:
			rc.markDead(p)
			rc.recordErr(err)
		}
		return Reply{}, err
	}
	rc.record(p, reply.Gen)
	return reply, nil
}

// record folds a successful leg's generation into the pins: an unpinned
// partition pins to what it saw, a pinned one whose generation moved —
// only possible through a transport that bypasses the node's own check —
// flags the flip.
func (rc *reqCtx) record(p int, gen uint64) {
	if gen == 0 {
		return
	}
	rc.mu.Lock()
	switch rc.pins[p] {
	case 0:
		rc.pins[p] = gen
	case gen:
	default:
		rc.genFlip = true
	}
	rc.mu.Unlock()
	rc.c.gens[p].store(gen)
}

// leg executes one hedged send to partition p. The leg context carves
// LegFraction of the request's remaining deadline (floored at
// MinLegBudget, capped at the remainder). The FIRST attempt runs
// synchronously on the request goroutine — the hot path pays no
// goroutine spawn, no channel handoff and no cross-core cache migration
// of the engine's index data (measured at ~17% of request latency when
// every leg took the async path). Hedging still works: a timer armed at
// the partition's jittered p99-derived delay launches one asynchronous
// duplicate, and a duplicate that succeeds cancels the shared leg
// context, which unblocks a stalled original — first response wins
// either way, and the deferred cancel reaps whichever copy lost.
func (rc *reqCtx) leg(ctx context.Context, p int, call Call) (Reply, error) {
	c := rc.c
	var legCtx context.Context
	var cancel context.CancelFunc
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		budget := time.Duration(float64(remaining) * c.opts.LegFraction)
		if budget < c.opts.MinLegBudget {
			budget = c.opts.MinLegBudget
		}
		if budget > remaining {
			budget = remaining
		}
		legCtx, cancel = context.WithTimeout(ctx, budget)
	} else {
		legCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type legResult struct {
		reply Reply
		err   error
	}
	var (
		hedged  atomic.Bool
		hedgeCh chan legResult
	)
	if d := c.hedgeDelay(p); d > 0 {
		hedgeCh = make(chan legResult, 1)
		timer := time.AfterFunc(d, func() {
			hedged.Store(true)
			c.met.hedges.Inc()
			c.met.legs.Inc()
			start := time.Now()
			reply, err := c.transport.Send(legCtx, p, call)
			if err == nil {
				sec := time.Since(start).Seconds()
				c.lat[p].record(sec)
				c.met.legSeconds.Observe(sec)
			}
			hedgeCh <- legResult{reply, err}
			if err == nil {
				// First-response-wins: the duplicate came back first, so
				// unblock the original, which is still stuck in its send.
				cancel()
			}
		})
		defer timer.Stop()
	}

	c.met.legs.Inc()
	start := time.Now()
	reply, err := c.transport.Send(legCtx, p, call)
	if err == nil {
		sec := time.Since(start).Seconds()
		c.lat[p].record(sec)
		c.met.legSeconds.Observe(sec)
		if hedged.Load() {
			// The deferred cancel reaps the in-flight duplicate.
			c.met.hedgeLoserCancels.Inc()
		}
		return reply, nil
	}
	if errors.Is(err, ErrGenMismatch) {
		return reply, err
	}
	if hedged.Load() {
		// The original failed — possibly canceled by a winning duplicate.
		// Wait for the duplicate's verdict; it observes the same legCtx, so
		// this wait is bounded by the leg budget. A winning duplicate
		// delivers its result BEFORE canceling the leg context, so when
		// both channels are ready the result must win the select — checked
		// again non-blockingly under Done to beat select's random pick.
		takeHedge := func(res legResult) (Reply, error) {
			if res.err == nil {
				c.met.hedgeWins.Inc()
				if errors.Is(err, context.Canceled) {
					// The duplicate's win is what canceled the original.
					c.met.hedgeLoserCancels.Inc()
				}
				return res.reply, nil
			}
			return Reply{}, res.err
		}
		select {
		case res := <-hedgeCh:
			return takeHedge(res)
		case <-legCtx.Done():
			select {
			case res := <-hedgeCh:
				return takeHedge(res)
			default:
				return Reply{}, legCtx.Err()
			}
		}
	}
	return Reply{}, err
}

// hedgeDelay derives partition p's hedge delay: no hedging until the
// partition has hedgeAfterSamples latency samples, then the jittered
// multiple of its observed p99, floored at HedgeFloor. Jitter is drawn
// from the coordinator's seeded RNG — deterministic across runs with
// the same seed — and de-synchronizes hedges across concurrent
// requests.
func (c *Coordinator) hedgeDelay(p int) time.Duration {
	p99, ok := c.lat[p].p99()
	if !ok {
		return 0
	}
	d := time.Duration(p99 * c.opts.HedgeMultiplier * float64(time.Second))
	if d < c.opts.HedgeFloor {
		d = c.opts.HedgeFloor
	}
	c.rngMu.Lock()
	j := c.rng.Float64()
	c.rngMu.Unlock()
	return d + time.Duration(j*0.25*float64(d))
}
