package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fairjob/internal/obs"
	"fairjob/internal/serve"
)

// scatterStats accumulates one request's fan-out cost across every
// pinned attempt (a re-pin restarts the reqCtx, not the request):
// transport round-trips, hedge activity, leg retries, and per-partition
// leg time for tail attribution. Atomics because hedge duplicates
// increment from their timer goroutine.
type scatterStats struct {
	rpcs        atomic.Int64
	hedgesFired atomic.Int64
	hedgesWon   atomic.Int64
	legRetries  atomic.Int64
	legNS       []atomic.Int64 // accumulated leg time per partition
}

func newScatterStats(n int) *scatterStats {
	return &scatterStats{legNS: make([]atomic.Int64, n)}
}

// slowest names the partition that absorbed the most leg time, as a
// decimal string ("" when no leg ran). A string because partition 0 is
// a legitimate answer and the wide event's omitempty would erase it.
func (st *scatterStats) slowest() string {
	best, bestNS := -1, int64(0)
	for p := range st.legNS {
		if ns := st.legNS[p].Load(); ns > bestNS {
			best, bestNS = p, ns
		}
	}
	if best < 0 {
		return ""
	}
	return strconv.Itoa(best)
}

// streamStat is the per-partition scan/lookup round-trip accounting
// behind the one-summary-span-per-partition policy: a distributed
// quantify issues O(lists) OpScan round-trips, far past MaxChildSpans,
// so individual streaming legs are counted here (request goroutine
// only — the topk run is sequential) and materialized as a single
// "scan-stream" span when the run ends.
type streamStat struct {
	scans   int
	lookups int
	entries int
	first   time.Time
	last    time.Time
}

// reqCtx is the per-request fan-out state: the generation pins taken at
// the start of the request (all-or-nothing batch pin), which partitions
// have been marked dead for this request, and whether a pin flipped
// (a refresh landed mid-request — the coordinator re-pins and restarts
// rather than merging two generations). It also threads the request's
// trace: span is the parent every leg span attaches under (the current
// attempt's "scatter" span, or the "recompute" span during degrade).
type reqCtx struct {
	c         *Coordinator
	n         int
	scanBlock int

	tr     *obs.Trace
	span   obs.SpanRef
	stats  *scatterStats
	stream []streamStat

	mu      sync.Mutex
	pins    []uint64
	dead    []bool
	genFlip bool
	legErr  error
	onFail  func()
}

func (c *Coordinator) newReqCtx(st *scatterStats, tr *obs.Trace) *reqCtx {
	rc := &reqCtx{
		c:         c,
		n:         c.n,
		scanBlock: c.opts.ScanBlock,
		tr:        tr,
		stats:     st,
		stream:    make([]streamStat, c.n),
		pins:      make([]uint64, c.n),
		dead:      make([]bool, c.n),
	}
	for p := 0; p < c.n; p++ {
		rc.pins[p] = c.gens[p].load()
	}
	return rc
}

// setOnFail installs the hook markDead fires — the quantify path cancels
// its run context here so the topk algorithm unwinds promptly.
func (rc *reqCtx) setOnFail(fn func()) {
	rc.mu.Lock()
	rc.onFail = fn
	rc.mu.Unlock()
}

func (rc *reqCtx) markDead(p int) {
	rc.mu.Lock()
	already := rc.dead[p]
	rc.dead[p] = true
	fn := rc.onFail
	rc.mu.Unlock()
	if !already && fn != nil {
		fn()
	}
}

// missing returns the partitions marked dead for this request, sorted.
func (rc *reqCtx) missing() []int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var out []int
	for p, d := range rc.dead {
		if d {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// recordErr remembers the request's first leg failure.
func (rc *reqCtx) recordErr(err error) {
	rc.mu.Lock()
	if rc.legErr == nil {
		rc.legErr = err
	}
	rc.mu.Unlock()
}

// firstLegErr returns the first leg failure recorded for this request,
// nil if every leg succeeded.
func (rc *reqCtx) firstLegErr() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.legErr
}

func (rc *reqCtx) genFlipped() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.genFlip
}

// pinnedGen is the response generation: the highest pin across
// partitions (snapshot generations are process-unique and monotonic, so
// the max identifies the freshest contributor).
func (rc *reqCtx) pinnedGen() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var g uint64
	for _, pin := range rc.pins {
		if pin > g {
			g = pin
		}
	}
	return g
}

func (rc *reqCtx) pinFor(p int) uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.pins[p]
}

// noteStream folds one successful scan/lookup round-trip into the
// partition's stream accounting. Request goroutine only.
func (rc *reqCtx) noteStream(p int, op Op, entries int) {
	s := &rc.stream[p]
	now := time.Now()
	if s.first.IsZero() {
		s.first = now
	}
	s.last = now
	if op == OpScan {
		s.scans++
		s.entries += entries
	} else {
		s.lookups++
	}
}

// scanSummary materializes one "scan-stream" span per partition the run
// streamed from, spanning first to last round-trip, annotated with the
// round-trip counts. This is the trace-level evidence for the scan
// batching item on the roadmap: the rpcs count on these spans (and the
// wide event) quantifies the O(lists) round-trip problem per request.
func (rc *reqCtx) scanSummary() {
	if !rc.span.Valid() {
		return
	}
	for p := range rc.stream {
		s := &rc.stream[p]
		if s.scans == 0 && s.lookups == 0 {
			continue
		}
		sp := rc.span.StartChildAt("scan-stream", s.first)
		sp.SetKind("scan")
		sp.SetPartition(p)
		sp.SetEntries(s.entries)
		sp.Annotate("scan_rpcs", strconv.Itoa(s.scans))
		if s.lookups > 0 {
			sp.Annotate("lookup_rpcs", strconv.Itoa(s.lookups))
		}
		sp.SetOutcome("ok")
		sp.FinishDur(s.last.Sub(s.first))
	}
}

// call delivers one pinned call to partition p under the leg retry
// policy: transient errors back off and retry within the request's
// remaining deadline, gen-pin mismatches abort immediately (retrying
// the same pin cannot help), and a partition that exhausts its budget
// is marked dead for the rest of the request.
func (rc *reqCtx) call(ctx context.Context, p int, call Call) (Reply, error) {
	rc.mu.Lock()
	if rc.dead[p] {
		rc.mu.Unlock()
		return Reply{}, fmt.Errorf("%w: partition %d already lost for this request", ErrPartitionUnavailable, p)
	}
	call.PinGen = rc.pins[p]
	rc.mu.Unlock()
	call.TraceID = rc.tr.TraceID()

	policy := rc.c.legRetry
	userRetry := policy.OnRetry
	policy.OnRetry = func(retry int, err error, delay time.Duration) {
		rc.c.met.legRetries.Inc()
		rc.stats.legRetries.Add(1)
		if userRetry != nil {
			userRetry(retry, err, delay)
		}
	}
	policy.Abort = func(err error) bool { return errors.Is(err, ErrGenMismatch) }

	attempt := 0
	var reply Reply
	err := policy.DoCtx(ctx, func() error {
		kind := "primary"
		if attempt > 0 {
			kind = "retry"
		}
		attempt++
		r, legErr := rc.leg(ctx, p, call, kind)
		if legErr != nil {
			if errors.Is(legErr, ErrGenMismatch) {
				// Remember the generation the node now serves, so the
				// restarted request pins it.
				if r.Gen != 0 {
					rc.c.gens[p].store(r.Gen)
				}
				return legErr
			}
			if cerr := ctx.Err(); cerr != nil {
				// The REQUEST is dead (deadline or caller cancel): map to
				// the typed sentinels, which abort the retry loop. A leg
				// whose own budget expired arrives here as a raw context
				// error with the request still alive, and is retried.
				return typedCtxErr(ctx, legErr)
			}
			return legErr
		}
		reply = r
		return nil
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrGenMismatch):
			rc.mu.Lock()
			rc.genFlip = true
			rc.mu.Unlock()
		case errors.Is(err, serve.ErrCanceled), errors.Is(err, serve.ErrDeadlineExceeded):
			// Request-level death is not the partition's fault: no
			// markDead, but the failure must still be rememberable — a
			// scatter run whose legs all died this way has NO missing
			// partitions yet no usable answer either.
			rc.recordErr(err)
		default:
			rc.markDead(p)
			rc.recordErr(err)
		}
		return Reply{}, err
	}
	rc.record(p, reply.Gen)
	if call.Op == OpScan || call.Op == OpLookup {
		rc.noteStream(p, call.Op, len(reply.Entries))
	}
	return reply, nil
}

// record folds a successful leg's generation into the pins: an unpinned
// partition pins to what it saw, a pinned one whose generation moved —
// only possible through a transport that bypasses the node's own check —
// flags the flip.
func (rc *reqCtx) record(p int, gen uint64) {
	if gen == 0 {
		return
	}
	rc.mu.Lock()
	switch rc.pins[p] {
	case 0:
		rc.pins[p] = gen
	case gen:
	default:
		rc.genFlip = true
	}
	rc.mu.Unlock()
	rc.c.gens[p].store(gen)
}

// legSpan opens one leg span (an op name, an attempt kind, a partition)
// under the current attempt's parent span.
func (rc *reqCtx) legSpan(op Op, kind string, p int, at time.Time) obs.SpanRef {
	s := rc.span.StartChildAt(op.String(), at)
	s.SetKind(kind)
	s.SetPartition(p)
	return s
}

// legResult is the hedge duplicate's verdict, shipped back to the
// request goroutine: the reply, the error, and the duplicate's own
// measured duration (the request goroutine reconstructs the hedge's
// span from it — the duplicate's goroutine never touches the tree).
type legResult struct {
	reply Reply
	err   error
	dur   time.Duration
}

// leg executes one hedged send to partition p. The leg context carves
// LegFraction of the request's remaining deadline (floored at
// MinLegBudget, capped at the remainder). The FIRST attempt runs
// synchronously on the request goroutine — the hot path pays no
// goroutine spawn, no channel handoff and no cross-core cache migration
// of the engine's index data (measured at ~17% of request latency when
// every leg took the async path). Hedging still works: a timer armed at
// the partition's jittered p99-derived delay launches one asynchronous
// duplicate, and a duplicate that succeeds cancels the shared leg
// context, which unblocks a stalled original — first response wins
// either way, and the deferred cancel reaps whichever copy lost.
//
// Span policy: serve and cells legs, retries, and any leg whose hedge
// actually fired get spans; plain scan/lookup primaries are counted
// into the per-partition stream summary instead (a quantify issues
// thousands — see obs.MaxChildSpans). All span creation happens on the
// request goroutine: an eagerly-spanned leg opens its span before the
// send (so an OpServe engine can join it through the context), and a
// leg that only became interesting when its hedge fired gets both
// spans reconstructed after the race resolves, from timings the
// duplicate shipped through hedgeCh.
func (rc *reqCtx) leg(ctx context.Context, p int, call Call, kind string) (Reply, error) {
	c := rc.c
	var legCtx context.Context
	var cancel context.CancelFunc
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		budget := time.Duration(float64(remaining) * c.opts.LegFraction)
		if budget < c.opts.MinLegBudget {
			budget = c.opts.MinLegBudget
		}
		if budget > remaining {
			budget = remaining
		}
		legCtx, cancel = context.WithTimeout(ctx, budget)
	} else {
		legCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	traced := rc.span.Valid()
	var ps obs.SpanRef
	sctx := legCtx
	if traced && (call.Op == OpCells || call.Op == OpServe || kind != "primary") {
		ps = rc.legSpan(call.Op, kind, p, time.Now())
		call.ParentSpan = ps.ID()
		sctx = obs.ContextWithSpan(legCtx, ps)
	}

	var (
		hedged  atomic.Bool
		hedgeAt atomic.Int64 // UnixNano the duplicate launched; set before hedged
		hedgeCh chan legResult
	)
	if d := c.hedgeDelay(p); d > 0 {
		hedgeCh = make(chan legResult, 1)
		timer := time.AfterFunc(d, func() {
			hedgeAt.Store(time.Now().UnixNano())
			hedged.Store(true)
			c.met.hedges.Inc()
			c.met.legs.Inc()
			c.met.partLegs[p].Inc()
			rc.stats.hedgesFired.Add(1)
			rc.stats.rpcs.Add(1)
			hstart := time.Now()
			// The duplicate sends WITHOUT a span context: its span does not
			// exist yet (it is reconstructed by the request goroutine after
			// the race resolves), and parenting an engine join under the
			// primary's span would misattribute the work.
			reply, err := c.transport.Send(legCtx, p, call)
			hdur := time.Since(hstart)
			rc.stats.legNS[p].Add(int64(hdur))
			if err == nil {
				c.observeLeg(p, hdur.Seconds())
			} else {
				c.met.partLegErrors[p].Inc()
			}
			hedgeCh <- legResult{reply, err, hdur}
			if err == nil {
				// First-response-wins: the duplicate came back first, so
				// unblock the original, which is still stuck in its send.
				cancel()
			}
		})
		defer timer.Stop()
	}

	c.met.legs.Inc()
	c.met.partLegs[p].Inc()
	rc.stats.rpcs.Add(1)
	start := time.Now()
	reply, err := c.transport.Send(sctx, p, call)
	dur := time.Since(start)
	rc.stats.legNS[p].Add(int64(dur))

	// finishLeg closes the attempt's spans once the race outcome is
	// known, creating the primary's retroactively when only the fired
	// hedge made the leg interesting, and the hedge's always
	// retroactively, linked to its peer.
	finishLeg := func(primOut string, primReply Reply, hedgeOut string, hres *legResult) {
		if !traced {
			return
		}
		hedgedNow := hedged.Load()
		if !ps.Valid() && hedgedNow {
			ps = rc.legSpan(call.Op, kind, p, start)
		}
		if !ps.Valid() {
			return
		}
		ps.SetGen(primReply.Gen)
		ps.SetEntries(legEntries(call.Op, primReply))
		ps.SetOutcome(primOut)
		ps.FinishDur(dur)
		if !hedgedNow {
			return
		}
		hs := rc.legSpan(call.Op, "hedge", p, time.Unix(0, hedgeAt.Load()))
		if hres != nil {
			hs.SetGen(hres.reply.Gen)
			hs.SetEntries(legEntries(call.Op, hres.reply))
			hs.SetOutcome(hedgeOut)
			hs.FinishDur(hres.dur)
		} else {
			hs.SetOutcome(hedgeOut)
			hs.Finish()
		}
		hs.Link(ps)
	}

	if err == nil {
		c.observeLeg(p, dur.Seconds())
		if hedged.Load() {
			c.met.hedgeLoserCancels.Inc()
			if traced {
				// Reap the duplicate now instead of leaving it to the
				// deferred cancel, so its span carries its real extent:
				// cancel unblocks its send (Send honors ctx), the handoff
				// channel is buffered, so this wait is bounded by the leg
				// budget and usually instant. The untraced path skips it —
				// exactly the old behavior.
				cancel()
				hres := <-hedgeCh
				finishLeg("won", reply, "lost", &hres)
			}
			return reply, nil
		}
		finishLeg("ok", reply, "", nil)
		return reply, nil
	}
	c.met.partLegErrors[p].Inc()
	if errors.Is(err, ErrGenMismatch) {
		finishLeg("gen-mismatch", reply, "canceled", nil)
		return reply, err
	}
	if hedged.Load() {
		// The original failed — possibly canceled by a winning duplicate.
		// Wait for the duplicate's verdict; it observes the same legCtx, so
		// this wait is bounded by the leg budget. A winning duplicate
		// delivers its result BEFORE canceling the leg context, so when
		// both channels are ready the result must win the select — checked
		// again non-blockingly under Done to beat select's random pick.
		takeHedge := func(res legResult) (Reply, error) {
			if res.err == nil {
				c.met.hedgeWins.Inc()
				rc.stats.hedgesWon.Add(1)
				if errors.Is(err, context.Canceled) {
					// The duplicate's win is what canceled the original.
					c.met.hedgeLoserCancels.Inc()
				}
				finishLeg(errClass(err), Reply{}, "won", &res)
				return res.reply, nil
			}
			finishLeg(errClass(err), Reply{}, errClass(res.err), &res)
			return Reply{}, res.err
		}
		select {
		case res := <-hedgeCh:
			return takeHedge(res)
		case <-legCtx.Done():
			select {
			case res := <-hedgeCh:
				return takeHedge(res)
			default:
				finishLeg(errClass(err), Reply{}, "canceled", nil)
				return Reply{}, legCtx.Err()
			}
		}
	}
	finishLeg(errClass(err), Reply{}, "", nil)
	return Reply{}, err
}

// legEntries counts the payload entries a reply moved, per op.
func legEntries(op Op, r Reply) int {
	switch op {
	case OpScan:
		return len(r.Entries)
	case OpLookup:
		return len(r.Row)
	case OpCells:
		return len(r.Cells)
	default:
		return 0
	}
}

// errClass buckets a leg error into a span outcome.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrGenMismatch):
		return "gen-mismatch"
	case errors.Is(err, ErrPartitionUnavailable):
		return "unavailable"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, serve.ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled), errors.Is(err, serve.ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

// observeLeg feeds one successful leg latency into the partition's
// hedge tracker and its labeled duration histogram.
func (c *Coordinator) observeLeg(p int, seconds float64) {
	c.lat[p].record(seconds)
	c.met.partLegSeconds[p].Observe(seconds)
}

// hedgeBaseDelay is partition p's un-jittered hedge delay: no hedging
// until the partition has hedgeAfterSamples latency samples, then the
// multiple of its observed p99, floored at HedgeFloor. This is the
// value the cluster_hedge_delay_seconds gauge exports — the policy,
// not one draw of it.
func (c *Coordinator) hedgeBaseDelay(p int) time.Duration {
	p99, ok := c.lat[p].p99()
	if !ok {
		return 0
	}
	d := time.Duration(p99 * c.opts.HedgeMultiplier * float64(time.Second))
	if d < c.opts.HedgeFloor {
		d = c.opts.HedgeFloor
	}
	return d
}

// hedgeDelay jitters the base delay for one leg. Jitter is drawn from
// the coordinator's seeded RNG — deterministic across runs with the
// same seed — and de-synchronizes hedges across concurrent requests.
func (c *Coordinator) hedgeDelay(p int) time.Duration {
	d := c.hedgeBaseDelay(p)
	if d == 0 {
		return 0
	}
	c.rngMu.Lock()
	j := c.rng.Float64()
	c.rngMu.Unlock()
	return d + time.Duration(j*0.25*float64(d))
}
