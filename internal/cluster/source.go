package cluster

import (
	"context"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/topk"
)

// cellStore adapts the cells gathered from partitions into a
// compare.CellSource: Problem 2 comparisons run the exact single-table
// math over it, because the union of the partitions' defined cells IS
// the single table's defined cells.
type cellStore struct {
	uni   *Universe
	cells map[core.Triple]float64
}

func newCellStore(uni *Universe, gathered []Cell) *cellStore {
	cs := &cellStore{uni: uni, cells: make(map[core.Triple]float64, len(gathered))}
	for _, c := range gathered {
		cs.cells[core.Triple{GroupKey: c.G, Query: c.Q, Location: c.L}] = c.V
	}
	return cs
}

func (cs *cellStore) Dims() ([]string, []core.Query, []core.Location) {
	return cs.uni.GroupKeys, cs.uni.Queries, cs.uni.Locations
}

func (cs *cellStore) Cell(g string, q core.Query, l core.Location) (float64, bool) {
	v, ok := cs.cells[core.Triple{GroupKey: g, Query: q, Location: l}]
	return v, ok
}

// geom is the coordinator's precomputed geometry for one list family:
// how many global lists the family has, how long each merged list is,
// and which partitions hold fragments of each list. It depends only on
// the sealed universe and the partition count, so it is computed once.
type geom struct {
	numLists, listLen int
	frags             [][]fragInfo
}

// fragInfo names one partition's fragment of a merged list: which
// partition, and how many entries its fragment holds (known up front
// from the routing function, which is what lets the merge stop asking a
// partition that is exhausted without a sentinel round-trip).
type fragInfo struct {
	p, n int
}

// buildGeoms derives the three families' geometry from the universe and
// routing. Mirrors the fragment construction in Node.buildFragments:
// the group family's lists are single-owner (the pair's owner holds all
// |G| members), the query/location families' lists are split across the
// partitions owning the member's pair.
func buildGeoms(uni *Universe, n int) map[compare.Dimension]*geom {
	G, Q, L := uni.counts()

	// owner[qi][li] memoizes the routing for both passes.
	owner := make([][]int, Q)
	for qi, q := range uni.Queries {
		owner[qi] = make([]int, L)
		for li, l := range uni.Locations {
			owner[qi][li] = Route(q, l, n)
		}
	}

	gGeom := &geom{numLists: Q * L, listLen: G, frags: make([][]fragInfo, Q*L)}
	for qi := 0; qi < Q; qi++ {
		for li := 0; li < L; li++ {
			gGeom.frags[qi*L+li] = []fragInfo{{p: owner[qi][li], n: G}}
		}
	}

	// Per-axis fragment sizes: how many queries each partition owns at a
	// given location, and how many locations at a given query.
	qGeom := &geom{numLists: G * L, listLen: Q, frags: make([][]fragInfo, G*L)}
	lGeom := &geom{numLists: G * Q, listLen: L, frags: make([][]fragInfo, G*Q)}
	for li := 0; li < L; li++ {
		counts := make([]int, n)
		for qi := 0; qi < Q; qi++ {
			counts[owner[qi][li]]++
		}
		var fis []fragInfo
		for p, c := range counts {
			if c > 0 {
				fis = append(fis, fragInfo{p: p, n: c})
			}
		}
		for gi := 0; gi < G; gi++ {
			qGeom.frags[gi*L+li] = fis
		}
	}
	for qi := 0; qi < Q; qi++ {
		counts := make([]int, n)
		for li := 0; li < L; li++ {
			counts[owner[qi][li]]++
		}
		var fis []fragInfo
		for p, c := range counts {
			if c > 0 {
				fis = append(fis, fragInfo{p: p, n: c})
			}
		}
		for gi := 0; gi < G; gi++ {
			lGeom.frags[gi*Q+qi] = fis
		}
	}

	return map[compare.Dimension]*geom{
		compare.ByGroup:    gGeom,
		compare.ByQuery:    qGeom,
		compare.ByLocation: lGeom,
	}
}

// fragState is the per-request scan cursor into one partition's
// fragment of one merged list.
type fragState struct {
	p         int           // partition
	remaining int           // entries not yet fetched
	pos       int           // next fetch offset in the fragment
	buf       []index.Entry // fetched but not yet merged
	failed    bool          // partition lost for this request
}

// mergedList is the lazily merged view of one global list: entries
// already merged in canonical order, plus the live fragment cursors.
type mergedList struct {
	entries []index.Entry
	frags   []fragState
	inited  bool
}

// scatterSource is the per-request topk.ListSource the coordinator's
// distributed TA runs over. Sorted access (At) streams blocks from each
// partition's fragment and k-way merges them in the canonical entry
// order, so position p of merged list i is byte-identical to position p
// of the single index's list i. Random access (Find) scatters one
// OpLookup per partition and caches the merged row. All methods run on
// the request goroutine — topk algorithms are sequential — so no locks.
//
// A fragment whose partition dies mid-scan is marked failed and the
// request's run context is canceled (via reqCtx.markDead); the topk run
// then unwinds with a context error and the coordinator degrades.
type scatterSource struct {
	rc   *reqCtx
	ctx  context.Context
	dim  compare.Dimension
	g    *geom
	rows map[string]map[int]float64
	list []mergedList
}

func newScatterSource(ctx context.Context, rc *reqCtx, dim compare.Dimension, g *geom) *scatterSource {
	return &scatterSource{
		rc:   rc,
		ctx:  ctx,
		dim:  dim,
		g:    g,
		rows: make(map[string]map[int]float64),
		list: make([]mergedList, g.numLists),
	}
}

func (s *scatterSource) NumLists() int { return s.g.numLists }
func (s *scatterSource) ListLen() int  { return s.g.listLen }

func (s *scatterSource) At(i, pos int) (index.Entry, bool) {
	if i < 0 || i >= len(s.list) || pos < 0 || pos >= s.g.listLen {
		return index.Entry{}, false
	}
	ml := &s.list[i]
	if !ml.inited {
		for _, fi := range s.g.frags[i] {
			ml.frags = append(ml.frags, fragState{p: fi.p, remaining: fi.n})
		}
		ml.inited = true
	}
	for len(ml.entries) <= pos {
		if !s.mergeOne(i, ml) {
			return index.Entry{}, false
		}
	}
	return ml.entries[pos], true
}

// mergeOne advances merged list i by one entry: refill any empty
// fragment buffers, then pop the minimum head in canonical order.
// Returns false when every live fragment is exhausted.
func (s *scatterSource) mergeOne(i int, ml *mergedList) bool {
	best := -1
	for fi := range ml.frags {
		f := &ml.frags[fi]
		if f.failed {
			continue
		}
		if len(f.buf) == 0 && f.remaining > 0 {
			reply, err := s.rc.call(s.ctx, f.p, Call{
				Op:    OpScan,
				Dim:   s.dim,
				List:  i,
				Start: f.pos,
				Count: min(f.remaining, s.rc.scanBlock),
			})
			if err != nil {
				f.failed = true
				continue
			}
			f.buf = reply.Entries
			f.pos += len(reply.Entries)
			f.remaining -= len(reply.Entries)
			if len(f.buf) == 0 {
				f.remaining = 0 // defensive: shorter fragment than geometry
				continue
			}
		}
		if len(f.buf) == 0 {
			continue
		}
		if best < 0 || topk.LessEntries(f.buf[0], ml.frags[best].buf[0]) {
			best = fi
		}
	}
	if best < 0 {
		return false
	}
	f := &ml.frags[best]
	ml.entries = append(ml.entries, f.buf[0])
	f.buf = f.buf[1:]
	return true
}

// Find merges the key's row across partitions on first access and
// caches it: one scatter answers every subsequent random access for the
// key, which is exactly the access pattern TA's random-access phase
// generates.
func (s *scatterSource) Find(i int, key string) (float64, bool) {
	row, ok := s.rows[key]
	if !ok {
		row = make(map[int]float64)
		for p := 0; p < s.rc.n; p++ {
			reply, err := s.rc.call(s.ctx, p, Call{Op: OpLookup, Dim: s.dim, Key: key})
			if err != nil {
				continue // markDead already canceled the run
			}
			for _, lv := range reply.Row {
				row[lv.List] = lv.Value
			}
		}
		s.rows[key] = row
	}
	v, ok := row[i]
	return v, ok
}
