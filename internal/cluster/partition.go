// Package cluster partitions the unfairness table by (query, location)
// across N engine instances and serves Problems 1–3 through a
// scatter-gather Coordinator: distributed TA over per-partition sorted
// access for quantify, a gathered cell store for compare, and
// owner-routing for page-local mitigate. The robustness machinery is
// the point — per-leg deadline budgets carved from the request
// deadline, deterministic-jitter hedging against slow partitions,
// backoff retries for transient leg errors, generation pins for
// all-or-nothing snapshot consistency, and graceful degradation to a
// typed partial result when a partition is gone. The Transport boundary
// is simulated-RPC today (in-process function calls); a later network
// split is a transport swap, not a rewrite.
package cluster

import (
	"hash/fnv"

	"fairjob/internal/core"
)

// Route returns the partition owning the (q, l) pair, by rendezvous
// (highest-random-weight) hashing: each partition scores the pair with
// an independent hash and the highest score wins. Routing is a pure
// function of the pair and the partition count — every node and the
// coordinator agree without coordination — and changing n by one moves
// only ~1/n of the pairs, which is what makes a later resize an
// incremental migration rather than a full reshuffle.
func Route(q core.Query, l core.Location, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	var buf [20]byte
	for p := 0; p < n; p++ {
		h := fnv.New64a()
		h.Write([]byte(q))
		h.Write([]byte{0x1f})
		h.Write([]byte(l))
		h.Write([]byte{0x1f})
		b := buf[:0]
		for v := p; ; v /= 10 {
			b = append(b, byte('0'+v%10))
			if v < 10 {
				break
			}
		}
		h.Write(b)
		if s := h.Sum64(); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// Universe is the full table's dimension metadata, shared by every node
// and the coordinator. Partitioning splits the CELLS by (query,
// location) ownership, but the dimensions stay global: a partition's
// list fragments are completed against the universe (a group defined
// only on another partition's pairs still appears, at value 0, in this
// partition's fragments), which is what preserves the index completion
// invariant the Fagin algorithms rely on. The universe is sealed at
// cluster construction; refreshes may change cell values but not
// dimension membership.
type Universe struct {
	// GroupKeys, Queries and Locations are the sorted dimensions, in
	// exactly the order the index families iterate them — list ids are
	// derived from positions in these slices.
	GroupKeys []string
	Queries   []core.Query
	Locations []core.Location

	groups map[string]core.Group
}

// NewUniverse freezes tbl's dimension metadata.
func NewUniverse(tbl *core.Table) *Universe {
	u := &Universe{
		Queries:   tbl.Queries(),
		Locations: tbl.Locations(),
		groups:    make(map[string]core.Group),
	}
	for _, g := range tbl.Groups() {
		key := g.Key()
		u.GroupKeys = append(u.GroupKeys, key)
		u.groups[key] = g
	}
	return u
}

// Group resolves a canonical group key recorded in the universe.
func (u *Universe) Group(key string) (core.Group, bool) {
	g, ok := u.groups[key]
	return g, ok
}

// Members returns the universe's member count for one list family's
// member dimension: groups for the I(q,l) family, queries for I(g,l),
// locations for I(g,q).
func (u *Universe) counts() (g, q, l int) {
	return len(u.GroupKeys), len(u.Queries), len(u.Locations)
}

// SplitTable partitions tbl's cells by (query, location) ownership into
// n sub-tables. Every defined cell lands on exactly one partition —
// Route(q, l, n) — so the union of the sub-tables is the original
// table, the invariant behind coordinator≡single-engine equivalence.
func SplitTable(tbl *core.Table, n int) []*core.Table {
	subs := make([]*core.Table, n)
	for p := range subs {
		subs[p] = core.NewTable()
	}
	tbl.Range(func(tr core.Triple, v float64) {
		g, ok := tbl.GroupByKey(tr.GroupKey)
		if !ok {
			return // unreachable: every cell's group is recorded
		}
		subs[Route(tr.Query, tr.Location, n)].Set(g, tr.Query, tr.Location, v)
	})
	return subs
}

// SplitRankings partitions marketplace pages by the same (query,
// location) routing as the cells, so the node owning a page's cells
// also serves its mitigate requests.
func SplitRankings(rankings []*core.MarketplaceRanking, n int) [][]*core.MarketplaceRanking {
	subs := make([][]*core.MarketplaceRanking, n)
	for _, r := range rankings {
		if r == nil {
			continue
		}
		p := Route(r.Query, r.Location, n)
		subs[p] = append(subs[p], r)
	}
	return subs
}
