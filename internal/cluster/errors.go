package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// This file defines the typed failure modes of the scatter-gather path,
// extending the serve-layer contract (DESIGN.md §10) across partitions:
// every way a fan-out can fail is a distinguishable error matched with
// errors.Is, and a degraded answer is an answer plus a typed error — a
// caller that ignores ErrPartialResult gets the best available data, a
// caller that checks it knows exactly which partitions are missing.

var (
	// ErrPartialResult marks a degraded response: one or more partitions
	// were unreachable past their retry and deadline budgets, and the
	// answer was recomputed over the surviving partitions' data. The
	// concrete error is a *PartialResultError naming the missing
	// partitions.
	ErrPartialResult = errors.New("cluster: partial result")
	// ErrPartitionUnavailable reports that a partition could not be
	// reached: the transport refused the send (a downed or flapping
	// partition) or the coordinator already marked it dead for this
	// request.
	ErrPartitionUnavailable = errors.New("cluster: partition unavailable")
	// ErrGenMismatch reports that a partition's snapshot generation no
	// longer matches the generation pinned at the start of the request —
	// the all-or-nothing batch pin. It is never retried against the same
	// pin (retrying cannot help); the coordinator re-pins and restarts
	// the request once.
	ErrGenMismatch = errors.New("cluster: generation pin mismatch")
)

// PartialResultError is the concrete ErrPartialResult: which partitions'
// data is missing from the answer, out of how many, and the underlying
// failure (if the degraded recompute itself also failed). It implements
// RequestOutcome so serve.Outcome classifies degraded responses as
// "partial" in metrics and wide events.
type PartialResultError struct {
	// Missing holds the ids of the partitions absent from the answer,
	// ascending.
	Missing []int
	// Partitions is the fan-out width (total partition count).
	Partitions int
	// Cause is the degraded recompute's own error, when it too failed;
	// nil when the surviving partitions produced a usable answer.
	Cause error
}

func (e *PartialResultError) Error() string {
	msg := fmt.Sprintf("cluster: partial result: missing partition(s) %s of %d",
		e.MissingList(), e.Partitions)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Is matches the ErrPartialResult sentinel.
func (e *PartialResultError) Is(target error) bool { return target == ErrPartialResult }

// Unwrap exposes the degraded recompute's own failure, when any.
func (e *PartialResultError) Unwrap() error { return e.Cause }

// RequestOutcome implements the serve.Outcome hook: degraded responses
// are "partial" in the wide-event outcome vocabulary.
func (e *PartialResultError) RequestOutcome() string { return "partial" }

// MissingList renders the missing partition ids as a comma-joined
// string — the wide event's missing_partitions field.
func (e *PartialResultError) MissingList() string {
	ids := make([]string, len(e.Missing))
	for i, p := range e.Missing {
		ids[i] = strconv.Itoa(p)
	}
	return strings.Join(ids, ",")
}
