package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// Options configures a Coordinator.
type Options struct {
	// Partitions is the fan-out width; 0 or 1 selects a single partition
	// (the coordinator then routes everything through one node's engine,
	// which is how the overhead benchmark isolates the scatter-gather
	// tax from the partitioning itself).
	Partitions int
	// Transport overrides the default in-process transport — chaos and
	// gen-pin tests wrap the local transport with hooks here. Nil uses
	// NewLocalTransport over the coordinator's own nodes.
	Transport Transport
	// Obs, Tracer and Log mirror serve.Options: nil Obs gives the
	// coordinator a private registry, nil Tracer disables tracing, nil
	// Log disables wide events. Log is re-stamped with component
	// "cluster".
	Obs    *obs.Registry
	Tracer *obs.Tracer
	Log    *obs.Logger
	// DefaultDeadline bounds requests that carry no deadline of their
	// own; 0 leaves them unbounded.
	DefaultDeadline time.Duration
	// LegFraction is the share of the request's remaining deadline one
	// fan-out leg may spend (default 0.5): a failed first leg leaves
	// budget for a retry instead of burning the whole request.
	LegFraction float64
	// MinLegBudget floors the per-leg budget (default 10ms) so a request
	// arriving nearly dead still gives its legs a usable slice.
	MinLegBudget time.Duration
	// HedgeFloor is the minimum hedge delay (default 1ms): never
	// duplicate a leg faster than this, no matter how fast the partition
	// has been.
	HedgeFloor time.Duration
	// HedgeMultiplier scales the partition's observed p99 into the hedge
	// delay (default 3): a leg exceeding HedgeMultiplier×p99 is assumed
	// stuck and a duplicate is launched.
	HedgeMultiplier float64
	// ScanBlock is the sorted-access block size per OpScan (default 32).
	ScanBlock int
	// Retry is the per-leg backoff policy for transient errors. The
	// zero value retries twice with the serve defaults; the coordinator
	// installs its own Abort classifier for gen-pin mismatches on top.
	Retry serve.RetryPolicy
	// Seed seeds the deterministic hedge jitter.
	Seed uint64
	// NodeCacheSize is passed through to every node engine's result
	// cache (0 = engine default, negative disables).
	NodeCacheSize int
}

// hedgeAfterSamples is how many latency samples a partition must have
// before the coordinator trusts its p99 enough to hedge against it.
const hedgeAfterSamples = 8

// latTracker is a fixed ring of recent leg latencies for one partition,
// from which the hedge delay's p99 is derived.
type latTracker struct {
	mu    sync.Mutex
	ring  [64]float64
	count int
	// p99 cache: the sorted-quantile computation runs at most once per
	// p99RecomputeEvery samples, not once per leg — the hedge delay does
	// not need sample-level freshness, it needs to be within an epoch of
	// the partition's behavior.
	p99v  float64
	p99at int
}

// p99RecomputeEvery is how many new samples may arrive before the cached
// p99 is recomputed.
const p99RecomputeEvery = 8

func (t *latTracker) record(seconds float64) {
	t.mu.Lock()
	t.ring[t.count%len(t.ring)] = seconds
	t.count++
	t.mu.Unlock()
}

// p99 returns the tracked 99th percentile in seconds and whether enough
// samples exist to trust it.
func (t *latTracker) p99() (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count < hedgeAfterSamples {
		return 0, false
	}
	if t.p99at == 0 || t.count-t.p99at >= p99RecomputeEvery {
		m := t.count
		if m > len(t.ring) {
			m = len(t.ring)
		}
		buf := make([]float64, m)
		copy(buf, t.ring[:m])
		sort.Float64s(buf)
		idx := (99*m + 99) / 100 // ceil(0.99·m)
		if idx > m {
			idx = m
		}
		t.p99v = buf[idx-1]
		t.p99at = t.count
	}
	return t.p99v, true
}

type clusterMetrics struct {
	legs              *obs.Counter
	hedges            *obs.Counter
	hedgeWins         *obs.Counter
	hedgeLoserCancels *obs.Counter
	legRetries        *obs.Counter
	partials          *obs.Counter
	repins            *obs.Counter
	requestSeconds    *obs.Histogram

	// Per-partition RED series, label-resolved once at construction so
	// the leg hot path indexes a slice instead of formatting a name:
	// rate (cluster_partition_legs_total{partition=...}), errors
	// (cluster_partition_leg_errors_total{partition=...}) and duration
	// (cluster_leg_seconds{partition=...}). The adaptive hedge delay
	// rides along as the cluster_hedge_delay_seconds{partition=...}
	// gauge, registered as a GaugeFunc over the live policy.
	partLegs       []*obs.Counter
	partLegErrors  []*obs.Counter
	partLegSeconds []*obs.Histogram
}

// Coordinator serves Problems 1–3 over a (query, location)-partitioned
// cluster by scatter-gather: distributed TA for quantify, a gathered
// cell store for compare, owner routing for mitigate. See the package
// comment and DESIGN.md §14 for the fault model.
type Coordinator struct {
	n         int
	uni       *Universe
	nodes     []*Node
	subRank   [][]*core.MarketplaceRanking
	transport Transport
	geoms     map[compare.Dimension]*geom

	opts     Options
	legRetry serve.RetryPolicy
	reg      *obs.Registry
	tracer   *obs.Tracer
	log      *obs.Logger
	met      clusterMetrics

	lat []latTracker

	rngMu sync.Mutex
	rng   *stats.RNG

	// gens caches the last generation seen per partition, seeding the
	// next request's pins so a pin mismatch is the exception (a refresh
	// landed), not the steady state.
	gens []genCell

	degMu sync.Mutex
	deg   map[string]*serve.Engine

	hasRankings bool
	pages       [][2]string
}

// genCell wraps a uint64 with the tiny lock the coordinator needs; a
// plain atomic would do, but the struct keeps gens copyable in tests.
type genCell struct {
	mu  sync.Mutex
	gen uint64
}

func (g *genCell) load() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

func (g *genCell) store(v uint64) {
	g.mu.Lock()
	g.gen = v
	g.mu.Unlock()
}

// New builds a coordinator over tbl split into opts.Partitions
// partitions, with no marketplace pages (Problem 3 requests will report
// the usual "no marketplace pages" error).
func New(tbl *core.Table, opts Options) *Coordinator {
	return NewWithRankings(tbl, nil, nil, opts)
}

// NewWithRankings builds a coordinator whose partitions also own the
// marketplace pages routed to them, enabling Problem 3.
func NewWithRankings(tbl *core.Table, schema *core.Schema, rankings []*core.MarketplaceRanking, opts Options) *Coordinator {
	if opts.Partitions <= 0 {
		opts.Partitions = 1
	}
	if opts.LegFraction <= 0 || opts.LegFraction > 1 {
		opts.LegFraction = 0.5
	}
	if opts.MinLegBudget <= 0 {
		opts.MinLegBudget = 10 * time.Millisecond
	}
	if opts.HedgeFloor <= 0 {
		opts.HedgeFloor = time.Millisecond
	}
	if opts.HedgeMultiplier <= 0 {
		opts.HedgeMultiplier = 3
	}
	if opts.ScanBlock <= 0 {
		opts.ScanBlock = 32
	}

	n := opts.Partitions
	uni := NewUniverse(tbl)
	subs := SplitTable(tbl, n)
	subRank := SplitRankings(rankings, n)
	nodes := make([]*Node, n)
	for p := 0; p < n; p++ {
		nodes[p] = NewNode(p, n, uni, subs[p], schema, subRank[p], NodeOptions{CacheSize: opts.NodeCacheSize})
	}
	transport := opts.Transport
	if transport == nil {
		transport = NewLocalTransport(nodes)
	}

	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		n:           n,
		uni:         uni,
		nodes:       nodes,
		subRank:     subRank,
		transport:   transport,
		geoms:       buildGeoms(uni, n),
		opts:        opts,
		legRetry:    opts.Retry,
		reg:         reg,
		tracer:      opts.Tracer,
		log:         opts.Log.Component("cluster"),
		lat:         make([]latTracker, n),
		rng:         stats.NewRNG(opts.Seed),
		gens:        make([]genCell, n),
		deg:         make(map[string]*serve.Engine),
		hasRankings: len(rankings) > 0,
	}
	c.met = clusterMetrics{
		legs:              reg.Counter("cluster_fanout_legs_total"),
		hedges:            reg.Counter("cluster_hedges_total"),
		hedgeWins:         reg.Counter("cluster_hedge_wins_total"),
		hedgeLoserCancels: reg.Counter("cluster_hedge_loser_cancels_total"),
		legRetries:        reg.Counter("cluster_leg_retries_total"),
		partials:          reg.Counter("cluster_partial_results_total"),
		repins:            reg.Counter("cluster_repins_total"),
		requestSeconds:    reg.Histogram("cluster_request_seconds", obs.LatencyBuckets()),
		partLegs:          make([]*obs.Counter, n),
		partLegErrors:     make([]*obs.Counter, n),
		partLegSeconds:    make([]*obs.Histogram, n),
	}
	for p := 0; p < n; p++ {
		lbl := strconv.Itoa(p)
		c.met.partLegs[p] = reg.Counter(obs.Name("cluster_partition_legs_total", "partition", lbl))
		c.met.partLegErrors[p] = reg.Counter(obs.Name("cluster_partition_leg_errors_total", "partition", lbl))
		c.met.partLegSeconds[p] = reg.Histogram(obs.Name("cluster_leg_seconds", "partition", lbl), obs.LatencyBuckets())
		p := p
		reg.GaugeFunc(obs.Name("cluster_hedge_delay_seconds", "partition", lbl), func() float64 {
			return c.hedgeBaseDelay(p).Seconds()
		})
	}
	for p := range nodes {
		c.gens[p].store(nodes[p].Gen())
	}
	if c.hasRankings {
		seen := make(map[[2]string]bool)
		for _, r := range rankings {
			if r == nil {
				continue
			}
			key := [2]string{string(r.Query), string(r.Location)}
			if !seen[key] {
				seen[key] = true
				c.pages = append(c.pages, key)
			}
		}
		sort.Slice(c.pages, func(i, j int) bool {
			if c.pages[i][0] != c.pages[j][0] {
				return c.pages[i][0] < c.pages[j][0]
			}
			return c.pages[i][1] < c.pages[j][1]
		})
	}
	return c
}

// Partitions returns the fan-out width.
func (c *Coordinator) Partitions() int { return c.n }

// Node returns partition p's node, for refresh-driven tests and
// maintenance.
func (c *Coordinator) Node(p int) *Node { return c.nodes[p] }

// Registry returns the coordinator's metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Target surface (loadgen workloads drive a coordinator exactly like an
// engine): dimension members, page inventory, ranking availability.

// GroupKeys returns the universe's canonical group keys, sorted.
func (c *Coordinator) GroupKeys() []string { return c.uni.GroupKeys }

// Queries returns the universe's queries, sorted.
func (c *Coordinator) Queries() []core.Query { return c.uni.Queries }

// Locations returns the universe's locations, sorted.
func (c *Coordinator) Locations() []core.Location { return c.uni.Locations }

// HasRankings reports whether any partition carries marketplace pages.
func (c *Coordinator) HasRankings() bool { return c.hasRankings }

// Pages returns the distinct (query, location) pages across all
// partitions, sorted.
func (c *Coordinator) Pages() [][2]string { return c.pages }

// Do answers one request without a caller context.
func (c *Coordinator) Do(req serve.Request) serve.Response {
	return c.DoCtx(context.Background(), req)
}

// DoCtx answers one request by scatter-gather. The request's deadline
// (or the coordinator default) bounds the whole fan-out; each leg gets
// its own slice of whatever remains when it starts. A partition lost
// past its retry budget degrades the answer to the surviving
// partitions' data, reported as a *PartialResultError; a generation pin
// flip re-pins and restarts the request once.
func (c *Coordinator) DoCtx(ctx context.Context, req serve.Request) serve.Response {
	start := time.Now()
	tr := c.tracer.Start(req.Problem.String())
	if err := serve.ValidateRequest(req); err != nil {
		tr.Annotate("err", err.Error())
		tr.SetOutcome("error")
		c.tracer.Finish(tr)
		resp := serve.Response{Err: err}
		c.emit(req, resp, tr, "error", time.Since(start), nil)
		c.tracer.Release(tr)
		return resp
	}
	tr.Mark("validate")
	if d := req.Deadline; d > 0 || c.opts.DefaultDeadline > 0 {
		if d <= 0 {
			d = c.opts.DefaultDeadline
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
		// Nodes must not re-apply the deadline to their slice of the work;
		// the fan-out context already carries it.
		req.Deadline = 0
	}

	st := newScatterStats(c.n)
	var resp serve.Response
	var rc *reqCtx
	for attempt := 0; ; attempt++ {
		rc = c.newReqCtx(st, tr)
		// Each pinned attempt is a span: the fan-out legs nest under it,
		// so a re-pinned request's waterfall shows both generations' work.
		att := tr.StartSpan("scatter")
		if attempt == 0 {
			att.SetKind("primary")
		} else {
			att.SetKind("repin")
		}
		rc.span = att
		resp = c.run(ctx, rc, req, tr)
		if rc.genFlipped() && attempt == 0 {
			// A partition refreshed under the pin: re-pin to the new
			// generations and restart so the answer is single-generation.
			c.met.repins.Inc()
			tr.Mark("repin")
			att.SetOutcome("gen-flip")
			att.Finish()
			continue
		}
		if len(rc.missing()) > 0 {
			att.SetOutcome("degraded")
		} else {
			att.SetOutcome(serve.Outcome(resp.Err))
		}
		att.Finish()
		break
	}
	if missing := rc.missing(); len(missing) > 0 {
		if ctx.Err() == nil {
			tr.Mark("degrade")
			tr.Annotate("missing", intsList(missing))
			// The degraded recompute is its own span; the survivors' cells
			// gather and the local engine's work nest under it.
			ds := tr.StartSpan("recompute")
			ds.SetKind("recompute")
			rc.span = ds
			resp = c.degrade(ctx, rc, req, missing)
			ds.SetOutcome(serve.Outcome(resp.Err))
			ds.Finish()
			c.met.partials.Inc()
		} else if resp.Err == nil {
			// The request deadline died with partitions already lost,
			// before a degraded recompute could run: surface the typed
			// context error, never a silent empty answer.
			resp.Err = typedCtxErr(ctx, ctx.Err())
		}
	}

	lat := time.Since(start)
	outcome := serve.Outcome(resp.Err)
	tr.SetOutcome(outcome)
	c.tracer.Finish(tr)
	c.met.requestSeconds.Observe(lat.Seconds())
	c.emit(req, resp, tr, outcome, lat, st)
	c.tracer.Release(tr)
	return resp
}

// run executes one pinned attempt of the request.
func (c *Coordinator) run(ctx context.Context, rc *reqCtx, req serve.Request, tr *obs.Trace) serve.Response {
	// Single partition, or a page-local mitigate: one leg to the owner.
	// Mitigation uses only the page's own ranking and the shared schema,
	// both of which live on the pair's owner, so the owner's local answer
	// IS the global answer.
	if c.n == 1 || req.Problem == serve.Mitigate {
		p := 0
		if c.n > 1 {
			p = Route(core.Query(req.Query), core.Location(req.Location), c.n)
		}
		reply, err := rc.call(ctx, p, Call{Op: OpServe, Req: req})
		if err != nil {
			return serve.Response{Err: err}
		}
		return reply.Resp
	}
	switch req.Problem {
	case serve.Quantify:
		return c.runQuantify(ctx, rc, req, tr)
	case serve.Compare:
		return c.runCompare(ctx, rc, req)
	default:
		return serve.Response{Err: fmt.Errorf("serve: unknown problem %v", req.Problem)}
	}
}

// runQuantify is the distributed Problem 1: the same topk algorithm the
// single engine runs, over a ListSource whose sorted accesses stream
// from partition fragments and merge in canonical order, and whose
// random accesses scatter one row lookup per partition. Because the
// merged lists are byte-identical to the single index's lists, the
// algorithm's every decision — thresholds, round count, early
// termination — is identical, which is the coordinator≡engine
// equivalence the tests pin.
func (c *Coordinator) runQuantify(ctx context.Context, rc *reqCtx, req serve.Request, tr *obs.Trace) serve.Response {
	tr.Annotate("algo", req.Algorithm.String())
	geo := c.geoms[req.Dim]
	if geo == nil || geo.numLists == 0 || geo.listLen == 0 {
		return serve.Response{Err: fmt.Errorf("serve: snapshot has no %v lists (empty table?)", req.Dim)}
	}
	// A fragment failure cancels the run context: the topk algorithm
	// unwinds at its next checkpoint instead of grinding on data that can
	// no longer be completed, and the coordinator degrades.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	rc.setOnFail(cancel)

	var src topk.ListSource = newScatterSource(runCtx, rc, req.Dim, geo)
	if req.Candidates != nil {
		restricted, err := topk.NewFilteredLists(src, req.Candidates)
		if err != nil {
			if len(rc.missing()) > 0 {
				return serve.Response{} // degrade recomputes from survivors
			}
			return serve.Response{Err: err}
		}
		src = restricted
	}
	resp := serve.Response{Gen: rc.pinnedGen()}
	resp.Results, resp.Stats, resp.Err = topk.TopKCtxWith(runCtx, src, req.K, req.Direction, req.Algorithm, nil)
	// One summary span per streamed-from partition, instead of a span per
	// scan round-trip (see MaxChildSpans): the rpcs counts they carry are
	// the per-request evidence for the O(lists) scan-batching problem.
	rc.scanSummary()
	if len(rc.missing()) > 0 {
		// A partition was lost mid-run, so whatever the algorithm
		// concluded — an error, or a "clean" answer over lists that went
		// silently short — is poisoned: drop it and let the degraded
		// recompute produce the answer from the survivors.
		return serve.Response{}
	}
	if resp.Err == nil {
		// The algorithm may finish "cleanly" over lists a failed leg cut
		// short (a dying request makes every fragment look exhausted); a
		// run with any leg failure and no degradation path is a failure,
		// never a silently truncated answer.
		resp.Err = rc.firstLegErr()
	}
	resp.Err = typedCtxErr(ctx, resp.Err)
	return resp
}

// runCompare is the distributed Problem 2: gather every partition's
// cells (the union is exactly the single table's defined cells) and run
// the same comparison walk over the gathered store.
func (c *Coordinator) runCompare(ctx context.Context, rc *reqCtx, req serve.Request) serve.Response {
	if err := ctx.Err(); err != nil {
		return serve.Response{Err: typedCtxErr(ctx, err)}
	}
	var cells []Cell
	for p := 0; p < c.n; p++ {
		reply, err := rc.call(ctx, p, Call{Op: OpCells})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return serve.Response{Err: typedCtxErr(ctx, err)}
			}
			continue // marked dead; degrade recomputes from survivors
		}
		cells = append(cells, reply.Cells...)
	}
	if len(rc.missing()) > 0 {
		return serve.Response{}
	}
	if err := rc.firstLegErr(); err != nil {
		// Same contract as quantify: a gather with failed legs and no
		// degradation path must not compute over silently partial cells.
		return serve.Response{Err: typedCtxErr(ctx, err)}
	}
	var cmp *compare.Comparer
	if req.DefinedOnly {
		cmp = compare.NewDefinedOnlyFromCells(newCellStore(c.uni, cells))
	} else {
		cmp = compare.NewFromCells(newCellStore(c.uni, cells))
	}
	resp := serve.Response{Gen: rc.pinnedGen()}
	switch req.Of {
	case compare.ByGroup:
		resp.Comparison, resp.Err = cmp.Groups(req.R1, req.R2, req.By, compare.Scope{})
	case compare.ByQuery:
		resp.Comparison, resp.Err = cmp.Queries(core.Query(req.R1), core.Query(req.R2), req.By, compare.Scope{})
	case compare.ByLocation:
		resp.Comparison, resp.Err = cmp.Locations(core.Location(req.R1), core.Location(req.R2), req.By, compare.Scope{})
	}
	return resp
}

// degrade recomputes the request over the surviving partitions' data
// and wraps the answer in a *PartialResultError naming what is missing.
// The degraded engine is cached by (missing set, survivor generations):
// a burst of requests during an outage builds the merged table once.
func (c *Coordinator) degrade(ctx context.Context, rc *reqCtx, req serve.Request, missing []int) serve.Response {
	eng, err := c.degradedEngine(ctx, rc, missing)
	if err != nil {
		return serve.Response{Err: &PartialResultError{
			Missing:    missing,
			Partitions: c.n,
			Cause:      err,
		}}
	}
	// The recompute span rides the context so the degraded engine joins
	// the request's trace as an "engine" child instead of going dark.
	resp := eng.DoCtx(obs.ContextWithSpan(ctx, rc.span), req)
	resp.Err = &PartialResultError{
		Missing:    missing,
		Partitions: c.n,
		Cause:      resp.Err,
	}
	return resp
}

// degradedEngine gathers the survivors' cells into one merged table and
// serves it through a cache-less local engine.
func (c *Coordinator) degradedEngine(ctx context.Context, rc *reqCtx, missing []int) (*serve.Engine, error) {
	dead := make(map[int]bool, len(missing))
	for _, p := range missing {
		dead[p] = true
	}
	key := "miss:" + intsList(missing)
	var rankings []*core.MarketplaceRanking
	for p := 0; p < c.n; p++ {
		if dead[p] {
			continue
		}
		key += "|" + strconv.Itoa(p) + ":" + strconv.FormatUint(rc.pinFor(p), 10)
		rankings = append(rankings, c.subRank[p]...)
	}
	c.degMu.Lock()
	eng, ok := c.deg[key]
	c.degMu.Unlock()
	if ok {
		return eng, nil
	}

	tbl := core.NewTable()
	for p := 0; p < c.n; p++ {
		if dead[p] {
			continue
		}
		reply, err := rc.call(ctx, p, Call{Op: OpCells})
		if err != nil {
			// A partition lost between the fan-out and the recompute: the
			// degraded answer cannot be built this round.
			return nil, err
		}
		for _, cell := range reply.Cells {
			g, ok := c.uni.Group(cell.G)
			if !ok {
				continue // unreachable: sealed universe
			}
			tbl.Set(g, cell.Q, cell.L, cell.V)
		}
	}
	eng = serve.NewEngine(serve.NewSnapshotWithRankings(tbl, c.nodes[0].schema, rankings), serve.Options{
		Workers:   1,
		CacheSize: -1, // keyed cache would collide across missing-sets; the coordinator caches the engine instead
	})
	c.degMu.Lock()
	c.deg[key] = eng
	c.degMu.Unlock()
	return eng, nil
}

// emit assembles the coordinator's wide event, mirroring the engine's
// field layout (DESIGN.md §9) plus the fan-out fields: partitions is
// the cluster width, missing_partitions names the holes in a partial
// answer, and the scatter cost block (rpcs, hedges_fired, hedges_won,
// leg_retries, slowest_partition) is the one-line summary of what the
// trace's span tree shows leg by leg.
func (c *Coordinator) emit(req serve.Request, resp serve.Response, tr *obs.Trace, outcome string, lat time.Duration, st *scatterStats) {
	if c.log == nil {
		return
	}
	ev := obs.Event{
		Outcome:    outcome,
		LatencyNS:  lat.Nanoseconds(),
		TraceID:    tr.JoinID(),
		Gen:        resp.Gen,
		Problem:    req.Problem.String(),
		Partitions: c.n,
	}
	if st != nil {
		ev.RPCs = st.rpcs.Load()
		ev.HedgesFired = st.hedgesFired.Load()
		ev.HedgesWon = st.hedgesWon.Load()
		ev.LegRetries = st.legRetries.Load()
		ev.SlowestPartition = st.slowest()
	}
	var pres *PartialResultError
	if errors.As(resp.Err, &pres) {
		ev.MissingPartitions = pres.MissingList()
	}
	if resp.Err != nil {
		ev.Err = resp.Err.Error()
	}
	switch req.Problem {
	case serve.Quantify:
		ev.Dim = req.Dim.String()
		ev.K = req.K
		ev.Direction = req.Direction.String()
		ev.Algo = req.Algorithm.String()
		ev.SortedAccesses = resp.Stats.SortedAccesses
		ev.RandomAccesses = resp.Stats.RandomAccesses
		ev.Rounds = resp.Stats.Rounds
	case serve.Compare:
		ev.Dim = req.Of.String()
		ev.R1, ev.R2 = req.R1, req.R2
		ev.By = req.By.String()
		if resp.Comparison != nil {
			ev.CompareAccesses = resp.Comparison.Accesses
		}
	case serve.Mitigate:
		ev.Mitigator = req.Mitigator.String()
		ev.R1, ev.R2 = req.Group, req.Query
		ev.By = req.Location
		if resp.Mitigation != nil {
			ev.DeltaUnfairness = resp.Mitigation.Delta()
		}
	}
	c.log.Log(ev)
}

// intsList renders partition ids as a comma-joined string.
func intsList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// typedCtxErr maps a context failure of the REQUEST context into the
// serve-layer typed sentinels, leaving every other error as-is. Leg
// budget expiry deliberately stays a raw context error (retryable at
// the leg layer); only the request's own death becomes typed.
func typedCtxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	switch cerr := ctx.Err(); {
	case errors.Is(cerr, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", serve.ErrDeadlineExceeded, err)
	case errors.Is(cerr, context.Canceled):
		return fmt.Errorf("%w: %v", serve.ErrCanceled, err)
	}
	return err
}
