//go:build faultinject

package cluster_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairjob/internal/cluster"
	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/faultinject"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// The partition chaos suite only builds with -tags faultinject
// (scripts/check.sh runs it under -race). Each test arms one of the
// cluster failpoints keyed by partition id, drives the coordinator
// through the fault, asserts the typed degradation contract — a downed
// partition yields a *PartialResultError naming exactly the missing
// partitions, never a hang or a whole-request failure — and then clears
// the fault and asserts byte-identical convergence with a standalone
// engine.

// chaosFixture builds a coordinator over n partitions plus the
// reference single engine, both cache-less.
func chaosFixture(t *testing.T, n int, opts cluster.Options) (*cluster.Coordinator, *serve.Engine, *core.Table) {
	t.Helper()
	tbl := clusterTable(stats.NewRNG(21), 6, 5, 4, 0.15)
	opts.Partitions = n
	opts.NodeCacheSize = -1
	coord := cluster.New(tbl, opts)
	single := serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{CacheSize: -1, Workers: 1})
	return coord, single, tbl
}

// chaosRequests is a compact all-problem probe: quantify on each
// dimension plus a compare.
func chaosRequests(tbl *core.Table) []serve.Request {
	var gks []string
	for _, g := range tbl.Groups() {
		gks = append(gks, g.Key())
	}
	return []serve.Request{
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 3, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByQuery, K: 2, Algorithm: topk.NRA},
		{Problem: serve.Quantify, Dim: compare.ByLocation, K: 2, Algorithm: topk.FA},
		{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByQuery},
	}
}

// TestClusterPartitionDown: one partition hard-down must degrade every
// answer to a typed *PartialResultError naming exactly that partition —
// never hang, never fail the whole request — and the degraded payload
// must equal a standalone engine over the union of the surviving
// partitions' cells. Clearing the fault restores byte-identical full
// answers.
func TestClusterPartitionDown(t *testing.T) {
	defer faultinject.Reset()
	const n, downed = 3, 1
	coord, single, tbl := chaosFixture(t, n, cluster.Options{
		Retry: serve.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})

	faultinject.SetKeyed(faultinject.ClusterPartitionDown, func(key string) error {
		if key == strconv.Itoa(downed) {
			return errors.New("injected: partition down")
		}
		return nil
	})

	// The surviving-data reference: the original table minus the downed
	// partition's cells.
	survivor := core.NewTable()
	tbl.Range(func(tr core.Triple, v float64) {
		if cluster.Route(tr.Query, tr.Location, n) == downed {
			return
		}
		g, _ := tbl.GroupByKey(tr.GroupKey)
		survivor.Set(g, tr.Query, tr.Location, v)
	})
	degradedRef := serve.NewEngine(serve.NewSnapshot(survivor), serve.Options{CacheSize: -1, Workers: 1})

	for i, req := range chaosRequests(tbl) {
		done := make(chan serve.Response, 1)
		go func() { done <- coord.Do(req) }()
		var resp serve.Response
		select {
		case resp = <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d hung with partition %d down", i, downed)
		}

		if !errors.Is(resp.Err, cluster.ErrPartialResult) {
			t.Fatalf("request %d: want ErrPartialResult, got %v", i, resp.Err)
		}
		var pres *cluster.PartialResultError
		if !errors.As(resp.Err, &pres) {
			t.Fatalf("request %d: error %v is not a *PartialResultError", i, resp.Err)
		}
		if len(pres.Missing) != 1 || pres.Missing[0] != downed || pres.Partitions != n {
			t.Fatalf("request %d: partial error names %v of %d, want [%d] of %d",
				i, pres.Missing, pres.Partitions, downed, n)
		}
		if pres.Cause != nil {
			t.Fatalf("request %d: degraded recompute itself failed: %v", i, pres.Cause)
		}

		// The degraded payload equals the survivors-only engine's answer.
		wantResp := degradedRef.Do(req)
		got := fmt.Sprintf("results=%+v cmp=%+v", resp.Results, resp.Comparison)
		want := fmt.Sprintf("results=%+v cmp=%+v", wantResp.Results, wantResp.Comparison)
		if got != want {
			t.Errorf("request %d: degraded answer diverged from survivors-only engine:\n got: %s\nwant: %s", i, got, want)
		}
	}
	if faultinject.Hits(faultinject.ClusterPartitionDown) == 0 {
		t.Fatal("down failpoint never fired")
	}

	// Fault cleared: every answer converges back to byte-identical.
	faultinject.Clear(faultinject.ClusterPartitionDown)
	for i, req := range chaosRequests(tbl) {
		got, want := fingerprint(coord.Do(req)), fingerprint(single.Do(req))
		if got != want {
			t.Errorf("request %d did not converge after fault cleared:\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestClusterPartitionSlow: a stalled partition is absorbed by hedging —
// the hedge duplicate returns the full (non-partial) answer and the
// stuck primary is canceled, not waited for.
func TestClusterPartitionSlow(t *testing.T) {
	defer faultinject.Reset()
	const n = 3
	coord, single, tbl := chaosFixture(t, n, cluster.Options{
		HedgeFloor: time.Millisecond,
		Seed:       5,
	})
	req := chaosRequests(tbl)[0]
	want := fingerprint(single.Do(req))

	// Warm the latency trackers past hedgeAfterSamples so the hedge
	// timer arms.
	for i := 0; i < 12; i++ {
		if got := fingerprint(coord.Do(req)); got != want {
			t.Fatalf("warmup request %d diverged:\n got: %s\nwant: %s", i, got, want)
		}
	}

	// Stall exactly one send per partition: the primary leg blocks until
	// the test releases it, every later leg (the hedge) passes through.
	release := make(chan struct{})
	var stalled [n]atomic.Bool
	faultinject.SetKeyed(faultinject.ClusterPartitionSlow, func(key string) error {
		p, _ := strconv.Atoi(key)
		if stalled[p].CompareAndSwap(false, true) {
			<-release
		}
		return nil
	})
	defer close(release)

	hedgesBefore := coord.Registry().Counter("cluster_hedges_total").Value()
	winsBefore := coord.Registry().Counter("cluster_hedge_wins_total").Value()
	cancelsBefore := coord.Registry().Counter("cluster_hedge_loser_cancels_total").Value()

	done := make(chan serve.Response, 1)
	go func() { done <- coord.Do(req) }()
	var resp serve.Response
	select {
	case resp = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("request hung behind a slow partition despite hedging")
	}

	if got := fingerprint(resp); got != want {
		t.Fatalf("hedged answer diverged (err=%v):\n got: %s\nwant: %s", resp.Err, got, want)
	}
	if errors.Is(resp.Err, cluster.ErrPartialResult) {
		t.Fatalf("slow partition must be absorbed by hedging, not degraded: %v", resp.Err)
	}
	if hedges := coord.Registry().Counter("cluster_hedges_total").Value(); hedges <= hedgesBefore {
		t.Fatal("no hedge was launched against the stalled partition")
	}
	if wins := coord.Registry().Counter("cluster_hedge_wins_total").Value(); wins <= winsBefore {
		t.Fatal("hedge never won against the stalled primary")
	}
	if cancels := coord.Registry().Counter("cluster_hedge_loser_cancels_total").Value(); cancels <= cancelsBefore {
		t.Fatal("stalled loser was never canceled")
	}
}

// TestClusterPartitionFlap: a partition failing every other send is
// absorbed by the per-leg retry policy — answers stay byte-identical
// and non-partial throughout the flap.
func TestClusterPartitionFlap(t *testing.T) {
	defer faultinject.Reset()
	const n, flapping = 3, 0
	coord, single, tbl := chaosFixture(t, n, cluster.Options{
		Retry: serve.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})

	var calls atomic.Uint64
	faultinject.SetKeyed(faultinject.ClusterPartitionFlap, func(key string) error {
		if key != strconv.Itoa(flapping) {
			return nil
		}
		if calls.Add(1)%2 == 1 {
			return errors.New("injected: partition flapped")
		}
		return nil
	})

	for i, req := range chaosRequests(tbl) {
		got, want := fingerprint(coord.Do(req)), fingerprint(single.Do(req))
		if got != want {
			t.Errorf("request %d diverged under flapping:\n got: %s\nwant: %s", i, got, want)
		}
	}
	if faultinject.Hits(faultinject.ClusterPartitionFlap) == 0 {
		t.Fatal("flap failpoint never fired")
	}
	if coord.Registry().Counter("cluster_leg_retries_total").Value() == 0 {
		t.Fatal("flapping partition never exercised the leg retry policy")
	}
}

// TestClusterGenPinRepin: a partition refreshed mid-request trips the
// generation pin, and the coordinator re-pins and restarts, ending with
// a consistent single-generation answer over the refreshed data.
func TestClusterGenPinRepin(t *testing.T) {
	defer faultinject.Reset()
	const n = 3
	tbl := clusterTable(stats.NewRNG(21), 6, 5, 4, 0.15)
	coord := cluster.New(tbl, cluster.Options{Partitions: n, NodeCacheSize: -1})
	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 3, Algorithm: topk.TA}

	// Arm the flap failpoint as a one-shot trigger: the first send to
	// partition 0 refreshes the node underneath the request's pin and
	// lets the send through, so the node itself refuses the stale pin.
	var fired atomic.Bool
	faultinject.SetKeyed(faultinject.ClusterPartitionFlap, func(key string) error {
		if key == "0" && fired.CompareAndSwap(false, true) {
			coord.Node(0).Refresh(nil) // same cells, new generation
		}
		return nil
	})

	resp := coord.Do(req)
	if resp.Err != nil {
		t.Fatalf("repinned request failed: %v", resp.Err)
	}
	if coord.Registry().Counter("cluster_repins_total").Value() == 0 {
		t.Fatal("generation flip never triggered a repin")
	}
	// The refreshed cluster still answers identically to a fresh single
	// engine (the refresh changed no cells).
	single := serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{CacheSize: -1, Workers: 1})
	if got, want := fingerprint(resp), fingerprint(single.Do(req)); got != want {
		t.Fatalf("post-repin answer diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestClusterFaultPropertyConvergence is the property harness: random
// transient fault patterns (flaps and stalls drawn from a seeded RNG)
// must never change an answer — whenever no partition is permanently
// down, the coordinator converges to the exact single-engine answer.
func TestClusterFaultPropertyConvergence(t *testing.T) {
	defer faultinject.Reset()
	const n = 4
	coord, single, tbl := chaosFixture(t, n, cluster.Options{
		Retry: serve.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	reqs := chaosRequests(tbl)
	want := make([]string, len(reqs))
	for i, req := range reqs {
		want[i] = fingerprint(single.Do(req))
	}

	rng := stats.NewRNG(1234)
	var mu sync.Mutex // the handlers run concurrently; guard the RNG
	faultinject.SetKeyed(faultinject.ClusterPartitionFlap, func(key string) error {
		mu.Lock()
		flake := rng.Float64() < 0.3
		mu.Unlock()
		if flake {
			return errors.New("injected: transient flake")
		}
		return nil
	})
	faultinject.SetKeyed(faultinject.ClusterPartitionSlow, func(key string) error {
		mu.Lock()
		stall := rng.Float64() < 0.2
		mu.Unlock()
		if stall {
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	})

	for round := 0; round < 10; round++ {
		for i, req := range reqs {
			// A transient pattern may exhaust one request's whole retry
			// budget; that request degrades to a TYPED partial — never a
			// silent wrong answer — and the property under test is
			// convergence: with no partition permanently down, re-issuing
			// reaches the exact single-engine answer.
			var resp serve.Response
			for try := 0; ; try++ {
				resp = coord.Do(req)
				if !errors.Is(resp.Err, cluster.ErrPartialResult) {
					break
				}
				if try == 50 {
					t.Fatalf("round %d request %d never converged: still partial after %d tries (%v)", round, i, try, resp.Err)
				}
			}
			if got := fingerprint(resp); got != want[i] {
				t.Fatalf("round %d request %d diverged under transient faults:\n got: %s\nwant: %s", round, i, got, want[i])
			}
		}
	}

	// Faults cleared: still byte-identical, and the request context path
	// is clean (no lingering degradation).
	faultinject.Reset()
	for i, req := range reqs {
		if got := fingerprint(coord.Do(req)); got != want[i] {
			t.Fatalf("request %d did not converge after faults cleared:\n got: %s\nwant: %s", i, got, want[i])
		}
	}
}

// TestClusterDeadlineNeverHangs: a coordinator facing a fully stalled
// cluster under a request deadline returns a typed deadline error
// within the budget — the fan-out never outlives its request.
func TestClusterDeadlineNeverHangs(t *testing.T) {
	defer faultinject.Reset()
	const n = 3
	coord, _, tbl := chaosFixture(t, n, cluster.Options{
		MinLegBudget: 5 * time.Millisecond,
	})
	release := make(chan struct{})
	faultinject.SetKeyed(faultinject.ClusterPartitionSlow, func(string) error {
		<-release
		return nil
	})
	defer close(release)

	req := chaosRequests(tbl)[0]
	req.Deadline = 100 * time.Millisecond
	done := make(chan serve.Response, 1)
	start := time.Now()
	go func() { done <- coord.Do(req) }()
	select {
	case resp := <-done:
		if !errors.Is(resp.Err, serve.ErrDeadlineExceeded) && !errors.Is(resp.Err, cluster.ErrPartialResult) {
			t.Fatalf("want deadline or partial error from a stalled cluster, got %v", resp.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("request outlived its %v deadline by %v", req.Deadline, time.Since(start))
	}
}
