package cluster

import (
	"context"
	"fmt"
	"strconv"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/faultinject"
	"fairjob/internal/index"
	"fairjob/internal/serve"
)

// Op selects what a Call asks a partition node to do.
type Op int

const (
	// OpScan is resumable sorted access: read a block of entries from
	// one list fragment starting at a caller-owned cursor. The
	// coordinator's distributed TA is built from these.
	OpScan Op = iota
	// OpLookup is random access: return the key's value in every list
	// fragment this partition owns for one dimension — a full row from
	// this partition's point of view, which the coordinator merges and
	// caches so one scatter answers all subsequent random accesses for
	// the key.
	OpLookup
	// OpCells returns every defined cell of the partition's sub-table —
	// the gather behind Problem 2 comparisons and behind the degraded
	// recompute when partitions are missing.
	OpCells
	// OpServe passes a full serve.Request through to the partition's
	// local engine — the single-leg fast path (one partition, or a
	// page-local mitigate routed to its owner).
	OpServe
)

func (o Op) String() string {
	switch o {
	case OpScan:
		return "scan"
	case OpLookup:
		return "lookup"
	case OpCells:
		return "cells"
	case OpServe:
		return "serve"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Call is one simulated RPC to a partition node. PinGen carries the
// all-or-nothing generation pin: 0 means "pin to whatever you serve and
// tell me", any other value means "serve exactly this generation or
// refuse with ErrGenMismatch".
type Call struct {
	Op     Op
	PinGen uint64

	// OpScan / OpLookup operands.
	Dim          compare.Dimension
	List         int
	Start, Count int
	Key          string

	// OpServe operand.
	Req serve.Request

	// Trace propagation. These are the wire schema a networked transport
	// would serialize: the coordinator's trace id and the id of the leg
	// span this call runs under, enough for the remote side to emit spans
	// that join the caller's tree. The in-process transport additionally
	// carries the live obs.SpanRef in the context (obs.ContextWithSpan),
	// which is what the node-side engine actually joins today.
	TraceID    uint64
	ParentSpan int32
}

// ListValue is one entry of an OpLookup reply: the key's value in one
// of the partition's owned lists.
type ListValue struct {
	List  int
	Value float64
}

// Cell is one defined cell of a partition's sub-table.
type Cell struct {
	G string
	Q core.Query
	L core.Location
	V float64
}

// Reply is a node's answer to one Call. Gen always reports the
// generation that served it, which is how an unpinned first leg learns
// the pin for the rest of the request.
type Reply struct {
	Gen     uint64
	Entries []index.Entry  // OpScan
	Row     []ListValue    // OpLookup
	Cells   []Cell         // OpCells
	Resp    serve.Response // OpServe
}

// Transport delivers calls to partitions. The in-process LocalTransport
// is the only implementation today; the interface exists so a real
// network split later replaces one type, not the coordinator. Send must
// honor ctx — a canceled caller gets an error promptly even when the
// partition is stalled — and must be safe for concurrent use.
type Transport interface {
	Send(ctx context.Context, partition int, call Call) (Reply, error)
}

// LocalTransport is the simulated-RPC transport: calls are function
// calls into in-process nodes, with the cluster chaos failpoints
// compiled into the send path so tests can down, slow or flap
// individual partitions exactly where a network would fail. The
// partition id is the failpoint key.
type LocalTransport struct {
	nodes []*Node
}

// NewLocalTransport wraps in-process nodes as a Transport.
func NewLocalTransport(nodes []*Node) *LocalTransport {
	return &LocalTransport{nodes: nodes}
}

// Send delivers one call. The failpoint layout mirrors a real RPC:
// partition-down and partition-flap fire before the "wire" (the send
// errors, the node never sees the call), partition-slow fires on the
// serving side (the handler stalls, and a caller whose ctx expires —
// or whose hedge won — abandons the leg without waiting for it).
func (t *LocalTransport) Send(ctx context.Context, partition int, call Call) (Reply, error) {
	if partition < 0 || partition >= len(t.nodes) {
		return Reply{}, fmt.Errorf("cluster: no partition %d (have %d)", partition, len(t.nodes))
	}
	key := strconv.Itoa(partition)
	if err := faultinject.InjectKeyedErr(faultinject.ClusterPartitionDown, key); err != nil {
		return Reply{}, fmt.Errorf("%w: partition %d down: %v", ErrPartitionUnavailable, partition, err)
	}
	if err := faultinject.InjectKeyedErr(faultinject.ClusterPartitionFlap, key); err != nil {
		return Reply{}, fmt.Errorf("%w: partition %d flapped: %v", ErrPartitionUnavailable, partition, err)
	}
	type result struct {
		reply Reply
		err   error
	}
	done := make(chan result, 1)
	go func() {
		// The slow failpoint may sleep or block on a channel; it runs on
		// the serving goroutine so the select below can abandon the leg.
		_ = faultinject.InjectKeyedErr(faultinject.ClusterPartitionSlow, key)
		r, err := t.nodes[partition].Handle(ctx, call)
		done <- result{r, err}
	}()
	select {
	case <-ctx.Done():
		return Reply{}, ctx.Err()
	case res := <-done:
		return res.reply, res.err
	}
}
