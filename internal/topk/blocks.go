package topk

import (
	"sort"

	"fairjob/internal/index"
)

// This file holds the block-access primitives the scatter-gather
// coordinator (internal/cluster) builds its distributed sorted access
// on: the canonical posting-list order as a standalone comparator, a
// ListSource over raw entry slices (a partition's list fragments), and
// a resumable block scan that a partition node serves without holding
// any per-client cursor state.

// LessEntries reports whether a sorts strictly before b in the
// canonical posting-list order: descending Value, ascending Key on
// ties. This is exactly the order index.Inverted sorts its entries in;
// merging per-partition fragments with this comparator therefore
// reproduces the single-index list byte-for-byte, which is what makes
// the coordinator's answers byte-identical to a single engine's.
func LessEntries(a, b index.Entry) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Key < b.Key
}

// SortEntries sorts entries in place into the canonical posting-list
// order.
func SortEntries(entries []index.Entry) {
	sort.Slice(entries, func(i, j int) bool { return LessEntries(entries[i], entries[j]) })
}

// SliceLists is a ListSource over raw, already-sorted entry slices —
// the form a partition node holds its list fragments in, and the form
// the coordinator's merged lists take. Unlike the index-backed sources
// the lists may be ragged (a fragment holds only the members a
// partition owns), so ListLen reports the longest list; algorithms that
// rely on the completion invariant should only be run over SliceLists
// built with equal-length lists.
type SliceLists struct {
	lists [][]index.Entry
	// finds are lazily-built per-list key→value maps for random access;
	// built once under buildOnce-style usage by the constructor, so
	// concurrent Find calls need no locking.
	finds  []map[string]float64
	maxLen int
}

// NewSliceLists wraps pre-sorted entry slices as a ListSource. Each
// list must already be in canonical order (use SortEntries). Random
// access maps are built eagerly so the value is safe for concurrent
// use.
func NewSliceLists(lists [][]index.Entry) *SliceLists {
	s := &SliceLists{lists: lists, finds: make([]map[string]float64, len(lists))}
	for i, l := range lists {
		m := make(map[string]float64, len(l))
		for _, e := range l {
			m[e.Key] = e.Value
		}
		s.finds[i] = m
		if len(l) > s.maxLen {
			s.maxLen = len(l)
		}
	}
	return s
}

func (s *SliceLists) NumLists() int { return len(s.lists) }

func (s *SliceLists) ListLen() int { return s.maxLen }

// Len returns the length of list i (fragments are ragged).
func (s *SliceLists) Len(i int) int { return len(s.lists[i]) }

func (s *SliceLists) At(i, pos int) (index.Entry, bool) {
	l := s.lists[i]
	if pos < 0 || pos >= len(l) {
		return index.Entry{}, false
	}
	return l[pos], true
}

func (s *SliceLists) Find(i int, key string) (float64, bool) {
	v, ok := s.finds[i][key]
	return v, ok
}

// ScanFrom is the resumable sorted-access primitive: it reads up to max
// entries of list i starting at sorted position start, returning a
// fresh slice. The caller owns the cursor (start), so a stateless
// server can answer interleaved scans from any number of clients — the
// partition node serves the coordinator's block fetches with this. A
// start at or past the end returns nil.
func ScanFrom(src ListSource, i, start, max int) []index.Entry {
	if start < 0 || max <= 0 {
		return nil
	}
	var out []index.Entry
	for pos := start; pos < start+max; pos++ {
		e, ok := src.At(i, pos)
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}
