package topk

import (
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/index"
)

func TestLessEntriesMatchesInvertedOrder(t *testing.T) {
	// Build an inverted list through the index package and assert
	// LessEntries agrees with its sort on every adjacent pair,
	// including value ties broken by key.
	tbl := core.NewTable()
	g1 := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
	g2 := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
	g3 := core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "Black"})
	tbl.Set(g1, "q", "l", 0.5)
	tbl.Set(g2, "q", "l", 0.5) // tie with g1 on value
	tbl.Set(g3, "q", "l", 0.9)
	gi := index.BuildGroupIndex(tbl)
	iv := gi.Get("q", "l")
	entries := iv.Entries()
	if len(entries) != 3 {
		t.Fatalf("expected 3 entries, got %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if !LessEntries(entries[i-1], entries[i]) {
			t.Fatalf("index order violates LessEntries at %d: %+v !< %+v", i, entries[i-1], entries[i])
		}
	}
	// SortEntries over a shuffled copy reproduces the index order.
	shuffled := []index.Entry{entries[2], entries[0], entries[1]}
	SortEntries(shuffled)
	for i := range entries {
		if shuffled[i] != entries[i] {
			t.Fatalf("SortEntries diverged from index order at %d: %+v vs %+v", i, shuffled[i], entries[i])
		}
	}
}

func TestSliceListsAndScanFrom(t *testing.T) {
	lists := [][]index.Entry{
		{{Key: "a", Value: 3}, {Key: "b", Value: 2}, {Key: "c", Value: 1}},
		{{Key: "b", Value: 9}},
		nil,
	}
	s := NewSliceLists(lists)
	if s.NumLists() != 3 {
		t.Fatalf("NumLists = %d, want 3", s.NumLists())
	}
	if s.ListLen() != 3 {
		t.Fatalf("ListLen = %d, want longest list 3", s.ListLen())
	}
	if s.Len(1) != 1 || s.Len(2) != 0 {
		t.Fatalf("ragged Len wrong: %d, %d", s.Len(1), s.Len(2))
	}
	if e, ok := s.At(0, 1); !ok || e.Key != "b" {
		t.Fatalf("At(0,1) = %+v, %v", e, ok)
	}
	if _, ok := s.At(1, 1); ok {
		t.Fatal("At past a ragged list's end must report !ok")
	}
	if v, ok := s.Find(1, "b"); !ok || v != 9 {
		t.Fatalf("Find(1, b) = %v, %v", v, ok)
	}
	if _, ok := s.Find(0, "zzz"); ok {
		t.Fatal("Find of a missing key must report !ok")
	}

	// ScanFrom: block reads with caller-owned cursors resume exactly.
	first := ScanFrom(s, 0, 0, 2)
	rest := ScanFrom(s, 0, 2, 2)
	if len(first) != 2 || len(rest) != 1 {
		t.Fatalf("block sizes = %d, %d; want 2, 1", len(first), len(rest))
	}
	got := append(append([]index.Entry{}, first...), rest...)
	for i, e := range lists[0] {
		if got[i] != e {
			t.Fatalf("resumed scan diverged at %d: %+v vs %+v", i, got[i], e)
		}
	}
	if ScanFrom(s, 0, 3, 4) != nil {
		t.Fatal("scan starting past the end must return nil")
	}
	if ScanFrom(s, 2, 0, 4) != nil {
		t.Fatal("scan of an empty list must return nil")
	}
}
