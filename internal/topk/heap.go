package topk

// Result is one answer of a fairness-quantification problem: a dimension
// member (group key, query or location) and its aggregated unfairness.
type Result struct {
	Key   string
	Value float64
}

// minHeap is a size-bounded min-heap of Results keyed on Value, with ties
// broken by Key (larger keys treated as smaller) so heap behaviour is
// deterministic. It keeps the k largest values seen: the root is the
// smallest retained value, i.e. the paper's topk.minValue().
type minHeap struct {
	items []Result
}

func (h *minHeap) Len() int { return len(h.items) }

// less orders a strictly below b: by value, then by reversed key order so
// that among equal values the lexicographically larger key is evicted
// first, matching the deterministic tie-break of the index ordering.
func (h *minHeap) less(a, b Result) bool {
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.Key > b.Key
}

// MinValue returns the smallest retained value; it panics on an empty
// heap (the paper's Algorithm 1 guards with topk.size() < k first).
func (h *minHeap) MinValue() float64 {
	if len(h.items) == 0 {
		panic("topk: MinValue on empty heap")
	}
	return h.items[0].Value
}

// Min returns the root result.
func (h *minHeap) Min() Result {
	if len(h.items) == 0 {
		panic("topk: Min on empty heap")
	}
	return h.items[0]
}

// Insert pushes r onto the heap.
func (h *minHeap) Insert(r Result) {
	h.items = append(h.items, r)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the root.
func (h *minHeap) Pop() Result {
	if len(h.items) == 0 {
		panic("topk: Pop on empty heap")
	}
	root := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return root
}

// Offer inserts r into a heap bounded at capacity k: when full, r replaces
// the root only if it beats it. It reports whether r was retained.
func (h *minHeap) Offer(r Result, k int) bool {
	if len(h.items) < k {
		h.Insert(r)
		return true
	}
	if h.less(h.items[0], r) {
		h.Pop()
		h.Insert(r)
		return true
	}
	return false
}

// Drain removes everything, returning results in descending value order.
func (h *minHeap) Drain() []Result {
	out := make([]Result, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.Pop()
	}
	return out
}

func (h *minHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *minHeap) down(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(h.items[left], h.items[smallest]) {
			smallest = left
		}
		if right < n && h.less(h.items[right], h.items[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
