package topk

import (
	"context"

	"fairjob/internal/faultinject"
)

// canceler is the per-run cooperative cancellation checkpoint. Each
// algorithm state embeds one and calls check at its round boundary
// (and, for the scan-heavy phases, every checkpointStride accesses), so
// a canceled or expired context stops a run within a bounded number of
// list accesses rather than at the end of the computation. The zero
// value — and a context with a nil Done channel, like
// context.Background() — never cancels and costs one nil compare per
// check, keeping the no-deadline hot path free.
type canceler struct {
	ctx  context.Context
	done <-chan struct{}
}

// checkpointStride bounds how many list accesses the inner scan loops
// (naive full scan, FA completion) perform between cancellation checks.
// It is a power of two so the loops can test `counter&(stride-1) == 0`.
const checkpointStride = 64

func newCanceler(ctx context.Context) canceler {
	if ctx == nil {
		return canceler{}
	}
	return canceler{ctx: ctx, done: ctx.Done()}
}

// check returns the context's error once it is done, nil before. It is
// also the topk.slow-evaluator failpoint: chaos builds arm it to stall
// every round, which is how the deadline tests force a mid-run expiry
// deterministically.
func (c canceler) check() error {
	faultinject.Inject(faultinject.SlowEvaluator)
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// TopKCtx is TopK with cooperative cancellation: the run observes ctx at
// every round boundary and returns ctx.Err() (context.Canceled or
// context.DeadlineExceeded, untyped by this package) once it fires,
// discarding partial results. A Background context makes it equivalent
// to TopK.
func TopKCtx(ctx context.Context, src ListSource, k int, dir Direction, algo Algorithm) ([]Result, Stats, error) {
	return TopKCtxWith(ctx, src, k, dir, algo, nil)
}

// TopKCtxWith is TopKCtx with an optional Recorder; only completed runs
// report Stats to rec — a canceled run's partial access counts are
// returned to the caller but never recorded, so the telemetry
// histograms describe finished work.
func TopKCtxWith(ctx context.Context, src ListSource, k int, dir Direction, algo Algorithm, rec Recorder) ([]Result, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, errKNotPositive(k)
	}
	cc := newCanceler(ctx)
	run := func(s ListSource) ([]Result, Stats, error) {
		switch algo {
		case TA:
			st := newTAState(s, k)
			st.cancel = cc
			return st.run()
		case FA:
			st := newFAState(s, k)
			st.cancel = cc
			return st.run()
		case Naive:
			st := newNaiveState(s, k)
			st.cancel = cc
			return st.run()
		case NRA:
			st := newNRAState(s, k)
			st.cancel = cc
			return st.run()
		default:
			panic(errUnknownAlgorithm(algo))
		}
	}
	runSrc := src
	if dir == LeastUnfair {
		runSrc = reversedLists{src}
	}
	results, stats, err := run(runSrc)
	if err != nil {
		return nil, stats, err
	}
	if dir == LeastUnfair {
		for i := range results {
			results[i].Value = -results[i].Value
		}
	}
	if rec != nil {
		rec.RecordTopK(algo, dir, stats)
	}
	return results, stats, nil
}
