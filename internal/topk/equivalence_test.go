package topk_test

import (
	"fmt"
	"math"
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// This file is the cross-algorithm equivalence property suite: on
// randomized small tables, every implemented top-k strategy must return
// the same members with the same aggregated scores, for all three
// dimensions and both directions — the FA*IR-style "cross-check the
// optimized algorithm against the naive baseline" discipline that keeps
// TA's early-termination rule honest through refactors.

// randomEquivTable synthesizes a table with ng × nq × nl dimensions and a
// fraction of undefined triples (completion semantics turn those into 0s
// in the inverted lists).
func randomEquivTable(rng *stats.RNG, ng, nq, nl int, missing float64) *core.Table {
	tbl := core.NewTable()
	for g := 0; g < ng; g++ {
		grp := core.NewGroup(core.Predicate{Attr: "cohort", Value: fmt.Sprintf("g%02d", g)})
		for q := 0; q < nq; q++ {
			for l := 0; l < nl; l++ {
				if rng.Float64() < missing {
					continue
				}
				tbl.Set(grp, core.Query(fmt.Sprintf("q%02d", q)), core.Location(fmt.Sprintf("l%02d", l)), rng.Float64())
			}
		}
	}
	return tbl
}

// skewedTable synthesizes a member-dominated table: member i's value is
// base(i) = 1 − i·gap everywhere, plus per-cell noise smaller than gap/2,
// so every inverted list ranks the members identically. This is the
// regime the paper's indices live in — unfairness is a property of the
// member far more than of the (q,l) pair — and the one where TA's access
// bound below is provable.
func skewedTable(rng *stats.RNG, ng, nq, nl int) *core.Table {
	const gap, noise = 0.05, 0.004
	tbl := core.NewTable()
	for g := 0; g < ng; g++ {
		grp := core.NewGroup(core.Predicate{Attr: "cohort", Value: fmt.Sprintf("g%02d", g)})
		base := 1 - float64(g)*gap
		for q := 0; q < nq; q++ {
			for l := 0; l < nl; l++ {
				v := base + (rng.Float64()*2-1)*noise
				tbl.Set(grp, core.Query(fmt.Sprintf("q%02d", q)), core.Location(fmt.Sprintf("l%02d", l)), v)
			}
		}
	}
	return tbl
}

// sources builds the three dimension ListSources of a table.
func sources(t *testing.T, tbl *core.Table) map[string]topk.ListSource {
	t.Helper()
	gi, qi, li := index.BuildAll(tbl)
	out := make(map[string]topk.ListSource, 3)
	var err error
	if out["group"], err = topk.NewGroupLists(gi, nil, nil); err != nil {
		t.Fatal(err)
	}
	if out["query"], err = topk.NewQueryLists(qi, nil, nil); err != nil {
		t.Fatal(err)
	}
	if out["location"], err = topk.NewLocationLists(li, nil, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertSameTopK runs every algorithm on src and asserts member-set and
// score agreement (within 1e-12, absorbing summation-order differences)
// against the naive scan. It returns the per-algorithm stats.
func assertSameTopK(t *testing.T, label string, src topk.ListSource, k int, dir topk.Direction) map[topk.Algorithm]topk.Stats {
	t.Helper()
	ref, _, err := topk.TopK(src, k, dir, topk.Naive)
	if err != nil {
		t.Fatalf("%s: naive: %v", label, err)
	}
	allStats := make(map[topk.Algorithm]topk.Stats, 4)
	for _, algo := range topk.Algorithms() {
		got, st, err := topk.TopK(src, k, dir, algo)
		if err != nil {
			t.Fatalf("%s: %v: %v", label, algo, err)
		}
		allStats[algo] = st
		if len(got) != len(ref) {
			t.Fatalf("%s: %v returned %d results, naive %d", label, algo, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Key != ref[i].Key {
				t.Fatalf("%s: %v rank %d = %q, naive %q\n%v vs %v", label, algo, i, got[i].Key, ref[i].Key, got, ref)
			}
			if math.Abs(got[i].Value-ref[i].Value) > 1e-12 {
				t.Fatalf("%s: %v rank %d value %.17g, naive %.17g", label, algo, i, got[i].Value, ref[i].Value)
			}
		}
	}
	return allStats
}

// TestAlgorithmsEquivalentOnRandomTables is the headline property: TA ≡
// FA ≡ NRA ≡ Naive on randomized tables, for every dimension, both
// directions, and ks from 1 past the full membership.
func TestAlgorithmsEquivalentOnRandomTables(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 8
	}
	rng := stats.NewRNG(20260805)
	for it := 0; it < iters; it++ {
		ng := 2 + rng.Intn(7)
		nq := 1 + rng.Intn(4)
		nl := 1 + rng.Intn(4)
		tbl := randomEquivTable(rng, ng, nq, nl, 0.15)
		for dimName, src := range sources(t, tbl) {
			members := src.ListLen()
			for _, dir := range []topk.Direction{topk.MostUnfair, topk.LeastUnfair} {
				for _, k := range []int{1, (members + 1) / 2, members, members + 3} {
					label := fmt.Sprintf("iter %d %s (%dx%dx%d) k=%d %v", it, dimName, ng, nq, nl, k, dir)
					assertSameTopK(t, label, src, k, dir)
				}
			}
		}
	}
}

// TestTAAccessCostNeverExceedsNaiveOnSkewedTables pins the cost claim of
// the paper's §4.2 in the regime where it is provable: on a
// member-dominated table every list ranks members identically, so TA
// discovers exactly one new member per round and stops after k rounds —
// k·n sorted + k·(n−1) random accesses, at most the naive scan's m·n
// whenever k ≤ m/2. Both directions are checked; the skew is symmetric.
func TestTAAccessCostNeverExceedsNaiveOnSkewedTables(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 5
	}
	rng := stats.NewRNG(5150)
	for it := 0; it < iters; it++ {
		ng := 4 + rng.Intn(7) // ≥4 members so k = m/2 ≥ 2 is meaningful
		nq := 2 + rng.Intn(3)
		nl := 2 + rng.Intn(3)
		tbl := skewedTable(rng, ng, nq, nl)
		for dimName, src := range sources(t, tbl) {
			if dimName != "group" {
				continue // only the group dimension is member-dominated by construction
			}
			members := src.ListLen()
			for _, dir := range []topk.Direction{topk.MostUnfair, topk.LeastUnfair} {
				for k := 1; k <= members/2; k++ {
					label := fmt.Sprintf("iter %d %s k=%d %v", it, dimName, k, dir)
					st := assertSameTopK(t, label, src, k, dir)
					if ta, naive := st[topk.TA].Total(), st[topk.Naive].Total(); ta > naive {
						t.Fatalf("%s: TA cost %d (sorted %d + random %d) exceeds naive %d",
							label, ta, st[topk.TA].SortedAccesses, st[topk.TA].RandomAccesses, naive)
					}
				}
			}
		}
	}
}

// TestTAEarlyTerminationBeatsNaiveOnSkewedTables additionally asserts
// that the skewed regime actually exercises early termination: with many
// lists and small k, TA must do strictly fewer rounds than the naive
// scan's full list length.
func TestTAEarlyTerminationBeatsNaiveOnSkewedTables(t *testing.T) {
	rng := stats.NewRNG(31337)
	tbl := skewedTable(rng, 10, 4, 4)
	src := sources(t, tbl)["group"]
	_, st, err := topk.TopK(src, 2, topk.MostUnfair, topk.TA)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds >= src.ListLen() {
		t.Fatalf("TA used %d rounds on a %d-member skewed table; early termination broken", st.Rounds, src.ListLen())
	}
}
