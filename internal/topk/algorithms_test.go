package topk

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/stats"
)

// randomTable builds a dense unfairness table with ng single-attribute
// groups, nq queries and nl locations.
func randomTable(seed uint64, ng, nq, nl int) *core.Table {
	r := stats.NewRNG(seed)
	t := core.NewTable()
	for gi := 0; gi < ng; gi++ {
		g := core.NewGroup(core.Predicate{Attr: "tier", Value: fmt.Sprintf("g%02d", gi)})
		for qi := 0; qi < nq; qi++ {
			for li := 0; li < nl; li++ {
				t.Set(g, core.Query(fmt.Sprintf("q%02d", qi)), core.Location(fmt.Sprintf("l%02d", li)), r.Float64())
			}
		}
	}
	return t
}

// bruteForceGroups computes the exact aggregate ranking from the table,
// using the same missing=0, divide-by-|Q||L| semantics as the indices.
func bruteForceGroups(t *core.Table) []Result {
	qs, ls := t.Queries(), t.Locations()
	var out []Result
	for _, g := range t.Groups() {
		var sum float64
		for _, q := range qs {
			for _, l := range ls {
				if v, ok := t.Get(g, q, l); ok {
					sum += v
				}
			}
		}
		out = append(out, Result{Key: g.Key(), Value: sum / float64(len(qs)*len(ls))})
	}
	sortResults(out)
	return out
}

func assertSameResults(t *testing.T, got, want []Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Key != want[i].Key || math.Abs(got[i].Value-want[i].Value) > 1e-9 {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestAllAlgorithmsAgreeWithBruteForce(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		tbl := randomTable(seed, 12, 6, 4)
		gi := index.BuildGroupIndex(tbl)
		src, err := NewGroupLists(gi, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteForceGroups(tbl)
		for _, k := range []int{1, 3, 12, 50} {
			wantN := k
			if wantN > len(exact) {
				wantN = len(exact)
			}
			want := exact[:wantN]
			for _, algo := range []Algorithm{TA, FA, Naive, NRA} {
				got, _, err := TopK(src, k, MostUnfair, algo)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, got, want, fmt.Sprintf("seed=%d k=%d algo=%v", seed, k, algo))
			}
		}
	}
}

func TestLeastUnfairDirection(t *testing.T) {
	tbl := randomTable(99, 10, 5, 3)
	gi := index.BuildGroupIndex(tbl)
	src, _ := NewGroupLists(gi, nil, nil)
	exact := bruteForceGroups(tbl)
	// Ascending.
	asc := append([]Result(nil), exact...)
	sort.Slice(asc, func(i, j int) bool {
		if asc[i].Value != asc[j].Value {
			return asc[i].Value < asc[j].Value
		}
		return asc[i].Key < asc[j].Key
	})
	for _, algo := range []Algorithm{TA, FA, Naive, NRA} {
		got, _, err := TopK(src, 4, LeastUnfair, algo)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, got, asc[:4], fmt.Sprintf("least algo=%v", algo))
	}
}

func TestTopKScopedToSubsets(t *testing.T) {
	tbl := core.NewTable()
	a := core.NewGroup(core.Predicate{Attr: "g", Value: "a"})
	b := core.NewGroup(core.Predicate{Attr: "g", Value: "b"})
	// a is unfair on q1, b on q2.
	tbl.Set(a, "q1", "l1", 0.9)
	tbl.Set(b, "q1", "l1", 0.1)
	tbl.Set(a, "q2", "l1", 0.1)
	tbl.Set(b, "q2", "l1", 0.9)
	gi := index.BuildGroupIndex(tbl)

	src, err := NewGroupLists(gi, []core.Query{"q1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := TopK(src, 1, MostUnfair, TA)
	if got[0].Key != "g=a" {
		t.Fatalf("scoped top = %v", got)
	}
	src, _ = NewGroupLists(gi, []core.Query{"q2"}, nil)
	got, _, _ = TopK(src, 1, MostUnfair, TA)
	if got[0].Key != "g=b" {
		t.Fatalf("scoped top = %v", got)
	}
}

func TestTopKErrors(t *testing.T) {
	tbl := randomTable(5, 4, 2, 2)
	gi := index.BuildGroupIndex(tbl)
	src, _ := NewGroupLists(gi, nil, nil)
	if _, _, err := TopK(src, 0, MostUnfair, TA); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, _, err := TopK(src, -3, MostUnfair, TA); err == nil {
		t.Fatal("negative k should error")
	}
	if _, err := NewGroupLists(gi, []core.Query{"missing"}, nil); err == nil {
		t.Fatal("unindexed query should error")
	}
}

func TestTAEarlyTermination(t *testing.T) {
	// A heavily skewed table: one group dominates everywhere, so TA must
	// stop after a handful of rounds instead of scanning all groups.
	tbl := core.NewTable()
	const ng = 200
	for i := 0; i < ng; i++ {
		g := core.NewGroup(core.Predicate{Attr: "g", Value: fmt.Sprintf("g%03d", i)})
		v := 0.1
		if i == 0 {
			v = 0.99
		}
		tbl.Set(g, "q", "l", v)
	}
	gi := index.BuildGroupIndex(tbl)
	src, _ := NewGroupLists(gi, nil, nil)
	got, taStats, _ := TopK(src, 1, MostUnfair, TA)
	if got[0].Key != "g=g000" {
		t.Fatalf("top = %v", got)
	}
	_, naiveStats, _ := TopK(src, 1, MostUnfair, Naive)
	if taStats.SortedAccesses >= naiveStats.SortedAccesses {
		t.Fatalf("TA sorted accesses (%d) not fewer than naive (%d)",
			taStats.SortedAccesses, naiveStats.SortedAccesses)
	}
	if taStats.Rounds > 3 {
		t.Fatalf("TA used %d rounds on a trivially skewed list", taStats.Rounds)
	}
}

func TestQueryAndLocationFairnessInstances(t *testing.T) {
	tbl := core.NewTable()
	g := core.NewGroup(core.Predicate{Attr: "g", Value: "x"})
	tbl.Set(g, "handyman", "l1", 0.9)
	tbl.Set(g, "delivery", "l1", 0.1)
	tbl.Set(g, "handyman", "l2", 0.8)
	tbl.Set(g, "delivery", "l2", 0.2)

	qi := index.BuildQueryIndex(tbl)
	qr, err := QueryFairness(qi, nil, nil, 1, MostUnfair)
	if err != nil || qr[0].Key != "handyman" {
		t.Fatalf("QueryFairness = %v, %v", qr, err)
	}
	qr, _ = QueryFairness(qi, nil, nil, 1, LeastUnfair)
	if qr[0].Key != "delivery" {
		t.Fatalf("QueryFairness least = %v", qr)
	}

	li := index.BuildLocationIndex(tbl)
	lr, err := LocationFairness(li, nil, nil, 2, MostUnfair)
	if err != nil || lr[0].Key != "l1" && lr[0].Key != "l2" {
		t.Fatalf("LocationFairness = %v, %v", lr, err)
	}
	// l1 avg = (0.9+0.1)/2 = 0.5; l2 avg = (0.8+0.2)/2 = 0.5: tie broken
	// by key.
	if lr[0].Key != "l1" {
		t.Fatalf("tie-break order = %v", lr)
	}
}

func TestGroupFairnessWrapper(t *testing.T) {
	tbl := randomTable(2024, 11, 8, 5)
	gi := index.BuildGroupIndex(tbl)
	got, err := GroupFairness(gi, nil, nil, 11, MostUnfair)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, bruteForceGroups(tbl), "wrapper")
}

func TestFAAndNaiveStatsAccounting(t *testing.T) {
	tbl := randomTable(3, 6, 3, 3)
	gi := index.BuildGroupIndex(tbl)
	src, _ := NewGroupLists(gi, nil, nil)
	_, st, _ := TopK(src, 2, MostUnfair, Naive)
	wantSorted := src.NumLists() * src.ListLen()
	if st.SortedAccesses != wantSorted {
		t.Fatalf("naive sorted accesses = %d, want %d", st.SortedAccesses, wantSorted)
	}
	_, st, _ = TopK(src, 2, MostUnfair, FA)
	if st.RandomAccesses == 0 {
		t.Fatal("FA should perform random accesses")
	}
}

func TestDirectionAndAlgorithmStrings(t *testing.T) {
	if MostUnfair.String() != "most-unfair" || LeastUnfair.String() != "least-unfair" {
		t.Fatal("direction names")
	}
	if TA.String() != "TA" || FA.String() != "FA" || Naive.String() != "naive" || NRA.String() != "NRA" {
		t.Fatal("algorithm names")
	}
	if Direction(9).String() == "" || Algorithm(9).String() == "" {
		t.Fatal("unknown enum should render")
	}
}

// Property-style test: for random tables, TA's top-1 always matches the
// maximum brute-force aggregate.
func TestTATop1AlwaysExact(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		tbl := randomTable(seed, 9, 4, 3)
		gi := index.BuildGroupIndex(tbl)
		src, _ := NewGroupLists(gi, nil, nil)
		got, _, _ := TopK(src, 1, MostUnfair, TA)
		want := bruteForceGroups(tbl)[0]
		if got[0].Key != want.Key || math.Abs(got[0].Value-want.Value) > 1e-9 {
			t.Fatalf("seed %d: top-1 = %+v, want %+v", seed, got[0], want)
		}
	}
}

func TestNRANeverPerformsRandomAccess(t *testing.T) {
	tbl := randomTable(77, 10, 6, 4)
	gi := index.BuildGroupIndex(tbl)
	src, _ := NewGroupLists(gi, nil, nil)
	got, st, err := TopK(src, 3, MostUnfair, NRA)
	if err != nil {
		t.Fatal(err)
	}
	if st.RandomAccesses != 0 {
		t.Fatalf("NRA performed %d random accesses", st.RandomAccesses)
	}
	assertSameResults(t, got, bruteForceGroups(tbl)[:3], "NRA")
}

func TestNRAEarlyTermination(t *testing.T) {
	// Same skewed setting as the TA test: NRA must also resolve the top
	// member without scanning all 200 positions.
	tbl := core.NewTable()
	const ng = 200
	for i := 0; i < ng; i++ {
		g := core.NewGroup(core.Predicate{Attr: "g", Value: fmt.Sprintf("g%03d", i)})
		v := 0.1
		if i == 0 {
			v = 0.99
		}
		tbl.Set(g, "q", "l", v)
	}
	gi := index.BuildGroupIndex(tbl)
	src, _ := NewGroupLists(gi, nil, nil)
	got, st, _ := TopK(src, 1, MostUnfair, NRA)
	if got[0].Key != "g=g000" {
		t.Fatalf("top = %v", got)
	}
	if st.Rounds >= ng {
		t.Fatalf("NRA scanned all %d rounds", st.Rounds)
	}
}

func TestGroupFairnessAmongRestrictsCandidates(t *testing.T) {
	tbl := randomTable(404, 12, 5, 4)
	gi := index.BuildGroupIndex(tbl)
	exact := bruteForceGroups(tbl)
	// Candidates: the groups ranked 3rd, 5th, 8th and 10th overall.
	candidates := []string{exact[2].Key, exact[4].Key, exact[7].Key, exact[9].Key}
	got, err := GroupFairnessAmong(gi, candidates, nil, nil, 2, MostUnfair)
	if err != nil {
		t.Fatal(err)
	}
	// The answer must be the best two *among the candidates*.
	assertSameResults(t, got, []Result{exact[2], exact[4]}, "restricted")

	least, err := GroupFairnessAmong(gi, candidates, nil, nil, 1, LeastUnfair)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, least, []Result{exact[9]}, "restricted least")

	if _, err := GroupFairnessAmong(gi, []string{"nope"}, nil, nil, 1, MostUnfair); err == nil {
		t.Fatal("empty restriction should error")
	}
}

func TestFilteredListsAllAlgorithmsAgree(t *testing.T) {
	tbl := randomTable(405, 10, 4, 3)
	gi := index.BuildGroupIndex(tbl)
	src, _ := NewGroupLists(gi, nil, nil)
	exact := bruteForceGroups(tbl)
	candidates := []string{exact[1].Key, exact[3].Key, exact[6].Key}
	restricted, err := NewFilteredLists(src, candidates)
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{exact[1], exact[3], exact[6]}
	for _, algo := range []Algorithm{TA, FA, Naive, NRA} {
		got, _, err := TopK(restricted, 3, MostUnfair, algo)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, got, want, fmt.Sprintf("filtered algo=%v", algo))
	}
}
