package topk

import (
	"fairjob/internal/core"
	"fairjob/internal/index"
)

// GroupFairness solves the group-fairness instance of Problem 1 with the
// Threshold Algorithm: the k groups for which the site is most/least
// unfair over the (qs × ls) scope. Nil qs/ls use the index's full scope.
// Result keys are group keys resolvable via idx.Group.
func GroupFairness(idx *index.GroupIndex, qs []core.Query, ls []core.Location, k int, dir Direction) ([]Result, error) {
	src, err := NewGroupLists(idx, qs, ls)
	if err != nil {
		return nil, err
	}
	results, _, err := TopK(src, k, dir, TA)
	return results, err
}

// QueryFairness solves the query-fairness instance: the k most/least
// unfair queries over the (groups × locations) scope.
func QueryFairness(idx *index.QueryIndex, groupKeys []string, ls []core.Location, k int, dir Direction) ([]Result, error) {
	src, err := NewQueryLists(idx, groupKeys, ls)
	if err != nil {
		return nil, err
	}
	results, _, err := TopK(src, k, dir, TA)
	return results, err
}

// LocationFairness solves the location-fairness instance: the k most/least
// unfair locations over the (groups × queries) scope.
func LocationFairness(idx *index.LocationIndex, groupKeys []string, qs []core.Query, k int, dir Direction) ([]Result, error) {
	src, err := NewLocationLists(idx, groupKeys, qs)
	if err != nil {
		return nil, err
	}
	results, _, err := TopK(src, k, dir, TA)
	return results, err
}

// GroupFairnessAmong solves the restricted group-fairness question of
// §4.1's example ("Out of Black Males, Asian Males, Asian Females, and
// White Females, what are the 2 groups for which the site is the most
// unfair?"): the k most/least unfair groups among the given candidates.
func GroupFairnessAmong(idx *index.GroupIndex, candidates []string, qs []core.Query, ls []core.Location, k int, dir Direction) ([]Result, error) {
	src, err := NewGroupLists(idx, qs, ls)
	if err != nil {
		return nil, err
	}
	restricted, err := NewFilteredLists(src, candidates)
	if err != nil {
		return nil, err
	}
	results, _, err := TopK(restricted, k, dir, TA)
	return results, err
}
