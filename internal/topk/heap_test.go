package topk

import (
	"sort"
	"testing"
	"testing/quick"

	"fairjob/internal/stats"
)

func TestHeapInsertPopOrder(t *testing.T) {
	var h minHeap
	for _, v := range []float64{0.5, 0.1, 0.9, 0.3} {
		h.Insert(Result{Key: "k", Value: v})
	}
	want := []float64{0.1, 0.3, 0.5, 0.9}
	for _, w := range want {
		if got := h.Pop().Value; got != w {
			t.Fatalf("Pop = %v, want %v", got, w)
		}
	}
}

func TestHeapMinValue(t *testing.T) {
	var h minHeap
	h.Insert(Result{Key: "a", Value: 0.7})
	h.Insert(Result{Key: "b", Value: 0.2})
	if h.MinValue() != 0.2 {
		t.Fatalf("MinValue = %v", h.MinValue())
	}
	if h.Min().Key != "b" {
		t.Fatalf("Min = %v", h.Min())
	}
}

func TestHeapPanicsWhenEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"MinValue": func() { (&minHeap{}).MinValue() },
		"Min":      func() { (&minHeap{}).Min() },
		"Pop":      func() { (&minHeap{}).Pop() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHeapOfferBounded(t *testing.T) {
	var h minHeap
	const k = 3
	for i, v := range []float64{0.1, 0.2, 0.3, 0.05, 0.9} {
		h.Offer(Result{Key: string(rune('a' + i)), Value: v}, k)
	}
	if h.Len() != k {
		t.Fatalf("Len = %d", h.Len())
	}
	got := h.Drain()
	want := []float64{0.9, 0.3, 0.2}
	for i := range want {
		if got[i].Value != want[i] {
			t.Fatalf("Drain = %v", got)
		}
	}
}

func TestHeapOfferRejectsSmaller(t *testing.T) {
	var h minHeap
	h.Offer(Result{Key: "a", Value: 0.5}, 1)
	if h.Offer(Result{Key: "b", Value: 0.4}, 1) {
		t.Fatal("smaller value should be rejected when full")
	}
	if h.Offer(Result{Key: "c", Value: 0.6}, 1) != true {
		t.Fatal("larger value should displace root")
	}
	if h.Min().Key != "c" {
		t.Fatalf("root = %v", h.Min())
	}
}

func TestHeapDeterministicTieBreak(t *testing.T) {
	// Equal values: lexicographically smaller keys win retention.
	var h minHeap
	h.Offer(Result{Key: "b", Value: 0.5}, 1)
	if !h.Offer(Result{Key: "a", Value: 0.5}, 1) {
		t.Fatal("key 'a' should displace key 'b' at equal value")
	}
	if h.Min().Key != "a" {
		t.Fatalf("root = %v", h.Min())
	}
	// And the reverse insertion order gives the same final state.
	var h2 minHeap
	h2.Offer(Result{Key: "a", Value: 0.5}, 1)
	if h2.Offer(Result{Key: "b", Value: 0.5}, 1) {
		t.Fatal("key 'b' should not displace key 'a'")
	}
}

func TestHeapDrainSortedProperty(t *testing.T) {
	rng := stats.NewRNG(9)
	f := func(seed uint64, sz uint8) bool {
		r := stats.NewRNG(seed)
		n := int(sz%64) + 1
		var h minHeap
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
			h.Insert(Result{Key: "k", Value: vals[i]})
		}
		got := h.Drain()
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		for i := range vals {
			if got[i].Value != vals[i] {
				return false
			}
		}
		_ = rng
		return h.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
