// Package topk solves the paper's Problem 1 (Fairness Quantification):
// return the k members of one dimension — groups, queries or locations —
// for which a site is most or least unfair, averaged over the two other
// dimensions.
//
// The package implements the paper's adaptation of Fagin's Threshold
// Algorithm (Algorithm 1) plus three baselines used by the ablation
// benchmarks: Fagin's original FA, Fagin's No-Random-Access algorithm
// (NRA), and a naive full scan. Restricted variants (NewFilteredLists,
// GroupFairnessAmong) answer the paper's "out of these groups…" form of
// the question.
package topk

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/index"
)

// ListSource is the access interface Fagin-style algorithms need: a family
// of posting lists with identical membership (the index completion
// invariant), each sorted by descending value, supporting sorted access
// (At) and random access (Find).
type ListSource interface {
	// NumLists returns the number of posting lists (|Q|·|L| for
	// group-fairness).
	NumLists() int
	// ListLen returns the length of every list (identical by the
	// completion invariant).
	ListLen() int
	// At performs sorted access on list i at position pos.
	At(i, pos int) (index.Entry, bool)
	// Find performs random access for key on list i.
	Find(i int, key string) (float64, bool)
}

// groupLists exposes the I(q,l) family over a (Q, L) scope as a
// ListSource whose members are group keys.
type groupLists struct {
	lists []*index.Inverted
}

// NewGroupLists builds the group-fairness ListSource over the given scope.
// Nil qs or ls default to the index's full dimensions. It returns an error
// when a requested pair is not indexed.
func NewGroupLists(gi *index.GroupIndex, qs []core.Query, ls []core.Location) (ListSource, error) {
	if qs == nil {
		qs = gi.Queries
	}
	if ls == nil {
		ls = gi.Locations
	}
	src := &groupLists{}
	for _, q := range qs {
		for _, l := range ls {
			iv := gi.Get(q, l)
			if iv == nil {
				return nil, fmt.Errorf("topk: pair (%s, %s) not indexed", q, l)
			}
			src.lists = append(src.lists, iv)
		}
	}
	if len(src.lists) == 0 {
		return nil, fmt.Errorf("topk: empty scope")
	}
	return src, nil
}

func (s *groupLists) NumLists() int { return len(s.lists) }
func (s *groupLists) ListLen() int  { return s.lists[0].Len() }
func (s *groupLists) At(i, pos int) (index.Entry, bool) {
	return s.lists[i].At(pos)
}
func (s *groupLists) Find(i int, key string) (float64, bool) {
	return s.lists[i].Find(key)
}

// queryLists exposes the I(g,l) family over a (G, L) scope; members are
// queries.
type queryLists struct {
	lists []*index.Inverted
}

// NewQueryLists builds the query-fairness ListSource. groupKeys and ls nil
// default to the full dimensions.
func NewQueryLists(qi *index.QueryIndex, groupKeys []string, ls []core.Location) (ListSource, error) {
	if groupKeys == nil {
		groupKeys = qi.GroupKeys
	}
	if ls == nil {
		ls = qi.Locations
	}
	src := &queryLists{}
	for _, g := range groupKeys {
		for _, l := range ls {
			iv := qi.Get(g, l)
			if iv == nil {
				return nil, fmt.Errorf("topk: pair (%s, %s) not indexed", g, l)
			}
			src.lists = append(src.lists, iv)
		}
	}
	if len(src.lists) == 0 {
		return nil, fmt.Errorf("topk: empty scope")
	}
	return src, nil
}

func (s *queryLists) NumLists() int { return len(s.lists) }
func (s *queryLists) ListLen() int  { return s.lists[0].Len() }
func (s *queryLists) At(i, pos int) (index.Entry, bool) {
	return s.lists[i].At(pos)
}
func (s *queryLists) Find(i int, key string) (float64, bool) {
	return s.lists[i].Find(key)
}

// locationLists exposes the I(g,q) family over a (G, Q) scope; members are
// locations.
type locationLists struct {
	lists []*index.Inverted
}

// NewLocationLists builds the location-fairness ListSource.
func NewLocationLists(li *index.LocationIndex, groupKeys []string, qs []core.Query) (ListSource, error) {
	if groupKeys == nil {
		groupKeys = li.GroupKeys
	}
	if qs == nil {
		qs = li.Queries
	}
	src := &locationLists{}
	for _, g := range groupKeys {
		for _, q := range qs {
			iv := li.Get(g, q)
			if iv == nil {
				return nil, fmt.Errorf("topk: pair (%s, %s) not indexed", g, q)
			}
			src.lists = append(src.lists, iv)
		}
	}
	if len(src.lists) == 0 {
		return nil, fmt.Errorf("topk: empty scope")
	}
	return src, nil
}

func (s *locationLists) NumLists() int { return len(s.lists) }
func (s *locationLists) ListLen() int  { return s.lists[0].Len() }
func (s *locationLists) At(i, pos int) (index.Entry, bool) {
	return s.lists[i].At(pos)
}
func (s *locationLists) Find(i int, key string) (float64, bool) {
	return s.lists[i].Find(key)
}

// reversedLists adapts a ListSource so that ascending order on the
// original becomes descending order on the adapter, by reading lists back
// to front with negated values. Running the most-unfair algorithm on the
// adapter yields the least-unfair answer on the original.
type reversedLists struct {
	src ListSource
}

func (r reversedLists) NumLists() int { return r.src.NumLists() }
func (r reversedLists) ListLen() int  { return r.src.ListLen() }
func (r reversedLists) At(i, pos int) (index.Entry, bool) {
	e, ok := r.src.At(i, r.src.ListLen()-1-pos)
	if !ok {
		return index.Entry{}, false
	}
	return index.Entry{Key: e.Key, Value: -e.Value}, true
}
func (r reversedLists) Find(i int, key string) (float64, bool) {
	v, ok := r.src.Find(i, key)
	return -v, ok
}

// filteredLists restricts a ListSource's membership to a subset of keys,
// preserving each list's order. It supports the paper's restricted
// quantification questions ("Out of Black Males, Asian Males, Asian
// Females, and White Females, what are the 2 groups for which the site is
// most unfair?"): top-k must be computed among the subset, not filtered
// out of an unrestricted answer.
type filteredLists struct {
	src     ListSource
	keep    map[string]bool
	listLen int
	// positions[i] holds, for list i, the source positions of the kept
	// entries in order.
	positions [][]int
}

// NewFilteredLists wraps src keeping only the given member keys. It
// returns an error when no key is kept.
func NewFilteredLists(src ListSource, keys []string) (ListSource, error) {
	keep := make(map[string]bool, len(keys))
	for _, k := range keys {
		keep[k] = true
	}
	f := &filteredLists{src: src, keep: keep}
	n := src.NumLists()
	f.positions = make([][]int, n)
	for i := 0; i < n; i++ {
		for pos := 0; pos < src.ListLen(); pos++ {
			e, ok := src.At(i, pos)
			if !ok {
				break
			}
			if keep[e.Key] {
				f.positions[i] = append(f.positions[i], pos)
			}
		}
	}
	if len(f.positions) == 0 || len(f.positions[0]) == 0 {
		return nil, fmt.Errorf("topk: restriction keeps no members")
	}
	f.listLen = len(f.positions[0])
	return f, nil
}

func (f *filteredLists) NumLists() int { return f.src.NumLists() }
func (f *filteredLists) ListLen() int  { return f.listLen }
func (f *filteredLists) At(i, pos int) (index.Entry, bool) {
	if pos < 0 || pos >= len(f.positions[i]) {
		return index.Entry{}, false
	}
	return f.src.At(i, f.positions[i][pos])
}
func (f *filteredLists) Find(i int, key string) (float64, bool) {
	if !f.keep[key] {
		return 0, false
	}
	return f.src.Find(i, key)
}
