package topk

import (
	"context"
	"fmt"
	"sort"
)

// Direction selects between the most-unfair (descending) and least-unfair
// (ascending) variants of Problem 1.
type Direction int

const (
	// MostUnfair returns the k members with the highest aggregated
	// unfairness.
	MostUnfair Direction = iota
	// LeastUnfair returns the k members with the lowest aggregated
	// unfairness.
	LeastUnfair
)

func (d Direction) String() string {
	switch d {
	case MostUnfair:
		return "most-unfair"
	case LeastUnfair:
		return "least-unfair"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Algorithm selects the top-k strategy. TA is the paper's Algorithm 1;
// FA and Naive are the baselines used in the ablation benchmarks.
type Algorithm int

const (
	// TA is Fagin's Threshold Algorithm: round-robin sorted access with
	// random-access completion and a threshold stopping rule.
	TA Algorithm = iota
	// FA is Fagin's original algorithm: sorted access until k members
	// have been seen on every list, then random-access completion.
	FA
	// Naive scans every member of every list.
	Naive
	// NRA is Fagin's No-Random-Access algorithm: sorted access only,
	// with lower/upper score bounds per member.
	NRA
)

func (a Algorithm) String() string {
	switch a {
	case TA:
		return "TA"
	case FA:
		return "FA"
	case Naive:
		return "naive"
	case NRA:
		return "NRA"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists every implemented top-k strategy, in declaration
// order; the equivalence tests and the serve layer's cross-algorithm
// checks iterate it rather than hard-coding the set.
func Algorithms() []Algorithm { return []Algorithm{TA, FA, Naive, NRA} }

// Stats reports the access costs of a top-k run, the quantity the
// Fagin-vs-baseline ablation measures.
type Stats struct {
	SortedAccesses int
	RandomAccesses int
	Rounds         int
}

// Total returns the combined sorted + random access count, the cost
// metric of the Fagin-vs-naive comparison.
func (s Stats) Total() int { return s.SortedAccesses + s.RandomAccesses }

// Every algorithm below keeps its query-time state — round-robin sorted
// access cursors, seen-sets, candidate accumulators, bounded result heaps
// and access-cost counters — in a per-call state struct built fresh inside
// TopK. A ListSource is only ever read, never written, so a single source
// (typically a view over an immutable index snapshot, see internal/serve)
// safely serves any number of simultaneous TopK calls; the race and
// concurrency tests pin this contract.

// Recorder receives the access-cost statistics of completed top-k runs.
// The serve engine implements it to export every execution's Stats into
// its per-algorithm telemetry histograms (DESIGN.md §9); experiments and
// ablations can implement it to collect Table-6-style cost series
// without threading counters through call sites.
type Recorder interface {
	RecordTopK(algo Algorithm, dir Direction, st Stats)
}

// RecorderFunc adapts a plain function to Recorder, the way
// http.HandlerFunc adapts handlers — wide-event emission and tests hook
// the access-cost hand-off with a closure instead of a named type.
type RecorderFunc func(algo Algorithm, dir Direction, st Stats)

// RecordTopK implements Recorder by calling f.
func (f RecorderFunc) RecordTopK(algo Algorithm, dir Direction, st Stats) { f(algo, dir, st) }

// MultiRecorder fans each completed run out to every recorder in order,
// skipping nils — e.g. the serve engine's histograms plus a wide-event
// logger observing the same executions.
func MultiRecorder(recs ...Recorder) Recorder {
	kept := make(multiRecorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	return kept
}

type multiRecorder []Recorder

func (m multiRecorder) RecordTopK(algo Algorithm, dir Direction, st Stats) {
	for _, r := range m {
		r.RecordTopK(algo, dir, st)
	}
}

// TopK solves fairness quantification over src: the k members with the
// most/least average value across lists. It returns results in order
// (most-unfair first for MostUnfair, least-unfair first for LeastUnfair).
// k larger than the membership returns all members ranked.
func TopK(src ListSource, k int, dir Direction, algo Algorithm) ([]Result, Stats, error) {
	return TopKWith(src, k, dir, algo, nil)
}

// TopKWith is TopK with an optional Recorder: a successful run reports
// its Stats to rec before returning. A nil rec records nothing.
func TopKWith(src ListSource, k int, dir Direction, algo Algorithm, rec Recorder) ([]Result, Stats, error) {
	return TopKCtxWith(context.Background(), src, k, dir, algo, rec)
}

func errKNotPositive(k int) error {
	return fmt.Errorf("topk: k must be positive, got %d", k)
}

// errUnknownAlgorithm is a misconfiguration (the Algorithm enum is
// closed), so dispatch panics with it rather than returning it — the
// config-time half of the panic-vs-error policy in the repository
// doc.go.
func errUnknownAlgorithm(algo Algorithm) string {
	return fmt.Sprintf("topk: unknown algorithm %d", int(algo))
}

// taState owns the query-time state of one Threshold Algorithm execution
// (the paper's Algorithm 1): the shared sorted-access cursor, the set of
// members already completed by random access, the bounded result heap and
// the access counters. Nothing here outlives or escapes the call.
type taState struct {
	src    ListSource
	k      int
	cursor int             // round-robin sorted-access position, shared by all lists
	seen   map[string]bool // members already completed via random access
	heap   minHeap         // current top-k candidates
	cancel canceler
	stats  Stats
}

func newTAState(src ListSource, k int) *taState {
	return &taState{src: src, k: k, seen: make(map[string]bool)}
}

// run advances the cursor one position per round across every list
// (sorted access), completes each newly discovered member with random
// accesses to all other lists, and recomputes the round threshold τ — the
// average of the frontier values, a valid upper bound on any unseen
// member's aggregate because lists are sorted descending and membership is
// identical. It stops when the heap holds k members with min value ≥ τ,
// or when the lists are exhausted.
func (st *taState) run() ([]Result, Stats, error) {
	n := st.src.NumLists()
	listLen := st.src.ListLen()
	denom := float64(n)
	for ; st.cursor < listLen; st.cursor++ {
		if err := st.cancel.check(); err != nil {
			return nil, st.stats, err
		}
		st.stats.Rounds++
		var frontierSum float64
		for i := 0; i < n; i++ {
			e, ok := st.src.At(i, st.cursor)
			st.stats.SortedAccesses++
			if !ok {
				return st.heap.Drain(), st.stats, nil
			}
			frontierSum += e.Value
			if st.seen[e.Key] {
				continue
			}
			st.seen[e.Key] = true
			total := e.Value
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				v, _ := st.src.Find(j, e.Key)
				st.stats.RandomAccesses++
				total += v
			}
			st.heap.Offer(Result{Key: e.Key, Value: total / denom}, st.k)
		}
		tau := frontierSum / denom
		if st.heap.Len() >= st.k && st.heap.MinValue() >= tau {
			break
		}
	}
	return st.heap.Drain(), st.stats, nil
}

// faState owns the query-time state of one run of Fagin's original
// algorithm: the per-member list-coverage counts from the sorted-access
// phase, and the result heap of the random-access completion phase.
type faState struct {
	src    ListSource
	k      int
	count  map[string]int // lists each member has been seen on
	full   int            // members seen on every list
	cancel canceler
	stats  Stats
}

func newFAState(src ListSource, k int) *faState {
	return &faState{src: src, k: k, count: make(map[string]int)}
}

// run performs sorted access in parallel until at least k members have
// been encountered on every list, then completes every member seen with
// random accesses.
func (st *faState) run() ([]Result, Stats, error) {
	n := st.src.NumLists()
	listLen := st.src.ListLen()
	for pos := 0; pos < listLen && st.full < st.k; pos++ {
		if err := st.cancel.check(); err != nil {
			return nil, st.stats, err
		}
		st.stats.Rounds++
		for i := 0; i < n; i++ {
			e, ok := st.src.At(i, pos)
			st.stats.SortedAccesses++
			if !ok {
				continue
			}
			st.count[e.Key]++
			if st.count[e.Key] == n {
				st.full++
			}
		}
	}
	var heap minHeap
	completed := 0
	for key := range st.count {
		if completed&(checkpointStride-1) == 0 {
			if err := st.cancel.check(); err != nil {
				return nil, st.stats, err
			}
		}
		completed++
		var total float64
		for i := 0; i < n; i++ {
			v, _ := st.src.Find(i, key)
			st.stats.RandomAccesses++
			total += v
		}
		heap.Offer(Result{Key: key, Value: total / float64(n)}, st.k)
	}
	return heap.Drain(), st.stats, nil
}

// naiveState owns the query-time state of the naive full scan: the
// per-member running totals.
type naiveState struct {
	src    ListSource
	k      int
	totals map[string]float64
	cancel canceler
	stats  Stats
}

func newNaiveState(src ListSource, k int) *naiveState {
	return &naiveState{src: src, k: k, totals: make(map[string]float64, src.ListLen())}
}

// run reads every posting of every list, checking for cancellation
// every checkpointStride postings — the full scan has no natural round
// boundary, so the stride is what bounds cancellation latency here.
func (st *naiveState) run() ([]Result, Stats, error) {
	n := st.src.NumLists()
	listLen := st.src.ListLen()
	for i := 0; i < n; i++ {
		for pos := 0; pos < listLen; pos++ {
			if pos&(checkpointStride-1) == 0 {
				if err := st.cancel.check(); err != nil {
					return nil, st.stats, err
				}
			}
			e, ok := st.src.At(i, pos)
			st.stats.SortedAccesses++
			if !ok {
				break
			}
			st.totals[e.Key] += e.Value
		}
	}
	st.stats.Rounds = listLen
	var heap minHeap
	for key, total := range st.totals {
		heap.Offer(Result{Key: key, Value: total / float64(n)}, st.k)
	}
	return heap.Drain(), st.stats, nil
}

// sortResults orders results descending by value with deterministic key
// tie-break; exported algorithms return already-ordered output, this is a
// helper for tests and aggregation call sites.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Value != rs[j].Value {
			return rs[i].Value > rs[j].Value
		}
		return rs[i].Key < rs[j].Key
	})
}
