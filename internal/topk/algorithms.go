package topk

import (
	"fmt"
	"sort"
)

// Direction selects between the most-unfair (descending) and least-unfair
// (ascending) variants of Problem 1.
type Direction int

const (
	// MostUnfair returns the k members with the highest aggregated
	// unfairness.
	MostUnfair Direction = iota
	// LeastUnfair returns the k members with the lowest aggregated
	// unfairness.
	LeastUnfair
)

func (d Direction) String() string {
	switch d {
	case MostUnfair:
		return "most-unfair"
	case LeastUnfair:
		return "least-unfair"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Algorithm selects the top-k strategy. TA is the paper's Algorithm 1;
// FA and Naive are the baselines used in the ablation benchmarks.
type Algorithm int

const (
	// TA is Fagin's Threshold Algorithm: round-robin sorted access with
	// random-access completion and a threshold stopping rule.
	TA Algorithm = iota
	// FA is Fagin's original algorithm: sorted access until k members
	// have been seen on every list, then random-access completion.
	FA
	// Naive scans every member of every list.
	Naive
	// NRA is Fagin's No-Random-Access algorithm: sorted access only,
	// with lower/upper score bounds per member.
	NRA
)

func (a Algorithm) String() string {
	switch a {
	case TA:
		return "TA"
	case FA:
		return "FA"
	case Naive:
		return "naive"
	case NRA:
		return "NRA"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Stats reports the access costs of a top-k run, the quantity the
// Fagin-vs-baseline ablation measures.
type Stats struct {
	SortedAccesses int
	RandomAccesses int
	Rounds         int
}

// TopK solves fairness quantification over src: the k members with the
// most/least average value across lists. It returns results in order
// (most-unfair first for MostUnfair, least-unfair first for LeastUnfair).
// k larger than the membership returns all members ranked.
func TopK(src ListSource, k int, dir Direction, algo Algorithm) ([]Result, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	run := func(s ListSource) ([]Result, Stats) {
		switch algo {
		case TA:
			return thresholdAlgorithm(s, k)
		case FA:
			return faginFA(s, k)
		case Naive:
			return naiveScan(s, k)
		case NRA:
			return nra(s, k)
		default:
			panic(fmt.Sprintf("topk: unknown algorithm %d", int(algo)))
		}
	}
	if dir == LeastUnfair {
		results, stats := run(reversedLists{src})
		for i := range results {
			results[i].Value = -results[i].Value
		}
		return results, stats, nil
	}
	results, stats := run(src)
	return results, stats, nil
}

// thresholdAlgorithm is the paper's Algorithm 1. Each round advances a
// shared cursor across every list (sorted access); each newly discovered
// member is completed with random accesses to all other lists; the round
// threshold τ is the average of the frontier values, a valid upper bound
// on any unseen member's aggregate because lists are sorted descending and
// membership is identical. The run stops when the heap holds k members
// with min value ≥ τ, or when the lists are exhausted.
func thresholdAlgorithm(src ListSource, k int) ([]Result, Stats) {
	var (
		stats     Stats
		heap      minHeap
		seen      = make(map[string]bool)
		n         = src.NumLists()
		listLen   = src.ListLen()
		denom     = float64(n)
		exhausted bool
	)
	for pos := 0; !exhausted; pos++ {
		if pos >= listLen {
			break
		}
		stats.Rounds++
		var frontierSum float64
		for i := 0; i < n; i++ {
			e, ok := src.At(i, pos)
			stats.SortedAccesses++
			if !ok {
				exhausted = true
				break
			}
			frontierSum += e.Value
			if seen[e.Key] {
				continue
			}
			seen[e.Key] = true
			total := e.Value
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				v, _ := src.Find(j, e.Key)
				stats.RandomAccesses++
				total += v
			}
			heap.Offer(Result{Key: e.Key, Value: total / denom}, k)
		}
		if exhausted {
			break
		}
		tau := frontierSum / denom
		if heap.Len() >= k && heap.MinValue() >= tau {
			break
		}
	}
	return heap.Drain(), stats
}

// faginFA is Fagin's original algorithm: sorted access in parallel until at
// least k members have been encountered on every list, then random-access
// completion of every member seen.
func faginFA(src ListSource, k int) ([]Result, Stats) {
	var (
		stats   Stats
		n       = src.NumLists()
		listLen = src.ListLen()
		count   = make(map[string]int)
		full    int
	)
	pos := 0
	for ; pos < listLen && full < k; pos++ {
		stats.Rounds++
		for i := 0; i < n; i++ {
			e, ok := src.At(i, pos)
			stats.SortedAccesses++
			if !ok {
				continue
			}
			count[e.Key]++
			if count[e.Key] == n {
				full++
			}
		}
	}
	var heap minHeap
	for key := range count {
		var total float64
		for i := 0; i < n; i++ {
			v, _ := src.Find(i, key)
			stats.RandomAccesses++
			total += v
		}
		heap.Offer(Result{Key: key, Value: total / float64(n)}, k)
	}
	return heap.Drain(), stats
}

// naiveScan reads every posting of every list.
func naiveScan(src ListSource, k int) ([]Result, Stats) {
	var stats Stats
	n := src.NumLists()
	listLen := src.ListLen()
	totals := make(map[string]float64, listLen)
	for i := 0; i < n; i++ {
		for pos := 0; pos < listLen; pos++ {
			e, ok := src.At(i, pos)
			stats.SortedAccesses++
			if !ok {
				break
			}
			totals[e.Key] += e.Value
		}
	}
	stats.Rounds = listLen
	var heap minHeap
	for key, total := range totals {
		heap.Offer(Result{Key: key, Value: total / float64(n)}, k)
	}
	return heap.Drain(), stats
}

// sortResults orders results descending by value with deterministic key
// tie-break; exported algorithms return already-ordered output, this is a
// helper for tests and aggregation call sites.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Value != rs[j].Value {
			return rs[i].Value > rs[j].Value
		}
		return rs[i].Key < rs[j].Key
	})
}
