package topk

// nraState owns the query-time state of one run of Fagin's No-Random-
// Access algorithm, the third member of the Fagin family the paper's §4.2
// alludes to ("we propose adaptations of Fagin's algorithms"): the
// per-member candidate accumulators (partial sums and list-coverage
// counts) and the per-list frontier values. NRA never calls Find: each
// round performs one sorted access per list and maintains, for every
// member seen so far, a lower bound (seen values; unseen lists contribute
// 0, the completion floor) and an upper bound (unseen lists contribute
// their current frontier value). It stops when the k best lower bounds
// are exact — the member has been seen on every list — and no other
// member's upper bound can beat the k-th exact score.
//
// NRA is the right choice when random access is expensive or impossible
// (e.g. streaming posting lists); the BenchmarkAblationTopK benchmark
// compares its cost profile against TA, FA and the naive scan.
type nraState struct {
	src      ListSource
	k        int
	cands    map[string]*nraCand
	frontier []float64
	cancel   canceler
	stats    Stats
}

// nraCand accumulates one member's partial evidence: the sum of values on
// lists where the member was seen, and how many lists those were.
type nraCand struct {
	sum  float64
	seen int
}

func newNRAState(src ListSource, k int) *nraState {
	return &nraState{
		src:      src,
		k:        k,
		cands:    make(map[string]*nraCand),
		frontier: make([]float64, src.NumLists()),
	}
}

func (st *nraState) run() ([]Result, Stats, error) {
	n := st.src.NumLists()
	listLen := st.src.ListLen()
	denom := float64(n)
	for pos := 0; pos < listLen; pos++ {
		if err := st.cancel.check(); err != nil {
			return nil, st.stats, err
		}
		st.stats.Rounds++
		for i := 0; i < n; i++ {
			e, ok := st.src.At(i, pos)
			st.stats.SortedAccesses++
			if !ok {
				continue
			}
			st.frontier[i] = e.Value
			c := st.cands[e.Key]
			if c == nil {
				c = &nraCand{}
				st.cands[e.Key] = c
			}
			c.sum += e.Value
			c.seen++
		}

		// A member unseen on a list ranks at or below that list's
		// cursor, so its value there is bounded by the list's frontier;
		// maxFrontier bounds it on any list. Correctness needs an upper
		// bound, not the tightest one.
		maxFrontier := 0.0
		for _, f := range st.frontier {
			if f > maxFrontier {
				maxFrontier = f
			}
		}

		// Collect exact candidates (seen everywhere) and track the best
		// upper bound among non-exact ones.
		var exact minHeap
		bestOpenUpper := 0.0
		for key, c := range st.cands {
			if c.seen == n {
				exact.Offer(Result{Key: key, Value: c.sum / denom}, st.k)
			} else {
				upper := (c.sum + float64(n-c.seen)*maxFrontier) / denom
				if upper > bestOpenUpper {
					bestOpenUpper = upper
				}
			}
		}
		// A completely unseen member is bounded by the frontier on every
		// list.
		if unseenUpper := maxFrontier; unseenUpper > bestOpenUpper && len(st.cands) < listLen {
			bestOpenUpper = unseenUpper
		}
		if exact.Len() >= st.k && exact.MinValue() >= bestOpenUpper {
			return exact.Drain(), st.stats, nil
		}
	}

	// Lists exhausted: every member has been seen everywhere.
	var heap minHeap
	for key, c := range st.cands {
		heap.Offer(Result{Key: key, Value: c.sum / denom}, st.k)
	}
	return heap.Drain(), st.stats, nil
}
