package topk

// nra is Fagin's No-Random-Access algorithm, the third member of the
// Fagin family the paper's §4.2 alludes to ("we propose adaptations of
// Fagin's algorithms"). It never calls Find: each round performs one
// sorted access per list and maintains, for every member seen so far, a
// lower bound (seen values; unseen lists contribute 0, the completion
// floor) and an upper bound (unseen lists contribute their current
// frontier value). It stops when the k best lower bounds are exact — the
// member has been seen on every list — and no other member's upper bound
// can beat the k-th exact score.
//
// NRA is the right choice when random access is expensive or impossible
// (e.g. streaming posting lists); the BenchmarkAblationTopK benchmark
// compares its cost profile against TA, FA and the naive scan.
func nra(src ListSource, k int) ([]Result, Stats) {
	var stats Stats
	n := src.NumLists()
	listLen := src.ListLen()

	type cand struct {
		sum  float64 // sum of values on lists where the member was seen
		seen int     // number of lists the member was seen on
	}
	cands := make(map[string]*cand)
	frontier := make([]float64, n)

	denom := float64(n)
	for pos := 0; pos < listLen; pos++ {
		stats.Rounds++
		for i := 0; i < n; i++ {
			e, ok := src.At(i, pos)
			stats.SortedAccesses++
			if !ok {
				continue
			}
			frontier[i] = e.Value
			c := cands[e.Key]
			if c == nil {
				c = &cand{}
				cands[e.Key] = c
			}
			c.sum += e.Value
			c.seen++
		}

		// A member unseen on a list ranks at or below that list's
		// cursor, so its value there is bounded by the list's frontier;
		// maxFrontier bounds it on any list. Correctness needs an upper
		// bound, not the tightest one.
		maxFrontier := 0.0
		for _, f := range frontier {
			if f > maxFrontier {
				maxFrontier = f
			}
		}

		// Collect exact candidates (seen everywhere) and track the best
		// upper bound among non-exact ones.
		var exact minHeap
		bestOpenUpper := 0.0
		for key, c := range cands {
			if c.seen == n {
				exact.Offer(Result{Key: key, Value: c.sum / denom}, k)
			} else {
				upper := (c.sum + float64(n-c.seen)*maxFrontier) / denom
				if upper > bestOpenUpper {
					bestOpenUpper = upper
				}
			}
		}
		// A completely unseen member is bounded by the frontier on every
		// list.
		if unseenUpper := maxFrontier; unseenUpper > bestOpenUpper && len(cands) < listLen {
			bestOpenUpper = unseenUpper
		}
		if exact.Len() >= k && exact.MinValue() >= bestOpenUpper {
			return exact.Drain(), stats
		}
	}

	// Lists exhausted: every member has been seen everywhere.
	var heap minHeap
	for key, c := range cands {
		heap.Offer(Result{Key: key, Value: c.sum / denom}, k)
	}
	return heap.Drain(), stats
}
