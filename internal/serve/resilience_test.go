package serve_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// TestDoCtxTypedCancellation pins the error taxonomy: a dead context is
// refused with the package's typed sentinels, and those sentinels still
// match the underlying context errors via errors.Is.
func TestDoCtxTypedCancellation(t *testing.T) {
	rng := stats.NewRNG(51)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{CacheSize: -1})
	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	resp := eng.DoCtx(canceled, req)
	if !errors.Is(resp.Err, serve.ErrCanceled) || !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled wrapping context.Canceled", resp.Err)
	}
	if resp.Gen != snap.Gen() {
		t.Fatalf("refused response lost its generation: %d", resp.Gen)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	resp = eng.DoCtx(expired, req)
	if !errors.Is(resp.Err, serve.ErrDeadlineExceeded) || !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadlineExceeded wrapping context.DeadlineExceeded", resp.Err)
	}

	reg := eng.Registry()
	if got := reg.Counter("serve_canceled_total").Value(); got != 1 {
		t.Fatalf("serve_canceled_total = %d, want 1", got)
	}
	if got := reg.Counter("serve_deadline_exceeded_total").Value(); got != 1 {
		t.Fatalf("serve_deadline_exceeded_total = %d, want 1", got)
	}
}

// TestCacheHitBypassesDeadContext pins the documented probe-before-gate
// ordering: a cached answer costs no compute, so it is served even on a
// context that is already dead.
func TestCacheHitBypassesDeadContext(t *testing.T) {
	rng := stats.NewRNG(52)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{})
	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}

	warm := eng.Do(req)
	if warm.Err != nil {
		t.Fatalf("warmup: %v", warm.Err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := eng.DoCtx(ctx, req)
	if resp.Err != nil || !resp.CacheHit {
		t.Fatalf("cached request on dead ctx: hit=%v err=%v, want a free cache hit", resp.CacheHit, resp.Err)
	}
	if fingerprint(resp) != fingerprint(warm) {
		t.Fatal("cache hit on dead ctx returned a different answer")
	}
}

// TestDrainConfigShedsAllCompute covers MaxInflight < 0, the drain
// configuration: every compute request sheds with ErrOverloaded, the shed
// counter ticks, and Ready reports the engine as unready.
func TestDrainConfigShedsAllCompute(t *testing.T) {
	rng := stats.NewRNG(53)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{CacheSize: -1, MaxInflight: -1})

	for i, req := range []serve.Request{
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByQuery, K: 2, Algorithm: topk.Naive},
	} {
		if resp := eng.Do(req); !errors.Is(resp.Err, serve.ErrOverloaded) {
			t.Fatalf("request %d under drain: err = %v, want ErrOverloaded", i, resp.Err)
		}
	}
	if got := eng.Registry().Counter("serve_shed_total").Value(); got != 2 {
		t.Fatalf("serve_shed_total = %d, want 2", got)
	}
	if err := eng.Ready(); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("Ready under drain = %v, want an error wrapping ErrOverloaded", err)
	}
}

// TestReadyOnHealthyEngine is the happy half of the readiness probe.
func TestReadyOnHealthyEngine(t *testing.T) {
	rng := stats.NewRNG(54)
	snap := serve.NewSnapshot(randomTable(rng, 3, 2, 2, 0))
	for _, opts := range []serve.Options{{}, {MaxInflight: 4}} {
		if err := serve.NewEngine(snap, opts).Ready(); err != nil {
			t.Fatalf("Ready on idle engine (%+v) = %v, want nil", opts, err)
		}
	}
}

// TestRefreshRetriesTransientPanics drives RefreshCtx through two
// poisoned builds before a clean one: the retry policy absorbs the
// panics, refresh_retries_total counts them, no real time is slept, and
// the snapshot generation advances with the update applied.
func TestRefreshRetriesTransientPanics(t *testing.T) {
	rng := stats.NewRNG(55)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	var slept []time.Duration
	eng := serve.NewEngine(snap, serve.Options{
		CacheSize: -1,
		Retry:     serve.RetryPolicy{MaxAttempts: 4, Sleep: func(d time.Duration) { slept = append(slept, d) }},
	})
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	builds := 0
	next, err := eng.RefreshCtx(context.Background(), func(tbl *core.Table) {
		builds++
		if builds <= 2 {
			panic("transient store hiccup")
		}
		tbl.Set(g, "q00", "l00", 0.5)
	})
	if err != nil {
		t.Fatalf("RefreshCtx: %v", err)
	}
	if builds != 3 || len(slept) != 2 {
		t.Fatalf("builds=%d sleeps=%d, want 3 and 2", builds, len(slept))
	}
	if next.Gen() <= snap.Gen() || eng.Snapshot() != next {
		t.Fatalf("refresh did not publish a newer generation: %d -> %d", snap.Gen(), next.Gen())
	}
	if got := eng.Registry().Counter("refresh_retries_total").Value(); got != 2 {
		t.Fatalf("refresh_retries_total = %d, want 2", got)
	}
}

// TestRefreshFailureKeepsOldGeneration: when every build attempt dies,
// RefreshCtx reports ErrInternal and the engine keeps serving the
// previous snapshot — a broken refresh must never unpublish a good one.
func TestRefreshFailureKeepsOldGeneration(t *testing.T) {
	rng := stats.NewRNG(56)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{
		CacheSize: -1,
		Retry:     serve.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	_, err := eng.RefreshCtx(context.Background(), func(*core.Table) { panic("poisoned update") })
	if !errors.Is(err, serve.ErrInternal) {
		t.Fatalf("RefreshCtx = %v, want an error wrapping ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("terminal error %q does not report the attempt budget", err)
	}
	if eng.Snapshot() != snap {
		t.Fatal("failed refresh replaced the serving snapshot")
	}
	resp := eng.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Algorithm: topk.TA})
	if resp.Err != nil || resp.Gen != snap.Gen() {
		t.Fatalf("engine unhealthy after failed refresh: gen=%d err=%v", resp.Gen, resp.Err)
	}
}

// TestRefreshCtxObservesCancellation: a dead context aborts the refresh
// with the typed error before any build is attempted.
func TestRefreshCtxObservesCancellation(t *testing.T) {
	rng := stats.NewRNG(57)
	eng := serve.NewEngine(serve.NewSnapshot(randomTable(rng, 3, 2, 2, 0)), serve.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	applied := false
	_, err := eng.RefreshCtx(ctx, func(*core.Table) { applied = true })
	if !errors.Is(err, serve.ErrCanceled) {
		t.Fatalf("RefreshCtx on dead ctx = %v, want ErrCanceled", err)
	}
	if applied {
		t.Fatal("canceled refresh still ran the update")
	}
}

// TestDoBatchCtxCancellationLosesNoResponse: a batch on a dead context
// still returns one Response per Request, each carrying the typed error —
// callers can always tell which members of a batch completed.
func TestDoBatchCtxCancellationLosesNoResponse(t *testing.T) {
	rng := stats.NewRNG(58)
	snap := serve.NewSnapshot(randomTable(rng, 5, 4, 3, 0.1))
	eng := serve.NewEngine(snap, serve.Options{Workers: 4, CacheSize: -1})
	reqs := battery(snap)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := eng.DoBatchCtx(ctx, reqs)
	if len(out) != len(reqs) {
		t.Fatalf("batch returned %d responses for %d requests", len(out), len(reqs))
	}
	for i, resp := range out {
		if !errors.Is(resp.Err, serve.ErrCanceled) {
			t.Fatalf("response %d: err = %v, want ErrCanceled", i, resp.Err)
		}
		if resp.Gen != snap.Gen() {
			t.Fatalf("response %d lost its generation", i)
		}
	}
}

// TestSwapDuringBatchKeepsBatchConsistent swaps snapshots while batches
// run over a tiny, eviction-churning cache: every response in one batch
// must report the same pinned generation, and every answer must match
// that generation's baseline — a batch is one consistent read even while
// the cache is evicting entries from both generations.
func TestSwapDuringBatchKeepsBatchConsistent(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	rng := stats.NewRNG(59)
	s1 := serve.NewSnapshot(randomTable(rng, 6, 4, 4, 0.1))
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	s2 := s1.WithUpdates(func(tbl *core.Table) {
		for _, q := range tbl.Queries() {
			for _, l := range tbl.Locations() {
				tbl.Set(g, q, l, 0.999)
			}
		}
	})

	reqs := battery(s1)
	baseline := map[uint64][]string{}
	for _, s := range []*serve.Snapshot{s1, s2} {
		ref := serve.NewEngine(s, serve.Options{Workers: 1, CacheSize: -1})
		fps := make([]string, len(reqs))
		for i, r := range reqs {
			fps[i] = fingerprint(ref.Do(r))
		}
		baseline[s.Gen()] = fps
	}

	// CacheSize 2 over a battery of dozens of distinct requests ≈
	// constant eviction churn across both generations' keys.
	eng := serve.NewEngine(s1, serve.Options{Workers: 8, CacheSize: 2})
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				eng.Swap(s2)
			} else {
				eng.Swap(s1)
			}
		}
	}()

	for round := 0; round < rounds; round++ {
		out := eng.DoBatch(reqs)
		gen := out[0].Gen
		fps, ok := baseline[gen]
		if !ok {
			t.Fatalf("round %d: batch reported unknown generation %d", round, gen)
		}
		for i, resp := range out {
			if resp.Gen != gen {
				t.Fatalf("round %d: batch mixed generations %d and %d", round, gen, resp.Gen)
			}
			if resp.Err != nil {
				t.Fatalf("round %d request %d: %v", round, i, resp.Err)
			}
			if got := fingerprint(resp); got != fps[i] {
				t.Fatalf("round %d request %d: answer blended across generations", round, i)
			}
		}
	}
	close(stop)
	swapper.Wait()
}

// TestAdmissionBoundsConcurrentCompute runs a gated engine under heavy
// parallel load: requests either complete correctly or shed with the
// typed overload error, and nothing deadlocks or panics under -race.
func TestAdmissionBoundsConcurrentCompute(t *testing.T) {
	rng := stats.NewRNG(60)
	snap := serve.NewSnapshot(randomTable(rng, 6, 4, 4, 0.1))
	eng := serve.NewEngine(snap, serve.Options{CacheSize: -1, MaxInflight: 2, MaxQueue: 4})
	reqs := battery(snap)
	want := make([]string, len(reqs))
	ref := serve.NewEngine(snap, serve.Options{Workers: 1, CacheSize: -1})
	for i, r := range reqs {
		want[i] = fingerprint(ref.Do(r))
	}

	var wg sync.WaitGroup
	var completed, shedded int
	var mu sync.Mutex
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 30; n++ {
				i := (w + n) % len(reqs)
				resp := eng.Do(reqs[i])
				if errors.Is(resp.Err, serve.ErrOverloaded) {
					mu.Lock()
					shedded++
					mu.Unlock()
					continue
				}
				if resp.Err != nil {
					t.Errorf("unexpected error: %v", resp.Err)
					return
				}
				if fingerprint(resp) != want[i] {
					t.Errorf("gated engine corrupted request %d", i)
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if completed == 0 {
		t.Fatal("no request completed under admission control")
	}
	shed := eng.Registry().Counter("serve_shed_total").Value()
	if shed != uint64(shedded) {
		t.Fatalf("serve_shed_total = %d, but %d requests saw ErrOverloaded", shed, shedded)
	}
	if err := eng.Ready(); err != nil {
		t.Fatalf("Ready after load drained = %v, want nil", err)
	}
}
