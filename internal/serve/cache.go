package serve

import "sync"

// cacheKey identifies one cacheable query result. It embeds everything
// that determines the answer: the snapshot generation plus every request
// field — problem, quantification dimension, k, direction, algorithm,
// candidate restriction, comparison operands, breakdown dimension and
// aggregation semantics. Two requests with equal keys against equal
// generations are the same computation, which is what makes serving a
// cached Response sound; a table refresh bumps the generation and thereby
// invalidates every older entry without touching the cache.
type cacheKey struct {
	gen         uint64
	problem     Problem
	dim         int
	k           int
	dir         int
	algo        int
	candidates  string // "\x1f"-joined restriction set, "" = unrestricted
	r1, r2      string
	by          int
	definedOnly bool

	// Mitigate request shape. The float knobs are stored as their IEEE
	// bit patterns: cache keys need equality, not arithmetic, and bits
	// keep the struct comparable.
	mitigator       int
	group           string
	query, location string
	minProp, alpha  uint64
	budget          int
}

// lruCache is a fixed-capacity least-recently-used map from cacheKey to
// Response, safe for concurrent use. Entries form an intrusive doubly
// linked list in recency order; Get promotes, Put inserts at the front
// and evicts from the back. The zero value is not usable — construct with
// newLRU.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	evictions uint64 // entries dropped from the tail since construction
	items     map[cacheKey]*lruEntry
	// head is most recently used, tail least. nil when empty.
	head, tail *lruEntry
}

type lruEntry struct {
	key        cacheKey
	val        Response
	prev, next *lruEntry
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, items: make(map[cacheKey]*lruEntry, capacity)}
}

// Get returns the cached response for key, promoting it to most recently
// used.
func (c *lruCache) Get(key cacheKey) (Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return Response{}, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put records key's response, evicting the least recently used entry
// when the cache is at capacity; it reports whether an eviction
// happened.
func (c *lruCache) Put(key cacheKey, val Response) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		return false
	}
	e := &lruEntry{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		c.evict(c.tail)
		return true
	}
	return false
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Evictions returns how many entries have been evicted from the tail
// since construction.
func (c *lruCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *lruCache) evict(e *lruEntry) {
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.items, e.key)
	c.evictions++
}
