package serve

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/mitigate"
	"fairjob/internal/obs"
)

// This file is the Problem 3 execution path: resolve the requested page
// and target group against the pinned snapshot, flatten the page into
// mitigate.Items, run the requested re-ranker's measure → mitigate →
// re-measure loop, and package the outcome. Both measurements see the
// same snapshot generation by construction — the page was sealed into
// the snapshot the caller pinned — which is what makes the before/after
// pair a meaningful controlled comparison.

// executeMitigate answers one Mitigate request against a pinned
// snapshot. Validation has already accepted the request shape; what can
// still fail here is snapshot-dependent: a snapshot without pages, an
// unknown (query, location), a group over attributes the schema does
// not track, or a page where the target's deviation is undefined.
func (e *Engine) executeMitigate(snap *Snapshot, req Request, tr *obs.Trace) Response {
	resp := Response{Gen: snap.gen}
	if !snap.HasRankings() {
		resp.Err = fmt.Errorf("serve: snapshot carries no marketplace pages (build it with NewSnapshotWithRankings)")
		return resp
	}
	r, ok := snap.Ranking(core.Query(req.Query), core.Location(req.Location))
	if !ok {
		resp.Err = fmt.Errorf("serve: snapshot has no page for query %q at %q", req.Query, req.Location)
		return resp
	}
	g, err := core.ParseGroupKey(req.Group)
	if err != nil {
		resp.Err = err
		return resp
	}
	for _, attr := range g.Label.Attributes() {
		if !snap.schema.Has(attr) {
			resp.Err = fmt.Errorf("serve: schema does not track attribute %q", attr)
			return resp
		}
	}
	tr.Annotate("mitigator", req.Mitigator.String())

	items := mitigateItems(r, g)
	comp := snap.schema.Comparable(g)
	compKeys := make([]string, len(comp))
	for i, cg := range comp {
		compKeys[i] = cg.Key()
	}
	out, err := mitigate.Rerank(req.Mitigator, items, mitigate.Options{
		Target:        g.Key(),
		Comparable:    compKeys,
		MinProportion: req.MinProportion,
		Alpha:         req.Alpha,
		SwapBudget:    req.SwapBudget,
	})
	if err != nil {
		resp.Err = err
		return resp
	}
	ids := make([]string, len(out.Permutation))
	for pos, oi := range out.Permutation {
		ids[pos] = r.Workers[oi].ID
	}
	resp.Mitigation = &Mitigation{
		Mitigator:   out.Mitigator,
		Group:       g.Key(),
		Before:      out.Before,
		After:       out.After,
		Permutation: out.Permutation,
		IDs:         ids,
		Moved:       out.Moved,
	}
	return resp
}

// mitigateItems flattens a marketplace page for mitigation: each
// worker's group is its attribute assignment projected onto the target
// group's attributes (so a partial-group target like "gender=Female"
// classifies every worker by gender alone), and its relevance is
// intrinsic — the platform score when observed, the original
// rank-derived proxy otherwise — because a re-ranked measurement must
// carry relevance through the permutation, not re-derive it from the
// new positions.
func mitigateItems(r *core.MarketplaceRanking, g core.Group) []mitigate.Item {
	attrs := g.Label.Attributes()
	items := make([]mitigate.Item, len(r.Workers))
	for i, w := range r.Workers {
		preds := make([]core.Predicate, len(attrs))
		for j, a := range attrs {
			preds[j] = core.Predicate{Attr: a, Value: w.Attrs[a]}
		}
		items[i] = mitigate.Item{
			ID:    w.ID,
			Rel:   r.Relevance(w, true),
			Group: core.NewLabel(preds...).Key(),
		}
	}
	return items
}
