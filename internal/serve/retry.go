package serve

import (
	"errors"
	"fmt"
	"time"

	"fairjob/internal/stats"
)

// Defaults of the zero-value RetryPolicy.
const (
	// DefaultRetryAttempts is the total attempt budget (first try
	// included).
	DefaultRetryAttempts = 3
	// DefaultRetryBase is the backoff before the first retry; it doubles
	// per attempt up to DefaultRetryMaxDelay.
	DefaultRetryBase = 10 * time.Millisecond
	// DefaultRetryMaxDelay caps the exponential backoff.
	DefaultRetryMaxDelay = 1 * time.Second
)

// RetryPolicy retries a failing operation with exponential backoff and
// deterministic jitter. The zero value is usable and selects the
// defaults above. Jitter is drawn from a private RNG seeded with Seed,
// so two policies with equal fields produce the exact same delay
// sequence — chaos tests assert backoff timing without sleeping by
// substituting Sleep (the testable clock).
//
// The engine wraps snapshot builds (RefreshCtx) in its policy; the type
// is exported because callers owning their own maintenance loops (bulk
// loaders, cron refreshes) need the same discipline.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts; 0 selects
	// DefaultRetryAttempts, 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (doubles each
	// attempt); 0 selects DefaultRetryBase.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 selects DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Seed seeds the jitter stream; equal seeds give equal delays.
	Seed uint64
	// Sleep is the clock: nil selects time.Sleep. Tests inject a
	// recording stub to assert delays without wall-clock waits.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes every retry before its backoff
	// sleep: the 1-based retry number, the error being retried, and the
	// jittered delay about to be slept. The engine counts
	// refresh_retries_total here.
	OnRetry func(retry int, err error, delay time.Duration)
}

// Do runs fn until it succeeds or the attempt budget is exhausted,
// sleeping a jittered exponential backoff between attempts. Typed
// cancellation errors (ErrCanceled, ErrDeadlineExceeded) abort
// immediately — a canceled caller must not be held through backoff
// sleeps. The terminal error wraps fn's last error.
func (p RetryPolicy) Do(fn func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultRetryAttempts
	}
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultRetryBase
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultRetryMaxDelay
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rng := stats.NewRNG(p.Seed)

	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			backoff := base << (attempt - 2)
			if backoff > maxDelay || backoff <= 0 { // <= 0 guards shift overflow
				backoff = maxDelay
			}
			// Equal jitter: half the backoff is fixed, half uniform —
			// bounded below (progress is guaranteed to back off) and
			// decorrelated across concurrent retriers with distinct seeds.
			delay := backoff/2 + time.Duration(rng.Float64()*float64(backoff/2))
			if p.OnRetry != nil {
				p.OnRetry(attempt-1, err, delay)
			}
			sleep(delay)
		}
		if err = fn(); err == nil {
			return nil
		}
		if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) {
			return err
		}
	}
	return fmt.Errorf("serve: giving up after %d attempts: %w", attempts, err)
}
