package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fairjob/internal/stats"
)

// Defaults of the zero-value RetryPolicy.
const (
	// DefaultRetryAttempts is the total attempt budget (first try
	// included).
	DefaultRetryAttempts = 3
	// DefaultRetryBase is the backoff before the first retry; it doubles
	// per attempt up to DefaultRetryMaxDelay.
	DefaultRetryBase = 10 * time.Millisecond
	// DefaultRetryMaxDelay caps the exponential backoff.
	DefaultRetryMaxDelay = 1 * time.Second
)

// RetryPolicy retries a failing operation with exponential backoff and
// deterministic jitter. The zero value is usable and selects the
// defaults above. Jitter is drawn from a private RNG seeded with Seed,
// so two policies with equal fields produce the exact same delay
// sequence — chaos tests assert backoff timing without sleeping by
// substituting Sleep (the testable clock).
//
// The engine wraps snapshot builds (RefreshCtx) in its policy; the type
// is exported because callers owning their own maintenance loops (bulk
// loaders, cron refreshes) need the same discipline.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts; 0 selects
	// DefaultRetryAttempts, 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (doubles each
	// attempt); 0 selects DefaultRetryBase.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 selects DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Seed seeds the jitter stream; equal seeds give equal delays.
	Seed uint64
	// Sleep is the clock: nil selects time.Sleep. Tests inject a
	// recording stub to assert delays without wall-clock waits.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes every retry before its backoff
	// sleep: the 1-based retry number, the error being retried, and the
	// jittered delay about to be slept. The engine counts
	// refresh_retries_total here.
	OnRetry func(retry int, err error, delay time.Duration)
	// Abort, when non-nil, classifies errors that must not be retried:
	// when it returns true for fn's error, DoCtx returns that error
	// immediately and unwrapped. Typed cancellation errors abort
	// regardless. The scatter-gather coordinator uses this to surface
	// generation-pin mismatches — a retry against the same pin can only
	// fail again; the caller must re-pin instead.
	Abort func(error) bool
}

// Do runs fn until it succeeds or the attempt budget is exhausted,
// sleeping a jittered exponential backoff between attempts. It is
// DoCtx with a background context: backoff sleeps run to completion.
func (p RetryPolicy) Do(fn func() error) error {
	return p.DoCtx(context.Background(), fn)
}

// DoCtx runs fn until it succeeds or the attempt budget is exhausted,
// sleeping a jittered exponential backoff between attempts. Typed
// cancellation errors (ErrCanceled, ErrDeadlineExceeded) and errors
// classified by Abort return immediately — a canceled caller must not
// be held through backoff sleeps. The backoff sleep itself is
// ctx-aware: when ctx is done before or during a sleep, DoCtx stops
// waiting and returns ctx's error mapped to the typed sentinels. The
// terminal error wraps fn's last error.
func (p RetryPolicy) DoCtx(ctx context.Context, fn func() error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultRetryAttempts
	}
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultRetryBase
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultRetryMaxDelay
	}
	rng := stats.NewRNG(p.Seed)

	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			backoff := base << (attempt - 2)
			if backoff > maxDelay || backoff <= 0 { // <= 0 guards shift overflow
				backoff = maxDelay
			}
			// Equal jitter: half the backoff is fixed, half uniform —
			// bounded below (progress is guaranteed to back off) and
			// decorrelated across concurrent retriers with distinct seeds.
			delay := backoff/2 + time.Duration(rng.Float64()*float64(backoff/2))
			if p.OnRetry != nil {
				p.OnRetry(attempt-1, err, delay)
			}
			if serr := p.sleepCtx(ctx, delay); serr != nil {
				return serr
			}
		}
		if err = fn(); err == nil {
			return nil
		}
		if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) {
			return err
		}
		if p.Abort != nil && p.Abort(err) {
			return err
		}
	}
	return fmt.Errorf("serve: giving up after %d attempts: %w", attempts, err)
}

// sleepCtx waits for delay or for ctx to be done, whichever comes
// first; a done context returns its error mapped to the typed
// sentinels. With an injected Sleep (the testable clock) the stub runs
// to completion — recorded-clock tests assert the sequence of delays,
// not wall time — and ctx is checked on either side so a cancellation
// recorded mid-sequence still interrupts the loop.
func (p RetryPolicy) sleepCtx(ctx context.Context, delay time.Duration) error {
	if err := ctx.Err(); err != nil {
		return ctxError(err)
	}
	if p.Sleep != nil {
		p.Sleep(delay)
		if err := ctx.Err(); err != nil {
			return ctxError(err)
		}
		return nil
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctxError(ctx.Err())
	case <-t.C:
		return nil
	}
}
