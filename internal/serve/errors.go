package serve

import (
	"context"
	"errors"
	"fmt"
)

// This file defines the typed failure modes of the resilient serving
// path. The contract (DESIGN.md §10): every way a request can fail to
// produce an answer is a distinguishable error in Response.Err, matched
// with errors.Is against the sentinels below — callers never parse
// message strings, and a serving worker never dies for a per-request
// fault.

// resilienceError is a sentinel with a cause: errors.Is matches both
// the sentinel itself (pointer identity) and, through Unwrap, the
// standard context error it corresponds to, so
// errors.Is(resp.Err, context.DeadlineExceeded) keeps working for
// callers that think in context terms.
type resilienceError struct {
	msg   string
	cause error
}

func (e *resilienceError) Error() string { return e.msg }

func (e *resilienceError) Unwrap() error { return e.cause }

var (
	// ErrDeadlineExceeded reports that a request's deadline — its own
	// Request.Deadline, the engine's DefaultDeadline, or a deadline
	// already on the caller's context — expired before the answer was
	// computed. Unwraps to context.DeadlineExceeded.
	ErrDeadlineExceeded error = &resilienceError{"serve: deadline exceeded", context.DeadlineExceeded}
	// ErrCanceled reports that the caller's context was canceled before
	// the answer was computed. Unwraps to context.Canceled.
	ErrCanceled error = &resilienceError{"serve: request canceled", context.Canceled}
	// ErrOverloaded reports that the admission gate shed the request:
	// compute capacity was saturated and the wait queue full. The
	// request was never executed; retrying later (or against the result
	// cache) may succeed.
	ErrOverloaded = errors.New("serve: overloaded, request shed by admission gate")
	// ErrInternal is the class every recovered panic maps to; the
	// concrete Response.Err is an *InternalError carrying the panic
	// value, and errors.Is(err, ErrInternal) matches it.
	ErrInternal = errors.New("serve: internal error")
)

// InternalError is a panic recovered inside the engine's execute path,
// converted into a per-request failure so one crashing query cannot take
// down a batch or a serving worker.
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("serve: internal error: recovered panic: %v", e.Value)
}

// Unwrap makes errors.Is(err, ErrInternal) match every recovered panic.
func (e *InternalError) Unwrap() error { return ErrInternal }

// ctxError maps a context failure to the package's typed sentinels,
// passing any other error through unchanged.
func ctxError(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	}
	return err
}

// outcomer lets error types outside this package (the cluster
// coordinator's partial-result error) carry their own wide-event
// outcome word without serve importing them.
type outcomer interface {
	RequestOutcome() string
}

// Outcome classifies a Response.Err into the wide-event outcome
// vocabulary: "ok", "shed", "deadline", "canceled", "panic", "partial"
// (errors implementing RequestOutcome() string), or "error". The engine
// uses it for its own metrics and events; the loadgen harness and the
// cluster coordinator share it so every layer buckets failures
// identically.
func Outcome(err error) string {
	var oc outcomer
	switch {
	case err == nil:
		return "ok"
	case errors.As(err, &oc):
		return oc.RequestOutcome()
	case errors.Is(err, ErrOverloaded):
		return "shed"
	case errors.Is(err, ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrInternal):
		return "panic"
	default:
		return "error"
	}
}
