package serve_test

import (
	"fmt"
	"sync"
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
)

// TestConcurrentMixedQueriesMatchSequentialBaseline is the PR's central
// race-hardening check: ≥32 goroutines issue a mixed Problem 1 / Problem
// 2 workload against one shared IndexSnapshot, with the result cache
// enabled (so goroutines race on cache fills and hits), and every
// response must be byte-identical to a sequential single-worker,
// cache-disabled baseline. Run under -race via scripts/check.sh.
func TestConcurrentMixedQueriesMatchSequentialBaseline(t *testing.T) {
	const goroutines = 32
	rounds := 8
	if testing.Short() {
		rounds = 2
	}

	rng := stats.NewRNG(1234)
	snap := serve.NewSnapshot(randomTable(rng, 8, 6, 5, 0.15))
	reqs := battery(snap)

	// Sequential baseline: one worker, no cache.
	seq := serve.NewEngine(snap, serve.Options{Workers: 1, CacheSize: -1})
	want := make([]string, len(reqs))
	for i, r := range reqs {
		want[i] = fingerprint(seq.Do(r))
	}

	eng := serve.NewEngine(snap, serve.Options{Workers: 8})
	errs := make(chan string, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if g%4 == 3 {
					// Every fourth goroutine exercises the batch path.
					for i, resp := range eng.DoBatch(reqs) {
						if got := fingerprint(resp); got != want[i] {
							errs <- fmt.Sprintf("batch request %d diverged:\nwant %s\ngot  %s", i, want[i], got)
							return
						}
					}
					continue
				}
				// The rest issue single queries in a rotated order so
				// goroutines hit the cache in different interleavings.
				for i := range reqs {
					j := (i + g*7) % len(reqs)
					if got := fingerprint(eng.Do(reqs[j])); got != want[j] {
						errs <- fmt.Sprintf("request %d diverged:\nwant %s\ngot  %s", j, want[j], got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestQueriesDuringSnapshotSwapSeeConsistentGenerations swaps the engine
// between two snapshots while 16 goroutines keep querying: every response
// must match the baseline of the generation it reports — never a blend of
// the two tables.
func TestQueriesDuringSnapshotSwapSeeConsistentGenerations(t *testing.T) {
	const goroutines = 16
	rounds := 60
	if testing.Short() {
		rounds = 10
	}

	rng := stats.NewRNG(99)
	s1 := serve.NewSnapshot(randomTable(rng, 6, 4, 4, 0.1))
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	s2 := s1.WithUpdates(func(tbl *core.Table) {
		for _, q := range tbl.Queries() {
			for _, l := range tbl.Locations() {
				tbl.Set(g, q, l, 0.999)
			}
		}
	})

	reqs := battery(s1)
	baseline := map[uint64][]string{}
	for _, s := range []*serve.Snapshot{s1, s2} {
		eng := serve.NewEngine(s, serve.Options{Workers: 1, CacheSize: -1})
		fps := make([]string, len(reqs))
		for i, r := range reqs {
			fps[i] = fingerprint(eng.Do(r))
		}
		baseline[s.Gen()] = fps
	}

	eng := serve.NewEngine(s1, serve.Options{})
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				eng.Swap(s2)
			} else {
				eng.Swap(s1)
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(goroutines)
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				i := (w + round) % len(reqs)
				resp := eng.Do(reqs[i])
				fps, ok := baseline[resp.Gen]
				if !ok {
					errs <- "response reported an unknown generation"
					return
				}
				if got := fingerprint(resp); got != fps[i] {
					errs <- "response blended data across generations: " + got
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestConcurrentRefreshersAndReaders exercises the copy-on-write path
// itself under contention: readers query while a refresher derives new
// generations from the live snapshot. The race detector guards the
// snapshot build; the assertion guards result sanity (every response
// either errors or carries a valid generation).
func TestConcurrentRefreshersAndReaders(t *testing.T) {
	refreshes := 10
	if testing.Short() {
		refreshes = 3
	}
	rng := stats.NewRNG(7)
	eng := serve.NewEngine(serve.NewSnapshot(randomTable(rng, 5, 4, 3, 0.1)), serve.Options{})
	reqs := battery(eng.Snapshot())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp := eng.Do(reqs[(w+i)%len(reqs)])
				if resp.Err == nil && resp.Gen == 0 {
					panic("response without a generation")
				}
			}
		}(w)
	}
	grp := core.NewGroup(core.Predicate{Attr: "cohort", Value: "gX"})
	for i := 0; i < refreshes; i++ {
		v := float64(i) / float64(refreshes)
		eng.Refresh(func(tbl *core.Table) { tbl.Set(grp, "q00", "l00", v) })
	}
	close(stop)
	wg.Wait()
}
