package serve

import (
	"fmt"
	"sync"
	"testing"
)

func key(i int) cacheKey { return cacheKey{gen: 1, k: i} }

func val(i int) Response { return Response{Gen: uint64(i)} }

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.Put(key(1), val(1))
	c.Put(key(2), val(2))
	if _, ok := c.Get(key(1)); !ok { // promotes 1; 2 is now LRU
		t.Fatal("entry 1 missing")
	}
	c.Put(key(3), val(3)) // evicts 2
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	for _, i := range []int{1, 3} {
		if v, ok := c.Get(key(i)); !ok || v.Gen != uint64(i) {
			t.Fatalf("entry %d = %+v, %v", i, v, ok)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUPutOverwritesAndPromotes(t *testing.T) {
	c := newLRU(2)
	c.Put(key(1), val(1))
	c.Put(key(2), val(2))
	c.Put(key(1), val(11)) // overwrite promotes 1; 2 is LRU
	c.Put(key(3), val(3))  // evicts 2
	if v, ok := c.Get(key(1)); !ok || v.Gen != 11 {
		t.Fatalf("overwritten entry = %+v, %v", v, ok)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("entry 2 should have been evicted")
	}
}

func TestLRUSingleCapacity(t *testing.T) {
	c := newLRU(1)
	for i := 0; i < 10; i++ {
		c.Put(key(i), val(i))
		if v, ok := c.Get(key(i)); !ok || v.Gen != uint64(i) {
			t.Fatalf("entry %d = %+v, %v", i, v, ok)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestLRUConcurrentAccess hammers one cache from many goroutines; the
// race detector (scripts/check.sh) turns any unsynchronized access into a
// failure, and the invariant checked here is that the cache never exceeds
// capacity and never returns a value for the wrong key.
func TestLRUConcurrentAccess(t *testing.T) {
	const (
		workers = 16
		keys    = 8
		rounds  = 200
	)
	c := newLRU(4)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % keys
				c.Put(key(i), val(i))
				if v, ok := c.Get(key(i)); ok && v.Gen != uint64(i) {
					panic(fmt.Sprintf("key %d returned value %d", i, v.Gen))
				}
				if c.Len() > 4 {
					panic("cache exceeded capacity")
				}
			}
		}(w)
	}
	wg.Wait()
}
