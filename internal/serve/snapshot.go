// Package serve is the concurrent query-serving layer over the paper's
// problems: Problem 1 (fairness quantification, Fagin-style top-k over
// the Table-5 indices), Problem 2 (fairness comparison, Algorithms
// 2–3), and Problem 3 (fairness mitigation — re-rank one marketplace
// page to reduce a group's measured Exposure deviation, internal/
// mitigate). It exists so that one machine can answer many simultaneous
// fairness queries — the "heavy traffic" regime of the ROADMAP —
// without any caller ever observing a torn index.
//
// The design splits serving into two pieces:
//
//   - Snapshot: a frozen, shared-read view of the three index families
//     built once from a core.Table. A snapshot is sealed — constructed
//     only by NewSnapshot or WithUpdates, never mutated afterwards — and
//     carries a process-unique generation number. Table refreshes are
//     copy-on-write: WithUpdates clones the sealed table, applies the
//     edits, and returns a brand-new snapshot; readers of the old
//     generation are completely undisturbed.
//
//   - Engine: a query executor holding the current snapshot behind an
//     atomic pointer, a bounded worker pool for batches (the PR 1
//     Workers/GOMAXPROCS convention of internal/core), and an LRU result
//     cache keyed by request shape and invalidated by snapshot
//     generation.
//
// All query-time state of the underlying algorithms lives in per-call
// structs (topk's taState et al., compare's accum), which is what makes a
// single snapshot safe for N simultaneous queries; the package's
// concurrency and fuzz tests pin that contract under -race.
package serve

import (
	"sort"
	"sync/atomic"
	"time"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/topk"
)

// generation is the process-wide snapshot generation counter. Every
// snapshot ever constructed gets a unique number, so a cache entry keyed
// on a generation can never be satisfied by data from a different
// snapshot — even across independent engines.
var generation atomic.Uint64

// Snapshot is an immutable, shared-read view of one unfairness table and
// its three Table-5 index families, plus the two Problem 2 comparers
// (completion and defined-only semantics). All fields are sealed behind
// the constructor: there is no mutating method, and the source table is
// cloned on entry so later writes by the producer cannot leak in. A
// snapshot may be shared by any number of goroutines without
// synchronization.
type Snapshot struct {
	gen     uint64
	created time.Time   // freeze time, for the snapshot-age gauge
	tbl     *core.Table // private clone; never mutated after construction

	groupIdx *index.GroupIndex
	queryIdx *index.QueryIndex
	locIdx   *index.LocationIndex

	// Full-scope list sources, prebuilt once so per-query setup does not
	// re-collect |Q|·|L| inverted lists. ListSources are read-only.
	groupSrc, querySrc, locSrc topk.ListSource

	completion  *compare.Comparer
	definedOnly *compare.Comparer

	// Problem 3 (mitigation) state: the raw marketplace pages behind the
	// table, keyed by (query, location), plus the schema that projects
	// workers onto group labels. Both are sealed with the snapshot —
	// rankings are cloned on entry and never mutated (mitigation builds
	// permutations, not edits) — and nil for snapshots built without
	// pages, whose mitigate requests then error per-call.
	schema   *core.Schema
	rankings map[rankKey]*core.MarketplaceRanking
}

// rankKey addresses one marketplace page inside a snapshot.
type rankKey struct {
	q core.Query
	l core.Location
}

// NewSnapshot freezes tbl into a snapshot: the table is deep-cloned, the
// three index families are built from the clone (one goroutine per
// family), and the result is sealed. The caller's table remains its own —
// it may keep mutating it and later produce a fresh generation with
// another NewSnapshot or with Snapshot.WithUpdates.
func NewSnapshot(tbl *core.Table) *Snapshot {
	return newOwnedSnapshot(tbl.Clone())
}

// NewSnapshotWithRankings freezes tbl together with the marketplace
// pages it was evaluated from, enabling Problem 3 (mitigation) requests:
// the engine re-ranks a pinned page and re-measures it against the same
// generation both measurements see. The rankings are deep-cloned on
// entry, so the caller's slices remain its own; schema projects workers
// onto the group labels mitigation targets (nil selects
// core.DefaultSchema).
func NewSnapshotWithRankings(tbl *core.Table, schema *core.Schema, rankings []*core.MarketplaceRanking) *Snapshot {
	s := newOwnedSnapshot(tbl.Clone())
	if schema == nil {
		schema = core.DefaultSchema()
	}
	s.schema = schema
	s.rankings = make(map[rankKey]*core.MarketplaceRanking, len(rankings))
	for _, r := range rankings {
		if r == nil {
			continue
		}
		clone := &core.MarketplaceRanking{
			Query:    r.Query,
			Location: r.Location,
			Workers:  make([]core.RankedWorker, len(r.Workers)),
		}
		for i, w := range r.Workers {
			w.Attrs = w.Attrs.Clone()
			clone.Workers[i] = w
		}
		s.rankings[rankKey{r.Query, r.Location}] = clone
	}
	return s
}

// Ranking returns the sealed marketplace page for (q, l), when the
// snapshot carries pages at all. The result is shared and read-only.
func (s *Snapshot) Ranking(q core.Query, l core.Location) (*core.MarketplaceRanking, bool) {
	r, ok := s.rankings[rankKey{q, l}]
	return r, ok
}

// HasRankings reports whether the snapshot can serve mitigate requests.
func (s *Snapshot) HasRankings() bool { return len(s.rankings) > 0 }

// Pages returns the (query, location) coordinates of every sealed
// marketplace page, sorted — what a caller needs to pick a mitigation
// target without holding the crawl itself.
func (s *Snapshot) Pages() [][2]string {
	out := make([][2]string, 0, len(s.rankings))
	for k := range s.rankings {
		out = append(out, [2]string{string(k.q), string(k.l)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// newOwnedSnapshot seals a table the snapshot already owns exclusively.
func newOwnedSnapshot(tbl *core.Table) *Snapshot {
	gi, qi, li := index.BuildAll(tbl)
	s := &Snapshot{
		gen:         generation.Add(1),
		created:     time.Now(),
		tbl:         tbl,
		groupIdx:    gi,
		queryIdx:    qi,
		locIdx:      li,
		completion:  compare.New(gi),
		definedOnly: compare.NewDefinedOnlyWith(gi, tbl),
	}
	// The full-scope sources cannot fail: every (pair) combination of the
	// table's own dimensions is indexed by construction.
	var err error
	if s.groupSrc, err = topk.NewGroupLists(gi, nil, nil); err != nil {
		s.groupSrc = nil // empty table: quantify requests will error per-call
	}
	if s.querySrc, err = topk.NewQueryLists(qi, nil, nil); err != nil {
		s.querySrc = nil
	}
	if s.locSrc, err = topk.NewLocationLists(li, nil, nil); err != nil {
		s.locSrc = nil
	}
	return s
}

// WithUpdates returns a new snapshot whose table is a copy of this one
// with apply's edits: the sealed table is cloned, apply mutates the clone
// freely (Set / Merge / anything on core.Table), and the clone is frozen
// under a fresh generation. The receiver is untouched — queries running
// against it concurrently keep seeing the old generation, and cache
// entries for the old generation simply stop being produced.
func (s *Snapshot) WithUpdates(apply func(*core.Table)) *Snapshot {
	clone := s.tbl.Clone()
	if apply != nil {
		apply(clone)
	}
	next := newOwnedSnapshot(clone)
	// The mitigation pages ride along unchanged: they are sealed, so the
	// new generation may share them with the old one. A producer whose
	// pages themselves changed rebuilds with NewSnapshotWithRankings.
	next.schema = s.schema
	next.rankings = s.rankings
	return next
}

// Gen returns the snapshot's process-unique generation number.
func (s *Snapshot) Gen() uint64 { return s.gen }

// CreatedAt returns when the snapshot was frozen; the engine's
// snapshot-age gauge reads it.
func (s *Snapshot) CreatedAt() time.Time { return s.created }

// GroupKeys returns the canonical group keys of the snapshot's group
// dimension, sorted.
func (s *Snapshot) GroupKeys() []string { return s.groupIdx.GroupKeys }

// Queries returns the snapshot's query dimension, sorted.
func (s *Snapshot) Queries() []core.Query { return s.groupIdx.Queries }

// Locations returns the snapshot's location dimension, sorted.
func (s *Snapshot) Locations() []core.Location { return s.groupIdx.Locations }

// Group resolves a canonical group key to the core.Group recorded in the
// sealed table.
func (s *Snapshot) Group(key string) (core.Group, bool) { return s.groupIdx.Group(key) }

// DimensionOf resolves which dimension a comparison operand belongs to: a
// canonical group key, a query, or a location. The second return is false
// when the value appears in none of the snapshot's dimensions.
func (s *Snapshot) DimensionOf(v string) (compare.Dimension, bool) {
	if _, ok := s.groupIdx.Group(v); ok {
		return compare.ByGroup, true
	}
	for _, q := range s.groupIdx.Queries {
		if string(q) == v {
			return compare.ByQuery, true
		}
	}
	for _, l := range s.groupIdx.Locations {
		if string(l) == v {
			return compare.ByLocation, true
		}
	}
	return 0, false
}

// source returns the prebuilt full-scope list source for a quantification
// dimension, or nil for an unknown dimension or an empty table.
func (s *Snapshot) source(dim compare.Dimension) topk.ListSource {
	switch dim {
	case compare.ByGroup:
		return s.groupSrc
	case compare.ByQuery:
		return s.querySrc
	case compare.ByLocation:
		return s.locSrc
	default:
		return nil
	}
}

// comparer returns the Problem 2 comparer for the requested semantics.
func (s *Snapshot) comparer(definedOnly bool) *compare.Comparer {
	if definedOnly {
		return s.definedOnly
	}
	return s.completion
}
