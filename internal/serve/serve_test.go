package serve_test

import (
	"fmt"
	"math"
	"testing"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

func indexOf(tbl *core.Table) *index.GroupIndex { return index.BuildGroupIndex(tbl) }

// randomTable synthesizes a small unfairness table with ng groups, nq
// queries and nl locations, leaving a fraction of triples undefined. The
// RNG makes it deterministic per seed.
func randomTable(rng *stats.RNG, ng, nq, nl int, missing float64) *core.Table {
	tbl := core.NewTable()
	for g := 0; g < ng; g++ {
		grp := core.NewGroup(core.Predicate{Attr: "cohort", Value: fmt.Sprintf("g%02d", g)})
		for q := 0; q < nq; q++ {
			for l := 0; l < nl; l++ {
				if rng.Float64() < missing {
					continue
				}
				tbl.Set(grp, core.Query(fmt.Sprintf("q%02d", q)), core.Location(fmt.Sprintf("l%02d", l)), rng.Float64())
			}
		}
	}
	return tbl
}

// fingerprint renders a response to a deterministic byte string: equal
// fingerprints mean byte-identical results. The error is reduced to its
// message and the CacheHit flag is ignored (a hit must be byte-identical
// to the miss that populated it — that is exactly what the tests assert).
func fingerprint(r serve.Response) string {
	errMsg := ""
	if r.Err != nil {
		errMsg = r.Err.Error()
	}
	return fmt.Sprintf("results=%+v stats=%+v cmp=%+v err=%q", r.Results, r.Stats, r.Comparison, errMsg)
}

// battery builds a mixed Problem 1 / Problem 2 workload exercising every
// dimension, algorithm, direction and both comparison semantics.
func battery(snap *serve.Snapshot) []serve.Request {
	var reqs []serve.Request
	for _, dim := range []compare.Dimension{compare.ByGroup, compare.ByQuery, compare.ByLocation} {
		for _, algo := range topk.Algorithms() {
			for _, dir := range []topk.Direction{topk.MostUnfair, topk.LeastUnfair} {
				for _, k := range []int{1, 3} {
					reqs = append(reqs, serve.Request{
						Problem: serve.Quantify, Dim: dim, K: k, Direction: dir, Algorithm: algo,
					})
				}
			}
		}
	}
	gks := snap.GroupKeys()
	if len(gks) >= 3 {
		reqs = append(reqs, serve.Request{
			Problem: serve.Quantify, Dim: compare.ByGroup, K: 2,
			Algorithm: topk.TA, Candidates: gks[:3],
		})
	}
	qs, ls := snap.Queries(), snap.Locations()
	if len(gks) >= 2 {
		for _, definedOnly := range []bool{false, true} {
			reqs = append(reqs,
				serve.Request{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByQuery, DefinedOnly: definedOnly},
				serve.Request{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByLocation, DefinedOnly: definedOnly},
			)
		}
	}
	if len(qs) >= 2 {
		reqs = append(reqs, serve.Request{Problem: serve.Compare, Of: compare.ByQuery, R1: string(qs[0]), R2: string(qs[1]), By: compare.ByGroup})
	}
	if len(ls) >= 2 {
		reqs = append(reqs, serve.Request{Problem: serve.Compare, Of: compare.ByLocation, R1: string(ls[0]), R2: string(ls[1]), By: compare.ByGroup})
	}
	return reqs
}

func TestSnapshotIsSealedAgainstSourceMutation(t *testing.T) {
	rng := stats.NewRNG(1)
	tbl := randomTable(rng, 5, 4, 3, 0.1)
	snap := serve.NewSnapshot(tbl)
	eng := serve.NewEngine(snap, serve.Options{})

	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 3, Algorithm: topk.TA}
	before := fingerprint(eng.Do(req))

	// Mutating the source table after sealing must not be observable.
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	for _, q := range tbl.Queries() {
		for _, l := range tbl.Locations() {
			tbl.Set(g, q, l, 99.0)
		}
	}
	eng2 := serve.NewEngine(snap, serve.Options{CacheSize: -1})
	after := fingerprint(eng2.Do(req))
	if before != after {
		t.Fatalf("snapshot observed source-table mutation:\nbefore: %s\nafter:  %s", before, after)
	}
}

func TestWithUpdatesIsCopyOnWrite(t *testing.T) {
	rng := stats.NewRNG(2)
	s1 := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	s2 := s1.WithUpdates(func(tbl *core.Table) {
		tbl.Set(g, "q00", "l00", 1.0)
		tbl.Set(g, "qNEW", "l00", 0.5)
	})

	if s2.Gen() <= s1.Gen() {
		t.Fatalf("generations not monotonic: old %d, new %d", s1.Gen(), s2.Gen())
	}
	if len(s2.Queries()) != len(s1.Queries())+1 {
		t.Fatalf("updated snapshot has %d queries, want %d", len(s2.Queries()), len(s1.Queries())+1)
	}
	// The old snapshot must answer exactly as before the update.
	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByQuery, K: 2, Algorithm: topk.Naive}
	r1 := serve.NewEngine(s1, serve.Options{CacheSize: -1}).Do(req)
	for _, res := range r1.Results {
		if res.Key == "qNEW" {
			t.Fatal("old snapshot leaked a query added by WithUpdates")
		}
	}
}

func TestGenerationsAreUniqueAcrossSnapshots(t *testing.T) {
	rng := stats.NewRNG(3)
	tbl := randomTable(rng, 3, 2, 2, 0)
	seen := map[uint64]bool{}
	s := serve.NewSnapshot(tbl)
	seen[s.Gen()] = true
	for i := 0; i < 5; i++ {
		s = s.WithUpdates(nil)
		if seen[s.Gen()] {
			t.Fatalf("generation %d reused", s.Gen())
		}
		seen[s.Gen()] = true
	}
	other := serve.NewSnapshot(tbl)
	if seen[other.Gen()] {
		t.Fatalf("independent snapshot reused generation %d", other.Gen())
	}
}

func TestCacheHitEqualsCacheMiss(t *testing.T) {
	rng := stats.NewRNG(4)
	snap := serve.NewSnapshot(randomTable(rng, 6, 4, 3, 0.2))
	eng := serve.NewEngine(snap, serve.Options{})
	for _, req := range battery(snap) {
		miss := eng.Do(req)
		hit := eng.Do(req)
		if miss.Err == nil && !hit.CacheHit {
			t.Fatalf("second identical request was not a cache hit: %+v", req)
		}
		if fingerprint(miss) != fingerprint(hit) {
			t.Fatalf("cache hit diverged from miss for %+v:\nmiss: %s\nhit:  %s", req, fingerprint(miss), fingerprint(hit))
		}
	}
	cs := eng.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", cs.Hits, cs.Misses)
	}
	if cs.Entries == 0 {
		t.Fatal("cache served hits but reports zero entries")
	}
}

func TestCacheInvalidatedBySnapshotGeneration(t *testing.T) {
	rng := stats.NewRNG(5)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{})
	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}

	first := eng.Do(req)
	if first.CacheHit {
		t.Fatal("first request cannot be a hit")
	}
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g99"})
	eng.Refresh(func(tbl *core.Table) {
		for _, q := range []core.Query{"q00", "q01", "q02"} {
			for _, l := range []core.Location{"l00", "l01", "l02"} {
				tbl.Set(g, q, l, 1.0)
			}
		}
	})
	second := eng.Do(req)
	if second.CacheHit {
		t.Fatal("request served stale cache entry across a generation bump")
	}
	if second.Gen == first.Gen {
		t.Fatal("refresh did not change the served generation")
	}
	if second.Results[0].Key != g.Key() {
		t.Fatalf("refreshed table's dominant group not served: got %q", second.Results[0].Key)
	}
}

func TestCacheEvictionKeepsServingCorrectResults(t *testing.T) {
	rng := stats.NewRNG(6)
	snap := serve.NewSnapshot(randomTable(rng, 6, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{CacheSize: 2})
	reqs := []serve.Request{
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 3, Algorithm: topk.TA},
	}
	baseline := make([]string, len(reqs))
	for i, r := range reqs {
		baseline[i] = fingerprint(eng.Do(r))
	}
	// Cycling through 3 distinct requests with capacity 2 keeps evicting;
	// every answer must still match its baseline.
	for round := 0; round < 5; round++ {
		for i, r := range reqs {
			if got := fingerprint(eng.Do(r)); got != baseline[i] {
				t.Fatalf("round %d request %d diverged after eviction:\nwant %s\ngot  %s", round, i, baseline[i], got)
			}
		}
	}
}

func TestDoBatchMatchesSequentialDo(t *testing.T) {
	rng := stats.NewRNG(7)
	snap := serve.NewSnapshot(randomTable(rng, 7, 5, 4, 0.15))
	seqEng := serve.NewEngine(snap, serve.Options{Workers: 1, CacheSize: -1})
	batchEng := serve.NewEngine(snap, serve.Options{Workers: 8})

	reqs := battery(snap)
	want := make([]string, len(reqs))
	for i, r := range reqs {
		want[i] = fingerprint(seqEng.Do(r))
	}
	got := batchEng.DoBatch(reqs)
	if len(got) != len(reqs) {
		t.Fatalf("batch returned %d responses for %d requests", len(got), len(reqs))
	}
	for i := range reqs {
		if fingerprint(got[i]) != want[i] {
			t.Fatalf("batch response %d diverged:\nwant %s\ngot  %s", i, want[i], fingerprint(got[i]))
		}
	}
	if len(batchEng.DoBatch(nil)) != 0 {
		t.Fatal("empty batch must return an empty response slice")
	}
}

func TestQuantifyAgreesWithDirectTopK(t *testing.T) {
	rng := stats.NewRNG(8)
	tbl := randomTable(rng, 6, 4, 3, 0.1)
	snap := serve.NewSnapshot(tbl)
	eng := serve.NewEngine(snap, serve.Options{})

	resp := eng.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 4, Algorithm: topk.TA})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	direct, err := topk.GroupFairness(indexOf(tbl), nil, nil, 4, topk.MostUnfair)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(direct) {
		t.Fatalf("lengths differ: %d vs %d", len(resp.Results), len(direct))
	}
	for i := range direct {
		if resp.Results[i].Key != direct[i].Key || math.Abs(resp.Results[i].Value-direct[i].Value) > 1e-15 {
			t.Fatalf("rank %d: engine %+v, direct %+v", i, resp.Results[i], direct[i])
		}
	}
}

func TestRequestValidation(t *testing.T) {
	rng := stats.NewRNG(9)
	snap := serve.NewSnapshot(randomTable(rng, 3, 2, 2, 0))
	eng := serve.NewEngine(snap, serve.Options{})
	bad := []serve.Request{
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 0, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.Dimension(9), K: 1, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Algorithm: topk.Algorithm(9)},
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Direction: topk.Direction(9), Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByQuery, K: 1, Algorithm: topk.TA, Candidates: []string{"q00"}},
		{Problem: serve.Compare, Of: compare.ByGroup, R1: "", R2: "x", By: compare.ByQuery},
		{Problem: serve.Compare, Of: compare.ByGroup, R1: "a", R2: "b", By: compare.ByGroup},
		{Problem: serve.Compare, Of: compare.Dimension(9), R1: "a", R2: "b", By: compare.ByQuery},
		{Problem: serve.Compare, Of: compare.ByGroup, R1: "a", R2: "b", By: compare.Dimension(9)},
		{Problem: serve.Problem(9)},
	}
	for i, req := range bad {
		if resp := eng.Do(req); resp.Err == nil {
			t.Fatalf("bad request %d accepted: %+v", i, req)
		}
	}
	// Errors must not be cached.
	if cs := eng.CacheStats(); cs.Hits != 0 {
		t.Fatalf("error responses were cached: %d hits", cs.Hits)
	}
}

func TestDimensionOf(t *testing.T) {
	rng := stats.NewRNG(10)
	snap := serve.NewSnapshot(randomTable(rng, 3, 2, 2, 0))
	gk := snap.GroupKeys()[0]
	if d, ok := snap.DimensionOf(gk); !ok || d != compare.ByGroup {
		t.Fatalf("DimensionOf(%q) = %v, %v", gk, d, ok)
	}
	if d, ok := snap.DimensionOf("q00"); !ok || d != compare.ByQuery {
		t.Fatalf("DimensionOf(q00) = %v, %v", d, ok)
	}
	if d, ok := snap.DimensionOf("l01"); !ok || d != compare.ByLocation {
		t.Fatalf("DimensionOf(l01) = %v, %v", d, ok)
	}
	if _, ok := snap.DimensionOf("nonexistent"); ok {
		t.Fatal("DimensionOf resolved a value absent from every dimension")
	}
}
