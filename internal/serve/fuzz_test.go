package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"fairjob/internal/compare"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// fuzzWorld holds the shared immutable fixtures of FuzzSnapshotQueries:
// one snapshot, a cached engine and an uncached reference engine. Built
// once — the snapshot is immutable, so reuse across fuzz executions is
// sound and keeps iterations cheap.
var fuzzWorld struct {
	once     sync.Once
	snap     *serve.Snapshot
	cached   *serve.Engine
	uncached *serve.Engine
}

func fuzzSetup() {
	fuzzWorld.once.Do(func() {
		rng := stats.NewRNG(2024)
		fuzzWorld.snap = serve.NewSnapshot(randomTable(rng, 6, 5, 4, 0.2))
		fuzzWorld.cached = serve.NewEngine(fuzzWorld.snap, serve.Options{CacheSize: 64})
		fuzzWorld.uncached = serve.NewEngine(fuzzWorld.snap, serve.Options{CacheSize: -1})
	})
}

// FuzzSnapshotQueries round-trips arbitrary request shapes — including
// out-of-range dimensions, algorithms, ks and operands — through the
// serve API and asserts the two engine-level contracts: no input panics,
// and a cache hit is byte-identical to the cache miss that populated it
// (and to an uncached evaluation). Run with `go test -fuzz
// FuzzSnapshotQueries ./internal/serve` to explore beyond the seed
// corpus.
func FuzzSnapshotQueries(f *testing.F) {
	// Seeds cover both problems, every dimension, every algorithm, both
	// directions, invalid enum values and out-of-range member indices.
	f.Add(uint8(0), uint8(0), 3, uint8(0), uint8(0), uint8(0), uint8(1), uint8(1), false)
	f.Add(uint8(0), uint8(1), 1, uint8(1), uint8(1), uint8(2), uint8(0), uint8(2), true)
	f.Add(uint8(0), uint8(2), 100, uint8(0), uint8(2), uint8(9), uint8(9), uint8(0), false)
	f.Add(uint8(0), uint8(9), -5, uint8(9), uint8(9), uint8(0), uint8(0), uint8(0), false)
	f.Add(uint8(1), uint8(0), 0, uint8(0), uint8(3), uint8(0), uint8(1), uint8(1), false)
	f.Add(uint8(1), uint8(1), 2, uint8(0), uint8(0), uint8(3), uint8(4), uint8(0), true)
	f.Add(uint8(1), uint8(2), 7, uint8(1), uint8(1), uint8(200), uint8(201), uint8(2), false)

	f.Fuzz(func(t *testing.T, problem, dim uint8, k int, dir, algo, i1, i2, by uint8, definedOnly bool) {
		fuzzSetup()
		snap := fuzzWorld.snap

		req := serve.Request{
			Problem:     serve.Problem(problem % 3), // includes one invalid value
			Dim:         compare.Dimension(dim),
			K:           k,
			Direction:   topk.Direction(dir),
			Algorithm:   topk.Algorithm(algo),
			Of:          compare.Dimension(dim % 4),
			By:          compare.Dimension(by),
			DefinedOnly: definedOnly,
		}
		// Operands are drawn from the snapshot's own dimensions when the
		// index is in range, and left as raw garbage otherwise so the
		// error paths stay covered.
		pick := func(i uint8, of compare.Dimension) string {
			switch of {
			case compare.ByGroup:
				if gks := snap.GroupKeys(); int(i) < len(gks) {
					return gks[i]
				}
			case compare.ByQuery:
				if qs := snap.Queries(); int(i) < len(qs) {
					return string(qs[i])
				}
			case compare.ByLocation:
				if ls := snap.Locations(); int(i) < len(ls) {
					return string(ls[i])
				}
			}
			return string(rune('A' + i%26))
		}
		req.R1 = pick(i1, req.Of)
		req.R2 = pick(i2, req.Of)
		if k%5 == 0 && req.Dim == compare.ByGroup {
			gks := snap.GroupKeys()
			req.Candidates = gks[:1+int(i1)%len(gks)]
		}

		// Contract 1: no panic, whatever the shape (validated via normal
		// execution — a panic fails the fuzz run).
		first := fuzzWorld.cached.Do(req)
		// Contract 2: cache-hit results equal cache-miss results, and
		// both equal an uncached evaluation.
		second := fuzzWorld.cached.Do(req)
		if fingerprint(first) != fingerprint(second) {
			t.Fatalf("cache hit diverged from miss:\nmiss: %s\nhit:  %s", fingerprint(first), fingerprint(second))
		}
		reference := fuzzWorld.uncached.Do(req)
		if fingerprint(first) != fingerprint(reference) {
			t.Fatalf("cached engine diverged from uncached:\ncached:   %s\nuncached: %s", fingerprint(first), fingerprint(reference))
		}
		// An accepted quantify request returns at most k results.
		if first.Err == nil && req.Problem == serve.Quantify && len(first.Results) > req.K {
			t.Fatalf("quantify returned %d results for k=%d", len(first.Results), req.K)
		}
		// Contract 3: a dead context never panics either, and yields
		// either a cache hit (the probe precedes the gate by design), a
		// validation error, or the typed cancellation error — never an
		// untyped context error and never a fabricated result.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		dead := fuzzWorld.cached.DoCtx(ctx, req)
		switch {
		case dead.CacheHit:
			if fingerprint(dead) != fingerprint(first) {
				t.Fatalf("cache hit on dead ctx diverged:\nlive: %s\ndead: %s", fingerprint(first), fingerprint(dead))
			}
		case dead.Err == nil:
			t.Fatalf("dead ctx produced an uncached success: %s", fingerprint(dead))
		case errors.Is(dead.Err, serve.ErrCanceled):
		case fingerprint(dead) == fingerprint(first):
			// Same validation error as the live request — rejected
			// before the context was ever consulted.
		default:
			t.Fatalf("dead ctx yielded untyped error %v", dead.Err)
		}
	})
}
