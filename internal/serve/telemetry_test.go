package serve_test

import (
	"strings"
	"testing"

	"fairjob/internal/compare"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// TestEngineTelemetryCounters runs the full battery twice — a miss pass
// and a hit pass — and cross-checks every serve metric family against
// what the workload actually did: request counts, cache counters (also
// via CacheStats), per-problem latency samples, per-algorithm top-k
// access costs, and comparison access counts.
func TestEngineTelemetryCounters(t *testing.T) {
	rng := stats.NewRNG(11)
	snap := serve.NewSnapshot(randomTable(rng, 6, 4, 3, 0.2))
	reg := obs.NewRegistry()
	eng := serve.NewEngine(snap, serve.Options{Obs: reg})

	reqs := battery(snap)
	var quantifies, compares uint64
	for _, r := range reqs {
		if r.Problem == serve.Quantify {
			quantifies++
		} else {
			compares++
		}
	}
	for _, r := range reqs { // miss pass
		if resp := eng.Do(r); resp.Err != nil {
			t.Fatalf("request errored: %v", resp.Err)
		}
	}
	for _, r := range reqs { // hit pass
		if resp := eng.Do(r); !resp.CacheHit {
			t.Fatalf("second pass missed the cache: %+v", r)
		}
	}

	s := reg.Snapshot()
	total := uint64(2 * len(reqs))
	if got := s.CounterSum("serve_requests_total"); got != total {
		t.Fatalf("requests = %d, want %d", got, total)
	}
	if got := s.Counters[obs.Name("serve_requests_total", "problem", "quantify")]; got != 2*quantifies {
		t.Fatalf("quantify requests = %d, want %d", got, 2*quantifies)
	}
	if got := s.Counters["serve_cache_hits_total"]; got != uint64(len(reqs)) {
		t.Fatalf("cache hits = %d, want %d", got, len(reqs))
	}
	if got := s.Counters["serve_cache_misses_total"]; got != uint64(len(reqs)) {
		t.Fatalf("cache misses = %d, want %d", got, len(reqs))
	}
	if got := s.Counters["serve_errors_total"]; got != 0 {
		t.Fatalf("errors = %d, want 0", got)
	}

	// CacheStats must be a view over the same counters.
	cs := eng.CacheStats()
	if cs.Hits != s.Counters["serve_cache_hits_total"] || cs.Misses != s.Counters["serve_cache_misses_total"] {
		t.Fatalf("CacheStats %+v diverges from obs counters", cs)
	}
	if cs.Entries != len(reqs) {
		t.Fatalf("cache entries = %d, want %d distinct requests", cs.Entries, len(reqs))
	}

	// Every request — hit or miss — lands one latency sample.
	if h, ok := s.MergeHistograms("serve_request_seconds"); !ok || h.Count != total {
		t.Fatalf("latency samples = %d (found=%v), want %d", h.Count, ok, total)
	}

	// Each quantify miss executes one top-k algorithm and records its
	// Stats; hits answer from cache without touching the algorithms.
	var topkSamples uint64
	for _, a := range topk.Algorithms() {
		h := s.Histograms[obs.Name("topk_sorted_accesses", "algo", a.String())]
		topkSamples += h.Count
		r := s.Histograms[obs.Name("topk_random_accesses", "algo", a.String())]
		if r.Count != h.Count {
			t.Fatalf("algo %v: sorted samples %d != random samples %d", a, h.Count, r.Count)
		}
	}
	if topkSamples != quantifies {
		t.Fatalf("topk access samples = %d, want %d (one per quantify miss)", topkSamples, quantifies)
	}

	// Each compare miss records its Algorithm 3 random-access count.
	if h := s.Histograms["compare_accesses"]; h.Count != compares {
		t.Fatalf("compare access samples = %d, want %d", h.Count, compares)
	}
	if h := s.Histograms["compare_accesses"]; h.Sum <= 0 {
		t.Fatal("comparisons reported zero table accesses")
	}

	// Engine-level gauges.
	if got := s.Gauges["serve_snapshot_generation"]; got != float64(snap.Gen()) {
		t.Fatalf("generation gauge = %g, want %d", got, snap.Gen())
	}
	if got := s.Gauges["serve_cache_entries"]; got != float64(cs.Entries) {
		t.Fatalf("cache entries gauge = %g, want %d", got, cs.Entries)
	}
	if got := s.Gauges["serve_snapshot_age_seconds"]; got < 0 {
		t.Fatalf("snapshot age = %g", got)
	}
}

// TestEngineTracing checks the per-query trace lifecycle: span structure
// on the miss path, the cache annotation on the hit path, the error
// annotation on rejects, and the ring's bounded retention.
func TestEngineTracing(t *testing.T) {
	rng := stats.NewRNG(12)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	tz := obs.NewTracer(4)
	eng := serve.NewEngine(snap, serve.Options{Tracer: tz})

	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}
	eng.Do(req)                                           // miss
	eng.Do(req)                                           // hit
	eng.Do(serve.Request{Problem: serve.Quantify, K: -1}) // reject

	if tz.Finished() != 3 {
		t.Fatalf("finished traces = %d, want 3", tz.Finished())
	}
	recent := tz.Recent() // newest first: reject, hit, miss
	if len(recent) != 3 {
		t.Fatalf("recent = %d traces", len(recent))
	}
	reject, hit, miss := recent[0], recent[1], recent[2]

	wantSpans := []string{"snapshot-pin", "validate", "cache-lookup", "execute", "access-accounting"}
	if len(miss.Spans) != len(wantSpans) {
		t.Fatalf("miss spans = %+v", miss.Spans)
	}
	for i, sp := range miss.Spans {
		if sp.Name != wantSpans[i] {
			t.Fatalf("miss span %d = %q, want %q", i, sp.Name, wantSpans[i])
		}
	}
	if !hasAnnotation(hit, "cache", "hit") {
		t.Fatalf("hit trace lacks cache=hit: %+v", hit.Annots)
	}
	for _, sp := range hit.Spans {
		if sp.Name == "execute" {
			t.Fatal("cache hit recorded an execute span")
		}
	}
	found := false
	for _, a := range reject.Annots {
		if a.Key == "err" && strings.Contains(a.Value, "k > 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reject trace lacks err annotation: %+v", reject.Annots)
	}
	for _, tr := range recent {
		if tr.Gen != snap.Gen() {
			t.Fatalf("trace gen = %d, want %d", tr.Gen, snap.Gen())
		}
		if tr.Total <= 0 {
			t.Fatalf("trace total = %v", tr.Total)
		}
	}

	// The ring retains only the most recent traces.
	for i := 0; i < 10; i++ {
		eng.Do(req)
	}
	if got := len(tz.Recent()); got != 4 {
		t.Fatalf("ring retained %d traces, want capacity 4", got)
	}
}

// TestBatchTelemetry checks the batch-specific metrics: one batch-size
// sample per DoBatch, and per request one queue-wait histogram sample
// plus a QueueWait stamp on its trace.
func TestBatchTelemetry(t *testing.T) {
	rng := stats.NewRNG(13)
	snap := serve.NewSnapshot(randomTable(rng, 5, 4, 3, 0.1))
	reg := obs.NewRegistry()
	tz := obs.NewTracer(64)
	eng := serve.NewEngine(snap, serve.Options{Workers: 4, Obs: reg, Tracer: tz})

	reqs := battery(snap)
	eng.DoBatch(reqs)
	s := reg.Snapshot()
	if h := s.Histograms["serve_batch_size"]; h.Count != 1 || h.Sum != float64(len(reqs)) {
		t.Fatalf("batch size histogram = count %d sum %g, want 1/%d", h.Count, h.Sum, len(reqs))
	}
	if h := s.Histograms["serve_queue_wait_seconds"]; h.Count != uint64(len(reqs)) {
		t.Fatalf("queue wait samples = %d, want %d", h.Count, len(reqs))
	}
	for _, tr := range tz.Recent() {
		if tr.QueueWait <= 0 {
			t.Fatalf("batch trace queue wait = %v, want > 0", tr.QueueWait)
		}
	}
}

// TestEvictionTelemetry cycles three requests through a two-entry cache
// and checks the eviction counter against the LRU's own tally.
func TestEvictionTelemetry(t *testing.T) {
	rng := stats.NewRNG(14)
	snap := serve.NewSnapshot(randomTable(rng, 5, 3, 3, 0))
	reg := obs.NewRegistry()
	eng := serve.NewEngine(snap, serve.Options{CacheSize: 2, Obs: reg})
	reqs := []serve.Request{
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA},
		{Problem: serve.Quantify, Dim: compare.ByGroup, K: 3, Algorithm: topk.TA},
	}
	for round := 0; round < 3; round++ {
		for _, r := range reqs {
			eng.Do(r)
		}
	}
	cs := eng.CacheStats()
	if cs.Evictions == 0 {
		t.Fatal("cycling 3 requests through a 2-entry cache evicted nothing")
	}
	if got := reg.Snapshot().Counters["serve_cache_evictions_total"]; got != cs.Evictions {
		t.Fatalf("eviction counter = %d, CacheStats = %d", got, cs.Evictions)
	}
	if cs.Entries != 2 {
		t.Fatalf("entries = %d, want full capacity 2", cs.Entries)
	}
}

// TestErrorTelemetry checks that rejects and execution failures land in
// serve_errors_total and are not cached.
func TestErrorTelemetry(t *testing.T) {
	rng := stats.NewRNG(15)
	snap := serve.NewSnapshot(randomTable(rng, 3, 2, 2, 0))
	reg := obs.NewRegistry()
	eng := serve.NewEngine(snap, serve.Options{Obs: reg})

	eng.Do(serve.Request{Problem: serve.Quantify, K: 0}) // validation reject
	// Well-formed but unsatisfiable: a candidate restriction keeping no
	// members fails inside execute, after the request counter ticked.
	eng.Do(serve.Request{
		Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Algorithm: topk.TA,
		Candidates: []string{"cohort=nonexistent"},
	})
	s := reg.Snapshot()
	if got := s.Counters["serve_errors_total"]; got != 2 {
		t.Fatalf("errors = %d, want 2", got)
	}
	// Validation rejects never reach the request counters; execution
	// errors do (the request was well-formed).
	if got := s.CounterSum("serve_requests_total"); got != 1 {
		t.Fatalf("requests = %d, want 1", got)
	}
	if got := s.Counters["serve_cache_hits_total"]; got != 0 {
		t.Fatalf("cache hits = %d after errors", got)
	}
}

func hasAnnotation(tr *obs.Trace, key, value string) bool {
	for _, a := range tr.Annots {
		if a.Key == key && (value == "" || a.Value == value) {
			return true
		}
	}
	return false
}
