package serve

import (
	"errors"
	"testing"
	"time"
)

// recordingClock captures the delays a RetryPolicy sleeps without
// actually sleeping.
type recordingClock struct{ delays []time.Duration }

func (c *recordingClock) sleep(d time.Duration) { c.delays = append(c.delays, d) }

func TestRetryFirstTrySuccessSleepsNever(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{Sleep: clk.sleep}
	calls := 0
	if err := p.Do(func() error { calls++; return nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 1 || len(clk.delays) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want 1 and 0", calls, len(clk.delays))
	}
}

func TestRetryBacksOffThenSucceeds(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 8 * time.Millisecond, Seed: 42, Sleep: clk.sleep}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(clk.delays) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 and 2", calls, len(clk.delays))
	}
	// Equal jitter keeps each delay in [backoff/2, backoff), with the
	// backoff doubling per retry.
	for i, d := range clk.delays {
		backoff := p.BaseDelay << i
		if d < backoff/2 || d >= backoff {
			t.Fatalf("delay[%d] = %v outside [%v, %v)", i, d, backoff/2, backoff)
		}
	}
}

func TestRetryJitterIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		clk := &recordingClock{}
		p := RetryPolicy{MaxAttempts: 4, Seed: seed, Sleep: clk.sleep}
		_ = p.Do(func() error { return errors.New("always") })
		return clk.delays
	}
	a, b := run(7), run(7)
	if len(a) != 3 {
		t.Fatalf("expected 3 backoffs, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestRetryGivesUpWrappingLastError(t *testing.T) {
	clk := &recordingClock{}
	last := errors.New("still broken")
	p := RetryPolicy{MaxAttempts: 3, Sleep: clk.sleep}
	retries := 0
	p.OnRetry = func(n int, err error, d time.Duration) { retries++ }
	err := p.Do(func() error { return last })
	if !errors.Is(err, last) {
		t.Fatalf("terminal error %v does not wrap the last attempt's error", err)
	}
	if retries != 2 || len(clk.delays) != 2 {
		t.Fatalf("retries=%d sleeps=%d, want 2 and 2", retries, len(clk.delays))
	}
}

func TestRetryDoesNotRetryCancellation(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 5, Sleep: clk.sleep}
	for _, sentinel := range []error{ErrCanceled, ErrDeadlineExceeded} {
		calls := 0
		err := p.Do(func() error { calls++; return sentinel })
		if !errors.Is(err, sentinel) {
			t.Fatalf("error = %v, want %v", err, sentinel)
		}
		if calls != 1 || len(clk.delays) != 0 {
			t.Fatalf("%v: calls=%d sleeps=%d, want no retries", sentinel, calls, len(clk.delays))
		}
	}
}

func TestRetryMaxDelayCapsBackoff(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 150 * time.Millisecond, Sleep: clk.sleep}
	_ = p.Do(func() error { return errors.New("always") })
	for i, d := range clk.delays {
		if d >= p.MaxDelay {
			t.Fatalf("delay[%d] = %v not capped below %v", i, d, p.MaxDelay)
		}
	}
}
