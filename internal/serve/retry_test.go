package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recordingClock captures the delays a RetryPolicy sleeps without
// actually sleeping.
type recordingClock struct{ delays []time.Duration }

func (c *recordingClock) sleep(d time.Duration) { c.delays = append(c.delays, d) }

func TestRetryFirstTrySuccessSleepsNever(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{Sleep: clk.sleep}
	calls := 0
	if err := p.Do(func() error { calls++; return nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 1 || len(clk.delays) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want 1 and 0", calls, len(clk.delays))
	}
}

func TestRetryBacksOffThenSucceeds(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 8 * time.Millisecond, Seed: 42, Sleep: clk.sleep}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(clk.delays) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 and 2", calls, len(clk.delays))
	}
	// Equal jitter keeps each delay in [backoff/2, backoff), with the
	// backoff doubling per retry.
	for i, d := range clk.delays {
		backoff := p.BaseDelay << i
		if d < backoff/2 || d >= backoff {
			t.Fatalf("delay[%d] = %v outside [%v, %v)", i, d, backoff/2, backoff)
		}
	}
}

func TestRetryJitterIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		clk := &recordingClock{}
		p := RetryPolicy{MaxAttempts: 4, Seed: seed, Sleep: clk.sleep}
		_ = p.Do(func() error { return errors.New("always") })
		return clk.delays
	}
	a, b := run(7), run(7)
	if len(a) != 3 {
		t.Fatalf("expected 3 backoffs, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestRetryGivesUpWrappingLastError(t *testing.T) {
	clk := &recordingClock{}
	last := errors.New("still broken")
	p := RetryPolicy{MaxAttempts: 3, Sleep: clk.sleep}
	retries := 0
	p.OnRetry = func(n int, err error, d time.Duration) { retries++ }
	err := p.Do(func() error { return last })
	if !errors.Is(err, last) {
		t.Fatalf("terminal error %v does not wrap the last attempt's error", err)
	}
	if retries != 2 || len(clk.delays) != 2 {
		t.Fatalf("retries=%d sleeps=%d, want 2 and 2", retries, len(clk.delays))
	}
}

func TestRetryDoesNotRetryCancellation(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 5, Sleep: clk.sleep}
	for _, sentinel := range []error{ErrCanceled, ErrDeadlineExceeded} {
		calls := 0
		err := p.Do(func() error { calls++; return sentinel })
		if !errors.Is(err, sentinel) {
			t.Fatalf("error = %v, want %v", err, sentinel)
		}
		if calls != 1 || len(clk.delays) != 0 {
			t.Fatalf("%v: calls=%d sleeps=%d, want no retries", sentinel, calls, len(clk.delays))
		}
	}
}

// TestRetryCtxCancelInterruptsBackoff pins the fix for the policy
// sleeping through its full jittered backoff after the caller was
// already gone: a context canceled during the backoff sleep must end
// DoCtx with ErrCanceled instead of burning the remaining attempts.
// The recorded clock cancels mid-"sleep", so the test takes no wall
// time.
func TestRetryCtxCancelInterruptsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour}
	p.Sleep = func(d time.Duration) {
		clk.sleep(d)
		cancel() // the caller goes away mid-backoff
	}
	calls := 0
	err := p.DoCtx(ctx, func() error { calls++; return errors.New("transient") })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want ErrCanceled unwrapping context.Canceled", err)
	}
	if calls != 1 || len(clk.delays) != 1 {
		t.Fatalf("calls=%d sleeps=%d, want the first backoff to be the last wait", calls, len(clk.delays))
	}
}

// TestRetryCtxAlreadyDoneSkipsBackoff asserts the backoff is never
// entered when the context expired before the sleep: the typed
// deadline error surfaces with zero recorded delays past the failing
// attempt.
func TestRetryCtxAlreadyDoneSkipsBackoff(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 5, Sleep: clk.sleep}
	calls := 0
	err := p.DoCtx(ctx, func() error { calls++; return errors.New("transient") })
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("error = %v, want ErrDeadlineExceeded", err)
	}
	if calls != 1 || len(clk.delays) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want 1 attempt and no backoff sleeps", calls, len(clk.delays))
	}
}

// TestRetryRealClockCancelInterruptsBackoff exercises the default
// timer-select sleep (Sleep == nil): with an hour-scale backoff, a
// cancellation must return in test time, proving the wait is on the
// context and not the timer.
func TestRetryRealClockCancelInterruptsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	done := make(chan error, 1)
	go func() {
		done <- p.DoCtx(ctx, func() error { return errors.New("transient") })
	}()
	time.Sleep(10 * time.Millisecond) // let the policy reach its backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("error = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DoCtx slept through cancellation (hour-long backoff not interrupted)")
	}
}

// TestRetryAbortClassifierStopsRetrying asserts Abort-classified errors
// return immediately and unwrapped — the coordinator relies on this for
// generation-pin mismatches, where retrying the same pin cannot help.
func TestRetryAbortClassifierStopsRetrying(t *testing.T) {
	permanent := errors.New("generation mismatch")
	clk := &recordingClock{}
	p := RetryPolicy{
		MaxAttempts: 5,
		Sleep:       clk.sleep,
		Abort:       func(err error) bool { return errors.Is(err, permanent) },
	}
	calls := 0
	err := p.DoCtx(context.Background(), func() error { calls++; return permanent })
	if err != permanent {
		t.Fatalf("error = %v, want the classified error returned unwrapped", err)
	}
	if calls != 1 || len(clk.delays) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want no retries after an aborting error", calls, len(clk.delays))
	}
}

func TestRetryMaxDelayCapsBackoff(t *testing.T) {
	clk := &recordingClock{}
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 150 * time.Millisecond, Sleep: clk.sleep}
	_ = p.Do(func() error { return errors.New("always") })
	for i, d := range clk.delays {
		if d >= p.MaxDelay {
			t.Fatalf("delay[%d] = %v not capped below %v", i, d, p.MaxDelay)
		}
	}
}
