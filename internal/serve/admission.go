package serve

import (
	"context"
	"sync"
)

// gate is the engine's admission controller: a weighted semaphore over
// the compute path with a bounded FIFO wait queue. Each executing
// request holds its weight (see requestWeight) against the capacity;
// when capacity is saturated a request waits in queue order, and when
// the queue itself is full the request is shed with ErrOverloaded. Cache
// hits never pass through the gate — the engine probes the LRU first, so
// cached answers keep flowing even when compute is saturated.
//
// The implementation is a plain mutex-guarded intrusive list rather than
// a channel semaphore because admission needs three things channels make
// awkward together: weights, FIFO fairness across different weights, and
// abandoning a queue slot on context cancellation without losing a
// grant.
type gate struct {
	mu       sync.Mutex
	capacity int64 // maximum concurrently held weight; 0 sheds all compute
	held     int64 // weight currently admitted
	maxQueue int   // waiter bound; the shed threshold of Engine.Ready
	waiting  int
	// FIFO queue of blocked acquisitions. head is granted first.
	head, tail *gateWaiter
}

// gateWaiter is one blocked acquisition. ready is closed — under gate.mu
// — when the waiter's weight has been charged to the gate.
type gateWaiter struct {
	weight int64
	ready  chan struct{}
	next   *gateWaiter
}

func newGate(capacity int64, maxQueue int) *gate {
	return &gate{capacity: capacity, maxQueue: maxQueue}
}

// acquire admits weight units of work, blocking in FIFO order while the
// gate is saturated. It fails fast with ErrOverloaded when the wait
// queue is full (or the gate sheds all compute), and with the typed
// cancellation errors when ctx ends first. Weights above capacity are
// clamped so one oversized request can still run, alone.
func (g *gate) acquire(ctx context.Context, weight int64) error {
	if err := ctx.Err(); err != nil {
		return ctxError(err)
	}
	if g.capacity <= 0 {
		return ErrOverloaded
	}
	if weight > g.capacity {
		weight = g.capacity
	}
	g.mu.Lock()
	// Fast path: capacity free and nobody queued ahead (FIFO: a new
	// arrival must not overtake waiters).
	if g.head == nil && g.held+weight <= g.capacity {
		g.held += weight
		g.mu.Unlock()
		return nil
	}
	if g.waiting >= g.maxQueue {
		g.mu.Unlock()
		return ErrOverloaded
	}
	w := &gateWaiter{weight: weight, ready: make(chan struct{})}
	if g.tail == nil {
		g.head = w
	} else {
		g.tail.next = w
	}
	g.tail = w
	g.waiting++
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx.Done and taking the lock: the weight is
			// already charged, and the caller is abandoning — give it
			// back so the grant is not leaked.
			g.mu.Unlock()
			g.release(weight)
		default:
			g.unlink(w)
			g.mu.Unlock()
		}
		return ctxError(ctx.Err())
	}
}

// release returns weight units and grants queued waiters, in FIFO order,
// for as long as they fit. Weights are clamped exactly as acquire
// clamped them.
func (g *gate) release(weight int64) {
	if g.capacity <= 0 {
		return
	}
	if weight > g.capacity {
		weight = g.capacity
	}
	g.mu.Lock()
	g.held -= weight
	if g.held < 0 {
		g.held = 0
	}
	for g.head != nil && g.held+g.head.weight <= g.capacity {
		w := g.head
		g.head = w.next
		if g.head == nil {
			g.tail = nil
		}
		w.next = nil
		g.waiting--
		g.held += w.weight
		close(w.ready)
	}
	g.mu.Unlock()
}

// unlink removes a canceled waiter from the queue. Caller holds g.mu.
func (g *gate) unlink(target *gateWaiter) {
	var prev *gateWaiter
	for w := g.head; w != nil; w = w.next {
		if w != target {
			prev = w
			continue
		}
		if prev == nil {
			g.head = w.next
		} else {
			prev.next = w.next
		}
		if g.tail == w {
			g.tail = prev
		}
		w.next = nil
		g.waiting--
		return
	}
}

// queued returns how many requests are waiting for admission.
func (g *gate) queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// saturated reports whether the gate is at its shed threshold — a
// weight-1 request arriving now would be shed. This is the "not ready"
// condition of the /readyz probe.
func (g *gate) saturated() bool {
	if g.capacity <= 0 {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.head == nil && g.held < g.capacity {
		return false // it would be admitted immediately
	}
	return g.waiting >= g.maxQueue // it would have to queue; is the queue full?
}
