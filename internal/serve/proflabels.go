package serve

import (
	"runtime/pprof"
)

// profileLabels is the pprof label set attached to a request's execution
// (DESIGN.md §13). Every CPU-profile sample taken while the request
// computes carries these labels, so a profile captured under load
// decomposes by request kind: problem for all requests, the problem's
// discriminating knob (top-k algorithm and dimension, compare dimension,
// mitigator), and the cache disposition — "miss" samples are the compute
// the cache failed to save, "off" means the engine runs uncached.
//
// Labels are attached after the cache probe, so cache hits (which spend
// no compute worth attributing) never appear in profiles, and the label
// cardinality stays bounded by the request vocabulary: no IDs, keys or
// other unbounded values ever become label values.
func profileLabels(req Request, cache string) pprof.LabelSet {
	switch req.Problem {
	case Quantify:
		return pprof.Labels(
			"problem", req.Problem.String(),
			"algo", req.Algorithm.String(),
			"dim", req.Dim.String(),
			"cache", cache,
		)
	case Compare:
		return pprof.Labels(
			"problem", req.Problem.String(),
			"dim", req.Of.String(),
			"cache", cache,
		)
	case Mitigate:
		return pprof.Labels(
			"problem", req.Problem.String(),
			"mitigator", req.Mitigator.String(),
			"cache", cache,
		)
	default:
		return pprof.Labels(
			"problem", req.Problem.String(),
			"cache", cache,
		)
	}
}
