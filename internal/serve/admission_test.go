package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGateFastPathAndRelease(t *testing.T) {
	g := newGate(2, 4)
	ctx := context.Background()
	if err := g.acquire(ctx, 1); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.acquire(ctx, 1); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if g.saturated() {
		t.Fatal("gate with empty queue reports saturated")
	}
	g.release(1)
	g.release(1)
	if err := g.acquire(ctx, 2); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestGateZeroCapacityShedsEverything(t *testing.T) {
	g := newGate(0, 10)
	if err := g.acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire on zero-capacity gate = %v, want ErrOverloaded", err)
	}
	if !g.saturated() {
		t.Fatal("zero-capacity gate must report saturated")
	}
	g.release(1) // must not panic or underflow
}

func TestGateOversizedWeightClamped(t *testing.T) {
	g := newGate(2, 4)
	if err := g.acquire(context.Background(), 10); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	// The clamped weight occupies the whole gate; release with the same
	// oversized weight must drain it fully.
	g.release(10)
	if err := g.acquire(context.Background(), 2); err != nil {
		t.Fatalf("acquire after clamped release: %v", err)
	}
}

func TestGateFIFOGrantOrder(t *testing.T) {
	g := newGate(1, 8)
	if err := g.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	order := make(chan int, waiters)
	var started, wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Enqueue strictly one at a time so arrival order is known.
			started.Done()
			if err := g.acquire(context.Background(), 1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			g.release(1)
		}(i)
		started.Wait()
		waitForQueued(t, g, i+1)
	}
	g.release(1) // grants cascade FIFO as each waiter releases
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order violated: got waiter %d, want %d", got, want)
		}
		want++
	}
}

func TestGateShedsWhenQueueFull(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- g.acquire(context.Background(), 1) }()
	waitForQueued(t, g, 1)
	if !g.saturated() {
		t.Fatal("full queue must report saturated")
	}
	if err := g.acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire past queue bound = %v, want ErrOverloaded", err)
	}
	g.release(1)
	if err := <-errc; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.release(1)
}

func TestGateCancelWhileQueued(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.acquire(ctx, 1) }()
	waitForQueued(t, g, 1)
	cancel()
	if err := <-errc; !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if got := g.queued(); got != 0 {
		t.Fatalf("queue length after cancel = %d, want 0", got)
	}
	// The canceled waiter must not have leaked a grant: after release,
	// the full capacity is available again.
	g.release(1)
	if err := g.acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire after canceled waiter: %v", err)
	}
}

func TestGateExpiredContextRefusedUpfront(t *testing.T) {
	g := newGate(4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.acquire(ctx, 1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("acquire with dead ctx = %v, want ErrCanceled", err)
	}
}

// TestGateConcurrentStress hammers a small gate from many goroutines
// under -race: the held weight must never exceed capacity, and every
// admitted acquisition must be released without deadlock.
func TestGateConcurrentStress(t *testing.T) {
	const capacity = 3
	g := newGate(capacity, 64)
	var held atomic.Int64
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			weight := int64(1 + i%2)
			for n := 0; n < 200; n++ {
				err := g.acquire(context.Background(), weight)
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected acquire error: %v", err)
						return
					}
					shed.Add(1)
					continue
				}
				if now := held.Add(weight); now > capacity {
					t.Errorf("held weight %d exceeds capacity %d", now, capacity)
				}
				held.Add(-weight)
				admitted.Add(1)
				g.release(weight)
			}
		}(i)
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("stress admitted nothing")
	}
	if g.queued() != 0 {
		t.Fatalf("queue not drained: %d", g.queued())
	}
}

// waitForQueued spins until the gate reports n waiters (the enqueue runs
// on another goroutine).
func waitForQueued(t *testing.T, g *gate, n int) {
	t.Helper()
	for i := 0; i < 1e7; i++ {
		if g.queued() >= n {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("gate never reached %d queued waiters", n)
}
