package serve

import (
	"fmt"
	"strings"
	"sync/atomic"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/topk"
)

// Problem selects which of the paper's two problems a request asks.
type Problem int

const (
	// Quantify is Problem 1: the k most/least unfair members of one
	// dimension, solved by a Fagin-style algorithm over the indices.
	Quantify Problem = iota
	// Compare is Problem 2: where does the fairness comparison of two
	// values reverse relative to their overall comparison (Algorithms
	// 2–3).
	Compare
)

func (p Problem) String() string {
	switch p {
	case Quantify:
		return "quantify"
	case Compare:
		return "compare"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Request is one fairness query. Quantify requests use Dim, K, Direction,
// Algorithm and optionally Candidates (the §4.1 "out of these members…"
// restriction). Compare requests use R1, R2 (two members of the Of
// dimension), By (the breakdown dimension) and DefinedOnly (aggregation
// semantics; false = the completion semantics of Algorithms 1–3).
type Request struct {
	Problem Problem

	// Quantify fields.
	Dim        compare.Dimension
	K          int
	Direction  topk.Direction
	Algorithm  topk.Algorithm
	Candidates []string

	// Compare fields.
	Of          compare.Dimension
	R1, R2      string
	By          compare.Dimension
	DefinedOnly bool
}

// key derives the cache key of the request against a snapshot generation.
func (r Request) key(gen uint64) cacheKey {
	return cacheKey{
		gen:         gen,
		problem:     r.Problem,
		dim:         int(r.Dim),
		k:           r.K,
		dir:         int(r.Direction),
		algo:        int(r.Algorithm),
		candidates:  strings.Join(r.Candidates, "\x1f"),
		r1:          r.R1,
		r2:          r.R2,
		by:          int(r.By),
		definedOnly: r.DefinedOnly,
	}
}

// Response is the answer to one Request. Quantify responses fill Results
// and Stats; Compare responses fill Comparison. Gen records which
// snapshot generation produced the answer and CacheHit whether it was
// served from the result cache. Responses may be shared between callers
// (a cache hit returns the stored value), so callers must treat Results
// and Comparison as read-only.
type Response struct {
	Results    []topk.Result
	Stats      topk.Stats
	Comparison *compare.Comparison
	Gen        uint64
	CacheHit   bool
	Err        error
}

// Options configures an Engine.
type Options struct {
	// Workers bounds the goroutines DoBatch fans a batch across,
	// following the repository-wide convention of core.BoundedWorkers: 0
	// selects runtime.GOMAXPROCS(0), 1 runs batches inline, and the pool
	// never exceeds the batch size.
	Workers int
	// CacheSize is the LRU result cache capacity in entries: 0 selects
	// DefaultCacheSize, negative disables caching entirely.
	CacheSize int
}

// DefaultCacheSize is the result cache capacity when Options.CacheSize is
// zero.
const DefaultCacheSize = 1024

// Engine executes fairness queries against the current snapshot. It is
// safe for concurrent use: the snapshot hangs behind an atomic pointer
// (Swap / Refresh publish a new generation without pausing in-flight
// queries), the cache is internally locked, and all algorithm state is
// per-call.
type Engine struct {
	workers int
	cache   *lruCache // nil when caching is disabled
	snap    atomic.Pointer[Snapshot]

	hits, misses atomic.Uint64
}

// NewEngine builds an engine serving the given snapshot.
func NewEngine(snap *Snapshot, opts Options) *Engine {
	if snap == nil {
		panic("serve: NewEngine with nil snapshot")
	}
	e := &Engine{workers: opts.Workers}
	switch {
	case opts.CacheSize == 0:
		e.cache = newLRU(DefaultCacheSize)
	case opts.CacheSize > 0:
		e.cache = newLRU(opts.CacheSize)
	}
	e.snap.Store(snap)
	return e
}

// Snapshot returns the snapshot currently being served.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Swap atomically publishes a new snapshot. Queries that already loaded
// the old snapshot finish against it; subsequent queries see the new
// generation, whose distinct cache keys make every older cache entry
// unreachable (they age out of the LRU).
func (e *Engine) Swap(snap *Snapshot) {
	if snap == nil {
		panic("serve: Swap with nil snapshot")
	}
	e.snap.Store(snap)
}

// Refresh is copy-on-write table maintenance in one step: it derives a
// new snapshot from the current one via WithUpdates(apply), publishes it,
// and returns it.
func (e *Engine) Refresh(apply func(*core.Table)) *Snapshot {
	next := e.Snapshot().WithUpdates(apply)
	e.Swap(next)
	return next
}

// CacheStats returns the number of cache hits and misses served so far.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// Do answers one request against the current snapshot.
func (e *Engine) Do(req Request) Response {
	return e.doOn(e.Snapshot(), req)
}

// DoBatch answers a batch of requests across the bounded worker pool and
// returns the responses in request order. The snapshot is loaded once for
// the whole batch, so every response in it carries the same generation
// even if a Swap lands mid-batch — a batch is a consistent read.
func (e *Engine) DoBatch(reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	snap := e.Snapshot()
	w := core.BoundedWorkers(e.workers, len(reqs))
	core.RunIndexed(len(reqs), w, func(i int) {
		out[i] = e.doOn(snap, reqs[i])
	})
	return out
}

// doOn answers req against a pinned snapshot, consulting the cache.
func (e *Engine) doOn(snap *Snapshot, req Request) Response {
	if err := validate(req); err != nil {
		return Response{Gen: snap.gen, Err: err}
	}
	var key cacheKey
	if e.cache != nil {
		key = req.key(snap.gen)
		if resp, ok := e.cache.Get(key); ok {
			e.hits.Add(1)
			resp.CacheHit = true
			return resp
		}
		e.misses.Add(1)
	}
	resp := execute(snap, req)
	if e.cache != nil && resp.Err == nil {
		e.cache.Put(key, resp)
	}
	return resp
}

// validate rejects malformed requests before they reach the algorithms.
func validate(req Request) error {
	switch req.Problem {
	case Quantify:
		if req.K <= 0 {
			return fmt.Errorf("serve: quantify needs k > 0, got %d", req.K)
		}
		switch req.Dim {
		case compare.ByGroup, compare.ByQuery, compare.ByLocation:
		default:
			return fmt.Errorf("serve: unknown quantify dimension %v", req.Dim)
		}
		if req.Candidates != nil && req.Dim != compare.ByGroup {
			return fmt.Errorf("serve: candidate restriction is only supported for the group dimension")
		}
		switch req.Direction {
		case topk.MostUnfair, topk.LeastUnfair:
		default:
			return fmt.Errorf("serve: unknown direction %v", req.Direction)
		}
		switch req.Algorithm {
		case topk.TA, topk.FA, topk.Naive, topk.NRA:
		default:
			return fmt.Errorf("serve: unknown algorithm %v", req.Algorithm)
		}
	case Compare:
		if req.R1 == "" || req.R2 == "" {
			return fmt.Errorf("serve: compare needs both r1 and r2")
		}
		switch req.Of {
		case compare.ByGroup, compare.ByQuery, compare.ByLocation:
		default:
			return fmt.Errorf("serve: unknown compare dimension %v", req.Of)
		}
		switch req.By {
		case compare.ByGroup, compare.ByQuery, compare.ByLocation:
		default:
			return fmt.Errorf("serve: unknown breakdown dimension %v", req.By)
		}
		if req.Of == req.By {
			return fmt.Errorf("serve: cannot break a %v comparison down by %v", req.Of, req.By)
		}
	default:
		return fmt.Errorf("serve: unknown problem %v", req.Problem)
	}
	return nil
}

// execute runs the request's algorithm against the snapshot; all mutable
// state lives inside the callee's per-call structs.
func execute(snap *Snapshot, req Request) Response {
	resp := Response{Gen: snap.gen}
	switch req.Problem {
	case Quantify:
		src := snap.source(req.Dim)
		if src == nil {
			resp.Err = fmt.Errorf("serve: snapshot has no %v lists (empty table?)", req.Dim)
			return resp
		}
		if req.Candidates != nil {
			restricted, err := topk.NewFilteredLists(src, req.Candidates)
			if err != nil {
				resp.Err = err
				return resp
			}
			src = restricted
		}
		resp.Results, resp.Stats, resp.Err = topk.TopK(src, req.K, req.Direction, req.Algorithm)
	case Compare:
		c := snap.comparer(req.DefinedOnly)
		switch req.Of {
		case compare.ByGroup:
			resp.Comparison, resp.Err = c.Groups(req.R1, req.R2, req.By, compare.Scope{})
		case compare.ByQuery:
			resp.Comparison, resp.Err = c.Queries(core.Query(req.R1), core.Query(req.R2), req.By, compare.Scope{})
		case compare.ByLocation:
			resp.Comparison, resp.Err = c.Locations(core.Location(req.R1), core.Location(req.R2), req.By, compare.Scope{})
		}
	}
	return resp
}
