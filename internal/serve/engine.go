package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/faultinject"
	"fairjob/internal/mitigate"
	"fairjob/internal/obs"
	"fairjob/internal/topk"
)

// Problem selects which of the paper's two problems a request asks.
type Problem int

const (
	// Quantify is Problem 1: the k most/least unfair members of one
	// dimension, solved by a Fagin-style algorithm over the indices.
	Quantify Problem = iota
	// Compare is Problem 2: where does the fairness comparison of two
	// values reverse relative to their overall comparison (Algorithms
	// 2–3).
	Compare
	// Mitigate is Problem 3: re-rank one marketplace page to reduce the
	// target group's Exposure deviation, measuring before and after
	// against the same pinned snapshot (internal/mitigate).
	Mitigate
)

// problemCount sizes the per-problem metric arrays.
const problemCount = 3

func (p Problem) String() string {
	switch p {
	case Quantify:
		return "quantify"
	case Compare:
		return "compare"
	case Mitigate:
		return "mitigate"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Request is one fairness query. Quantify requests use Dim, K, Direction,
// Algorithm and optionally Candidates (the §4.1 "out of these members…"
// restriction). Compare requests use R1, R2 (two members of the Of
// dimension), By (the breakdown dimension) and DefinedOnly (aggregation
// semantics; false = the completion semantics of Algorithms 1–3).
type Request struct {
	Problem Problem

	// Quantify fields.
	Dim        compare.Dimension
	K          int
	Direction  topk.Direction
	Algorithm  topk.Algorithm
	Candidates []string

	// Compare fields.
	Of          compare.Dimension
	R1, R2      string
	By          compare.Dimension
	DefinedOnly bool

	// Mitigate fields: which page (Query, Location), which group's
	// deviation to reduce (Group, a canonical group key), which
	// re-ranker (Mitigator), and its knobs — MinProportion/Alpha for
	// FA*IR (0 selects the page-proportional / package defaults),
	// SwapBudget for the exposure-parity search (0 = unbounded).
	Mitigator     mitigate.Kind
	Group         string
	Query         string
	Location      string
	MinProportion float64
	Alpha         float64
	SwapBudget    int

	// Deadline bounds this request's execution, overriding the engine's
	// Options.DefaultDeadline; 0 keeps the default. It composes with any
	// deadline already on the caller's context — the earlier one wins.
	// Deadline is not part of the cache key: an answer computed under a
	// tight deadline is the same answer.
	Deadline time.Duration
}

// key derives the cache key of the request against a snapshot generation.
func (r Request) key(gen uint64) cacheKey {
	return cacheKey{
		gen:         gen,
		problem:     r.Problem,
		dim:         int(r.Dim),
		k:           r.K,
		dir:         int(r.Direction),
		algo:        int(r.Algorithm),
		candidates:  strings.Join(r.Candidates, "\x1f"),
		r1:          r.R1,
		r2:          r.R2,
		by:          int(r.By),
		definedOnly: r.DefinedOnly,
		mitigator:   int(r.Mitigator),
		group:       r.Group,
		query:       r.Query,
		location:    r.Location,
		minProp:     math.Float64bits(r.MinProportion),
		alpha:       math.Float64bits(r.Alpha),
		budget:      r.SwapBudget,
	}
}

// Response is the answer to one Request. Quantify responses fill Results
// and Stats; Compare responses fill Comparison. Gen records which
// snapshot generation produced the answer and CacheHit whether it was
// served from the result cache. Responses may be shared between callers
// (a cache hit returns the stored value), so callers must treat Results
// and Comparison as read-only.
type Response struct {
	Results    []topk.Result
	Stats      topk.Stats
	Comparison *compare.Comparison
	Mitigation *Mitigation
	Gen        uint64
	CacheHit   bool
	Err        error
}

// Mitigation is the answer to a Problem 3 request: the measured
// Exposure deviation of the target group before and after re-ranking,
// the permutation that was applied (new position → original page
// index), and the re-ranked worker IDs for display. Both measurements
// were taken against the same snapshot generation the response reports.
type Mitigation struct {
	Mitigator     mitigate.Kind
	Group         string
	Before, After float64
	Permutation   []int
	IDs           []string
	Moved         int
}

// Delta returns Before − After: positive when mitigation reduced the
// measured unfairness.
func (m *Mitigation) Delta() float64 { return m.Before - m.After }

// Options configures an Engine.
type Options struct {
	// Workers bounds the goroutines DoBatch fans a batch across,
	// following the repository-wide convention of core.BoundedWorkers: 0
	// selects runtime.GOMAXPROCS(0), 1 runs batches inline, and the pool
	// never exceeds the batch size.
	Workers int
	// CacheSize is the LRU result cache capacity in entries: 0 selects
	// DefaultCacheSize, negative disables caching entirely.
	CacheSize int
	// Obs is the metrics registry the engine publishes its telemetry
	// into (request counts, cache hit/miss/eviction, per-problem latency
	// and queue-wait histograms, top-k access-cost histograms, snapshot
	// generation/age gauges — see DESIGN.md §9 for the full inventory).
	// Nil gives the engine a private registry, still readable through
	// Engine.Registry, so CacheStats and the telemetry summary work
	// without any wiring. The engine registers per-engine gauge
	// callbacks (cache length, snapshot age), so give each engine its
	// own registry rather than sharing one across engines.
	Obs *obs.Registry
	// Tracer, when non-nil, records a per-query trace (snapshot pin →
	// validate → cache lookup → execute → access accounting) into its
	// ring buffer. Nil disables tracing; the per-query cost is then a
	// few nil checks. A tail-sampled tracer
	// (obs.NewTracerTailSampled) keeps error and slow traces while
	// dropping most fast successes, so the interesting trace survives
	// heavy traffic.
	Tracer *obs.Tracer
	// Log, when non-nil, emits one wide event per request — every
	// outcome path, including validation rejects and shed requests —
	// carrying the request shape, snapshot generation, cache behavior,
	// queue wait, access costs and outcome (DESIGN.md §11). Nil
	// disables wide-event logging at the cost of one branch.
	Log *obs.Logger
	// SLO, when non-nil, receives one observation per admitted request
	// and contributes its burn-rate health to Engine.Ready: a sustained
	// hard burn makes the engine report unready until the alert windows
	// slide past the burst.
	SLO *obs.SLOMonitor

	// DefaultDeadline bounds every request that does not carry its own
	// Request.Deadline. 0 means no engine-wide deadline; requests then
	// run as long as their context allows.
	DefaultDeadline time.Duration
	// MaxInflight is the admission gate's compute capacity in weight
	// units (see requestWeight: naive full scans count double). 0
	// disables admission control entirely — the default, and the
	// backward-compatible behavior. Negative sheds all compute: only
	// cache hits are served, the "drain" configuration. Cache hits never
	// consume capacity regardless.
	MaxInflight int
	// MaxQueue bounds how many requests may wait for admission before
	// the gate sheds with ErrOverloaded; it only applies when MaxInflight
	// is positive. 0 selects 2×MaxInflight; negative means no waiting —
	// a request that cannot run immediately is shed.
	MaxQueue int
	// Retry is the backoff policy wrapped around snapshot builds in
	// Refresh/RefreshCtx. The zero value selects the package defaults
	// (3 attempts, 10ms base, 1s cap). The engine chains its
	// refresh_retries_total counter onto OnRetry, preserving any
	// callback set here.
	Retry RetryPolicy
}

// DefaultCacheSize is the result cache capacity when Options.CacheSize is
// zero.
const DefaultCacheSize = 1024

// Engine executes fairness queries against the current snapshot. It is
// safe for concurrent use: the snapshot hangs behind an atomic pointer
// (Swap / Refresh publish a new generation without pausing in-flight
// queries), the cache is internally locked, all algorithm state is
// per-call, and every telemetry write is an atomic operation on an
// obs metric.
type Engine struct {
	workers int
	cache   *lruCache // nil when caching is disabled
	snap    atomic.Pointer[Snapshot]

	gate            *gate // nil when admission control is disabled
	defaultDeadline time.Duration
	retry           RetryPolicy

	reg    *obs.Registry
	met    *engineMetrics
	tracer *obs.Tracer     // nil disables per-query tracing
	log    *obs.Logger     // nil disables wide-event logging
	slo    *obs.SLOMonitor // nil disables SLO accounting
}

// engineMetrics holds the engine's metric handles, resolved against the
// registry once at construction so the per-query hot path never touches
// the registry's lock or allocates a name string.
type engineMetrics struct {
	requests [problemCount]*obs.Counter   // indexed by Problem
	latency  [problemCount]*obs.Histogram // serve_request_seconds{problem=...}
	errors   *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheEvicts *obs.Counter

	// Resilience counters (DESIGN.md §10): how requests die when they do
	// not complete, and how often maintenance had to retry.
	shed           *obs.Counter // serve_shed_total
	deadlines      *obs.Counter // serve_deadline_exceeded_total
	canceled       *obs.Counter // serve_canceled_total
	panics         *obs.Counter // serve_panics_recovered_total
	refreshRetries *obs.Counter // refresh_retries_total
	inflight       *obs.Gauge   // serve_inflight

	batchSize *obs.Histogram
	queueWait *obs.Histogram

	// Per-algorithm access-cost histograms, indexed by topk.Algorithm —
	// the §6.3 / Table 6 quantities, recovered continuously instead of
	// per-benchmark.
	sorted [4]*obs.Histogram
	random [4]*obs.Histogram
	rounds [4]*obs.Histogram

	// Algorithm 3 random-access counts per comparison (Problem 2).
	compareAccesses *obs.Histogram
}

// countBuckets is the bucket layout of access-cost and batch-size
// histograms: powers of two from 1 to ~1M.
func countBuckets() []float64 { return obs.ExponentialBuckets(1, 2, 21) }

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	lat := obs.LatencyBuckets()
	counts := countBuckets()
	m := &engineMetrics{
		errors:          reg.Counter("serve_errors_total"),
		cacheHits:       reg.Counter("serve_cache_hits_total"),
		cacheMisses:     reg.Counter("serve_cache_misses_total"),
		cacheEvicts:     reg.Counter("serve_cache_evictions_total"),
		shed:            reg.Counter("serve_shed_total"),
		deadlines:       reg.Counter("serve_deadline_exceeded_total"),
		canceled:        reg.Counter("serve_canceled_total"),
		panics:          reg.Counter("serve_panics_recovered_total"),
		refreshRetries:  reg.Counter("refresh_retries_total"),
		inflight:        reg.Gauge("serve_inflight"),
		batchSize:       reg.Histogram("serve_batch_size", counts),
		queueWait:       reg.Histogram("serve_queue_wait_seconds", lat),
		compareAccesses: reg.Histogram("compare_accesses", counts),
	}
	for _, p := range []Problem{Quantify, Compare, Mitigate} {
		m.requests[p] = reg.Counter(obs.Name("serve_requests_total", "problem", p.String()))
		m.latency[p] = reg.Histogram(obs.Name("serve_request_seconds", "problem", p.String()), lat)
	}
	for _, a := range topk.Algorithms() {
		m.sorted[a] = reg.Histogram(obs.Name("topk_sorted_accesses", "algo", a.String()), counts)
		m.random[a] = reg.Histogram(obs.Name("topk_random_accesses", "algo", a.String()), counts)
		m.rounds[a] = reg.Histogram(obs.Name("topk_rounds", "algo", a.String()), counts)
	}
	return m
}

// NewEngine builds an engine serving the given snapshot.
func NewEngine(snap *Snapshot, opts Options) *Engine {
	if snap == nil {
		panic("serve: NewEngine with nil snapshot")
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		workers:         opts.Workers,
		reg:             reg,
		met:             newEngineMetrics(reg),
		tracer:          opts.Tracer,
		log:             opts.Log,
		slo:             opts.SLO,
		defaultDeadline: opts.DefaultDeadline,
		retry:           opts.Retry,
	}
	opts.SLO.Register(reg)
	switch {
	case opts.CacheSize == 0:
		e.cache = newLRU(DefaultCacheSize)
	case opts.CacheSize > 0:
		e.cache = newLRU(opts.CacheSize)
	}
	if opts.MaxInflight != 0 {
		capacity := int64(opts.MaxInflight)
		if capacity < 0 {
			capacity = 0 // shed all compute; only cache hits are served
		}
		maxQueue := opts.MaxQueue
		switch {
		case maxQueue == 0:
			maxQueue = 2 * int(capacity)
		case maxQueue < 0:
			maxQueue = 0
		}
		e.gate = newGate(capacity, maxQueue)
	}
	userRetry := e.retry.OnRetry
	e.retry.OnRetry = func(retry int, err error, delay time.Duration) {
		e.met.refreshRetries.Inc()
		if userRetry != nil {
			userRetry(retry, err, delay)
		}
	}
	e.snap.Store(snap)
	reg.GaugeFunc("serve_cache_entries", func() float64 {
		if e.cache == nil {
			return 0
		}
		return float64(e.cache.Len())
	})
	reg.GaugeFunc("serve_snapshot_generation", func() float64 {
		return float64(e.Snapshot().gen)
	})
	reg.GaugeFunc("serve_snapshot_age_seconds", func() float64 {
		return time.Since(e.Snapshot().created).Seconds()
	})
	if e.gate != nil {
		reg.GaugeFunc("serve_admission_queued", func() float64 {
			return float64(e.gate.queued())
		})
	}
	return e
}

// Registry returns the engine's metrics registry (the one given in
// Options.Obs, or the private default), for snapshots, summaries and
// admin-endpoint wiring.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// RecordTopK implements topk.Recorder: every Problem 1 execution feeds
// its access-cost Stats into the per-algorithm histograms.
func (e *Engine) RecordTopK(algo topk.Algorithm, _ topk.Direction, st topk.Stats) {
	if int(algo) < 0 || int(algo) >= len(e.met.sorted) {
		return
	}
	e.met.sorted[algo].Observe(float64(st.SortedAccesses))
	e.met.random[algo].Observe(float64(st.RandomAccesses))
	e.met.rounds[algo].Observe(float64(st.Rounds))
}

// Snapshot returns the snapshot currently being served.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Swap atomically publishes a new snapshot. Queries that already loaded
// the old snapshot finish against it; subsequent queries see the new
// generation, whose distinct cache keys make every older cache entry
// unreachable (they age out of the LRU).
func (e *Engine) Swap(snap *Snapshot) {
	if snap == nil {
		panic("serve: Swap with nil snapshot")
	}
	e.snap.Store(snap)
}

// Refresh is copy-on-write table maintenance in one step: it derives a
// new snapshot from the current one via WithUpdates(apply), publishes it,
// and returns it. It is RefreshCtx without a context, and it panics if
// the build still fails after the retry policy is exhausted — Refresh
// keeps the original "maintenance cannot fail" contract for callers that
// treat a broken refresh as a programming error.
func (e *Engine) Refresh(apply func(*core.Table)) *Snapshot {
	next, err := e.RefreshCtx(context.Background(), apply)
	if err != nil {
		panic(err)
	}
	return next
}

// RefreshCtx is Refresh with failure handling: each snapshot build is
// wrapped in the engine's RetryPolicy (exponential backoff with
// deterministic jitter; refresh_retries_total counts the retries), and a
// panic inside apply or the index rebuild is recovered into an
// *InternalError rather than crashing the maintenance goroutine. The
// serving snapshot is swapped only after a build succeeds — a failed
// refresh leaves the engine serving the previous generation, which is
// the property the chaos tests pin. A ctx that ends between attempts —
// or during a backoff sleep, which is ctx-aware — aborts with the typed
// cancellation errors.
func (e *Engine) RefreshCtx(ctx context.Context, apply func(*core.Table)) (*Snapshot, error) {
	var next *Snapshot
	err := e.retry.DoCtx(ctx, func() error {
		if err := ctx.Err(); err != nil {
			return ctxError(err)
		}
		if err := faultinject.InjectErr(faultinject.RefreshFail); err != nil {
			return err
		}
		var buildErr error
		next, buildErr = buildSnapshot(e.Snapshot(), apply)
		return buildErr
	})
	if err != nil {
		return nil, err
	}
	e.Swap(next)
	return next, nil
}

// buildSnapshot derives the next snapshot, converting a panic in the
// caller-supplied apply (or the rebuild it triggers) into an error the
// retry loop and RefreshCtx's caller can handle.
func buildSnapshot(cur *Snapshot, apply func(*core.Table)) (snap *Snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &InternalError{Value: r, Stack: debug.Stack()}
		}
	}()
	return cur.WithUpdates(apply), nil
}

// Ready reports whether the engine should receive traffic: nil when a
// snapshot is loaded and the admission gate is below its shed threshold,
// an error describing the blocked state otherwise. This is the /readyz
// predicate — a saturated gate means the next compute request would shed,
// so a load balancer should prefer other replicas until the queue drains.
func (e *Engine) Ready() error {
	if e.Snapshot() == nil {
		return errors.New("serve: no snapshot loaded")
	}
	if e.gate != nil && e.gate.saturated() {
		return fmt.Errorf("serve: admission gate saturated (%d queued): %w", e.gate.queued(), ErrOverloaded)
	}
	// A sustained SLO burn also drains the replica: the engine is up, but
	// it is failing its objectives, and a load balancer should prefer
	// replicas that are not. Healthy clears once the alert windows slide
	// past the burst, so readiness recovers without a restart.
	if err := e.slo.Healthy(); err != nil {
		return err
	}
	return nil
}

// CacheStats reports the engine's result-cache counters: hits and
// misses served so far (from the obs counters), evictions performed by
// the LRU, and the number of entries currently cached.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// CacheStats returns the current cache counters. With caching disabled
// every field is zero except Misses, which still counts executions.
func (e *Engine) CacheStats() CacheStats {
	cs := CacheStats{Hits: e.met.cacheHits.Value(), Misses: e.met.cacheMisses.Value()}
	if e.cache != nil {
		cs.Evictions = e.cache.Evictions()
		cs.Entries = e.cache.Len()
	}
	return cs
}

// Do answers one request against the current snapshot, without a
// deadline beyond the engine's default.
func (e *Engine) Do(req Request) Response {
	return e.DoCtx(context.Background(), req)
}

// DoCtx answers one request under ctx: cancellation and deadlines are
// observed at the admission gate and at every algorithm round, and a
// request cut short reports ErrCanceled or ErrDeadlineExceeded in
// Response.Err (matching the underlying context error via errors.Is).
//
// A context carrying a parent span (obs.ContextWithSpan — the cluster
// coordinator's legs do this) makes the engine JOIN that trace as an
// "engine" child span instead of starting a second, unjoined trace of
// its own: one request, one trace id, with the engine's work visible
// in the caller's waterfall.
func (e *Engine) DoCtx(ctx context.Context, req Request) Response {
	if ps, ok := obs.SpanFromContext(ctx); ok {
		es := ps.StartChild("engine")
		es.SetKind("engine")
		resp := e.doOn(ctx, e.Snapshot(), req, nil)
		es.SetGen(resp.Gen)
		es.SetOutcome(Outcome(resp.Err))
		es.Finish()
		return resp
	}
	tr := e.tracer.Start(req.Problem.String())
	snap := e.Snapshot()
	tr.Mark("snapshot-pin")
	return e.doOn(ctx, snap, req, tr)
}

// DoBatch answers a batch of requests across the bounded worker pool and
// returns the responses in request order. The snapshot is loaded once for
// the whole batch, so every response in it carries the same generation
// even if a Swap lands mid-batch — a batch is a consistent read. The
// queue-wait histogram records, per request, how long it sat in the
// batch before a worker picked it up.
func (e *Engine) DoBatch(reqs []Request) []Response {
	return e.DoBatchCtx(context.Background(), reqs)
}

// DoBatchCtx is DoBatch under a batch-wide context. Cancellation never
// loses a response: every request gets a Response, with the ones not yet
// executed reporting the typed cancellation error, so callers can tell
// exactly which members of the batch completed.
func (e *Engine) DoBatchCtx(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	e.met.batchSize.Observe(float64(len(reqs)))
	snap := e.Snapshot()
	queued := time.Now()
	w := core.BoundedWorkers(e.workers, len(reqs))
	core.RunIndexed(len(reqs), w, func(i int) {
		wait := time.Since(queued)
		e.met.queueWait.Observe(wait.Seconds())
		tr := e.tracer.Start(reqs[i].Problem.String())
		tr.SetQueueWait(wait)
		tr.Mark("snapshot-pin")
		out[i] = e.doOn(ctx, snap, reqs[i], tr)
	})
	return out
}

// doOn answers req against a pinned snapshot, consulting the cache. tr
// may be nil (tracing disabled); every response — hit, miss or error —
// lands in the per-problem latency histogram.
//
// The resilient path runs in a fixed order (DESIGN.md §10): validate →
// cache probe → deadline → admission → guarded execute. The cache probe
// sits BEFORE the deadline and the gate on purpose — a cached answer
// costs no compute, so it is served even when the gate is shedding
// everything, which keeps hot queries alive through overload.
func (e *Engine) doOn(ctx context.Context, snap *Snapshot, req Request, tr *obs.Trace) Response {
	start := time.Now()
	tr.SetGen(snap.gen)
	if err := validate(req); err != nil {
		e.met.errors.Inc()
		tr.Annotate("err", err.Error())
		tr.SetOutcome("error")
		e.tracer.Finish(tr)
		// A validation reject is the caller's bug, not the engine's
		// unavailability: no latency sample, no request count, no SLO
		// observation — but it does get a wide event, because "who sends
		// malformed queries" is an operational question.
		resp := Response{Gen: snap.gen, Err: err}
		e.emit(req, resp, tr, "error", time.Since(start), "")
		e.tracer.Release(tr)
		return resp
	}
	tr.Mark("validate")
	pi := req.Problem
	e.met.requests[pi].Inc()
	var key cacheKey
	if e.cache != nil {
		key = req.key(snap.gen)
		if resp, ok := e.cache.Get(key); ok {
			e.met.cacheHits.Inc()
			tr.Mark("cache-lookup")
			tr.Annotate("cache", "hit")
			resp.CacheHit = true
			lat := time.Since(start)
			tr.SetOutcome("ok")
			e.tracer.Finish(tr)
			e.met.latency[pi].ObserveWithExemplar(lat.Seconds(), tr.JoinID())
			e.slo.Observe(lat, nil)
			e.emit(req, resp, tr, "ok", lat, "hit")
			e.tracer.Release(tr)
			return resp
		}
		e.met.cacheMisses.Inc()
	}
	tr.Mark("cache-lookup")

	if d := req.Deadline; d > 0 || e.defaultDeadline > 0 {
		if d <= 0 {
			d = e.defaultDeadline
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	faultinject.Inject(faultinject.QueueDelay)
	if e.gate != nil {
		weight := requestWeight(req)
		if err := e.gate.acquire(ctx, weight); err != nil {
			return e.refuse(snap, req, err, tr, start)
		}
		defer e.gate.release(weight)
	} else if err := ctx.Err(); err != nil {
		// No gate to observe the context; still refuse dead requests
		// before spending compute on them.
		return e.refuse(snap, req, ctxError(err), tr, start)
	}

	e.met.inflight.Add(1)
	// Execute under pprof labels: every CPU sample the request burns —
	// including in goroutines the evaluators or top-k scans spawn, which
	// inherit the labels — is attributed to its request kind. See
	// profileLabels for the label vocabulary.
	var resp Response
	pprof.Do(ctx, profileLabels(req, e.cacheState()), func(ctx context.Context) {
		resp = e.executeSafe(ctx, snap, req, tr)
	})
	e.met.inflight.Add(-1)
	tr.Mark("execute")
	resp.Err = ctxError(resp.Err)
	if resp.Err != nil {
		e.met.errors.Inc()
		e.countFailure(resp.Err)
		tr.Annotate("err", resp.Err.Error())
	} else {
		if req.Problem == Compare && resp.Comparison != nil {
			e.met.compareAccesses.Observe(float64(resp.Comparison.Accesses))
		}
		if e.cache != nil {
			if e.cache.Put(key, resp) {
				e.met.cacheEvicts.Inc()
			}
		}
	}
	tr.Mark("access-accounting")
	lat := time.Since(start)
	outcome := outcomeOf(resp.Err)
	tr.SetOutcome(outcome)
	// Finish before publishing the trace ID anywhere: the tail sampler
	// decides retention there, and only a retained trace's ID (JoinID)
	// may land in the latency exemplar and the wide event — otherwise
	// the metric → trace join would dangle for sampled-out successes.
	e.tracer.Finish(tr)
	e.met.latency[pi].ObserveWithExemplar(lat.Seconds(), tr.JoinID())
	e.slo.Observe(lat, resp.Err)
	e.emit(req, resp, tr, outcome, lat, e.cacheState())
	e.tracer.Release(tr)
	return resp
}

// refuse finishes a request that never executed (shed, expired or
// canceled before admission), keeping the telemetry invariants: the
// error counters tick, and the request still lands one latency sample,
// one SLO observation and one wide event.
func (e *Engine) refuse(snap *Snapshot, req Request, err error, tr *obs.Trace, start time.Time) Response {
	e.met.errors.Inc()
	e.countFailure(err)
	tr.Annotate("err", err.Error())
	lat := time.Since(start)
	outcome := outcomeOf(err)
	tr.SetOutcome(outcome)
	e.tracer.Finish(tr)
	e.met.latency[req.Problem].ObserveWithExemplar(lat.Seconds(), tr.JoinID())
	e.slo.Observe(lat, err)
	resp := Response{Gen: snap.gen, Err: err}
	e.emit(req, resp, tr, outcome, lat, e.cacheState())
	e.tracer.Release(tr)
	return resp
}

// outcomeOf classifies a request error into the wide-event outcome
// vocabulary: ok | shed | deadline | canceled | panic | partial | error.
func outcomeOf(err error) string {
	return Outcome(err)
}

// cacheState is the wide-event cache field for a request that got past
// the cache probe without a hit.
func (e *Engine) cacheState() string {
	if e.cache == nil {
		return "off"
	}
	return "miss"
}

// emit assembles and logs the request's wide event. It runs after the
// trace finishes, so the event carries the final outcome and the same
// join ID the latency exemplar published — the three telemetry views
// join on it, and a trace the tail sampler dropped contributes no ID at
// all (the join never dangles). Access-cost counters are only
// attributed to requests that actually computed (a cache hit spends
// none).
func (e *Engine) emit(req Request, resp Response, tr *obs.Trace, outcome string, lat time.Duration, cache string) {
	if e.log == nil {
		return
	}
	ev := obs.Event{
		Outcome:   outcome,
		LatencyNS: lat.Nanoseconds(),
		TraceID:   tr.JoinID(),
		Gen:       resp.Gen,
		Problem:   req.Problem.String(),
		Cache:     cache,
	}
	if tr != nil {
		ev.QueueWaitNS = int64(tr.QueueWait)
	}
	if resp.Err != nil {
		ev.Err = resp.Err.Error()
	}
	switch req.Problem {
	case Quantify:
		ev.Dim = req.Dim.String()
		ev.K = req.K
		ev.Direction = req.Direction.String()
		ev.Algo = req.Algorithm.String()
		if !resp.CacheHit {
			ev.SortedAccesses = resp.Stats.SortedAccesses
			ev.RandomAccesses = resp.Stats.RandomAccesses
			ev.Rounds = resp.Stats.Rounds
		}
	case Compare:
		ev.Dim = req.Of.String()
		ev.R1, ev.R2 = req.R1, req.R2
		ev.By = req.By.String()
		if resp.Comparison != nil && !resp.CacheHit {
			ev.CompareAccesses = resp.Comparison.Accesses
		}
	case Mitigate:
		// The generic operand fields carry the mitigation coordinates:
		// r1 = target group key, r2 = query, by = location.
		ev.Mitigator = req.Mitigator.String()
		ev.R1, ev.R2 = req.Group, req.Query
		ev.By = req.Location
		if resp.Mitigation != nil {
			ev.DeltaUnfairness = resp.Mitigation.Delta()
		}
	}
	e.log.Log(ev)
}

// countFailure classifies a request failure into the resilience
// counters. Recovered panics are counted at the recovery site, not here,
// so a panic is never double-counted.
func (e *Engine) countFailure(err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		e.met.shed.Inc()
	case errors.Is(err, ErrDeadlineExceeded):
		e.met.deadlines.Inc()
	case errors.Is(err, ErrCanceled):
		e.met.canceled.Inc()
	}
}

// requestWeight is a request's admission cost. The naive full scan reads
// every posting of every list no matter what, so it charges double —
// one slow scan should displace two Fagin-style runs, not one.
func requestWeight(req Request) int64 {
	if req.Problem == Quantify && req.Algorithm == topk.Naive {
		return 2
	}
	return 1
}

// executeSafe is execute behind a panic barrier: a panic anywhere in the
// algorithm stack is recovered into an *InternalError response carrying
// the panic value and stack, so one poisoned request cannot take down a
// batch worker or a caller's serving goroutine.
func (e *Engine) executeSafe(ctx context.Context, snap *Snapshot, req Request, tr *obs.Trace) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			e.met.panics.Inc()
			resp = Response{Gen: snap.gen, Err: &InternalError{Value: r, Stack: debug.Stack()}}
		}
	}()
	return e.execute(ctx, snap, req, tr)
}

// ValidateRequest rejects malformed requests with the same rules the
// engine applies before execution. The scatter-gather coordinator
// validates at its own front door so a bad request fails once, before
// any fan-out.
func ValidateRequest(req Request) error { return validate(req) }

// validate rejects malformed requests before they reach the algorithms.
func validate(req Request) error {
	switch req.Problem {
	case Quantify:
		if req.K <= 0 {
			return fmt.Errorf("serve: quantify needs k > 0, got %d", req.K)
		}
		switch req.Dim {
		case compare.ByGroup, compare.ByQuery, compare.ByLocation:
		default:
			return fmt.Errorf("serve: unknown quantify dimension %v", req.Dim)
		}
		if req.Candidates != nil && req.Dim != compare.ByGroup {
			return fmt.Errorf("serve: candidate restriction is only supported for the group dimension")
		}
		switch req.Direction {
		case topk.MostUnfair, topk.LeastUnfair:
		default:
			return fmt.Errorf("serve: unknown direction %v", req.Direction)
		}
		switch req.Algorithm {
		case topk.TA, topk.FA, topk.Naive, topk.NRA:
		default:
			return fmt.Errorf("serve: unknown algorithm %v", req.Algorithm)
		}
	case Compare:
		if req.R1 == "" || req.R2 == "" {
			return fmt.Errorf("serve: compare needs both r1 and r2")
		}
		switch req.Of {
		case compare.ByGroup, compare.ByQuery, compare.ByLocation:
		default:
			return fmt.Errorf("serve: unknown compare dimension %v", req.Of)
		}
		switch req.By {
		case compare.ByGroup, compare.ByQuery, compare.ByLocation:
		default:
			return fmt.Errorf("serve: unknown breakdown dimension %v", req.By)
		}
		if req.Of == req.By {
			return fmt.Errorf("serve: cannot break a %v comparison down by %v", req.Of, req.By)
		}
	case Mitigate:
		if req.Group == "" {
			return fmt.Errorf("serve: mitigate needs a target group key")
		}
		if req.Query == "" || req.Location == "" {
			return fmt.Errorf("serve: mitigate needs a query and a location")
		}
		switch req.Mitigator {
		case mitigate.FairTopK, mitigate.DetGreedy, mitigate.ExposureParity:
		default:
			return fmt.Errorf("serve: unknown mitigator %v", req.Mitigator)
		}
		if math.IsNaN(req.MinProportion) || req.MinProportion < 0 || req.MinProportion > 1 {
			return fmt.Errorf("serve: mitigate MinProportion must be in [0, 1], got %v", req.MinProportion)
		}
		if math.IsNaN(req.Alpha) || req.Alpha < 0 || req.Alpha >= 1 {
			return fmt.Errorf("serve: mitigate Alpha must be in [0, 1), got %v", req.Alpha)
		}
		if req.SwapBudget < 0 {
			return fmt.Errorf("serve: mitigate SwapBudget must be non-negative, got %d", req.SwapBudget)
		}
	default:
		return fmt.Errorf("serve: unknown problem %v", req.Problem)
	}
	return nil
}

// execute runs the request's algorithm against the snapshot; all mutable
// state lives inside the callee's per-call structs. Problem 1 runs
// through topk.TopKCtxWith with the engine as Recorder, so the
// access-cost Stats of every execution land in the per-algorithm
// histograms and a dying context stops the run at its next round
// checkpoint.
func (e *Engine) execute(ctx context.Context, snap *Snapshot, req Request, tr *obs.Trace) Response {
	resp := Response{Gen: snap.gen}
	faultinject.Inject(faultinject.PanicMeasure)
	switch req.Problem {
	case Quantify:
		tr.Annotate("algo", req.Algorithm.String())
		src := snap.source(req.Dim)
		if src == nil {
			resp.Err = fmt.Errorf("serve: snapshot has no %v lists (empty table?)", req.Dim)
			return resp
		}
		if req.Candidates != nil {
			restricted, err := topk.NewFilteredLists(src, req.Candidates)
			if err != nil {
				resp.Err = err
				return resp
			}
			src = restricted
		}
		resp.Results, resp.Stats, resp.Err = topk.TopKCtxWith(ctx, src, req.K, req.Direction, req.Algorithm, e)
	case Compare:
		// Comparisons are two-member lookups, far below deadline scale;
		// one checkpoint on entry bounds their cancellation latency.
		if err := ctx.Err(); err != nil {
			resp.Err = err
			return resp
		}
		c := snap.comparer(req.DefinedOnly)
		switch req.Of {
		case compare.ByGroup:
			resp.Comparison, resp.Err = c.Groups(req.R1, req.R2, req.By, compare.Scope{})
		case compare.ByQuery:
			resp.Comparison, resp.Err = c.Queries(core.Query(req.R1), core.Query(req.R2), req.By, compare.Scope{})
		case compare.ByLocation:
			resp.Comparison, resp.Err = c.Locations(core.Location(req.R1), core.Location(req.R2), req.By, compare.Scope{})
		}
	case Mitigate:
		// One page, one re-ranker run — far below deadline scale, like
		// Compare; one checkpoint on entry bounds cancellation latency.
		if err := ctx.Err(); err != nil {
			resp.Err = err
			return resp
		}
		return e.executeMitigate(snap, req, tr)
	}
	return resp
}
