package serve_test

import (
	"strings"
	"sync"
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/mitigate"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/testutil"
)

// The Problem 3 serving fixture: the paper's Tables 2–3 ranking (ten
// workers for "Home Cleaning" in San Francisco, scores 0.9 … 0.0) sealed
// into a snapshot with pages, targeted at the under-exposed Asian Female
// group. The golden before/after values are the package-level pins of
// internal/mitigate, re-asserted here through the full request path.
const (
	paperQuery    = "Home Cleaning"
	paperLocation = "San Francisco, CA"
	targetAF      = "ethnicity=Asian&gender=Female"
	beforeAF      = 0.07309294039141703
)

// servePaperRanking reconstructs the Tables 2–3 page (the same rows as
// experiment's paperRanking, restricted to the default schema's
// attributes).
func servePaperRanking() *core.MarketplaceRanking {
	type row struct {
		id, gender, eth string
		score           float64
	}
	rows := []row{
		{"w3", "Female", "White", 0.9}, {"w8", "Male", "Black", 0.8},
		{"w6", "Male", "Black", 0.7}, {"w2", "Male", "White", 0.6},
		{"w1", "Female", "Asian", 0.5}, {"w4", "Male", "Asian", 0.4},
		{"w7", "Female", "Black", 0.3}, {"w5", "Female", "Black", 0.2},
		{"w9", "Male", "White", 0.1}, {"w10", "Female", "White", 0.0},
	}
	r := &core.MarketplaceRanking{Query: paperQuery, Location: paperLocation}
	for i, x := range rows {
		r.Workers = append(r.Workers, core.RankedWorker{
			ID:    x.id,
			Attrs: core.Assignment{"gender": x.gender, "ethnicity": x.eth},
			Rank:  i + 1,
			Score: x.score,
		})
	}
	return r
}

// paperSnapshot seals the paper page into a mitigation-capable snapshot
// whose unfairness table is the page's own exposure evaluation — the
// exact pipeline cmd/fairjob's mitigate mode runs.
func paperSnapshot() *serve.Snapshot {
	r := servePaperRanking()
	ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureExposure, UseScores: true}
	tbl := ev.EvaluateAll([]*core.MarketplaceRanking{r}, nil)
	return serve.NewSnapshotWithRankings(tbl, nil, []*core.MarketplaceRanking{r})
}

// anchoredPagedSnapshot is anchoredSnapshot's table plus the paper page,
// so the wide-event schema gate can drive mitigate requests through the
// same engine as the Problem 1/2 battery.
func anchoredPagedSnapshot(seed uint64) *serve.Snapshot {
	rng := stats.NewRNG(seed)
	tbl := randomTable(rng, 6, 8, 8, 0.1)
	return serve.NewSnapshotWithRankings(tbl, nil, []*core.MarketplaceRanking{servePaperRanking()})
}

// servedGoldens are the pinned end-to-end outcomes per mitigator — the
// same numbers internal/mitigate pins at the package level, which is the
// point: the serving layer must add packaging, not arithmetic.
func servedGoldens() []struct {
	name  string
	req   serve.Request
	ids   []string
	after float64
} {
	base := serve.Request{Problem: serve.Mitigate, Group: targetAF, Query: paperQuery, Location: paperLocation}
	fair, greedy, exposure := base, base, base
	fair.Mitigator, fair.MinProportion, fair.Alpha = mitigate.FairTopK, 0.3, 0.25
	greedy.Mitigator = mitigate.DetGreedy
	exposure.Mitigator, exposure.SwapBudget = mitigate.ExposureParity, 10
	return []struct {
		name  string
		req   serve.Request
		ids   []string
		after float64
	}{
		{"fair", fair, []string{"w3", "w8", "w6", "w1", "w2", "w4", "w7", "w5", "w9", "w10"}, 0.05933017331766394},
		{"greedy", greedy, []string{"w3", "w8", "w2", "w1", "w7", "w6", "w4", "w5", "w9", "w10"}, 0.06108813758266332},
		{"exposure", exposure, []string{"w8", "w3", "w1", "w6", "w2", "w9", "w7", "w4", "w5", "w10"}, 0.006405063932327981},
	}
}

// TestServeMitigateGolden is the served-path acceptance test: a
// ProblemMitigate request on the Figure-5-anchored table must show
// before > after for every mitigator, reproduce the pinned permutation,
// and — the controlled-experiment property — report an After equal to an
// independent direct measurement of the permuted ranking through
// core.MarketplaceEvaluator, the code path mitigation never touches.
func TestServeMitigateGolden(t *testing.T) {
	snap := paperSnapshot()
	eng := serve.NewEngine(snap, serve.Options{})
	orig := servePaperRanking()
	af := core.NewGroup(
		core.Predicate{Attr: "ethnicity", Value: "Asian"},
		core.Predicate{Attr: "gender", Value: "Female"},
	)
	ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureExposure, UseScores: true}

	for _, g := range servedGoldens() {
		t.Run(g.name, func(t *testing.T) {
			resp := eng.Do(g.req)
			if resp.Err != nil {
				t.Fatal(resp.Err)
			}
			if resp.Gen != snap.Gen() {
				t.Fatalf("response generation %d, snapshot %d", resp.Gen, snap.Gen())
			}
			m := resp.Mitigation
			if m == nil {
				t.Fatal("mitigate response carries no Mitigation")
			}
			if m.Group != targetAF {
				t.Fatalf("mitigated group %q, want %q", m.Group, targetAF)
			}
			testutil.Approx(t, "before", m.Before, beforeAF, testutil.DefaultTol)
			testutil.Approx(t, "after", m.After, g.after, testutil.DefaultTol)
			if m.After >= m.Before {
				t.Fatalf("unfairness did not drop: before %v, after %v", m.Before, m.After)
			}
			if m.Moved <= 0 {
				t.Fatalf("Moved = %d on a permutation that changed the page", m.Moved)
			}
			if got := strings.Join(m.IDs, ","); got != strings.Join(g.ids, ",") {
				t.Fatalf("re-ranked page:\n got %s\nwant %s", got, strings.Join(g.ids, ","))
			}

			// Independent re-measurement: materialize the permuted page
			// (original scores and attributes, new ranks) and measure it
			// with the marketplace evaluator directly.
			perm := &core.MarketplaceRanking{Query: orig.Query, Location: orig.Location}
			for pos, oi := range m.Permutation {
				w := orig.Workers[oi]
				w.Rank = pos + 1
				perm.Workers = append(perm.Workers, w)
			}
			direct, ok := ev.Unfairness(perm, af)
			if !ok {
				t.Fatal("direct re-measurement undefined")
			}
			testutil.Approx(t, "served-after vs direct re-measurement", m.After, direct, 1e-12)
		})
	}
}

// TestServeMitigateCacheAndRefresh pins the caching contract for
// Problem 3: identical requests hit, a different mitigator misses, and a
// refresh bumps the generation so the same request recomputes — with the
// identical answer, since the pages ride along unchanged.
func TestServeMitigateCacheAndRefresh(t *testing.T) {
	eng := serve.NewEngine(paperSnapshot(), serve.Options{})
	req := servedGoldens()[0].req

	first := eng.Do(req)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	hit := eng.Do(req)
	if !hit.CacheHit {
		t.Fatal("identical mitigate request missed the cache")
	}
	testutil.Approx(t, "cached after", hit.Mitigation.After, first.Mitigation.After, 0)

	other := req
	other.Mitigator = mitigate.DetGreedy
	if resp := eng.Do(other); resp.Err != nil || resp.CacheHit {
		t.Fatalf("different mitigator must recompute: err=%v hit=%v", resp.Err, resp.CacheHit)
	}

	eng.Refresh(nil)
	again := eng.Do(req)
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if again.CacheHit {
		t.Fatal("request hit the cache across a generation bump")
	}
	if again.Gen <= first.Gen {
		t.Fatalf("generation did not advance: %d → %d", first.Gen, again.Gen)
	}
	testutil.Approx(t, "after across refresh", again.Mitigation.After, first.Mitigation.After, 0)
}

// TestServeMitigateErrors walks every refusal path: validation rejects
// (malformed shape) and snapshot-dependent errors (no pages, unknown
// page, untracked attribute).
func TestServeMitigateErrors(t *testing.T) {
	good := serve.Request{
		Problem: serve.Mitigate, Mitigator: mitigate.FairTopK,
		Group: targetAF, Query: paperQuery, Location: paperLocation,
	}
	mod := func(f func(*serve.Request)) serve.Request { r := good; f(&r); return r }

	cases := []struct {
		name string
		req  serve.Request
		want string
	}{
		{"empty group", mod(func(r *serve.Request) { r.Group = "" }), "target group"},
		{"empty query", mod(func(r *serve.Request) { r.Query = "" }), "query and a location"},
		{"empty location", mod(func(r *serve.Request) { r.Location = "" }), "query and a location"},
		{"unknown mitigator", mod(func(r *serve.Request) { r.Mitigator = mitigate.Kind(9) }), "unknown mitigator"},
		{"proportion out of range", mod(func(r *serve.Request) { r.MinProportion = 1.5 }), "MinProportion"},
		{"alpha out of range", mod(func(r *serve.Request) { r.Alpha = 1.0 }), "Alpha"},
		{"negative budget", mod(func(r *serve.Request) { r.SwapBudget = -1 }), "SwapBudget"},
		{"unknown page", mod(func(r *serve.Request) { r.Query = "Plumbing" }), "no page"},
		{"untracked attribute", mod(func(r *serve.Request) { r.Group = "age=Old" }), "does not track"},
		{"malformed group key", mod(func(r *serve.Request) { r.Group = "not-a-key" }), "group key"},
	}
	eng := serve.NewEngine(paperSnapshot(), serve.Options{})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := eng.Do(c.req)
			if resp.Err == nil {
				t.Fatalf("request accepted: %+v", c.req)
			}
			if !strings.Contains(resp.Err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", resp.Err, c.want)
			}
			if resp.Mitigation != nil {
				t.Fatal("failed request still carries a Mitigation")
			}
		})
	}

	// A snapshot built without pages refuses every mitigate request with
	// a pointer at the right constructor.
	bare := serve.NewEngine(serve.NewSnapshot(core.NewTable()), serve.Options{})
	if resp := bare.Do(good); resp.Err == nil || !strings.Contains(resp.Err.Error(), "NewSnapshotWithRankings") {
		t.Fatalf("pageless snapshot error = %v", resp.Err)
	}
}

// TestServeMitigateConcurrent is the mitigation gate's race-stress test:
// many goroutines issue mitigate requests across all three re-rankers
// and several target groups while refreshes publish new generations
// mid-flight. Every response must be a valid permutation of the page
// with its invariants intact; run under -race this pins that a shared
// snapshot's pages really are read-only.
func TestServeMitigateConcurrent(t *testing.T) {
	eng := serve.NewEngine(paperSnapshot(), serve.Options{Workers: 4})
	groups := []string{
		targetAF,
		"ethnicity=Black&gender=Female",
		"gender=Female",
		"ethnicity=White",
	}
	const goroutines = 8
	const rounds = 30

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := serve.Request{
					Problem:    serve.Mitigate,
					Mitigator:  mitigate.Kinds()[(g+i)%3],
					Group:      groups[(g*rounds+i)%len(groups)],
					Query:      paperQuery,
					Location:   paperLocation,
					SwapBudget: i % 5,
				}
				resp := eng.Do(req)
				if resp.Err != nil {
					errs <- resp.Err
					return
				}
				m := resp.Mitigation
				seen := make([]bool, len(m.Permutation))
				for _, oi := range m.Permutation {
					if oi < 0 || oi >= len(seen) || seen[oi] {
						errs <- errPermutation(m.Permutation)
						return
					}
					seen[oi] = true
				}
				if len(m.Permutation) != 10 || len(m.IDs) != 10 {
					errs <- errPermutation(m.Permutation)
					return
				}
				if req.Mitigator == mitigate.ExposureParity && m.After > m.Before+1e-12 {
					errs <- errExposureRegression(m.Before, m.After)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			eng.Refresh(nil)
		}
		close(done)
	}()
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type permError struct{ perm []int }

func (e permError) Error() string { return "invalid permutation in concurrent mitigate response" }

func errPermutation(perm []int) error { return permError{perm} }

type exposureError struct{ before, after float64 }

func (e exposureError) Error() string {
	return "exposure-parity made the page worse under race stress"
}

func errExposureRegression(before, after float64) error {
	return exposureError{before, after}
}
