//go:build faultinject

package serve_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/faultinject"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// The chaos suite only builds with -tags faultinject (scripts/check.sh
// runs it under -race). Each test arms failpoints from the catalog in
// internal/faultinject, drives the engine through the fault, and then
// asserts the engine converges back to correct answers once the fault
// clears. Handlers block on channels rather than sleeping, so every
// ordering the tests depend on is enforced, not raced.

// waitHits spins until the named failpoint has fired at least n times.
func waitHits(t *testing.T, name string, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for faultinject.Hits(name) < n {
		if time.Now().After(deadline) {
			t.Fatalf("failpoint %s never reached %d hits", name, n)
		}
		runtime.Gosched()
	}
}

// TestChaosSlowEvaluatorHitsDeadline blocks a top-k run at its first
// round checkpoint until the request's deadline has provably expired,
// then releases it: the run must stop at that same checkpoint with the
// typed deadline error, and the deadline counter must tick.
func TestChaosSlowEvaluatorHitsDeadline(t *testing.T) {
	defer faultinject.Reset()
	rng := stats.NewRNG(71)
	snap := serve.NewSnapshot(randomTable(rng, 5, 4, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{CacheSize: -1})

	release := make(chan struct{})
	faultinject.Set(faultinject.SlowEvaluator, func() error { <-release; return nil })

	const deadline = 10 * time.Millisecond
	done := make(chan serve.Response, 1)
	go func() {
		done <- eng.DoCtx(context.Background(), serve.Request{
			Problem: serve.Quantify, Dim: compare.ByGroup, K: 2,
			Algorithm: topk.TA, Deadline: deadline,
		})
	}()
	waitHits(t, faultinject.SlowEvaluator, 1)
	// The deadline timer started before the gate; once this sleep ends it
	// has expired for sure, so the released checkpoint must observe it.
	time.Sleep(2 * deadline)
	close(release)

	resp := <-done
	if !errors.Is(resp.Err, serve.ErrDeadlineExceeded) || !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("slow run: err = %v, want ErrDeadlineExceeded", resp.Err)
	}
	if got := eng.Registry().Counter("serve_deadline_exceeded_total").Value(); got != 1 {
		t.Fatalf("serve_deadline_exceeded_total = %d, want 1", got)
	}

	// Fault cleared: the same request completes and matches a fault-free
	// reference.
	faultinject.Clear(faultinject.SlowEvaluator)
	req := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}
	want := fingerprint(serve.NewEngine(snap, serve.Options{CacheSize: -1}).Do(req))
	if got := fingerprint(eng.Do(req)); got != want {
		t.Fatalf("after fault cleared: got %s, want %s", got, want)
	}
}

// TestChaosCancelMidQuery cancels a request while it is blocked inside
// an algorithm round: the run must return the typed cancellation error,
// and the canceled run must not report access stats (covered by the
// engine's histograms staying finished-work-only).
func TestChaosCancelMidQuery(t *testing.T) {
	defer faultinject.Reset()
	rng := stats.NewRNG(72)
	snap := serve.NewSnapshot(randomTable(rng, 5, 4, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{CacheSize: -1})

	release := make(chan struct{})
	faultinject.Set(faultinject.SlowEvaluator, func() error { <-release; return nil })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan serve.Response, 1)
	go func() {
		done <- eng.DoCtx(ctx, serve.Request{
			Problem: serve.Quantify, Dim: compare.ByQuery, K: 2, Algorithm: topk.NRA,
		})
	}()
	waitHits(t, faultinject.SlowEvaluator, 1)
	cancel()
	close(release)
	resp := <-done
	if !errors.Is(resp.Err, serve.ErrCanceled) || !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("canceled run: err = %v, want ErrCanceled", resp.Err)
	}
}

// TestChaosPanicIsolation arms the measure failpoint to panic on every
// execution: a whole batch must come back with one *InternalError per
// request — no dead workers, no lost responses — and after the fault
// clears the identical batch must produce correct answers.
func TestChaosPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	rng := stats.NewRNG(73)
	snap := serve.NewSnapshot(randomTable(rng, 6, 4, 4, 0.1))
	eng := serve.NewEngine(snap, serve.Options{Workers: 4, CacheSize: -1})
	reqs := battery(snap)

	faultinject.Set(faultinject.PanicMeasure, func() error { panic("measure exploded") })
	out := eng.DoBatch(reqs)
	if len(out) != len(reqs) {
		t.Fatalf("poisoned batch returned %d/%d responses", len(out), len(reqs))
	}
	for i, resp := range out {
		if !errors.Is(resp.Err, serve.ErrInternal) {
			t.Fatalf("response %d: err = %v, want ErrInternal", i, resp.Err)
		}
		var ie *serve.InternalError
		if !errors.As(resp.Err, &ie) || len(ie.Stack) == 0 {
			t.Fatalf("response %d: recovered panic lost its stack", i)
		}
	}
	if got := eng.Registry().Counter("serve_panics_recovered_total").Value(); got != uint64(len(reqs)) {
		t.Fatalf("serve_panics_recovered_total = %d, want %d", got, len(reqs))
	}

	faultinject.Clear(faultinject.PanicMeasure)
	ref := serve.NewEngine(snap, serve.Options{Workers: 1, CacheSize: -1})
	for i, resp := range eng.DoBatch(reqs) {
		if resp.Err != nil {
			t.Fatalf("after fault cleared, response %d: %v", i, resp.Err)
		}
		if fingerprint(resp) != fingerprint(ref.Do(reqs[i])) {
			t.Fatalf("after fault cleared, response %d diverged from reference", i)
		}
	}
}

// TestChaosOverloadServesCacheHits holds the admission gate saturated
// with a blocked slow query and checks the overload contract: cached
// answers keep flowing (the cache probe precedes the gate), fresh
// compute sheds with ErrOverloaded, and /readyz-via-Engine.Ready reports
// not-ready until the gate drains.
func TestChaosOverloadServesCacheHits(t *testing.T) {
	defer faultinject.Reset()
	rng := stats.NewRNG(74)
	snap := serve.NewSnapshot(randomTable(rng, 6, 4, 4, 0))
	eng := serve.NewEngine(snap, serve.Options{MaxInflight: 1, MaxQueue: -1})

	hot := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}
	warm := eng.Do(hot)
	if warm.Err != nil {
		t.Fatalf("warmup: %v", warm.Err)
	}

	release := make(chan struct{})
	faultinject.Set(faultinject.SlowEvaluator, func() error { <-release; return nil })
	slowDone := make(chan serve.Response, 1)
	go func() {
		slowDone <- eng.Do(serve.Request{
			Problem: serve.Quantify, Dim: compare.ByQuery, K: 3, Algorithm: topk.NRA,
		})
	}()
	waitHits(t, faultinject.SlowEvaluator, 1) // the slow query now holds the gate

	if resp := eng.Do(hot); !resp.CacheHit || resp.Err != nil {
		t.Fatalf("cached request under overload: hit=%v err=%v, want a free hit", resp.CacheHit, resp.Err)
	}
	cold := serve.Request{Problem: serve.Quantify, Dim: compare.ByLocation, K: 1, Algorithm: topk.FA}
	if resp := eng.Do(cold); !errors.Is(resp.Err, serve.ErrOverloaded) {
		t.Fatalf("fresh compute under overload: err = %v, want ErrOverloaded", resp.Err)
	}
	if err := eng.Ready(); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("Ready under overload = %v, want ErrOverloaded", err)
	}
	if got := eng.Registry().Counter("serve_shed_total").Value(); got != 1 {
		t.Fatalf("serve_shed_total = %d, want 1", got)
	}

	close(release)
	if resp := <-slowDone; resp.Err != nil {
		t.Fatalf("slow query after release: %v", resp.Err)
	}
	if err := eng.Ready(); err != nil {
		t.Fatalf("Ready after drain = %v, want nil", err)
	}
	if resp := eng.Do(cold); resp.Err != nil {
		t.Fatalf("cold request after drain: %v", resp.Err)
	}
}

// TestChaosQueueDelayObservesCancellation parks a request between its
// cache probe and the admission gate, cancels it there, and checks it is
// refused with the typed error without ever reaching the algorithms.
func TestChaosQueueDelayObservesCancellation(t *testing.T) {
	defer faultinject.Reset()
	rng := stats.NewRNG(75)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{CacheSize: -1, MaxInflight: 2})

	release := make(chan struct{})
	faultinject.Set(faultinject.QueueDelay, func() error { <-release; return nil })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan serve.Response, 1)
	go func() {
		done <- eng.DoCtx(ctx, serve.Request{
			Problem: serve.Quantify, Dim: compare.ByGroup, K: 1, Algorithm: topk.TA,
		})
	}()
	waitHits(t, faultinject.QueueDelay, 1)
	cancel()
	close(release)
	resp := <-done
	if !errors.Is(resp.Err, serve.ErrCanceled) {
		t.Fatalf("queue-delayed request: err = %v, want ErrCanceled", resp.Err)
	}
	if hits := faultinject.Hits(faultinject.SlowEvaluator); hits != 0 {
		t.Fatalf("canceled request still reached the algorithms (%d round checkpoints)", hits)
	}
}

// TestChaosRefreshFailRetriesThenRecovers fails the first two snapshot
// builds: the retry policy absorbs them without real sleeps, the retry
// counter ticks, and the published snapshot carries the update.
func TestChaosRefreshFailRetriesThenRecovers(t *testing.T) {
	defer faultinject.Reset()
	rng := stats.NewRNG(76)
	snap := serve.NewSnapshot(randomTable(rng, 4, 3, 3, 0))
	eng := serve.NewEngine(snap, serve.Options{
		CacheSize: -1,
		Retry:     serve.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	})

	var fails atomic.Int64
	faultinject.Set(faultinject.RefreshFail, func() error {
		if fails.Add(1) <= 2 {
			return fmt.Errorf("store unavailable (injected %d)", fails.Load())
		}
		return nil
	})
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	next, err := eng.RefreshCtx(context.Background(), func(tbl *core.Table) {
		tbl.Set(g, "q00", "l00", 0.25)
	})
	if err != nil {
		t.Fatalf("RefreshCtx: %v", err)
	}
	if next.Gen() <= snap.Gen() {
		t.Fatalf("refresh did not advance the generation: %d -> %d", snap.Gen(), next.Gen())
	}
	if got := eng.Registry().Counter("refresh_retries_total").Value(); got != 2 {
		t.Fatalf("refresh_retries_total = %d, want 2", got)
	}
	if got := faultinject.Hits(faultinject.RefreshFail); got != 3 {
		t.Fatalf("RefreshFail hits = %d, want 3 (two failures + the success probe)", got)
	}
}

// TestChaosConvergenceAfterFaultsClear is the end-to-end recovery drill:
// every failpoint in the catalog is armed at once over a gated,
// cache-churning engine while batches and refreshes run; after Reset the
// engine must serve exactly the answers a fault-free engine gives for
// the same snapshot — including a refreshed anchor group whose cells all
// carry 0.94, the Figure 5 worked exposure value, so recovery is checked
// against a paper-anchored table, not just random data.
func TestChaosConvergenceAfterFaultsClear(t *testing.T) {
	defer faultinject.Reset()
	rounds := 5
	if testing.Short() {
		rounds = 2
	}
	rng := stats.NewRNG(77)
	snap := serve.NewSnapshot(randomTable(rng, 6, 4, 4, 0.1))
	eng := serve.NewEngine(snap, serve.Options{
		Workers:     4,
		CacheSize:   4, // constant eviction churn across the battery
		MaxInflight: 2,
		MaxQueue:    2,
		Retry:       serve.RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}},
	})
	reqs := battery(snap)

	var slowHits, panicHits, refreshHits, delayHits atomic.Int64
	faultinject.Set(faultinject.SlowEvaluator, func() error {
		if slowHits.Add(1)%64 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	})
	faultinject.Set(faultinject.PanicMeasure, func() error {
		if panicHits.Add(1)%3 == 0 {
			panic("injected measure crash")
		}
		return nil
	})
	faultinject.Set(faultinject.RefreshFail, func() error {
		if refreshHits.Add(1)%2 == 1 {
			return errors.New("injected refresh failure")
		}
		return nil
	})
	faultinject.Set(faultinject.QueueDelay, func() error {
		if delayHits.Add(1)%5 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	})

	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	for round := 0; round < rounds; round++ {
		// Chaos phase: failures are expected, but only typed ones, and
		// never a lost response.
		out := eng.DoBatch(reqs)
		if len(out) != len(reqs) {
			t.Fatalf("round %d: %d/%d responses", round, len(out), len(reqs))
		}
		for i, resp := range out {
			if resp.Err == nil {
				continue
			}
			switch {
			case errors.Is(resp.Err, serve.ErrInternal),
				errors.Is(resp.Err, serve.ErrOverloaded),
				errors.Is(resp.Err, serve.ErrDeadlineExceeded),
				errors.Is(resp.Err, serve.ErrCanceled):
			default:
				t.Fatalf("round %d response %d: untyped failure %v", round, i, resp.Err)
			}
		}
		if _, err := eng.RefreshCtx(context.Background(), func(tbl *core.Table) {
			tbl.Set(g, "q00", "l00", float64(round)/10)
		}); err != nil {
			t.Fatalf("round %d refresh never recovered: %v", round, err)
		}
	}
	for _, fp := range []string{
		faultinject.SlowEvaluator, faultinject.PanicMeasure,
		faultinject.RefreshFail, faultinject.QueueDelay,
	} {
		if faultinject.Hits(fp) == 0 {
			t.Fatalf("failpoint %s never fired during the chaos phase", fp)
		}
	}

	// Faults clear; pin the anchor table: the g00 row holds the paper's
	// Figure 5 worked exposure value everywhere.
	faultinject.Reset()
	anchored, err := eng.RefreshCtx(context.Background(), func(tbl *core.Table) {
		for _, q := range tbl.Queries() {
			for _, l := range tbl.Locations() {
				tbl.Set(g, q, l, 0.94)
			}
		}
	})
	if err != nil {
		t.Fatalf("anchor refresh after reset: %v", err)
	}

	ref := serve.NewEngine(anchored, serve.Options{Workers: 1, CacheSize: -1})
	for i, resp := range eng.DoBatch(reqs) {
		if resp.Err != nil {
			t.Fatalf("converged engine still failing request %d: %v", i, resp.Err)
		}
		if resp.Gen != anchored.Gen() {
			t.Fatalf("request %d served from stale generation %d", i, resp.Gen)
		}
		if fingerprint(resp) != fingerprint(ref.Do(reqs[i])) {
			t.Fatalf("request %d diverged from the fault-free reference after recovery", i)
		}
	}
	if err := eng.Ready(); err != nil {
		t.Fatalf("Ready after convergence = %v, want nil", err)
	}
}
