package serve_test

import (
	"testing"
	"time"

	"fairjob/internal/cluster"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
)

// benchWorkload builds the serving benchmark's toy-experiment fixture: a
// table at the TaskRabbit case-study scale (11 groups × 48 queries × 10
// locations) and a 256-request mixed workload drawn from 32 distinct
// query shapes, each repeated 8× and deterministically shuffled — the
// "heavy traffic" regime where many users ask overlapping fairness
// questions.
func benchWorkload() (*serve.Snapshot, []serve.Request) {
	rng := stats.NewRNG(4242)
	snap := serve.NewSnapshot(randomTable(rng, 11, 48, 10, 0.1))
	distinct := battery(snap)
	if len(distinct) > 32 {
		distinct = distinct[:32]
	}
	reqs := make([]serve.Request, 0, len(distinct)*8)
	for rep := 0; rep < 8; rep++ {
		for i := range distinct {
			reqs = append(reqs, distinct[(i+rep*5)%len(distinct)])
		}
	}
	return snap, reqs
}

// BenchmarkServeConcurrent measures end-to-end query throughput on the
// toy-experiment table. "sequential" is the baseline the acceptance
// criterion compares against: a plain single-worker query loop with no
// result cache, i.e. what callers did before the serve layer existed.
// The engine variants use the batch API with the LRU cache enabled; each
// iteration starts a fresh engine, so every distinct request shape pays
// its miss before repeats hit. queries/s is reported as a custom metric.
func BenchmarkServeConcurrent(b *testing.B) {
	snap, reqs := benchWorkload()

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := serve.NewEngine(snap, serve.Options{Workers: 1, CacheSize: -1})
			for _, r := range reqs {
				if resp := eng.Do(r); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("engine-w", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := serve.NewEngine(snap, serve.Options{Workers: workers})
				for _, resp := range eng.DoBatch(reqs) {
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
			b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkServeInstrumented measures the telemetry layer's overhead on
// the batch serving path at the engine-w4 configuration. "off" is the
// default engine — metrics land in its private registry (metric
// recording is always on; it is what CacheStats reads), with tracing
// disabled. "on" adds the full opt-in surface: a caller-shared registry
// plus a per-query trace ring at DefaultTraceCapacity. The acceptance
// budget for on-vs-off is < 5% (bench.sh computes the delta into the
// BENCH JSON).
func BenchmarkServeInstrumented(b *testing.B) {
	snap, reqs := benchWorkload()
	run := func(b *testing.B, opts func() serve.Options) {
		for i := 0; i < b.N; i++ {
			eng := serve.NewEngine(snap, opts())
			for _, resp := range eng.DoBatch(reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("off", func(b *testing.B) {
		run(b, func() serve.Options { return serve.Options{Workers: 4} })
	})
	b.Run("on", func(b *testing.B) {
		// One process-lifetime registry and tracer shared across engine
		// generations, as cmd/fairjob wires it — so the pair prices the
		// per-query telemetry cost, not reconstruction of process-scoped
		// observability state every batch.
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(obs.DefaultTraceCapacity)
		run(b, func() serve.Options {
			return serve.Options{Workers: 4, Obs: reg, Tracer: tracer}
		})
	})
}

// BenchmarkServeResilient measures the resilience layer's overhead on
// the batch serving path at the engine-w4 configuration. "off" is the
// default engine: no deadline, no admission gate — the context plumbing
// and algorithm checkpoints are still compiled in, so this pair prices
// the *enabled* machinery, not the plumbing. "on" turns the full
// resilience surface on: a generous per-request deadline (so every
// request pays context.WithTimeout plus the round checkpoints against a
// live Done channel) and an admission gate wide enough to admit the
// workload without shedding (so every compute request pays one
// acquire/release). The acceptance budget for on-vs-off is < 5%
// (bench.sh computes the delta into the BENCH JSON).
func BenchmarkServeResilient(b *testing.B) {
	snap, reqs := benchWorkload()
	run := func(b *testing.B, opts serve.Options) {
		for i := 0; i < b.N; i++ {
			eng := serve.NewEngine(snap, opts)
			for _, resp := range eng.DoBatch(reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("off", func(b *testing.B) {
		run(b, serve.Options{Workers: 4})
	})
	b.Run("on", func(b *testing.B) {
		run(b, serve.Options{
			Workers:         4,
			DefaultDeadline: time.Minute,
			MaxInflight:     64,
		})
	})
}

// BenchmarkServeLogging measures the wide-event logging layer's overhead
// on the batch serving path at the engine-w4 configuration. "off" is the
// instrumented engine without a logger (the nil-logger branch). "on"
// wires the full observability-v2 surface as cmd/fairjob does: a
// wide-event logger at 1-in-128 success sampling into a ring sink, a
// tail-sampled tracer keeping 1-in-128 fast-OK traces, and an SLO
// monitor observing every request. The acceptance budget for on-vs-off
// is < 5% (bench.sh computes the delta into the BENCH JSON).
func BenchmarkServeLogging(b *testing.B) {
	snap, reqs := benchWorkload()
	run := func(b *testing.B, opts func() serve.Options) {
		for i := 0; i < b.N; i++ {
			eng := serve.NewEngine(snap, opts())
			for _, resp := range eng.DoBatch(reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("off", func(b *testing.B) {
		// Process-lifetime observability state lives outside the loop in
		// both variants (see BenchmarkServeInstrumented).
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(obs.DefaultTraceCapacity)
		run(b, func() serve.Options {
			return serve.Options{Workers: 4, Obs: reg, Tracer: tracer}
		})
	})
	b.Run("on", func(b *testing.B) {
		reg := obs.NewRegistry()
		tracer := obs.NewTracerTailSampled(obs.DefaultTraceCapacity, obs.TailSamplingPolicy{
			SlowThreshold: 50 * time.Millisecond,
			KeepOneInN:    128,
		})
		log := obs.NewLogger(obs.LoggerOptions{Component: "serve", SampleN: 128})
		slo := obs.NewSLOMonitor([]obs.Objective{
			{Name: "latency", Target: 0.99, LatencyBound: 50 * time.Millisecond},
			{Name: "errors", Target: 0.999},
		}, obs.SLOOptions{})
		run(b, func() serve.Options {
			return serve.Options{Workers: 4, Obs: reg, Tracer: tracer, Log: log, SLO: slo}
		})
	})
}

// BenchmarkServeProfiled measures the continuous profiler's overhead on
// the batch serving path at the engine-w4 configuration. The pprof
// request labels are attached unconditionally (they only cost when a
// CPU profile is actually consuming them), so this pair prices the
// *capture*: "off" is the instrumented engine with no profiler; "on"
// serves the identical workload while a Profiler captures rounds on a
// 1s/100ms cadence — the same ~10% CPU-sampling duty cycle as the
// production 60s/5s default, compressed so several full rounds (CPU
// window, snapshot writes, forced-GC heap delta) land inside each bench
// invocation. The acceptance budget for on-vs-off is < 5% (bench.sh
// computes the delta into the BENCH JSON; check.sh gates on it).
func BenchmarkServeProfiled(b *testing.B) {
	snap, reqs := benchWorkload()
	run := func(b *testing.B, reg *obs.Registry) {
		for i := 0; i < b.N; i++ {
			eng := serve.NewEngine(snap, serve.Options{Workers: 4, Obs: reg})
			for _, resp := range eng.DoBatch(reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("off", func(b *testing.B) {
		run(b, obs.NewRegistry())
	})
	b.Run("on", func(b *testing.B) {
		reg := obs.NewRegistry()
		prof := obs.NewProfiler(obs.ProfilerOptions{
			Registry:    reg,
			Interval:    time.Second,
			CPUDuration: 100 * time.Millisecond,
			Ring:        2,
		})
		prof.Start()
		defer prof.Stop()
		run(b, reg)
	})
}

// BenchmarkScatterGather measures the scatter-gather coordinator's tax
// over direct engine serving. "off" is a plain single-worker engine
// with the result cache disabled, so every request pays real compute.
// "on" serves the identical request battery through a one-partition
// cluster.Coordinator (node caches also disabled): the fan-out geometry
// is degenerate, so the pair prices exactly the distributed-serving
// machinery — generation pinning, the simulated-RPC transport hop, leg
// budgets, hedge timers and the reply merge — and none of the actual
// partitioning. Both variants are constructed once outside the loop:
// coordinator construction rebuilds per-node snapshots, which is a
// refresh cost, not a per-request one. The acceptance budget for
// on-vs-off is < 5% (bench.sh computes the delta into the BENCH JSON;
// check.sh gates on it).
func BenchmarkScatterGather(b *testing.B) {
	rng := stats.NewRNG(4242)
	tbl := randomTable(rng, 11, 48, 10, 0.1)
	snap := serve.NewSnapshot(tbl)
	reqs := battery(snap)
	run := func(b *testing.B, do func(serve.Request) serve.Response) {
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if resp := do(r); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("off", func(b *testing.B) {
		eng := serve.NewEngine(snap, serve.Options{Workers: 1, CacheSize: -1})
		b.ResetTimer()
		run(b, eng.Do)
	})
	b.Run("on", func(b *testing.B) {
		coord := cluster.New(tbl, cluster.Options{Partitions: 1, NodeCacheSize: -1})
		b.ResetTimer()
		run(b, coord.Do)
	})
}

// BenchmarkSpanTracing measures the per-request cost of distributed
// tracing on the scatter-gather path. Both variants serve the identical
// battery through a one-partition coordinator (node caches disabled);
// "on" additionally wires a Tracer, so every request pays the pooled
// trace checkout, the per-leg child-span tree (scatter attempt, leg
// spans, scan-stream summaries, the engine join), the ring retention
// copy and tail-sampling decision. The delta over "off" prices exactly
// the span machinery — allocation-free by design (sync.Pool traces,
// inline child arrays) — and the acceptance budget is < 5% (bench.sh
// records it as span_tracing_overhead; check.sh gates on it).
func BenchmarkSpanTracing(b *testing.B) {
	rng := stats.NewRNG(4242)
	tbl := randomTable(rng, 11, 48, 10, 0.1)
	snap := serve.NewSnapshot(tbl)
	reqs := battery(snap)
	run := func(b *testing.B, do func(serve.Request) serve.Response) {
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if resp := do(r); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("off", func(b *testing.B) {
		coord := cluster.New(tbl, cluster.Options{Partitions: 1, NodeCacheSize: -1})
		b.ResetTimer()
		run(b, coord.Do)
	})
	b.Run("on", func(b *testing.B) {
		coord := cluster.New(tbl, cluster.Options{
			Partitions:    1,
			NodeCacheSize: -1,
			Tracer:        obs.NewTracer(obs.DefaultTraceCapacity),
		})
		b.ResetTimer()
		run(b, coord.Do)
	})
}

// BenchmarkMitigate measures one Problem 3 request end to end — measure,
// re-rank, re-measure on the paper's ten-worker page — per mitigator,
// with the cache disabled so every iteration pays the full pipeline.
func BenchmarkMitigate(b *testing.B) {
	snap := paperSnapshot()
	for _, g := range servedGoldens() {
		b.Run(g.name, func(b *testing.B) {
			eng := serve.NewEngine(snap, serve.Options{CacheSize: -1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if resp := eng.Do(g.req); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		})
	}
}

// BenchmarkServeSnapshotBuild measures the cost of freezing a table into
// a snapshot (clone + three index builds), the price of one
// copy-on-write refresh.
func BenchmarkServeSnapshotBuild(b *testing.B) {
	rng := stats.NewRNG(4242)
	tbl := randomTable(rng, 11, 48, 10, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve.NewSnapshot(tbl)
	}
}

// BenchmarkServeCacheHit isolates the steady-state cost of a cached
// query — the fast path heavy traffic actually exercises.
func BenchmarkServeCacheHit(b *testing.B) {
	snap, reqs := benchWorkload()
	eng := serve.NewEngine(snap, serve.Options{})
	req := reqs[0]
	eng.Do(req) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := eng.Do(req); !resp.CacheHit {
			b.Fatal("expected steady-state cache hits")
		}
	}
}

func benchName(prefix string, n int) string {
	return prefix + string(rune('0'+n))
}
