package serve_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/mitigate"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// anchoredSnapshot builds the Figure-5-anchored table the chaos tests
// also use: random data plus an anchor group whose every cell carries
// 0.94, the paper's worked exposure value for the female cohort.
func anchoredSnapshot(seed uint64) *serve.Snapshot {
	rng := stats.NewRNG(seed)
	tbl := randomTable(rng, 6, 8, 8, 0.1)
	g := core.NewGroup(core.Predicate{Attr: "cohort", Value: "g00"})
	for q := 0; q < 8; q++ {
		for l := 0; l < 8; l++ {
			tbl.Set(g, core.Query(fmt.Sprintf("q%02d", q)), core.Location(fmt.Sprintf("l%02d", l)), 0.94)
		}
	}
	return serve.NewSnapshot(tbl)
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDeadlineTraceableEndToEnd is the PR's headline acceptance path: a
// deadline-exceeded request on the Figure-5-anchored table must be
// traceable across all three telemetry views — the serve latency
// histogram's exemplar on /metrics, the tail-sampled trace retained in
// /debug/traces, and the wide event — all joined by one trace ID.
func TestDeadlineTraceableEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracerTailSampled(64, obs.TailSamplingPolicy{
		SlowThreshold: time.Hour, // nothing here is "slow"; retention is outcome-driven
		KeepOneInN:    1 << 40,   // drop essentially every fast-OK trace
	})
	logger := obs.NewLogger(obs.LoggerOptions{Component: "serve", SampleN: 1 << 40})
	eng := serve.NewEngine(anchoredSnapshot(61), serve.Options{
		Obs:       reg,
		Tracer:    tracer,
		Log:       logger,
		CacheSize: -1, // every request computes, so the deadline path is exercised for real
	})

	// A flood of fast successes: the tail sampler must not let these
	// evict the one interesting trace, and the logger must sample them
	// down to (at most) the first.
	okReq := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}
	for i := 0; i < 50; i++ {
		if resp := eng.Do(okReq); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	// The interesting request, issued last: top-k over the anchored
	// group dimension under an unmeetable deadline.
	resp := eng.Do(serve.Request{
		Problem:   serve.Quantify,
		Dim:       compare.ByGroup,
		K:         3,
		Algorithm: topk.TA,
		Deadline:  time.Nanosecond,
	})
	if !errors.Is(resp.Err, serve.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", resp.Err)
	}

	// View 1: the wide event. Failures are never sampled out, so it must
	// be present with the full request shape.
	var ev *obs.Event
	for _, e := range logger.Ring().Recent() {
		if e.Outcome == "deadline" {
			ev = e
			break
		}
	}
	if ev == nil {
		t.Fatalf("no deadline wide event in the ring (have %d events)", len(logger.Ring().Recent()))
	}
	if ev.TraceID == 0 {
		t.Fatal("deadline event carries no trace ID — the join key is missing")
	}
	if ev.Problem != "quantify" || ev.Dim != compare.ByGroup.String() || ev.K != 3 || ev.Algo != "TA" {
		t.Fatalf("event lost the request's identifying fields: %+v", ev)
	}
	if ev.Level != "warn" || ev.Err == "" || ev.Gen != eng.Snapshot().Gen() {
		t.Fatalf("event metadata wrong: %+v", ev)
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateEventJSON(raw); err != nil {
		t.Fatalf("deadline event fails its own schema: %v", err)
	}

	srv := httptest.NewServer(obs.NewHandler(obs.AdminOptions{Registry: reg, Tracer: tracer}))
	defer srv.Close()

	// View 2: /debug/traces — the tail sampler kept the deadline trace
	// through the flood, and the ?outcome=error filter finds it.
	code, body := getBody(t, srv.URL+"/debug/traces?outcome=error")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	var dump struct {
		Traces []*obs.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	var trace *obs.Trace
	for _, tr := range dump.Traces {
		if tr.ID == ev.TraceID {
			trace = tr
			break
		}
	}
	if trace == nil {
		t.Fatalf("trace %d not retained by the tail sampler (kept %d error traces)", ev.TraceID, len(dump.Traces))
	}
	if trace.Outcome != "deadline" || trace.Gen != ev.Gen {
		t.Fatalf("trace disagrees with the event: %+v", trace)
	}

	// View 3: /metrics — a serve latency bucket carries the trace ID as
	// its exemplar (the request was issued last, so its bucket's
	// most-recent exemplar is this trace). Exemplars are an OpenMetrics
	// construct, so the scrape negotiates that format; the classic 0.0.4
	// rendering must stay exemplar-free.
	mreq, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	mreq.Header.Set("Accept", "application/openmetrics-text")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	rawMetrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	code, metrics := mresp.StatusCode, string(rawMetrics)
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	needle := fmt.Sprintf(`trace_id="%d"`, ev.TraceID)
	found := false
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `serve_request_seconds_bucket{problem="quantify"`) && strings.Contains(line, needle) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no serve_request_seconds bucket carries exemplar %s", needle)
	}

	// The default 0.0.4 scrape carries no exemplars at all — a classic
	// Prometheus parser would reject the whole scrape otherwise.
	code, plain := getBody(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics (0.0.4) = %d", code)
	}
	if strings.Contains(plain, " # ") {
		t.Fatal("0.0.4 /metrics body carries an exemplar suffix")
	}
}

// TestDroppedTraceLeavesNoDanglingJoin pins the other half of the join
// contract: a fast-OK trace the tail sampler drops must contribute no
// trace ID anywhere — not to the latency histogram's exemplars and not
// to its wide event — because that ID would resolve to nothing in
// /debug/traces.
func TestDroppedTraceLeavesNoDanglingJoin(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracerTailSampled(16, obs.TailSamplingPolicy{
		SlowThreshold: time.Hour,
		KeepOneInN:    1 << 40, // keep the first fast-OK trace, drop the rest
	})
	logger := obs.NewLogger(obs.LoggerOptions{Component: "serve"})
	eng := serve.NewEngine(anchoredSnapshot(67), serve.Options{
		Obs:       reg,
		Tracer:    tracer,
		Log:       logger,
		CacheSize: -1,
	})

	okReq := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}
	for i := 0; i < 4; i++ {
		if resp := eng.Do(okReq); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	retained := map[uint64]bool{}
	for _, tr := range tracer.Recent() {
		retained[tr.ID] = true
	}
	if len(retained) != 1 {
		t.Fatalf("sampler retained %d traces, want 1", len(retained))
	}

	// Wide events: the retained request carries its trace ID, the dropped
	// ones carry none.
	withID := 0
	for _, ev := range logger.Ring().Recent() {
		if ev.TraceID == 0 {
			continue
		}
		withID++
		if !retained[ev.TraceID] {
			t.Fatalf("event trace_id %d does not resolve in the trace ring", ev.TraceID)
		}
	}
	if withID != 1 {
		t.Fatalf("%d events carry a trace ID, want exactly the retained one", withID)
	}

	// Exemplars: every published trace ID must resolve in the ring.
	s := reg.Snapshot()
	for name, h := range s.Histograms {
		for i, ex := range h.Exemplars {
			if ex != nil && !retained[ex.TraceID] {
				t.Fatalf("%s bucket %d exemplar trace %d does not resolve in the trace ring", name, i, ex.TraceID)
			}
		}
		if ex := h.MaxExemplar; ex != nil && !retained[ex.TraceID] {
			t.Fatalf("%s max exemplar trace %d does not resolve in the trace ring", name, ex.TraceID)
		}
	}
}

// fakeClock mirrors the obs package's test clock: injected time so the
// SLO windows slide without sleeping.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// TestSLOBurnFlipsReadiness is the second acceptance path: a synthetic
// error burst flips /debug/slo to burning and /readyz to 503 under an
// injected clock, and readiness recovers once the windows slide past the
// burst — without a restart and without new traffic.
func TestSLOBurnFlipsReadiness(t *testing.T) {
	clock := &fakeClock{now: time.Date(2026, 2, 3, 12, 0, 0, 0, time.UTC)}
	slo := obs.NewSLOMonitor([]obs.Objective{
		{Name: "errors", Target: 0.99},
	}, obs.SLOOptions{Clock: clock.Now})
	reg := obs.NewRegistry()
	eng := serve.NewEngine(anchoredSnapshot(62), serve.Options{
		Obs:       reg,
		SLO:       slo,
		CacheSize: -1,
	})
	srv := httptest.NewServer(obs.NewHandler(obs.AdminOptions{
		Registry: reg,
		Health:   &obs.Health{Ready: eng.Ready},
		SLO:      slo,
	}))
	defer srv.Close()

	if err := eng.Ready(); err != nil {
		t.Fatalf("engine not ready before the burst: %v", err)
	}
	if code, _ := getBody(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d before the burst", code)
	}

	// The burst: every request errors (the candidate restriction keeps no
	// members), sustained across 70 minutes of injected time so the fast
	// alert's 5m AND 1h windows both burn far past 14.4×.
	bad := serve.Request{
		Problem:    serve.Quantify,
		Dim:        compare.ByGroup,
		K:          2,
		Algorithm:  topk.TA,
		Candidates: []string{"cohort=nonexistent"},
	}
	for minute := 0; minute < 70; minute++ {
		for i := 0; i < 5; i++ {
			if resp := eng.Do(bad); resp.Err == nil {
				t.Fatal("burst request unexpectedly succeeded")
			}
		}
		clock.advance(time.Minute)
	}

	err := eng.Ready()
	if err == nil {
		t.Fatal("sustained burn did not flip Engine.Ready")
	}
	if !errors.Is(err, obs.ErrSLOBurning) {
		t.Fatalf("Ready() = %v, want ErrSLOBurning", err)
	}
	code, body := getBody(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d mid-burn, want 503 (%s)", code, body)
	}
	if !strings.Contains(body, "burning") {
		t.Fatalf("/readyz body does not explain the burn: %q", body)
	}
	code, body = getBody(t, srv.URL+"/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo = %d", code)
	}
	var st obs.SLOStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Burning {
		t.Fatal("/debug/slo does not report burning mid-burst")
	}

	// The burst ends; sliding the clock past the longest window clears
	// the alerts and readiness recovers.
	clock.advance(7 * time.Hour)
	if err := eng.Ready(); err != nil {
		t.Fatalf("Ready() after the windows slid: %v", err)
	}
	if code, _ := getBody(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz did not recover: %d", code)
	}
}

// TestWideEventSchemaGate is the observability gate's schema check: it
// drives the full battery workload plus every refusal path through a
// logging engine and validates each emitted event against EventSchema —
// no unknown fields, no missing required fields.
func TestWideEventSchemaGate(t *testing.T) {
	ring := obs.NewRingSink(4096)
	logger := obs.NewLogger(obs.LoggerOptions{Component: "serve", Sink: ring})
	snap := anchoredPagedSnapshot(63)
	eng := serve.NewEngine(snap, serve.Options{
		Workers: 4,
		Obs:     obs.NewRegistry(),
		Tracer:  obs.NewTracer(64),
		Log:     logger,
	})
	reqs := battery(snap)
	// Problem 3 rides the same engine: every mitigator's success path,
	// a snapshot-dependent failure (unknown page) and a validation
	// reject, so the mitigate-specific event fields pass the schema on
	// every outcome.
	for _, kind := range mitigate.Kinds() {
		reqs = append(reqs, serve.Request{
			Problem: serve.Mitigate, Mitigator: kind,
			Group: "ethnicity=Asian&gender=Female",
			Query: "Home Cleaning", Location: "San Francisco, CA",
		})
	}
	reqs = append(reqs,
		serve.Request{Problem: serve.Mitigate, Mitigator: mitigate.DetGreedy, Group: "ethnicity=Asian&gender=Female", Query: "no-such-page", Location: "nowhere"},
		serve.Request{Problem: serve.Mitigate, Mitigator: mitigate.Kind(9), Group: "ethnicity=Asian&gender=Female", Query: "Home Cleaning", Location: "San Francisco, CA"},
	)
	// Refusal and reject paths ride along: a validation reject, a dead
	// deadline, and a repeated request for a cache hit.
	reqs = append(reqs,
		serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 0, Algorithm: topk.TA},
		serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA, Deadline: time.Nanosecond},
		reqs[0],
	)
	eng.DoBatch(reqs)

	events := ring.Recent()
	if len(events) != len(reqs) {
		t.Fatalf("emitted %d events for %d requests", len(events), len(reqs))
	}
	for _, e := range events {
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateEventJSON(raw); err != nil {
			t.Fatalf("event fails the schema: %v\n%s", err, raw)
		}
	}
}

// TestWideEventOutcomePaths pins the per-path event semantics: cache
// hits carry cache=hit and no access costs, validation rejects carry no
// cache field, sheds carry outcome=shed, and computed answers carry
// their access-cost counters.
func TestWideEventOutcomePaths(t *testing.T) {
	logger := obs.NewLogger(obs.LoggerOptions{})
	snap := anchoredSnapshot(64)
	eng := serve.NewEngine(snap, serve.Options{Log: logger})

	quant := serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}
	if resp := eng.Do(quant); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := eng.Do(quant); !resp.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	gks := snap.GroupKeys()
	cmp := serve.Request{Problem: serve.Compare, Of: compare.ByGroup, R1: gks[0], R2: gks[1], By: compare.ByQuery}
	if resp := eng.Do(cmp); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	eng.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: -1, Algorithm: topk.TA})

	events := logger.Ring().Recent() // newest first
	if len(events) != 4 {
		t.Fatalf("emitted %d events, want 4", len(events))
	}
	reject, compared, hit, miss := events[0], events[1], events[2], events[3]

	if miss.Cache != "miss" || miss.Outcome != "ok" || miss.SortedAccesses == 0 {
		t.Fatalf("computed quantify event wrong: %+v", miss)
	}
	if miss.QueueWaitNS != 0 {
		t.Fatalf("direct Do carried a queue wait: %+v", miss)
	}
	if hit.Cache != "hit" || hit.Outcome != "ok" {
		t.Fatalf("cache-hit event wrong: %+v", hit)
	}
	if hit.SortedAccesses != 0 || hit.RandomAccesses != 0 || hit.Rounds != 0 {
		t.Fatalf("cache hit spent no accesses but reported some: %+v", hit)
	}
	if compared.Problem != "compare" || compared.R1 != gks[0] || compared.R2 != gks[1] || compared.By != compare.ByQuery.String() {
		t.Fatalf("compare event lost its operands: %+v", compared)
	}
	if compared.CompareAccesses == 0 {
		t.Fatalf("compare event lost its access count: %+v", compared)
	}
	if reject.Outcome != "error" || reject.Level != "error" || reject.Cache != "" || reject.Err == "" {
		t.Fatalf("validation-reject event wrong: %+v", reject)
	}

	// Shed path: a drain-mode engine (negative MaxInflight) sheds every
	// compute request.
	shedLogger := obs.NewLogger(obs.LoggerOptions{})
	drain := serve.NewEngine(snap, serve.Options{Log: shedLogger, MaxInflight: -1, CacheSize: -1})
	if resp := drain.Do(quant); !errors.Is(resp.Err, serve.ErrOverloaded) {
		t.Fatalf("drain engine served a compute request: %v", resp.Err)
	}
	shed := shedLogger.Ring().Recent()[0]
	if shed.Outcome != "shed" || shed.Level != "warn" || shed.Cache != "off" {
		t.Fatalf("shed event wrong: %+v", shed)
	}
}

// TestBatchEventsCarryQueueWait pins the DoBatch hand-off: batch events
// carry the queue wait their trace recorded.
func TestBatchEventsCarryQueueWait(t *testing.T) {
	logger := obs.NewLogger(obs.LoggerOptions{})
	snap := anchoredSnapshot(65)
	eng := serve.NewEngine(snap, serve.Options{
		Workers: 2,
		Tracer:  obs.NewTracer(16),
		Log:     logger,
		Obs:     obs.NewRegistry(),
	})
	reqs := make([]serve.Request, 8)
	for i := range reqs {
		reqs[i] = serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 1 + i%3, Algorithm: topk.TA}
	}
	for _, resp := range eng.DoBatch(reqs) {
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	events := logger.Ring().Recent()
	if len(events) != len(reqs) {
		t.Fatalf("emitted %d events for %d requests", len(events), len(reqs))
	}
	for _, e := range events {
		if e.TraceID == 0 {
			t.Fatalf("batch event lost its trace ID: %+v", e)
		}
	}
}

// TestLoggingPreservesTelemetryInvariants re-checks the pinned PR-3
// invariants with logging and SLO wired in: validation rejects still get
// no latency sample and no request count, and every refusal lands
// exactly one.
func TestLoggingPreservesTelemetryInvariants(t *testing.T) {
	clock := &fakeClock{now: time.Date(2026, 2, 3, 12, 0, 0, 0, time.UTC)}
	slo := obs.NewSLOMonitor([]obs.Objective{{Name: "errors", Target: 0.99}}, obs.SLOOptions{Clock: clock.Now})
	reg := obs.NewRegistry()
	eng := serve.NewEngine(anchoredSnapshot(66), serve.Options{
		Obs: reg,
		Log: obs.NewLogger(obs.LoggerOptions{}),
		SLO: slo,
	})

	eng.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 0, Algorithm: topk.TA}) // reject
	s := reg.Snapshot()
	if got := s.CounterSum("serve_requests_total"); got != 0 {
		t.Fatalf("validation reject counted as a request: %d", got)
	}
	if h, ok := s.MergeHistograms("serve_request_seconds"); ok && h.Count != 0 {
		t.Fatalf("validation reject landed a latency sample: %d", h.Count)
	}
	if st := slo.Status(); len(st.Objectives) > 0 && st.Objectives[0].Good+st.Objectives[0].Bad != 0 {
		t.Fatalf("validation reject reached the SLO monitor: %+v", st.Objectives[0])
	}

	eng.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA, Deadline: time.Nanosecond})
	s = reg.Snapshot()
	if h, ok := s.MergeHistograms("serve_request_seconds"); !ok || h.Count != 1 {
		t.Fatal("refused request must land exactly one latency sample")
	}
	if st := slo.Status(); st.Objectives[0].Bad != 1 {
		t.Fatalf("refusal must land one bad SLO observation: %+v", st.Objectives[0])
	}

	if resp := eng.Do(serve.Request{Problem: serve.Quantify, Dim: compare.ByGroup, K: 2, Algorithm: topk.TA}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if st := slo.Status(); st.Objectives[0].Good != 1 {
		t.Fatalf("success must land one good SLO observation: %+v", st.Objectives[0])
	}
}
