// Package search implements the Google-job-search substrate of the case
// study (§5.1.2): the study design (job queries at locations, five
// equivalent search terms each, participants from six demographic groups),
// a personalized search engine whose result divergence is group-, query-
// and location-dependent, and the Chrome-extension protocol that repeats
// every term to control for carry-over and A/B-testing noise.
//
// The paper collected this data through 60 Prolific Academic user studies;
// we synthesize it. The personalization model's divergence factors are
// calibrated so the shape of §5.2.2 and Tables 16–21 reproduces. See
// DESIGN.md §2 for the substitution rationale.
package search

import (
	"fmt"
	"strings"

	"fairjob/internal/core"
)

// Study is one (job query, location) user study: five equivalent Google
// search terms executed by participants of all six demographic groups.
type Study struct {
	Base     string
	Location core.Location
	Terms    []core.Query
}

// Bases returns the job-query bases of the study design. The first five
// are the categories of the paper's Table 7; furniture assembly is added
// so the §5.2.2 query-quantification finding ("Furniture Assembly jobs
// are deemed the most fair") has a subject, as recorded in EXPERIMENTS.md.
func Bases() []string {
	return []string{
		"yard work", "general cleaning", "event staffing",
		"moving job", "run errand", "furniture assembly",
	}
}

// StudyLocations returns the locations of the study design: the ten
// Prolific-determined locations of §5.1.2 plus Washington, DC (referenced
// by the §5.2.2 location finding).
func StudyLocations() []core.Location {
	return []core.Location{
		"London, UK", "New York City, NY", "Los Angeles, CA", "Boston, MA",
		"Bristol, UK", "Charlotte, NC", "Pittsburgh, PA", "Birmingham, UK",
		"Manchester, UK", "Detroit, MI", "Washington, DC",
	}
}

// locationsPerBase reproduces Table 7's distribution (yard work at 4
// locations, general cleaning at 3, the rest at 1 each), extended with
// furniture assembly at Washington, DC.
func locationsPerBase() map[string][]core.Location {
	return map[string][]core.Location{
		"yard work":          {"New York City, NY", "Detroit, MI", "Birmingham, UK", "Manchester, UK"},
		"general cleaning":   {"Boston, MA", "Bristol, UK", "London, UK"},
		"event staffing":     {"Charlotte, NC"},
		"moving job":         {"Pittsburgh, PA"},
		"run errand":         {"Los Angeles, CA"},
		"furniture assembly": {"Washington, DC"},
	}
}

// EquivalentTerms is the Keyword-Planner stand-in: it fans a base query
// into five equivalent Google search formulations, in the style of the
// paper's Table 6. The formulation is kept location-independent — the
// location travels separately in the (query, location) pair, and FullTerm
// renders the "… near <location>" string the Chrome extension would type —
// so the same formulation is comparable across locations, which the
// location-comparison problem (Tables 20–21) requires.
func EquivalentTerms(base string) []core.Query {
	terms, ok := map[string][]string{
		"run errand": {
			"run errand jobs", "errand service jobs", "errand runner jobs",
			"errands and odd jobs", "jobs running errands for seniors",
		},
		"yard work": {
			"yard work jobs", "yard worker", "lawn work needed",
			"yard help needed", "yard work help wanted",
		},
		"general cleaning": {
			"general cleaning jobs", "house cleaning jobs",
			"office cleaning jobs", "private cleaning jobs",
			"deep cleaning jobs",
		},
		"event staffing": {
			"event staffing jobs", "event staff wanted", "banquet staff jobs",
			"event crew jobs", "event help wanted",
		},
		"moving job": {
			"moving job", "moving helper jobs", "furniture moving jobs",
			"packing jobs", "moving crew jobs",
		},
		"furniture assembly": {
			"furniture assembly jobs", "ikea assembly jobs",
			"furniture assembler wanted", "flat pack assembly jobs",
			"furniture installation jobs",
		},
	}[base]
	if !ok {
		// Generic Keyword-Planner fallback for bases outside the study.
		terms = []string{
			base + " jobs", base + " work", base + " help wanted",
			base + " gigs", base + " positions",
		}
	}
	out := make([]core.Query, len(terms))
	for i, t := range terms {
		out[i] = core.Query(t)
	}
	return out
}

// FullTerm renders the exact string the Chrome extension executes for a
// formulation at a location, matching Table 6's "… near <location>" form.
func FullTerm(term core.Query, loc core.Location) string {
	return fmt.Sprintf("%s near %s", term, loc)
}

// Studies enumerates the full study design: one Study per (base, location)
// pair of Table 7, with its five equivalent terms.
func Studies() []Study {
	perBase := locationsPerBase()
	var out []Study
	for _, base := range Bases() {
		for _, loc := range perBase[base] {
			out = append(out, Study{Base: base, Location: loc, Terms: EquivalentTerms(base)})
		}
	}
	return out
}

// BaseOfTerm recovers the base query a search term was generated from,
// and whether it belongs to the study design.
func BaseOfTerm(term core.Query) (string, bool) {
	for _, s := range Studies() {
		for _, t := range s.Terms {
			if t == term {
				return s.Base, true
			}
		}
	}
	return "", false
}

// TermsOfBase returns the search terms generated for a base; since
// formulations are location-independent this is just EquivalentTerms.
func TermsOfBase(base string) []core.Query {
	return EquivalentTerms(base)
}

// termContains reports whether the term's text mentions the given word —
// used by the divergence model's term-level interactions.
func termContains(term core.Query, word string) bool {
	return strings.Contains(string(term), word)
}
