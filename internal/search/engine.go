package search

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

// ResultsPerPage is the number of job postings on a result page.
const ResultsPerPage = 30

// DefaultParticipants is the number of Prolific participants recruited per
// (study, group); the paper averaged 3.
const DefaultParticipants = 3

// DefaultRepeats is how many times the Chrome extension executes each
// search term to control for A/B-testing noise ("every search term is
// executed at least twice", §5.1.2).
const DefaultRepeats = 2

// User is one study participant.
type User struct {
	ID    string
	Attrs core.Assignment
}

// Config parameterizes the simulated Google study.
type Config struct {
	// Seed makes the whole study deterministic.
	Seed uint64
	// Participants per (study, group); defaults to DefaultParticipants.
	Participants int
	// Repeats per (user, term); defaults to DefaultRepeats.
	Repeats int
	// Divergence defaults to DefaultDivergenceModel().
	Divergence *DivergenceModel
	// ABNoise is the magnitude of per-repeat A/B-test perturbation the
	// repeat protocol has to cancel out. Negative disables it entirely
	// (0 selects the default).
	ABNoise float64
	// CarryOver is the magnitude of carry-over contamination: each
	// search is perturbed by residue of the user's previous query,
	// decaying exponentially with the spacing between searches.
	// Negative disables it (0 selects the default).
	CarryOver float64
	// SpacingMinutes is the wall-clock gap the extension leaves between
	// consecutive searches; the paper's extension "runs the five search
	// terms every 12 minutes to minimize noise due to the carry-over
	// effect" (§5.1.2). 0 selects the default of 12; negative means
	// back-to-back searches (no decay).
	SpacingMinutes float64
}

// carryOverTau is the decay time-constant (minutes) of the carry-over
// effect: after the default 12-minute spacing the residue is
// exp(-12/3) ≈ 1.8% of its initial magnitude.
const carryOverTau = 3.0

func (c Config) withDefaults() Config {
	if c.Participants == 0 {
		c.Participants = DefaultParticipants
	}
	if c.Repeats == 0 {
		c.Repeats = DefaultRepeats
	}
	if c.Divergence == nil {
		c.Divergence = DefaultDivergenceModel()
	}
	if c.ABNoise == 0 {
		c.ABNoise = 0.35
	}
	if c.ABNoise < 0 {
		c.ABNoise = 0
	}
	if c.CarryOver == 0 {
		c.CarryOver = 1.5
	}
	if c.CarryOver < 0 {
		c.CarryOver = 0
	}
	if c.SpacingMinutes == 0 {
		c.SpacingMinutes = 12
	}
	if c.SpacingMinutes < 0 {
		c.SpacingMinutes = 0
	}
	return c
}

// Engine is the simulated personalized search engine plus the data-
// collection protocol around it (Figure 9's pipeline up to the F-Box).
type Engine struct {
	cfg Config
}

// New builds an Engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

func (e *Engine) rng(parts ...interface{}) *stats.RNG {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", e.cfg.Seed)
	for _, p := range parts {
		fmt.Fprintf(h, "|%v", p)
	}
	return stats.NewRNG(h.Sum64())
}

// BaseRanking returns the unpersonalized result list for a term at a
// location: ResultsPerPage posting IDs in the engine's organic order.
func (e *Engine) BaseRanking(term core.Query, loc core.Location) []string {
	out := make([]string, ResultsPerPage)
	for i := range out {
		out[i] = fmt.Sprintf("post-%x-%02d", contentHash(term, loc), i)
	}
	return out
}

func contentHash(term core.Query, loc core.Location) uint32 {
	h := fnv.New32a()
	h.Write([]byte(term))
	h.Write([]byte{0})
	h.Write([]byte(loc))
	return h.Sum32()
}

// Participants returns the study's users: Participants per full
// demographic group, deterministic per study.
func (e *Engine) Participants(study Study) []User {
	var out []User
	for _, gender := range []string{"Male", "Female"} {
		for _, eth := range []string{"Asian", "Black", "White"} {
			for k := 0; k < e.cfg.Participants; k++ {
				out = append(out, User{
					ID:    fmt.Sprintf("u-%s-%s-%s-%s-%d", study.Base, study.Location, gender, eth, k),
					Attrs: core.Assignment{"gender": gender, "ethnicity": eth},
				})
			}
		}
	}
	return out
}

// carryOverResidue is the effective carry-over magnitude after the
// configured spacing.
func (e *Engine) carryOverResidue() float64 {
	return e.cfg.CarryOver * math.Exp(-e.cfg.SpacingMinutes/carryOverTau)
}

// run executes one search by one user: the base ranking perturbed by the
// user's personalization (reorder + substitution channels), per-repeat
// A/B noise, and carry-over residue from the user's previous search
// (prevTerm; empty for the session's first search).
func (e *Engine) run(user User, study Study, term core.Query, prevTerm core.Query, repeat int) []string {
	base := e.BaseRanking(term, study.Location)
	n := len(base)
	reorder, substitution := e.cfg.Divergence.Channels(
		user.Attrs["gender"], user.Attrs["ethnicity"], study.Base, term, study.Location)

	// Personalization is a property of the user profile, so its
	// randomness is keyed on (user, term) — stable across repeats. A/B
	// noise is keyed on the repeat as well.
	profile := e.rng("profile", user.ID, term)
	ab := e.rng("ab", user.ID, term, repeat)
	carry := e.rng("carry", user.ID, term, prevTerm, repeat)
	residue := 0.0
	if prevTerm != "" {
		residue = e.carryOverResidue()
	}

	type scored struct {
		id string
		s  float64
	}
	items := make([]scored, n)
	for i, id := range base {
		items[i] = scored{
			id: id,
			s: float64(-i) +
				reorder*float64(n)*0.35*profile.NormFloat64() +
				e.cfg.ABNoise*ab.NormFloat64() +
				residue*carry.NormFloat64(),
		}
	}

	// Substitution: personalized postings replace the tail of the page.
	// The number of substitutions grows with the substitution channel.
	subs := int(substitution * 0.30 * float64(n))
	if subs > n/2 {
		subs = n / 2
	}
	for k := 0; k < subs; k++ {
		items[n-1-k] = scored{
			id: fmt.Sprintf("personal-%s-%02d", shortID(user.ID, term), k),
			s:  items[n-1-k].s,
		}
	}

	sort.Slice(items, func(i, j int) bool {
		if items[i].s != items[j].s {
			return items[i].s > items[j].s
		}
		return items[i].id < items[j].id
	})
	out := make([]string, n)
	for i, it := range items {
		out[i] = it.id
	}
	return out
}

func shortID(userID string, term core.Query) string {
	h := fnv.New32a()
	h.Write([]byte(userID))
	h.Write([]byte{0})
	h.Write([]byte(term))
	return fmt.Sprintf("%x", h.Sum32())
}

// CollectUser runs the full extension protocol for one (user, term): the
// term is executed Repeats times and the runs are merged by Borda rank
// averaging, canceling A/B-test noise while keeping the stable
// personalization signal — the role of the repeated-execution protocol in
// §5.1.2.
func (e *Engine) CollectUser(user User, study Study, term core.Query) []string {
	return e.collectUserAfter(user, study, term, "")
}

// collectUserAfter is CollectUser with an explicit preceding query for the
// carry-over model; RunStudy threads the study's term order through it.
func (e *Engine) collectUserAfter(user User, study Study, term, prevTerm core.Query) []string {
	positions := make(map[string]float64)
	counts := make(map[string]int)
	for r := 0; r < e.cfg.Repeats; r++ {
		list := e.run(user, study, term, prevTerm, r)
		for i, id := range list {
			positions[id] += float64(i)
			counts[id]++
		}
	}
	type avg struct {
		id  string
		pos float64
	}
	merged := make([]avg, 0, len(positions))
	for id, total := range positions {
		// Items absent from some repeats are penalized toward the tail.
		miss := e.cfg.Repeats - counts[id]
		merged = append(merged, avg{id, (total + float64(miss*ResultsPerPage)) / float64(e.cfg.Repeats)})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].pos != merged[j].pos {
			return merged[i].pos < merged[j].pos
		}
		return merged[i].id < merged[j].id
	})
	if len(merged) > ResultsPerPage {
		merged = merged[:ResultsPerPage]
	}
	out := make([]string, len(merged))
	for i, m := range merged {
		out[i] = m.id
	}
	return out
}

// RunStudy collects the personalized results of every participant for
// every term of the study: one SearchResults per term.
func (e *Engine) RunStudy(study Study) []*core.SearchResults {
	users := e.Participants(study)
	out := make([]*core.SearchResults, 0, len(study.Terms))
	for ti, term := range study.Terms {
		var prev core.Query
		if ti > 0 {
			prev = study.Terms[ti-1]
		}
		sr := &core.SearchResults{Query: term, Location: study.Location}
		for _, u := range users {
			sr.Users = append(sr.Users, core.UserResults{
				ID:    u.ID,
				Attrs: u.Attrs.Clone(),
				List:  e.collectUserAfter(u, study, term, prev),
			})
		}
		out = append(out, sr)
	}
	return out
}

// CrawlAll runs every study of the design — the full Google data
// collection of Figure 9.
func (e *Engine) CrawlAll() []*core.SearchResults {
	var out []*core.SearchResults
	for _, s := range Studies() {
		out = append(out, e.RunStudy(s)...)
	}
	return out
}
