package search

import (
	"strings"
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/metrics"
)

func TestStudyDesign(t *testing.T) {
	studies := Studies()
	// Table 7 + furniture assembly: 4+3+1+1+1+1 = 11 studies.
	if len(studies) != 11 {
		t.Fatalf("studies = %d, want 11", len(studies))
	}
	perBase := map[string]int{}
	for _, s := range studies {
		perBase[s.Base]++
		if len(s.Terms) != 5 {
			t.Errorf("study %s/%s has %d terms, want 5", s.Base, s.Location, len(s.Terms))
		}
	}
	want := map[string]int{
		"yard work": 4, "general cleaning": 3, "event staffing": 1,
		"moving job": 1, "run errand": 1, "furniture assembly": 1,
	}
	for base, n := range want {
		if perBase[base] != n {
			t.Errorf("base %q has %d locations, want %d (Table 7)", base, perBase[base], n)
		}
	}
	if len(StudyLocations()) != 11 {
		t.Fatalf("locations = %d, want 11", len(StudyLocations()))
	}
}

func TestEquivalentTermsAndLookups(t *testing.T) {
	terms := EquivalentTerms("general cleaning")
	if len(terms) != 5 {
		t.Fatalf("terms = %d", len(terms))
	}
	if base, ok := BaseOfTerm("office cleaning jobs"); !ok || base != "general cleaning" {
		t.Fatalf("BaseOfTerm = %q, %v", base, ok)
	}
	if _, ok := BaseOfTerm("quantum plumbing"); ok {
		t.Fatal("unknown term resolved")
	}
	if got := len(TermsOfBase("yard work")); got != 5 {
		t.Fatalf("TermsOfBase = %d", got)
	}
	// Unknown bases still fan out via the generic fallback.
	if got := len(EquivalentTerms("alpaca grooming")); got != 5 {
		t.Fatalf("fallback terms = %d", got)
	}
	full := FullTerm("yard work jobs", "Detroit, MI")
	if !strings.Contains(full, "near Detroit, MI") {
		t.Fatalf("FullTerm = %q", full)
	}
}

func TestBaseRankingDeterministicAndDistinct(t *testing.T) {
	e := New(Config{Seed: 1})
	a := e.BaseRanking("yard work jobs", "Detroit, MI")
	b := e.BaseRanking("yard work jobs", "Detroit, MI")
	if len(a) != ResultsPerPage {
		t.Fatalf("page size = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("base ranking not deterministic")
		}
	}
	c := e.BaseRanking("yard work jobs", "Birmingham, UK")
	if a[0] == c[0] {
		t.Fatal("different locations share postings")
	}
}

func TestParticipants(t *testing.T) {
	e := New(Config{Seed: 1})
	study := Studies()[0]
	users := e.Participants(study)
	if len(users) != 18 { // 6 groups × 3 participants
		t.Fatalf("participants = %d, want 18", len(users))
	}
	counts := map[string]int{}
	for _, u := range users {
		counts[u.Attrs["gender"]+"/"+u.Attrs["ethnicity"]]++
	}
	for g, n := range counts {
		if n != 3 {
			t.Errorf("group %s has %d participants", g, n)
		}
	}
}

func TestFairEngineProducesIdenticalLists(t *testing.T) {
	// Null personalization and no A/B noise: everyone sees the baseline.
	e := New(Config{Seed: 2, Divergence: FairDivergenceModel(), ABNoise: -1})
	study := Studies()[0]
	results := e.RunStudy(study)
	for _, sr := range results {
		for i := 1; i < len(sr.Users); i++ {
			if metrics.JaccardDistance(sr.Users[0].List, sr.Users[i].List) != 0 ||
				metrics.KendallTauDistance(sr.Users[0].List, sr.Users[i].List) != 0 {
				t.Fatalf("fair engine produced divergent lists for %s", sr.Users[i].ID)
			}
		}
	}
}

func TestPersonalizationIsStableAcrossRepeats(t *testing.T) {
	// The repeat protocol must cancel A/B noise: collecting the same
	// (user, term) twice gives the same merged list.
	e := New(Config{Seed: 3})
	study := Studies()[1]
	u := e.Participants(study)[0]
	a := e.CollectUser(u, study, study.Terms[0])
	b := e.CollectUser(u, study, study.Terms[0])
	if metrics.KendallTauDistance(a, b) != 0 {
		t.Fatal("merged lists differ between collections")
	}
}

func TestRepeatsReduceABNoise(t *testing.T) {
	// With more repeats, two users of the same group (same divergence,
	// independent noise) should converge toward their personalization
	// signal: their distance with 6 repeats must not exceed the
	// single-run distance on average.
	study := Studies()[0]
	avgDist := func(repeats int) float64 {
		e := New(Config{Seed: 9, Repeats: repeats, ABNoise: 1.5})
		users := e.Participants(study)
		var sum float64
		var n int
		for _, term := range study.Terms {
			a := e.CollectUser(users[0], study, term)
			b := e.CollectUser(users[1], study, term)
			sum += metrics.KendallTauDistance(a, b)
			n++
		}
		return sum / float64(n)
	}
	if noisy, clean := avgDist(1), avgDist(6); clean > noisy+0.02 {
		t.Fatalf("more repeats increased noise: 1 repeat %v vs 6 repeats %v", noisy, clean)
	}
}

func TestPersonalizedListsDivergeWithModel(t *testing.T) {
	e := New(Config{Seed: 4})
	study := Studies()[0] // yard work at NYC: high divergence
	sr := e.RunStudy(study)[0]
	base := e.BaseRanking(sr.Query, sr.Location)
	diverged := 0
	for _, u := range sr.Users {
		if metrics.KendallTauDistance(base, u.List) > 0 {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("no user diverged from the base ranking")
	}
}

func TestSubstitutionInsertsPersonalResults(t *testing.T) {
	e := New(Config{Seed: 5})
	// White Female in London (high divergence): personalized postings
	// must appear.
	var study Study
	for _, s := range Studies() {
		if s.Location == "London, UK" {
			study = s
			break
		}
	}
	users := e.Participants(study)
	var wf User
	for _, u := range users {
		if u.Attrs["gender"] == "Female" && u.Attrs["ethnicity"] == "White" {
			wf = u
			break
		}
	}
	list := e.CollectUser(wf, study, study.Terms[0])
	personal := 0
	for _, id := range list {
		if strings.HasPrefix(id, "personal-") {
			personal++
		}
	}
	if personal == 0 {
		t.Fatal("no personalized postings for a high-divergence user")
	}
}

func TestCrawlAllShape(t *testing.T) {
	e := New(Config{Seed: 6})
	all := e.CrawlAll()
	if len(all) != 55 { // 11 studies × 5 terms
		t.Fatalf("crawl = %d result sets, want 55", len(all))
	}
	for _, sr := range all {
		if len(sr.Users) != 18 {
			t.Fatalf("result set %s/%s has %d users", sr.Query, sr.Location, len(sr.Users))
		}
		for _, u := range sr.Users {
			if len(u.List) == 0 || len(u.List) > ResultsPerPage {
				t.Fatalf("user %s list size %d", u.ID, len(u.List))
			}
		}
	}
}

func TestChannelsInteractions(t *testing.T) {
	m := DefaultDivergenceModel()
	// Male boost at a Table 16 location.
	rN, sN := m.Channels("Male", "White", "yard work", "yard work jobs", "Manchester, UK")
	rB, sB := m.Channels("Male", "White", "yard work", "yard work jobs", "Birmingham, UK")
	// Compare like for like by normalizing the location factor away.
	if rB/m.Location["Birmingham, UK"] <= rN/m.Location["Manchester, UK"] {
		t.Fatal("male reorder boost missing at Birmingham")
	}
	if sB/m.Location["Birmingham, UK"] <= sN/m.Location["Manchester, UK"] {
		t.Fatal("male substitution boost missing at Birmingham")
	}
	// Female reorder boost at a Table 17 location.
	rF, sF := m.Channels("Female", "White", "general cleaning", "house cleaning jobs", "London, UK")
	if rF <= sF {
		t.Fatal("female reorder boost missing in London")
	}
	// Black cleaning boost.
	rBl, _ := m.Channels("Male", "Black", "general cleaning", "house cleaning jobs", "Bristol, UK")
	rWh, _ := m.Channels("Male", "White", "general cleaning", "house cleaning jobs", "Bristol, UK")
	if rBl/m.Group["Male/Black"] <= rWh/m.Group["Male/White"] {
		t.Fatal("Black cleaning boost missing")
	}
	// Boston office-cleaning boost.
	rOff, _ := m.Channels("Male", "White", "general cleaning", "office cleaning jobs", "Boston, MA")
	rGen, _ := m.Channels("Male", "White", "general cleaning", "general cleaning jobs", "Boston, MA")
	if rOff <= rGen {
		t.Fatal("Boston office-cleaning boost missing")
	}
}

// TestCarryOverControlledBySpacing verifies the §5.1.2 protocol rationale:
// back-to-back searches suffer carry-over contamination that inflates
// measured unfairness, while the extension's 12-minute spacing decays the
// residue to near nothing.
func TestCarryOverControlledBySpacing(t *testing.T) {
	study := Studies()[0]
	avgUnfairness := func(spacing float64) float64 {
		e := New(Config{Seed: 21, SpacingMinutes: spacing, CarryOver: 3})
		ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureKendallTau}
		var sum float64
		var n int
		for _, sr := range e.RunStudy(study) {
			for _, g := range core.DefaultSchema().FullGroups() {
				if d, ok := ev.Unfairness(sr, g); ok {
					sum += d
					n++
				}
			}
		}
		return sum / float64(n)
	}
	spaced := avgUnfairness(12)
	backToBack := avgUnfairness(-1) // negative = no gap at all
	if backToBack <= spaced {
		t.Fatalf("carry-over had no effect: spaced %.3f vs back-to-back %.3f", spaced, backToBack)
	}
	// With the default spacing the residue is ~2%, so the spaced run
	// should sit very close to a run with carry-over disabled.
	clean := func() float64 {
		e := New(Config{Seed: 21, CarryOver: -1})
		ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureKendallTau}
		var sum float64
		var n int
		for _, sr := range e.RunStudy(study) {
			for _, g := range core.DefaultSchema().FullGroups() {
				if d, ok := ev.Unfairness(sr, g); ok {
					sum += d
					n++
				}
			}
		}
		return sum / float64(n)
	}()
	if diff := spaced - clean; diff < -0.02 || diff > 0.02 {
		t.Fatalf("spaced run (%.3f) not close to clean run (%.3f)", spaced, clean)
	}
}

// The first term of a session has no predecessor and therefore no
// carry-over, even back-to-back.
func TestCarryOverFirstTermClean(t *testing.T) {
	study := Studies()[0]
	dirty := New(Config{Seed: 23, SpacingMinutes: -1, CarryOver: 3})
	clean := New(Config{Seed: 23, CarryOver: -1})
	u := dirty.Participants(study)[0]
	a := dirty.CollectUser(u, study, study.Terms[0])
	b := clean.CollectUser(u, study, study.Terms[0])
	if metrics.KendallTauDistance(a, b) != 0 {
		t.Fatal("first search contaminated despite having no predecessor")
	}
}
