package search

import (
	"fairjob/internal/core"
)

// DivergenceModel parameterizes how strongly Google personalization makes
// a user's results diverge from the unpersonalized baseline. Divergence
// has two channels with different measurement signatures:
//
//   - reordering — the same postings in a different order, which moves
//     Kendall Tau but not Jaccard;
//   - substitution — personalized postings replacing baseline ones, which
//     moves both, Jaccard especially.
//
// The calibrated factors encode the paper's §5.2.2/§5.3.2 findings: White
// Females see the most divergent results and Black Males the least;
// London is the least fair location and Washington DC the fairest; yard
// work is the most and furniture assembly the least unfair query; males'
// substitution divergence spikes at the Table 16 reversal locations while
// females' reordering divergence spikes at the Table 17 ones; Black (and
// to a lesser degree Asian) users diverge extra on general-cleaning terms
// (Tables 18–19); and office/private cleaning formulations diverge extra
// in Boston (Tables 20–21).
type DivergenceModel struct {
	// Group maps "Gender/Ethnicity" to the base divergence of users in
	// that full group.
	Group map[string]float64
	// Location scales divergence per study location.
	Location map[core.Location]float64
	// Base scales divergence per job-query base.
	Base map[string]float64
	// MaleBoostLocations is Table 16's reversal set: there, male users'
	// divergence is boosted on both channels — substitution hardest, so
	// the male-female gap is widest under Jaccard. Substitution boosts
	// are per-location (Bristol's is milder so it stays below London in
	// the Jaccard location ranking).
	MaleReorderBoost       float64
	MaleSubstitutionBoosts map[core.Location]float64
	MaleBoostLocations     map[core.Location]bool
	// FemaleBoostLocations is Table 17's reversal set: there, female
	// users' reordering divergence is boosted, widening the gap under
	// Kendall Tau while leaving Jaccard to the groups' base factors.
	FemaleReorderBoost   float64
	FemaleBoostLocations map[core.Location]bool
	// EthnicityCleaningReorderBoost and EthnicityCleaningSubBoost
	// multiply the respective channels on general-cleaning terms per
	// ethnicity. Black users get both (Tables 18 and 19 both reverse for
	// Black); Asian users only reorder (only the Kendall-side Table 18
	// reverses for Asian).
	EthnicityCleaningReorderBoost map[string]float64
	EthnicityCleaningSubBoost     map[string]float64
	// BostonCleaningReorderBoost and BostonCleaningSubBoost multiply the
	// respective channels for terms containing the listed words when
	// searched from Boston (Tables 20–21).
	BostonCleaningReorderBoost float64
	BostonCleaningSubBoost     float64
	BostonCleaningWords        []string
}

// DefaultDivergenceModel returns the calibrated model used by the
// experiment harness.
func DefaultDivergenceModel() *DivergenceModel {
	return &DivergenceModel{
		Group: map[string]float64{
			"Female/White": 1.00,
			"Female/Asian": 0.80,
			"Male/White":   0.66,
			"Male/Asian":   0.58,
			"Female/Black": 0.56,
			"Male/Black":   0.20,
		},
		Location: map[core.Location]float64{
			"London, UK":        1.80,
			"Birmingham, UK":    0.44,
			"Bristol, UK":       0.58,
			"Manchester, UK":    0.55,
			"Detroit, MI":       0.44,
			"New York City, NY": 0.44,
			"Pittsburgh, PA":    0.45,
			"Charlotte, NC":     0.42,
			"Boston, MA":        0.30,
			"Los Angeles, CA":   0.42,
			"Washington, DC":    0.05,
		},
		Base: map[string]float64{
			"yard work":          1.30,
			"moving job":         0.80,
			"run errand":         1.22,
			"event staffing":     0.65,
			"general cleaning":   0.40,
			"furniture assembly": 0.30,
		},
		MaleReorderBoost: 1.8,
		MaleSubstitutionBoosts: map[core.Location]float64{
			"Birmingham, UK": 2.0, "Bristol, UK": 2.2,
			"Detroit, MI": 2.0, "New York City, NY": 2.0,
		},
		MaleBoostLocations: map[core.Location]bool{
			"Birmingham, UK": true, "Bristol, UK": true,
			"Detroit, MI": true, "New York City, NY": true,
		},
		FemaleReorderBoost: 1.9,
		FemaleBoostLocations: map[core.Location]bool{
			"Boston, MA": true, "Charlotte, NC": true, "London, UK": true,
			"Los Angeles, CA": true, "Manchester, UK": true, "Pittsburgh, PA": true,
		},
		EthnicityCleaningReorderBoost: map[string]float64{
			"Black": 2.50,
			"Asian": 2.15,
		},
		EthnicityCleaningSubBoost: map[string]float64{
			"Black": 2.10,
		},
		BostonCleaningReorderBoost: 2.6,
		BostonCleaningSubBoost:     3.2,
		BostonCleaningWords:        []string{"office cleaning", "private cleaning"},
	}
}

// FairDivergenceModel returns a null model with no personalization: every
// user sees the baseline list, so measured unfairness is exactly 0. Used
// as the control in validation tests.
func FairDivergenceModel() *DivergenceModel {
	m := DefaultDivergenceModel()
	for k := range m.Group {
		m.Group[k] = 0
	}
	return m
}

// Channels returns the (reorder, substitution) divergence magnitudes for
// a user of the given demographics searching term (generated from base)
// at loc.
func (m *DivergenceModel) Channels(gender, ethnicity, base string, term core.Query, loc core.Location) (reorder, substitution float64) {
	d := m.Group[gender+"/"+ethnicity] * m.Location[loc] * m.Base[base]
	reorder, substitution = d, d
	if gender == "Male" && m.MaleBoostLocations[loc] {
		reorder *= m.MaleReorderBoost
		substitution *= m.MaleSubstitutionBoosts[loc]
	}
	if gender == "Female" && m.FemaleBoostLocations[loc] {
		reorder *= m.FemaleReorderBoost
	}
	if base == "general cleaning" {
		if b, ok := m.EthnicityCleaningReorderBoost[ethnicity]; ok {
			reorder *= b
		}
		if b, ok := m.EthnicityCleaningSubBoost[ethnicity]; ok {
			substitution *= b
		}
	}
	if loc == "Boston, MA" {
		for _, w := range m.BostonCleaningWords {
			if termContains(term, w) {
				reorder *= m.BostonCleaningReorderBoost
				substitution *= m.BostonCleaningSubBoost
			}
		}
	}
	return reorder, substitution
}
