package search

import (
	"sort"
	"testing"

	"fairjob/internal/compare"
	"fairjob/internal/core"
)

// googleCache holds the unfairness tables of one full study sweep per
// measure. These tests certify the calibration targets of DESIGN.md §6 on
// the Google side: §5.2.2's quantification findings and the comparison
// Tables 16–21.
var googleCache = map[core.SearchMeasure]*core.Table{}

func googleTable(t *testing.T, measure core.SearchMeasure) *core.Table {
	t.Helper()
	if tbl, ok := googleCache[measure]; ok {
		return tbl
	}
	e := New(Config{Seed: 11})
	ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: measure}
	tbl := ev.EvaluateAll(e.CrawlAll(), nil)
	googleCache[measure] = tbl
	return tbl
}

func fullGroupRanking(t *testing.T, tbl *core.Table) []string {
	t.Helper()
	type kv struct {
		name string
		v    float64
	}
	var ranked []kv
	for _, g := range core.DefaultSchema().FullGroups() {
		v, ok := tbl.AggregateGroup(g, tbl.Queries(), tbl.Locations())
		if !ok {
			t.Fatalf("no value for %s", g.Name())
		}
		ranked = append(ranked, kv{g.Name(), v})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
	names := make([]string, len(ranked))
	for i, r := range ranked {
		names[i] = r.name
		t.Logf("%-14s %.3f", r.name, r.v)
	}
	return names
}

// TestGoogleQuantGroups asserts §5.2.2: the most discriminated-against
// group is White Females and the least is Black Males, under both
// measures.
func TestGoogleQuantGroups(t *testing.T) {
	for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
		names := fullGroupRanking(t, googleTable(t, measure))
		if names[0] != "White Female" {
			t.Errorf("%v: most unfair = %s, want White Female", measure, names[0])
		}
		if names[len(names)-1] != "Black Male" {
			t.Errorf("%v: least unfair = %s, want Black Male", measure, names[len(names)-1])
		}
	}
}

// TestGoogleQuantLocations asserts §5.2.2: Washington DC is the fairest
// location and London UK the unfairest, under both measures.
func TestGoogleQuantLocations(t *testing.T) {
	for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
		tbl := googleTable(t, measure)
		gs, qs := tbl.Groups(), tbl.Queries()
		type kv struct {
			loc core.Location
			v   float64
		}
		var ranked []kv
		for _, l := range tbl.Locations() {
			if v, ok := tbl.AggregateLocation(l, gs, qs); ok {
				ranked = append(ranked, kv{l, v})
			}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
		for _, r := range ranked {
			t.Logf("%v %-20s %.3f", measure, r.loc, r.v)
		}
		if ranked[0].loc != "London, UK" {
			t.Errorf("%v: unfairest location = %s, want London", measure, ranked[0].loc)
		}
		if ranked[len(ranked)-1].loc != "Washington, DC" {
			t.Errorf("%v: fairest location = %s, want Washington DC", measure, ranked[len(ranked)-1].loc)
		}
	}
}

// baseAverages aggregates term-level unfairness to the six job-query
// bases, defined-only.
func baseAverages(tbl *core.Table) map[string]float64 {
	gs, ls := tbl.Groups(), tbl.Locations()
	out := make(map[string]float64)
	for _, base := range Bases() {
		var sum float64
		var n int
		for _, q := range TermsOfBase(base) {
			for _, g := range gs {
				for _, l := range ls {
					if v, ok := tbl.Get(g, q, l); ok {
						sum += v
						n++
					}
				}
			}
		}
		out[base] = sum / float64(n)
	}
	return out
}

// TestGoogleQuantQueries asserts §5.2.2: yard work jobs are the most
// unfair and furniture assembly jobs the fairest, under both measures.
func TestGoogleQuantQueries(t *testing.T) {
	for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
		avgs := baseAverages(googleTable(t, measure))
		best, worst := "", ""
		for base, v := range avgs {
			t.Logf("%v %-20s %.3f", measure, base, v)
			if worst == "" || v > avgs[worst] {
				worst = base
			}
			if best == "" || v < avgs[best] {
				best = base
			}
		}
		if worst != "yard work" {
			t.Errorf("%v: most unfair base = %s, want yard work", measure, worst)
		}
		if best != "furniture assembly" {
			t.Errorf("%v: fairest base = %s, want furniture assembly", measure, best)
		}
	}
}

// genderValue is the hierarchical gender aggregate used by the
// gender-comparison experiments: the average unfairness of the gender's
// three full groups. (The literal Equation-1 value of the "Male" group is
// provably identical to the "Female" one whenever both genders
// participate, so the paper's asymmetric Table 16/17 numbers must be
// group-mediated; see EXPERIMENTS.md.)
func genderValue(t *testing.T, tbl *core.Table, gender string, ls []core.Location) (float64, bool) {
	t.Helper()
	var sum float64
	var n int
	for _, g := range core.DefaultSchema().FullGroups() {
		if v, ok := g.Label.ValueOf("gender"); !ok || v != gender {
			continue
		}
		if v, ok := tbl.AggregateGroup(g, tbl.Queries(), ls); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// TestTables16And17GenderByLocation asserts the certified shape behind
// Tables 16 and 17: overall, females are treated less fairly than males;
// males are treated less fairly at the Table 16 cities {Birmingham,
// Bristol, Detroit, NYC} under both measures (which is why Table 16 lists
// them as reversals and Table 17 does not); and females are treated less
// fairly at the six Table 17 cities. (Known divergence, recorded in
// EXPERIMENTS.md: the paper's Jaccard overall direction flips by a hair —
// 0.395 vs 0.393 — which our reproduction does not chase; only the robust
// per-location geography is certified.)
func TestTables16And17GenderByLocation(t *testing.T) {
	maleWorse := map[core.Location]bool{
		"Birmingham, UK": true, "Bristol, UK": true, "Detroit, MI": true, "New York City, NY": true,
	}
	femaleWorse := map[core.Location]bool{
		"Boston, MA": true, "Charlotte, NC": true, "London, UK": true,
		"Los Angeles, CA": true, "Manchester, UK": true, "Pittsburgh, PA": true,
	}
	for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
		tbl := googleTable(t, measure)
		om, _ := genderValue(t, tbl, "Male", tbl.Locations())
		of, _ := genderValue(t, tbl, "Female", tbl.Locations())
		t.Logf("%v overall: male %.3f female %.3f", measure, om, of)
		if om >= of {
			t.Errorf("%v: females should be treated less fairly overall (%.3f vs %.3f)", measure, om, of)
		}
		for _, l := range tbl.Locations() {
			lm, okM := genderValue(t, tbl, "Male", []core.Location{l})
			lf, okF := genderValue(t, tbl, "Female", []core.Location{l})
			if !okM || !okF {
				continue
			}
			t.Logf("%v %-20s male %.3f female %.3f", measure, l, lm, lf)
			if maleWorse[l] && lm < lf {
				t.Errorf("%v: males should be treated less fairly at %s (%.3f vs %.3f)", measure, l, lm, lf)
			}
			if femaleWorse[l] && lf < lm {
				t.Errorf("%v: females should be treated less fairly at %s (%.3f vs %.3f)", measure, l, lf, lm)
			}
		}
	}
}

// ethnicityValue aggregates one ethnicity-only group over a query set.
func ethnicityValue(t *testing.T, tbl *core.Table, eth string, qs []core.Query) (float64, bool) {
	t.Helper()
	g := core.NewGroup(core.Predicate{Attr: "ethnicity", Value: eth})
	return tbl.AggregateGroup(g, qs, tbl.Locations())
}

// TestTables18And19QueryComparison asserts the shape of Tables 18–19:
// running errands is (slightly) less fair than general cleaning overall,
// but the order flips for Black users under both measures and for Asian
// users under Kendall Tau only.
func TestTables18And19QueryComparison(t *testing.T) {
	re := TermsOfBase("run errand")
	gc := TermsOfBase("general cleaning")
	for _, c := range []struct {
		measure       core.SearchMeasure
		asianReverses bool
	}{
		{core.MeasureKendallTau, true},
		{core.MeasureJaccard, false},
	} {
		tbl := googleTable(t, c.measure)
		allRE, _ := tbl.AggregateQuery(re[0], tbl.Groups(), tbl.Locations())
		_ = allRE
		avgOver := func(qs []core.Query, eth string) float64 {
			if eth == "" {
				var sum float64
				var n int
				for _, e := range []string{"Asian", "Black", "White"} {
					if v, ok := ethnicityValue(t, tbl, e, qs); ok {
						sum += v
						n++
					}
				}
				return sum / float64(n)
			}
			v, _ := ethnicityValue(t, tbl, eth, qs)
			return v
		}
		oRE, oGC := avgOver(re, ""), avgOver(gc, "")
		t.Logf("%v overall: run errand %.3f general cleaning %.3f", c.measure, oRE, oGC)
		if oRE <= oGC {
			t.Errorf("%v: run errand (%.3f) should be less fair than general cleaning (%.3f) overall",
				c.measure, oRE, oGC)
		}
		for _, eth := range []string{"Asian", "Black", "White"} {
			vRE, vGC := avgOver(re, eth), avgOver(gc, eth)
			flipped := vGC >= vRE
			t.Logf("%v %s: RE %.3f GC %.3f flipped=%v", c.measure, eth, vRE, vGC, flipped)
			wantFlip := eth == "Black" || (eth == "Asian" && c.asianReverses)
			if wantFlip && !flipped {
				t.Errorf("%v: expected reversal for %s", c.measure, eth)
			}
			if !wantFlip && flipped {
				t.Errorf("%v: unexpected reversal for %s", c.measure, eth)
			}
		}
	}
}

// TestTables20And21LocationComparison asserts the shape of Tables 20–21:
// Boston is fairer than Bristol for general cleaning overall, but the
// order flips for the office-cleaning and private-cleaning formulations,
// under both measures.
func TestTables20And21LocationComparison(t *testing.T) {
	gcTerms := TermsOfBase("general cleaning")
	for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
		tbl := googleTable(t, measure)
		cmp, err := compare.NewDefinedOnly(tbl).Locations(
			"Boston, MA", "Bristol, UK", compare.ByQuery, compare.Scope{Queries: gcTerms})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v overall: Boston %.3f Bristol %.3f", measure, cmp.Overall1, cmp.Overall2)
		if cmp.Overall1 >= cmp.Overall2 {
			t.Errorf("%v: Boston (%.3f) should be fairer than Bristol (%.3f) overall",
				measure, cmp.Overall1, cmp.Overall2)
		}
		reversed := map[string]bool{}
		for _, b := range cmp.Reversed {
			reversed[b.B] = true
			t.Logf("%v reversal: %s Boston %.3f Bristol %.3f", measure, b.B, b.V1, b.V2)
		}
		for _, want := range []string{"office cleaning jobs", "private cleaning jobs"} {
			if !reversed[want] {
				t.Errorf("%v: expected reversal for %q", measure, want)
			}
		}
		for _, notWant := range []string{"general cleaning jobs", "house cleaning jobs", "deep cleaning jobs"} {
			if reversed[notWant] {
				t.Errorf("%v: unexpected reversal for %q", measure, notWant)
			}
		}
	}
}
