// Package dataset defines the on-disk representation of crawled data —
// the synthetic equivalents of the paper's TaskRabbit crawl and Google
// study exports — as JSON-lines files, plus the dataset statistics the
// paper reports (the Figure 7–8 demographic breakdowns). Persisting the
// crawl decouples data collection (cmd/datagen) from analysis
// (cmd/fairjob, cmd/experiments), mirroring Figures 6 and 9 where the
// F-Box consumes recorded results.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"fairjob/internal/core"
)

// TaskerRecord is one crawled tasker profile. Gender and Ethnicity are
// the observed (majority-vote) labels; Unknown-labeled attributes are
// stored as "Unknown".
type TaskerRecord struct {
	ID         string  `json:"id"`
	City       string  `json:"city"`
	Gender     string  `json:"gender"`
	Ethnicity  string  `json:"ethnicity"`
	Rating     float64 `json:"rating"`
	Completed  int     `json:"completed"`
	HourlyRate float64 `json:"hourly_rate"`
	Elite      bool    `json:"elite"`
	PhotoID    string  `json:"photo_id"`
}

// PageRecord is one marketplace result page: worker IDs in rank order
// with the observed scores (NaN scores are stored as -1).
type PageRecord struct {
	Query    string    `json:"query"`
	Location string    `json:"location"`
	Workers  []string  `json:"workers"`
	Scores   []float64 `json:"scores,omitempty"`
}

// SearchRecord is one study participant's personalized result list for
// one (term, location) pair.
type SearchRecord struct {
	Query     string   `json:"query"`
	Location  string   `json:"location"`
	UserID    string   `json:"user_id"`
	Gender    string   `json:"gender"`
	Ethnicity string   `json:"ethnicity"`
	Results   []string `json:"results"`
}

// Marketplace bundles a full marketplace crawl.
type Marketplace struct {
	Taskers []TaskerRecord
	Pages   []PageRecord
}

// Google bundles a full search-study export.
type Google struct {
	Records []SearchRecord
}

// FromRankings converts evaluated rankings plus tasker profiles into a
// persistable marketplace dataset. The rankings' worker attributes are
// recorded per tasker (first occurrence wins; attributes are per-tasker,
// not per-page).
func FromRankings(rankings []*core.MarketplaceRanking, profiles []TaskerRecord) *Marketplace {
	ds := &Marketplace{Taskers: profiles}
	for _, r := range rankings {
		page := PageRecord{Query: string(r.Query), Location: string(r.Location)}
		for _, w := range r.Workers {
			page.Workers = append(page.Workers, w.ID)
			score := w.Score
			if math.IsNaN(score) {
				score = -1
			}
			page.Scores = append(page.Scores, score)
		}
		ds.Pages = append(ds.Pages, page)
	}
	return ds
}

// ToRankings reconstructs evaluator-ready rankings from a dataset,
// attaching each tasker's recorded demographics.
func (ds *Marketplace) ToRankings() ([]*core.MarketplaceRanking, error) {
	attrs := make(map[string]core.Assignment, len(ds.Taskers))
	for _, t := range ds.Taskers {
		attrs[t.ID] = core.Assignment{"gender": t.Gender, "ethnicity": t.Ethnicity}
	}
	out := make([]*core.MarketplaceRanking, 0, len(ds.Pages))
	for _, p := range ds.Pages {
		r := &core.MarketplaceRanking{Query: core.Query(p.Query), Location: core.Location(p.Location)}
		for i, id := range p.Workers {
			a, ok := attrs[id]
			if !ok {
				return nil, fmt.Errorf("dataset: page %s/%s references unknown tasker %s", p.Query, p.Location, id)
			}
			score := math.NaN()
			if i < len(p.Scores) && p.Scores[i] >= 0 {
				score = p.Scores[i]
			}
			r.Workers = append(r.Workers, core.RankedWorker{ID: id, Attrs: a.Clone(), Rank: i + 1, Score: score})
		}
		out = append(out, r)
	}
	return out, nil
}

// FromSearchResults converts evaluated search results into a persistable
// dataset.
func FromSearchResults(results []*core.SearchResults) *Google {
	ds := &Google{}
	for _, sr := range results {
		for _, u := range sr.Users {
			ds.Records = append(ds.Records, SearchRecord{
				Query:     string(sr.Query),
				Location:  string(sr.Location),
				UserID:    u.ID,
				Gender:    u.Attrs["gender"],
				Ethnicity: u.Attrs["ethnicity"],
				Results:   append([]string(nil), u.List...),
			})
		}
	}
	return ds
}

// ToSearchResults reconstructs evaluator-ready search results, grouping
// records by (query, location) in first-appearance order.
func (ds *Google) ToSearchResults() []*core.SearchResults {
	type key struct {
		q core.Query
		l core.Location
	}
	byPair := map[key]*core.SearchResults{}
	var order []key
	for _, rec := range ds.Records {
		k := key{core.Query(rec.Query), core.Location(rec.Location)}
		sr, ok := byPair[k]
		if !ok {
			sr = &core.SearchResults{Query: k.q, Location: k.l}
			byPair[k] = sr
			order = append(order, k)
		}
		sr.Users = append(sr.Users, core.UserResults{
			ID:    rec.UserID,
			Attrs: core.Assignment{"gender": rec.Gender, "ethnicity": rec.Ethnicity},
			List:  append([]string(nil), rec.Results...),
		})
	}
	out := make([]*core.SearchResults, len(order))
	for i, k := range order {
		out[i] = byPair[k]
	}
	return out
}

// writeJSONL writes one JSON object per line.
func writeJSONL[T any](w io.Writer, items []T) error {
	enc := json.NewEncoder(w)
	for i := range items {
		if err := enc.Encode(items[i]); err != nil {
			return fmt.Errorf("dataset: encode: %w", err)
		}
	}
	return nil
}

// readJSONL decodes one JSON object per line.
func readJSONL[T any](r io.Reader) ([]T, error) {
	var out []T
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var item T
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		out = append(out, item)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return out, nil
}

// WriteTaskers / ReadTaskers persist tasker profiles as JSONL.
func WriteTaskers(w io.Writer, ts []TaskerRecord) error { return writeJSONL(w, ts) }

// ReadTaskers reads tasker profiles from JSONL.
func ReadTaskers(r io.Reader) ([]TaskerRecord, error) { return readJSONL[TaskerRecord](r) }

// WritePages / ReadPages persist result pages as JSONL.
func WritePages(w io.Writer, ps []PageRecord) error { return writeJSONL(w, ps) }

// ReadPages reads result pages from JSONL.
func ReadPages(r io.Reader) ([]PageRecord, error) { return readJSONL[PageRecord](r) }

// WriteSearchRecords / ReadSearchRecords persist search records as JSONL.
func WriteSearchRecords(w io.Writer, rs []SearchRecord) error { return writeJSONL(w, rs) }

// ReadSearchRecords reads search records from JSONL.
func ReadSearchRecords(r io.Reader) ([]SearchRecord, error) { return readJSONL[SearchRecord](r) }

// Share is one slice of a demographic breakdown.
type Share struct {
	Value    string
	Count    int
	Fraction float64
}

// Breakdown computes the demographic breakdown of the taskers that appear
// on at least one page — the statistic behind the paper's Figures 7
// (gender) and 8 (ethnicity). attr selects "gender" or "ethnicity".
func (ds *Marketplace) Breakdown(attr string) []Share {
	appearing := map[string]bool{}
	for _, p := range ds.Pages {
		for _, id := range p.Workers {
			appearing[id] = true
		}
	}
	counts := map[string]int{}
	total := 0
	for _, t := range ds.Taskers {
		if !appearing[t.ID] {
			continue
		}
		v := t.Gender
		if attr == "ethnicity" {
			v = t.Ethnicity
		}
		counts[v]++
		total++
	}
	out := make([]Share, 0, len(counts))
	for v, c := range counts {
		out = append(out, Share{Value: v, Count: c, Fraction: float64(c) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// UniqueTaskersOnPages counts distinct taskers appearing in result pages —
// the paper's "3,311 unique taskers" statistic.
func (ds *Marketplace) UniqueTaskersOnPages() int {
	seen := map[string]bool{}
	for _, p := range ds.Pages {
		for _, id := range p.Workers {
			seen[id] = true
		}
	}
	return len(seen)
}
