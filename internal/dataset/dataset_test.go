package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fairjob/internal/core"
)

func sampleMarketplace() *Marketplace {
	return &Marketplace{
		Taskers: []TaskerRecord{
			{ID: "t1", City: "NYC", Gender: "Male", Ethnicity: "White", Rating: 4.5, Completed: 100},
			{ID: "t2", City: "NYC", Gender: "Female", Ethnicity: "Black", Rating: 4.1, Completed: 80},
			{ID: "t3", City: "NYC", Gender: "Male", Ethnicity: "Asian", Rating: 3.9, Completed: 60},
			{ID: "t4", City: "NYC", Gender: "Male", Ethnicity: "White", Rating: 4.8, Completed: 10},
		},
		Pages: []PageRecord{
			{Query: "cleaning", Location: "NYC", Workers: []string{"t1", "t2", "t3"}, Scores: []float64{0.9, 0.5, 0.1}},
			{Query: "moving", Location: "NYC", Workers: []string{"t3", "t1"}, Scores: []float64{-1, 0.4}},
		},
	}
}

func TestToRankingsRoundTrip(t *testing.T) {
	ds := sampleMarketplace()
	rankings, err := ds.ToRankings()
	if err != nil {
		t.Fatal(err)
	}
	if len(rankings) != 2 {
		t.Fatalf("rankings = %d", len(rankings))
	}
	r := rankings[0]
	if r.Query != "cleaning" || len(r.Workers) != 3 {
		t.Fatalf("page = %+v", r)
	}
	if r.Workers[1].ID != "t2" || r.Workers[1].Rank != 2 || r.Workers[1].Attrs["gender"] != "Female" {
		t.Fatalf("worker = %+v", r.Workers[1])
	}
	// Score -1 decodes as NaN (unobserved).
	if !math.IsNaN(rankings[1].Workers[0].Score) {
		t.Fatalf("expected NaN score, got %v", rankings[1].Workers[0].Score)
	}
	// Round trip back.
	back := FromRankings(rankings, ds.Taskers)
	if len(back.Pages) != 2 || back.Pages[0].Workers[2] != "t3" {
		t.Fatalf("round trip pages = %+v", back.Pages)
	}
	if back.Pages[1].Scores[0] != -1 {
		t.Fatalf("NaN should re-encode as -1, got %v", back.Pages[1].Scores[0])
	}
}

func TestToRankingsUnknownWorker(t *testing.T) {
	ds := &Marketplace{Pages: []PageRecord{{Query: "q", Location: "l", Workers: []string{"ghost"}}}}
	if _, err := ds.ToRankings(); err == nil {
		t.Fatal("unknown worker should error")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	ds := sampleMarketplace()
	var tb, pb bytes.Buffer
	if err := WriteTaskers(&tb, ds.Taskers); err != nil {
		t.Fatal(err)
	}
	if err := WritePages(&pb, ds.Pages); err != nil {
		t.Fatal(err)
	}
	taskers, err := ReadTaskers(&tb)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := ReadPages(&pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(taskers) != 4 || taskers[1].ID != "t2" || taskers[1].Rating != 4.1 {
		t.Fatalf("taskers = %+v", taskers)
	}
	if len(pages) != 2 || pages[0].Workers[0] != "t1" {
		t.Fatalf("pages = %+v", pages)
	}
}

func TestReadJSONLSkipsBlankAndReportsErrors(t *testing.T) {
	in := strings.NewReader("{\"id\":\"a\"}\n\n{\"id\":\"b\"}\n")
	ts, err := ReadTaskers(in)
	if err != nil || len(ts) != 2 {
		t.Fatalf("read = %v, %v", ts, err)
	}
	if _, err := ReadTaskers(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line should error")
	}
}

func TestSearchRoundTrip(t *testing.T) {
	results := []*core.SearchResults{{
		Query:    "yard work jobs",
		Location: "Detroit, MI",
		Users: []core.UserResults{
			{ID: "u1", Attrs: core.Assignment{"gender": "Male", "ethnicity": "White"}, List: []string{"a", "b"}},
			{ID: "u2", Attrs: core.Assignment{"gender": "Female", "ethnicity": "Asian"}, List: []string{"b", "c"}},
		},
	}}
	ds := FromSearchResults(results)
	if len(ds.Records) != 2 {
		t.Fatalf("records = %d", len(ds.Records))
	}
	var buf bytes.Buffer
	if err := WriteSearchRecords(&buf, ds.Records); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSearchRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := (&Google{Records: recs}).ToSearchResults()
	if len(back) != 1 || len(back[0].Users) != 2 {
		t.Fatalf("back = %+v", back)
	}
	if back[0].Users[1].Attrs["ethnicity"] != "Asian" || back[0].Users[1].List[1] != "c" {
		t.Fatalf("user = %+v", back[0].Users[1])
	}
}

func TestBreakdown(t *testing.T) {
	ds := sampleMarketplace()
	// t4 never appears on a page and must be excluded.
	genders := ds.Breakdown("gender")
	if len(genders) != 2 {
		t.Fatalf("genders = %+v", genders)
	}
	if genders[0].Value != "Male" || genders[0].Count != 2 {
		t.Fatalf("top gender = %+v", genders[0])
	}
	if got := genders[0].Fraction; math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("male fraction = %v", got)
	}
	eths := ds.Breakdown("ethnicity")
	if len(eths) != 3 {
		t.Fatalf("ethnicities = %+v", eths)
	}
	if ds.UniqueTaskersOnPages() != 3 {
		t.Fatalf("unique = %d", ds.UniqueTaskersOnPages())
	}
}
