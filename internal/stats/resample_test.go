package stats

import (
	"testing"
)

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	rng := NewRNG(42)
	// Sample from N(5, 1): the 95% CI of the mean should contain 5 and
	// be reasonably tight for n=200.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Normal(5, 1)
	}
	lo, hi := BootstrapMeanCI(rng, xs, 2000, 0.05)
	if lo > 5 || hi < 5 {
		t.Fatalf("CI [%v, %v] misses the true mean 5", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI [%v, %v] too wide for n=200", lo, hi)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
}

func TestBootstrapCustomStatistic(t *testing.T) {
	rng := NewRNG(7)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	lo, hi := Bootstrap(rng, xs, 500, 0.1, Median)
	if lo < 1 || hi > 9 || lo > hi {
		t.Fatalf("median CI [%v, %v] out of range", lo, hi)
	}
}

func TestBootstrapPanics(t *testing.T) {
	rng := NewRNG(1)
	for name, f := range map[string]func(){
		"empty":     func() { Bootstrap(rng, nil, 10, 0.05, Mean) },
		"zero B":    func() { Bootstrap(rng, []float64{1}, 0, 0.05, Mean) },
		"bad alpha": func() { Bootstrap(rng, []float64{1}, 10, 1.5, Mean) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPermutationTestDetectsDifference(t *testing.T) {
	rng := NewRNG(11)
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
		ys[i] = rng.Normal(1.2, 1) // clearly shifted
	}
	if p := PermutationTest(rng, xs, ys, 999); p > 0.01 {
		t.Fatalf("p = %v for a 1.2σ shift with n=60", p)
	}
}

func TestPermutationTestNullIsUniformish(t *testing.T) {
	rng := NewRNG(13)
	// Same distribution: p-value should usually be large.
	small := 0
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.Normal(0, 1)
			ys[i] = rng.Normal(0, 1)
		}
		if p := PermutationTest(rng, xs, ys, 499); p < 0.05 {
			small++
		}
	}
	// Expect about 1 of 20 to be < 0.05 under the null; allow up to 4.
	if small > 4 {
		t.Fatalf("%d/20 null p-values below 0.05", small)
	}
}

func TestPermutationTestNeverZero(t *testing.T) {
	rng := NewRNG(17)
	xs := []float64{0, 0, 0}
	ys := []float64{100, 100, 100}
	p := PermutationTest(rng, xs, ys, 99)
	if p <= 0 {
		t.Fatalf("p = %v, want > 0 (add-one correction)", p)
	}
	if p > 0.2 {
		t.Fatalf("p = %v for a massive difference", p)
	}
}

func TestPairedPermutationTest(t *testing.T) {
	rng := NewRNG(23)
	// Paired differences with a consistent positive shift.
	ds := make([]float64, 50)
	for i := range ds {
		ds[i] = rng.Normal(0.5, 0.3)
	}
	if p := PairedPermutationTest(rng, ds, 999); p > 0.01 {
		t.Fatalf("p = %v for consistent positive pairs", p)
	}
	// Centered differences: usually not significant.
	for i := range ds {
		ds[i] = rng.Normal(0, 1)
	}
	if p := PairedPermutationTest(rng, ds, 999); p < 0.001 {
		t.Fatalf("p = %v suspiciously small under the null", p)
	}
}

func TestResamplePanicsOnBadInput(t *testing.T) {
	rng := NewRNG(1)
	for name, f := range map[string]func(){
		"perm empty x":  func() { PermutationTest(rng, nil, []float64{1}, 9) },
		"perm zero B":   func() { PermutationTest(rng, []float64{1}, []float64{1}, 0) },
		"paired empty":  func() { PairedPermutationTest(rng, nil, 9) },
		"paired zero B": func() { PairedPermutationTest(rng, []float64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
