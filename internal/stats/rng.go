// Package stats provides the small statistics substrate used throughout the
// fairjob repository: a deterministic random-number generator for
// reproducible dataset synthesis, descriptive statistics, histograms and
// rank-correlation helpers.
//
// Everything in this package is dependency-free and deterministic: the same
// seed always produces the same synthetic crawl, which is what makes the
// experiment harness reproducible run-to-run.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. It is not cryptographically secure; it exists so that dataset
// generation is reproducible across runs and platforms independently of the
// standard library's generator, whose stream may change between Go
// releases.
//
// The zero value is a valid generator seeded with 0. RNG is not safe for
// concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	state uint64

	// Box-Muller cache for NormFloat64.
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, so calling Split at a fixed
// point in a generation protocol yields a stable sub-stream.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value of the splitmix64 stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random element index weighted by weights. The
// weights must be non-negative and not all zero; otherwise Pick panics.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: all weights zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s >= 0.
// Exponent 0 degenerates to uniform. Sampling is done by inverse CDF over a
// precomputed table; use NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s, drawing
// randomness from rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	x := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
