package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRanksNoTies(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	got := Ranks([]float64{7, 7, 7})
	for _, r := range got {
		if r != 2 {
			t.Fatalf("Ranks all-tied = %v, want all 2", got)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !approx(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !approx(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v", got)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson constant = %v", got)
	}
}

func TestPearsonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 5, 10, 100}
	ys := []float64{1, 2, 3, 4} // monotone in xs, non-linear
	if got := Spearman(xs, ys); !approx(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v", got)
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric.
func TestPearsonProperties(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		xs := make([]float64, 0, len(pairs))
		ys := make([]float64, 0, len(pairs))
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				continue
			}
			xs = append(xs, math.Mod(p[0], 1e6))
			ys = append(ys, math.Mod(p[1], 1e6))
		}
		r := Pearson(xs, ys)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		return math.Abs(r-Pearson(ys, xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
