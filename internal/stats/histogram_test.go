package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBinOf(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	cases := []struct {
		x    float64
		want int
	}{
		{-0.5, 0}, {0, 0}, {0.05, 0}, {0.1, 1}, {0.55, 5}, {0.999, 9}, {1, 9}, {2, 9},
	}
	for _, c := range cases {
		if got := h.BinOf(c.x); got != c.want {
			t.Errorf("BinOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestHistogramAddTotal(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{0.1, 0.3, 0.6, 0.9, 0.95} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %v", h.Total())
	}
	if h.Counts[3] != 2 {
		t.Fatalf("last bin = %v, want 2", h.Counts[3])
	}
}

func TestHistogramAddWeighted(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.AddWeighted(0.25, 3)
	h.AddWeighted(0.75, 1)
	if h.Counts[0] != 3 || h.Counts[1] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistogramNormalized(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	h.Add(0.2)
	h.Add(0.9)
	n := h.Normalized()
	if !approx(n.Counts[0], 2.0/3, 1e-12) || !approx(n.Counts[1], 1.0/3, 1e-12) {
		t.Fatalf("normalized = %v", n.Counts)
	}
	// Original untouched.
	if h.Counts[0] != 2 {
		t.Fatal("Normalized mutated receiver")
	}
}

func TestHistogramNormalizedEmptyIsUniform(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	n := h.Normalized()
	for _, c := range n.Counts {
		if !approx(c, 0.25, 1e-12) {
			t.Fatalf("empty normalization = %v", n.Counts)
		}
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.1)
	h.Add(0.6)
	h.Add(0.6)
	h.Add(0.9)
	cdf := h.CDF()
	want := []float64{0.25, 0.25, 0.75, 1}
	for i := range want {
		if !approx(cdf[i], want[i], 1e-12) {
			t.Fatalf("CDF = %v, want %v", cdf, want)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(0.05) // bin 0, midpoint 0.05
	h.Add(0.95) // bin 9, midpoint 0.95
	if got := h.Mean(); !approx(got, 0.5, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	empty := NewHistogram(0, 2, 5)
	if got := empty.Mean(); !approx(got, 1, 1e-12) {
		t.Fatalf("empty Mean = %v, want range midpoint", got)
	}
}

func TestHistogramEqual(t *testing.T) {
	a := NewHistogram(0, 1, 3)
	b := NewHistogram(0, 1, 3)
	a.Add(0.5)
	if a.Equal(b, 1e-9) {
		t.Fatal("unequal histograms reported equal")
	}
	b.Add(0.5)
	if !a.Equal(b, 1e-9) {
		t.Fatal("equal histograms reported unequal")
	}
	if a.Equal(nil, 1e-9) {
		t.Fatal("Equal(nil) should be false")
	}
	c := NewHistogram(0, 2, 3)
	c.Add(0.5)
	if a.Equal(c, 1e-9) {
		t.Fatal("different ranges reported equal")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
		func() { NewHistogram(2, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: CDF is monotone non-decreasing and ends at 1.
func TestHistogramCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(0, 1, 8)
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				h.Add(math.Abs(math.Mod(x, 1)))
			}
		}
		cdf := h.CDF()
		prev := 0.0
		for _, c := range cdf {
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return approx(cdf[len(cdf)-1], 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
