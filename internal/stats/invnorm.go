package stats

import "math"

// InvNorm returns the inverse CDF (quantile function) of the standard
// normal distribution, using Acklam's rational approximation (relative
// error below 1.15e-9 over (0, 1)). It panics outside (0, 1).
//
// It is used to stratify generated attributes: assigning member i of n the
// quantile InvNorm((i+0.5)/n) realizes a normal distribution exactly
// instead of by sampling luck.
func InvNorm(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: InvNorm defined on (0, 1)")
	}

	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
