package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMean(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance single = %v", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
}

func TestMedianQuantile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 20 {
		t.Errorf("q25 = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	if !Normalize(xs) {
		t.Fatal("Normalize returned false")
	}
	if !approx(xs[0], 0.25, 1e-12) || !approx(xs[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", xs)
	}
	zero := []float64{0, 0}
	if Normalize(zero) {
		t.Fatal("Normalize of zeros should report false")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

// Property: mean lies between min and max for any non-empty slice.
func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative and invariant under translation.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		shift := math.Mod(shiftRaw, 1000)
		if math.IsNaN(shift) {
			shift = 0
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		v2 := Variance(shifted)
		return math.Abs(v-v2) <= 1e-6*(1+v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
