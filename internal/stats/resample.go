package stats

import (
	"fmt"
	"sort"
)

// Bootstrap computes a percentile bootstrap confidence interval for a
// statistic of xs: B resamples with replacement, each fed to statistic,
// and the (alpha/2, 1−alpha/2) percentiles of the resulting distribution.
// It panics on an empty sample, B <= 0, or alpha outside (0, 1).
//
// The paper's §2 notes that "further statistical ... investigations are
// necessary" on top of the point estimates its tables report; Bootstrap
// and PermutationTest are the substrate for that (see the significance
// package).
func Bootstrap(rng *RNG, xs []float64, b int, alpha float64, statistic func([]float64) float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: Bootstrap of empty sample")
	}
	if b <= 0 {
		panic("stats: Bootstrap needs B > 0")
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: invalid alpha %v", alpha))
	}
	resample := make([]float64, len(xs))
	vals := make([]float64, b)
	for i := 0; i < b; i++ {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		vals[i] = statistic(resample)
	}
	sort.Float64s(vals)
	return Quantile(vals, alpha/2), Quantile(vals, 1-alpha/2)
}

// BootstrapMeanCI is Bootstrap specialized to the mean.
func BootstrapMeanCI(rng *RNG, xs []float64, b int, alpha float64) (lo, hi float64) {
	return Bootstrap(rng, xs, b, alpha, Mean)
}

// PermutationTest returns the two-sided p-value for the null hypothesis
// that xs and ys are drawn from the same distribution, using the
// difference of means as the test statistic and B random permutations of
// the pooled sample. The p-value uses the add-one correction
// (count+1)/(B+1), so it is never exactly zero. It panics when either
// sample is empty or B <= 0.
func PermutationTest(rng *RNG, xs, ys []float64, b int) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		panic("stats: PermutationTest needs non-empty samples")
	}
	if b <= 0 {
		panic("stats: PermutationTest needs B > 0")
	}
	observed := Mean(xs) - Mean(ys)
	if observed < 0 {
		observed = -observed
	}
	pooled := make([]float64, 0, len(xs)+len(ys))
	pooled = append(pooled, xs...)
	pooled = append(pooled, ys...)
	nx := len(xs)
	extreme := 0
	for i := 0; i < b; i++ {
		rng.Shuffle(len(pooled), func(a, c int) { pooled[a], pooled[c] = pooled[c], pooled[a] })
		d := Mean(pooled[:nx]) - Mean(pooled[nx:])
		if d < 0 {
			d = -d
		}
		if d >= observed-1e-15 {
			extreme++
		}
	}
	return float64(extreme+1) / float64(b+1)
}

// PairedPermutationTest returns the two-sided p-value for the null
// hypothesis that paired differences ds have zero mean, using B random
// sign flips. Use it for comparing two groups' unfairness over the same
// (query, location) cells, where values are paired by cell. It panics on
// an empty sample or B <= 0.
func PairedPermutationTest(rng *RNG, ds []float64, b int) float64 {
	if len(ds) == 0 {
		panic("stats: PairedPermutationTest of empty sample")
	}
	if b <= 0 {
		panic("stats: PairedPermutationTest needs B > 0")
	}
	observed := Mean(ds)
	if observed < 0 {
		observed = -observed
	}
	flipped := make([]float64, len(ds))
	extreme := 0
	for i := 0; i < b; i++ {
		for j, d := range ds {
			if rng.Bernoulli(0.5) {
				flipped[j] = -d
			} else {
				flipped[j] = d
			}
		}
		m := Mean(flipped)
		if m < 0 {
			m = -m
		}
		if m >= observed-1e-15 {
			extreme++
		}
	}
	return float64(extreme+1) / float64(b+1)
}
