package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalShiftScale(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(17)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	counts := map[int]int{}
	for _, v := range s {
		counts[v]++
	}
	r.ShuffleInts(s)
	for _, v := range s {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("element %d count changed by %d", v, c)
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := NewRNG(23)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight element picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestPickPanics(t *testing.T) {
	r := NewRNG(1)
	for _, weights := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", weights)
				}
			}()
			r.Pick(weights)
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(31)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf head (%d) not heavier than tail (%d)", counts[0], counts[50])
	}
	// Rank 0 should carry roughly 1/H share; sanity: > 10% for s=1.2, n=100.
	if float64(counts[0])/n < 0.10 {
		t.Fatalf("Zipf head share too small: %v", float64(counts[0])/n)
	}
}

func TestZipfUniformExponent(t *testing.T) {
	r := NewRNG(37)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		share := float64(c) / n
		if math.Abs(share-0.1) > 0.01 {
			t.Fatalf("rank %d share = %v, want ~0.1", i, share)
		}
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	parent := NewRNG(101)
	child := parent.Split()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided %d times", same)
	}
}
