package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two middle elements for
// even lengths). It panics on an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs (q in [0,1]) using linear
// interpolation between order statistics. It panics on an empty slice or an
// out-of-range q. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Normalize scales xs in place so it sums to 1. If the sum is zero the
// slice is left unchanged and Normalize reports false.
func Normalize(xs []float64) bool {
	total := Sum(xs)
	if total == 0 {
		return false
	}
	for i := range xs {
		xs[i] /= total
	}
	return true
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
