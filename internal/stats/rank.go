package stats

import (
	"math"
	"sort"
)

// Ranks returns the 1-based ranks of xs with ties assigned their average
// rank (fractional ranking), the convention used by rank-correlation
// statistics.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1 // average of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient between xs and ys, or
// 0 when either series is constant. It panics if the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank-correlation coefficient between xs and
// ys.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}
