package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width-bin histogram over the closed interval
// [Lo, Hi]. It is the representation the EMD unfairness measure (paper
// §3.3.1) operates on: worker relevance scores are binned per group and the
// Earth Mover's Distance is computed between the normalized histograms.
type Histogram struct {
	Lo, Hi float64
	Counts []float64
}

// NewHistogram returns an empty histogram with bins equal-width bins over
// [lo, hi]. It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%v,%v]", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinOf returns the bin index that x falls into. Values outside [Lo, Hi]
// are clamped to the first/last bin, matching how score distributions with
// occasional out-of-range noise are treated by the evaluator.
func (h *Histogram) BinOf(x float64) int {
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return len(h.Counts) - 1
	}
	// The 1e-9 nudge makes values that are mathematically on a bin
	// boundary but land epsilon below it due to floating-point round-off
	// (e.g. 0.3*10 = 2.999…96) bin consistently with their exact value.
	i := int(float64(len(h.Counts))*(x-h.Lo)/(h.Hi-h.Lo) + 1e-9)
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Add records one observation of x.
func (h *Histogram) Add(x float64) {
	h.Counts[h.BinOf(x)]++
}

// Reset zeroes every bin count while keeping the geometry, so a histogram
// can serve as a reusable buffer instead of being reallocated per use.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
}

// AddWeighted records an observation of x with weight w.
func (h *Histogram) AddWeighted(x, w float64) {
	h.Counts[h.BinOf(x)] += w
}

// Total returns the sum of all bin counts.
func (h *Histogram) Total() float64 { return Sum(h.Counts) }

// Normalized returns a copy of h whose counts sum to 1. An empty histogram
// (total 0) normalizes to the uniform distribution, which keeps EMD defined
// for empty groups without special-casing callers.
func (h *Histogram) Normalized() *Histogram {
	out := &Histogram{Lo: h.Lo, Hi: h.Hi, Counts: append([]float64(nil), h.Counts...)}
	if !Normalize(out.Counts) {
		for i := range out.Counts {
			out.Counts[i] = 1 / float64(len(out.Counts))
		}
	}
	return out
}

// CDF returns the cumulative distribution over bins of the normalized
// histogram.
func (h *Histogram) CDF() []float64 {
	n := h.Normalized()
	cdf := make([]float64, len(n.Counts))
	var run float64
	for i, c := range n.Counts {
		run += c
		cdf[i] = run
	}
	return cdf
}

// Mean returns the mean of the distribution using bin midpoints.
func (h *Histogram) Mean() float64 {
	total := h.Total()
	if total == 0 {
		return (h.Lo + h.Hi) / 2
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	var s float64
	for i, c := range h.Counts {
		mid := h.Lo + width*(float64(i)+0.5)
		s += mid * c
	}
	return s / total
}

// Equal reports whether two histograms have identical geometry and counts
// up to the given tolerance.
func (h *Histogram) Equal(other *Histogram, tol float64) bool {
	if other == nil || len(h.Counts) != len(other.Counts) ||
		math.Abs(h.Lo-other.Lo) > tol || math.Abs(h.Hi-other.Hi) > tol {
		return false
	}
	for i := range h.Counts {
		if math.Abs(h.Counts[i]-other.Counts[i]) > tol {
			return false
		}
	}
	return true
}
