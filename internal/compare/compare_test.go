package compare

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/stats"
	"fairjob/internal/testutil"
)

// tableForCompare builds a table shaped like the paper's Table 4 scenario:
// overall, Females are treated less fairly than Males, but the order
// reverses in Oklahoma City and Salt Lake City.
func tableForCompare() *core.Table {
	male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
	female := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
	t := core.NewTable()
	set := func(g core.Group, q core.Query, l core.Location, v float64) { t.Set(g, q, l, v) }

	// Three locations, two queries.
	// NYC and Chicago: females worse. OKC: males worse (reversal).
	for _, q := range []core.Query{"cleaning", "handyman"} {
		set(male, q, "NYC", 0.30)
		set(female, q, "NYC", 0.70)
		set(male, q, "Chicago", 0.20)
		set(female, q, "Chicago", 0.60)
		set(male, q, "OKC", 0.85)
		set(female, q, "OKC", 0.73)
	}
	return t
}

func maleKey() string   { return core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"}).Key() }
func femaleKey() string { return core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}).Key() }

func TestGroupComparisonByLocation(t *testing.T) {
	c := New(index.BuildGroupIndex(tableForCompare()))
	cmp, err := c.Groups(maleKey(), femaleKey(), ByLocation, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	// Overall: male avg = (0.3+0.2+0.85)/3 = 0.45; female = (0.7+0.6+0.73)/3 ≈ 0.6767.
	if !testutil.Near(cmp.Overall1, 0.45, 1e-9) || !testutil.Near(cmp.Overall2, 0.676667, 1e-5) {
		t.Fatalf("overall = %v / %v", cmp.Overall1, cmp.Overall2)
	}
	if len(cmp.All) != 3 {
		t.Fatalf("All has %d rows", len(cmp.All))
	}
	if len(cmp.Reversed) != 1 || cmp.Reversed[0].B != "OKC" {
		t.Fatalf("Reversed = %+v", cmp.Reversed)
	}
	if !testutil.Near(cmp.Reversed[0].V1, 0.85, 1e-9) || !testutil.Near(cmp.Reversed[0].V2, 0.73, 1e-9) {
		t.Fatalf("reversal values = %+v", cmp.Reversed[0])
	}
}

func TestGroupComparisonByQueryNoReversal(t *testing.T) {
	c := New(index.BuildGroupIndex(tableForCompare()))
	cmp, err := c.Groups(maleKey(), femaleKey(), ByQuery, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	// Both queries have identical per-gender values, same direction as
	// overall: no reversal.
	if len(cmp.Reversed) != 0 {
		t.Fatalf("unexpected reversals: %+v", cmp.Reversed)
	}
}

func TestGroupComparisonInvalidBreakdown(t *testing.T) {
	c := New(index.BuildGroupIndex(tableForCompare()))
	if _, err := c.Groups(maleKey(), femaleKey(), ByGroup, Scope{}); err == nil {
		t.Fatal("breakdown by group should be rejected")
	}
}

func TestQueryComparisonByGroup(t *testing.T) {
	// Build a table where handyman is worse than cleaning overall, but
	// for Females the order flips.
	male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
	female := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
	tbl := core.NewTable()
	tbl.Set(male, "cleaning", "NYC", 0.2)
	tbl.Set(male, "handyman", "NYC", 0.9)
	tbl.Set(female, "cleaning", "NYC", 0.6)
	tbl.Set(female, "handyman", "NYC", 0.5)
	c := New(index.BuildGroupIndex(tbl))

	cmp, err := c.Queries("cleaning", "handyman", ByGroup, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	// Overall: cleaning = 0.4, handyman = 0.7.
	if !testutil.Near(cmp.Overall1, 0.4, 1e-9) || !testutil.Near(cmp.Overall2, 0.7, 1e-9) {
		t.Fatalf("overall = %v / %v", cmp.Overall1, cmp.Overall2)
	}
	if len(cmp.Reversed) != 1 || cmp.Reversed[0].B != female.Key() {
		t.Fatalf("Reversed = %+v", cmp.Reversed)
	}
}

func TestQueryComparisonByLocation(t *testing.T) {
	male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
	tbl := core.NewTable()
	tbl.Set(male, "q1", "l1", 0.2)
	tbl.Set(male, "q2", "l1", 0.8)
	tbl.Set(male, "q1", "l2", 0.9)
	tbl.Set(male, "q2", "l2", 0.3)
	c := New(index.BuildGroupIndex(tbl))
	cmp, err := c.Queries("q1", "q2", ByLocation, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	// Overall: q1 = 0.55, q2 = 0.55 — equal, so any strict difference in
	// a breakdown counts as differing from the overall tie.
	if len(cmp.Reversed) != 2 {
		t.Fatalf("Reversed = %+v", cmp.Reversed)
	}
	if _, err := c.Queries("q1", "q2", ByQuery, Scope{}); err == nil {
		t.Fatal("breakdown by query should be rejected")
	}
}

func TestLocationComparisonByQuery(t *testing.T) {
	// SF fairer than Chicago overall, but the trend inverts for
	// "organize" jobs — the paper's Table 15 shape.
	g := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
	tbl := core.NewTable()
	tbl.Set(g, "clean", "SF", 0.1)
	tbl.Set(g, "clean", "Chicago", 0.5)
	tbl.Set(g, "organize", "SF", 0.4)
	tbl.Set(g, "organize", "Chicago", 0.2)
	c := New(index.BuildGroupIndex(tbl))
	// Overall: SF = 0.25, Chicago = 0.35 — SF fairer; "organize" inverts.
	cmp, err := c.Locations("SF", "Chicago", ByQuery, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Reversed) != 1 || cmp.Reversed[0].B != "organize" {
		t.Fatalf("Reversed = %+v", cmp.Reversed)
	}
	if _, err := c.Locations("SF", "Chicago", ByLocation, Scope{}); err == nil {
		t.Fatal("breakdown by location should be rejected")
	}
}

func TestLocationComparisonByGroup(t *testing.T) {
	male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
	female := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
	tbl := core.NewTable()
	tbl.Set(male, "q", "l1", 0.1)
	tbl.Set(male, "q", "l2", 0.9)
	tbl.Set(female, "q", "l1", 0.8)
	tbl.Set(female, "q", "l2", 0.2)
	c := New(index.BuildGroupIndex(tbl))
	cmp, err := c.Locations("l1", "l2", ByGroup, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	// Overall: l1 = 0.45, l2 = 0.55. For males l1 < l2 (same direction),
	// for females l1 > l2 (reversed).
	if len(cmp.Reversed) != 1 || cmp.Reversed[0].B != female.Key() {
		t.Fatalf("Reversed = %+v", cmp.Reversed)
	}
}

func TestScopeRestriction(t *testing.T) {
	c := New(index.BuildGroupIndex(tableForCompare()))
	// Restrict to OKC only: overall becomes the OKC comparison, so OKC
	// itself no longer reverses.
	cmp, err := c.Groups(maleKey(), femaleKey(), ByLocation, Scope{Locations: []core.Location{"OKC"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.All) != 1 || len(cmp.Reversed) != 0 {
		t.Fatalf("scoped comparison = %+v", cmp)
	}
	if !testutil.Near(cmp.Overall1, 0.85, 1e-9) {
		t.Fatalf("scoped overall = %v", cmp.Overall1)
	}
}

func TestUnindexedScopeErrors(t *testing.T) {
	c := New(index.BuildGroupIndex(tableForCompare()))
	if _, err := c.Groups(maleKey(), femaleKey(), ByLocation, Scope{Locations: []core.Location{"Atlantis"}}); err == nil {
		t.Fatal("unindexed location should error")
	}
	if _, err := c.Queries("nope", "handyman", ByLocation, Scope{}); err == nil {
		t.Fatal("comparing an unindexed query should error")
	}
}

func TestUnknownGroupReadsAsZero(t *testing.T) {
	// A group key absent from the index aggregates to 0 everywhere —
	// the completion semantics — rather than erroring.
	c := New(index.BuildGroupIndex(tableForCompare()))
	cmp, err := c.Groups("gender=Nonbinary", femaleKey(), ByLocation, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Overall1 != 0 {
		t.Fatalf("unknown group overall = %v", cmp.Overall1)
	}
}

func TestReversedPredicate(t *testing.T) {
	cases := []struct {
		o1, o2, b1, b2 float64
		want           bool
	}{
		{0.3, 0.7, 0.8, 0.2, true},  // clean reversal
		{0.3, 0.7, 0.2, 0.8, false}, // same direction
		{0.3, 0.7, 0.5, 0.5, true},  // breakdown tie vs strict overall
		{0.5, 0.5, 0.2, 0.8, true},  // overall tie vs strict breakdown
		{0.5, 0.5, 0.5, 0.5, false}, // tie everywhere: not a difference
		{0.7, 0.3, 0.2, 0.8, true},  // reversal, other side
		{0.7, 0.3, 0.8, 0.2, false}, // same direction, other side
	}
	for _, c := range cases {
		if got := reversed(c.o1, c.o2, c.b1, c.b2, 1e-9); got != c.want {
			t.Errorf("reversed(%v,%v,%v,%v) = %v, want %v", c.o1, c.o2, c.b1, c.b2, got, c.want)
		}
	}
}

func TestDimensionString(t *testing.T) {
	if ByGroup.String() != "group" || ByQuery.String() != "query" || ByLocation.String() != "location" {
		t.Fatal("dimension names")
	}
	if Dimension(9).String() == "" {
		t.Fatal("unknown dimension should render")
	}
}

func TestQuerySetsComparison(t *testing.T) {
	male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
	female := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
	tbl := core.NewTable()
	// Set A = {a1, a2}: unfair overall. Set B = {b1}: fair overall,
	// except for females, where the order flips.
	tbl.Set(male, "a1", "l", 0.8)
	tbl.Set(male, "a2", "l", 0.9)
	tbl.Set(male, "b1", "l", 0.1)
	tbl.Set(female, "a1", "l", 0.3)
	tbl.Set(female, "a2", "l", 0.4)
	tbl.Set(female, "b1", "l", 0.6)
	c := New(index.BuildGroupIndex(tbl))

	cmp, err := c.QuerySets("setA", "setB", []core.Query{"a1", "a2"}, []core.Query{"b1"}, ByGroup, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.R1 != "setA" || cmp.R2 != "setB" {
		t.Fatalf("labels = %s/%s", cmp.R1, cmp.R2)
	}
	// Overall: A = (0.8+0.9+0.3+0.4)/4 = 0.6; B = (0.1+0.6)/2 = 0.35.
	if !testutil.Near(cmp.Overall1, 0.6, 1e-9) || !testutil.Near(cmp.Overall2, 0.35, 1e-9) {
		t.Fatalf("overall = %v / %v", cmp.Overall1, cmp.Overall2)
	}
	if len(cmp.Reversed) != 1 || cmp.Reversed[0].B != female.Key() {
		t.Fatalf("Reversed = %+v", cmp.Reversed)
	}
}

func TestQuerySetsErrors(t *testing.T) {
	c := New(index.BuildGroupIndex(tableForCompare()))
	if _, err := c.QuerySets("a", "b", nil, []core.Query{"cleaning"}, ByGroup, Scope{}); err == nil {
		t.Fatal("empty set should error")
	}
	if _, err := c.QuerySets("a", "b", []core.Query{"cleaning"}, []core.Query{"handyman"}, ByQuery, Scope{}); err == nil {
		t.Fatal("breakdown by query should be rejected")
	}
	if _, err := c.QuerySets("a", "b", []core.Query{"nope"}, []core.Query{"handyman"}, ByGroup, Scope{}); err == nil {
		t.Fatal("unindexed query should error")
	}
}

func TestQuerySetsByLocation(t *testing.T) {
	c := New(index.BuildGroupIndex(tableForCompare()))
	cmp, err := c.QuerySets("cleaning", "handyman",
		[]core.Query{"cleaning"}, []core.Query{"handyman"}, ByLocation, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.All) != 3 {
		t.Fatalf("All = %+v", cmp.All)
	}
}

// Property: the reversal predicate is symmetric under swapping the two
// comparison sides.
func TestReversedSymmetryProperty(t *testing.T) {
	f := func(o1, o2, b1, b2 float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.5
			}
			return math.Mod(math.Abs(x), 1)
		}
		a, b, c, d := clamp(o1), clamp(o2), clamp(b1), clamp(b2)
		return reversed(a, b, c, d, 1e-9) == reversed(b, a, d, c, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for random tables, a comparison's All covers every breakdown
// member exactly once and Reversed is exactly the rows flagged Reversed.
func TestComparisonCoverageProperty(t *testing.T) {
	f := func(seed uint64, nq, nl uint8) bool {
		rng := stats.NewRNG(seed)
		male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"})
		female := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"})
		tbl := core.NewTable()
		q := int(nq%5) + 1
		l := int(nl%6) + 1
		for qi := 0; qi < q; qi++ {
			for li := 0; li < l; li++ {
				query := core.Query(fmt.Sprintf("q%d", qi))
				loc := core.Location(fmt.Sprintf("l%d", li))
				tbl.Set(male, query, loc, rng.Float64())
				tbl.Set(female, query, loc, rng.Float64())
			}
		}
		c := New(index.BuildGroupIndex(tbl))
		cmp, err := c.Groups(male.Key(), female.Key(), ByLocation, Scope{})
		if err != nil {
			return false
		}
		if len(cmp.All) != l {
			return false
		}
		seen := map[string]bool{}
		reversedCount := 0
		for _, row := range cmp.All {
			if seen[row.B] {
				return false
			}
			seen[row.B] = true
			if row.Reversed {
				reversedCount++
			}
		}
		return reversedCount == len(cmp.Reversed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
