package compare

import (
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/testutil"
)

// This file is the Problem 2 golden test: a small fixture whose every
// aggregate is computed by hand, pinning the exact reversal sets and
// overall-unfairness values of Algorithms 2–3 under both aggregation
// semantics. Refactors of the comparison path (the unified Algorithm 3
// accumulator, the serve layer's shared comparers) cannot silently change
// semantics without failing here.
//
// The fixture anchors on the paper's Figure 5 worked numbers: the
// exposure unfairness of Black Females on the Tables 2–3 ranking is
// 0.94/(0.94+4.0) − 0.5/(0.5+2.9) = 0.19 − 0.15 = 0.04, and that 0.04 is
// the d<BF, cleaning, SF> cell below. The remaining cells are chosen so
// that every average is exact by hand:
//
//	               cleaning,SF  cleaning,OKC  handyman,SF  handyman,OKC
//	Black Female        0.04        0.30         0.10         0.20
//	White Male          0.02        0.40         0.06         (undefined)
//
// Completion semantics (missing = 0, denominator = full scope):
//	overall BF = (0.04+0.30+0.10+0.20)/4 = 0.16
//	overall WM = (0.02+0.40+0.06+0)/4    = 0.12      → BF > WM
//	by query:  cleaning BF = 0.17, WM = 0.21         → WM > BF  REVERSED
//	           handyman BF = 0.15, WM = 0.03         → BF > WM  not reversed
//	by location: SF  BF = 0.07, WM = 0.04            → not reversed
//	             OKC BF = 0.25, WM = 0.20            → not reversed
//
// Defined-only semantics (average over defined cells only):
//	overall BF = 0.64/4 = 0.16, WM = 0.48/3 = 0.16   → TIE (within ε)
//	by query: neither breakdown ties                 → both REVERSED
//	  (a tied overall with an untied breakdown is a difference, per the
//	  reversal predicate)
//	by location: SF BF = 0.07, WM = 0.04; OKC BF = 0.25, WM = 0.40/1 = 0.40
//	  → overall tied, breakdowns untied              → both REVERSED

func goldenTable() (*core.Table, string, string) {
	bf := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}, core.Predicate{Attr: "ethnicity", Value: "Black"})
	wm := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"}, core.Predicate{Attr: "ethnicity", Value: "White"})
	t := core.NewTable()
	t.Set(bf, "cleaning", "SF", 0.04) // the Figure 5 worked number
	t.Set(bf, "cleaning", "OKC", 0.30)
	t.Set(bf, "handyman", "SF", 0.10)
	t.Set(bf, "handyman", "OKC", 0.20)
	t.Set(wm, "cleaning", "SF", 0.02)
	t.Set(wm, "cleaning", "OKC", 0.40)
	t.Set(wm, "handyman", "SF", 0.06)
	// (wm, handyman, OKC) deliberately undefined.
	return t, bf.Key(), wm.Key()
}

const goldenEps = 1e-12

func requireVal(t *testing.T, name string, got, want float64) {
	t.Helper()
	testutil.Approx(t, name, got, want, goldenEps)
}

func reversedSet(cmp *Comparison) []string {
	out := make([]string, 0, len(cmp.Reversed))
	for _, b := range cmp.Reversed {
		out = append(out, b.B)
	}
	return out
}

func requireSet(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s reversal set = %v, want %v", name, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s reversal set = %v, want %v", name, got, want)
		}
	}
}

// TestGoldenCompletionSemantics pins Algorithms 2–3 with the completion
// semantics of the paper's pseudocode (missing = 0, denominator = |Q|·|L|).
func TestGoldenCompletionSemantics(t *testing.T) {
	tbl, bf, wm := goldenTable()
	c := New(index.BuildGroupIndex(tbl))

	byQuery, err := c.Groups(bf, wm, ByQuery, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	requireVal(t, "overall BF", byQuery.Overall1, 0.16)
	requireVal(t, "overall WM", byQuery.Overall2, 0.12)
	requireSet(t, "by query", reversedSet(byQuery), []string{"cleaning"})
	// The exact breakdown values of the reversal row.
	requireVal(t, "cleaning BF", byQuery.Reversed[0].V1, 0.17)
	requireVal(t, "cleaning WM", byQuery.Reversed[0].V2, 0.21)
	// The non-reversed row is present in All with its exact values.
	if len(byQuery.All) != 2 {
		t.Fatalf("All has %d rows, want 2", len(byQuery.All))
	}
	requireVal(t, "handyman BF", byQuery.All[1].V1, 0.15)
	requireVal(t, "handyman WM", byQuery.All[1].V2, 0.03)

	byLoc, err := c.Groups(bf, wm, ByLocation, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	requireSet(t, "by location", reversedSet(byLoc), nil)
	requireVal(t, "SF BF", byLoc.All[1].V1, 0.07)
	requireVal(t, "SF WM", byLoc.All[1].V2, 0.04)
	requireVal(t, "OKC BF", byLoc.All[0].V1, 0.25)
	requireVal(t, "OKC WM", byLoc.All[0].V2, 0.20)
}

// TestGoldenDefinedOnlySemantics pins the defined-only aggregation used
// by the paper's empirical tables: the undefined (WM, handyman, OKC) cell
// shrinks WM's denominator to 3, tying the overall comparison at 0.16 and
// turning every untied breakdown into a reversal.
func TestGoldenDefinedOnlySemantics(t *testing.T) {
	tbl, bf, wm := goldenTable()
	c := NewDefinedOnly(tbl)

	byQuery, err := c.Groups(bf, wm, ByQuery, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	requireVal(t, "overall BF", byQuery.Overall1, 0.16)
	requireVal(t, "overall WM", byQuery.Overall2, 0.16)
	requireSet(t, "by query", reversedSet(byQuery), []string{"cleaning", "handyman"})
	requireVal(t, "handyman WM (defined-only)", byQuery.All[1].V2, 0.06)

	byLoc, err := c.Groups(bf, wm, ByLocation, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	requireSet(t, "by location", reversedSet(byLoc), []string{"OKC", "SF"})
	requireVal(t, "OKC WM (defined-only)", byLoc.All[0].V2, 0.40)
}

// TestGoldenQueryAndLocationComparisons runs the two other Problem 2
// instances on the same fixture with hand-computed expectations
// (completion semantics).
func TestGoldenQueryAndLocationComparisons(t *testing.T) {
	tbl, _, _ := goldenTable()
	c := New(index.BuildGroupIndex(tbl))

	// cleaning vs handyman by location:
	//   overall cleaning = (0.04+0.30+0.02+0.40)/4 = 0.19
	//   overall handyman = (0.10+0.20+0.06+0)/4    = 0.09   → cleaning > handyman
	//   SF:  cleaning (0.04+0.02)/2 = 0.03, handyman (0.10+0.06)/2 = 0.08 → REVERSED
	//   OKC: cleaning (0.30+0.40)/2 = 0.35, handyman (0.20+0)/2   = 0.10 → not
	qCmp, err := c.Queries("cleaning", "handyman", ByLocation, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	requireVal(t, "overall cleaning", qCmp.Overall1, 0.19)
	requireVal(t, "overall handyman", qCmp.Overall2, 0.09)
	requireSet(t, "queries by location", reversedSet(qCmp), []string{"SF"})
	requireVal(t, "SF cleaning", qCmp.Reversed[0].V1, 0.03)
	requireVal(t, "SF handyman", qCmp.Reversed[0].V2, 0.08)

	// SF vs OKC by query:
	//   overall SF  = (0.04+0.10+0.02+0.06)/4 = 0.055
	//   overall OKC = (0.30+0.20+0.40+0)/4    = 0.225   → OKC > SF
	//   cleaning: SF (0.04+0.02)/2 = 0.03, OKC (0.30+0.40)/2 = 0.35 → not
	//   handyman: SF (0.10+0.06)/2 = 0.08, OKC (0.20+0)/2   = 0.10 → not
	lCmp, err := c.Locations("SF", "OKC", ByQuery, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	requireVal(t, "overall SF", lCmp.Overall1, 0.055)
	requireVal(t, "overall OKC", lCmp.Overall2, 0.225)
	requireSet(t, "locations by query", reversedSet(lCmp), nil)
}
