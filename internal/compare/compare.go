// Package compare solves the paper's Problem 2 (Fairness Comparison):
// given two comparison values r1 and r2 of one dimension and a breakdown
// dimension B, return every b ∈ B for which the fairness comparison of r1
// and r2 reverses relative to their overall comparison.
//
// This is the paper's Algorithm 2, with Algorithm 3 (ComputeGroupUnfairness
// via random accesses to the group-based indices) as the overall-unfairness
// subroutine. All aggregates use the same semantics as Algorithm 1 and 3:
// undefined triples contribute 0 and denominators are the full scope size.
package compare

import (
	"fmt"
	"math"

	"fairjob/internal/core"
	"fairjob/internal/index"
)

// Dimension names one of the framework's three dimensions.
type Dimension int

const (
	ByGroup Dimension = iota
	ByQuery
	ByLocation
)

func (d Dimension) String() string {
	switch d {
	case ByGroup:
		return "group"
	case ByQuery:
		return "query"
	case ByLocation:
		return "location"
	default:
		return fmt.Sprintf("Dimension(%d)", int(d))
	}
}

// Scope restricts the aggregation and breakdown sets. Nil fields default
// to the full dimension recorded in the index. Group members are canonical
// group keys.
type Scope struct {
	Groups    []string
	Queries   []core.Query
	Locations []core.Location
}

// Breakdown is one row of a comparison result: the breakdown member b and
// the unfairness of r1 and r2 restricted to b.
type Breakdown struct {
	B        string
	V1, V2   float64
	Reversed bool
}

// Comparison is the full result of a fairness-comparison run. All holds
// every breakdown member with its restricted values; Reversed holds the
// subset the paper's Problem 2 returns (comparison differs from overall).
type Comparison struct {
	R1, R2             string
	By                 Dimension
	Overall1, Overall2 float64
	All                []Breakdown
	Reversed           []Breakdown
	// Accesses counts the Algorithm 3 random accesses (index cell reads)
	// this comparison performed, across the two overall aggregates and
	// every breakdown — the Problem 2 analogue of topk.Stats, which the
	// serve layer exports into its access-cost telemetry.
	Accesses int
}

// Comparer answers fairness-comparison questions against a group-based
// index family.
//
// A Comparer is read-only while answering: the index, table and semantics
// flag are fixed at construction and every Algorithm 3 accumulator lives
// in a per-call accum value, so one Comparer may serve any number of
// concurrent queries provided Epsilon is not reassigned after the
// Comparer is shared (set it right after New / NewDefinedOnly, before
// publishing).
//
// Two aggregation semantics are supported. The default (New) follows
// Algorithms 1–3 exactly: undefined triples contribute 0 and denominators
// are the full scope size. NewDefinedOnly averages over defined triples
// only, which is how the paper's empirical tables are aggregated — it is
// what makes, e.g., Males' and Females' overall exposure unfairness differ
// (Table 12) even though their per-page deviations coincide on pages where
// both genders appear.
type Comparer struct {
	gi          *index.GroupIndex
	tbl         *core.Table
	cells       CellSource
	cellGroups  []string
	cellQueries []core.Query
	cellLocs    []core.Location
	definedOnly bool
	// Epsilon is the tolerance within which two aggregate unfairness
	// values are considered tied by the reversal predicate. Aggregates
	// are floating-point sums over thousands of cells; mathematically
	// equal values (e.g. the two genders' per-page exposure deviations,
	// which are provably identical when both genders appear) differ in
	// the last bits, and a strict comparison would turn those ties into
	// arbitrary orderings.
	Epsilon float64
}

// New builds a Comparer with the completion semantics of Algorithms 1–3
// (missing = 0, denominator = full scope size).
func New(gi *index.GroupIndex) *Comparer {
	return &Comparer{gi: gi, Epsilon: defaultEpsilon}
}

// defaultEpsilon absorbs floating-point noise in aggregate comparisons.
const defaultEpsilon = 1e-9

// NewDefinedOnly builds a Comparer that averages over defined triples
// only, reading directly from the unfairness table.
func NewDefinedOnly(tbl *core.Table) *Comparer {
	return NewDefinedOnlyWith(index.BuildGroupIndex(tbl), tbl)
}

// NewDefinedOnlyWith is NewDefinedOnly for callers that already hold the
// table's group-based index family (the serve layer's snapshots build all
// three families once); gi must have been built from tbl.
func NewDefinedOnlyWith(gi *index.GroupIndex, tbl *core.Table) *Comparer {
	return &Comparer{gi: gi, tbl: tbl, definedOnly: true, Epsilon: defaultEpsilon}
}

// CellSource abstracts where the Algorithm 3 random accesses read from:
// the group-based index family in-process, or cells gathered from remote
// partitions by the scatter-gather coordinator. Dims returns the full
// (sorted) dimension universe; Cell returns a triple's value and whether
// it is defined. Both must be safe for concurrent calls.
type CellSource interface {
	Dims() (groups []string, queries []core.Query, locations []core.Location)
	Cell(g string, q core.Query, l core.Location) (float64, bool)
}

// NewFromCells builds a Comparer with completion semantics (missing = 0,
// denominator = full scope size) over an arbitrary cell source. Because
// a comparison visits cells in the same deterministic (g, q, l) order as
// the index-backed path and adding 0.0 to a float sum is exact, a cell
// source agreeing with a table on its defined cells and dimensions
// yields byte-identical Comparisons.
func NewFromCells(cs CellSource) *Comparer {
	c := &Comparer{cells: cs, Epsilon: defaultEpsilon}
	c.cellGroups, c.cellQueries, c.cellLocs = cs.Dims()
	return c
}

// NewDefinedOnlyFromCells is NewFromCells with defined-only aggregation
// semantics.
func NewDefinedOnlyFromCells(cs CellSource) *Comparer {
	c := NewFromCells(cs)
	c.definedOnly = true
	return c
}

func (c *Comparer) scopeOrAll(s Scope) Scope {
	if c.cells != nil {
		if s.Groups == nil {
			s.Groups = c.cellGroups
		}
		if s.Queries == nil {
			s.Queries = c.cellQueries
		}
		if s.Locations == nil {
			s.Locations = c.cellLocs
		}
		return s
	}
	if s.Groups == nil {
		s.Groups = c.gi.GroupKeys
	}
	if s.Queries == nil {
		s.Queries = c.gi.Queries
	}
	if s.Locations == nil {
		s.Locations = c.gi.Locations
	}
	return s
}

// value performs the Algorithm 3 random access: d<g,q,l>, with the second
// return reporting whether the triple was defined. It returns an error for
// a (q,l) pair that was never indexed, which indicates a scope mistake
// rather than sparse data.
func (c *Comparer) value(g string, q core.Query, l core.Location) (float64, bool, error) {
	if c.cells != nil {
		v, ok := c.cells.Cell(g, q, l)
		if c.definedOnly {
			return v, ok, nil
		}
		if !ok {
			v = 0 // completion semantics: undefined reads as 0, counted
		}
		return v, true, nil
	}
	iv := c.gi.Get(q, l)
	if iv == nil {
		return 0, false, fmt.Errorf("compare: pair (%s, %s) not indexed", q, l)
	}
	if c.definedOnly {
		v, ok := c.tbl.GetKey(g, q, l)
		return v, ok, nil
	}
	v, _ := iv.Find(g)
	return v, true, nil
}

// accum is the per-call accumulator of one Algorithm 3 aggregation: the
// running sum over cells, how many of them were defined, and the full
// scope size. Every aggregation a comparison performs builds its own
// accum on the stack, which is what makes a shared Comparer safe for
// concurrent queries — there is no aggregation state on the Comparer or
// the index to contend on.
type accum struct {
	sum     float64
	defined int
	total   int
}

// average applies the Comparer's aggregation semantics to an accumulated
// scope: full-denominator for completion semantics, defined-count for
// defined-only semantics (0 when nothing was defined).
func (c *Comparer) average(a accum) float64 {
	if c.definedOnly {
		if a.defined == 0 {
			return 0
		}
		return a.sum / float64(a.defined)
	}
	return a.sum / float64(a.total)
}

// dctx is the per-call state of one comparison: the shared read-only
// Comparer plus the running Algorithm 3 random-access count. Like topk's
// per-call state structs, it is what keeps a shared Comparer safe for
// concurrent queries while still letting each call account its own
// access cost (Comparison.Accesses).
type dctx struct {
	c        *Comparer
	accesses int
}

// d is Algorithm 3 generalized to a rectangular scope: the aggregate
// unfairness over gs × qs × ls via random accesses to the group-based
// index. The singleton forms of the paper — d<g,Q,L>, d<G,q,L>, d<G,Q,l>
// — are d with one axis pinned to a single member; QuerySets passes a
// multi-member query axis. Cells are visited in group-major (g, q, l)
// order, so every aggregate is a deterministic left-to-right sum.
func (dc *dctx) d(gs []string, qs []core.Query, ls []core.Location) (float64, error) {
	a := accum{total: len(gs) * len(qs) * len(ls)}
	for _, g := range gs {
		for _, q := range qs {
			for _, l := range ls {
				v, ok, err := dc.c.value(g, q, l)
				dc.accesses++
				if err != nil {
					return 0, err
				}
				if ok {
					a.sum += v
					a.defined++
				}
			}
		}
	}
	return dc.c.average(a), nil
}

// dGroup is Algorithm 3: d<g,Q,L>.
func (dc *dctx) dGroup(g string, qs []core.Query, ls []core.Location) (float64, error) {
	return dc.d([]string{g}, qs, ls)
}

// dQuery is the query analogue: d<G,q,L>.
func (dc *dctx) dQuery(q core.Query, gs []string, ls []core.Location) (float64, error) {
	return dc.d(gs, []core.Query{q}, ls)
}

// dLocation is the location analogue: d<G,Q,l>.
func (dc *dctx) dLocation(l core.Location, gs []string, qs []core.Query) (float64, error) {
	return dc.d(gs, qs, []core.Location{l})
}

// reversed is the paper's Problem 2 predicate:
// (d<r1,all> ≥ d<r2,all> ∧ d<r1,b> ≤ d<r2,b>) ∨
// (d<r1,all> ≤ d<r2,all> ∧ d<r1,b> ≥ d<r2,b>),
// with equality read up to eps, and excluding breakdowns whose values
// replicate the overall comparison exactly on both sides (a breakdown
// tied like a tied overall is not a difference).
func reversed(o1, o2, b1, b2, eps float64) bool {
	tieO := math.Abs(o1-o2) <= eps
	tieB := math.Abs(b1-b2) <= eps
	switch {
	case tieO && tieB:
		return false
	case tieO || tieB:
		return true
	default:
		return (o1 > o2 && b1 < b2) || (o1 < o2 && b1 > b2)
	}
}

// Groups compares two groups (by canonical key), broken down by queries or
// locations (Problem 2's group-comparison instance — e.g. Males vs Females
// across locations, the paper's Tables 4, 12, 16, 17).
func (c *Comparer) Groups(g1, g2 string, by Dimension, scope Scope) (*Comparison, error) {
	if by == ByGroup {
		return nil, fmt.Errorf("compare: cannot break a group comparison down by group")
	}
	s := c.scopeOrAll(scope)
	dc := &dctx{c: c}
	o1, err := dc.dGroup(g1, s.Queries, s.Locations)
	if err != nil {
		return nil, err
	}
	o2, err := dc.dGroup(g2, s.Queries, s.Locations)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{R1: g1, R2: g2, By: by, Overall1: o1, Overall2: o2}
	if by == ByLocation {
		for _, l := range s.Locations {
			v1, err := dc.dGroup(g1, s.Queries, []core.Location{l})
			if err != nil {
				return nil, err
			}
			v2, err := dc.dGroup(g2, s.Queries, []core.Location{l})
			if err != nil {
				return nil, err
			}
			cmp.add(string(l), v1, v2, c.Epsilon)
		}
	} else {
		for _, q := range s.Queries {
			v1, err := dc.dGroup(g1, []core.Query{q}, s.Locations)
			if err != nil {
				return nil, err
			}
			v2, err := dc.dGroup(g2, []core.Query{q}, s.Locations)
			if err != nil {
				return nil, err
			}
			cmp.add(string(q), v1, v2, c.Epsilon)
		}
	}
	cmp.Accesses = dc.accesses
	return cmp, nil
}

// Queries compares two queries broken down by groups or locations
// (query-comparison — e.g. Lawn Mowing vs Event Decorating across
// ethnicities, Tables 13, 14, 18, 19).
func (c *Comparer) Queries(q1, q2 core.Query, by Dimension, scope Scope) (*Comparison, error) {
	if by == ByQuery {
		return nil, fmt.Errorf("compare: cannot break a query comparison down by query")
	}
	s := c.scopeOrAll(scope)
	dc := &dctx{c: c}
	o1, err := dc.dQuery(q1, s.Groups, s.Locations)
	if err != nil {
		return nil, err
	}
	o2, err := dc.dQuery(q2, s.Groups, s.Locations)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{R1: string(q1), R2: string(q2), By: by, Overall1: o1, Overall2: o2}
	if by == ByGroup {
		for _, g := range s.Groups {
			v1, err := dc.dQuery(q1, []string{g}, s.Locations)
			if err != nil {
				return nil, err
			}
			v2, err := dc.dQuery(q2, []string{g}, s.Locations)
			if err != nil {
				return nil, err
			}
			cmp.add(g, v1, v2, c.Epsilon)
		}
	} else {
		for _, l := range s.Locations {
			v1, err := dc.dQuery(q1, s.Groups, []core.Location{l})
			if err != nil {
				return nil, err
			}
			v2, err := dc.dQuery(q2, s.Groups, []core.Location{l})
			if err != nil {
				return nil, err
			}
			cmp.add(string(l), v1, v2, c.Epsilon)
		}
	}
	cmp.Accesses = dc.accesses
	return cmp, nil
}

// Locations compares two locations broken down by groups or queries
// (location-comparison — e.g. San Francisco vs Chicago across General
// Cleaning jobs, Tables 15, 20, 21).
func (c *Comparer) Locations(l1, l2 core.Location, by Dimension, scope Scope) (*Comparison, error) {
	if by == ByLocation {
		return nil, fmt.Errorf("compare: cannot break a location comparison down by location")
	}
	s := c.scopeOrAll(scope)
	dc := &dctx{c: c}
	o1, err := dc.dLocation(l1, s.Groups, s.Queries)
	if err != nil {
		return nil, err
	}
	o2, err := dc.dLocation(l2, s.Groups, s.Queries)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{R1: string(l1), R2: string(l2), By: by, Overall1: o1, Overall2: o2}
	if by == ByGroup {
		for _, g := range s.Groups {
			v1, err := dc.dLocation(l1, []string{g}, s.Queries)
			if err != nil {
				return nil, err
			}
			v2, err := dc.dLocation(l2, []string{g}, s.Queries)
			if err != nil {
				return nil, err
			}
			cmp.add(g, v1, v2, c.Epsilon)
		}
	} else {
		for _, q := range s.Queries {
			v1, err := dc.dLocation(l1, s.Groups, []core.Query{q})
			if err != nil {
				return nil, err
			}
			v2, err := dc.dLocation(l2, s.Groups, []core.Query{q})
			if err != nil {
				return nil, err
			}
			cmp.add(string(q), v1, v2, c.Epsilon)
		}
	}
	cmp.Accesses = dc.accesses
	return cmp, nil
}

func (cmp *Comparison) add(b string, v1, v2, eps float64) {
	row := Breakdown{B: b, V1: v1, V2: v2, Reversed: reversed(cmp.Overall1, cmp.Overall2, v1, v2, eps)}
	cmp.All = append(cmp.All, row)
	if row.Reversed {
		cmp.Reversed = append(cmp.Reversed, row)
	}
}

// QuerySets compares two sets of queries (e.g. the concrete jobs of two
// marketplace categories, or the five formulations of two Google query
// bases), broken down by groups or locations. Each side's unfairness is
// aggregated over its whole query set; this is how the paper's Tables 13,
// 14, 18 and 19 compare "Lawn Mowing" against "Event Decorating" or
// "Running Errands" against "General Cleaning" as job families. Labels
// name the two sets in the result.
func (c *Comparer) QuerySets(label1, label2 string, qs1, qs2 []core.Query, by Dimension, scope Scope) (*Comparison, error) {
	if by == ByQuery {
		return nil, fmt.Errorf("compare: cannot break a query-set comparison down by query")
	}
	if len(qs1) == 0 || len(qs2) == 0 {
		return nil, fmt.Errorf("compare: empty query set")
	}
	s := c.scopeOrAll(scope)
	dc := &dctx{c: c}
	dSet := func(qs []core.Query, gs []string, ls []core.Location) (float64, error) {
		return dc.d(gs, qs, ls)
	}
	o1, err := dSet(qs1, s.Groups, s.Locations)
	if err != nil {
		return nil, err
	}
	o2, err := dSet(qs2, s.Groups, s.Locations)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{R1: label1, R2: label2, By: by, Overall1: o1, Overall2: o2}
	if by == ByGroup {
		for _, g := range s.Groups {
			v1, err := dSet(qs1, []string{g}, s.Locations)
			if err != nil {
				return nil, err
			}
			v2, err := dSet(qs2, []string{g}, s.Locations)
			if err != nil {
				return nil, err
			}
			cmp.add(g, v1, v2, c.Epsilon)
		}
	} else {
		for _, l := range s.Locations {
			v1, err := dSet(qs1, s.Groups, []core.Location{l})
			if err != nil {
				return nil, err
			}
			v2, err := dSet(qs2, s.Groups, []core.Location{l})
			if err != nil {
				return nil, err
			}
			cmp.add(string(l), v1, v2, c.Epsilon)
		}
	}
	cmp.Accesses = dc.accesses
	return cmp, nil
}
