// Package metrics implements the four unfairness distance measures the
// paper builds on (§3.2–3.3): Kendall Tau and Jaccard for search-engine
// result lists, and Earth Mover's Distance and exposure deviation for
// marketplace rankings.
//
// Orientation convention (see DESIGN.md §5): every function whose name ends
// in Distance returns a value in [0, 1] where higher means *more different*
// and therefore more unfair when plugged into the framework's DIST role.
package metrics

// KendallTauDistance returns the normalized Kendall tau distance between
// two ranked lists in [0, 1]: the fraction of discordant pairs among all
// pairs of items that appear in both lists.
//
// Real search-result lists rarely contain identical item sets, so the
// comparison is projected onto the intersection first, following the
// methodology of Hannak et al. (WWW 2013) that the paper adopts for
// personalization measurement. When the intersection has fewer than two
// items there is no pair to compare; in that degenerate case the function
// falls back to the Jaccard distance of the two lists, which preserves the
// "identical lists → 0, disjoint lists → 1" boundary behaviour.
//
// Duplicate items keep their first (best-ranked) position.
func KendallTauDistance(a, b []string) float64 {
	posA := firstPositions(a)
	posB := firstPositions(b)

	// Project b's positions onto the common items in a's rank order,
	// taking only the first occurrence of each item in a.
	common := make([]int, 0, len(posA))
	for i, item := range a {
		if posA[item] != i {
			continue
		}
		if pb, inB := posB[item]; inB {
			common = append(common, pb)
		}
	}
	if len(common) < 2 {
		return JaccardDistance(a, b)
	}
	pairs := len(common) * (len(common) - 1) / 2
	discordant := countInversions(common)
	return float64(discordant) / float64(pairs)
}

// KendallTauCoefficient returns the Kendall tau rank-correlation
// coefficient in [-1, 1] over the common items of the two lists
// (1 = same order, -1 = reversed). With fewer than two common items it
// returns 1 for identical lists and 0 otherwise.
func KendallTauCoefficient(a, b []string) float64 {
	posA := firstPositions(a)
	posB := firstPositions(b)
	common := make([]int, 0, len(posA))
	for i, item := range a {
		if posA[item] != i {
			continue
		}
		if pb, ok := posB[item]; ok {
			common = append(common, pb)
		}
	}
	if len(common) < 2 {
		if JaccardDistance(a, b) == 0 {
			return 1
		}
		return 0
	}
	pairs := len(common) * (len(common) - 1) / 2
	discordant := countInversions(common)
	return 1 - 2*float64(discordant)/float64(pairs)
}

func firstPositions(list []string) map[string]int {
	pos := make(map[string]int, len(list))
	for i, item := range list {
		if _, seen := pos[item]; !seen {
			pos[item] = i
		}
	}
	return pos
}

// countInversions counts pairs (i, j) with i < j and s[i] > s[j] using
// merge sort, O(n log n). Ties are not counted as inversions; projected
// positions are distinct by construction, so ties cannot occur here.
func countInversions(s []int) int {
	buf := make([]int, len(s))
	work := append([]int(nil), s...)
	return mergeCount(work, buf)
}

func mergeCount(s, buf []int) int {
	n := len(s)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(s[:mid], buf[:mid]) + mergeCount(s[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if s[i] <= s[j] {
			buf[k] = s[i]
			i++
		} else {
			buf[k] = s[j]
			j++
			inv += mid - i
		}
		k++
	}
	for i < mid {
		buf[k] = s[i]
		i++
		k++
	}
	for j < n {
		buf[k] = s[j]
		j++
		k++
	}
	copy(s, buf[:k])
	return inv
}
