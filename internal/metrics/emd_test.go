package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"fairjob/internal/stats"
	"fairjob/internal/testutil"
)

func histFrom(vals []float64, bins int) *stats.Histogram {
	h := stats.NewHistogram(0, 1, bins)
	for _, v := range vals {
		h.Add(v)
	}
	return h
}

func TestEMDIdenticalHistograms(t *testing.T) {
	h := histFrom([]float64{0.1, 0.5, 0.9}, 10)
	if got := EMDHistograms(h, h); got != 0 {
		t.Fatalf("EMD(h,h) = %v", got)
	}
}

func TestEMDExtremes(t *testing.T) {
	lo := histFrom([]float64{0.0, 0.0}, 10)
	hi := histFrom([]float64{1.0, 1.0}, 10)
	testutil.Approx(t, "EMD extremes", EMDHistograms(lo, hi), 1, 1e-12)
}

func TestEMDAdjacentBins(t *testing.T) {
	a := stats.NewHistogram(0, 1, 10)
	b := stats.NewHistogram(0, 1, 10)
	a.AddWeighted(0.05, 1) // bin 0
	b.AddWeighted(0.15, 1) // bin 1
	// Moving all mass one bin over: CDF differs in exactly one position.
	testutil.Approx(t, "EMD adjacent bins", EMDHistograms(a, b), 1.0/9, 1e-12)
}

func TestEMDScaleInvariance(t *testing.T) {
	// EMD normalizes mass, so doubling all counts changes nothing.
	a := histFrom([]float64{0.1, 0.2, 0.9}, 8)
	b := histFrom([]float64{0.1, 0.1, 0.2, 0.2, 0.9, 0.9}, 8)
	testutil.Approx(t, "EMD of scaled counts", EMDHistograms(a, b), 0, 1e-12)
}

func TestEMDGeometryMismatchPanics(t *testing.T) {
	a := stats.NewHistogram(0, 1, 5)
	b := stats.NewHistogram(0, 1, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EMDHistograms(a, b)
}

func TestEMDSingleBinIsZero(t *testing.T) {
	a := stats.NewHistogram(0, 1, 1)
	b := stats.NewHistogram(0, 1, 1)
	a.Add(0.3)
	b.Add(0.8)
	if got := EMDHistograms(a, b); got != 0 {
		t.Fatalf("single-bin EMD = %v", got)
	}
}

func TestEMDSamplesIdentical(t *testing.T) {
	xs := []float64{0.1, 0.4, 0.8}
	if got := EMDSamples(xs, xs, 0, 1); got != 0 {
		t.Fatalf("EMDSamples identical = %v", got)
	}
}

func TestEMDSamplesPointMasses(t *testing.T) {
	// Point mass at 0.2 vs point mass at 0.7: W1 = 0.5, range 1.
	testutil.Approx(t, "EMD point masses", EMDSamples([]float64{0.2}, []float64{0.7}, 0, 1), 0.5, 1e-12)
}

func TestEMDSamplesDifferentSizes(t *testing.T) {
	xs := []float64{0.0, 1.0}           // mean CDF jumps at 0 and 1
	ys := []float64{0.5, 0.5, 0.5, 0.5} // point mass at 0.5
	// W1 between {0,1} uniform two-point and delta(0.5) = 0.5.
	testutil.Approx(t, "EMD across sample sizes", EMDSamples(xs, ys, 0, 1), 0.5, 1e-12)
}

func TestEMDSamplesClamping(t *testing.T) {
	// Values outside [lo,hi] are clamped before comparison.
	if got := EMDSamples([]float64{-5}, []float64{0}, 0, 1); got != 0 {
		t.Fatalf("clamped EMD = %v, want 0", got)
	}
}

func TestEMDSamplesPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty xs":  func() { EMDSamples(nil, []float64{1}, 0, 1) },
		"empty ys":  func() { EMDSamples([]float64{1}, nil, 0, 1) },
		"bad range": func() { EMDSamples([]float64{1}, []float64{1}, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: EMD on histograms is a metric-like distance — symmetric,
// non-negative, zero on identical inputs, triangle inequality.
func TestEMDHistogramProperties(t *testing.T) {
	mk := func(seed uint64) *stats.Histogram {
		r := stats.NewRNG(seed)
		h := stats.NewHistogram(0, 1, 12)
		n := r.Intn(30) + 1
		for i := 0; i < n; i++ {
			h.Add(r.Float64())
		}
		return h
	}
	f := func(s1, s2, s3 uint64) bool {
		a, b, c := mk(s1), mk(s2), mk(s3)
		dab := EMDHistograms(a, b)
		dba := EMDHistograms(b, a)
		dac := EMDHistograms(a, c)
		dcb := EMDHistograms(c, b)
		if math.Abs(dab-dba) > 1e-12 || dab < 0 || dab > 1 {
			return false
		}
		if EMDHistograms(a, a) != 0 {
			return false
		}
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EMDSamples agrees with EMDHistograms in the limit of fine bins
// (up to binning error of one bin width).
func TestEMDSamplesVsHistograms(t *testing.T) {
	r := stats.NewRNG(2024)
	for trial := 0; trial < 50; trial++ {
		nx, ny := r.Intn(40)+2, r.Intn(40)+2
		xs := make([]float64, nx)
		ys := make([]float64, ny)
		for i := range xs {
			xs[i] = r.Float64()
		}
		for i := range ys {
			ys[i] = r.Float64()
		}
		exact := EMDSamples(xs, ys, 0, 1)
		const bins = 400
		binned := EMDHistograms(histFrom(xs, bins), histFrom(ys, bins))
		// Histogram EMD is normalized by bins-1 while sample EMD by the
		// range; they agree up to ~one bin width of quantization error.
		if math.Abs(exact-binned) > 3.0/bins+0.02 {
			t.Fatalf("trial %d: exact %v vs binned %v", trial, exact, binned)
		}
	}
}
