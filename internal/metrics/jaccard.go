package metrics

// JaccardIndex returns |A ∩ B| / |A ∪ B| for the item sets of the two
// lists, in [0, 1]. Two empty lists are considered identical (index 1),
// which keeps the measure total and makes JaccardDistance of two empty
// result pages 0 rather than undefined.
func JaccardIndex(a, b []string) float64 {
	setA := toSet(a)
	setB := toSet(b)
	if len(setA) == 0 && len(setB) == 0 {
		return 1
	}
	inter := 0
	for item := range setA {
		if _, ok := setB[item]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// JaccardDistance returns 1 − JaccardIndex(a, b): 0 for identical item
// sets, 1 for disjoint ones.
func JaccardDistance(a, b []string) float64 {
	return 1 - JaccardIndex(a, b)
}

func toSet(list []string) map[string]struct{} {
	set := make(map[string]struct{}, len(list))
	for _, item := range list {
		set[item] = struct{}{}
	}
	return set
}
