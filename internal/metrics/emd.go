package metrics

import (
	"fmt"
	"math"
	"sort"

	"fairjob/internal/stats"
)

// EMDHistograms returns the Earth Mover's Distance between the two
// histograms after normalizing each to unit mass, scaled so the result lies
// in [0, 1]: 0 when the distributions are identical, 1 when all mass sits
// in the first bin of one histogram and the last bin of the other.
//
// For one-dimensional distributions EMD has the closed form
// Σ_i |CDF₁(i) − CDF₂(i)| (Rubner et al.; the fast special case of the
// Pele-Werman EMD the paper cites), which this function uses. Both
// histograms must share bin geometry; EMDHistograms panics otherwise, since
// comparing differently-binned score distributions is a caller bug.
func EMDHistograms(h1, h2 *stats.Histogram) float64 {
	if h1.Bins() != h2.Bins() || h1.Lo != h2.Lo || h1.Hi != h2.Hi {
		panic(fmt.Sprintf("metrics: histogram geometry mismatch: [%v,%v]x%d vs [%v,%v]x%d",
			h1.Lo, h1.Hi, h1.Bins(), h2.Lo, h2.Hi, h2.Bins()))
	}
	bins := h1.Bins()
	if bins == 1 {
		return 0
	}
	// Accumulate both CDFs inline instead of materializing them through
	// Histogram.Normalized + CDF: this function sits inside the
	// evaluators' per-comparable-pair loop and the four slices those
	// methods allocate dominate the EMD path's allocation profile. The
	// arithmetic mirrors them exactly — each count divided by its total
	// (an empty histogram normalizes to uniform mass, keeping EMD defined
	// for empty groups), then summed left to right — so results are
	// bitwise-identical to the materialized form.
	t1, t2 := h1.Total(), h2.Total()
	uniform := 1 / float64(bins)
	var run1, run2, sum float64
	for i := 0; i < bins; i++ {
		if t1 == 0 {
			run1 += uniform
		} else {
			run1 += h1.Counts[i] / t1
		}
		if t2 == 0 {
			run2 += uniform
		} else {
			run2 += h2.Counts[i] / t2
		}
		sum += math.Abs(run1 - run2)
	}
	// The last CDF entries are both 1, so at most bins-1 terms are
	// non-zero and each is at most 1; dividing by bins-1 normalizes the
	// maximum transport (all mass first bin vs all mass last bin) to 1.
	return sum / float64(bins-1)
}

// EMDSamples returns the exact one-dimensional Wasserstein-1 distance
// between the empirical distributions of xs and ys, normalized by the value
// range [lo, hi] so the result lies in [0, 1]. It integrates
// |F_xs(t) − F_ys(t)| dt over [lo, hi] where F are the empirical CDFs.
//
// Unlike EMDHistograms this is binning-free and is used by the evaluator's
// exact mode; the histogram form matches the paper's description and is the
// default. Both slices must be non-empty and hi > lo; EMDSamples panics
// otherwise.
func EMDSamples(xs, ys []float64, lo, hi float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		panic("metrics: EMDSamples requires non-empty samples")
	}
	if hi <= lo {
		panic("metrics: EMDSamples requires hi > lo")
	}
	sx := clampSorted(xs, lo, hi)
	sy := clampSorted(ys, lo, hi)

	// Sweep the merged breakpoints; between consecutive breakpoints both
	// CDFs are constant.
	var (
		emd    float64
		prev   = lo
		i, j   int
		nx, ny = float64(len(sx)), float64(len(sy))
	)
	for i < len(sx) || j < len(sy) {
		var t float64
		switch {
		case i >= len(sx):
			t = sy[j]
		case j >= len(sy):
			t = sx[i]
		case sx[i] <= sy[j]:
			t = sx[i]
		default:
			t = sy[j]
		}
		emd += math.Abs(float64(i)/nx-float64(j)/ny) * (t - prev)
		prev = t
		for i < len(sx) && sx[i] == t {
			i++
		}
		for j < len(sy) && sy[j] == t {
			j++
		}
	}
	// After the last breakpoint both CDFs are 1, contributing nothing up
	// to hi.
	return emd / (hi - lo)
}

func clampSorted(xs []float64, lo, hi float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = stats.Clamp(x, lo, hi)
	}
	sort.Float64s(out)
	return out
}
