package metrics

import (
	"fmt"
	"testing"
	"testing/quick"

	"fairjob/internal/stats"
	"fairjob/internal/testutil"
)

func TestKendallIdenticalLists(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	if got := KendallTauDistance(a, a); got != 0 {
		t.Fatalf("distance of identical lists = %v", got)
	}
	if got := KendallTauCoefficient(a, a); got != 1 {
		t.Fatalf("coefficient of identical lists = %v", got)
	}
}

func TestKendallReversedLists(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"d", "c", "b", "a"}
	if got := KendallTauDistance(a, b); got != 1 {
		t.Fatalf("distance of reversed lists = %v, want 1", got)
	}
	if got := KendallTauCoefficient(a, b); got != -1 {
		t.Fatalf("coefficient of reversed lists = %v, want -1", got)
	}
}

func TestKendallSingleSwap(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"b", "a", "c", "d"}
	// 1 discordant pair of C(4,2)=6.
	testutil.Approx(t, "single-swap distance", KendallTauDistance(a, b), 1.0/6, 1e-12)
}

func TestKendallPartialOverlap(t *testing.T) {
	// Common items: a, c. a before c in both lists -> concordant.
	a := []string{"a", "b", "c"}
	b := []string{"a", "c", "x"}
	if got := KendallTauDistance(a, b); got != 0 {
		t.Fatalf("distance = %v, want 0 (common items in same order)", got)
	}
	// Common items in opposite order.
	c := []string{"c", "a", "y"}
	if got := KendallTauDistance(a, c); got != 1 {
		t.Fatalf("distance = %v, want 1 (common items reversed)", got)
	}
}

func TestKendallDisjointFallsBackToJaccard(t *testing.T) {
	a := []string{"a", "b"}
	b := []string{"x", "y"}
	if got := KendallTauDistance(a, b); got != 1 {
		t.Fatalf("disjoint distance = %v, want 1", got)
	}
	if got := KendallTauCoefficient(a, b); got != 0 {
		t.Fatalf("disjoint coefficient = %v, want 0", got)
	}
}

func TestKendallSingleCommonItem(t *testing.T) {
	a := []string{"a", "b"}
	b := []string{"a", "z"}
	// One common of three union items: jaccard distance = 2/3.
	testutil.Approx(t, "single-common-item distance", KendallTauDistance(a, b), 2.0/3, 1e-12)
}

func TestKendallEmptyLists(t *testing.T) {
	if got := KendallTauDistance(nil, nil); got != 0 {
		t.Fatalf("empty distance = %v", got)
	}
	if got := KendallTauCoefficient(nil, nil); got != 1 {
		t.Fatalf("empty coefficient = %v", got)
	}
}

func TestKendallDuplicatesUseFirstPosition(t *testing.T) {
	a := []string{"a", "b", "a", "c"}
	b := []string{"a", "b", "c"}
	if got := KendallTauDistance(a, b); got != 0 {
		t.Fatalf("distance with duplicates = %v, want 0", got)
	}
}

func TestCountInversions(t *testing.T) {
	cases := []struct {
		s    []int
		want int
	}{
		{nil, 0},
		{[]int{1}, 0},
		{[]int{1, 2, 3}, 0},
		{[]int{3, 2, 1}, 3},
		{[]int{2, 1, 3}, 1},
		{[]int{4, 3, 2, 1}, 6},
		{[]int{1, 3, 2, 4}, 1},
	}
	for _, c := range cases {
		if got := countInversions(c.s); got != c.want {
			t.Errorf("countInversions(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestCountInversionsMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(100)
		}
		naive := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if s[i] > s[j] {
					naive++
				}
			}
		}
		if got := countInversions(s); got != naive {
			t.Fatalf("trial %d: countInversions(%v) = %d, want %d", trial, s, got, naive)
		}
	}
}

// Property: distance is symmetric and bounded for permutations of the same
// item set.
func TestKendallSymmetryProperty(t *testing.T) {
	rng := stats.NewRNG(5)
	f := func(seed uint64, sz uint8) bool {
		n := int(sz%20) + 2
		items := make([]string, n)
		for i := range items {
			items[i] = fmt.Sprintf("item%d", i)
		}
		a := append([]string(nil), items...)
		b := append([]string(nil), items...)
		r := stats.NewRNG(seed)
		r.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		r.Shuffle(n, func(i, j int) { b[i], b[j] = b[j], b[i] })
		d1 := KendallTauDistance(a, b)
		d2 := KendallTauDistance(b, a)
		_ = rng
		return testutil.Near(d1, d2, 1e-12) && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: coefficient and distance are consistent: tau = 1 - 2*distance
// when the item sets coincide.
func TestKendallCoefficientDistanceRelation(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz%15) + 2
		items := make([]string, n)
		for i := range items {
			items[i] = fmt.Sprintf("i%d", i)
		}
		b := append([]string(nil), items...)
		r := stats.NewRNG(seed)
		r.Shuffle(n, func(i, j int) { b[i], b[j] = b[j], b[i] })
		d := KendallTauDistance(items, b)
		tau := KendallTauCoefficient(items, b)
		return testutil.Near(tau, 1-2*d, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
