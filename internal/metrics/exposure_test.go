package metrics

import (
	"testing"

	"fairjob/internal/testutil"
)

// The paper's Figure 5 pins down the exposure formula numerically:
// Black Females hold ranks 7 and 8 of 10, giving total exposure
// 1/ln(8) + 1/ln(9) ≈ 0.94 and total relevance (1-7/10)+(1-8/10) = 0.5.
func TestExposureMatchesPaperFigure5(t *testing.T) {
	got := ExposureAtRank(7) + ExposureAtRank(8)
	testutil.Approx(t, "exposure(7)+exposure(8)", got, 0.94, 0.005)
	rel := RelevanceFromRank(7, 10) + RelevanceFromRank(8, 10)
	testutil.Approx(t, "relevance sum", rel, 0.5, 1e-12)
	// Comparable-group workers in Table 2/3: ranks 1, 2, 3, 5, 10.
	var compExp, compRel float64
	for _, rank := range []int{1, 2, 3, 5, 10} {
		compExp += ExposureAtRank(rank)
		compRel += RelevanceFromRank(rank, 10)
	}
	testutil.Approx(t, "comparable exposure", compExp, 4.05, 0.005)
	testutil.Approx(t, "comparable relevance", compRel, 2.9, 1e-12)
	expShare := Share(got, got+compExp)
	relShare := Share(rel, rel+compRel)
	testutil.Approx(t, "exposure share", expShare, 0.19, 0.005)
	testutil.Approx(t, "relevance share", relShare, 0.15, 0.005)
	testutil.Approx(t, "deviation", ExposureDeviation(expShare, relShare), 0.04, 0.01)
}

func TestExposureDecreasesWithRank(t *testing.T) {
	prev := ExposureAtRank(1)
	for rank := 2; rank <= 100; rank++ {
		cur := ExposureAtRank(rank)
		if cur >= prev {
			t.Fatalf("exposure not strictly decreasing at rank %d: %v >= %v", rank, cur, prev)
		}
		prev = cur
	}
}

func TestExposurePanicsOnBadRank(t *testing.T) {
	for _, rank := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rank %d: expected panic", rank)
				}
			}()
			ExposureAtRank(rank)
		}()
	}
}

func TestRelevanceFromRank(t *testing.T) {
	testutil.Approx(t, "rel(1,10)", RelevanceFromRank(1, 10), 0.9, 1e-12)
	if got := RelevanceFromRank(10, 10); got != 0 {
		t.Fatalf("rel(10,10) = %v", got)
	}
}

func TestRelevancePanics(t *testing.T) {
	for _, c := range [][2]int{{0, 10}, {11, 10}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rel(%d,%d): expected panic", c[0], c[1])
				}
			}()
			RelevanceFromRank(c[0], c[1])
		}()
	}
}

func TestExposureDeviationSymmetric(t *testing.T) {
	if ExposureDeviation(0.2, 0.5) != ExposureDeviation(0.5, 0.2) {
		t.Fatal("deviation not symmetric")
	}
	if ExposureDeviation(0.3, 0.3) != 0 {
		t.Fatal("deviation of equal shares not zero")
	}
}

func TestShare(t *testing.T) {
	if got := Share(1, 4); got != 0.25 {
		t.Fatalf("Share = %v", got)
	}
	if got := Share(1, 0); got != 0 {
		t.Fatalf("Share with zero total = %v, want 0", got)
	}
}
