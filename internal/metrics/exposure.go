package metrics

import (
	"fmt"
	"math"
)

// ExposureAtRank returns the position-bias exposure of the worker at the
// given 1-based rank, 1/ln(1+rank), following §3.3.2 of the paper (and the
// logarithmic discount of Singh & Joachims, "Fairness of Exposure in
// Rankings"). The paper's Figure 5 worked example (0.94 for workers at
// ranks 7 and 8) pins the logarithm base to e:
//
//	1/ln(8) + 1/ln(9) ≈ 0.481 + 0.455 ≈ 0.94.
//
// ExposureAtRank panics on rank < 1: rank 0 is a caller bug, not a value
// with meaningful exposure.
func ExposureAtRank(rank int) float64 {
	if rank < 1 {
		panic(fmt.Sprintf("metrics: exposure of invalid rank %d", rank))
	}
	return 1 / math.Log(1+float64(rank))
}

// RelevanceFromRank converts an observed 1-based rank into the proxy
// relevance score rel(w) = 1 − rank/N from §3.3.1, used when the
// platform's true scoring function is unobservable (the TaskRabbit case):
// the top-ranked worker gets (N−1)/N and the last gets 0. It panics when
// rank is outside [1, n].
func RelevanceFromRank(rank, n int) float64 {
	if n < 1 || rank < 1 || rank > n {
		panic(fmt.Sprintf("metrics: invalid rank %d of %d", rank, n))
	}
	return 1 - float64(rank)/float64(n)
}

// ExposureDeviation returns |expShare − relShare|, the L1 deviation of a
// group's share of exposure from its share of relevance (§3.3.2). Both
// shares are expected to lie in [0, 1]; the result then also lies in
// [0, 1].
func ExposureDeviation(expShare, relShare float64) float64 {
	return math.Abs(expShare - relShare)
}

// Share returns part/total, defined as 0 when total is 0 (an empty
// comparison population has no exposure or relevance to apportion).
func Share(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return part / total
}
