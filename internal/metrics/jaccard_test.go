package metrics

import (
	"fmt"
	"testing"
	"testing/quick"

	"fairjob/internal/stats"
	"fairjob/internal/testutil"
)

func TestJaccardIdentical(t *testing.T) {
	a := []string{"a", "b", "c"}
	if got := JaccardIndex(a, a); got != 1 {
		t.Fatalf("index = %v", got)
	}
	if got := JaccardDistance(a, a); got != 0 {
		t.Fatalf("distance = %v", got)
	}
}

func TestJaccardDisjoint(t *testing.T) {
	if got := JaccardIndex([]string{"a"}, []string{"b"}); got != 0 {
		t.Fatalf("index = %v", got)
	}
}

func TestJaccardPartial(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"b", "c", "d"}
	testutil.Approx(t, "partial-overlap index", JaccardIndex(a, b), 0.5, 1e-12)
}

func TestJaccardOrderInsensitive(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"c", "a", "b"}
	if got := JaccardDistance(a, b); got != 0 {
		t.Fatalf("distance = %v, want 0 (same sets)", got)
	}
}

func TestJaccardEmpty(t *testing.T) {
	if got := JaccardIndex(nil, nil); got != 1 {
		t.Fatalf("empty index = %v, want 1", got)
	}
	if got := JaccardIndex(nil, []string{"a"}); got != 0 {
		t.Fatalf("empty-vs-nonempty index = %v, want 0", got)
	}
}

func TestJaccardDuplicatesCollapse(t *testing.T) {
	a := []string{"a", "a", "b"}
	b := []string{"a", "b", "b"}
	if got := JaccardIndex(a, b); got != 1 {
		t.Fatalf("index = %v, want 1 (duplicate-insensitive)", got)
	}
}

// Properties: symmetry, bounds, triangle inequality for Jaccard distance.
func TestJaccardProperties(t *testing.T) {
	mk := func(seed uint64, n int) []string {
		r := stats.NewRNG(seed)
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("e%d", r.Intn(12))
		}
		return out
	}
	f := func(s1, s2, s3 uint64, n1, n2, n3 uint8) bool {
		a := mk(s1, int(n1%10)+1)
		b := mk(s2, int(n2%10)+1)
		c := mk(s3, int(n3%10)+1)
		dab := JaccardDistance(a, b)
		dba := JaccardDistance(b, a)
		dac := JaccardDistance(a, c)
		dcb := JaccardDistance(c, b)
		if dab != dba || dab < 0 || dab > 1 {
			return false
		}
		// Jaccard distance is a metric: triangle inequality must hold.
		return dab <= dac+dcb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
