//go:build !faultinject

package faultinject

// Enabled reports whether failpoints are compiled in. This build
// compiles them all to no-ops; every function below is empty and
// inlines away, so injection sites on hot paths cost nothing.
const Enabled = false

// Set is inert without the faultinject build tag.
func Set(string, func() error) {}

// SetKeyed is inert without the faultinject build tag.
func SetKeyed(string, func(string) error) {}

// Clear is inert without the faultinject build tag.
func Clear(string) {}

// Reset is inert without the faultinject build tag.
func Reset() {}

// Hits always reports zero without the faultinject build tag.
func Hits(string) uint64 { return 0 }

// Inject is a no-op without the faultinject build tag.
func Inject(string) {}

// InjectErr always returns nil without the faultinject build tag.
func InjectErr(string) error { return nil }

// InjectKeyedErr always returns nil without the faultinject build tag.
func InjectKeyedErr(string, string) error { return nil }
