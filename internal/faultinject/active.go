//go:build faultinject

package faultinject

import (
	"sync"
	"sync/atomic"
)

// Enabled reports whether failpoints are compiled in. This build has
// them armed.
const Enabled = true

// registry is the process-wide failpoint table. Handlers are installed
// by tests and read by injection sites on arbitrary goroutines; hit
// counts survive Clear so tests can assert a fault fired even after
// disarming it.
var registry struct {
	mu       sync.RWMutex
	handlers map[string]func() error
	keyed    map[string]func(key string) error
	hits     map[string]*atomic.Uint64
}

// ensureLocked lazily allocates the registry maps; callers hold mu.
func ensureLocked() {
	if registry.handlers == nil {
		registry.handlers = make(map[string]func() error)
		registry.keyed = make(map[string]func(key string) error)
		registry.hits = make(map[string]*atomic.Uint64)
	}
}

// Set arms the named failpoint: every subsequent Inject/InjectErr at
// that site runs fn. fn may sleep, panic, or return an error (Inject
// discards the error; InjectErr propagates it). It replaces any handler
// previously installed under the name.
func Set(name string, fn func() error) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	ensureLocked()
	registry.handlers[name] = fn
	if registry.hits[name] == nil {
		registry.hits[name] = new(atomic.Uint64)
	}
}

// SetKeyed arms the named failpoint with a per-key handler: every
// subsequent InjectKeyedErr at that site passes its key (e.g. a
// partition id) to fn, which decides per key whether to fault. A keyed
// handler coexists with an unkeyed one installed under the same name;
// InjectKeyedErr prefers the keyed handler and falls back to the
// unkeyed one. Hits are counted under the same name either way.
func SetKeyed(name string, fn func(key string) error) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	ensureLocked()
	registry.keyed[name] = fn
	if registry.hits[name] == nil {
		registry.hits[name] = new(atomic.Uint64)
	}
}

// Clear disarms the named failpoint — both its keyed and unkeyed
// handlers; its hit count is retained.
func Clear(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	delete(registry.handlers, name)
	delete(registry.keyed, name)
}

// Reset disarms every failpoint and zeroes all hit counts — test
// teardown for a clean next test.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.handlers = nil
	registry.keyed = nil
	registry.hits = nil
}

// Hits returns how many times the named failpoint has fired since the
// last Reset.
func Hits(name string) uint64 {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if c := registry.hits[name]; c != nil {
		return c.Load()
	}
	return 0
}

// lookup fetches the armed handler and hit counter for name, or nil.
func lookup(name string) (func() error, *atomic.Uint64) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.handlers[name], registry.hits[name]
}

// Inject fires the named failpoint, discarding any error the handler
// returns — for sites where the interesting faults are delay and panic.
// Unarmed failpoints are no-ops.
func Inject(name string) {
	fn, hits := lookup(name)
	if fn == nil {
		return
	}
	hits.Add(1)
	_ = fn()
}

// InjectErr fires the named failpoint and returns the handler's error —
// for sites that can propagate a failure. Unarmed failpoints return
// nil.
func InjectErr(name string) error {
	fn, hits := lookup(name)
	if fn == nil {
		return nil
	}
	hits.Add(1)
	return fn()
}

// lookupKeyed fetches the armed keyed handler and hit counter for name,
// or nil.
func lookupKeyed(name string) (func(key string) error, *atomic.Uint64) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.keyed[name], registry.hits[name]
}

// InjectKeyedErr fires the named failpoint with a site-supplied key
// (e.g. a partition id) and returns the handler's error. A keyed
// handler installed with SetKeyed sees the key; absent one, an unkeyed
// handler installed with Set fires for every key. Unarmed failpoints
// return nil.
func InjectKeyedErr(name, key string) error {
	if fn, hits := lookupKeyed(name); fn != nil {
		hits.Add(1)
		return fn(key)
	}
	return InjectErr(name)
}
