package faultinject_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryFailpointIsExercisedByAChaosTest walks the failpoint catalog
// (every exported constant in this package) and asserts each one is
// referenced by at least one chaos test — a *_test.go file guarded by
// the faultinject build tag. A failpoint nobody arms is dead chaos
// surface: the injection site rots silently, and the suite's coverage
// claim ("every fault mode has a test") stops being true. The test
// reads source, so it runs in the tier-1 (untagged) build too.
func TestEveryFailpointIsExercisedByAChaosTest(t *testing.T) {
	root := repoRoot(t)

	catalog := exportedFailpointConstants(t, filepath.Join(root, "internal", "faultinject", "faultinject.go"))
	if len(catalog) == 0 {
		t.Fatal("no exported failpoint constants found — catalog parse broke")
	}

	used := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !strings.Contains(string(src), "//go:build faultinject") {
			return nil
		}
		for _, name := range catalog {
			if strings.Contains(string(src), "faultinject."+name) {
				used[name] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking repo: %v", err)
	}

	for _, name := range catalog {
		if !used[name] {
			t.Errorf("failpoint constant %s is not exercised by any chaos test (no //go:build faultinject *_test.go references faultinject.%s)", name, name)
		}
	}
}

// exportedFailpointConstants parses the catalog file and returns every
// exported string constant's name.
func exportedFailpointConstants(t *testing.T, path string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	var names []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if n.IsExported() {
					names = append(names, n.Name)
				}
			}
		}
	}
	return names
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test's working directory")
		}
		dir = parent
	}
}
