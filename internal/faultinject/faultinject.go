// Package faultinject provides named failpoints for deterministic chaos
// testing of the serving stack. A failpoint is a call site compiled into
// production code — Inject at a point where a fault could plausibly
// occur — whose behavior is supplied by tests: sleep to simulate a slow
// evaluator, panic to simulate a crashing measure, return an error to
// simulate a failing snapshot build.
//
// The package has two implementations selected by the `faultinject`
// build tag:
//
//   - Without the tag (the default, what production and the tier-1 test
//     suite build), every function is an empty no-op that the compiler
//     inlines away; Set is inert and Enabled is the constant false, so
//     dead failpoint plumbing costs nothing on the hot paths.
//   - With `-tags faultinject` (the chaos gate in scripts/check.sh),
//     Inject consults a process-wide registry of handlers installed by
//     Set, counts every trigger, and runs whatever fault the test
//     registered.
//
// Failpoint names are exported constants so injection sites and tests
// share one catalog (see DESIGN.md §10 for the semantics of each):
//
//	SlowEvaluator  delays every top-k round — exercises the cooperative
//	               cancellation checkpoints and deadline enforcement
//	PanicMeasure   panics inside the engine's execute path — exercises
//	               panic isolation (one bad request, not a dead batch)
//	RefreshFail    fails snapshot builds — exercises the Refresh retry
//	               helper's backoff loop
//	QueueDelay     delays a request between its cache probe and the
//	               admission gate — exercises shed-under-load behavior
//	               and the cache-hit bypass
//
// Handlers run on the goroutine that hits the failpoint and must be safe
// for concurrent use; the chaos tests run under -race.
package faultinject

// The failpoint catalog. Every name is "<package>.<site>" of the point
// it arms.
const (
	// SlowEvaluator is hit once per round of every top-k algorithm
	// (internal/topk); a sleeping handler turns any quantify query into a
	// slow one.
	SlowEvaluator = "topk.slow-evaluator"
	// PanicMeasure is hit at the top of the serve engine's execute path;
	// a panicking handler simulates an unfairness measure crashing
	// mid-query.
	PanicMeasure = "serve.panic-measure"
	// RefreshFail is hit inside every snapshot build performed by
	// Engine.RefreshCtx; an erroring handler simulates a failing
	// copy-on-write table refresh.
	RefreshFail = "serve.refresh-fail"
	// QueueDelay is hit between a request's cache probe and its admission
	// to the compute path; a sleeping handler piles requests up against
	// the admission gate.
	QueueDelay = "serve.queue-delay"
)
